// Quickstart: run every distributed join algorithm on a small simulated
// cluster, verify they agree, and compare network traffic.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

int main() {
  // A 4-node cluster; 100k distinct keys matched by both tables; S repeats
  // each key 3 times and keeps the repeats together on one node.
  tj::WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 100000;
  spec.s_multiplicity = 3;
  spec.s_pattern = {3};
  spec.collocation = tj::Collocation::kIntra;
  spec.r_payload = 12;  // Payload bytes per tuple, key excluded.
  spec.s_payload = 28;
  tj::Workload workload = tj::GenerateWorkload(spec);

  tj::JoinConfig config;
  config.key_bytes = 4;  // Serialized join-key width (the paper's wk).

  std::printf("join: %llu x %llu tuples on %u nodes -> %llu output rows\n\n",
              static_cast<unsigned long long>(workload.r.TotalRows()),
              static_cast<unsigned long long>(workload.s.TotalRows()),
              spec.num_nodes,
              static_cast<unsigned long long>(workload.expected_output_rows));

  struct Run {
    const char* name;
    tj::JoinResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"hash join", tj::RunHashJoin(workload.r, workload.s, config)});
  runs.push_back({"broadcast join (R)",
                  tj::RunBroadcastJoin(workload.r, workload.s, config,
                                       tj::Direction::kRtoS)});
  runs.push_back({"2-phase track join",
                  tj::RunTrackJoin2(workload.r, workload.s, config,
                                    tj::Direction::kRtoS)});
  runs.push_back(
      {"3-phase track join", tj::RunTrackJoin3(workload.r, workload.s, config)});
  runs.push_back(
      {"4-phase track join", tj::RunTrackJoin4(workload.r, workload.s, config)});

  for (const Run& run : runs) {
    if (run.result.checksum.digest() != runs[0].result.checksum.digest()) {
      std::fprintf(stderr, "%s produced a different join result!\n", run.name);
      return 1;
    }
    std::printf("%-20s %10s network  (%llu rows verified)\n", run.name,
                tj::FormatBytes(run.result.traffic.TotalNetworkBytes()).c_str(),
                static_cast<unsigned long long>(run.result.output_rows));
  }

  std::printf("\n4-phase track join traffic by class:\n%s",
              runs.back().result.traffic.Report().c_str());
  return 0;
}
