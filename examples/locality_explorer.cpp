// Locality explorer: how each algorithm's network traffic responds as
// pre-existing data locality fades from perfect collocation to none.
//
// This is the core story of the paper: hash join is placement-invariant,
// while track join converts whatever locality exists into traffic savings
// and, in the 4-phase version, never does meaningfully worse than hash
// join even with none.
//
//   ./build/examples/locality_explorer [collocated_fraction_steps]
#include <cstdio>
#include <cstdlib>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 5;
  if (steps < 2) steps = 2;

  std::printf("Traffic (MiB) vs fraction of keys with collocated tuples\n");
  std::printf("(8 nodes, 50k keys, 2 R + 4 S repeats per key, 12/28 B "
              "payloads)\n\n");
  std::printf("%12s %10s %10s %10s %10s\n", "collocated", "HJ", "2TJ-R", "3TJ",
              "4TJ");

  for (int i = 0; i < steps; ++i) {
    double fraction = static_cast<double>(i) / (steps - 1);
    tj::WorkloadSpec spec;
    spec.num_nodes = 8;
    spec.matched_keys = 50000;
    spec.r_multiplicity = 2;
    spec.s_multiplicity = 4;
    spec.r_pattern = {2};
    spec.s_pattern = {4};
    spec.collocation = tj::Collocation::kInter;
    spec.collocated_fraction = fraction;
    spec.r_payload = 12;
    spec.s_payload = 28;
    tj::Workload w = tj::GenerateWorkload(spec);

    tj::JoinConfig config;
    config.key_bytes = 4;
    auto mib = [](const tj::JoinResult& r) {
      return static_cast<double>(r.traffic.TotalNetworkBytes()) / (1 << 20);
    };
    tj::JoinResult hj = tj::RunHashJoin(w.r, w.s, config);
    tj::JoinResult tj2 =
        tj::RunTrackJoin2(w.r, w.s, config, tj::Direction::kRtoS);
    tj::JoinResult tj3 = tj::RunTrackJoin3(w.r, w.s, config);
    tj::JoinResult tj4 = tj::RunTrackJoin4(w.r, w.s, config);
    if (tj4.checksum.digest() != hj.checksum.digest()) {
      std::fprintf(stderr, "join results disagree!\n");
      return 1;
    }
    std::printf("%11.0f%% %10.2f %10.2f %10.2f %10.2f\n", fraction * 100,
                mib(hj), mib(tj2), mib(tj3), mib(tj4));
  }
  std::printf(
      "\nHash join is flat; track join's traffic falls with locality, and\n"
      "4TJ stays competitive even at zero locality (the paper's Figures "
      "4-6).\n");
  return 0;
}
