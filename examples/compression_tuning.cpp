// Compression tuning: the Section 2.4 traffic-compression layers applied
// to a real-workload-shaped join, end to end.
//
// Shows (1) how encoding schemes change every algorithm's bottom line via
// the width model, and (2) what the wire-format toggles (delta-coded
// tracking, node-grouped location messages) save on top of track join.
#include <cstdio>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "costmodel/reprice.h"
#include "workload/real.h"

int main() {
  // The workload X Q1 join, scaled down 20000x, on 8 nodes.
  tj::RealJoinSpec spec = tj::WorkloadX(1);
  tj::Workload w = tj::InstantiateReal(spec, 8, 20000, /*original_order=*/true);

  tj::JoinConfig config;
  config.key_bytes = spec.impl_key_bytes;
  config.count_bytes = spec.impl_count_bytes;

  std::printf("workload X Q1 (scaled 20000x): %llu x %llu tuples, 8 nodes\n\n",
              static_cast<unsigned long long>(w.r.TotalRows()),
              static_cast<unsigned long long>(w.s.TotalRows()));

  // 1. Encoding schemes re-price the same transfer schedule.
  tj::JoinResult hj = tj::RunHashJoin(w.r, w.s, config);
  tj::JoinResult tj4 = tj::RunTrackJoin4(w.r, w.s, config);
  std::printf("encoding scheme sweep (MiB, same schedules re-priced):\n");
  std::printf("  %-14s %10s %10s\n", "scheme", "hash join", "track join");
  for (auto scheme :
       {tj::EncodingScheme::kFixedByte, tj::EncodingScheme::kVariableByte,
        tj::EncodingScheme::kDictionary}) {
    tj::PricingSpec pricing;
    pricing.physical = config;
    pricing.physical_with_counts = true;
    pricing.physical_payload_r = spec.impl_r_payload;
    pricing.physical_payload_s = spec.impl_s_payload;
    pricing.key_bits_x100 = spec.r_schema.KeyBitsX100(scheme);
    pricing.count_bits_x100 = 800ULL * config.count_bytes;
    pricing.payload_r_bits_x100 = spec.r_schema.PayloadBitsX100(scheme);
    pricing.payload_s_bits_x100 = spec.s_schema.PayloadBitsX100(scheme);
    std::printf("  %-14s %10.2f %10.2f\n", tj::EncodingSchemeName(scheme),
                tj::RepricedTotalNetworkBytes(hj.traffic, pricing) / (1 << 20),
                tj::RepricedTotalNetworkBytes(tj4.traffic, pricing) / (1 << 20));
  }

  // 2. Wire-format toggles on the tracking/location phases.
  std::printf("\nwire-format toggles on 4-phase track join (MiB):\n");
  std::printf("  %-28s %10s %10s %10s\n", "configuration", "tracking",
              "locations", "total");
  struct Toggle {
    const char* name;
    bool delta;
    bool group;
  };
  for (const Toggle& t :
       {Toggle{"plain", false, false}, Toggle{"delta tracking", true, false},
        Toggle{"grouped locations", false, true},
        Toggle{"both", true, true}}) {
    tj::JoinConfig tuned = config;
    tuned.delta_tracking = t.delta;
    tuned.group_locations = t.group;
    tj::JoinResult result = tj::RunTrackJoin4(w.r, w.s, tuned);
    if (result.checksum.digest() != hj.checksum.digest()) {
      std::fprintf(stderr, "join results disagree!\n");
      return 1;
    }
    std::printf(
        "  %-28s %10.2f %10.2f %10.2f\n", t.name,
        result.traffic.NetworkBytes(tj::TrafficClass::kKeysAndCounts) /
            double(1 << 20),
        result.traffic.NetworkBytes(tj::TrafficClass::kKeysAndNodes) /
            double(1 << 20),
        result.traffic.TotalNetworkBytes() / double(1 << 20));
  }
  return 0;
}
