// Multi-join query: a small star-schema plan executed join by join.
//
// The paper's motivating queries run 4-6 joins; this example shows how the
// library chains them: each join materializes a partitioned output, which
// is re-keyed on a column embedded in its payload and fed to the next
// join. The optimizer-flavored twist: the fact-dimension joins use
// different algorithms depending on the dimension's size.
//
//   lineitems (fact, 200k rows: key=order_id,
//              payload=[customer_id:4B | product_id:4B | amount:8B])
//     JOIN orders     (50k rows, key=order_id)    -- 4 lineitems/order
//     JOIN customers  (10k rows, key=customer_id) -- selective broadcast
//     JOIN products   (500 rows, key=product_id)  -- tiny: broadcast join
#include <cstdio>

#include "baseline/broadcast_join.h"
#include "common/rng.h"
#include "core/track_join.h"
#include "ops/aggregate.h"
#include "workload/generator.h"

namespace {

constexpr uint32_t kNodes = 4;

/// A dimension table: keys [1, rows] once each, random node placement.
tj::PartitionedTable Dimension(const char* name, uint64_t rows,
                               uint32_t payload_width, uint64_t seed) {
  tj::PartitionedTable table(name, kNodes, payload_width);
  tj::Rng rng(seed);
  std::vector<uint8_t> payload(payload_width);
  for (uint64_t key = 1; key <= rows; ++key) {
    tj::SynthesizePayload(seed, key, 0, payload_width, payload.data());
    table.node(rng.Below(kNodes)).Append(key, payload.data());
  }
  return table;
}

}  // namespace

int main() {
  constexpr uint64_t kOrders = 50000;
  constexpr uint64_t kCustomers = 10000;
  constexpr uint64_t kProducts = 500;
  constexpr uint32_t kLineitemsPerOrder = 4;

  // Fact table: payload embeds the two foreign keys at offsets 0 and 4.
  tj::PartitionedTable lineitems("lineitems", kNodes, 16);
  {
    tj::Rng rng(1);
    uint8_t payload[16];
    for (uint64_t order = 1; order <= kOrders; ++order) {
      for (uint32_t li = 0; li < kLineitemsPerOrder; ++li) {
        uint64_t customer = 1 + rng.Below(kCustomers);
        uint64_t product = 1 + rng.Below(kProducts);
        uint64_t amount = rng.Below(100000);
        for (int b = 0; b < 4; ++b) payload[b] = customer >> (8 * b);
        for (int b = 0; b < 4; ++b) payload[4 + b] = product >> (8 * b);
        for (int b = 0; b < 8; ++b) payload[8 + b] = amount >> (8 * b);
        lineitems.node(rng.Below(kNodes)).Append(order, payload);
      }
    }
  }
  tj::PartitionedTable orders = Dimension("orders", kOrders, 12, 2);
  tj::PartitionedTable customers = Dimension("customers", kCustomers, 24, 3);
  tj::PartitionedTable products = Dimension("products", kProducts, 8, 4);

  tj::JoinConfig config;
  config.key_bytes = 4;
  config.materialize = true;

  uint64_t total_network = 0;
  auto report = [&](const char* step, const tj::JoinResult& result) {
    total_network += result.traffic.TotalNetworkBytes();
    std::printf("%-28s %10llu rows   %10s network\n", step,
                static_cast<unsigned long long>(result.output_rows),
                tj::FormatBytes(result.traffic.TotalNetworkBytes()).c_str());
  };

  // Join 1: fact x orders on order_id — 4-phase track join.
  tj::JoinResult j1 = tj::RunTrackJoin4(lineitems, orders, config);
  report("lineitems JOIN orders", j1);

  // Join 2: re-key on customer_id (offset 0 of the lineitem payload, which
  // is now the leading payload segment of the join output).
  tj::PartitionedTable by_customer =
      tj::RekeyByPayloadField(*j1.output, /*offset=*/0, /*bytes=*/4, "j1");
  tj::JoinResult j2 = tj::RunTrackJoin4(by_customer, customers, config);
  report("... JOIN customers", j2);

  // Join 3: products is tiny — broadcast join wins (paper Section 3.1).
  tj::PartitionedTable by_product =
      tj::RekeyByPayloadField(*j2.output, /*offset=*/4, /*bytes=*/4, "j2");
  tj::JoinResult j3 =
      tj::RunBroadcastJoin(by_product, products, config, tj::Direction::kStoR);
  report("... JOIN products (BJ-S)", j3);

  uint64_t expected = kOrders * kLineitemsPerOrder;
  if (j3.output_rows != expected) {
    std::fprintf(stderr, "expected %llu rows, got %llu\n",
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(j3.output_rows));
    return 1;
  }

  // Final aggregation, like the paper's queries ("4-6 joins followed by
  // aggregation"): SUM(amount) GROUP BY product_id. The join output's
  // payload still leads with the lineitem payload, so product_id sits at
  // offset 4 and amount at offset 8.
  tj::AggregateConfig agg;
  agg.group_by = tj::FieldRef::Payload(4, 4);
  agg.value = tj::FieldRef::Payload(8, 8);
  tj::AggregateResult totals = tj::RunDistributedAggregate(*j3.output, agg);
  total_network += totals.traffic.TotalNetworkBytes();
  std::printf("%-28s %10llu groups %10s network (pre-aggregated)\n",
              "SUM(amount) BY product",
              static_cast<unsigned long long>(totals.groups),
              tj::FormatBytes(totals.traffic.TotalNetworkBytes()).c_str());
  if (totals.groups != kProducts) {
    std::fprintf(stderr, "expected %llu groups\n",
                 static_cast<unsigned long long>(kProducts));
    return 1;
  }

  std::printf("\nplan complete: %llu result rows -> %llu aggregates, "
              "%s total network traffic\n",
              static_cast<unsigned long long>(j3.output_rows),
              static_cast<unsigned long long>(totals.groups),
              tj::FormatBytes(total_network).c_str());
  return 0;
}
