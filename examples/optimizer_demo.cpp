// Query-optimizer demo: the Section 3.1 cost model picks a join algorithm
// from statistics alone, and the simulator then validates the choice.
//
// Sweeps payload widths and table-size ratios through the break-even
// regions the paper identifies (2*wk vs max payload; tiny tables ->
// broadcast join).
#include <cstdio>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "costmodel/optimizer.h"
#include "workload/generator.h"

namespace {

tj::JoinResult Run(tj::JoinAlgorithm algorithm, const tj::Workload& w,
                   const tj::JoinConfig& config) {
  switch (algorithm) {
    case tj::JoinAlgorithm::kBroadcastR:
      return tj::RunBroadcastJoin(w.r, w.s, config, tj::Direction::kRtoS);
    case tj::JoinAlgorithm::kBroadcastS:
      return tj::RunBroadcastJoin(w.r, w.s, config, tj::Direction::kStoR);
    case tj::JoinAlgorithm::kHash:
      return tj::RunHashJoin(w.r, w.s, config);
    case tj::JoinAlgorithm::kTrack2R:
      return tj::RunTrackJoin2(w.r, w.s, config, tj::Direction::kRtoS);
    case tj::JoinAlgorithm::kTrack2S:
      return tj::RunTrackJoin2(w.r, w.s, config, tj::Direction::kStoR);
    case tj::JoinAlgorithm::kTrack3:
      return tj::RunTrackJoin3(w.r, w.s, config);
    case tj::JoinAlgorithm::kTrack4:
      return tj::RunTrackJoin4(w.r, w.s, config);
  }
  std::abort();
}

void Scenario(const char* name, uint64_t matched, uint64_t r_unmatched,
              uint64_t s_unmatched, uint32_t r_payload, uint32_t s_payload) {
  constexpr uint32_t kNodes = 8;
  tj::WorkloadSpec spec;
  spec.num_nodes = kNodes;
  spec.matched_keys = matched;
  spec.r_unmatched = r_unmatched;
  spec.s_unmatched = s_unmatched;
  spec.r_payload = r_payload;
  spec.s_payload = s_payload;
  tj::Workload w = tj::GenerateWorkload(spec);

  tj::JoinConfig config;
  config.key_bytes = 4;

  tj::JoinStats stats;
  stats.num_nodes = kNodes;
  stats.t_r = static_cast<double>(w.r.TotalRows());
  stats.t_s = static_cast<double>(w.s.TotalRows());
  stats.d_r = static_cast<double>(matched + r_unmatched);
  stats.d_s = static_cast<double>(matched + s_unmatched);
  stats.w_k = config.key_bytes;
  stats.w_r = r_payload;
  stats.w_s = s_payload;
  stats.s_r = static_cast<double>(matched) / (matched + r_unmatched);
  stats.s_s = static_cast<double>(matched) / (matched + s_unmatched);

  auto plans = tj::RankAlgorithms(stats);
  std::printf("%s\n", name);
  std::printf("  optimizer ranking: ");
  for (const auto& plan : plans) {
    std::printf("%s(%.1f MiB) ", tj::JoinAlgorithmName(plan.algorithm),
                plan.modeled_bytes / (1 << 20));
  }
  std::printf("\n");

  // Validate: simulate the optimizer's pick and the runner-up.
  tj::JoinResult best = Run(plans[0].algorithm, w, config);
  tj::JoinResult second = Run(plans[1].algorithm, w, config);
  std::printf("  simulated: %s = %.1f MiB, %s = %.1f MiB  -> pick %s\n\n",
              tj::JoinAlgorithmName(plans[0].algorithm),
              best.traffic.TotalNetworkBytes() / double(1 << 20),
              tj::JoinAlgorithmName(plans[1].algorithm),
              second.traffic.TotalNetworkBytes() / double(1 << 20),
              best.traffic.TotalNetworkBytes() <=
                      second.traffic.TotalNetworkBytes()
                  ? "confirmed"
                  : "second-guessed");
}

}  // namespace

int main() {
  std::printf("=== Cost-model-driven algorithm selection (Section 3.1) "
              "===\n\n");
  Scenario("wide payloads, unique keys (track join territory):", 180000,
           20000, 20000, 16, 56);
  Scenario("tiny payloads (hash join territory, 2*wk > max payload):", 180000,
           20000, 20000, 2, 3);
  Scenario("tiny R table (broadcast join territory):", 2000, 0, 198000, 16,
           56);
  Scenario("selective join (track join skips unmatched keys):", 40000, 360000,
           360000, 16, 40);
  return 0;
}
