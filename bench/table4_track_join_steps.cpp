// Table 4: 4-phase track join step-by-step breakdown on workloads X and Y
// (original and shuffled orderings).
//
// Paper highlights (X orig, seconds): sort local 0.979/1.401, aggregate
// 0.229, transfer key+count 26.80, generate schedules 1.627, transfer
// R->S tuples 2.664 (27.53 shuffled), final merge-joins 0.419/0.342.
// "For X, scheduling takes half the time of local hash join, but is
// redundant since 2-phase track join suffices. For Y, scheduling is
// crucial and takes almost negligible time."
//
// CPU rows: measured phase wall times projected linearly; transfer and
// local-copy rows modeled from byte counts (0.093 GB/s NIC, 12.4 GB/s RAM
// copy), split by message type exactly as the paper's rows are. All rows
// come from the run's StepProfile records (obs/step_profile.h) — the same
// per-phase observability data `tjsim --profile` prints.
#include <cinttypes>
#include <cstdio>

#include "bench/real_bench.h"
#include "core/track_join.h"
#include "obs/step_profile.h"

namespace tj {
namespace bench {
namespace {

constexpr double kNicBytesPerSec = 0.093e9;
constexpr double kRamCopyBytesPerSec = 12.4e9;

void RunColumn(const char* header, const RealJoinSpec& spec,
               bool original_order, uint64_t scale, uint32_t nodes,
               uint64_t seed, ThreadPool* pool) {
  JoinConfig config = RealConfig(spec);
  config.thread_pool = pool;
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  JoinResult result = RunTrackJoin4(w.r, w.s, config);
  const StepProfile& prof = result.profile;
  const double p = static_cast<double>(scale);
  auto cpu = [&](const char* name) { return prof.WallSeconds(name) * p; };
  auto nic = [&](MessageType type) {
    return prof.NetworkBytes(type) / nodes * p / kNicBytesPerSec;
  };
  auto ram = [&](MessageType type) {
    return prof.LocalBytes(type) / nodes * p / kRamCopyBytesPerSec;
  };

  std::printf("%s\n", header);
  std::printf("  Sort local R tuples            %10.3f\n",
              cpu("sort local R tuples"));
  std::printf("  Sort local S tuples            %10.3f\n",
              cpu("sort local S tuples"));
  std::printf("  Aggregate keys                 %10.3f\n",
              cpu("aggregate keys"));
  std::printf("  Hash part. keys, counts        %10.3f\n",
              cpu("hash partition & transfer keys"));
  std::printf("  Transfer key, count            %10.3f\n",
              nic(MessageType::kTrackR) + nic(MessageType::kTrackS));
  std::printf("  Local copy key, count          %10.3f\n",
              ram(MessageType::kTrackR) + ram(MessageType::kTrackS));
  std::printf("  Merge recv. key, count         %10.3f\n",
              cpu("merge received keys"));
  std::printf("  Generate schedules             %10.3f\n",
              cpu("generate schedules & send locations"));
  std::printf("  Tran. R->S keys, nodes         %10.3f\n",
              nic(MessageType::kLocationsToR) + nic(MessageType::kMigrateS));
  std::printf("  Tran. S->R keys, nodes         %10.3f\n",
              nic(MessageType::kLocationsToS) + nic(MessageType::kMigrateR));
  std::printf("  Local copy keys, nodes         %10.3f\n",
              ram(MessageType::kLocationsToR) + ram(MessageType::kLocationsToS) +
                  ram(MessageType::kMigrateR) + ram(MessageType::kMigrateS));
  std::printf("  Keys,nodes => payloads & part. %10.3f\n",
              cpu("selective broadcast & migrate"));
  std::printf("  Transfer R->S tuples           %10.3f\n",
              nic(MessageType::kDataR) + nic(MessageType::kMigrationDataR));
  std::printf("  Transfer S->R tuples           %10.3f\n",
              nic(MessageType::kDataS) + nic(MessageType::kMigrationDataS));
  std::printf("  Local copy R->S tuples         %10.3f\n",
              ram(MessageType::kDataR) + ram(MessageType::kMigrationDataR));
  std::printf("  Local copy S->R tuples         %10.3f\n",
              ram(MessageType::kDataS) + ram(MessageType::kMigrationDataS));
  std::printf("  Merge received tuples          %10.3f\n",
              cpu("merge received tuples"));
  std::printf("  Final merge-join R->S          %10.3f\n",
              cpu("final merge-join R->S"));
  std::printf("  Final merge-join S->R          %10.3f\n\n",
              cpu("final merge-join S->R"));
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 4;
  uint64_t x_scale = args.scale ? args.scale : 2000;
  uint64_t y_scale = args.scale ? args.scale : 500;
  std::printf(
      "=== Table 4: 4-phase track join steps (seconds, projected), %u nodes "
      "===\n\n",
      nodes);
  auto pool = tj::bench::MakePool(args);
  tj::bench::RunColumn("Workload X, original ordering:", tj::WorkloadX(1),
                       true, x_scale, nodes, args.seed, pool.get());
  tj::bench::RunColumn("Workload X, shuffled:", tj::WorkloadX(1), false,
                       x_scale, nodes, args.seed, pool.get());
  tj::bench::RunColumn("Workload Y, original ordering:", tj::WorkloadY(), true,
                       y_scale, nodes, args.seed, pool.get());
  tj::bench::RunColumn("Workload Y, shuffled:", tj::WorkloadY(), false,
                       y_scale, nodes, args.seed, pool.get());
  return 0;
}
