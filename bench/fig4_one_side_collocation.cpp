// Figure 4: 2*10^8 unique 30-byte R tuples join 10^9 60-byte S tuples;
// every key repeats 5 times in S and the repeats follow the placement
// patterns 5,0,0,... / 2,2,1,0,0,... / 1,1,1,1,1,0,0,... (single-side
// intra-table collocation).
//
// Paper: with 5,0,0 all S repeats collocate and track join sends matching
// R tuples to a single node; with 2,2,1 traffic is still well below hash
// join; with 1,1,1,1,1 the selective broadcast pays 5 destinations per
// key. Because R is unique and narrow, shipping R to the S locations stays
// the per-key optimum even then — migration has nothing to consolidate —
// so all track join versions coincide and still undercut hash join.
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

void RunPattern(const std::vector<uint32_t>& pattern, const char* name,
                uint64_t scale, uint32_t nodes, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 200000000ULL / scale;
  spec.r_multiplicity = 1;
  spec.s_multiplicity = 5;
  spec.s_pattern = pattern;
  spec.r_pattern = {1};
  spec.collocation = Collocation::kIntra;
  spec.seed = seed;
  JoinConfig config;
  config.key_bytes = 4;
  spec.r_payload = 30 - config.key_bytes;
  spec.s_payload = 60 - config.key_bytes;
  Workload w = GenerateWorkload(spec);

  std::printf("Pattern: %s  (%" PRIu64 " R x %" PRIu64 " S tuples, "
              "projected x%" PRIu64 ")\n",
              name, w.r.TotalRows(), w.s.TotalRows(), scale);
  std::vector<JoinResult> results = RunAll(w, config);
  PrintTrafficTable(AllAlgorithms(), results, static_cast<double>(scale));
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 10000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 4: 2e8 unique R (30 B) x 1e9 S (60 B, 5 repeats/key), "
      "%u nodes ===\n"
      "Paper: HJ ~60 GiB flat; 5,0,0 -> TJ ~12 GiB; 2,2,1 -> TJ below HJ;\n"
      "1,1,1,1,1 -> TJ pays 5 destinations per key but still beats HJ.\n\n",
      nodes);
  tj::bench::RunPattern({5}, "5,0,0,...", scale, nodes, args.seed);
  tj::bench::RunPattern({2, 2, 1}, "2,2,1,0,0,...", scale, nodes, args.seed);
  tj::bench::RunPattern({1, 1, 1, 1, 1}, "1,1,1,1,1,0,0,...", scale, nodes,
                        args.seed);
  return 0;
}
