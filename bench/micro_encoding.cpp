// Microbenchmark: the traffic-compression codecs of paper section 2.4.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/prefix_group.h"
#include "encoding/varint.h"

namespace tj {
namespace {

std::vector<uint64_t> DenseKeys(int64_t n) {
  Rng rng(3);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Below(static_cast<uint64_t>(n) * 4);
  return keys;
}

void BM_DeltaEncode(benchmark::State& state) {
  auto keys = DenseKeys(state.range(0));
  for (auto _ : state) {
    ByteBuffer buf;
    DeltaEncode(keys, /*presorted=*/false, &buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeltaEncode)->Arg(1 << 12)->Arg(1 << 18);

void BM_DeltaDecode(benchmark::State& state) {
  auto keys = DenseKeys(state.range(0));
  ByteBuffer buf;
  DeltaEncode(keys, false, &buf);
  for (auto _ : state) {
    ByteReader reader(buf);
    auto decoded = DeltaDecode(&reader);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeltaDecode)->Arg(1 << 12)->Arg(1 << 18);

void BM_PrefixGroupEncode(benchmark::State& state) {
  auto keys = DenseKeys(state.range(0));
  for (auto _ : state) {
    ByteBuffer buf;
    PrefixGroupEncode(keys, 32, 12, &buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefixGroupEncode)->Arg(1 << 12)->Arg(1 << 18);

void BM_BitPack(benchmark::State& state) {
  auto keys = DenseKeys(state.range(0));
  for (auto _ : state) {
    ByteBuffer buf;
    BitPacker packer(&buf);
    for (uint64_t k : keys) packer.Put(k & ((1ULL << 30) - 1), 30);
    packer.Flush();
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitPack)->Arg(1 << 12)->Arg(1 << 18);

void BM_Base100Encode(benchmark::State& state) {
  auto keys = DenseKeys(state.range(0));
  for (auto _ : state) {
    ByteBuffer buf;
    for (uint64_t k : keys) EncodeBase100(k, &buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Base100Encode)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
