// Tracker merge-throughput microbench: the loser-tree k-way merge over
// per-source sorted tracking messages (TryMergeTrackingMessages) versus
// the reference decode-concatenate-sort path (TryDecodeTrackingMessage +
// MergeTrackEntries), in wire entries per second.
//
// The grid varies the source count k (the merge fan-in, i.e. cluster
// size from the tracker's point of view) and the cross-source duplication
// factor (how many sources hold each key — Section 2.2's "aggregate at
// the destination" case). Prints one JSON object to stdout;
// tools/bench_smoke.py gates the headline "tracker_merge_tps" against
// tools/bench_baseline.json.
//
//   --scale=<divisor>  divide the 1Mi-entry base input by this (default 4).
//   --seed=<n>         key-draw seed.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/tracker.h"
#include "exec/radix_sort.h"

namespace tj {
namespace bench {

constexpr int kReps = 3;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-kReps wall seconds of `fn` (cold-cache noise goes to the max).
template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    double start = Now();
    fn();
    best = std::min(best, Now() - start);
  }
  return best;
}

/// One source node's aggregated key projection: `entries` draws (with
/// replacement, so within-source repeats become counts) from a universe of
/// `total / dup` keys, so each key lands on ~`dup` sources.
std::vector<KeyCount> MakeSource(Rng* rng, uint64_t entries,
                                 uint64_t universe) {
  std::vector<uint64_t> keys(entries);
  for (uint64_t& k : keys) k = rng->Next() % universe;
  RadixSortKeys(&keys);
  std::vector<KeyCount> out;
  uint64_t i = 0;
  while (i < keys.size()) {
    uint64_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    out.push_back(KeyCount{keys[i], j - i});
    i = j;
  }
  return out;
}

struct GridPoint {
  uint32_t sources;
  uint64_t dup;
  bool delta;
  uint64_t wire_entries;
  uint64_t merged;
  double merge_tps;
  double reference_tps;
};

/// Builds k single-destination tracking messages and times both merge
/// paths over them.
GridPoint RunPoint(uint32_t k, uint64_t dup, bool delta, uint64_t total,
                   uint64_t seed) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  config.delta_tracking = delta;

  // Universe fits key_bytes; dup sources drawing from total/dup keys give
  // each key ~dup holders.
  const uint64_t universe = std::max<uint64_t>(total / dup, 1);
  TJ_CHECK_LE(universe, 1ULL << 32);

  Rng rng(seed);
  std::vector<Message> msgs;
  uint64_t wire_entries = 0;
  for (uint32_t src = 0; src < k; ++src) {
    std::vector<KeyCount> kcs = MakeSource(&rng, total / k, universe);
    wire_entries += kcs.size();
    // num_nodes=1: every key hashes to destination 0, i.e. this tracker.
    std::vector<ByteBuffer> bufs =
        EncodeTrackingMessages(kcs, config, /*with_counts=*/true, 1);
    TJ_CHECK_EQ(bufs.size(), size_t{1});
    msgs.push_back(Message{src, MessageType::kTrackR, std::move(bufs[0])});
  }

  uint64_t merged = 0;
  double merge_s = BestOf([&] {
    std::vector<TrackEntry> out;
    Status s = TryMergeTrackingMessages(msgs, config, true, &out);
    TJ_CHECK(s.ok()) << s.ToString();
    merged = out.size();
  });
  double reference_s = BestOf([&] {
    std::vector<TrackEntry> all;
    std::vector<TrackEntry> entries;
    for (const Message& msg : msgs) {
      Status s = TryDecodeTrackingMessage(msg, config, true, &entries);
      TJ_CHECK(s.ok()) << s.ToString();
      all.insert(all.end(), entries.begin(), entries.end());
    }
    MergeTrackEntries(&all);
    TJ_CHECK_EQ(all.size(), merged);
  });

  return GridPoint{k,      dup,
                   delta,  wire_entries,
                   merged, static_cast<double>(wire_entries) / merge_s,
                   static_cast<double>(wire_entries) / reference_s};
}

}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  using namespace tj;
  bench::Args args = bench::ParseArgs(argc, argv);
  const uint64_t divisor = args.scale ? args.scale : 4;
  const uint64_t total = (1ULL << 20) / divisor;

  // Plain-format grid over fan-in and duplication, plus one delta-coded
  // point: delta streams merge through the same cursor, so the gate on the
  // plain headline covers both decoders' shared path.
  std::vector<bench::GridPoint> grid;
  for (uint32_t k : {2u, 8u, 32u}) {
    for (uint64_t dup : {uint64_t{1}, uint64_t{4}}) {
      grid.push_back(bench::RunPoint(k, dup, false, total, args.seed));
    }
  }
  grid.push_back(bench::RunPoint(8, 4, true, total, args.seed));

  double headline = 0;
  double headline_delta = 0;
  for (const bench::GridPoint& g : grid) {
    if (g.sources == 8 && g.dup == 4) {
      (g.delta ? headline_delta : headline) = g.merge_tps;
    }
  }

  std::printf("{\n");
  std::printf("  \"entries_per_point\": %" PRIu64 ",\n", total);
  std::printf("  \"tracker_merge_tps\": %.0f,\n", headline);
  std::printf("  \"tracker_merge_delta_tps\": %.0f,\n", headline_delta);
  std::printf("  \"merge_grid\": [\n");
  for (size_t i = 0; i < grid.size(); ++i) {
    const bench::GridPoint& g = grid[i];
    std::printf("    {\"sources\": %u, \"dup\": %" PRIu64
                ", \"delta\": %s, \"wire_entries\": %" PRIu64
                ", \"merged_keys\": %" PRIu64
                ", \"merge_tps\": %.0f, \"reference_tps\": %.0f}%s\n",
                g.sources, g.dup, g.delta ? "true" : "false", g.wire_entries,
                g.merged, g.merge_tps, g.reference_tps,
                i + 1 < grid.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
