// Section 3.2 ablation: the tracking-aware (rid-based, late-materialized)
// hash join against plain hash join and 2-phase track join.
//
// The paper proves 2TJ subsumes rid-HJ: tracking ships each node's
// DISTINCT keys where rid-HJ ships the full key column, and the payload
// schedule is identical. This bench sweeps the payload width to show the
// gap, and shows rid-HJ's collapse when the output cardinality explodes.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/rid_hash_join.h"

namespace tj {
namespace bench {
namespace {

void Sweep(uint64_t scale, uint32_t nodes, uint64_t seed) {
  std::printf("Unique keys, 4-byte keys, narrow side 8 B payload; sweeping "
              "the wide side (GiB projected x%" PRIu64 "):\n\n",
              scale);
  std::printf("  %-10s %12s %12s %12s\n", "wide bytes", "HJ", "rid-HJ",
              "2TJ-R");
  for (uint32_t wide : {8u, 16u, 32u, 64u, 128u}) {
    WorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.matched_keys = 100000000ULL / scale;
    spec.r_payload = 8;
    spec.s_payload = wide;
    spec.seed = seed;
    Workload w = GenerateWorkload(spec);
    JoinConfig config;
    config.key_bytes = 4;
    double p = static_cast<double>(scale);
    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult rid = RunRidHashJoin(w.r, w.s, config);
    JoinResult tj2 = RunTrackJoin2(w.r, w.s, config, Direction::kRtoS);
    std::printf("  %-10u %12.3f %12.3f %12.3f\n", wide,
                Gib(hj.traffic.TotalNetworkBytes() * p),
                Gib(rid.traffic.TotalNetworkBytes() * p),
                Gib(tj2.traffic.TotalNetworkBytes() * p));
  }
  std::printf("\n");
}

void OutputBlowup(uint64_t scale, uint32_t nodes, uint64_t seed) {
  std::printf("Repeated keys (multiplicity m on both sides, output m^2 per "
              "key): late materialization pays per OUTPUT row:\n\n");
  std::printf("  %-6s %12s %12s %12s\n", "m", "HJ", "rid-HJ", "4TJ");
  for (uint32_t m : {1u, 2u, 4u, 8u}) {
    WorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.matched_keys = 20000000ULL / scale / m;
    spec.r_multiplicity = m;
    spec.s_multiplicity = m;
    spec.r_payload = 12;
    spec.s_payload = 28;
    spec.seed = seed;
    Workload w = GenerateWorkload(spec);
    JoinConfig config;
    config.key_bytes = 4;
    double p = static_cast<double>(scale);
    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult rid = RunRidHashJoin(w.r, w.s, config);
    JoinResult tj4 = RunTrackJoin4(w.r, w.s, config);
    std::printf("  %-6u %12.3f %12.3f %12.3f\n", m,
                Gib(hj.traffic.TotalNetworkBytes() * p),
                Gib(rid.traffic.TotalNetworkBytes() * p),
                Gib(tj4.traffic.TotalNetworkBytes() * p));
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 10000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf("=== Ablation (paper section 3.2): tracking-aware hash join "
              "===\n\n");
  tj::bench::Sweep(scale, nodes, args.seed);
  tj::bench::OutputBlowup(scale, nodes, args.seed);
  return 0;
}
