// Section 5 ablation: projected end-to-end time for a pipelined
// implementation that streams input slices through the phase chain so CPU
// and transfers overlap.
//
// "A pipelined implementation can reduce end-to-end time by overlapping
// CPU and network. Track join is more complex than hash join, offering
// more choices for overlap." Each run's measured per-phase CPU times and
// per-phase transfer volumes feed a two-resource (CPU, NIC) pipeline
// schedule; K is the number of input slices in flight.
#include <cinttypes>
#include <cstdio>

#include "bench/real_bench.h"
#include "costmodel/pipeline.h"

namespace tj {
namespace bench {
namespace {

void Project(const char* label, const RealJoinSpec& spec, bool original_order,
             uint64_t scale, uint32_t nodes, uint64_t seed) {
  JoinConfig config = RealConfig(spec);
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  NetworkTimeModel model;

  std::printf("%s\n", label);
  std::printf("  %-6s %10s %10s %10s %10s %10s %8s\n", "algo", "K=1", "K=4",
              "K=16", "K=64", "bound", "speedup");
  const JoinAlgorithm algorithms[] = {JoinAlgorithm::kHash,
                                      JoinAlgorithm::kTrack2R,
                                      JoinAlgorithm::kTrack4};
  for (JoinAlgorithm algorithm : algorithms) {
    JoinResult result = RunAlgorithm(algorithm, w.r, w.s, config);
    auto stages = BuildPipelineStages(result, model, nodes,
                                      static_cast<double>(scale));
    double cpu = 0, net = 0;
    for (const auto& stage : stages) {
      cpu += stage.cpu_seconds;
      net += stage.net_seconds;
    }
    double serial = PipelineMakespan(stages, 1);
    double k64 = PipelineMakespan(stages, 64);
    std::printf("  %-6s %10.2f %10.2f %10.2f %10.2f %10.2f %7.2fx\n",
                JoinAlgorithmName(algorithm), serial,
                PipelineMakespan(stages, 4), PipelineMakespan(stages, 16),
                k64, std::max(cpu, net), serial / k64);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 4;
  std::printf(
      "=== Ablation (paper section 5): pipelined execution projection, %u "
      "nodes ===\n"
      "Seconds at paper scale; K = input slices in flight; 'bound' = "
      "max(total CPU, total NET).\n(Single-core CPU seconds projected "
      "linearly — the paper's nodes had 16 hardware threads,\nso the CPU "
      "side is an upper bound.)\n\n",
      nodes);
  tj::bench::Project("Workload X, original ordering:", tj::WorkloadX(1), true,
                     args.scale ? args.scale : 2000, nodes, args.seed);
  tj::bench::Project("Workload Y, shuffled:", tj::WorkloadY(), false,
                     args.scale ? args.scale : 500, nodes, args.seed);
  return 0;
}
