// Section 5 ablation: projected end-to-end time for a pipelined
// implementation that streams input slices through the phase chain so CPU
// and transfers overlap.
//
// "A pipelined implementation can reduce end-to-end time by overlapping
// CPU and network. Track join is more complex than hash join, offering
// more choices for overlap." Each run's measured per-phase CPU times and
// per-phase transfer volumes feed a two-resource (CPU, NIC) pipeline
// schedule; K is the number of input slices in flight.
#include <cinttypes>
#include <cstdio>

#include "bench/real_bench.h"
#include "core/pipelined_track_join.h"
#include "costmodel/pipeline.h"
#include "workload/generator.h"

namespace tj {
namespace bench {
namespace {

void Project(const char* label, const RealJoinSpec& spec, bool original_order,
             uint64_t scale, uint32_t nodes, uint64_t seed) {
  JoinConfig config = RealConfig(spec);
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  NetworkTimeModel model;

  std::printf("%s\n", label);
  std::printf("  %-6s %10s %10s %10s %10s %10s %8s\n", "algo", "K=1", "K=4",
              "K=16", "K=64", "bound", "speedup");
  const JoinAlgorithm algorithms[] = {JoinAlgorithm::kHash,
                                      JoinAlgorithm::kTrack2R,
                                      JoinAlgorithm::kTrack4};
  for (JoinAlgorithm algorithm : algorithms) {
    JoinResult result = RunAlgorithm(algorithm, w.r, w.s, config);
    auto stages = BuildPipelineStages(result, model, nodes,
                                      static_cast<double>(scale));
    double cpu = 0, net = 0;
    for (const auto& stage : stages) {
      cpu += stage.cpu_seconds;
      net += stage.net_seconds;
    }
    double serial = PipelineMakespan(stages, 1);
    double k64 = PipelineMakespan(stages, 64);
    std::printf("  %-6s %10.2f %10.2f %10.2f %10.2f %10.2f %7.2fx\n",
                JoinAlgorithmName(algorithm), serial,
                PipelineMakespan(stages, 4), PipelineMakespan(stages, 16),
                k64, std::max(cpu, net), serial / k64);
  }
  std::printf("\n");
}

// Event-driven fabric grid: egress scheduler (fifo | drr) x chunk size x
// credit window, on the EXPERIMENTS.md "Makespan blame" workload. Unlike
// the cost-model projection above, each cell runs the real pipelined
// driver and decomposes its critical path, so the table shows where the
// single-FIFO egress loses time to head-of-line blocking and what DRR
// buys back. Blame columns are percent of makespan.
void FabricGridCell(const Workload& w, bool drr, uint64_t chunk_bytes,
                    uint64_t window_bytes) {
  JoinConfig config;
  config.pipeline.enabled = true;
  config.pipeline.drr = drr;
  config.pipeline.chunk_bytes = chunk_bytes;
  config.pipeline.inbox_budget_bytes = window_bytes;
  config.collect_blame = true;
  Result<JoinResult> result =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  if (!result.ok()) {
    std::printf("  %-5s %6" PRIu64 " %8" PRIu64 "  error: %s\n",
                drr ? "drr" : "fifo", chunk_bytes, window_bytes,
                result.status().ToString().c_str());
    return;
  }
  const JoinResult& r = *result;
  const BlameReport& blame = *r.blame;
  const double mk = static_cast<double>(blame.makespan_us);
  auto pct = [&](BlameClass c) {
    return 100.0 * static_cast<double>(blame.class_us[static_cast<int>(c)]) /
           mk;
  };
  std::printf("  %-5s %6" PRIu64 " %8" PRIu64 " %9" PRId64 "us %9.0fus "
              "%+7.1f%% %10.1f%% %10.1f%% %8.1f%% %6.1f%%%s\n",
              drr ? "drr" : "fifo", chunk_bytes, window_bytes,
              blame.makespan_us, r.barrier_makespan_seconds * 1e6,
              100.0 * (1.0 - r.makespan_seconds / r.barrier_makespan_seconds),
              pct(BlameClass::kCreditHol), pct(BlameClass::kEgressHol),
              pct(BlameClass::kDrrWait),
              100.0 * static_cast<double>(blame.hol_us) / mk,
              blame.reconciled ? "" : "  UNRECONCILED");
}

void FabricGrid(uint32_t nodes, uint64_t keys, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.seed = seed;
  spec.matched_keys = keys;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  Workload w = GenerateWorkload(spec);

  std::printf(
      "=== Fabric grid: egress scheduler x chunk x credit window, %u nodes "
      "===\nEvent-driven pipelined 4TJ, %" PRIu64
      " matched keys (rmult=2, smult=3) — the\nEXPERIMENTS.md blame-table "
      "workload. 'window' is --inbox-budget; blame\ncolumns are %% of "
      "makespan; HOL = credit_hol + egress_hol.\n\n",
      nodes, keys);
  std::printf("  %-5s %6s %8s %11s %11s %8s %11s %11s %9s %7s\n", "sched",
              "chunk", "window", "makespan", "barrier", "overlap",
              "credit_hol", "egress_hol", "drr_wait", "HOL");
  const uint64_t chunks[] = {1024, 4096, 16384};
  const uint64_t windows[] = {1u << 15, 1u << 19};
  for (bool drr : {false, true}) {
    for (uint64_t window : windows) {
      for (uint64_t chunk : chunks) {
        FabricGridCell(w, drr, chunk, window);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 4;
  std::printf(
      "=== Ablation (paper section 5): pipelined execution projection, %u "
      "nodes ===\n"
      "Seconds at paper scale; K = input slices in flight; 'bound' = "
      "max(total CPU, total NET).\n(Single-core CPU seconds projected "
      "linearly — the paper's nodes had 16 hardware threads,\nso the CPU "
      "side is an upper bound.)\n\n",
      nodes);
  tj::bench::Project("Workload X, original ordering:", tj::WorkloadX(1), true,
                     args.scale ? args.scale : 2000, nodes, args.seed);
  tj::bench::Project("Workload Y, shuffled:", tj::WorkloadY(), false,
                     args.scale ? args.scale : 500, nodes, args.seed);
  tj::bench::FabricGrid(args.nodes ? args.nodes : 8,
                        args.scale ? args.scale : 100000, args.seed);
  return 0;
}
