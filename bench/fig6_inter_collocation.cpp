// Figure 6: the Figure 5 dataset with inter- AND intra-table collocation —
// matching keys of both tables share nodes per the pattern.
//
// Paper: "When all 10 repeats are collocated, track join eliminates all
// transfers of payloads. Messages used during the tracking phase can only
// be affected by the same case of locality as hash join."
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

void RunPattern(const std::vector<uint32_t>& pattern, const char* name,
                uint64_t scale, uint32_t nodes, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 40000000ULL / scale;
  spec.r_multiplicity = 5;
  spec.s_multiplicity = 5;
  spec.r_pattern = pattern;
  spec.s_pattern = pattern;
  spec.collocation = Collocation::kInter;
  spec.seed = seed;
  JoinConfig config;
  config.key_bytes = 4;
  spec.r_payload = 30 - config.key_bytes;
  spec.s_payload = 60 - config.key_bytes;
  Workload w = GenerateWorkload(spec);

  std::printf("Pattern: %s  (%" PRIu64 " tuples/table, projected x%" PRIu64
              ")\n",
              name, w.r.TotalRows(), scale);
  std::vector<JoinResult> results = RunAll(w, config);
  PrintTrafficTable(AllAlgorithms(), results, static_cast<double>(scale));
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 6: 2e8 x 2e8 tuples, 4e7 keys, 5+5 repeats, inter- & "
      "intra-table collocation, %u nodes ===\n"
      "Paper: with 5,0,0 all ten repeats share a node and track join ships\n"
      "ZERO payload bytes; hash join stays ~16 GiB regardless.\n\n",
      nodes);
  tj::bench::RunPattern({5}, "5,0,0,...", scale, nodes, args.seed);
  tj::bench::RunPattern({2, 2, 1}, "2,2,1,0,0,...", scale, nodes, args.seed);
  tj::bench::RunPattern({1, 1, 1, 1, 1}, "1,1,1,1,1,0,0,...", scale, nodes,
                        args.seed);
  return 0;
}
