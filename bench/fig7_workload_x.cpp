// Figure 7: the slowest join sub-query of workload X's slowest query (Q1)
// in its ORIGINAL tuple ordering, priced under fixed-byte, variable-byte
// and dictionary encodings.
//
// Paper: the original ordering shows locality, so track join's payload
// transfers shrink well below hash join's under every encoding; the
// off-chart annotations are BJ-R 129.1/235.7/106.2 GiB and BJ-S
// 254.1/424.9/200.3 GiB for the three encodings.
#include "bench/real_bench.h"

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 7: workload X Q1 slowest join, original ordering ===\n"
      "Paper (GiB): BJ-R 129.1/235.7/106.2 and BJ-S 254.1/424.9/200.3 across\n"
      "fixed/variable/dictionary; HJ ~25/45/20; TJ roughly half of HJ.\n\n");
  tj::bench::RunRealEncodings(
      tj::WorkloadX(1), /*original_order=*/true,
      {tj::EncodingScheme::kFixedByte, tj::EncodingScheme::kVariableByte,
       tj::EncodingScheme::kDictionary},
      scale, nodes, args.seed);
  return 0;
}
