// Section 2.4 ablation: traffic compression on top of track join.
//
// Quantifies the three techniques the paper describes: delta-coding sorted
// tracking key streams, grouping location messages by node, and
// radix-prefix grouping of key columns — all orthogonal to the transfer
// schedule itself (tuple traffic is unchanged).
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "encoding/delta.h"
#include "encoding/prefix_group.h"

namespace tj {
namespace bench {
namespace {

void RunToggles(uint64_t scale, uint32_t nodes, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 20000000ULL / scale;
  spec.s_multiplicity = 5;
  spec.s_pattern = {1, 1, 1, 1, 1};
  spec.collocation = Collocation::kIntra;
  spec.r_payload = 16;
  spec.s_payload = 16;
  spec.seed = seed;
  Workload w = GenerateWorkload(spec);

  std::printf("4-phase track join, %" PRIu64 " dense keys, 5 S-repeats "
              "scattered (worst case for location messages):\n\n",
              spec.matched_keys);
  std::printf("  %-28s %14s %14s %14s\n", "configuration", "keys&counts",
              "keys&nodes", "total GiB");
  struct Combo {
    const char* name;
    bool delta;
    bool group;
  };
  for (const Combo& combo :
       {Combo{"plain", false, false}, Combo{"delta tracking", true, false},
        Combo{"grouped locations", false, true},
        Combo{"delta + grouped", true, true}}) {
    JoinConfig config;
    config.key_bytes = 4;
    config.delta_tracking = combo.delta;
    config.group_locations = combo.group;
    JoinResult result = RunTrackJoin4(w.r, w.s, config);
    double p = static_cast<double>(scale);
    std::printf("  %-28s %14.3f %14.3f %14.3f\n", combo.name,
                Gib(result.traffic.NetworkBytes(TrafficClass::kKeysAndCounts) * p),
                Gib(result.traffic.NetworkBytes(TrafficClass::kKeysAndNodes) * p),
                Gib(result.traffic.TotalNetworkBytes() * p));
  }
  std::printf("\n");
}

void RunKeyColumnCodecs(uint64_t seed) {
  // A sorted dense key column as one node would ship during tracking.
  std::printf("Key-column codecs (1M dense 27-bit keys, bytes per key):\n\n");
  Rng rng(seed);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000000; ++i) keys.push_back(rng.Below(1 << 27));
  uint64_t raw = keys.size() * 4;
  uint64_t delta = DeltaEncodedSize(keys, /*presorted=*/false);
  uint32_t best_prefix = BestPrefixBits(keys, 27);
  uint64_t grouped = PrefixGroupEncodedSize(keys, 27, best_prefix);
  std::printf("  %-24s %10.3f\n", "fixed 4-byte",
              static_cast<double>(raw) / keys.size());
  std::printf("  %-24s %10.3f\n", "delta + LEB128",
              static_cast<double>(delta) / keys.size());
  std::printf("  %-24s %10.3f  (prefix bits = %u)\n", "radix-prefix grouping",
              static_cast<double>(grouped) / keys.size(), best_prefix);
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf("=== Ablation (paper section 2.4): traffic compression layers "
              "===\n\n");
  tj::bench::RunToggles(scale, nodes, args.seed);
  tj::bench::RunKeyColumnCodecs(args.seed);
  return 0;
}
