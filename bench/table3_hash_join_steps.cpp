// Table 3: distributed hash join step-by-step breakdown on workloads X and
// Y (original and shuffled orderings).
//
// Paper rows (seconds, X orig): hash partition R 0.347 / S 0.478;
// transfer R 29.464 / S 57.199; local copy 0.115; sort received R 1.145 /
// S 1.627; final merge-join 0.601. Shuffling barely changes hash join.
//
// CPU rows are measured phase wall times on the scaled input (projected
// linearly); transfer and local-copy rows are modeled from the measured
// byte counts (0.093 GB/s NIC, 12.4 GB/s RAM-to-RAM copy — the paper's
// hardware numbers). All rows come from the run's StepProfile records
// (obs/step_profile.h) — the same per-phase observability data the
// production path records and `tjsim --profile` prints.
#include <cinttypes>
#include <cstdio>

#include "baseline/hash_join.h"
#include "bench/real_bench.h"
#include "obs/step_profile.h"

namespace tj {
namespace bench {
namespace {

constexpr double kNicBytesPerSec = 0.093e9;
constexpr double kRamCopyBytesPerSec = 12.4e9;

struct Steps {
  double partition_r, partition_s;
  double transfer_r, transfer_s;
  double local_copy;
  double sort_r, sort_s;
  double merge_join;
};

Steps RunSteps(const RealJoinSpec& spec, bool original_order, uint64_t scale,
               uint32_t nodes, uint64_t seed, ThreadPool* pool) {
  JoinConfig config = RealConfig(spec);
  config.thread_pool = pool;
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  JoinResult result = RunHashJoin(w.r, w.s, config);
  const StepProfile& prof = result.profile;
  double p = static_cast<double>(scale);
  Steps steps{};
  steps.partition_r =
      prof.WallSeconds("hash partition & transfer R tuples") * p;
  steps.partition_s =
      prof.WallSeconds("hash partition & transfer S tuples") * p;
  steps.sort_r = prof.WallSeconds("sort received R tuples") * p;
  steps.sort_s = prof.WallSeconds("sort received S tuples") * p;
  steps.merge_join = prof.WallSeconds("final merge-join") * p;
  // Per-node transfers overlap; the busiest sender bounds the step time.
  steps.transfer_r =
      prof.NetworkBytes(MessageType::kDataR) / nodes * p / kNicBytesPerSec;
  steps.transfer_s =
      prof.NetworkBytes(MessageType::kDataS) / nodes * p / kNicBytesPerSec;
  steps.local_copy = prof.TotalLocalBytes() / nodes * p / kRamCopyBytesPerSec;
  return steps;
}

void PrintColumn(const char* header, const Steps& s) {
  std::printf("%s\n", header);
  std::printf("  Hash partition R tuples   %10.3f\n", s.partition_r);
  std::printf("  Hash partition S tuples   %10.3f\n", s.partition_s);
  std::printf("  Transfer R tuples         %10.3f\n", s.transfer_r);
  std::printf("  Transfer S tuples         %10.3f\n", s.transfer_s);
  std::printf("  Local copy tuples         %10.3f\n", s.local_copy);
  std::printf("  Sort received R tuples    %10.3f\n", s.sort_r);
  std::printf("  Sort received S tuples    %10.3f\n", s.sort_s);
  std::printf("  Final merge-join          %10.3f\n\n", s.merge_join);
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 4;
  uint64_t x_scale = args.scale ? args.scale : 2000;
  uint64_t y_scale = args.scale ? args.scale : 500;
  std::printf(
      "=== Table 3: distributed hash join steps (seconds, projected), %u "
      "nodes ===\n"
      "Paper X orig: 0.347/0.478 partition, 29.46/57.20 transfer, 0.115 "
      "copy,\n1.145/1.627 sort, 0.601 merge-join.\n\n",
      nodes);
  auto pool = tj::bench::MakePool(args);
  tj::bench::PrintColumn(
      "Workload X, original ordering:",
      tj::bench::RunSteps(tj::WorkloadX(1), true, x_scale, nodes, args.seed,
                          pool.get()));
  tj::bench::PrintColumn(
      "Workload X, shuffled:",
      tj::bench::RunSteps(tj::WorkloadX(1), false, x_scale, nodes, args.seed,
                          pool.get()));
  tj::bench::PrintColumn(
      "Workload Y, original ordering:",
      tj::bench::RunSteps(tj::WorkloadY(), true, y_scale, nodes, args.seed,
                          pool.get()));
  tj::bench::PrintColumn(
      "Workload Y, shuffled:",
      tj::bench::RunSteps(tj::WorkloadY(), false, y_scale, nodes, args.seed,
                          pool.get()));
  return 0;
}
