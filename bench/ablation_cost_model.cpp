// Section 3.1 validation: the analytic network cost model against the
// simulator's measured traffic, across cluster sizes and widths.
//
// The paper's formulas assume uniform random placement and drop the 1/N
// in-place term for hash join; we enable the discount to compare apples
// to apples. Errors under a few percent validate both sides.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "costmodel/network_cost.h"

namespace tj {
namespace bench {
namespace {

void Compare(uint32_t nodes, uint32_t r_payload, uint32_t s_payload,
             uint64_t keys, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = keys;
  spec.r_payload = r_payload;
  spec.s_payload = s_payload;
  spec.seed = seed;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;

  JoinStats stats;
  stats.num_nodes = nodes;
  stats.t_r = static_cast<double>(w.r.TotalRows());
  stats.t_s = static_cast<double>(w.s.TotalRows());
  stats.d_r = static_cast<double>(keys);
  stats.d_s = static_cast<double>(keys);
  stats.w_k = config.key_bytes;
  stats.w_r = r_payload;
  stats.w_s = s_payload;

  auto report = [&](const char* name, double model, uint64_t measured) {
    double err = measured > 0
                     ? 100.0 * (model - static_cast<double>(measured)) /
                           static_cast<double>(measured)
                     : 0.0;
    std::printf("    %-6s model %12.0f  measured %12" PRIu64 "  error %+6.2f%%\n",
                name, model, measured, err);
  };

  std::printf("  N=%u, payloads %u/%u bytes, %" PRIu64 " unique keys:\n",
              nodes, r_payload, s_payload, keys);
  report("BJ-R", BroadcastJoinCost(stats, true),
         RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS)
             .traffic.TotalNetworkBytes());
  report("HJ", HashJoinCost(stats, /*discount_local=*/true),
         RunHashJoin(w.r, w.s, config).traffic.TotalNetworkBytes());
  // The model prices location messages at wk (the node label is amortized
  // away, Section 2.4); run the simulator the same way via grouping.
  JoinConfig grouped = config;
  grouped.group_locations = true;
  report("2TJ-R", TrackJoin2Cost(stats),
         RunTrackJoin2(w.r, w.s, grouped, Direction::kRtoS)
             .traffic.TotalNetworkBytes());
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  std::printf("=== Validation (paper section 3.1): analytic cost model vs "
              "simulated traffic ===\n\n");
  tj::bench::Compare(4, 16, 56, 200000, args.seed);
  tj::bench::Compare(16, 16, 56, 200000, args.seed);
  tj::bench::Compare(16, 8, 8, 200000, args.seed);
  tj::bench::Compare(64, 28, 60, 100000, args.seed);
  return 0;
}
