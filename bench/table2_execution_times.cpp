// Table 2: CPU and network time for the slowest joins of workloads X and Y
// (original and shuffled orderings) under hash join and all three track
// join versions, on the paper's 4-node 1 GbE testbed.
//
// Paper (seconds):
//            HJ       2TJ      3TJ      4TJ
//  X orig  CPU 4.308 / 5.396 / 6.842 / 7.500   net 87.75/38.86/44.43/44.39
//  X shuf  CPU 4.598 / 6.457 / 7.601 / 8.290   net 87.83/61.96/67.12/67.52
//  Y orig  CPU 2.301 / 2.279 / 3.355 / 2.400   net 30.10/10.80/11.15/10.48
//  Y shuf  CPU 2.331 / 2.635 / 3.536 / 2.541   net 30.19/28.67/29.52/18.23
//
// Our CPU seconds are measured on the scaled-down inputs and projected
// linearly; network seconds are modeled as the busiest NIC's byte volume
// through the paper's measured 0.093 GB/s edge rate. Absolute values
// differ from the paper's hardware; the algorithm-to-algorithm ratios are
// the reproduced result. Both rows come from each run's StepProfile
// (obs/step_profile.h): CPU is the summed per-step wall time, net is the
// whole-run NIC bottleneck the profile carries.
#include <cinttypes>
#include <cstdio>

#include "bench/real_bench.h"
#include "net/time_model.h"
#include "obs/step_profile.h"

namespace tj {
namespace bench {
namespace {

struct Row {
  double cpu[4];
  double net[4];
};

Row RunSuite(const RealJoinSpec& spec, bool original_order, uint64_t scale,
             uint32_t nodes, uint64_t seed, ThreadPool* pool) {
  JoinConfig config = RealConfig(spec);
  config.thread_pool = pool;
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  NetworkTimeModel model;
  Row row{};
  const JoinAlgorithm algorithms[4] = {
      JoinAlgorithm::kHash, JoinAlgorithm::kTrack2R, JoinAlgorithm::kTrack3,
      JoinAlgorithm::kTrack4};
  for (int i = 0; i < 4; ++i) {
    JoinResult result = RunAlgorithm(algorithms[i], w.r, w.s, config);
    const StepProfile& prof = result.profile;
    row.cpu[i] = prof.TotalWallSeconds() * static_cast<double>(scale);
    // Scale linearly: bytes scale with cardinality. run_max_node_bytes is
    // the whole-run NIC bottleneck (== TrafficMatrix::MaxNodeBytes).
    row.net[i] = static_cast<double>(prof.run_max_node_bytes) /
                 model.node_bandwidth_bytes_per_sec *
                 static_cast<double>(scale);
  }
  return row;
}

void PrintRow(const char* label, const Row& row) {
  std::printf("  %-7s CPU    %8.3f %8.3f %8.3f %8.3f\n", label, row.cpu[0],
              row.cpu[1], row.cpu[2], row.cpu[3]);
  std::printf("  %-7s net    %8.3f %8.3f %8.3f %8.3f\n", "", row.net[0],
              row.net[1], row.net[2], row.net[3]);
  std::printf("  %-7s net/HJ %8.3f %8.3f %8.3f %8.3f\n", "", 1.0,
              row.net[1] / row.net[0], row.net[2] / row.net[0],
              row.net[3] / row.net[0]);
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 4;
  uint64_t x_scale = args.scale ? args.scale : 2000;
  uint64_t y_scale = args.scale ? args.scale : 500;
  std::printf(
      "=== Table 2: CPU & network seconds (projected to paper scale), %u "
      "nodes, 0.093 GB/s per NIC ===\n"
      "Columns: HJ, 2TJ (R->S), 3TJ, 4TJ. Paper net/HJ ratios:\n"
      "  X orig 0.44/0.51/0.51, X shuf 0.71/0.76/0.77,\n"
      "  Y orig 0.36/0.37/0.35, Y shuf 0.95/0.98/0.60.\n\n",
      nodes);
  std::printf("  %-7s %-6s %8s %8s %8s %8s\n", "input", "", "HJ", "2TJ", "3TJ",
              "4TJ");
  auto pool = tj::bench::MakePool(args);
  tj::bench::PrintRow(
      "X orig", tj::bench::RunSuite(tj::WorkloadX(1), true, x_scale, nodes,
                                    args.seed, pool.get()));
  tj::bench::PrintRow(
      "X shuf", tj::bench::RunSuite(tj::WorkloadX(1), false, x_scale, nodes,
                                    args.seed, pool.get()));
  tj::bench::PrintRow(
      "Y orig", tj::bench::RunSuite(tj::WorkloadY(), true, y_scale, nodes,
                                    args.seed, pool.get()));
  tj::bench::PrintRow(
      "Y shuf", tj::bench::RunSuite(tj::WorkloadY(), false, y_scale, nodes,
                                    args.seed, pool.get()));
  return 0;
}
