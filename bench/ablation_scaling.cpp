// Cluster-size scaling ablation.
//
// The Section 3.1 cost model says hash join's traffic saturates at
// (1 - 1/N) of both tables while track join's payload term is
// N-independent for unique keys (each tuple travels to its single match's
// location, wherever that is); only the tracking and location messages
// feel N through the (1 - 1/N) network fraction. Broadcast join pays
// (N-1)x and falls off the chart immediately.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

void Sweep(uint64_t keys, uint64_t seed) {
  std::printf("  %-6s %12s %12s %12s %12s | %12s\n", "nodes", "BJ-R", "HJ",
              "2TJ-R", "4TJ", "4TJ tuples");
  for (uint32_t nodes : {2u, 4u, 8u, 16u, 32u, 64u}) {
    WorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.matched_keys = keys;
    spec.r_payload = 16;
    spec.s_payload = 56;
    spec.seed = seed;
    Workload w = GenerateWorkload(spec);
    JoinConfig config;
    config.key_bytes = 4;
    auto mib = [](uint64_t b) { return b / double(1 << 20); };
    JoinResult bj = RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS);
    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult tj2 = RunTrackJoin2(w.r, w.s, config, Direction::kRtoS);
    JoinResult tj4 = RunTrackJoin4(w.r, w.s, config);
    if (tj4.checksum.digest() != hj.checksum.digest()) {
      std::fprintf(stderr, "FATAL: results disagree at N=%u\n", nodes);
      std::exit(1);
    }
    std::printf("  %-6u %11.2fM %11.2fM %11.2fM %11.2fM | %11.2fM\n", nodes,
                mib(bj.traffic.TotalNetworkBytes()),
                mib(hj.traffic.TotalNetworkBytes()),
                mib(tj2.traffic.TotalNetworkBytes()),
                mib(tj4.traffic.TotalNetworkBytes()),
                mib(tj4.traffic.NetworkBytes(TrafficClass::kRTuples) +
                    tj4.traffic.NetworkBytes(TrafficClass::kSTuples)));
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t keys = 200000;
  if (args.scale) keys = 2000000000ULL / args.scale;
  std::printf(
      "=== Ablation: traffic vs cluster size (unique keys, 20/60 B tuples, "
      "%" PRIu64 " keys/table) ===\n"
      "HJ saturates at (1-1/N) of both tables; track join's tuple traffic "
      "is N-independent\n(one copy per R tuple), only tracking/location "
      "messages grow with the (1-1/N) fraction.\n\n",
      keys);
  tj::bench::Sweep(keys, args.seed);
  return 0;
}
