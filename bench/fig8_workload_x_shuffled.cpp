// Figure 8: the Figure 7 experiment after shuffling the tuples across
// nodes — all pre-existing locality removed.
//
// Paper: hash join is unchanged (placement-invariant); track join's
// advantage shrinks but survives because the keys are nearly unique and
// only the narrower R tuples travel once each.
#include "bench/real_bench.h"

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 8: workload X Q1 slowest join, shuffled ordering ===\n"
      "Paper: HJ identical to Figure 7; TJ loses its collocation savings but\n"
      "still transfers only R tuples once each plus tracking.\n\n");
  tj::bench::RunRealEncodings(
      tj::WorkloadX(1), /*original_order=*/false,
      {tj::EncodingScheme::kFixedByte, tj::EncodingScheme::kVariableByte,
       tj::EncodingScheme::kDictionary},
      scale, nodes, args.seed);
  return 0;
}
