// Table 1: the join input schema of workload X's slowest join — per-column
// distinct counts and compacted dictionary bit widths.
//
// This bench prints our reconstruction next to the paper's numbers; the
// distinct counts are inputs (taken from the paper) and the bit widths are
// derived, so the table doubles as a check of the width model.
#include <cinttypes>
#include <cstdio>

#include "workload/real.h"

namespace {

void PrintSide(const tj::TableSchema& schema, uint64_t tuples) {
  std::printf("%s (%" PRIu64 " tuples)\n", schema.name.c_str(), tuples);
  std::printf("  %-12s %16s %6s\n", "column", "distinct values", "bits");
  auto print_column = [](const tj::ColumnSpec& c, bool key) {
    std::printf("  %-12s %16" PRIu64 " %6u%s\n", c.name.c_str(),
                c.distinct_values, c.DictBits(), key ? "  (key)" : "");
  };
  for (const auto& c : schema.key_columns) print_column(c, true);
  for (const auto& c : schema.payload_columns) print_column(c, false);
  std::printf("  total: %s per tuple (dictionary)\n\n",
              tj::FormatBitsX100(
                  schema.TupleBitsX100(tj::EncodingScheme::kDictionary))
                  .c_str());
}

}  // namespace

int main() {
  std::printf(
      "=== Table 1: R (~770M tuples) join S (~791M tuples), workload X ===\n"
      "Paper: R = J.ID 30 (key), T.ID 6, J.T.AMT 24, T.C.ID 19 -> 79 bits;\n"
      "S = J.ID 30 (key), T.ID 6, S.B.ID 7, O.U.AMT 25, C.ID 9, T.B.C.ID 18,\n"
      "S.C.AMT 24, M.U.AMT 26 -> 145 bits. Output: 730,073,001 tuples.\n\n");
  tj::RealJoinSpec x = tj::WorkloadX(1);
  PrintSide(x.r_schema, x.t_r);
  PrintSide(x.s_schema, x.t_s);
  std::printf("join output: %" PRIu64 " tuples (%.1f%% of R match)\n", x.t_rs,
              100.0 * static_cast<double>(x.t_rs) / static_cast<double>(x.t_r));
  return 0;
}
