// Local-kernel throughput bench: the parallel radix partitioner and radix
// sort measured in tuples per second, plus the per-phase wall seconds of a
// small hash-join / 4-phase-track-join run (the StepProfile rows Tables 3
// and 4 are built from).
//
// Prints one JSON object to stdout; tools/bench_smoke.py runs this at a
// fixed small scale in CI and fails on >25% throughput regression against
// tools/bench_baseline.json.
//
//   --scale=<divisor>  divide the 8Mi-row base input by this (default 4).
//   --threads=<n>      thread pool size for the kernels (default 1).
//   --trace=<file>     enable span tracing and write Chrome trace JSON.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>

#include "bench/real_bench.h"
#include "common/rng.h"
#include "core/track_join.h"
#include "exec/partition.h"
#include "exec/radix_sort.h"
#include "obs/step_profile.h"
#include "obs/trace.h"

namespace tj {
namespace bench {

constexpr int kReps = 3;
constexpr uint32_t kParts = 256;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-kReps wall seconds of `fn` (cold-cache noise goes to the max).
template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    double start = Now();
    fn();
    best = std::min(best, Now() - start);
  }
  return best;
}

void PrintPhases(const char* key, const StepProfile& prof, const char* tail) {
  std::printf("  \"%s\": {", key);
  for (size_t i = 0; i < prof.steps.size(); ++i) {
    std::printf("%s\n    \"%s\": %.6f", i ? "," : "",
                prof.steps[i].phase.c_str(), prof.steps[i].wall_seconds);
  }
  std::printf("\n  }%s\n", tail);
}

}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  using namespace tj;
  bench::Args args = bench::ParseArgs(argc, argv);
  // ParseArgs ignores flags it does not know; --trace is bench-local.
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  if (!trace_path.empty()) Tracer::Global().Enable();
  const uint64_t divisor = args.scale ? args.scale : 4;
  const uint64_t rows = (1ULL << 23) / divisor;
  auto pool = bench::MakePool(args);
  ThreadPool* p = pool.get();

  Rng rng(args.seed);
  TupleBlock block(8);
  uint8_t payload[8];
  for (uint64_t i = 0; i < rows; ++i) {
    uint64_t key = rng.Next();
    std::memcpy(payload, &key, 8);
    block.Append(key, payload);
  }

  double partition_s = bench::BestOf([&] {
    Result<PartitionLayout> layout = TryRadixPartition(block, bench::kParts, p);
    TJ_CHECK(layout.ok()) << layout.status().ToString();
  });
  double key_partition_s = bench::BestOf([&] {
    Result<KeyPartitionLayout> layout = TryRadixPartitionKeys(block, bench::kParts, p);
    TJ_CHECK(layout.ok()) << layout.status().ToString();
  });

  std::vector<uint32_t> base_values(rows);
  std::iota(base_values.begin(), base_values.end(), 0u);
  double sort_pairs_s = 1e300;
  for (int rep = 0; rep < bench::kReps; ++rep) {
    std::vector<uint64_t> keys = block.keys();
    std::vector<uint32_t> values = base_values;
    double start = bench::Now();
    RadixSortPairs(&keys, &values, p);
    sort_pairs_s = std::min(sort_pairs_s, bench::Now() - start);
  }
  double sort_block_s = 1e300;
  for (int rep = 0; rep < bench::kReps; ++rep) {
    TupleBlock copy = block;
    double start = bench::Now();
    SortBlockByKey(&copy, p);
    sort_block_s = std::min(sort_block_s, bench::Now() - start);
  }

  // Per-phase wall seconds of real join runs at a small fixed scale: the
  // same StepProfile rows the table3/table4 benches project to paper scale.
  const uint64_t join_scale = 8000;
  JoinConfig config = bench::RealConfig(WorkloadX(1));
  config.thread_pool = p;
  Workload w = InstantiateReal(WorkloadX(1), 4, join_scale, true, args.seed);
  StepProfile hj = RunHashJoin(w.r, w.s, config).profile;
  StepProfile tj4 = RunTrackJoin4(w.r, w.s, config).profile;

  double n = static_cast<double>(rows);
  std::printf("{\n");
  std::printf("  \"rows\": %" PRIu64 ",\n", rows);
  std::printf("  \"threads\": %u,\n", args.threads);
  std::printf("  \"partition_parts\": %u,\n", bench::kParts);
  std::printf("  \"partition_tps\": %.0f,\n", n / partition_s);
  std::printf("  \"key_partition_tps\": %.0f,\n", n / key_partition_s);
  std::printf("  \"sort_pairs_tps\": %.0f,\n", n / sort_pairs_s);
  std::printf("  \"sort_block_tps\": %.0f,\n", n / sort_block_s);
  bench::PrintPhases("hj_phase_wall_s", hj, ",");
  bench::PrintPhases("tj4_phase_wall_s", tj4, "");
  std::printf("}\n");
  if (!trace_path.empty()) {
    const std::string json = Tracer::Global().ToChromeJson();
    FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "cannot write trace file '%s'\n",
                   trace_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
  }
  return 0;
}
