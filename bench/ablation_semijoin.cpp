// Section 3.3 ablation: semi-join Bloom filtering in front of hash join
// and track join, across input selectivities.
//
// Paper: "Track join does perfect semi-join filtering during tracking" —
// the filter broadcast mostly helps hash join (which otherwise ships
// non-matching tuples), while for track join it only thins tracking and
// "the cost of broadcasting the filters can exceed the cost of sending a
// few columns for reasonable cluster size N".
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/semi_join.h"

namespace tj {
namespace bench {
namespace {

void Sweep(uint64_t scale, uint32_t nodes, uint64_t seed) {
  std::printf("  %-12s %10s %10s %10s %10s %10s\n", "selectivity", "HJ",
              "filt-HJ", "2TJ", "filt-2TJ", "filter GiB");
  for (double selectivity : {1.0, 0.5, 0.2, 0.1, 0.02}) {
    uint64_t matched = 20000000ULL / scale;
    uint64_t unmatched = static_cast<uint64_t>(
        matched * (1.0 - selectivity) / selectivity);
    WorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.matched_keys = matched;
    spec.r_unmatched = unmatched;
    spec.s_unmatched = unmatched;
    spec.r_payload = 12;
    spec.s_payload = 28;
    spec.seed = seed;
    Workload w = GenerateWorkload(spec);
    JoinConfig config;
    config.key_bytes = 4;
    SemiJoinConfig semi;
    double p = static_cast<double>(scale);

    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult fhj = RunFilteredHashJoin(w.r, w.s, config, semi);
    JoinResult tj = RunTrackJoin2(w.r, w.s, config, Direction::kRtoS);
    JoinResult ftj = RunFilteredTrackJoin(w.r, w.s, config, semi,
                                          TrackJoinVersion::k2Phase,
                                          Direction::kRtoS);
    std::printf("  %-12.2f %10.3f %10.3f %10.3f %10.3f %10.3f\n", selectivity,
                Gib(hj.traffic.TotalNetworkBytes() * p),
                Gib(fhj.traffic.TotalNetworkBytes() * p),
                Gib(tj.traffic.TotalNetworkBytes() * p),
                Gib(ftj.traffic.TotalNetworkBytes() * p),
                Gib(ftj.traffic.NetworkBytes(TrafficClass::kFilter) * p));
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 8;
  std::printf(
      "=== Ablation (paper section 3.3): two-way Bloom semi-join filtering, "
      "%u nodes, 10 bits/key ===\n"
      "(2e7 matched tuples/table at paper scale; selectivity = matched "
      "fraction)\n\n",
      nodes);
  tj::bench::Sweep(scale, nodes, args.seed);
  return 0;
}
