// Shared helpers for the figure/table benchmark binaries.
//
// Every bench accepts:
//   --scale=<divisor>   divide the paper's cardinalities by this (default
//                       per bench); reported traffic is projected back up.
//   --nodes=<n>         cluster size (default: the paper's setting).
//   --seed=<n>          workload seed.
//   --threads=<n>       thread pool size for the local kernels (partition,
//                       sort, merge); 1 = the sequential path.
#ifndef TJ_BENCH_BENCH_UTIL_H_
#define TJ_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "common/thread_pool.h"
#include "core/track_join.h"
#include "costmodel/reprice.h"
#include "net/traffic.h"
#include "workload/generator.h"

namespace tj {
namespace bench {

struct Args {
  uint64_t scale = 0;   // 0 = bench default.
  uint32_t nodes = 0;   // 0 = bench default.
  uint64_t seed = 42;
  uint32_t threads = 1;  // 1 = sequential local kernels.
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      args.nodes = static_cast<uint32_t>(std::strtoul(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
      if (args.threads == 0) args.threads = 1;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--scale=<divisor>] [--nodes=<n>] [--seed=<n>] "
          "[--threads=<n>]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// The pool backing JoinConfig::thread_pool for `--threads`; null keeps
/// the sequential kernels (results are bit-identical either way).
inline std::unique_ptr<ThreadPool> MakePool(const Args& args) {
  if (args.threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(args.threads);
}

/// Runs one of the seven evaluated algorithms.
inline JoinResult RunAlgorithm(JoinAlgorithm algorithm,
                               const PartitionedTable& r,
                               const PartitionedTable& s,
                               const JoinConfig& config) {
  switch (algorithm) {
    case JoinAlgorithm::kBroadcastR:
      return RunBroadcastJoin(r, s, config, Direction::kRtoS);
    case JoinAlgorithm::kBroadcastS:
      return RunBroadcastJoin(r, s, config, Direction::kStoR);
    case JoinAlgorithm::kHash:
      return RunHashJoin(r, s, config);
    case JoinAlgorithm::kTrack2R:
      return RunTrackJoin2(r, s, config, Direction::kRtoS);
    case JoinAlgorithm::kTrack2S:
      return RunTrackJoin2(r, s, config, Direction::kStoR);
    case JoinAlgorithm::kTrack3:
      return RunTrackJoin3(r, s, config);
    case JoinAlgorithm::kTrack4:
      return RunTrackJoin4(r, s, config);
  }
  std::abort();
}

inline const std::vector<JoinAlgorithm>& AllAlgorithms() {
  static const std::vector<JoinAlgorithm> kAll = {
      JoinAlgorithm::kBroadcastR, JoinAlgorithm::kBroadcastS,
      JoinAlgorithm::kHash,       JoinAlgorithm::kTrack2R,
      JoinAlgorithm::kTrack2S,    JoinAlgorithm::kTrack3,
      JoinAlgorithm::kTrack4};
  return kAll;
}

inline double Gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

/// Prints the stacked-class traffic table of one experiment, projected to
/// paper scale: one row per algorithm, one column per message class.
/// If `pricing` is non-null the traffic is re-priced through it.
inline void PrintTrafficTable(const std::vector<JoinAlgorithm>& algorithms,
                              const std::vector<JoinResult>& results,
                              double projection,
                              const PricingSpec* pricing = nullptr) {
  std::printf("  %-6s %14s %14s %14s %14s %14s\n", "algo", "keys&counts",
              "keys&nodes", "R tuples", "S tuples", "total GiB");
  for (size_t i = 0; i < algorithms.size(); ++i) {
    const TrafficMatrix& t = results[i].traffic;
    double kc, kn, rt, st;
    if (pricing != nullptr) {
      kc = RepricedNetworkBytes(t, TrafficClass::kKeysAndCounts, *pricing);
      kn = RepricedNetworkBytes(t, TrafficClass::kKeysAndNodes, *pricing);
      rt = RepricedNetworkBytes(t, TrafficClass::kRTuples, *pricing);
      st = RepricedNetworkBytes(t, TrafficClass::kSTuples, *pricing);
    } else {
      kc = static_cast<double>(t.NetworkBytes(TrafficClass::kKeysAndCounts));
      kn = static_cast<double>(t.NetworkBytes(TrafficClass::kKeysAndNodes));
      rt = static_cast<double>(t.NetworkBytes(TrafficClass::kRTuples));
      st = static_cast<double>(t.NetworkBytes(TrafficClass::kSTuples));
    }
    std::printf("  %-6s %14.3f %14.3f %14.3f %14.3f %14.3f\n",
                JoinAlgorithmName(algorithms[i]), Gib(kc * projection),
                Gib(kn * projection), Gib(rt * projection),
                Gib(st * projection),
                Gib((kc + kn + rt + st) * projection));
  }
}

/// Runs all seven algorithms on one workload and verifies they agree.
inline std::vector<JoinResult> RunAll(const Workload& w,
                                      const JoinConfig& config) {
  std::vector<JoinResult> results;
  results.reserve(AllAlgorithms().size());
  for (JoinAlgorithm algorithm : AllAlgorithms()) {
    results.push_back(RunAlgorithm(algorithm, w.r, w.s, config));
    if (results.back().checksum.digest() != results.front().checksum.digest() ||
        results.back().output_rows != results.front().output_rows) {
      std::fprintf(stderr, "FATAL: %s disagrees with %s on the join result\n",
                   JoinAlgorithmName(algorithm),
                   JoinAlgorithmName(AllAlgorithms().front()));
      std::exit(1);
    }
  }
  return results;
}

}  // namespace bench
}  // namespace tj

#endif  // TJ_BENCH_BENCH_UTIL_H_
