// Figure 3: synthetic dataset of 10^9 vs 10^9 tuples with ~10^9 unique
// join keys on 16 nodes. Three experiments sweep the R tuple width
// (20/40/60 bytes, key included) against a fixed 60-byte S width.
//
// Paper series (GiB, 16 nodes): BJ-R overflows at 279.4/558.8/838.2,
// BJ-S at 838.2; HJ sits at ~70 GiB; all track join variants transfer
// only the R table plus tracking, roughly 27-37 GiB depending on width —
// "track join selectively broadcasts tuples from the table with smaller
// payloads to the one matching tuple from the table with larger payloads
// and the 2-phase version suffices".
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

void RunWidthExperiment(uint32_t r_width, uint32_t s_width, uint64_t scale,
                        uint32_t nodes, uint64_t seed) {
  constexpr uint64_t kPaperTuples = 1000000000ULL;
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = kPaperTuples / scale;
  spec.seed = seed;
  JoinConfig config;
  config.key_bytes = 4;
  spec.r_payload = r_width - config.key_bytes;
  spec.s_payload = s_width - config.key_bytes;
  Workload w = GenerateWorkload(spec);

  std::printf("R width = %u bytes, S width = %u bytes "
              "(%" PRIu64 " x %" PRIu64 " tuples, projected x%" PRIu64 ")\n",
              r_width, s_width, w.r.TotalRows(), w.s.TotalRows(), scale);
  std::vector<JoinResult> results = RunAll(w, config);
  PrintTrafficTable(AllAlgorithms(), results, static_cast<double>(scale));
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 10000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 3: 1e9 x 1e9 tuples, ~1e9 unique join keys, %u nodes ===\n"
      "Paper: BJ-R 279.4/558.8/838.2 GiB (off-chart), BJ-S 838.2 GiB, HJ ~70\n"
      "GiB; all TJ variants ~27-37 GiB (tracking + one R copy per tuple).\n\n",
      nodes);
  tj::bench::RunWidthExperiment(20, 60, scale, nodes, args.seed);
  tj::bench::RunWidthExperiment(40, 60, scale, nodes, args.seed);
  tj::bench::RunWidthExperiment(60, 60, scale, nodes, args.seed);
  return 0;
}
