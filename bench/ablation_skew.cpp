// Skew & load-balance ablation (paper Section 5 future work).
//
// Zipf-distributed keys create hot keys that (a) repeat on both sides —
// stressing the per-key scheduler — and (b) concentrate traffic on a few
// nodes. Balance-aware 4TJ spends the schedules' cost-free choices
// (migration destinations, direction ties) on the coolest nodes: total
// traffic is unchanged by construction, but the bottleneck NIC's share —
// which bounds completion time — drops.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "net/time_model.h"

namespace tj {
namespace bench {
namespace {

void Sweep(uint32_t nodes, uint64_t seed) {
  std::printf("  %-6s %10s %10s | %10s %10s %10s\n", "theta", "HJ tot",
              "4TJ tot", "HJ max", "4TJ max", "4TJbal max");
  // Output cardinality grows quadratically with the hottest key's share,
  // so the sweep stays modest by default; raise rows for sharper numbers.
  for (double theta : {0.0, 0.5, 0.8, 1.0}) {
    ZipfWorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.key_domain = 20000;
    spec.r_rows = 60000;
    spec.s_rows = 60000;
    spec.r_theta = theta;
    spec.s_theta = theta;
    spec.r_payload = 12;
    spec.s_payload = 28;
    spec.seed = seed;
    Workload w = GenerateZipfWorkload(spec);
    JoinConfig config;
    config.key_bytes = 4;
    JoinConfig balanced = config;
    balanced.balance_loads = true;

    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult tj4 = RunTrackJoin4(w.r, w.s, config);
    JoinResult tj4b = RunTrackJoin4(w.r, w.s, balanced);
    if (tj4.checksum.digest() != hj.checksum.digest() ||
        tj4b.checksum.digest() != hj.checksum.digest()) {
      std::fprintf(stderr, "FATAL: join results disagree at theta=%.2f\n",
                   theta);
      std::exit(1);
    }
    auto mib = [](uint64_t b) { return b / double(1 << 20); };
    std::printf("  %-6.2f %9.2fM %9.2fM | %9.2fM %9.2fM %9.2fM\n", theta,
                mib(hj.traffic.TotalNetworkBytes()),
                mib(tj4.traffic.TotalNetworkBytes()),
                mib(hj.traffic.MaxNodeBytes()),
                mib(tj4.traffic.MaxNodeBytes()),
                mib(tj4b.traffic.MaxNodeBytes()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 8;
  std::printf(
      "=== Ablation (paper section 5): key skew & balance-aware scheduling, "
      "%u nodes ===\n"
      "'tot' = total network MiB; 'max' = busiest NIC's MiB (bounds "
      "completion time).\n4TJbal must match 4TJ's total while lowering the "
      "max.\n\n",
      nodes);
  tj::bench::Sweep(nodes, args.seed);
  return 0;
}
