// Figure 11: workload Y with all locality shuffled away.
//
// Paper: "The 4-phase version is better than hash join, while the other
// versions almost broadcast R due to key repetitions. ... The opposite
// broadcast direction is not as bad, but is still three times more
// expensive than hash join. 4-phase track join adapts to the shuffled case
// and transfers 28% less data than hash join."
#include "bench/real_bench.h"

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 500;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 11: workload Y slowest join, shuffled ordering ===\n"
      "Paper: 2TJ-S off-chart at 118.3 GiB (near-broadcast); 2TJ-R ~3x HJ;\n"
      "4TJ transfers 28%% less than HJ - the adaptiveness showcase.\n\n");
  tj::bench::RunRealEncodings(tj::WorkloadY(), /*original_order=*/false,
                              {tj::EncodingScheme::kVariableByte}, scale,
                              nodes, args.seed);
  return 0;
}
