// Figure 5: 2*10^8 tuples per table over 4*10^7 unique keys (5 repeats per
// key on each side, 25 outputs per key), R 30 bytes / S 60 bytes. Repeats
// are intra-table collocated per the pattern, but the two tables are
// placed independently.
//
// Paper: HJ ~16 GiB flat across patterns; with 5,0,0 track join moves one
// side to the other's single location; with scattered repeats the 2TJ/3TJ
// selective broadcasts fan out while 4TJ first consolidates.
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

void RunPattern(const std::vector<uint32_t>& pattern, const char* name,
                bool inter, uint64_t scale, uint32_t nodes, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 40000000ULL / scale;
  spec.r_multiplicity = 5;
  spec.s_multiplicity = 5;
  spec.r_pattern = pattern;
  spec.s_pattern = pattern;
  spec.collocation = inter ? Collocation::kInter : Collocation::kIntra;
  spec.seed = seed;
  JoinConfig config;
  config.key_bytes = 4;
  spec.r_payload = 30 - config.key_bytes;
  spec.s_payload = 60 - config.key_bytes;
  Workload w = GenerateWorkload(spec);

  std::printf("Pattern: %s  (%" PRIu64 " tuples/table, projected x%" PRIu64
              ")\n",
              name, w.r.TotalRows(), scale);
  std::vector<JoinResult> results = RunAll(w, config);
  PrintTrafficTable(AllAlgorithms(), results, static_cast<double>(scale));
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 5: 2e8 x 2e8 tuples, 4e7 keys, 5+5 repeats, intra-table "
      "collocation only, %u nodes ===\n"
      "Paper: HJ ~16 GiB flat; TJ wins under 5,0,0 and 2,2,1; scattered\n"
      "repeats favor 4TJ's migration over plain selective broadcast.\n\n",
      nodes);
  tj::bench::RunPattern({5}, "5,0,0,...", false, scale, nodes, args.seed);
  tj::bench::RunPattern({2, 2, 1}, "2,2,1,0,0,...", false, scale, nodes,
                        args.seed);
  tj::bench::RunPattern({1, 1, 1, 1, 1}, "1,1,1,1,1,0,0,...", false, scale,
                        nodes, args.seed);
  return 0;
}
