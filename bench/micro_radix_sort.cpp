// Microbenchmark: MSB radix sort of tuple blocks (the paper's local join
// primitive) against std::sort on the same data.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "exec/radix_sort.h"
#include "storage/tuple_block.h"

namespace tj {
namespace {

TupleBlock MakeBlock(int64_t rows, uint32_t payload, uint64_t key_domain) {
  Rng rng(7);
  TupleBlock block(payload);
  std::vector<uint8_t> buf(payload, 0xab);
  for (int64_t i = 0; i < rows; ++i) {
    block.Append(rng.Below(key_domain), payload ? buf.data() : nullptr);
  }
  return block;
}

void BM_RadixSortBlock(benchmark::State& state) {
  TupleBlock block = MakeBlock(state.range(0), 16, 1ULL << 40);
  for (auto _ : state) {
    TupleBlock copy = block;
    SortBlockByKey(&copy);
    benchmark::DoNotOptimize(copy.Key(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSortBlock)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixSortPairs(benchmark::State& state) {
  Rng rng(11);
  std::vector<uint64_t> keys(state.range(0));
  for (auto& k : keys) k = rng.Next();
  std::vector<uint32_t> values(keys.size(), 0);
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    RadixSortPairs(&k, &v);
    benchmark::DoNotOptimize(k[0]);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StdSortPairs(benchmark::State& state) {
  Rng rng(11);
  std::vector<std::pair<uint64_t, uint32_t>> pairs(state.range(0));
  for (auto& p : pairs) p = {rng.Next(), 0};
  for (auto _ : state) {
    auto copy = pairs;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy[0].first);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSortPairs)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SortedDetection(benchmark::State& state) {
  TupleBlock block = MakeBlock(state.range(0), 0, 1ULL << 40);
  SortBlockByKey(&block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSortedByKey(block));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortedDetection)->Arg(1 << 16);

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
