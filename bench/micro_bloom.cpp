// Microbenchmark: Bloom filter build/probe rates and serialized sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "filter/bloom.h"

namespace tj {
namespace {

void BM_BloomAdd(benchmark::State& state) {
  const int64_t keys = state.range(0);
  for (auto _ : state) {
    BloomFilter filter(keys, 10);
    for (int64_t k = 0; k < keys; ++k) filter.Add(k * 2654435761ULL);
    benchmark::DoNotOptimize(filter.SizeBytes());
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_BloomAdd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BloomProbeHit(benchmark::State& state) {
  const int64_t keys = 1 << 16;
  BloomFilter filter(keys, 10);
  for (int64_t k = 0; k < keys; ++k) filter.Add(k);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(i++ & (keys - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbeHit);

void BM_BloomProbeMiss(benchmark::State& state) {
  const int64_t keys = 1 << 16;
  BloomFilter filter(keys, 10);
  for (int64_t k = 0; k < keys; ++k) filter.Add(k);
  uint64_t probe = 1ULL << 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(probe++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbeMiss);

void BM_BloomSerialize(benchmark::State& state) {
  BloomFilter filter(1 << 16, 10);
  Rng rng(3);
  for (int k = 0; k < (1 << 16); ++k) filter.Add(rng.Next());
  for (auto _ : state) {
    ByteBuffer buf;
    filter.Serialize(&buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetBytesProcessed(state.iterations() * filter.SizeBytes());
}
BENCHMARK(BM_BloomSerialize);

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
