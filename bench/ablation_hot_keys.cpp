// Hot-key splitting ablation.
//
// Under heavy Zipf skew the traffic-optimal per-key schedule funnels each
// head key's entire cartesian product through a single migration
// destination: one node absorbs the key's full ingress AND produces its
// full output. Splitting fragments the hot key's larger side across w
// workers and broadcasts the smaller side to them, trading a bounded
// amount of extra broadcast traffic for a ~w-fold drop in that per-node
// bottleneck. Payloads are asymmetric (fat R, thin S) so the broadcast
// side is genuinely the cheap one to copy.
#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

namespace tj {
namespace bench {
namespace {

uint64_t MaxIngress(const JoinResult& result, uint32_t nodes) {
  uint64_t worst = 0;
  for (uint32_t node = 0; node < nodes; ++node) {
    worst = std::max(worst, result.traffic.IngressBytes(node));
  }
  return worst;
}

uint64_t MaxOutput(const JoinResult& result) {
  uint64_t worst = 0;
  for (uint64_t rows : result.node_output_rows) worst = std::max(worst, rows);
  return worst;
}

void Sweep(uint32_t nodes, uint64_t seed) {
  std::printf("  %-6s %9s %9s | %9s %9s | %10s %10s %6s\n", "theta",
              "tot off", "tot on", "ingr off", "ingr on", "out off",
              "out on", "split");
  for (double theta : {0.8, 1.0, 1.2}) {
    ZipfWorkloadSpec spec;
    spec.num_nodes = nodes;
    spec.key_domain = 20000;
    spec.r_rows = 40000;
    spec.s_rows = 40000;
    spec.r_theta = theta;
    spec.s_theta = theta;
    spec.r_payload = 64;  // Fat fragment side...
    spec.s_payload = 8;   // ...thin broadcast side.
    spec.seed = seed;
    Workload w = GenerateZipfWorkload(spec);

    JoinConfig config;
    config.key_bytes = 4;
    JoinConfig split = config;
    split.hot_key_threshold = 200000;
    split.hot_key_max_split = 4;

    JoinResult hj = RunHashJoin(w.r, w.s, config);
    JoinResult off = RunTrackJoin4(w.r, w.s, config);
    JoinResult on = RunTrackJoin4(w.r, w.s, split);
    if (off.checksum.digest() != hj.checksum.digest() ||
        on.checksum.digest() != hj.checksum.digest() ||
        on.output_rows != off.output_rows) {
      std::fprintf(stderr, "FATAL: join results disagree at theta=%.2f\n",
                   theta);
      std::exit(1);
    }
    uint64_t frag = on.traffic.NetworkBytes(MessageType::kFragmentR) +
                    on.traffic.NetworkBytes(MessageType::kFragmentS);
    auto mib = [](uint64_t b) { return b / double(1 << 20); };
    std::printf("  %-6.2f %8.2fM %8.2fM | %8.2fM %8.2fM | %9" PRIu64
                "k %9" PRIu64 "k %6s\n",
                theta, mib(off.traffic.TotalNetworkBytes()),
                mib(on.traffic.TotalNetworkBytes()), mib(MaxIngress(off, nodes)),
                mib(MaxIngress(on, nodes)), MaxOutput(off) / 1000,
                MaxOutput(on) / 1000, frag > 0 ? "yes" : "no");
  }
}

}  // namespace
}  // namespace bench
}  // namespace tj

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint32_t nodes = args.nodes ? args.nodes : 8;
  std::printf(
      "=== Ablation: hot-key splitting (partitioned broadcast), %u nodes "
      "===\n"
      "4TJ with --hot-key-threshold off vs on. 'tot' = total network MiB; "
      "'ingr' =\nbusiest node's received MiB; 'out' = busiest node's output "
      "rows (compute\nbottleneck). Splitting must leave results identical "
      "and cut the max\noutput roughly by the split width once keys cross "
      "the threshold.\n\n",
      nodes);
  tj::bench::Sweep(nodes, args.seed);
  return 0;
}
