// Figure 10: the slowest join of workload Y's slowest query, original
// ordering, uncompressed variable-byte tuples (37 B R, 47 B S).
//
// Paper: the original ordering collocates each key's repeats, so track
// join transfers far less than hash join; BJ-S overflows at 118.3 GiB.
// The 5.4x output blow-up (repeated keys on both sides) is what makes this
// workload hard for the naive selective broadcast.
#include "bench/real_bench.h"

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 500;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 10: workload Y slowest join, original ordering ===\n"
      "Paper (GiB): BJ-S off-chart at 118.3; HJ ~8; 2TJ-R/3TJ/4TJ ~3 thanks\n"
      "to collocated key repeats.\n\n");
  tj::bench::RunRealEncodings(tj::WorkloadY(), /*original_order=*/true,
                              {tj::EncodingScheme::kVariableByte}, scale,
                              nodes, args.seed);
  return 0;
}
