// Figure 9: hash join vs track join on the common slowest join of workload
// X's five slowest queries, under optimal dictionary compression.
//
// Paper: bits per tuple R:S = 79:145, 67:120, 60:126, 67:131, 69:145 for
// Q1..Q5; track join reduces network traffic by 53%, 45%, 46%, 48%, 52%.
// Both inputs have almost entirely unique keys, so every track join
// version behaves alike; we report 2TJ-R (the paper's configuration).
#include "bench/real_bench.h"

int main(int argc, char** argv) {
  tj::bench::Args args = tj::bench::ParseArgs(argc, argv);
  uint64_t scale = args.scale ? args.scale : 2000;
  uint32_t nodes = args.nodes ? args.nodes : 16;
  std::printf(
      "=== Figure 9: X Q1-Q5 slowest join, optimal dictionary compression, "
      "%u nodes ===\n"
      "Paper reductions vs hash join: 53%%, 45%%, 46%%, 48%%, 52%%.\n\n",
      nodes);
  std::printf("  %-4s %10s %12s %12s %12s %12s\n", "qry", "bits R:S",
              "HJ GiB", "TJ GiB", "reduction", "paper");
  const double kPaperReduction[] = {0.53, 0.45, 0.46, 0.48, 0.52};
  for (int q = 1; q <= 5; ++q) {
    tj::RealJoinSpec spec = tj::WorkloadX(q);
    tj::JoinConfig config = tj::bench::RealConfig(spec);
    // The paper shuffles nothing here; it uses the workload as stored. We
    // keep the original ordering model for every query.
    tj::Workload w =
        tj::InstantiateReal(spec, nodes, scale, /*original_order=*/true,
                            args.seed + q);
    tj::JoinResult hj = tj::RunHashJoin(w.r, w.s, config);
    tj::JoinResult tj2 =
        tj::RunTrackJoin2(w.r, w.s, config, tj::Direction::kRtoS);
    if (hj.checksum.digest() != tj2.checksum.digest()) {
      std::fprintf(stderr, "FATAL: join results disagree on Q%d\n", q);
      return 1;
    }
    auto priced = [&](const tj::JoinResult& result, bool with_counts) {
      tj::PricingSpec pricing = tj::bench::PricingFor(
          spec, config, tj::EncodingScheme::kDictionary, with_counts);
      return tj::RepricedTotalNetworkBytes(result.traffic, pricing) *
             static_cast<double>(scale);
    };
    double hj_bytes = priced(hj, false);
    double tj_bytes = priced(tj2, false);
    std::printf("  Q%-3d %5" PRIu64 ":%-5" PRIu64 "  %10.2f %12.2f %11.1f%% %11.0f%%\n",
                q,
                spec.r_schema.TupleBitsX100(tj::EncodingScheme::kDictionary) / 100,
                spec.s_schema.TupleBitsX100(tj::EncodingScheme::kDictionary) / 100,
                tj::bench::Gib(hj_bytes), tj::bench::Gib(tj_bytes),
                100.0 * (1.0 - tj_bytes / hj_bytes),
                100.0 * kPaperReduction[q - 1]);
  }
  return 0;
}
