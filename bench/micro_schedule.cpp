// Microbenchmark: per-key schedule generation throughput.
//
// The paper's claim: "optimal network traffic scheduling still takes
// linear time ... scheduling is in the worst case linear in the total
// number of input tuples" — Table 4 shows schedule generation costing a
// fraction of a local sort. These benches measure schedules/second across
// placement sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/schedule.h"

namespace tj {
namespace {

std::vector<KeyPlacement> MakePlacements(int count, uint32_t nodes,
                                         double presence) {
  Rng rng(42);
  std::vector<KeyPlacement> placements;
  placements.reserve(count);
  for (int i = 0; i < count; ++i) {
    KeyPlacement p;
    for (uint32_t node = 0; node < nodes; ++node) {
      if (rng.Bernoulli(presence)) {
        p.r.push_back(NodeSize{node, 1 + rng.Below(1000)});
      }
      if (rng.Bernoulli(presence)) {
        p.s.push_back(NodeSize{node, 1 + rng.Below(1000)});
      }
    }
    if (p.r.empty()) p.r.push_back(NodeSize{0, 1});
    if (p.s.empty()) p.s.push_back(NodeSize{1 % nodes, 1});
    p.tracker = static_cast<uint32_t>(rng.Below(nodes));
    p.msg_bytes = 5;
    placements.push_back(std::move(p));
  }
  return placements;
}

void BM_SelectiveBroadcastCost(benchmark::State& state) {
  auto placements = MakePlacements(1024, state.range(0), 0.5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectiveBroadcastCost(
        placements[i++ & 1023], Direction::kRtoS));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectiveBroadcastCost)->Arg(4)->Arg(16)->Arg(64);

void BM_PlanOptimal(benchmark::State& state) {
  auto placements = MakePlacements(1024, state.range(0), 0.5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanOptimal(placements[i++ & 1023]).plan.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanOptimal)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PlanBalanced(benchmark::State& state) {
  auto placements = MakePlacements(1024, state.range(0), 0.5);
  LoadBalancer balancer(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        balancer.PlanBalanced(placements[i++ & 1023]).plan.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanBalanced)->Arg(4)->Arg(16)->Arg(64);

void BM_SparseSingletonKeys(benchmark::State& state) {
  // The near-unique-key regime of workload X: one node per side.
  auto placements = MakePlacements(1024, 16, 0.05);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanOptimal(placements[i++ & 1023]).plan.cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseSingletonKeys);

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
