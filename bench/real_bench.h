// Shared driver for the workload X / Y benches (Figures 7-11, Tables 2-4).
#ifndef TJ_BENCH_REAL_BENCH_H_
#define TJ_BENCH_REAL_BENCH_H_

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/real.h"

namespace tj {
namespace bench {

inline JoinConfig RealConfig(const RealJoinSpec& spec) {
  JoinConfig config;
  config.key_bytes = spec.impl_key_bytes;
  config.count_bytes = spec.impl_count_bytes;
  config.node_bytes = 1;
  return config;
}

/// Pricing of a run's traffic under one encoding scheme, derived from the
/// reconstruction's schemas. 2-phase runs carry no counts in tracking.
inline PricingSpec PricingFor(const RealJoinSpec& spec,
                              const JoinConfig& config, EncodingScheme scheme,
                              bool with_counts) {
  PricingSpec pricing;
  pricing.physical = config;
  pricing.physical_with_counts = with_counts;
  pricing.physical_payload_r = spec.impl_r_payload;
  pricing.physical_payload_s = spec.impl_s_payload;
  pricing.key_bits_x100 = spec.r_schema.KeyBitsX100(scheme);
  pricing.count_bits_x100 = 800ULL * config.count_bytes;
  pricing.node_bits_x100 = 800;
  pricing.payload_r_bits_x100 = spec.r_schema.PayloadBitsX100(scheme);
  pricing.payload_s_bits_x100 = spec.s_schema.PayloadBitsX100(scheme);
  return pricing;
}

inline bool TracksCounts(JoinAlgorithm algorithm) {
  return algorithm == JoinAlgorithm::kTrack3 ||
         algorithm == JoinAlgorithm::kTrack4;
}

/// Runs all algorithms on a real-workload instantiation and prints one
/// traffic table per encoding scheme (the encodings only re-price the same
/// transfer schedules; the schedules themselves are encoding-invariant).
inline void RunRealEncodings(const RealJoinSpec& spec, bool original_order,
                             const std::vector<EncodingScheme>& schemes,
                             uint64_t scale, uint32_t nodes, uint64_t seed) {
  JoinConfig config = RealConfig(spec);
  Workload w = InstantiateReal(spec, nodes, scale, original_order, seed);
  std::printf("%s, %s ordering: %" PRIu64 " x %" PRIu64
              " tuples (projected x%" PRIu64 "), %u nodes\n\n",
              spec.name.c_str(), original_order ? "original" : "shuffled",
              w.r.TotalRows(), w.s.TotalRows(), scale, nodes);
  std::vector<JoinResult> results = RunAll(w, config);
  for (EncodingScheme scheme : schemes) {
    std::printf("-- %s encoding --\n", EncodingSchemeName(scheme));
    std::printf("  %-6s %14s %14s %14s %14s %14s\n", "algo", "keys&counts",
                "keys&nodes", "R tuples", "S tuples", "total GiB");
    for (size_t i = 0; i < AllAlgorithms().size(); ++i) {
      JoinAlgorithm algorithm = AllAlgorithms()[i];
      PricingSpec pricing =
          PricingFor(spec, config, scheme, TracksCounts(algorithm));
      const TrafficMatrix& t = results[i].traffic;
      double kc = RepricedNetworkBytes(t, TrafficClass::kKeysAndCounts, pricing);
      double kn = RepricedNetworkBytes(t, TrafficClass::kKeysAndNodes, pricing);
      double rt = RepricedNetworkBytes(t, TrafficClass::kRTuples, pricing);
      double st = RepricedNetworkBytes(t, TrafficClass::kSTuples, pricing);
      double p = static_cast<double>(scale);
      std::printf("  %-6s %14.3f %14.3f %14.3f %14.3f %14.3f\n",
                  JoinAlgorithmName(algorithm), Gib(kc * p), Gib(kn * p),
                  Gib(rt * p), Gib(st * p), Gib((kc + kn + rt + st) * p));
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace tj

#endif  // TJ_BENCH_REAL_BENCH_H_
