#include "costmodel/reprice.h"

#include <gtest/gtest.h>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

TEST(RepriceTest, IdentityPricingReproducesPhysicalBytes) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.r_payload = 10;
  spec.s_payload = 20;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunTrackJoin4(w.r, w.s, config);

  PricingSpec pricing;
  pricing.physical = config;
  pricing.physical_with_counts = true;
  pricing.physical_payload_r = 10;
  pricing.physical_payload_s = 20;
  pricing.key_bits_x100 = 3200;
  pricing.count_bits_x100 = 800;
  pricing.node_bits_x100 = 800;
  pricing.payload_r_bits_x100 = 8000;
  pricing.payload_s_bits_x100 = 16000;

  EXPECT_DOUBLE_EQ(RepricedTotalNetworkBytes(result.traffic, pricing),
                   static_cast<double>(result.traffic.TotalNetworkBytes()));
  for (auto cls : {TrafficClass::kKeysAndCounts, TrafficClass::kKeysAndNodes,
                   TrafficClass::kRTuples, TrafficClass::kSTuples}) {
    EXPECT_DOUBLE_EQ(RepricedNetworkBytes(result.traffic, cls, pricing),
                     static_cast<double>(result.traffic.NetworkBytes(cls)));
  }
}

TEST(RepriceTest, HalvingWidthsHalvesTupleTraffic) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 200;
  spec.r_payload = 8;
  spec.s_payload = 8;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunHashJoin(w.r, w.s, config);

  PricingSpec pricing;
  pricing.physical = config;
  pricing.physical_payload_r = 8;
  pricing.physical_payload_s = 8;
  pricing.key_bits_x100 = 1600;      // Half of 32.
  pricing.payload_r_bits_x100 = 3200;  // Half of 64.
  pricing.payload_s_bits_x100 = 3200;

  double repriced = RepricedTotalNetworkBytes(result.traffic, pricing);
  EXPECT_DOUBLE_EQ(repriced,
                   static_cast<double>(result.traffic.TotalNetworkBytes()) / 2);
}

TEST(RepriceTest, FractionalBitsSupported) {
  // 30-bit dictionary keys on a 4-byte physical run: ratio 30/32.
  WorkloadSpec spec;
  spec.matched_keys = 100;
  spec.r_payload = 0;
  spec.s_payload = 0;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunHashJoin(w.r, w.s, config);

  PricingSpec pricing;
  pricing.physical = config;
  pricing.physical_payload_r = 0;
  pricing.physical_payload_s = 0;
  pricing.key_bits_x100 = 3000;
  pricing.payload_r_bits_x100 = 0;
  pricing.payload_s_bits_x100 = 0;
  double repriced = RepricedTotalNetworkBytes(result.traffic, pricing);
  double physical = static_cast<double>(result.traffic.TotalNetworkBytes());
  EXPECT_NEAR(repriced, physical * 30.0 / 32.0, 1e-6);
}

}  // namespace
}  // namespace tj
