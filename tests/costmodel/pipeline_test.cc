#include "costmodel/pipeline.h"

#include <gtest/gtest.h>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

TEST(PipelineMakespanTest, OneChunkIsSerialSum) {
  std::vector<PipelineStage> stages = {
      {"a", 2.0, 3.0}, {"b", 1.0, 0.0}, {"c", 0.5, 4.5}};
  EXPECT_DOUBLE_EQ(PipelineMakespan(stages, 1), 11.0);
  EXPECT_DOUBLE_EQ(DepipelinedSeconds(stages), 11.0);
}

TEST(PipelineMakespanTest, ManyChunksApproachResourceBound) {
  // Total CPU 4, total NET 8: the bound is 8.
  std::vector<PipelineStage> stages = {{"a", 1.0, 5.0}, {"b", 3.0, 3.0}};
  double bound = 8.0;
  EXPECT_NEAR(PipelineMakespan(stages, 1000), bound, 0.1);
  EXPECT_GE(PipelineMakespan(stages, 1000), bound - 1e-9);
}

TEST(PipelineMakespanTest, MonotoneInChunks) {
  std::vector<PipelineStage> stages = {
      {"a", 2.0, 1.0}, {"b", 0.5, 3.0}, {"c", 2.5, 0.5}};
  double prev = PipelineMakespan(stages, 1);
  for (uint32_t chunks : {2u, 4u, 8u, 32u, 128u}) {
    double now = PipelineMakespan(stages, chunks);
    EXPECT_LE(now, prev + 1e-9) << chunks;
    prev = now;
  }
  // Never below the resource bound.
  EXPECT_GE(prev, 5.0 - 1e-9);  // CPU bound: 2 + 0.5 + 2.5.
}

TEST(PipelineMakespanTest, TwoChunksHandComputed) {
  // One stage, cpu 2 net 2, two chunks: chunk0 cpu [0,1], net [1,2];
  // chunk1 cpu [1,2], net [2,3] -> makespan 3.
  std::vector<PipelineStage> stages = {{"a", 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(PipelineMakespan(stages, 2), 3.0);
}

TEST(PipelineMakespanTest, EmptyAndCpuOnly) {
  EXPECT_DOUBLE_EQ(PipelineMakespan({}, 4), 0.0);
  std::vector<PipelineStage> cpu_only = {{"a", 5.0, 0.0}};
  // A single CPU resource cannot pipeline with itself.
  EXPECT_DOUBLE_EQ(PipelineMakespan(cpu_only, 16), 5.0);
}

TEST(PipelineMakespanTest, ProfileMakespanBoundsMatchesStageBounds) {
  // ProfileMakespanBounds is MakespanBounds over StagesFromProfile: lower
  // is the perfect-overlap resource bound, upper the de-pipelined sum.
  StepProfile profile;
  profile.algorithm = "4tj-p";
  StepRecord a;
  a.phase = "track";
  a.wall_seconds = 2.0;
  a.net_seconds = 1.0;
  StepRecord b;
  b.phase = "transfer";
  b.wall_seconds = 0.5;
  b.net_seconds = 3.0;
  profile.steps = {a, b};
  const PipelineBounds bounds = ProfileMakespanBounds(profile);
  EXPECT_DOUBLE_EQ(bounds.lower_seconds, 4.0);  // max(2.5 cpu, 4.0 net).
  EXPECT_DOUBLE_EQ(bounds.upper_seconds, 6.5);
  EXPECT_LE(bounds.lower_seconds, bounds.upper_seconds);
}

TEST(BuildPipelineStagesTest, MapsTrackJoinPhases) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 400;
  spec.r_payload = 8;
  spec.s_payload = 24;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunTrackJoin4(w.r, w.s, config);

  NetworkTimeModel model{1e9};
  auto stages = BuildPipelineStages(result, model, 4);
  ASSERT_EQ(stages.size(), result.phase_seconds.size());

  // The tracking, scheduling and data phases must carry transfer time; the
  // local sort/join phases must not.
  double net_total = 0;
  for (const auto& stage : stages) {
    net_total += stage.net_seconds;
    if (stage.name == "sort local R tuples" ||
        stage.name == "final merge-join R->S") {
      EXPECT_DOUBLE_EQ(stage.net_seconds, 0.0);
    }
    if (stage.name == "selective broadcast & migrate") {
      EXPECT_GT(stage.net_seconds, 0.0);
    }
  }
  // All network bytes are attributed to some phase.
  double expected =
      static_cast<double>(result.traffic.TotalNetworkBytes()) / 4 / 1e9;
  EXPECT_NEAR(net_total, expected, expected * 1e-9);
}

TEST(BuildPipelineStagesTest, HashJoinPhasesAndScale) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 200;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunHashJoin(w.r, w.s, config);
  NetworkTimeModel model{1e9};
  auto stages = BuildPipelineStages(result, model, 4, /*time_scale=*/10.0);
  auto base = BuildPipelineStages(result, model, 4, /*time_scale=*/1.0);
  ASSERT_EQ(stages.size(), base.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    EXPECT_NEAR(stages[i].cpu_seconds, base[i].cpu_seconds * 10, 1e-12);
    EXPECT_NEAR(stages[i].net_seconds, base[i].net_seconds * 10, 1e-12);
  }
}

TEST(MakespanBoundsTest, HandComputedBounds) {
  std::vector<PipelineStage> stages = {{"a", 2.0, 3.0}, {"b", 1.0, 0.5}};
  PipelineBounds bounds = MakespanBounds(stages);
  // Lower: the busier resource (net 3.5 vs cpu 3.0). Upper: serial sum.
  EXPECT_DOUBLE_EQ(bounds.lower_seconds, 3.5);
  EXPECT_DOUBLE_EQ(bounds.upper_seconds, 6.5);
  EXPECT_TRUE(bounds.Contains(3.5));
  EXPECT_TRUE(bounds.Contains(6.5));
  EXPECT_TRUE(bounds.Contains(5.0));
  EXPECT_FALSE(bounds.Contains(3.4));
  EXPECT_FALSE(bounds.Contains(6.6));
}

TEST(MakespanBoundsTest, EmptyStagesCollapseToZero) {
  PipelineBounds bounds = MakespanBounds({});
  EXPECT_DOUBLE_EQ(bounds.lower_seconds, 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper_seconds, 0.0);
  EXPECT_TRUE(bounds.Contains(0.0));
}

TEST(MakespanBoundsTest, PipelineMakespanStaysInsideBounds) {
  std::vector<PipelineStage> stages = {
      {"a", 2.0, 1.0}, {"b", 0.5, 3.0}, {"c", 2.5, 0.5}};
  PipelineBounds bounds = MakespanBounds(stages);
  for (uint32_t chunks : {1u, 2u, 8u, 64u, 512u}) {
    EXPECT_TRUE(bounds.Contains(PipelineMakespan(stages, chunks))) << chunks;
  }
}

TEST(StagesFromProfileTest, MirrorsStepRecords) {
  StepProfile profile;
  profile.algorithm = "4tj-p";
  StepRecord track;
  track.phase = "track";
  track.wall_seconds = 0.25;
  track.net_seconds = 0.125;
  StepRecord join;
  join.phase = "join";
  join.wall_seconds = 1.5;
  join.net_seconds = 0.0;
  profile.steps = {track, join};

  auto stages = StagesFromProfile(profile);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "track");
  EXPECT_DOUBLE_EQ(stages[0].cpu_seconds, 0.25);
  EXPECT_DOUBLE_EQ(stages[0].net_seconds, 0.125);
  EXPECT_EQ(stages[1].name, "join");
  EXPECT_DOUBLE_EQ(stages[1].cpu_seconds, 1.5);
  EXPECT_DOUBLE_EQ(stages[1].net_seconds, 0.0);

  PipelineBounds bounds = MakespanBounds(stages);
  EXPECT_DOUBLE_EQ(bounds.upper_seconds, 1.875);
}

TEST(PipelineMakespanTest, RealJoinPipelinesBetweenBounds) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  spec.r_payload = 16;
  spec.s_payload = 48;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunTrackJoin4(w.r, w.s, config);
  NetworkTimeModel model;  // Paper bandwidth: net dominates CPU here.
  auto stages = BuildPipelineStages(result, model, 4, /*time_scale=*/1000);

  double serial = PipelineMakespan(stages, 1);
  double pipelined = PipelineMakespan(stages, 64);
  double cpu_total = 0, net_total = 0;
  for (const auto& stage : stages) {
    cpu_total += stage.cpu_seconds;
    net_total += stage.net_seconds;
  }
  EXPECT_LT(pipelined, serial);
  EXPECT_GE(pipelined, std::max(cpu_total, net_total) - 1e-9);
}

}  // namespace
}  // namespace tj
