#include "costmodel/network_cost.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

JoinStats UniqueKeyStats() {
  JoinStats stats;
  stats.num_nodes = 16;
  stats.t_r = 1e9;
  stats.t_s = 1e9;
  stats.d_r = 1e9;
  stats.d_s = 1e9;
  stats.w_k = 4;
  stats.w_r = 16;
  stats.w_s = 56;
  stats.t_rs = 1e9;
  return stats;
}

TEST(NetworkCostTest, HashJoinFormula) {
  JoinStats stats = UniqueKeyStats();
  // tR(wk+wR) + tS(wk+wS) = 1e9*20 + 1e9*60 = 8e10.
  EXPECT_DOUBLE_EQ(HashJoinCost(stats), 8e10);
  EXPECT_DOUBLE_EQ(HashJoinCost(stats, true), 8e10 * 15 / 16);
}

TEST(NetworkCostTest, BroadcastFormula) {
  JoinStats stats = UniqueKeyStats();
  EXPECT_DOUBLE_EQ(BroadcastJoinCost(stats, true), 15 * 1e9 * 20);
  EXPECT_DOUBLE_EQ(BroadcastJoinCost(stats, false), 15 * 1e9 * 60);
}

TEST(NetworkCostTest, NodesPerKeyClampedByN) {
  JoinStats stats = UniqueKeyStats();
  EXPECT_DOUBLE_EQ(stats.NodesPerKeyR(), 1.0);  // Unique keys: 1 node.
  stats.d_r = 1e9 / 100;                        // 100 repeats per key.
  EXPECT_DOUBLE_EQ(stats.NodesPerKeyR(), 16.0);  // Clamped to N.
}

TEST(NetworkCostTest, TrackJoin2BeatsHashJoinOnWidePayloads) {
  // Unique keys, wS = 56 >= 2*wk = 8: the paper's break-even rule says TJ
  // must win.
  JoinStats stats = UniqueKeyStats();
  EXPECT_LT(TrackJoin2Cost(stats), HashJoinCost(stats));
}

TEST(NetworkCostTest, TrackJoin2LosesOnTinyPayloads) {
  JoinStats stats = UniqueKeyStats();
  stats.w_r = 1;
  stats.w_s = 1;  // max payload < 2*wk: hash join should win.
  EXPECT_GT(TrackJoin2Cost(stats), HashJoinCost(stats));
}

TEST(NetworkCostTest, TrackJoin2Formula) {
  JoinStats stats = UniqueKeyStats();
  // nR = nS = mS = 1.
  // track = (1e9 + 1e9)*4 = 8e9; locations = 1e9*1*4 = 4e9;
  // data = 1e9*1*1*20 = 2e10. Total 3.2e10.
  EXPECT_DOUBLE_EQ(TrackJoin2Cost(stats), 3.2e10);
}

TEST(NetworkCostTest, TrackJoin3ClassesInterpolate) {
  JoinStats stats = UniqueKeyStats();
  double all_rs = TrackJoin3Cost(stats, {1.0, 0.0, 0.0});
  double all_sr = TrackJoin3Cost(stats, {0.0, 1.0, 0.0});
  double half = TrackJoin3Cost(stats, {0.5, 0.5, 0.0});
  EXPECT_LT(all_rs, all_sr);  // R is narrower.
  EXPECT_NEAR(half, (all_rs + all_sr) / 2, 1.0);
}

TEST(NetworkCostTest, TrackJoin4HashClassCostsLikeHashJoinPlusTracking) {
  JoinStats stats = UniqueKeyStats();
  double tj4 = TrackJoin4Cost(stats, {0.0, 0.0, 1.0});
  EXPECT_GT(tj4, HashJoinCost(stats));  // Data like HJ + tracking + locations.
  EXPECT_LT(tj4, HashJoinCost(stats) * 1.5);
}

TEST(NetworkCostTest, RidHashJoinDominatedBy2TJ) {
  // Section 3.2: "the simplest 2-phase track join subsumes the rid-based
  // tracking-aware hash join" — for realistic widths.
  JoinStats stats = UniqueKeyStats();
  EXPECT_LT(TrackJoin2Cost(stats), RidTrackingHashJoinCost(stats));
}

TEST(NetworkCostTest, LateMaterializationExplodesOnLargeOutputs) {
  JoinStats stats = UniqueKeyStats();
  stats.t_rs = 5.4 * stats.t_r;  // Workload Y's output blow-up.
  EXPECT_GT(LateMaterializedHashJoinCost(stats), HashJoinCost(stats));
}

TEST(NetworkCostTest, FilteredCostsGrowWithError) {
  JoinStats stats = UniqueKeyStats();
  stats.s_r = 0.1;
  stats.s_s = 0.1;
  double tight = FilteredHashJoinCost(stats, 1.25, 0.01);
  double loose = FilteredHashJoinCost(stats, 1.25, 0.2);
  EXPECT_LT(tight, loose);
  double f2tj_tight = FilteredTrackJoin2Cost(stats, 1.25, 0.01);
  double f2tj_loose = FilteredTrackJoin2Cost(stats, 1.25, 0.2);
  EXPECT_LT(f2tj_tight, f2tj_loose);
}

TEST(NetworkCostTest, SelectiveTrackJoinSkipsNonMatching) {
  JoinStats stats = UniqueKeyStats();
  stats.s_r = 0.1;  // 90% of R never ships payloads in track join.
  double selective = TrackJoin2Cost(stats);
  stats.s_r = 1.0;
  double full = TrackJoin2Cost(stats);
  // Tracking and location messages are selectivity-independent in the
  // paper's formula; only the tuple-transfer term shrinks by 10x.
  EXPECT_LT(selective, full * 0.5);
}

}  // namespace
}  // namespace tj
