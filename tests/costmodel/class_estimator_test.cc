#include "costmodel/class_estimator.h"

#include <gtest/gtest.h>

#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

uint64_t ScheduleBytes(const JoinResult& result) {
  return result.traffic.NetworkBytes(TrafficClass::kKeysAndNodes) +
         result.traffic.NetworkBytes(TrafficClass::kRTuples) +
         result.traffic.NetworkBytes(TrafficClass::kSTuples);
}

TEST(ClassEstimatorTest, FullSampleIsExact) {
  WorkloadSpec spec;
  spec.num_nodes = 5;
  spec.matched_keys = 400;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 10;
  spec.s_payload = 20;
  spec.r_unmatched = 100;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();

  ClassEstimate estimate = EstimateClasses(w.r, w.s, config, 1.0);
  JoinResult run = RunTrackJoin4(w.r, w.s, config);
  EXPECT_DOUBLE_EQ(estimate.schedule_bytes,
                   static_cast<double>(ScheduleBytes(run)));
  EXPECT_EQ(estimate.sampled_keys, 400u);
  EXPECT_DOUBLE_EQ(estimate.matched_keys, 400.0);
}

TEST(ClassEstimatorTest, UniqueKeysNarrowRGoRtoS) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 1000;
  spec.r_payload = 4;
  spec.s_payload = 48;
  Workload w = GenerateWorkload(spec);
  ClassEstimate estimate = EstimateClasses(w.r, w.s, TestConfig(), 1.0);
  EXPECT_GT(estimate.classes.rs, 0.95);
  EXPECT_LT(estimate.classes.hash, 0.05);
}

TEST(ClassEstimatorTest, FlippedWidthsGoStoR) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 1000;
  spec.r_payload = 48;
  spec.s_payload = 4;
  Workload w = GenerateWorkload(spec);
  ClassEstimate estimate = EstimateClasses(w.r, w.s, TestConfig(), 1.0);
  // ~1/N of the keys are collocated singletons whose directions tie (and
  // tie toward R->S); everything else must pick S->R.
  EXPECT_GT(estimate.classes.sr, 0.8);
  EXPECT_LT(estimate.classes.rs, 0.2);
  EXPECT_LT(estimate.classes.hash, 0.05);
}

TEST(ClassEstimatorTest, ScatteredRepeatsProduceHashClass) {
  // Equal-width heavy repeats scattered over all nodes consolidate to a
  // single node (all but one target location migrates) — the hash-like
  // class the paper's 4-phase cost formula includes.
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 300;
  spec.r_multiplicity = 8;
  spec.s_multiplicity = 8;
  spec.r_payload = 16;
  spec.s_payload = 16;
  spec.collocation = Collocation::kRandom;
  Workload w = GenerateWorkload(spec);
  ClassEstimate estimate = EstimateClasses(w.r, w.s, TestConfig(), 1.0);
  EXPECT_GT(estimate.classes.hash, 0.5);
}

TEST(ClassEstimatorTest, SamplingApproximatesFullEstimate) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 20000;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 12;
  spec.s_payload = 28;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();
  ClassEstimate full = EstimateClasses(w.r, w.s, config, 1.0);
  ClassEstimate sampled = EstimateClasses(w.r, w.s, config, 0.1, /*seed=*/7);
  EXPECT_NEAR(sampled.sampled_keys / 2000.0, 1.0, 0.15);
  EXPECT_NEAR(sampled.schedule_bytes / full.schedule_bytes, 1.0, 0.1);
  EXPECT_NEAR(sampled.matched_keys / full.matched_keys, 1.0, 0.15);
  EXPECT_NEAR(sampled.classes.rs, full.classes.rs, 0.1);
}

TEST(ClassEstimatorTest, SamplingIsCorrelatedAcrossTables) {
  // A sampled key must come with BOTH sides' entries, or matched keys
  // would be undercounted quadratically. With matched-only inputs the
  // extrapolated matched-key count must track the truth.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 50000;
  Workload w = GenerateWorkload(spec);
  ClassEstimate estimate = EstimateClasses(w.r, w.s, TestConfig(), 0.05, 3);
  EXPECT_NEAR(estimate.matched_keys / 50000.0, 1.0, 0.1);
}

TEST(ClassEstimatorTest, NoMatchesMeansEmptyEstimate) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 0;
  spec.r_unmatched = 500;
  spec.s_unmatched = 500;
  Workload w = GenerateWorkload(spec);
  ClassEstimate estimate = EstimateClasses(w.r, w.s, TestConfig(), 1.0);
  EXPECT_EQ(estimate.sampled_keys, 0u);
  EXPECT_DOUBLE_EQ(estimate.schedule_bytes, 0.0);
  EXPECT_DOUBLE_EQ(estimate.classes.rs + estimate.classes.sr +
                       estimate.classes.hash,
                   0.0);
}

}  // namespace
}  // namespace tj
