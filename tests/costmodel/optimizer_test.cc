#include "costmodel/optimizer.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

JoinStats BaseStats() {
  JoinStats stats;
  stats.num_nodes = 16;
  stats.t_r = 1e8;
  stats.t_s = 1e8;
  stats.d_r = 1e8;
  stats.d_s = 1e8;
  stats.w_k = 4;
  stats.w_r = 16;
  stats.w_s = 56;
  return stats;
}

TEST(OptimizerTest, RanksAllSevenCandidates) {
  auto plans = RankAlgorithms(BaseStats());
  EXPECT_EQ(plans.size(), 7u);
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].modeled_bytes, plans[i].modeled_bytes);
  }
}

TEST(OptimizerTest, TinyTablePrefersBroadcast) {
  JoinStats stats = BaseStats();
  stats.t_r = 1000;  // R fits in a message: replicate it.
  stats.d_r = 1000;
  PlanChoice choice = ChooseAlgorithm(stats);
  EXPECT_EQ(choice.algorithm, JoinAlgorithm::kBroadcastR);
}

TEST(OptimizerTest, WidePayloadsPreferTrackJoin) {
  PlanChoice choice = ChooseAlgorithm(BaseStats());
  EXPECT_TRUE(choice.algorithm == JoinAlgorithm::kTrack2R ||
              choice.algorithm == JoinAlgorithm::kTrack2S ||
              choice.algorithm == JoinAlgorithm::kTrack3 ||
              choice.algorithm == JoinAlgorithm::kTrack4)
      << JoinAlgorithmName(choice.algorithm);
}

TEST(OptimizerTest, NarrowPayloadsPreferHashJoin) {
  JoinStats stats = BaseStats();
  stats.w_r = 1;
  stats.w_s = 2;  // 2*wk > max payload.
  PlanChoice choice = ChooseAlgorithm(stats);
  EXPECT_EQ(choice.algorithm, JoinAlgorithm::kHash);
}

TEST(OptimizerTest, BreakEvenRule) {
  EXPECT_TRUE(TrackJoinBeatsHashJoinUniqueKeys(4, 16, 56));
  EXPECT_TRUE(TrackJoinBeatsHashJoinUniqueKeys(4, 8, 8));
  EXPECT_FALSE(TrackJoinBeatsHashJoinUniqueKeys(4, 7, 7));
}

TEST(OptimizerTest, DirectionFollowsNarrowSide) {
  JoinStats stats = BaseStats();  // wR < wS: ship R.
  auto plans = RankAlgorithms(stats);
  double r_cost = 0, s_cost = 0;
  for (const auto& p : plans) {
    if (p.algorithm == JoinAlgorithm::kTrack2R) r_cost = p.modeled_bytes;
    if (p.algorithm == JoinAlgorithm::kTrack2S) s_cost = p.modeled_bytes;
  }
  EXPECT_LT(r_cost, s_cost);
}

TEST(OptimizerTest, ExplicitClassesChangeFourPhaseEstimate) {
  JoinStats stats = BaseStats();
  double pure = TrackJoin4Cost(stats, {1.0, 0.0, 0.0});
  double hashy = TrackJoin4Cost(stats, {0.0, 0.0, 1.0});
  EXPECT_NE(pure, hashy);
}

}  // namespace
}  // namespace tj
