#include "baseline/hash_join.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

TEST(HashJoinTest, JoinsCorrectCardinality) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(result.output_rows, w.expected_output_rows);
  EXPECT_EQ(result.checksum.count(), w.expected_output_rows);
}

TEST(HashJoinTest, TrafficIsAboutOneMinusOneOverN) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 4000;
  spec.r_payload = 12;
  spec.s_payload = 28;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();
  JoinResult result = RunHashJoin(w.r, w.s, config);

  double full_r = w.r.TotalRows() * (config.key_bytes + spec.r_payload);
  double full_s = w.s.TotalRows() * (config.key_bytes + spec.s_payload);
  double expected = (full_r + full_s) * (1.0 - 1.0 / spec.num_nodes);
  double measured = static_cast<double>(result.traffic.TotalNetworkBytes());
  EXPECT_NEAR(measured, expected, expected * 0.05);
  // Hash join never sends tracking or location messages.
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kKeysAndCounts), 0u);
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kKeysAndNodes), 0u);
}

TEST(HashJoinTest, PlacementInvariant) {
  // Hash join traffic is (statistically) identical before and after
  // shuffling: pre-existing locality cannot help it.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 2000;
  spec.r_pattern = {1};
  spec.s_pattern = {1};
  spec.collocation = Collocation::kInter;  // Full locality.
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();

  JoinResult before = RunHashJoin(w.r, w.s, config);
  ShuffleTable(&w.r, 1);
  ShuffleTable(&w.s, 2);
  JoinResult after = RunHashJoin(w.r, w.s, config);
  EXPECT_EQ(before.output_rows, after.output_rows);
  EXPECT_EQ(before.checksum.digest(), after.checksum.digest());
  double b = static_cast<double>(before.traffic.TotalNetworkBytes());
  double a = static_cast<double>(after.traffic.TotalNetworkBytes());
  EXPECT_NEAR(a, b, b * 0.05);
}

TEST(HashJoinTest, SingleNodeHasNoNetworkTraffic) {
  WorkloadSpec spec;
  spec.num_nodes = 1;
  spec.matched_keys = 100;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(result.output_rows, 100u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
  EXPECT_GT(result.traffic.TotalLocalBytes(), 0u);
}

TEST(HashJoinTest, EmptyInputs) {
  PartitionedTable r("R", 3, 4), s("S", 3, 4);
  JoinResult result = RunHashJoin(r, s, TestConfig());
  EXPECT_EQ(result.output_rows, 0u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
}

TEST(HashJoinTest, StepBreakdownNames) {
  WorkloadSpec spec;
  spec.matched_keys = 20;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunHashJoin(w.r, w.s, TestConfig());
  ASSERT_EQ(result.phase_seconds.size(), 5u);
  EXPECT_EQ(result.phase_seconds[0].first, "hash partition & transfer R tuples");
  EXPECT_EQ(result.phase_seconds[4].first, "final merge-join");
}

}  // namespace
}  // namespace tj
