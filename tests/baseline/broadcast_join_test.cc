#include "baseline/broadcast_join.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

TEST(BroadcastJoinTest, CorrectOutputBothDirections) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 2;
  Workload w = GenerateWorkload(spec);
  JoinResult r = RunBroadcastJoin(w.r, w.s, TestConfig(), Direction::kRtoS);
  JoinResult s = RunBroadcastJoin(w.r, w.s, TestConfig(), Direction::kStoR);
  EXPECT_EQ(r.output_rows, w.expected_output_rows);
  EXPECT_EQ(s.output_rows, w.expected_output_rows);
  EXPECT_EQ(r.checksum.digest(), s.checksum.digest());
}

TEST(BroadcastJoinTest, TrafficIsNMinusOneTimesTable) {
  WorkloadSpec spec;
  spec.num_nodes = 6;
  spec.matched_keys = 1000;
  spec.r_payload = 16;
  spec.s_payload = 56;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();

  JoinResult r = RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS);
  uint64_t expected_r =
      w.r.TotalRows() * (config.key_bytes + spec.r_payload) * (6 - 1);
  EXPECT_EQ(r.traffic.TotalNetworkBytes(), expected_r);
  EXPECT_EQ(r.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);

  JoinResult s = RunBroadcastJoin(w.r, w.s, config, Direction::kStoR);
  uint64_t expected_s =
      w.s.TotalRows() * (config.key_bytes + spec.s_payload) * (6 - 1);
  EXPECT_EQ(s.traffic.TotalNetworkBytes(), expected_s);
  EXPECT_EQ(s.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
}

TEST(BroadcastJoinTest, SingleNodeIsFree) {
  WorkloadSpec spec;
  spec.num_nodes = 1;
  spec.matched_keys = 50;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunBroadcastJoin(w.r, w.s, TestConfig(), Direction::kRtoS);
  EXPECT_EQ(result.output_rows, 50u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
}

TEST(BroadcastJoinTest, EmptyMovingTable) {
  PartitionedTable r("R", 3, 4);
  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 10;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunBroadcastJoin(r, w.s, TestConfig(), Direction::kRtoS);
  EXPECT_EQ(result.output_rows, 0u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
}

}  // namespace
}  // namespace tj
