// Fault-injecting fabric: the reliable-delivery protocol under every fault
// the injector can produce, plus the zero-fault identity guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/fabric.h"

namespace tj {
namespace {

/// One exchange phase: every node sends `per_link` distinct payloads to
/// every other node. Returns what each node received, canonicalized.
struct Exchange {
  TrafficMatrix traffic{0};
  ReliabilityStats reliability;
  std::vector<std::vector<std::pair<uint32_t, ByteBuffer>>> received;
  Status status = Status::OK();
};

Exchange RunExchange(uint32_t n, uint32_t per_link, const FaultPolicy* policy,
                     uint64_t seed, uint32_t phases = 1) {
  Fabric fabric(n);
  if (policy != nullptr) fabric.SetFaultPolicy(*policy, seed);
  Exchange out;
  out.received.resize(n);
  for (uint32_t phase = 0; phase < phases; ++phase) {
    Status status = fabric.RunPhaseReliable(
        "exchange", [&](uint32_t node) -> Status {
          for (uint32_t dst = 0; dst < n; ++dst) {
            if (dst == node) continue;
            for (uint32_t k = 0; k < per_link; ++k) {
              ByteBuffer payload(16 + k, static_cast<uint8_t>(
                                             node * 41 + dst * 7 + k + phase));
              fabric.Send(node, dst, MessageType::kDataR, std::move(payload));
            }
          }
          return Status::OK();
        });
    if (!status.ok()) {
      out.status = status;
      return out;
    }
  }
  Status drain = fabric.RunPhaseReliable("drain", [&](uint32_t node) -> Status {
    for (auto& msg : fabric.TakeInbox(node)) {
      out.received[node].emplace_back(msg.src, std::move(msg.data));
    }
    return Status::OK();
  });
  if (!drain.ok()) {
    out.status = drain;
    return out;
  }
  out.traffic = fabric.traffic();
  out.reliability = fabric.reliability();
  return out;
}

std::vector<std::vector<std::pair<uint32_t, ByteBuffer>>> Canonical(
    std::vector<std::vector<std::pair<uint32_t, ByteBuffer>>> received) {
  for (auto& inbox : received) std::sort(inbox.begin(), inbox.end());
  return received;
}

// --- Zero-fault identity -------------------------------------------------

// An inactive policy must leave the fabric byte-identical to one with no
// policy at all: same inbox contents in the same order, same TrafficMatrix
// (no framing overhead), zero reliability activity.
TEST(ReliableFabricTest, InactivePolicyIsByteIdentical) {
  Exchange plain = RunExchange(4, 3, nullptr, 0);
  FaultPolicy zero;
  ASSERT_FALSE(zero.active());
  Exchange inert = RunExchange(4, 3, &zero, 99);

  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(inert.status.ok());
  EXPECT_EQ(plain.received, inert.received);  // Order included.
  EXPECT_TRUE(plain.traffic == inert.traffic);
  EXPECT_EQ(inert.reliability.retransmitted_frames, 0u);
  EXPECT_EQ(inert.reliability.nack_messages, 0u);
  EXPECT_EQ(inert.traffic.TotalRetransmitBytes(), 0u);
}

// --- Recovery under lossy links ------------------------------------------

TEST(ReliableFabricTest, DropRecoveryDeliversEverything) {
  FaultPolicy policy;
  policy.drop = 0.3;
  Exchange faulty = RunExchange(4, 8, &policy, 1234);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  Exchange plain = RunExchange(4, 8, nullptr, 0);
  EXPECT_EQ(Canonical(faulty.received), Canonical(plain.received));
  EXPECT_GT(faulty.reliability.faults.frames_dropped, 0u);
  EXPECT_GT(faulty.reliability.retransmitted_frames, 0u);
  EXPECT_GT(faulty.reliability.nack_messages, 0u);
  EXPECT_GT(faulty.traffic.TotalRetransmitBytes(), 0u);
}

TEST(ReliableFabricTest, CorruptFramesAreRetransmitted) {
  FaultPolicy policy;
  policy.corrupt = 0.25;
  Exchange faulty = RunExchange(4, 8, &policy, 77);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  Exchange plain = RunExchange(4, 8, nullptr, 0);
  EXPECT_EQ(Canonical(faulty.received), Canonical(plain.received));
  EXPECT_GT(faulty.reliability.faults.frames_corrupted, 0u);
  EXPECT_GT(faulty.reliability.retransmitted_frames, 0u);
}

TEST(ReliableFabricTest, DuplicatesAreDeduplicated) {
  FaultPolicy policy;
  policy.duplicate = 0.5;
  Exchange faulty = RunExchange(4, 8, &policy, 5);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  Exchange plain = RunExchange(4, 8, nullptr, 0);
  // Same messages, once each — the seq numbers absorb the extra copies.
  EXPECT_EQ(Canonical(faulty.received), Canonical(plain.received));
  EXPECT_GT(faulty.reliability.faults.frames_duplicated, 0u);
  // Duplicate copies cost wire bytes but never goodput.
  EXPECT_GT(faulty.traffic.TotalRetransmitBytes(), 0u);
}

TEST(ReliableFabricTest, ReorderKeepsContent) {
  FaultPolicy policy;
  policy.reorder = 1.0;
  Exchange faulty = RunExchange(4, 8, &policy, 21);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  Exchange plain = RunExchange(4, 8, nullptr, 0);
  EXPECT_EQ(Canonical(faulty.received), Canonical(plain.received));
  EXPECT_GT(faulty.reliability.faults.messages_reordered, 0u);
}

TEST(ReliableFabricTest, EverythingAtOnceStillExact) {
  FaultPolicy policy;
  policy.drop = 0.1;
  policy.corrupt = 0.05;
  policy.duplicate = 0.1;
  policy.reorder = 0.2;
  policy.max_retries = 32;
  Exchange faulty = RunExchange(5, 6, &policy, 4242, /*phases=*/3);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  Exchange plain = RunExchange(5, 6, nullptr, 0, /*phases=*/3);
  EXPECT_EQ(Canonical(faulty.received), Canonical(plain.received));
}

// Goodput accounting never changes under recoverable faults: first-copy
// frame bytes land in the main ledger, every retry/dup/nack byte in the
// retransmit ledger.
TEST(ReliableFabricTest, GoodputIsFaultInvariant) {
  FaultPolicy zero;
  Exchange clean = RunExchange(4, 8, &zero, 9);  // Framed-path baseline? No:
  // inactive policy rides the unframed path, so compare two active runs.
  FaultPolicy calm;
  calm.drop = 1e-9;  // Active, but will essentially never fire.
  Exchange framed = RunExchange(4, 8, &calm, 9);
  FaultPolicy lossy;
  lossy.drop = 0.3;
  Exchange noisy = RunExchange(4, 8, &lossy, 9);
  ASSERT_TRUE(framed.status.ok());
  ASSERT_TRUE(noisy.status.ok());
  EXPECT_EQ(framed.traffic.TotalNetworkBytes(),
            noisy.traffic.TotalNetworkBytes());
  EXPECT_GT(noisy.traffic.TotalRetransmitBytes(),
            framed.traffic.TotalRetransmitBytes());
  EXPECT_GT(clean.traffic.TotalNetworkBytes(), 0u);
}

// --- Unrecoverable faults -------------------------------------------------

TEST(ReliableFabricTest, RetryBudgetExhaustionIsDataLoss) {
  FaultPolicy policy;
  policy.drop = 1.0;  // Every copy of every frame dies.
  policy.max_retries = 2;
  Exchange faulty = RunExchange(3, 2, &policy, 8);
  ASSERT_FALSE(faulty.status.ok());
  EXPECT_EQ(faulty.status.code(), StatusCode::kDataLoss);
  // The error names the phase for the operator.
  EXPECT_NE(faulty.status.ToString().find("exchange"), std::string::npos)
      << faulty.status.ToString();
}

TEST(ReliableFabricTest, CrashFaultFailsThePhase) {
  FaultPolicy policy;
  policy.crash_node = 1;
  policy.crash_phase = 0;
  Exchange faulty = RunExchange(3, 2, &policy, 8);
  ASSERT_FALSE(faulty.status.ok());
  EXPECT_EQ(faulty.status.code(), StatusCode::kDataLoss);
  EXPECT_NE(faulty.status.ToString().find("crashed"), std::string::npos);
}

TEST(ReliableFabricTest, CrashAtLaterPhaseSucceedsUntilThen) {
  FaultPolicy policy;
  policy.crash_node = 2;
  policy.crash_phase = 1;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 3);
  Status first = fabric.RunPhaseReliable("p0", [&](uint32_t node) -> Status {
    fabric.Send(node, (node + 1) % 3, MessageType::kDataR, ByteBuffer{1});
    return Status::OK();
  });
  EXPECT_TRUE(first.ok()) << first.ToString();
  Status second =
      fabric.RunPhaseReliable("p1", [&](uint32_t) { return Status::OK(); });
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kDataLoss);
  EXPECT_NE(second.ToString().find("p1"), std::string::npos);
}

TEST(ReliableFabricTest, NodeErrorPropagatesWithPhaseName) {
  Fabric fabric(2);
  FaultPolicy policy;
  policy.corrupt = 0.01;
  fabric.SetFaultPolicy(policy, 1);
  Status status = fabric.RunPhaseReliable(
      "decode tuples", [&](uint32_t node) -> Status {
        if (node == 1) return Status::Corruption("bad payload");
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.ToString().find("decode tuples"), std::string::npos);
  EXPECT_NE(status.ToString().find("bad payload"), std::string::npos);
}

// --- Determinism ----------------------------------------------------------

TEST(ReliableFabricTest, SameSeedSameOutcome) {
  FaultPolicy policy;
  policy.drop = 0.2;
  policy.corrupt = 0.1;
  policy.duplicate = 0.1;
  Exchange a = RunExchange(4, 8, &policy, 31337);
  Exchange b = RunExchange(4, 8, &policy, 31337);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.received, b.received);  // Identical order, not just content.
  EXPECT_TRUE(a.traffic == b.traffic);
  EXPECT_EQ(a.reliability.faults.frames_dropped,
            b.reliability.faults.frames_dropped);
  EXPECT_EQ(a.reliability.retransmitted_frames,
            b.reliability.retransmitted_frames);
  EXPECT_EQ(a.reliability.nack_messages, b.reliability.nack_messages);
}

TEST(ReliableFabricTest, DifferentSeedsDifferentFaults) {
  FaultPolicy policy;
  policy.drop = 0.3;
  Exchange a = RunExchange(4, 16, &policy, 1);
  Exchange b = RunExchange(4, 16, &policy, 2);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  // Same goodput either way; the fault pattern (and so the retry work)
  // almost surely differs.
  EXPECT_EQ(Canonical(a.received), Canonical(b.received));
  EXPECT_NE(a.reliability.faults.frames_dropped +
                a.reliability.retransmitted_frames * 131,
            b.reliability.faults.frames_dropped +
                b.reliability.retransmitted_frames * 131);
}

// --- Straggler modeling ---------------------------------------------------

TEST(ReliableFabricTest, SlowNodeStretchesPhaseTime) {
  FaultPolicy policy;
  policy.slow_node = 0;
  policy.slowdown_seconds = 1.5;
  Fabric fabric(2);
  fabric.SetFaultPolicy(policy, 4);
  Status status =
      fabric.RunPhaseReliable("slow", [&](uint32_t) { return Status::OK(); });
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(fabric.phase_seconds().size(), 1u);
  EXPECT_GE(fabric.phase_seconds()[0].second, 1.5);
}

// A straggler perturbs modeled time only, never delivery: the policy is not
// "active", the wire path stays unframed, and every byte matches a run with
// no policy at all.
TEST(ReliableFabricTest, StragglerOnlyPolicyKeepsWirePristine) {
  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 2.0;
  EXPECT_FALSE(policy.active());
  EXPECT_TRUE(policy.models_straggler());
  EXPECT_TRUE(policy.any_effect());

  Exchange plain = RunExchange(4, 3, nullptr, 0);
  Exchange slow = RunExchange(4, 3, &policy, 55);
  ASSERT_TRUE(slow.status.ok());
  EXPECT_EQ(plain.received, slow.received);  // Order included.
  EXPECT_TRUE(plain.traffic == slow.traffic);  // No framing overhead.
  EXPECT_EQ(slow.reliability.retransmitted_frames, 0u);
  EXPECT_EQ(slow.traffic.TotalRetransmitBytes(), 0u);
}

// The slowdown is modeled on the framed path too, not just the pristine one.
TEST(ReliableFabricTest, StragglerModeledAlongsideActiveFaults) {
  FaultPolicy policy;
  policy.slow_node = 0;
  policy.slowdown_seconds = 1.5;
  policy.drop = 1e-12;  // Active, so the framed path runs.
  ASSERT_TRUE(policy.active());
  Fabric fabric(2);
  fabric.SetFaultPolicy(policy, 4);
  Status status =
      fabric.RunPhaseReliable("slow", [&](uint32_t) { return Status::OK(); });
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(fabric.phase_seconds().size(), 1u);
  EXPECT_GE(fabric.phase_seconds()[0].second, 1.5);
}

// --- Deadline promotion ---------------------------------------------------

TEST(ReliableFabricTest, DeadlinePromotesStragglerToSuspectedDead) {
  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 3.0;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 9);
  fabric.SetPhaseDeadline(1.0);
  RunDiagnostics diag;
  fabric.SetDiagnosticsSink(&diag);
  Status status =
      fabric.RunPhaseReliable("scan", [&](uint32_t) { return Status::OK(); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.ToString().find("scan"), std::string::npos);
  EXPECT_EQ(fabric.failure().suspected_nodes, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(fabric.failure().dead_nodes.empty());
  EXPECT_FALSE(fabric.failure().transient());  // A node is implicated.
  // The diagnostics sink got the same report for out-of-band consumers.
  EXPECT_EQ(diag.failure.suspected_nodes, (std::vector<uint32_t>{1}));
  EXPECT_EQ(diag.failure.phase, "scan");
}

TEST(ReliableFabricTest, StragglerWithinDeadlineJustRunsSlow) {
  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 0.5;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 9);
  fabric.SetPhaseDeadline(1.0);
  Status status =
      fabric.RunPhaseReliable("scan", [&](uint32_t) { return Status::OK(); });
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(fabric.failure().empty());
  EXPECT_GE(fabric.phase_seconds()[0].second, 0.5);
}

// --- Structured failure reports -------------------------------------------

// The DataLoss error names the exhausted sequence range and retry count
// (the operator-facing side), and failure() carries the same facts as
// structured per-link losses (the recovery-layer side).
TEST(ReliableFabricTest, ExhaustionNamesSeqRangeAndFillsLinkLoss) {
  FaultPolicy policy;
  policy.drop = 1.0;
  policy.max_retries = 3;
  Fabric fabric(2);
  fabric.SetFaultPolicy(policy, 8);
  RunDiagnostics diag;
  fabric.SetDiagnosticsSink(&diag);
  Status status = fabric.RunPhaseReliable(
      "exchange", [&](uint32_t node) -> Status {
        if (node == 0) {
          fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1, 2, 3});
          fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{4, 5, 6});
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  const std::string msg = status.ToString();
  EXPECT_NE(msg.find("3 retry round"), std::string::npos) << msg;
  EXPECT_NE(msg.find("seq range ["), std::string::npos) << msg;

  const FailureReport& failure = fabric.failure();
  EXPECT_EQ(failure.phase, "exchange");
  EXPECT_EQ(failure.retry_rounds, 3u);
  EXPECT_TRUE(failure.transient());  // Loss, but no node implicated.
  ASSERT_EQ(failure.lost_links.size(), 1u);
  EXPECT_EQ(failure.lost_links[0].src, 0u);
  EXPECT_EQ(failure.lost_links[0].dst, 1u);
  EXPECT_EQ(failure.lost_links[0].frames, 2u);
  EXPECT_LE(failure.lost_links[0].seq_begin, failure.lost_links[0].seq_end);
  EXPECT_EQ(diag.failure.lost_links.size(), 1u);
}

TEST(ReliableFabricTest, CrashFillsDeadNodes) {
  FaultPolicy policy;
  policy.crash_node = 1;
  policy.crash_phase = 0;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 8);
  Status status =
      fabric.RunPhaseReliable("p0", [&](uint32_t) { return Status::OK(); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(fabric.failure().dead_nodes, (std::vector<uint32_t>{1}));
  EXPECT_FALSE(fabric.failure().transient());
  EXPECT_EQ(fabric.failure().unusable_nodes(), (std::vector<uint32_t>{1}));
}

TEST(ReliableFabricTest, SuccessClearsTheFailureReport) {
  FaultPolicy policy;
  policy.drop = 0.3;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 77);
  Status status = fabric.RunPhaseReliable(
      "ok", [&](uint32_t node) -> Status {
        fabric.Send(node, (node + 1) % 3, MessageType::kDataR, ByteBuffer{9});
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(fabric.failure().empty());
}

// --- Inbox durability across failure --------------------------------------

// Reliably delivered messages survive phase barriers until taken — even
// when a *later* phase fails. Typed TakeInbox leftovers taken two barriers
// later must also still be there after the failure.
TEST(ReliableFabricTest, DeliveredInboxesSurviveLaterPhaseFailure) {
  FaultPolicy policy;
  policy.crash_node = 2;
  policy.crash_phase = 2;
  Fabric fabric(3);
  fabric.SetFaultPolicy(policy, 5);

  // Phase 0: node 0 sends node 1 one control and two data messages.
  Status p0 = fabric.RunPhaseReliable("p0", [&](uint32_t node) -> Status {
    if (node == 0) {
      fabric.Send(0, 1, MessageType::kTrackR, ByteBuffer{7});
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1, 1});
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{2, 2});
    }
    return Status::OK();
  });
  ASSERT_TRUE(p0.ok()) << p0.ToString();

  // Phase 1: take only the control message; the data stays pending.
  std::vector<Message> control;
  Status p1 = fabric.RunPhaseReliable("p1", [&](uint32_t node) -> Status {
    if (node == 1) {
      control = fabric.TakeInbox(1, MessageType::kTrackR);
    }
    return Status::OK();
  });
  ASSERT_TRUE(p1.ok()) << p1.ToString();
  ASSERT_EQ(control.size(), 1u);

  // Phase 2 fails (crash). Everything queued-but-undelivered dies with the
  // phase; what was already delivered must not.
  Status p2 =
      fabric.RunPhaseReliable("p2", [&](uint32_t) { return Status::OK(); });
  ASSERT_FALSE(p2.ok());
  EXPECT_EQ(p2.code(), StatusCode::kDataLoss);

  // The typed leftovers are taken two barriers after delivery, after the
  // failed phase, intact and in delivery order.
  std::vector<Message> data = fabric.TakeInbox(1, MessageType::kDataR);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].src, 0u);
  EXPECT_EQ(data[0].data, (ByteBuffer{1, 1}));
  EXPECT_EQ(data[1].data, (ByteBuffer{2, 2}));
  EXPECT_TRUE(fabric.TakeInbox(1).empty());  // Nothing else survived.
}

}  // namespace
}  // namespace tj
