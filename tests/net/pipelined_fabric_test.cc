// Event-loop and flow-control tests for the pipelined fabric: modeled-time
// arithmetic, per-link credit accounting (stall and resume), oversized
// chunks, EOS without credit, per-stage accounting and the
// barrier-equivalent reference, plus determinism and node-failure modes.
#include "net/pipelined_fabric.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace tj {
namespace {

ByteBuffer Bytes(size_t size) {
  ByteBuffer buf;
  buf.assign(size, 0xAB);
  return buf;
}

PipelinedFabric::Params SmallParams(uint32_t nodes) {
  PipelinedFabric::Params params;
  params.num_nodes = nodes;
  params.cost.cpu_bandwidth_bytes_per_sec = 100.0;  // 1 byte = 10 ms.
  params.cost.net_bandwidth_bytes_per_sec = 100.0;
  params.chunk_bytes = 64;
  params.inbox_budget_bytes = 64 * nodes;  // window = 64 bytes per link.
  return params;
}

TEST(PipelinedFabricTest, TasksAccumulateModeledCpuTime) {
  PipelinedFabric fabric(SmallParams(1));
  fabric.Post(0, "work", "a", [&] {
    fabric.ChargeCpuBytes(100);  // 1 second.
    return Status::OK();
  });
  fabric.Post(0, "work", "b", [&] {
    fabric.ChargeCpuBytes(50);  // 0.5 seconds, serialized after a.
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_DOUBLE_EQ(fabric.makespan_seconds(), 1.5);
  ASSERT_EQ(fabric.stage_stats().size(), 1u);
  EXPECT_DOUBLE_EQ(fabric.stage_stats()[0].cpu_seconds_total, 1.5);
  EXPECT_DOUBLE_EQ(fabric.stage_stats()[0].max_node_cpu_seconds, 1.5);
}

TEST(PipelinedFabricTest, TransferFollowsSendingTaskAndHoldsBothNics) {
  PipelinedFabric fabric(SmallParams(2));
  double handler_bytes = 0;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    handler_bytes += chunk.data.size();
    fabric.ChargeCpuBytes(chunk.data.size());
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.ChargeCpuBytes(100);  // Task runs [0, 1).
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(50), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  // Chain: 1s CPU, then 0.5s wire, then 0.5s handler CPU.
  EXPECT_DOUBLE_EQ(fabric.makespan_seconds(), 2.0);
  EXPECT_EQ(handler_bytes, 50);
  EXPECT_EQ(fabric.traffic().TotalNetworkBytes(), 50u);
}

TEST(PipelinedFabricTest, LocalSendSkipsNicsAndLandsInLocalLedger) {
  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 0, MessageType::kDataR, Bytes(40), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(fabric.traffic().TotalNetworkBytes(), 0u);
  EXPECT_EQ(fabric.traffic().TotalLocalBytes(), 40u);
  // No NIC time: only the (zero-cost) tasks.
  EXPECT_DOUBLE_EQ(fabric.makespan_seconds(), 0.0);
}

TEST(PipelinedFabricTest, ZeroCreditStallsUntilHandlerCompletesThenResumes) {
  // Window is exactly one 64-byte chunk; the second chunk must wait for
  // the first handler to finish (credit returns at handler completion,
  // bounding receiver inbox memory, not just wire occupancy).
  PipelinedFabric fabric(SmallParams(2));
  std::vector<double> handler_bytes;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    handler_bytes.push_back(static_cast<double>(chunk.data.size()));
    fabric.ChargeCpuBytes(100);  // Each handler takes 1 s.
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(32), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  ASSERT_EQ(handler_bytes.size(), 2u);
  EXPECT_EQ(handler_bytes[0], 64);  // FIFO per stream.
  EXPECT_EQ(handler_bytes[1], 32);
  EXPECT_EQ(fabric.credit_stall_events(), 1u);
  // chunk1 wire [0, 0.64), handler [0.64, 1.64) -> credit back at 1.64;
  // chunk2 wire [1.64, 1.96), handler [1.96, 2.96).
  EXPECT_NEAR(fabric.makespan_seconds(), 2.96, 1e-9);
}

TEST(PipelinedFabricTest, OversizedChunkTakesWholeWindowWithoutDeadlock) {
  PipelinedFabric fabric(SmallParams(2));
  uint64_t received = 0;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    received += chunk.data.size();
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    // 200 bytes > the 64-byte window: admitted anyway (need saturates at
    // the window) or the system would deadlock on large single entries.
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(200), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(received, 200u);
  EXPECT_EQ(fabric.credit_stall_events(), 0u);
}

TEST(PipelinedFabricTest, ZeroByteEosNeedsNoCredit) {
  // Exhaust the window with an unconsumed chunk, then send a zero-byte
  // EOS: it must still be delivered (stream termination cannot deadlock).
  PipelinedFabric fabric(SmallParams(2));
  int eos_seen = 0;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    if (chunk.eos) ++eos_seen;
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, ByteBuffer{}, /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(eos_seen, 1);
}

TEST(PipelinedFabricTest, PerStreamOrderSurvivesCreditStalls) {
  // Three chunks through a one-chunk window: arrival order must match send
  // order even though the later two queue on the link FIFO.
  PipelinedFabric fabric(SmallParams(2));
  std::vector<uint64_t> watermarks;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    watermarks.push_back(chunk.watermark);
    fabric.ChargeCpuBytes(10);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    for (uint64_t i = 1; i <= 3; ++i) {
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), i == 3, i);
    }
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(watermarks, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(fabric.credit_stall_events(), 2u);
}

TEST(PipelinedFabricTest, BarrierReferenceSumsStageMaximaAndMakespanBeatsIt) {
  // One producer streams two chunks: the second chunk's wire time overlaps
  // the first chunk's handler, so the pipelined makespan strictly beats
  // the barrier-equivalent sum of per-stage maxima.
  PipelinedFabric::Params params = SmallParams(2);
  params.inbox_budget_bytes = 256 * 2;  // Window fits both chunks.
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    fabric.ChargeCpuBytes(chunk.data.size());
    return Status::OK();
  });
  fabric.Post(0, "produce", "p", [&] {
    fabric.ChargeCpuBytes(100);  // [0, 1).
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(50), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(50), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  // Event schedule: wire chunk1 [1, 1.5), chunk2 [1.5, 2); handlers
  // [1.5, 2) and [2, 2.5) — chunk2's flight hides under handler1.
  EXPECT_NEAR(fabric.makespan_seconds(), 2.5, 1e-9);
  // Barrier reference: produce (1 s cpu + 1 s for 100 bytes out) + recv
  // (1 s cpu) = 3 s.
  EXPECT_NEAR(fabric.barrier_makespan_seconds(), 3.0, 1e-9);
  EXPECT_LT(fabric.makespan_seconds(), fabric.barrier_makespan_seconds());
}

TEST(PipelinedFabricTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    PipelinedFabric fabric(SmallParams(3));
    fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
      fabric.ChargeCpuBytes(chunk.data.size());
      return Status::OK();
    });
    for (uint32_t node = 0; node < 3; ++node) {
      fabric.Post(node, "produce", "p", [&, node] {
        fabric.ChargeCpuBytes(30 + node * 7);
        for (uint32_t dst = 0; dst < 3; ++dst) {
          if (dst == node) continue;
          fabric.SendChunk(node, dst, MessageType::kDataR,
                           Bytes(40 + dst * 13), /*eos=*/true);
        }
        return Status::OK();
      });
    }
    EXPECT_TRUE(fabric.Run().ok());
    return fabric.makespan_seconds();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(PipelinedFabricTest, TaskErrorSurfacesWithLabelAndNode) {
  PipelinedFabric fabric(SmallParams(1));
  fabric.Post(0, "work", "exploder", [] {
    return Status::Internal("boom");
  });
  Status status = fabric.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exploder"), std::string::npos);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(PipelinedFabricTest, CrashedNodeSkipsTasksAndDropsArrivals) {
  FaultPolicy policy;
  policy.crash_node = 1;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  PipelinedFabric fabric(params);
  int handled = 0;
  bool dead_task_ran = false;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    ++handled;
    return Status::OK();
  });
  fabric.Post(1, "work", "dead", [&] {
    dead_task_ran = true;
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());  // Crash itself is not a run error...
  EXPECT_TRUE(fabric.node_dead(1));
  EXPECT_FALSE(dead_task_ran);
  EXPECT_EQ(handled, 0);
  // ...and dropped arrivals return their credit, so both chunks launched
  // (no deadlock on the full window). Fault mode frames each 64-byte
  // payload with a 16-byte header: 2 x 80 bytes.
  EXPECT_EQ(fabric.traffic().TotalNetworkBytes(), 160u);
  ASSERT_EQ(fabric.failure().dead_nodes.size(), 1u);
  EXPECT_EQ(fabric.failure().dead_nodes[0], 1u);
}

TEST(PipelinedFabricTest, SlowNodeStartsItsCpuLate) {
  FaultPolicy policy;
  policy.slow_node = 0;
  policy.slowdown_seconds = 2.0;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  PipelinedFabric fabric(params);
  fabric.Post(0, "work", "slow", [&] {
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  fabric.Post(1, "work", "fast", [&] {
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_DOUBLE_EQ(fabric.makespan_seconds(), 3.0);  // Straggler: 2 + 1.
}

TEST(PipelinedFabricTest, DropFaultsRetransmitAndAreCountedPerChunk) {
  FaultPolicy policy;
  policy.drop = 0.5;
  policy.max_retries = 64;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  params.fault_seed = 7;
  PipelinedFabric fabric(params);
  uint64_t received = 0;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    received += chunk.data.size();
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    for (int i = 0; i < 16; ++i) {
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(8), i == 15);
    }
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(received, 128u);  // Every chunk eventually delivered.
  const ReliabilityStats rel = fabric.reliability();
  EXPECT_GT(rel.faults.frames_dropped, 0u);
  EXPECT_GT(rel.retransmitted_frames, 0u);
  EXPECT_GT(fabric.traffic().TotalRetransmitBytes(), 0u);
}

TEST(PipelinedFabricTest, ExhaustedRetriesFailWithDataLossAndLinkReport) {
  FaultPolicy policy;
  policy.drop = 1.0;  // Nothing ever gets through.
  policy.max_retries = 3;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(8), /*eos=*/true);
    return Status::OK();
  });
  Status status = fabric.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  ASSERT_FALSE(fabric.failure().lost_links.empty());
  EXPECT_EQ(fabric.failure().lost_links[0].src, 0u);
  EXPECT_EQ(fabric.failure().lost_links[0].dst, 1u);
}

}  // namespace
}  // namespace tj
