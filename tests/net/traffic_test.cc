#include "net/traffic.h"

#include <gtest/gtest.h>

#include "net/time_model.h"

namespace tj {
namespace {

TEST(TrafficTest, LocalVsNetworkSeparation) {
  TrafficMatrix m(3);
  m.Add(0, 1, MessageType::kDataR, 100);
  m.Add(1, 1, MessageType::kDataR, 50);  // Local copy.
  EXPECT_EQ(m.NetworkBytes(MessageType::kDataR), 100u);
  EXPECT_EQ(m.LocalBytes(MessageType::kDataR), 50u);
  EXPECT_EQ(m.TotalNetworkBytes(), 100u);
  EXPECT_EQ(m.TotalLocalBytes(), 50u);
}

TEST(TrafficTest, ClassAggregation) {
  TrafficMatrix m(2);
  m.Add(0, 1, MessageType::kTrackR, 10);
  m.Add(0, 1, MessageType::kTrackS, 20);
  m.Add(0, 1, MessageType::kLocationsToR, 5);
  m.Add(0, 1, MessageType::kMigrateS, 6);
  m.Add(0, 1, MessageType::kDataR, 100);
  m.Add(0, 1, MessageType::kMigrationDataR, 1);
  m.Add(0, 1, MessageType::kDataS, 200);
  EXPECT_EQ(m.NetworkBytes(TrafficClass::kKeysAndCounts), 30u);
  EXPECT_EQ(m.NetworkBytes(TrafficClass::kKeysAndNodes), 11u);
  EXPECT_EQ(m.NetworkBytes(TrafficClass::kRTuples), 101u);
  EXPECT_EQ(m.NetworkBytes(TrafficClass::kSTuples), 200u);
  EXPECT_EQ(m.TotalNetworkBytes(), 342u);
}

TEST(TrafficTest, IngressEgressAndLinks) {
  TrafficMatrix m(3);
  m.Add(0, 1, MessageType::kDataR, 10);
  m.Add(0, 2, MessageType::kDataR, 20);
  m.Add(1, 0, MessageType::kDataS, 5);
  EXPECT_EQ(m.EgressBytes(0), 30u);
  EXPECT_EQ(m.IngressBytes(0), 5u);
  EXPECT_EQ(m.EgressBytes(1), 5u);
  EXPECT_EQ(m.IngressBytes(2), 20u);
  EXPECT_EQ(m.LinkBytes(0, 2), 20u);
  EXPECT_EQ(m.MaxLinkBytes(), 20u);
  EXPECT_EQ(m.MaxNodeBytes(), 30u);
}

TEST(TrafficTest, MergeAccumulates) {
  TrafficMatrix a(2), b(2);
  a.Add(0, 1, MessageType::kDataR, 7);
  b.Add(0, 1, MessageType::kDataR, 8);
  b.Add(1, 0, MessageType::kDataS, 9);
  a.Merge(b);
  EXPECT_EQ(a.NetworkBytes(MessageType::kDataR), 15u);
  EXPECT_EQ(a.NetworkBytes(MessageType::kDataS), 9u);
}

TEST(TrafficTest, ReportMentionsClasses) {
  TrafficMatrix m(2);
  m.Add(0, 1, MessageType::kDataR, 1 << 20);
  std::string report = m.Report();
  EXPECT_NE(report.find("R Tuples"), std::string::npos);
  EXPECT_NE(report.find("total network"), std::string::npos);
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00 MiB");
  EXPECT_EQ(FormatBytes(5ULL << 30), "5.00 GiB");
}

TEST(TimeModelTest, LinearInBytes) {
  TrafficMatrix m(2);
  m.Add(0, 1, MessageType::kDataR, 93000000);  // 0.093 GB.
  NetworkTimeModel model;
  EXPECT_NEAR(model.BottleneckSeconds(m), 1.0, 1e-9);
  EXPECT_NEAR(model.SerializedSeconds(m), 1.0, 1e-9);
  EXPECT_NEAR(model.AggregateSeconds(93000000 * 2, 2), 1.0, 1e-9);
}

TEST(TimeModelTest, BottleneckUsesBusiestNic) {
  TrafficMatrix m(3);
  m.Add(0, 1, MessageType::kDataR, 1000);
  m.Add(2, 1, MessageType::kDataR, 1000);  // Node 1 ingress = 2000.
  NetworkTimeModel model{1000.0};
  EXPECT_NEAR(model.BottleneckSeconds(m), 2.0, 1e-9);
  EXPECT_NEAR(model.SerializedSeconds(m), 2.0, 1e-9);
}

TEST(TrafficTest, ZeroNodesIsEmpty) {
  TrafficMatrix m;
  EXPECT_EQ(m.TotalNetworkBytes(), 0u);
}

TEST(TrafficTest, EveryMessageTypeHasAClass) {
  // Each type must map to a class and contribute to the total.
  for (int t = 0; t < kNumMessageTypes; ++t) {
    TrafficMatrix m(2);
    m.Add(0, 1, static_cast<MessageType>(t), 11);
    EXPECT_EQ(m.TotalNetworkBytes(), 11u) << t;
    auto cls = ClassOf(static_cast<MessageType>(t));
    EXPECT_EQ(m.NetworkBytes(cls), 11u) << t;
  }
}

TEST(OverlapEstimateTest, BoundsAndSpeedup) {
  OverlapEstimate est;
  est.cpu_seconds = 3.0;
  est.net_seconds = 9.0;
  EXPECT_DOUBLE_EQ(est.DepipelinedSeconds(), 12.0);
  EXPECT_DOUBLE_EQ(est.PipelinedSeconds(), 9.0);
  EXPECT_DOUBLE_EQ(est.Speedup(), 12.0 / 9.0);
  // One chunk = no overlap; many chunks approach the bound.
  EXPECT_DOUBLE_EQ(est.PipelinedSeconds(1), 12.0);
  EXPECT_DOUBLE_EQ(est.PipelinedSeconds(3), 10.0);
  EXPECT_NEAR(est.PipelinedSeconds(1000), 9.0, 0.01);
}

TEST(OverlapEstimateTest, CpuBoundCase) {
  OverlapEstimate est;
  est.cpu_seconds = 10.0;
  est.net_seconds = 2.0;
  EXPECT_DOUBLE_EQ(est.PipelinedSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(est.Speedup(), 1.2);
}

TEST(OverlapEstimateTest, ZeroIsSafe) {
  OverlapEstimate est;
  EXPECT_DOUBLE_EQ(est.Speedup(), 1.0);
  EXPECT_DOUBLE_EQ(est.PipelinedSeconds(5), 0.0);
}

}  // namespace
}  // namespace tj
