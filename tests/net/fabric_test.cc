#include "net/fabric.h"

#include "common/thread_pool.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

TEST(FabricTest, MessagesDeliverAfterBarrier) {
  Fabric fabric(2);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 0) {
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1, 2, 3});
      // Not yet visible to node 1 within the same phase.
    } else {
      EXPECT_TRUE(fabric.TakeInbox(1).empty());
    }
  });
  fabric.RunPhase("receive", [&](uint32_t node) {
    if (node == 1) {
      auto inbox = fabric.TakeInbox(1);
      ASSERT_EQ(inbox.size(), 1u);
      EXPECT_EQ(inbox[0].src, 0u);
      EXPECT_EQ(inbox[0].type, MessageType::kDataR);
      EXPECT_EQ(inbox[0].data, (ByteBuffer{1, 2, 3}));
    }
  });
}

TEST(FabricTest, TrafficAccounted) {
  Fabric fabric(3);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 0) {
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer(10));
      fabric.Send(0, 0, MessageType::kDataR, ByteBuffer(4));  // Local.
    }
  });
  EXPECT_EQ(fabric.traffic().NetworkBytes(MessageType::kDataR), 10u);
  EXPECT_EQ(fabric.traffic().LocalBytes(MessageType::kDataR), 4u);
}

TEST(FabricTest, SendBytesCountsWithoutDelivery) {
  Fabric fabric(2);
  fabric.SendBytes(0, 1, MessageType::kFilter, 1234);
  EXPECT_EQ(fabric.traffic().NetworkBytes(MessageType::kFilter), 1234u);
  fabric.RunPhase("noop", [](uint32_t) {});
  EXPECT_TRUE(fabric.TakeInbox(1).empty());
}

TEST(FabricTest, TypedInboxLeavesOtherTypes) {
  Fabric fabric(2);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 0) {
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1});
      fabric.Send(0, 1, MessageType::kDataS, ByteBuffer{2});
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{3});
    }
  });
  fabric.RunPhase("receive", [&](uint32_t node) {
    if (node != 1) return;
    auto r = fabric.TakeInbox(1, MessageType::kDataR);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].data, (ByteBuffer{1}));
    EXPECT_EQ(r[1].data, (ByteBuffer{3}));
    auto s = fabric.TakeInbox(1, MessageType::kDataS);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_TRUE(fabric.TakeInbox(1).empty());
  });
}

TEST(FabricTest, SelfSendDeliversLocally) {
  Fabric fabric(1);
  fabric.RunPhase("send", [&](uint32_t) {
    fabric.Send(0, 0, MessageType::kTrackR, ByteBuffer{9});
  });
  fabric.RunPhase("receive", [&](uint32_t) {
    auto inbox = fabric.TakeInbox(0);
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_EQ(inbox[0].data, (ByteBuffer{9}));
  });
  EXPECT_EQ(fabric.traffic().TotalNetworkBytes(), 0u);
  EXPECT_EQ(fabric.traffic().TotalLocalBytes(), 1u);
}

TEST(FabricTest, PhaseTimesRecorded) {
  Fabric fabric(2);
  fabric.RunPhase("a", [](uint32_t) {});
  fabric.RunPhase("b", [](uint32_t) {});
  const auto& phases = fabric.phase_seconds();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "a");
  EXPECT_EQ(phases[1].first, "b");
  EXPECT_GE(phases[0].second, 0.0);
}

TEST(FabricTest, NodesRunInOrder) {
  Fabric fabric(5);
  std::vector<uint32_t> order;
  fabric.RunPhase("order", [&](uint32_t node) { order.push_back(node); });
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(FabricDeathTest, SendOutsidePhaseAborts) {
  Fabric fabric(2);
  EXPECT_DEATH(fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1}),
               "Send outside RunPhase");
}

TEST(FabricDeathTest, NestedPhaseAborts) {
  Fabric fabric(2);
  EXPECT_DEATH(fabric.RunPhase("outer",
                               [&](uint32_t) {
                                 fabric.RunPhase("inner", [](uint32_t) {});
                               }),
               "nested RunPhase");
}

TEST(FabricDeathTest, OutOfRangeNodesAbort) {
  Fabric fabric(2);
  EXPECT_DEATH(fabric.SendBytes(0, 5, MessageType::kDataR, 1), "");
  EXPECT_DEATH(fabric.TakeInbox(9), "");
}

TEST(FabricTest, ParallelPhaseMatchesSequential) {
  auto run = [](ThreadPool* pool) {
    Fabric fabric(6);
    fabric.SetThreadPool(pool);
    fabric.RunPhase("send", [&](uint32_t node) {
      for (uint32_t dst = 0; dst < 6; ++dst) {
        fabric.Send(node, dst, MessageType::kDataR,
                    ByteBuffer{static_cast<uint8_t>(node * 16 + dst)});
      }
    });
    std::vector<std::vector<uint8_t>> seen(6);
    fabric.RunPhase("recv", [&](uint32_t node) {
      for (const auto& msg : fabric.TakeInbox(node)) {
        seen[node].push_back(msg.data[0]);
      }
    });
    return seen;
  };
  ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

// The inbox contract algorithms depend on (see fabric.h): delivered
// messages persist across later barriers until taken, and typed takes
// leave every other type in place, in delivery order.
TEST(FabricTest, InboxSurvivesLaterBarriers) {
  Fabric fabric(2);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 0) fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1});
  });
  // Two full barriers pass without node 1 touching its inbox.
  fabric.RunPhase("idle1", [](uint32_t) {});
  fabric.RunPhase("idle2", [](uint32_t) {});
  fabric.RunPhase("receive", [&](uint32_t node) {
    if (node != 1) return;
    auto inbox = fabric.TakeInbox(1);
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_EQ(inbox[0].data, (ByteBuffer{1}));
    EXPECT_TRUE(fabric.TakeInbox(1).empty());  // Taken means gone.
  });
}

// The hash-join pattern: R ships in phase 1, S in phase 2, both consumed in
// phase 3. A typed take of S must not disturb the older R messages.
TEST(FabricTest, TypedLeftoversSurviveInterveningPhasesAndTakes) {
  Fabric fabric(2);
  fabric.RunPhase("send R", [&](uint32_t node) {
    if (node == 0) {
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{1});
      fabric.Send(0, 1, MessageType::kDataR, ByteBuffer{2});
    }
  });
  fabric.RunPhase("send S", [&](uint32_t node) {
    if (node == 0) fabric.Send(0, 1, MessageType::kDataS, ByteBuffer{7});
  });
  fabric.RunPhase("consume", [&](uint32_t node) {
    if (node != 1) return;
    // Take the newer type first; the older type must be untouched and in
    // its original delivery order.
    auto s = fabric.TakeInbox(1, MessageType::kDataS);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].data, (ByteBuffer{7}));
    auto r = fabric.TakeInbox(1, MessageType::kDataR);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].data, (ByteBuffer{1}));
    EXPECT_EQ(r[1].data, (ByteBuffer{2}));
  });
  // Nothing left over after both takes.
  fabric.RunPhase("check", [&](uint32_t node) {
    if (node == 1) EXPECT_TRUE(fabric.TakeInbox(1).empty());
  });
}

// A typed take for a type that was never sent is an empty result, not an
// error, and leaves other messages pending.
TEST(FabricTest, TypedTakeOfAbsentTypeIsEmpty) {
  Fabric fabric(2);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 0) fabric.Send(0, 1, MessageType::kTrackR, ByteBuffer{5});
  });
  fabric.RunPhase("receive", [&](uint32_t node) {
    if (node != 1) return;
    EXPECT_TRUE(fabric.TakeInbox(1, MessageType::kAck).empty());
    EXPECT_EQ(fabric.TakeInbox(1, MessageType::kTrackR).size(), 1u);
  });
}

TEST(FabricTest, MessagesOrderedBySenderThenSendOrder) {
  Fabric fabric(3);
  fabric.RunPhase("send", [&](uint32_t node) {
    if (node == 2) fabric.Send(2, 0, MessageType::kDataR, ByteBuffer{20});
    if (node == 1) {
      fabric.Send(1, 0, MessageType::kDataR, ByteBuffer{10});
      fabric.Send(1, 0, MessageType::kDataR, ByteBuffer{11});
    }
  });
  fabric.RunPhase("receive", [&](uint32_t node) {
    if (node != 0) return;
    auto inbox = fabric.TakeInbox(0);
    ASSERT_EQ(inbox.size(), 3u);
    EXPECT_EQ(inbox[0].data, (ByteBuffer{10}));
    EXPECT_EQ(inbox[1].data, (ByteBuffer{11}));
    EXPECT_EQ(inbox[2].data, (ByteBuffer{20}));
  });
}

}  // namespace
}  // namespace tj
