// Wire framing: round-trips, CRC32C vectors, and rejection of every kind of
// mangled frame the fault injector can produce.
#include "net/message.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tj {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / common reference vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, Incremental) {
  const char* s = "123456789";
  uint32_t whole = Crc32c(s, 9);
  uint32_t part = Crc32c(s, 4);
  EXPECT_EQ(Crc32c(s + 4, 5, part), whole);
}

TEST(FrameTest, RoundTrip) {
  ByteBuffer payload = {1, 2, 3, 4, 5};
  ByteBuffer frame;
  EncodeFrame(MessageType::kDataS, 42, payload, &frame);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameHeader header;
  ByteBuffer decoded;
  ASSERT_TRUE(DecodeFrame(frame, &header, &decoded).ok());
  EXPECT_EQ(header.type, MessageType::kDataS);
  EXPECT_EQ(header.seq, 42u);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_EQ(decoded, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  ByteBuffer frame;
  EncodeFrame(MessageType::kAck, 0, ByteBuffer{}, &frame);
  FrameHeader header;
  ByteBuffer decoded;
  ASSERT_TRUE(DecodeFrame(frame, &header, &decoded).ok());
  EXPECT_EQ(header.payload_len, 0u);
  EXPECT_TRUE(decoded.empty());
}

TEST(FrameTest, EveryTruncationRejected) {
  ByteBuffer frame;
  EncodeFrame(MessageType::kDataR, 7, ByteBuffer{9, 9, 9}, &frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    ByteBuffer trunc(frame.begin(), frame.begin() + cut);
    FrameHeader header;
    ByteBuffer payload;
    Status status = DecodeFrame(trunc, &header, &payload);
    ASSERT_FALSE(status.ok()) << "cut=" << cut;
    EXPECT_EQ(status.code(), StatusCode::kCorruption);
  }
}

TEST(FrameTest, EveryBitFlipDetected) {
  ByteBuffer frame;
  EncodeFrame(MessageType::kTrackR, 3, ByteBuffer{0xab, 0xcd}, &frame);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      ByteBuffer flipped = frame;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameHeader header;
      ByteBuffer payload;
      Status status = DecodeFrame(flipped, &header, &payload);
      ASSERT_FALSE(status.ok()) << "byte=" << byte << " bit=" << bit;
      EXPECT_EQ(status.code(), StatusCode::kCorruption);
    }
  }
}

TEST(FrameTest, TrailingBytesRejected) {
  ByteBuffer frame;
  EncodeFrame(MessageType::kDataR, 1, ByteBuffer{5}, &frame);
  frame.push_back(0);
  FrameHeader header;
  ByteBuffer payload;
  EXPECT_EQ(DecodeFrame(frame, &header, &payload).code(),
            StatusCode::kCorruption);
}

TEST(FrameTest, BadMagicRejected) {
  ByteBuffer frame;
  EncodeFrame(MessageType::kDataR, 1, ByteBuffer{5}, &frame);
  frame[0] = 0x00;
  frame[1] = 0x00;
  FrameHeader header;
  ByteBuffer payload;
  EXPECT_EQ(DecodeFrame(frame, &header, &payload).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace tj
