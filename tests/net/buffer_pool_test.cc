#include "net/buffer_pool.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

ByteBuffer Filled(size_t n) {
  ByteBuffer buf;
  buf.resize(n, 0xab);
  return buf;
}

TEST(BufferPoolTest, FreshAcquireCountsMiss) {
  BufferPool pool;
  ByteBuffer buf = pool.Acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPoolTest, RecycleClearsAndKeepsCapacity) {
  BufferPool pool;
  ByteBuffer buf = Filled(1000);
  size_t cap = buf.capacity();
  pool.Recycle(std::move(buf));
  EXPECT_EQ(pool.available(), 1u);
  ByteBuffer again = pool.Acquire();
  EXPECT_TRUE(again.empty());          // Content gone...
  EXPECT_GE(again.capacity(), cap);    // ...capacity survived.
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(BufferPoolTest, AcquireHintReservesOnce) {
  BufferPool pool;
  ByteBuffer buf = pool.Acquire(4096);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 4096u);
  // A recycled buffer already at capacity is not re-reserved smaller.
  pool.Recycle(std::move(buf));
  ByteBuffer again = pool.Acquire(16);
  EXPECT_GE(again.capacity(), 4096u);
}

TEST(BufferPoolTest, DropsZeroCapacityBuffers) {
  BufferPool pool;
  pool.Recycle(ByteBuffer{});
  EXPECT_EQ(pool.available(), 0u);
}

TEST(BufferPoolTest, DropsOversizedBuffers) {
  BufferPool pool(/*max_buffers=*/4, /*max_buffer_bytes=*/100);
  pool.Recycle(Filled(1000));  // Over the byte cap: dropped.
  EXPECT_EQ(pool.available(), 0u);
  pool.Recycle(Filled(50));
  EXPECT_EQ(pool.available(), 1u);
}

TEST(BufferPoolTest, CapsRetainedBufferCount) {
  BufferPool pool(/*max_buffers=*/2, /*max_buffer_bytes=*/1 << 20);
  for (int i = 0; i < 5; ++i) pool.Recycle(Filled(64));
  EXPECT_EQ(pool.available(), 2u);
}

TEST(BufferPoolTest, SteadyStateStopsMissing) {
  BufferPool pool;
  for (int round = 0; round < 10; ++round) {
    ByteBuffer buf = pool.Acquire(256);
    buf.push_back(1);
    pool.Recycle(std::move(buf));
  }
  EXPECT_EQ(pool.misses(), 1u);  // Only the cold start allocates.
  EXPECT_EQ(pool.reuses(), 9u);
}

}  // namespace
}  // namespace tj
