// Egress-scheduler policy tests for the pipelined fabric: FIFO-equivalence
// of the DRR policy when there is nothing to reorder (a single destination,
// or an effectively infinite quantum with no ingress contention), DRR
// fairness across competing destinations (quantum exactness, no starvation,
// deterministic round order), the head-of-line kill the policy exists for,
// and crash-mode credit return through the per-destination queues.
#include "net/pipelined_fabric.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tj {
namespace {

ByteBuffer Bytes(size_t size) {
  ByteBuffer buf;
  buf.assign(size, 0xAB);
  return buf;
}

PipelinedFabric::Params SmallParams(uint32_t nodes) {
  PipelinedFabric::Params params;
  params.num_nodes = nodes;
  params.cost.cpu_bandwidth_bytes_per_sec = 100.0;  // 1 byte = 10 ms.
  params.cost.net_bandwidth_bytes_per_sec = 100.0;
  params.chunk_bytes = 64;
  // Wide-open credit windows: these tests isolate the egress scheduler, so
  // the link FIFOs must never be the binding constraint.
  params.inbox_budget_bytes = uint64_t{1} << 20;
  return params;
}

/// The (chunk payload bytes, wire_start) service order on node `src`'s
/// egress NIC, in transmission order. Local chunks never occupy the NIC.
std::vector<std::pair<uint64_t, double>> ServiceOrder(
    const PipelinedFabric& fabric, uint32_t src) {
  std::vector<std::pair<double, uint64_t>> starts;
  const auto& timings = fabric.chunk_timings();
  for (size_t i = 0; i < timings.size(); ++i) {
    if (timings[i].src != src || timings[i].local) continue;
    starts.emplace_back(timings[i].wire_start, i);
  }
  std::sort(starts.begin(), starts.end());
  std::vector<std::pair<uint64_t, double>> order;
  for (const auto& [start, index] : starts) {
    order.emplace_back(index, start);
  }
  return order;
}

/// Destinations of node `src`'s transfers in NIC service order.
std::vector<uint32_t> ServiceDsts(const PipelinedFabric& fabric,
                                  uint32_t src) {
  std::vector<uint32_t> dsts;
  for (const auto& [index, start] : ServiceOrder(fabric, src)) {
    dsts.push_back(fabric.chunk_timings()[index].dst);
  }
  return dsts;
}

struct RunShape {
  double makespan = 0;
  std::vector<double> wire_starts;  // Indexed by chunk.
  std::vector<double> arrivals;
};

/// One sender streams `per_dst` chunks to every other node, interleaving
/// destinations in send order; returns the run's timing shape.
RunShape FanOutRun(PipelinedFabric::Params params, uint32_t per_dst) {
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    fabric.ChargeCpuBytes(chunk.data.size());
    return Status::OK();
  });
  const uint32_t n = params.num_nodes;
  fabric.Post(0, "send", "s", [&, n, per_dst] {
    for (uint32_t round = 0; round < per_dst; ++round) {
      for (uint32_t dst = 1; dst < n; ++dst) {
        fabric.SendChunk(0, dst, MessageType::kDataR, Bytes(64),
                         /*eos=*/round + 1 == per_dst);
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(fabric.Run().ok());
  RunShape shape;
  shape.makespan = fabric.makespan_seconds();
  for (const auto& timing : fabric.chunk_timings()) {
    shape.wire_starts.push_back(timing.wire_start);
    shape.arrivals.push_back(timing.arrival);
  }
  return shape;
}

TEST(EgressSchedTest, SingleDestinationDrrMatchesFifoEventForEvent) {
  // With one destination there is exactly one egress queue, so DRR has
  // nothing to arbitrate: any quantum must reproduce FIFO timing exactly.
  PipelinedFabric::Params fifo = SmallParams(2);
  fifo.egress_policy = EgressSchedPolicy::kFifo;
  const RunShape baseline = FanOutRun(fifo, /*per_dst=*/4);
  for (uint64_t quantum : {uint64_t{1}, uint64_t{64}, uint64_t{1} << 40}) {
    PipelinedFabric::Params drr = SmallParams(2);
    drr.egress_policy = EgressSchedPolicy::kDrr;
    drr.drr_quantum_bytes = quantum;
    const RunShape shape = FanOutRun(drr, /*per_dst=*/4);
    EXPECT_DOUBLE_EQ(shape.makespan, baseline.makespan)
        << "quantum=" << quantum;
    ASSERT_EQ(shape.wire_starts.size(), baseline.wire_starts.size());
    for (size_t i = 0; i < shape.wire_starts.size(); ++i) {
      EXPECT_DOUBLE_EQ(shape.wire_starts[i], baseline.wire_starts[i])
          << "chunk " << i << " quantum=" << quantum;
      EXPECT_DOUBLE_EQ(shape.arrivals[i], baseline.arrivals[i])
          << "chunk " << i << " quantum=" << quantum;
    }
  }
}

TEST(EgressSchedTest, InfiniteQuantumMatchesFifoAcrossDestinations) {
  // One sender fanning out to three destinations: with a single source
  // there is no ingress contention, and an effectively infinite quantum
  // makes every backlogged queue eligible after one top-up — ties break
  // oldest-grant-first, i.e. global FIFO order.
  PipelinedFabric::Params fifo = SmallParams(4);
  fifo.egress_policy = EgressSchedPolicy::kFifo;
  const RunShape baseline = FanOutRun(fifo, /*per_dst=*/3);
  PipelinedFabric::Params drr = SmallParams(4);
  drr.egress_policy = EgressSchedPolicy::kDrr;
  drr.drr_quantum_bytes = uint64_t{1} << 40;
  const RunShape shape = FanOutRun(drr, /*per_dst=*/3);
  EXPECT_DOUBLE_EQ(shape.makespan, baseline.makespan);
  ASSERT_EQ(shape.wire_starts.size(), baseline.wire_starts.size());
  for (size_t i = 0; i < shape.wire_starts.size(); ++i) {
    EXPECT_DOUBLE_EQ(shape.wire_starts[i], baseline.wire_starts[i])
        << "chunk " << i;
    EXPECT_DOUBLE_EQ(shape.arrivals[i], baseline.arrivals[i]) << "chunk " << i;
  }
}

TEST(EgressSchedTest, OneChunkQuantumRoundRobinsBackloggedDestinations) {
  // Bursty send order (all of d1, then d2, then d3) with a one-chunk
  // quantum: FIFO drains the burst in send order; DRR's top-up rounds
  // rotate the NIC across the backlogged queues instead.
  auto run = [](EgressSchedPolicy policy) {
    PipelinedFabric::Params params = SmallParams(4);
    params.egress_policy = policy;
    params.drr_quantum_bytes = 64;
    PipelinedFabric fabric(params);
    fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
      return Status::OK();
    });
    fabric.Post(0, "send", "s", [&] {
      for (uint32_t dst = 1; dst <= 3; ++dst) {
        for (int i = 0; i < 3; ++i) {
          fabric.SendChunk(0, dst, MessageType::kDataR, Bytes(64),
                           /*eos=*/i == 2);
        }
      }
      return Status::OK();
    });
    EXPECT_TRUE(fabric.Run().ok());
    return ServiceDsts(fabric, 0);
  };
  EXPECT_EQ(run(EgressSchedPolicy::kFifo),
            (std::vector<uint32_t>{1, 1, 1, 2, 2, 2, 3, 3, 3}));
  // DRR: the first pick arrives while only d1 is backlogged; every later
  // round tops up all three queues with one chunk of eligibility, and the
  // oldest-grant tie-break walks them in destination order — so after the
  // head start no destination is ever served twice before the others.
  const std::vector<uint32_t> drr_order = run(EgressSchedPolicy::kDrr);
  ASSERT_EQ(drr_order.size(), 9u);
  for (size_t i = 1; i + 2 < drr_order.size(); i += 3) {
    std::vector<uint32_t> round(drr_order.begin() + i,
                                drr_order.begin() + i + 3);
    std::sort(round.begin(), round.end());
    EXPECT_EQ(round, (std::vector<uint32_t>{1, 2, 3})) << "round at " << i;
  }
}

TEST(EgressSchedTest, QuantumAccumulatesForOversizedChunksWithoutStarvation) {
  // d1's chunks are 3x the quantum: its queue must accumulate deficit over
  // three top-up rounds per chunk while d2/d3 keep transmitting — byte
  // shares equalize and the oversized flow is never starved. The whole
  // schedule is deterministic; pin it exactly (and pin determinism by
  // running twice).
  auto run = [] {
    PipelinedFabric::Params params = SmallParams(4);
    params.egress_policy = EgressSchedPolicy::kDrr;
    params.drr_quantum_bytes = 64;
    PipelinedFabric fabric(params);
    fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
      return Status::OK();
    });
    fabric.Post(0, "send", "s", [&] {
      for (int i = 0; i < 3; ++i) {
        fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(192), i == 2);
        fabric.SendChunk(0, 2, MessageType::kDataR, Bytes(64), i == 2);
        fabric.SendChunk(0, 3, MessageType::kDataR, Bytes(64), i == 2);
      }
      return Status::OK();
    });
    EXPECT_TRUE(fabric.Run().ok());
    return ServiceDsts(fabric, 0);
  };
  const std::vector<uint32_t> order = run();
  EXPECT_EQ(order, run());  // Deterministic round order.
  // Exact schedule: d1 jumps the line at t=0 (only backlogged queue, so
  // top-up rounds accumulate its 3-quantum deficit immediately); each
  // later 192-byte service needs three top-up rounds, during which d2 and
  // d3 each transmit up to one chunk per round — so d1 transmits 192 bytes
  // for every 64+64 of d2+d3 and byte shares equalize.
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 3, 2, 3, 1, 2, 3, 1}));
  // Starvation bound: between consecutive oversized services at most
  // ceil(192/64) = 3 top-up rounds x 2 other destinations elapse.
  std::vector<size_t> d1_positions;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 1) d1_positions.push_back(i);
  }
  ASSERT_EQ(d1_positions.size(), 3u);
  for (size_t i = 1; i < d1_positions.size(); ++i) {
    EXPECT_LE(d1_positions[i] - d1_positions[i - 1], 6u)
        << "oversized flow starved between services";
  }
}

TEST(EgressSchedTest, BusyIngressDoesNotHoldTheEgressHostage) {
  // The head-of-line scenario the policy exists for: node 2 occupies node
  // 1's ingress with a long transfer; node 0 then has a chunk for node 1
  // (blocked) ahead of a chunk for node 3 (idle link). FIFO reserves the
  // egress for the blocked chunk; DRR skips it and serves node 3 now.
  auto run = [](EgressSchedPolicy policy) {
    PipelinedFabric::Params params = SmallParams(4);
    params.egress_policy = policy;
    PipelinedFabric fabric(params);
    fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
      return Status::OK();
    });
    fabric.Post(2, "occupy", "o", [&] {
      fabric.SendChunk(2, 1, MessageType::kDataR, Bytes(640), /*eos=*/true);
      return Status::OK();
    });
    fabric.Post(0, "send", "s", [&] {
      fabric.ChargeCpuBytes(10);  // Finish at 0.1, after the occupier.
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
      fabric.SendChunk(0, 3, MessageType::kDataR, Bytes(64), /*eos=*/true);
      return Status::OK();
    });
    EXPECT_TRUE(fabric.Run().ok());
    return fabric;
  };

  const PipelinedFabric fifo = run(EgressSchedPolicy::kFifo);
  const PipelinedFabric drr = run(EgressSchedPolicy::kDrr);
  // Identify node 0's two chunks by destination.
  auto chunk_to = [](const PipelinedFabric& fabric, uint32_t src,
                     uint32_t dst) {
    for (const auto& timing : fabric.chunk_timings()) {
      if (timing.src == src && timing.dst == dst) return timing;
    }
    ADD_FAILURE() << "chunk " << src << "->" << dst << " missing";
    return PipelinedFabric::ChunkTiming{};
  };
  // FIFO: the occupier holds ingress 1 until 6.4; chunk 0->1 camps on the
  // egress until then, so chunk 0->3 cannot start before 7.04.
  EXPECT_NEAR(chunk_to(fifo, 0, 3).wire_start, 7.04, 1e-9);
  EXPECT_TRUE(chunk_to(fifo, 0, 3).egress_hol);
  // DRR: chunk 0->3 goes out the moment the sender finishes; chunk 0->1
  // waits only for its own destination's ingress.
  EXPECT_NEAR(chunk_to(drr, 0, 3).wire_start, 0.1, 1e-9);
  EXPECT_NEAR(chunk_to(drr, 0, 1).wire_start, 6.4, 1e-9);
  EXPECT_LT(drr.makespan_seconds(), fifo.makespan_seconds());
  // Both policies moved identical bytes.
  EXPECT_TRUE(drr.traffic() == fifo.traffic());
}

TEST(EgressSchedTest, DrrRecordsPiecewiseWaitMarks) {
  // Same scenario: the 0->1 chunk's NIC wait decomposes into an egress-HOL
  // span (the NIC busy with the 0->3 transfer) followed by an ingress span
  // (NIC free, destination ingress still held by the occupier).
  PipelinedFabric::Params params = SmallParams(4);
  params.egress_policy = EgressSchedPolicy::kDrr;
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    return Status::OK();
  });
  fabric.Post(2, "occupy", "o", [&] {
    fabric.SendChunk(2, 1, MessageType::kDataR, Bytes(640), /*eos=*/true);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.ChargeCpuBytes(10);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    fabric.SendChunk(0, 3, MessageType::kDataR, Bytes(64), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  using EgressWait = PipelinedFabric::ChunkTiming::EgressWait;
  for (const auto& timing : fabric.chunk_timings()) {
    if (timing.src != 0 || timing.dst != 1) continue;
    ASSERT_GE(timing.egress_marks.size(), 2u);
    // First mark anchors exactly at the grant; marks strictly increase.
    EXPECT_DOUBLE_EQ(timing.egress_marks.front().first, timing.grant);
    for (size_t i = 1; i < timing.egress_marks.size(); ++i) {
      EXPECT_LT(timing.egress_marks[i - 1].first,
                timing.egress_marks[i].first);
    }
    EXPECT_EQ(timing.egress_marks.front().second, EgressWait::kHol);
    EXPECT_EQ(timing.egress_marks.back().second, EgressWait::kIngress);
    EXPECT_DOUBLE_EQ(timing.egress_clear, timing.wire_start);
  }
}

TEST(EgressSchedTest, CrashedDestinationReturnsCreditThroughDrrQueues) {
  // A crashed destination drops arrivals but still returns link credit;
  // under DRR the dropped transfers flow through the per-destination
  // queues, and traffic to the surviving node is unaffected.
  FaultPolicy policy;
  policy.crash_node = 1;
  PipelinedFabric::Params params = SmallParams(3);
  params.egress_policy = EgressSchedPolicy::kDrr;
  params.fault_policy = &policy;
  // One-chunk windows so a leaked credit would deadlock the second send.
  params.inbox_budget_bytes = 64 * 3;
  PipelinedFabric fabric(params);
  uint64_t survivor_bytes = 0;
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    survivor_bytes += chunk.data.size();
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    for (int i = 0; i < 3; ++i) {
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), i == 2);
      fabric.SendChunk(0, 2, MessageType::kDataR, Bytes(64), i == 2);
    }
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_TRUE(fabric.node_dead(1));
  EXPECT_EQ(survivor_bytes, 192u);
  // All six chunks launched: nothing deadlocked on the dead node's window.
  // Fault mode frames each 64-byte payload with a 16-byte header.
  EXPECT_EQ(fabric.traffic().TotalNetworkBytes(), 6u * 80u);
}

}  // namespace
}  // namespace tj
