#include "filter/bloom.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tj {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(1000, 10);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k * 7);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(filter.MayContain(k * 7));
}

TEST(BloomTest, FalsePositiveRateNearTheory) {
  constexpr uint64_t kKeys = 20000;
  BloomFilter filter(kKeys, 10);
  for (uint64_t k = 0; k < kKeys; ++k) filter.Add(k);
  uint64_t fp = 0;
  constexpr uint64_t kProbes = 100000;
  for (uint64_t k = 0; k < kProbes; ++k) {
    fp += filter.MayContain(kKeys + 1000000 + k);
  }
  double rate = static_cast<double>(fp) / kProbes;
  double theory = filter.TheoreticalFpRate(kKeys);
  EXPECT_LT(rate, 0.05);  // ~1% expected at 10 bits/key.
  EXPECT_NEAR(rate, theory, 0.01);
}

TEST(BloomTest, UnionContainsBothSets) {
  BloomFilter a(100, 8), b(100, 8);
  for (uint64_t k = 0; k < 100; ++k) a.Add(k);
  for (uint64_t k = 100; k < 200; ++k) b.Add(k);
  a.Union(b);
  for (uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(a.MayContain(k));
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter filter(500, 12);
  for (uint64_t k = 0; k < 500; ++k) filter.Add(k * 3 + 1);
  ByteBuffer buf;
  filter.Serialize(&buf);
  ByteReader reader(buf);
  BloomFilter restored = BloomFilter::Deserialize(&reader);
  EXPECT_TRUE(reader.Done());
  EXPECT_EQ(restored.num_bits(), filter.num_bits());
  EXPECT_EQ(restored.num_hashes(), filter.num_hashes());
  for (uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(restored.MayContain(k * 3 + 1));
  // Behaviour identical on negatives too.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    uint64_t probe = rng.Next();
    EXPECT_EQ(filter.MayContain(probe), restored.MayContain(probe));
  }
}

TEST(BloomTest, SizeScalesWithBitsPerKey) {
  BloomFilter small(1000, 4), large(1000, 16);
  EXPECT_LT(small.SizeBytes(), large.SizeBytes());
  EXPECT_GE(small.SizeBytes(), 1000u * 4 / 8);
}

TEST(BloomTest, EmptyFilterContainsNothingMostly) {
  BloomFilter filter(100, 10);
  uint64_t hits = 0;
  for (uint64_t k = 0; k < 1000; ++k) hits += filter.MayContain(k);
  EXPECT_EQ(hits, 0u);
}

TEST(BloomTest, ExplicitHashCount) {
  BloomFilter filter(10, 8, 3);
  EXPECT_EQ(filter.num_hashes(), 3u);
}

TEST(BloomTest, TinyExpectedKeysStillWorks) {
  BloomFilter filter(0, 10);
  filter.Add(7);
  EXPECT_TRUE(filter.MayContain(7));
}

}  // namespace
}  // namespace tj
