#include "storage/table.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tj {
namespace {

TEST(PartitionedTableTest, Construction) {
  PartitionedTable table("R", 4, 8);
  EXPECT_EQ(table.name(), "R");
  EXPECT_EQ(table.num_nodes(), 4u);
  EXPECT_EQ(table.payload_width(), 8u);
  EXPECT_EQ(table.TotalRows(), 0u);
}

TEST(PartitionedTableTest, TotalRowsSumsNodes) {
  PartitionedTable table("R", 3, 0);
  table.node(0).Append(1, nullptr);
  table.node(0).Append(2, nullptr);
  table.node(2).Append(3, nullptr);
  EXPECT_EQ(table.TotalRows(), 3u);
}

TEST(SynthesizePayloadTest, Deterministic) {
  uint8_t a[16], b[16];
  SynthesizePayload(1, 42, 0, 16, a);
  SynthesizePayload(1, 42, 0, 16, b);
  EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TEST(SynthesizePayloadTest, VariesWithInputs) {
  uint8_t base[16], other[16];
  SynthesizePayload(1, 42, 0, 16, base);
  SynthesizePayload(2, 42, 0, 16, other);
  EXPECT_NE(0, std::memcmp(base, other, 16));
  SynthesizePayload(1, 43, 0, 16, other);
  EXPECT_NE(0, std::memcmp(base, other, 16));
  SynthesizePayload(1, 42, 1, 16, other);
  EXPECT_NE(0, std::memcmp(base, other, 16));
}

TEST(SynthesizePayloadTest, OddWidths) {
  for (uint32_t width : {1u, 3u, 7u, 9u, 17u}) {
    std::vector<uint8_t> buf(width + 1, 0xee);
    SynthesizePayload(5, 5, 5, width, buf.data());
    EXPECT_EQ(buf[width], 0xee);  // No overflow past the width.
  }
}

TEST(JoinChecksumTest, OrderIndependent) {
  uint8_t p1[4] = {1, 2, 3, 4};
  uint8_t p2[4] = {5, 6, 7, 8};
  JoinChecksum a, b;
  a.Accumulate(1, p1, 4, p2, 4);
  a.Accumulate(2, p2, 4, p1, 4);
  b.Accumulate(2, p2, 4, p1, 4);
  b.Accumulate(1, p1, 4, p2, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.count(), 2u);
}

TEST(JoinChecksumTest, SensitiveToContent) {
  uint8_t p1[4] = {1, 2, 3, 4};
  uint8_t p2[4] = {1, 2, 3, 5};
  JoinChecksum a, b, c;
  a.Accumulate(1, p1, 4, p1, 4);
  b.Accumulate(1, p1, 4, p2, 4);  // Different S payload.
  c.Accumulate(2, p1, 4, p1, 4);  // Different key.
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(JoinChecksumTest, PayloadSidesAreDistinguished) {
  uint8_t p1[4] = {1, 2, 3, 4};
  uint8_t p2[4] = {5, 6, 7, 8};
  JoinChecksum a, b;
  a.Accumulate(1, p1, 4, p2, 4);
  b.Accumulate(1, p2, 4, p1, 4);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(JoinChecksumTest, MergeEqualsSequential) {
  uint8_t p[2] = {9, 9};
  JoinChecksum whole, part1, part2;
  whole.Accumulate(1, p, 2, p, 2);
  whole.Accumulate(2, p, 2, p, 2);
  part1.Accumulate(1, p, 2, p, 2);
  part2.Accumulate(2, p, 2, p, 2);
  part1.Merge(part2);
  EXPECT_EQ(whole, part1);
}

TEST(JoinChecksumTest, EmptyChecksumsEqual) {
  JoinChecksum a, b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count(), 0u);
}

TEST(RekeyTest, ExtractsLittleEndianField) {
  PartitionedTable table("T", 2, 6);
  uint8_t payload[6] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  table.node(0).Append(100, payload);
  table.node(1).Append(200, payload);
  PartitionedTable rekeyed = RekeyByPayloadField(table, /*offset=*/1,
                                                 /*bytes=*/2, "rekeyed");
  EXPECT_EQ(rekeyed.name(), "rekeyed");
  EXPECT_EQ(rekeyed.TotalRows(), 2u);
  // New key = payload[1] | payload[2] << 8 = 0x0302.
  EXPECT_EQ(rekeyed.node(0).Key(0), 0x0302u);
  EXPECT_EQ(rekeyed.node(1).Key(0), 0x0302u);
  // Payload preserved verbatim, rows stay on their nodes.
  EXPECT_EQ(0, memcmp(rekeyed.node(0).Payload(0), payload, 6));
  EXPECT_EQ(rekeyed.node(1).size(), 1u);
}

TEST(RekeyTest, FullEightByteField) {
  PartitionedTable table("T", 1, 8);
  uint8_t payload[8];
  uint64_t value = 0x1122334455667788ULL;
  for (int i = 0; i < 8; ++i) payload[i] = static_cast<uint8_t>(value >> (8 * i));
  table.node(0).Append(1, payload);
  PartitionedTable rekeyed = RekeyByPayloadField(table, 0, 8, "r");
  EXPECT_EQ(rekeyed.node(0).Key(0), value);
}

TEST(RekeyTest, RejectsOutOfBoundsField) {
  PartitionedTable table("T", 1, 4);
  EXPECT_DEATH(RekeyByPayloadField(table, 2, 4, "bad"), "");
  EXPECT_DEATH(RekeyByPayloadField(table, 0, 9, "bad"), "");
}

}  // namespace
}  // namespace tj
