#include "storage/tuple_block.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tj {
namespace {

TupleBlock MakeBlock(std::vector<uint64_t> keys, uint32_t width) {
  TupleBlock block(width);
  std::vector<uint8_t> payload(width);
  for (uint64_t k : keys) {
    for (uint32_t i = 0; i < width; ++i) {
      payload[i] = static_cast<uint8_t>(k + i);
    }
    block.Append(k, payload.data());
  }
  return block;
}

TEST(TupleBlockTest, AppendAndAccess) {
  TupleBlock block = MakeBlock({10, 20, 30}, 4);
  EXPECT_EQ(block.size(), 3u);
  EXPECT_EQ(block.Key(1), 20u);
  EXPECT_EQ(block.Payload(1)[0], 20);
  EXPECT_EQ(block.Payload(1)[3], 23);
  EXPECT_FALSE(block.empty());
}

TEST(TupleBlockTest, ZeroWidthPayload) {
  TupleBlock block(0);
  block.Append(7, nullptr);
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(block.Payload(0), nullptr);
  EXPECT_EQ(block.MemoryBytes(), 8u);
}

TEST(TupleBlockTest, SerializeDeserializeRoundTrip) {
  TupleBlock block = MakeBlock({1, 2, 300}, 6);
  ByteBuffer buf;
  block.SerializeRows(0, block.size(), /*key_bytes=*/4, &buf);
  EXPECT_EQ(buf.size(), 3u * (4 + 6));

  TupleBlock out(6);
  ByteReader reader(buf);
  out.DeserializeRows(&reader, 4);
  ASSERT_EQ(out.size(), 3u);
  for (uint64_t row = 0; row < 3; ++row) {
    EXPECT_EQ(out.Key(row), block.Key(row));
    EXPECT_EQ(0, std::memcmp(out.Payload(row), block.Payload(row), 6));
  }
}

TEST(TupleBlockTest, SerializeIndexedSubset) {
  TupleBlock block = MakeBlock({5, 6, 7, 8}, 2);
  ByteBuffer buf;
  block.SerializeRowsIndexed({3, 1}, 8, &buf);
  TupleBlock out(2);
  ByteReader reader(buf);
  out.DeserializeRows(&reader, 8);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.Key(0), 8u);
  EXPECT_EQ(out.Key(1), 6u);
}

TEST(TupleBlockTest, AppendFromCopiesPayload) {
  TupleBlock src = MakeBlock({42}, 3);
  TupleBlock dst(3);
  dst.AppendFrom(src, 0);
  EXPECT_EQ(dst.Key(0), 42u);
  EXPECT_EQ(0, std::memcmp(dst.Payload(0), src.Payload(0), 3));
}

TEST(TupleBlockTest, PermuteMovesPayloadsWithKeys) {
  TupleBlock block = MakeBlock({10, 20, 30}, 2);
  block.Permute({2, 0, 1});  // output[i] = input[perm[i]]
  EXPECT_EQ(block.Key(0), 30u);
  EXPECT_EQ(block.Key(1), 10u);
  EXPECT_EQ(block.Key(2), 20u);
  EXPECT_EQ(block.Payload(0)[0], 30);
  EXPECT_EQ(block.Payload(1)[0], 10);
}

TEST(TupleBlockTest, FilterKeepsMatchingRows) {
  TupleBlock block = MakeBlock({1, 2, 3, 4, 5}, 2);
  uint64_t removed =
      block.Filter([&](uint64_t row) { return block.Key(row) % 2 == 1; });
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block.Key(0), 1u);
  EXPECT_EQ(block.Key(1), 3u);
  EXPECT_EQ(block.Key(2), 5u);
  EXPECT_EQ(block.Payload(2)[1], 6);  // Payload moved with the key.
}

TEST(TupleBlockTest, EqualRangeOnSortedKeys) {
  TupleBlock block = MakeBlock({1, 3, 3, 3, 7}, 0);
  auto [lo, hi] = block.EqualRange(3);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 4u);
  auto [lo2, hi2] = block.EqualRange(5);
  EXPECT_EQ(lo2, hi2);
  auto [lo3, hi3] = block.EqualRange(0);
  EXPECT_EQ(lo3, 0u);
  EXPECT_EQ(hi3, 0u);
}

TEST(TupleBlockTest, ClearKeepsWidth) {
  TupleBlock block = MakeBlock({1, 2}, 4);
  block.Clear();
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.payload_width(), 4u);
}

TEST(TupleBlockTest, RowBytes) {
  TupleBlock block(12);
  EXPECT_EQ(block.RowBytes(4), 16u);
}

}  // namespace
}  // namespace tj
