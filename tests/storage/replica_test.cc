#include "storage/replica.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/table.h"

namespace tj {
namespace {

TEST(ReplicaMapTest, ChainedDeclusteringArithmetic) {
  ReplicaMap map(5, 3);
  EXPECT_EQ(map.num_nodes(), 5u);
  EXPECT_EQ(map.replication(), 3u);
  // Copy c of partition p lives on (p + c) mod N.
  EXPECT_EQ(map.HolderOf(0, 0), 0u);
  EXPECT_EQ(map.HolderOf(0, 1), 1u);
  EXPECT_EQ(map.HolderOf(0, 2), 2u);
  EXPECT_EQ(map.HolderOf(4, 1), 0u);  // Chains wrap around.
  EXPECT_EQ(map.HolderOf(3, 2), 0u);
}

TEST(ReplicaMapTest, ReplicationClampedToClusterSize) {
  EXPECT_EQ(ReplicaMap(4, 0).replication(), 1u);
  EXPECT_EQ(ReplicaMap(4, 9).replication(), 4u);
}

TEST(ReplicaMapTest, SurvivingHolderPrefersLowestCopy) {
  ReplicaMap map(4, 2);
  std::vector<bool> alive(4, true);
  EXPECT_EQ(map.SurvivingHolder(1, alive), 1u);  // Primary alive.
  alive[1] = false;
  EXPECT_EQ(map.SurvivingHolder(1, alive), 2u);  // First replica steps in.
  alive[2] = false;
  // Both copies of partition 1 are gone with k=2.
  EXPECT_EQ(map.SurvivingHolder(1, alive), ReplicaMap::kNoNode);
}

TEST(ReplicaMapTest, CanRecoverTracksCopyCount) {
  ReplicaMap k1(4, 1);
  ReplicaMap k2(4, 2);
  ReplicaMap k3(4, 3);
  std::vector<bool> one_dead = {true, false, true, true};
  std::vector<bool> adjacent_dead = {true, false, false, true};
  EXPECT_FALSE(k1.CanRecover(one_dead));
  EXPECT_TRUE(k2.CanRecover(one_dead));
  // Adjacent deaths kill both copies of a partition under k=2 but not k=3.
  EXPECT_FALSE(k2.CanRecover(adjacent_dead));
  EXPECT_TRUE(k3.CanRecover(adjacent_dead));
}

TEST(SurvivorPlanTest, CompactsAndInverts) {
  Result<SurvivorPlan> plan = PlanSurvivors(5, {1, 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_live(), 3u);
  EXPECT_EQ(plan.value().live_to_original, (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(plan.value().original_to_live,
            (std::vector<uint32_t>{0, ReplicaMap::kNoNode, 1,
                                   ReplicaMap::kNoNode, 2}));
}

TEST(SurvivorPlanTest, IgnoresDuplicatesAndOutOfRange) {
  Result<SurvivorPlan> plan = PlanSurvivors(3, {2, 2, 99});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().live_to_original, (std::vector<uint32_t>{0, 1}));
}

TEST(SurvivorPlanTest, NoSurvivorsIsUnavailable) {
  Result<SurvivorPlan> plan = PlanSurvivors(2, {0, 1});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnavailable);
}

PartitionedTable MakeTable(uint32_t nodes, uint32_t rows_per_node) {
  PartitionedTable table("R", nodes, 8);
  uint8_t payload[8];
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t r = 0; r < rows_per_node; ++r) {
      const uint64_t key = n * 100 + r;
      SynthesizePayload(7, key, 0, 8, payload);
      table.node(n).Append(key, payload);
    }
  }
  return table;
}

TEST(ReplicatedTableTest, ReplicaBytesCountExtraCopies) {
  PartitionedTable table = MakeTable(4, 3);
  EXPECT_EQ(ReplicatedTable(&table, 1).ReplicaBytes(), 0u);
  // k=3: two extra copies of every row's key (8B) + payload (8B).
  EXPECT_EQ(ReplicatedTable(&table, 3).ReplicaBytes(),
            2u * table.TotalRows() * 16u);
}

TEST(ReplicatedTableTest, FailoverViewRehomesDeadPartitions) {
  PartitionedTable table = MakeTable(4, 2);
  ReplicatedTable replicated(&table, 2);
  Result<SurvivorPlan> plan = PlanSurvivors(4, {1});
  ASSERT_TRUE(plan.ok());

  std::vector<uint64_t> rehomed;
  Result<PartitionedTable> view =
      replicated.FailoverView(plan.value(), &rehomed);
  ASSERT_TRUE(view.ok());

  // Survivors compact to dense ids; no row is lost.
  EXPECT_EQ(view.value().num_nodes(), 3u);
  EXPECT_EQ(view.value().TotalRows(), table.TotalRows());
  // Partition 1's copy 1 lives on node 2, which compacts to live id 1.
  EXPECT_EQ(view.value().node(0).size(), 2u);
  EXPECT_EQ(view.value().node(1).size(), 4u);
  EXPECT_EQ(view.value().node(2).size(), 2u);
  // Exactly the dead partition's keys were re-homed.
  std::sort(rehomed.begin(), rehomed.end());
  EXPECT_EQ(rehomed, (std::vector<uint64_t>{100, 101}));
}

TEST(ReplicatedTableTest, RehomedRowsAreBitIdenticalToPrimary) {
  PartitionedTable table = MakeTable(3, 2);
  ReplicatedTable replicated(&table, 2);
  Result<SurvivorPlan> plan = PlanSurvivors(3, {0});
  ASSERT_TRUE(plan.ok());
  Result<PartitionedTable> view = replicated.FailoverView(plan.value(), nullptr);
  ASSERT_TRUE(view.ok());

  // Node 0's rows landed on its chained successor (original node 1 ->
  // live id 0); partitions append in original order, payloads intact.
  const TupleBlock& block = view.value().node(0);
  ASSERT_EQ(block.size(), 4u);
  EXPECT_EQ(block.Key(0), 0u);
  EXPECT_EQ(block.Key(1), 1u);
  EXPECT_EQ(block.Key(2), 100u);
  uint8_t expected[8];
  SynthesizePayload(7, 1, 0, 8, expected);
  EXPECT_EQ(0, std::memcmp(block.Payload(1), expected, 8));
}

TEST(ReplicatedTableTest, UnreplicatedFailoverIsUnavailable) {
  PartitionedTable table = MakeTable(3, 1);
  ReplicatedTable replicated(&table, 1);
  Result<SurvivorPlan> plan = PlanSurvivors(3, {2});
  ASSERT_TRUE(plan.ok());
  Result<PartitionedTable> view = replicated.FailoverView(plan.value(), nullptr);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace tj
