// Validates the schema width model against the paper's Table 1 (workload X)
// and Figure 9 bits-per-tuple numbers.
#include "storage/schema.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

ColumnSpec Numeric(const char* name, uint64_t distinct, uint64_t max_raw) {
  ColumnSpec c;
  c.name = name;
  c.distinct_values = distinct;
  c.min_raw_value = 1;
  c.max_raw_value = max_raw;
  return c;
}

// Paper Table 1: the R side of workload X's slowest join.
TableSchema WorkloadXR() {
  TableSchema t;
  t.name = "R";
  t.key_columns = {Numeric("J.ID", 769785856, 99999999999ULL)};
  t.payload_columns = {Numeric("T.ID", 53, 99),
                       Numeric("J.T.AMT", 9824256, 99999999ULL),
                       Numeric("T.C.ID", 297952, 999999ULL)};
  return t;
}

TEST(SchemaTest, DictBitsMatchTable1) {
  TableSchema r = WorkloadXR();
  EXPECT_EQ(r.key_columns[0].DictBits(), 30u);
  EXPECT_EQ(r.payload_columns[0].DictBits(), 6u);
  EXPECT_EQ(r.payload_columns[1].DictBits(), 24u);
  EXPECT_EQ(r.payload_columns[2].DictBits(), 19u);
}

TEST(SchemaTest, DictionaryTupleBitsMatchFigure9) {
  // Figure 9 reports 79 bits per R tuple for Q1 under optimal dictionary
  // compression: 30 + 6 + 24 + 19.
  TableSchema r = WorkloadXR();
  EXPECT_EQ(r.TupleBitsX100(EncodingScheme::kDictionary), 7900u);
  EXPECT_EQ(r.KeyBitsX100(EncodingScheme::kDictionary), 3000u);
  EXPECT_EQ(r.PayloadBitsX100(EncodingScheme::kDictionary), 4900u);
}

TEST(SchemaTest, FixedByteWidths) {
  TableSchema r = WorkloadXR();
  // 30 -> 4B, 6 -> 1B, 24 -> 4B, 19 -> 4B = 13 bytes = 104 bits.
  EXPECT_EQ(r.TupleBitsX100(EncodingScheme::kFixedByte), 10400u);
  EXPECT_EQ(r.KeyBytes(EncodingScheme::kFixedByte), 4u);
  EXPECT_EQ(r.PayloadBytes(EncodingScheme::kFixedByte), 9u);
}

TEST(SchemaTest, CharColumnsAreSchemeInvariant) {
  ColumnSpec c;
  c.name = "NAME";
  c.char_bytes = 23;  // Workload Y's 23-byte character column.
  for (EncodingScheme scheme :
       {EncodingScheme::kFixedByte, EncodingScheme::kVariableByte,
        EncodingScheme::kDictionary}) {
    EXPECT_EQ(c.BitsX100(scheme), 23u * 800) << static_cast<int>(scheme);
  }
}

TEST(SchemaTest, VariableByteTracksMagnitude) {
  // Width = base-100 digit pairs + the 2-byte NUMBER header.
  ColumnSpec small = Numeric("small", 1000, 99);       // 1+2 bytes each.
  ColumnSpec large = Numeric("large", 1000, 10000000); // up to 4+2 bytes.
  EXPECT_EQ(small.BitsX100(EncodingScheme::kVariableByte), 2400u);
  EXPECT_GT(large.BitsX100(EncodingScheme::kVariableByte), 4000u);
}

TEST(SchemaTest, FormatBits) {
  EXPECT_EQ(FormatBitsX100(7900), "79 bits");
  EXPECT_EQ(FormatBitsX100(7950), "79.50 bits");
}

}  // namespace
}  // namespace tj
