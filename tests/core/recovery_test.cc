#include "core/recovery.h"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/hash_join.h"
#include "core/schedule.h"
#include "core/track_join.h"
#include "obs/explain.h"
#include "workload/generator.h"

namespace tj {
namespace {

Workload MakeWorkload(uint32_t nodes) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 500;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_unmatched = 100;
  spec.s_unmatched = 100;
  spec.seed = 77;
  return GenerateWorkload(spec);
}

JoinRunner TrackJoin3Runner() {
  return [](const PartitionedTable& r, const PartitionedTable& s,
            const JoinConfig& cfg) {
    return TryRunTrackJoin(r, s, cfg, TrackJoinVersion::k3Phase);
  };
}

TEST(RecoveryTest, PristineRunIsByteIdentical) {
  Workload w = MakeWorkload(6);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig config;
  config.key_bytes = 4;

  Result<JoinResult> plain = TryRunTrackJoin(w.r, w.s, config,
                                             TrackJoinVersion::k3Phase);
  ASSERT_TRUE(plain.ok());

  RecoveryReport report;
  Result<JoinResult> managed = RunWithRecovery(rw.r, rw.s, config, {},
                                               TrackJoin3Runner(), &report);
  ASSERT_TRUE(managed.ok());
  // A failure-free managed run is indistinguishable from an unmanaged one.
  EXPECT_EQ(managed->checksum.digest(), plain->checksum.digest());
  EXPECT_TRUE(managed->traffic == plain->traffic);
  EXPECT_EQ(managed->traffic.TotalRecoveryBytes(), 0u);
  EXPECT_EQ(managed->profile.recovery_bytes, 0u);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.failovers, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.recovery_seconds, 0.0);
}

TEST(RecoveryTest, CrashFailoverMatchesPristineChecksum) {
  Workload w = MakeWorkload(6);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig pristine;
  pristine.key_bytes = 4;
  Result<JoinResult> plain = TryRunTrackJoin(w.r, w.s, pristine,
                                             TrackJoinVersion::k3Phase);
  ASSERT_TRUE(plain.ok());

  FaultPolicy policy;
  policy.crash_node = 2;
  policy.crash_phase = 1;
  JoinConfig config = pristine;
  config.fault_policy = &policy;
  config.fault_seed = 7;

  RecoveryReport report;
  Result<JoinResult> run = RunWithRecovery(rw.r, rw.s, config, {},
                                           TrackJoin3Runner(), &report);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Replicas are views of the same synthesized rows, so the degraded run
  // joins exactly the same multiset of tuples.
  EXPECT_EQ(run->output_rows, plain->output_rows);
  EXPECT_EQ(run->checksum.digest(), plain->checksum.digest());
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.failovers, 1u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.dead_nodes, (std::vector<uint32_t>{2}));
  // Accounting stays in the original 6-node coordinate system; the failed
  // attempt's bytes land on the recovery ledger and nowhere else.
  EXPECT_EQ(run->traffic.num_nodes(), 6u);
  EXPECT_EQ(run->traffic.TotalRecoveryBytes(), report.recovery_bytes);
  EXPECT_EQ(run->profile.recovery_bytes, report.recovery_bytes);
  // The dead node serves no traffic in the successful attempt: only the
  // recovery ledger may name it as a source.
  EXPECT_EQ(run->traffic.EgressBytes(2), 0u);
  EXPECT_EQ(run->traffic.IngressBytes(2), 0u);
  // Checkpoints cover both attempts in execution order.
  ASSERT_FALSE(report.checkpoints.empty());
  EXPECT_EQ(report.checkpoints.front().attempt, 0u);
  EXPECT_EQ(report.checkpoints.back().attempt, 1u);
}

TEST(RecoveryTest, DeadlinePromotesStragglerAndFailsOver) {
  Workload w = MakeWorkload(5);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig pristine;
  pristine.key_bytes = 4;
  Result<JoinResult> plain = TryRunHashJoin(w.r, w.s, pristine);
  ASSERT_TRUE(plain.ok());

  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 5.0;
  JoinConfig config = pristine;
  config.fault_policy = &policy;
  config.fault_seed = 3;

  RecoveryOptions options;
  options.phase_deadline_seconds = 1.0;
  RecoveryReport report;
  Result<JoinResult> run = RunWithRecovery(
      rw.r, rw.s, config, options,
      [](const PartitionedTable& r, const PartitionedTable& s,
         const JoinConfig& cfg) { return TryRunHashJoin(r, s, cfg); },
      &report);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->checksum.digest(), plain->checksum.digest());
  EXPECT_EQ(report.failovers, 1u);
  EXPECT_EQ(report.dead_nodes, (std::vector<uint32_t>{1}));
  // The straggled phase's modeled time (slowdown included) was wasted.
  EXPECT_GT(report.wasted_seconds, 5.0);
  EXPECT_EQ(report.recovery_seconds,
            report.wasted_seconds + report.backoff_seconds);
}

TEST(RecoveryTest, TransientFailuresBackOffExponentially) {
  Workload w = MakeWorkload(4);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig config;
  config.key_bytes = 4;

  int calls = 0;
  JoinRunner flaky = [&](const PartitionedTable& r, const PartitionedTable& s,
                         const JoinConfig& cfg) -> Result<JoinResult> {
    if (++calls <= 2) return Status::DataLoss("synthetic transient loss");
    return TryRunHashJoin(r, s, cfg);
  };

  RecoveryOptions options;
  options.backoff_initial_seconds = 0.25;
  options.backoff_multiplier = 2.0;
  RecoveryReport report;
  Result<JoinResult> run =
      RunWithRecovery(rw.r, rw.s, config, options, flaky, &report);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.failovers, 0u);
  // 0.25 then 0.5: the ladder doubles per consecutive transient retry.
  EXPECT_DOUBLE_EQ(report.backoff_seconds, 0.75);
}

TEST(RecoveryTest, BudgetExhaustionIsTypedUnavailable) {
  Workload w = MakeWorkload(4);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig config;
  config.key_bytes = 4;

  JoinRunner doomed = [](const PartitionedTable&, const PartitionedTable&,
                         const JoinConfig&) -> Result<JoinResult> {
    return Status::DataLoss("synthetic unrecoverable loss");
  };
  RecoveryOptions options;
  options.max_attempts = 3;
  RecoveryReport report;
  Result<JoinResult> run =
      RunWithRecovery(rw.r, rw.s, config, options, doomed, &report);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(run.status().ToString().find("recovery budget exhausted"),
            std::string::npos);
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_EQ(report.retries, 2u);
}

TEST(RecoveryTest, NonFaultErrorsPropagateImmediately) {
  Workload w = MakeWorkload(4);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  JoinConfig config;
  int calls = 0;
  JoinRunner broken = [&](const PartitionedTable&, const PartitionedTable&,
                          const JoinConfig&) -> Result<JoinResult> {
    ++calls;
    return Status::InvalidArgument("bad config");
  };
  Result<JoinResult> run = RunWithRecovery(rw.r, rw.s, config, {}, broken);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // Retrying a usage error would only mask it.
}

TEST(RecoveryTest, UnreplicatedCrashIsUnavailable) {
  Workload w = MakeWorkload(4);
  ReplicatedWorkload rw = ReplicateWorkload(w, 1);  // k=1: nothing to fail to.
  FaultPolicy policy;
  policy.crash_node = 0;
  JoinConfig config;
  config.key_bytes = 4;
  config.fault_policy = &policy;

  RecoveryReport report;
  Result<JoinResult> run = RunWithRecovery(
      rw.r, rw.s, config, {},
      [](const PartitionedTable& r, const PartitionedTable& s,
         const JoinConfig& cfg) { return TryRunHashJoin(r, s, cfg); },
      &report);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(RecoveryTest, FailoverKeysTaggedInExplainAndReconciled) {
  Workload w = MakeWorkload(6);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  FaultPolicy policy;
  policy.crash_node = 3;
  policy.crash_phase = 1;
  ScheduleAuditLog audit;
  JoinConfig config;
  config.key_bytes = 4;
  config.fault_policy = &policy;
  config.fault_seed = 11;
  config.schedule_audit = &audit;

  RecoveryReport report;
  Result<JoinResult> run = RunWithRecovery(
      rw.r, rw.s, config, {},
      [](const PartitionedTable& r, const PartitionedTable& s,
         const JoinConfig& cfg) {
        return TryRunTrackJoin(r, s, cfg, TrackJoinVersion::k4Phase);
      },
      &report);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(report.failovers, 1u);

  ScheduleExplain explain =
      BuildScheduleExplain("4tj", audit, run->traffic, 10);
  const auto& failover =
      explain.by_class[static_cast<int>(ScheduleClass::kFailover)];
  // Node 3 held rows, so some keys were re-homed and re-tagged.
  EXPECT_GT(failover.keys, 0u);
  // Re-tagging only moves keys between classes; the audit still reconciles
  // byte-for-byte against the (remapped) traffic matrix.
  EXPECT_TRUE(explain.matches_traffic);
}

}  // namespace
}  // namespace tj
