// Tests for balance-aware scheduling (Section 5 extension): the balanced
// planner must never change a key's optimal cost, and must reduce the
// bottleneck node's ingress when schedules have free choices.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/schedule.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

KeyPlacement RandomPlacement(Rng* rng, uint32_t n) {
  KeyPlacement p;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.6)) p.r.push_back(NodeSize{i, 1 + rng->Below(50)});
    if (rng->Bernoulli(0.6)) p.s.push_back(NodeSize{i, 1 + rng->Below(50)});
  }
  p.tracker = static_cast<uint32_t>(rng->Below(n));
  p.msg_bytes = rng->Below(4);
  return p;
}

TEST(LoadBalancerTest, CostIdenticalToOptimal) {
  Rng rng(5);
  LoadBalancer balancer(12);
  for (int trial = 0; trial < 1000; ++trial) {
    KeyPlacement p = RandomPlacement(&rng, 12);
    KeySchedule optimal = PlanOptimal(p);
    KeySchedule balanced = balancer.PlanBalanced(p);
    EXPECT_EQ(balanced.plan.cost, optimal.plan.cost) << "trial " << trial;
  }
}

TEST(LoadBalancerTest, DestinationAvoidsHotNodes) {
  // Two kept candidates of equal size; the balancer must alternate between
  // them instead of always consolidating onto the same node.
  LoadBalancer balancer(4);
  std::vector<uint32_t> dests;
  for (int i = 0; i < 10; ++i) {
    KeyPlacement p;
    // S on nodes 1, 2 (60 bytes each: kept, since migrating them costs 60
    // to save the 40-byte broadcast) plus a small migrating run on node 3
    // (5 bytes to save 40). The migration destination is the free choice.
    p.r = {NodeSize{0, 40}};
    p.s = {NodeSize{1, 60}, NodeSize{2, 60}, NodeSize{3, 5}};
    p.tracker = 0;
    p.msg_bytes = 0;
    KeySchedule sched = balancer.PlanBalanced(p);
    dests.push_back(sched.plan.dest);
  }
  // At least both candidates appear (a fixed PlanOptimal would always
  // return the same destination).
  bool saw1 = false, saw2 = false;
  for (uint32_t d : dests) {
    saw1 |= d == 1;
    saw2 |= d == 2;
  }
  EXPECT_TRUE(saw1 && saw2);
}

TEST(LoadBalancerTest, IngressAccumulates) {
  LoadBalancer balancer(3);
  KeyPlacement p;
  p.r = {NodeSize{0, 10}};
  p.s = {NodeSize{1, 5}};
  p.tracker = 0;
  p.msg_bytes = 0;
  KeySchedule sched = balancer.PlanBalanced(p);
  // S -> R is cheaper (5 bytes vs 10): S tuples flow to node 0.
  EXPECT_EQ(sched.dir, Direction::kStoR);
  EXPECT_EQ(balancer.ingress()[0], 5u);
  EXPECT_EQ(balancer.ingress()[1], 0u);
}

TEST(LoadBalancerTest, SpreadsDeterministicHotspot) {
  // 200 identical keys whose default schedule always consolidates the
  // migrating run onto node 0 (the tie-broken heaviest): the balancer must
  // spread the migrated bytes over both kept nodes.
  KeyPlacement p;
  p.r = {NodeSize{3, 4}};
  p.s = {NodeSize{0, 6}, NodeSize{1, 6}, NodeSize{2, 1}};
  p.tracker = 3;
  p.msg_bytes = 0;

  // Default: dest is always node 0.
  std::vector<uint64_t> plain_ingress(4, 0);
  for (int i = 0; i < 200; ++i) {
    KeySchedule sched = PlanOptimal(p);
    EXPECT_EQ(sched.plan.dest, 0u);
    plain_ingress[0] += 4 + 1;  // Broadcast copy + migrated byte.
    plain_ingress[1] += 4;
  }

  LoadBalancer balancer(4);
  uint64_t total_cost = 0;
  for (int i = 0; i < 200; ++i) {
    KeySchedule sched = balancer.PlanBalanced(p);
    total_cost += sched.plan.cost;
    EXPECT_EQ(sched.plan.cost, PlanOptimal(p).plan.cost);
  }
  uint64_t balanced_max =
      std::max(balancer.ingress()[0], balancer.ingress()[1]);
  uint64_t plain_max = std::max(plain_ingress[0], plain_ingress[1]);
  EXPECT_LT(balanced_max, plain_max);
  // Both kept nodes end up within one key's worth of each other.
  EXPECT_LE(balancer.ingress()[0] > balancer.ingress()[1]
                ? balancer.ingress()[0] - balancer.ingress()[1]
                : balancer.ingress()[1] - balancer.ingress()[0],
            5u);
  (void)total_cost;
}

TEST(BalancedTrackJoinTest, SameOutputSameTotalLowerPeak) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 8;
  spec.key_domain = 3000;
  spec.r_rows = 30000;
  spec.s_rows = 30000;
  spec.r_theta = 1.0;
  spec.s_theta = 1.0;
  spec.r_payload = 12;
  spec.s_payload = 28;
  Workload w = GenerateZipfWorkload(spec);

  JoinConfig plain;
  plain.key_bytes = 4;
  JoinConfig balanced = plain;
  balanced.balance_loads = true;

  JoinResult a = RunTrackJoin4(w.r, w.s, plain);
  JoinResult b = RunTrackJoin4(w.r, w.s, balanced);
  EXPECT_EQ(a.output_rows, w.expected_output_rows);
  EXPECT_EQ(b.output_rows, a.output_rows);
  EXPECT_EQ(b.checksum.digest(), a.checksum.digest());
  // Same network-optimal schedule costs...
  EXPECT_EQ(b.traffic.TotalNetworkBytes(), a.traffic.TotalNetworkBytes());
  // ...and a bottleneck NIC no worse than marginally (each tracker
  // balances only its own ~1/N key share, so the global peak can wiggle;
  // SpreadsDeterministicHotspot checks the strict improvement case).
  EXPECT_LE(b.traffic.MaxNodeBytes(),
            a.traffic.MaxNodeBytes() + a.traffic.MaxNodeBytes() / 50);
}

TEST(BalancedTrackJoinTest, UniformWorkloadsUnaffected) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  Workload w = GenerateWorkload(spec);
  JoinConfig plain;
  plain.key_bytes = 4;
  JoinConfig balanced = plain;
  balanced.balance_loads = true;
  JoinResult a = RunTrackJoin4(w.r, w.s, plain);
  JoinResult b = RunTrackJoin4(w.r, w.s, balanced);
  EXPECT_EQ(b.checksum.digest(), a.checksum.digest());
  EXPECT_EQ(b.traffic.TotalNetworkBytes(), a.traffic.TotalNetworkBytes());
}

}  // namespace
}  // namespace tj
