// Property tests validating the paper's Theorems 1 and 2: the linear-time
// per-key scheduler produces schedules that are optimal
//  (a) within the migrate-then-broadcast family (checked against subset
//      enumeration for clusters up to 8 nodes, with message costs), and
//  (b) globally, against a brute force over the paper's integer program
//      (all x_ij / y_ij send decisions, any meeting node) for 3-node
//      clusters with M = 0.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/schedule.h"

namespace tj {
namespace {

KeyPlacement RandomPlacement(Rng* rng, uint32_t n, uint64_t max_bytes,
                             uint64_t msg_bytes, double presence_prob = 0.7) {
  KeyPlacement p;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(presence_prob)) {
      p.r.push_back(NodeSize{i, 1 + rng->Below(max_bytes)});
    }
    if (rng->Bernoulli(presence_prob)) {
      p.s.push_back(NodeSize{i, 1 + rng->Below(max_bytes)});
    }
  }
  p.tracker = static_cast<uint32_t>(rng->Below(n));
  p.msg_bytes = msg_bytes;
  return p;
}

/// Brute force over the paper's integer program with M = 0:
/// x[i][k] = 1 sends R_i to node k; y[k][j] = 1 sends S_j to node k;
/// each (R_i, S_j) pair needs a common node k with x[i][k] and y[k][j].
/// Self-sends are free. Returns the minimum total bytes moved.
uint64_t BruteForceLpCost(const KeyPlacement& p, uint32_t n) {
  if (p.r.empty() || p.s.empty()) return 0;
  const size_t nr = p.r.size(), ns = p.s.size();
  const size_t rx = nr * n, sy = ns * n;
  EXPECT_LE(rx + sy, 24u) << "test parameterization too large";
  uint64_t best = ~0ULL;
  for (uint64_t xm = 0; xm < (1ULL << rx); ++xm) {
    // Cost and reach of the x side.
    uint64_t xcost = 0;
    for (size_t i = 0; i < nr; ++i) {
      for (uint32_t k = 0; k < n; ++k) {
        if ((xm >> (i * n + k)) & 1) {
          if (p.r[i].node != k) xcost += p.r[i].bytes;
        }
      }
    }
    if (xcost >= best) continue;
    for (uint64_t ym = 0; ym < (1ULL << sy); ++ym) {
      uint64_t cost = xcost;
      for (size_t j = 0; j < ns; ++j) {
        for (uint32_t k = 0; k < n; ++k) {
          if ((ym >> (j * n + k)) & 1) {
            if (p.s[j].node != k) cost += p.s[j].bytes;
          }
        }
      }
      if (cost >= best) continue;
      // Feasibility: every pair meets somewhere.
      bool ok = true;
      for (size_t i = 0; i < nr && ok; ++i) {
        for (size_t j = 0; j < ns && ok; ++j) {
          bool met = false;
          for (uint32_t k = 0; k < n && !met; ++k) {
            bool xk = ((xm >> (i * n + k)) & 1) || p.r[i].node == k;
            bool yk = ((ym >> (j * n + k)) & 1) || p.s[j].node == k;
            // Note: a tuple is implicitly present at its own node.
            met = xk && yk;
          }
          ok = met;
        }
      }
      if (ok) best = cost;
    }
  }
  return best;
}

TEST(ScheduleOptimalityTest, MatchesSubsetEnumerationWithMessages) {
  Rng rng(7);
  for (int trial = 0; trial < 400; ++trial) {
    uint32_t n = 2 + static_cast<uint32_t>(rng.Below(7));  // 2..8 nodes
    uint64_t m = rng.Below(4);                             // M in 0..3
    KeyPlacement p = RandomPlacement(&rng, n, 40, m);
    if (p.r.empty() || p.s.empty()) continue;
    KeySchedule sched = PlanOptimal(p);
    uint64_t exhaustive = ExhaustiveOptimalCost(p);
    EXPECT_EQ(sched.plan.cost, exhaustive)
        << "trial " << trial << " n=" << n << " M=" << m;
  }
}

TEST(ScheduleOptimalityTest, MatchesIntegerProgramOnThreeNodes) {
  Rng rng(11);
  for (int trial = 0; trial < 120; ++trial) {
    KeyPlacement p = RandomPlacement(&rng, 3, 25, /*msg_bytes=*/0);
    if (p.r.empty() || p.s.empty()) continue;
    KeySchedule sched = PlanOptimal(p);
    uint64_t lp = BruteForceLpCost(p, 3);
    EXPECT_EQ(sched.plan.cost, lp) << "trial " << trial;
  }
}

TEST(ScheduleOptimalityTest, MatchesIntegerProgramOnTwoNodes) {
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    KeyPlacement p = RandomPlacement(&rng, 2, 50, /*msg_bytes=*/0,
                                     /*presence_prob=*/0.9);
    if (p.r.empty() || p.s.empty()) continue;
    EXPECT_EQ(PlanOptimal(p).plan.cost, BruteForceLpCost(p, 2))
        << "trial " << trial;
  }
}

TEST(ScheduleOptimalityTest, MigrationNeverIncreasesCost) {
  Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    uint32_t n = 2 + static_cast<uint32_t>(rng.Below(15));
    KeyPlacement p = RandomPlacement(&rng, n, 100, rng.Below(5));
    if (p.r.empty() || p.s.empty()) continue;
    for (Direction dir : {Direction::kRtoS, Direction::kStoR}) {
      EXPECT_LE(PlanMigrateAndBroadcast(p, dir).cost,
                SelectiveBroadcastCost(p, dir));
    }
  }
}

TEST(ScheduleOptimalityTest, OptimalNeverWorseThanEitherDirection) {
  Rng rng(19);
  for (int trial = 0; trial < 500; ++trial) {
    uint32_t n = 2 + static_cast<uint32_t>(rng.Below(15));
    KeyPlacement p = RandomPlacement(&rng, n, 100, rng.Below(5));
    if (p.r.empty() || p.s.empty()) continue;
    uint64_t best = PlanOptimal(p).plan.cost;
    EXPECT_LE(best, PlanMigrateAndBroadcast(p, Direction::kRtoS).cost);
    EXPECT_LE(best, PlanMigrateAndBroadcast(p, Direction::kStoR).cost);
  }
}

}  // namespace
}  // namespace tj
