#include "core/late_hash_join.h"

#include <gtest/gtest.h>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "costmodel/network_cost.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

TEST(LateHashJoinTest, MatchesHashJoinOutput) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 8;
  spec.s_payload = 24;
  spec.r_unmatched = 120;
  spec.s_unmatched = 80;
  Workload w = GenerateWorkload(spec);
  JoinResult reference = RunHashJoin(w.r, w.s, TestConfig());
  JoinResult late = RunLateMaterializedHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(late.output_rows, reference.output_rows);
  EXPECT_EQ(late.checksum.digest(), reference.checksum.digest());
}

TEST(LateHashJoinTest, FetchTrafficScalesWithOutput) {
  // Doubling both multiplicities quadruples the output and thus the
  // payload-fetch traffic (keys traffic stays fixed).
  auto tuple_bytes = [](const JoinResult& r) {
    return r.traffic.NetworkBytes(TrafficClass::kRTuples) +
           r.traffic.NetworkBytes(TrafficClass::kSTuples);
  };
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 400;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 2;
  spec.r_payload = 16;
  spec.s_payload = 16;
  Workload small = GenerateWorkload(spec);
  spec.r_multiplicity = 4;
  spec.s_multiplicity = 4;
  Workload big = GenerateWorkload(spec);

  JoinResult small_run = RunLateMaterializedHashJoin(small.r, small.s, TestConfig());
  JoinResult big_run = RunLateMaterializedHashJoin(big.r, big.s, TestConfig());
  EXPECT_EQ(big_run.output_rows, small_run.output_rows * 4);
  double ratio = static_cast<double>(tuple_bytes(big_run)) /
                 static_cast<double>(tuple_bytes(small_run));
  EXPECT_NEAR(ratio, 4.0, 0.3);
}

TEST(LateHashJoinTest, TracksAnalyticCost) {
  WorkloadSpec spec;
  spec.num_nodes = 16;
  spec.matched_keys = 2000;
  spec.r_payload = 12;
  spec.s_payload = 40;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();
  JoinResult run = RunLateMaterializedHashJoin(w.r, w.s, config);

  JoinStats stats;
  stats.num_nodes = 16;
  stats.t_r = 2000;
  stats.t_s = 2000;
  stats.d_r = 2000;
  stats.d_s = 2000;
  stats.w_k = 4;
  stats.w_r = 12;
  stats.w_s = 40;
  stats.t_rs = 2000;
  double model = LateMaterializedHashJoinCost(stats);
  double measured = static_cast<double>(run.traffic.TotalNetworkBytes());
  // The formula drops the (1-1/N) in-place factors and models rid widths
  // as log(t); agree within 20%.
  EXPECT_NEAR(measured / model, 1.0, 0.2);
}

TEST(LateHashJoinTest, OutputBlowupHurtsLateMaterialization) {
  // Workload-Y-shaped: output 9x the per-table input. Early-materialized
  // hash join ships every tuple once; late materialization re-fetches per
  // output pair and must lose badly.
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 200;
  spec.r_multiplicity = 3;
  spec.s_multiplicity = 9;
  spec.r_payload = 33;
  spec.s_payload = 43;
  Workload w = GenerateWorkload(spec);
  JoinResult early = RunHashJoin(w.r, w.s, TestConfig());
  JoinResult late = RunLateMaterializedHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(late.checksum.digest(), early.checksum.digest());
  EXPECT_GT(late.traffic.TotalNetworkBytes(),
            2 * early.traffic.TotalNetworkBytes());
}

TEST(LateHashJoinTest, EmptyAndKeyOnlyInputs) {
  PartitionedTable r("R", 3, 4), s("S", 3, 8);
  EXPECT_EQ(RunLateMaterializedHashJoin(r, s, TestConfig()).output_rows, 0u);

  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 100;
  spec.r_payload = 0;
  spec.s_payload = 0;
  Workload w = GenerateWorkload(spec);
  JoinResult run = RunLateMaterializedHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(run.output_rows, 100u);
}

}  // namespace
}  // namespace tj
