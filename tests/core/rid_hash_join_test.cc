#include "core/rid_hash_join.h"

#include <gtest/gtest.h>

#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

TEST(RidHashJoinTest, MatchesHashJoinOutput) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 8;
  spec.s_payload = 24;
  spec.r_unmatched = 100;
  spec.s_unmatched = 100;
  Workload w = GenerateWorkload(spec);
  JoinResult reference = RunHashJoin(w.r, w.s, TestConfig());
  JoinResult rid = RunRidHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(rid.output_rows, reference.output_rows);
  EXPECT_EQ(rid.checksum.digest(), reference.checksum.digest());
}

TEST(RidHashJoinTest, OnlyNarrowPayloadsTravel) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  spec.r_payload = 40;  // Wide: execution stays at R.
  spec.s_payload = 4;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunRidHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
  EXPECT_GT(result.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
}

TEST(RidHashJoinTest, BeatsPlainHashJoinOnWidePayloads) {
  // With wide exec-side payloads and selective inputs, returning rids and
  // shipping only the narrow side must transfer less than full hash join.
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 500;
  spec.r_payload = 60;
  spec.s_payload = 8;
  spec.r_unmatched = 2000;  // Hash join pays full freight for these.
  spec.s_unmatched = 2000;
  Workload w = GenerateWorkload(spec);
  JoinResult rid = RunRidHashJoin(w.r, w.s, TestConfig());
  JoinResult plain = RunHashJoin(w.r, w.s, TestConfig());
  EXPECT_LT(rid.traffic.TotalNetworkBytes(), plain.traffic.TotalNetworkBytes());
}

TEST(RidHashJoinTest, SubsumedByTwoPhaseTrackJoin) {
  // Section 3.2's theorem: 2TJ (shipping the narrow side) transfers less
  // than the rid-based tracking-aware hash join — tracking sends distinct
  // keys where rid-HJ sends the full key column plus rids.
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 800;
  spec.r_payload = 8;   // Narrow side ships in both algorithms.
  spec.s_payload = 48;
  spec.r_unmatched = 400;
  spec.s_unmatched = 400;
  Workload w = GenerateWorkload(spec);
  JoinResult rid = RunRidHashJoin(w.r, w.s, TestConfig());
  JoinResult tj2 = RunTrackJoin2(w.r, w.s, TestConfig(), Direction::kRtoS);
  EXPECT_EQ(rid.checksum.digest(), tj2.checksum.digest());
  EXPECT_LT(tj2.traffic.TotalNetworkBytes(), rid.traffic.TotalNetworkBytes());
}

TEST(RidHashJoinTest, EmptyAndUnmatchedInputs) {
  PartitionedTable r("R", 3, 4), s("S", 3, 8);
  JoinResult empty = RunRidHashJoin(r, s, TestConfig());
  EXPECT_EQ(empty.output_rows, 0u);

  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 0;
  spec.r_unmatched = 200;
  spec.s_unmatched = 200;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunRidHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(result.output_rows, 0u);
  // Keys travel; no tuples do.
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
}

TEST(RidHashJoinTest, DuplicateKeysOnBothSides) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 50;
  spec.r_multiplicity = 4;
  spec.s_multiplicity = 6;
  Workload w = GenerateWorkload(spec);
  JoinResult rid = RunRidHashJoin(w.r, w.s, TestConfig());
  EXPECT_EQ(rid.output_rows, w.expected_output_rows);
}

}  // namespace
}  // namespace tj
