#include "core/tracker.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace tj {
namespace {

Message Msg(uint32_t src, ByteBuffer data) {
  return Message{src, MessageType::kTrackR, std::move(data)};
}

TEST(TrackerTest, EncodeDecodeWithoutCounts) {
  JoinConfig config;
  config.key_bytes = 4;
  std::vector<KeyCount> keys = {{1, 3}, {2, 1}, {900, 7}};
  auto messages = EncodeTrackingMessages(keys, config, /*with_counts=*/false, 4);
  ASSERT_EQ(messages.size(), 4u);
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 4; ++dst) {
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(9, messages[dst]), config, false);
    for (const auto& e : entries) {
      EXPECT_EQ(HashPartition(e.key, 4), dst);  // Routed by hash.
      EXPECT_EQ(e.node, 9u);
      EXPECT_EQ(e.count, 1u);  // Presence only.
      all.push_back(e);
    }
  }
  EXPECT_EQ(all.size(), 3u);
}

TEST(TrackerTest, EncodeDecodeWithCounts) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  std::vector<KeyCount> keys = {{10, 1}, {20, 65535}, {30, 12}};
  auto messages = EncodeTrackingMessages(keys, config, true, 2);
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 2; ++dst) {
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(1, messages[dst]), config, true);
    all.insert(all.end(), entries.begin(), entries.end());
  }
  MergeTrackEntries(&all);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], (TrackEntry{10, 1, 1}));
  EXPECT_EQ(all[1], (TrackEntry{20, 1, 65535}));
  EXPECT_EQ(all[2], (TrackEntry{30, 1, 12}));
}

TEST(TrackerTest, CountSaturationSplitsIntoChunks) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 1;  // Max 255 per chunk.
  std::vector<KeyCount> keys = {{5, 700}};
  auto messages = EncodeTrackingMessages(keys, config, true, 1);
  // 700 = 255 + 255 + 190: three chunks.
  EXPECT_EQ(messages[0].size(), 3u * (4 + 1));
  auto entries = DecodeTrackingMessage(Msg(2, messages[0]), config, true);
  MergeTrackEntries(&entries);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 700u);
}

TEST(TrackerTest, DeltaTrackingRoundTrip) {
  JoinConfig config;
  config.key_bytes = 4;
  config.delta_tracking = true;
  std::vector<KeyCount> keys;
  for (uint64_t k = 100; k < 200; ++k) keys.push_back({k, k % 7 + 1});
  auto messages = EncodeTrackingMessages(keys, config, true, 3);
  uint64_t plain_bytes = 100 * (4 + 1);
  uint64_t delta_bytes = 0;
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 3; ++dst) {
    delta_bytes += messages[dst].size();
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(4, messages[dst]), config, true);
    all.insert(all.end(), entries.begin(), entries.end());
  }
  EXPECT_LT(delta_bytes, plain_bytes);  // Dense keys compress.
  MergeTrackEntries(&all);
  ASSERT_EQ(all.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(all[i].key, 100 + i);
    EXPECT_EQ(all[i].count, (100 + i) % 7 + 1);
  }
}

TEST(TrackerTest, MergeSumsDuplicates) {
  std::vector<TrackEntry> entries = {
      {5, 1, 10}, {5, 0, 1}, {5, 1, 20}, {3, 2, 4}};
  MergeTrackEntries(&entries);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (TrackEntry{3, 2, 4}));
  EXPECT_EQ(entries[1], (TrackEntry{5, 0, 1}));
  EXPECT_EQ(entries[2], (TrackEntry{5, 1, 30}));
}

TEST(TrackerTest, PlacementIteratorSkipsUnmatchedKeys) {
  std::vector<TrackEntry> r = {{1, 0, 2}, {3, 1, 1}, {5, 0, 1}};
  std::vector<TrackEntry> s = {{2, 0, 1}, {3, 2, 4}, {3, 3, 1}};
  PlacementIterator it(r, s, /*width_r=*/10, /*width_s=*/20, /*tracker=*/7,
                       /*msg_bytes=*/5);
  ASSERT_TRUE(it.Next());
  EXPECT_EQ(it.key(), 3u);
  const KeyPlacement& p = it.placement();
  ASSERT_EQ(p.r.size(), 1u);
  EXPECT_EQ(p.r[0], (NodeSize{1, 10}));  // 1 tuple x width 10.
  ASSERT_EQ(p.s.size(), 2u);
  EXPECT_EQ(p.s[0], (NodeSize{2, 80}));  // 4 tuples x width 20.
  EXPECT_EQ(p.s[1], (NodeSize{3, 20}));
  EXPECT_EQ(p.tracker, 7u);
  EXPECT_EQ(p.msg_bytes, 5u);
  EXPECT_FALSE(it.Next());
}

TEST(TrackerTest, KeyNodePairCodecs) {
  JoinConfig config;
  config.key_bytes = 4;
  config.node_bytes = 1;
  std::vector<KeyNodePair> pairs = {{100, 3}, {200, 0}, {100, 1}};
  Message msg{0, MessageType::kLocationsToR, EncodeKeyNodePairs(pairs, config)};
  EXPECT_EQ(msg.data.size(), pairs.size() * config.MsgBytes());
  EXPECT_EQ(DecodeKeyNodePairs(msg, config), pairs);
}

TEST(TrackerTest, GroupedKeyNodePairCodecs) {
  JoinConfig config;
  config.key_bytes = 4;
  config.group_locations = true;
  std::vector<KeyNodePair> pairs;
  for (uint64_t k = 0; k < 50; ++k) pairs.push_back({k, 2});
  Message msg{0, MessageType::kLocationsToR, EncodeKeyNodePairs(pairs, config)};
  EXPECT_LT(msg.data.size(), 50u * 5);  // Node label amortized.
  auto decoded = DecodeKeyNodePairs(msg, config);
  ASSERT_EQ(decoded.size(), 50u);
  for (const auto& p : decoded) EXPECT_EQ(p.node, 2u);
}

}  // namespace
}  // namespace tj
