#include "core/tracker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"
#include "encoding/varint.h"

namespace tj {
namespace {

Message Msg(uint32_t src, ByteBuffer data) {
  return Message{src, MessageType::kTrackR, std::move(data)};
}

/// Reference path: decode every message, concatenate, comparison-sort merge.
std::vector<TrackEntry> ReferenceMerge(const std::vector<Message>& messages,
                                       const JoinConfig& config,
                                       bool with_counts) {
  std::vector<TrackEntry> all;
  for (const Message& msg : messages) {
    std::vector<TrackEntry> entries;
    Status s = TryDecodeTrackingMessage(msg, config, with_counts, &entries);
    EXPECT_TRUE(s.ok()) << s.ToString();
    all.insert(all.end(), entries.begin(), entries.end());
  }
  MergeTrackEntries(&all);
  return all;
}

/// One source's sorted aggregated keys drawn from [0, universe).
std::vector<KeyCount> RandomSource(Rng* rng, size_t draws, uint64_t universe,
                                   uint64_t max_count) {
  std::vector<uint64_t> keys(draws);
  for (uint64_t& k : keys) k = rng->Below(universe);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<KeyCount> out;
  for (uint64_t k : keys) out.push_back({k, 1 + rng->Below(max_count)});
  return out;
}

TEST(TrackerTest, EncodeDecodeWithoutCounts) {
  JoinConfig config;
  config.key_bytes = 4;
  std::vector<KeyCount> keys = {{1, 3}, {2, 1}, {900, 7}};
  auto messages = EncodeTrackingMessages(keys, config, /*with_counts=*/false, 4);
  ASSERT_EQ(messages.size(), 4u);
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 4; ++dst) {
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(9, messages[dst]), config, false);
    for (const auto& e : entries) {
      EXPECT_EQ(HashPartition(e.key, 4), dst);  // Routed by hash.
      EXPECT_EQ(e.node, 9u);
      EXPECT_EQ(e.count, 1u);  // Presence only.
      all.push_back(e);
    }
  }
  EXPECT_EQ(all.size(), 3u);
}

TEST(TrackerTest, EncodeDecodeWithCounts) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  std::vector<KeyCount> keys = {{10, 1}, {20, 65535}, {30, 12}};
  auto messages = EncodeTrackingMessages(keys, config, true, 2);
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 2; ++dst) {
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(1, messages[dst]), config, true);
    all.insert(all.end(), entries.begin(), entries.end());
  }
  MergeTrackEntries(&all);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], (TrackEntry{10, 1, 1}));
  EXPECT_EQ(all[1], (TrackEntry{20, 1, 65535}));
  EXPECT_EQ(all[2], (TrackEntry{30, 1, 12}));
}

TEST(TrackerTest, CountSaturationSplitsIntoChunks) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 1;  // Max 255 per chunk.
  std::vector<KeyCount> keys = {{5, 700}};
  auto messages = EncodeTrackingMessages(keys, config, true, 1);
  // 700 = 255 + 255 + 190: three chunks.
  EXPECT_EQ(messages[0].size(), 3u * (4 + 1));
  auto entries = DecodeTrackingMessage(Msg(2, messages[0]), config, true);
  MergeTrackEntries(&entries);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 700u);
}

TEST(TrackerTest, DeltaTrackingRoundTrip) {
  JoinConfig config;
  config.key_bytes = 4;
  config.delta_tracking = true;
  std::vector<KeyCount> keys;
  for (uint64_t k = 100; k < 200; ++k) keys.push_back({k, k % 7 + 1});
  auto messages = EncodeTrackingMessages(keys, config, true, 3);
  uint64_t plain_bytes = 100 * (4 + 1);
  uint64_t delta_bytes = 0;
  std::vector<TrackEntry> all;
  for (uint32_t dst = 0; dst < 3; ++dst) {
    delta_bytes += messages[dst].size();
    if (messages[dst].empty()) continue;
    auto entries = DecodeTrackingMessage(Msg(4, messages[dst]), config, true);
    all.insert(all.end(), entries.begin(), entries.end());
  }
  EXPECT_LT(delta_bytes, plain_bytes);  // Dense keys compress.
  MergeTrackEntries(&all);
  ASSERT_EQ(all.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(all[i].key, 100 + i);
    EXPECT_EQ(all[i].count, (100 + i) % 7 + 1);
  }
}

TEST(TrackerTest, MergeSumsDuplicates) {
  std::vector<TrackEntry> entries = {
      {5, 1, 10}, {5, 0, 1}, {5, 1, 20}, {3, 2, 4}};
  MergeTrackEntries(&entries);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (TrackEntry{3, 2, 4}));
  EXPECT_EQ(entries[1], (TrackEntry{5, 0, 1}));
  EXPECT_EQ(entries[2], (TrackEntry{5, 1, 30}));
}

TEST(TrackerTest, PlacementIteratorSkipsUnmatchedKeys) {
  std::vector<TrackEntry> r = {{1, 0, 2}, {3, 1, 1}, {5, 0, 1}};
  std::vector<TrackEntry> s = {{2, 0, 1}, {3, 2, 4}, {3, 3, 1}};
  PlacementIterator it(r, s, /*width_r=*/10, /*width_s=*/20, /*tracker=*/7,
                       /*msg_bytes=*/5);
  ASSERT_TRUE(it.Next());
  EXPECT_EQ(it.key(), 3u);
  const KeyPlacement& p = it.placement();
  ASSERT_EQ(p.r.size(), 1u);
  EXPECT_EQ(p.r[0], (NodeSize{1, 10}));  // 1 tuple x width 10.
  ASSERT_EQ(p.s.size(), 2u);
  EXPECT_EQ(p.s[0], (NodeSize{2, 80}));  // 4 tuples x width 20.
  EXPECT_EQ(p.s[1], (NodeSize{3, 20}));
  EXPECT_EQ(p.tracker, 7u);
  EXPECT_EQ(p.msg_bytes, 5u);
  EXPECT_FALSE(it.Next());
}

TEST(TrackerTest, KeyNodePairCodecs) {
  JoinConfig config;
  config.key_bytes = 4;
  config.node_bytes = 1;
  std::vector<KeyNodePair> pairs = {{100, 3}, {200, 0}, {100, 1}};
  Message msg{0, MessageType::kLocationsToR, EncodeKeyNodePairs(pairs, config)};
  EXPECT_EQ(msg.data.size(), pairs.size() * config.MsgBytes());
  EXPECT_EQ(DecodeKeyNodePairs(msg, config), pairs);
}

TEST(TrackerTest, GroupedKeyNodePairCodecs) {
  JoinConfig config;
  config.key_bytes = 4;
  config.group_locations = true;
  std::vector<KeyNodePair> pairs;
  for (uint64_t k = 0; k < 50; ++k) pairs.push_back({k, 2});
  Message msg{0, MessageType::kLocationsToR, EncodeKeyNodePairs(pairs, config)};
  EXPECT_LT(msg.data.size(), 50u * 5);  // Node label amortized.
  auto decoded = DecodeKeyNodePairs(msg, config);
  ASSERT_EQ(decoded.size(), 50u);
  for (const auto& p : decoded) EXPECT_EQ(p.node, 2u);
}

TEST(TrackerMergeTest, MatchesReferenceOnRandomStreams) {
  // Property: the k-way merge is byte-identical to decode + MergeTrackEntries
  // across formats, counts modes, fan-ins, and duplication levels.
  Rng rng(21);
  for (bool delta : {false, true}) {
    for (bool with_counts : {false, true}) {
      for (uint32_t k : {1u, 2u, 5u, 13u}) {
        JoinConfig config;
        config.key_bytes = 4;
        config.count_bytes = 2;
        config.delta_tracking = delta;
        std::vector<Message> msgs;
        for (uint32_t src = 0; src < k; ++src) {
          // Universe 400 with up to 300 draws: keys collide across sources.
          auto kcs = RandomSource(&rng, rng.Below(300), 400, 1000);
          auto bufs = EncodeTrackingMessages(kcs, config, with_counts, 1);
          msgs.push_back(Msg(src, std::move(bufs[0])));
        }
        std::vector<TrackEntry> merged;
        Status s = TryMergeTrackingMessages(msgs, config, with_counts, &merged);
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(merged, ReferenceMerge(msgs, config, with_counts))
            << "delta=" << delta << " with_counts=" << with_counts
            << " k=" << k;
      }
    }
  }
}

TEST(TrackerMergeTest, AggregatesSaturatedCountChunks) {
  // count_bytes=1 saturates at 255, so a count of 700 ships as three
  // adjacent chunks per source; the merge must re-aggregate them and then
  // sum across sources ("we can aggregate at the destination").
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 1;
  std::vector<Message> msgs;
  for (uint32_t src = 0; src < 3; ++src) {
    auto bufs = EncodeTrackingMessages({{5, 700}, {9, 2}}, config, true, 1);
    msgs.push_back(Msg(src, std::move(bufs[0])));
  }
  std::vector<TrackEntry> merged;
  ASSERT_TRUE(TryMergeTrackingMessages(msgs, config, true, &merged).ok());
  ASSERT_EQ(merged.size(), 6u);
  for (uint32_t src = 0; src < 3; ++src) {
    EXPECT_EQ(merged[src], (TrackEntry{5, src, 700}));
    EXPECT_EQ(merged[3 + src], (TrackEntry{9, src, 2}));
  }
  EXPECT_EQ(merged, ReferenceMerge(msgs, config, true));
}

TEST(TrackerMergeTest, EmptyInboxAndEmptyMessages) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  std::vector<TrackEntry> merged = {{1, 2, 3}};  // Must be replaced.
  ASSERT_TRUE(TryMergeTrackingMessages({}, config, true, &merged).ok());
  EXPECT_TRUE(merged.empty());

  // Zero-length payloads (a source with no keys for this tracker) vanish.
  std::vector<Message> msgs;
  msgs.push_back(Msg(0, ByteBuffer{}));
  auto bufs = EncodeTrackingMessages({{42, 7}}, config, true, 1);
  msgs.push_back(Msg(1, std::move(bufs[0])));
  msgs.push_back(Msg(2, ByteBuffer{}));
  ASSERT_TRUE(TryMergeTrackingMessages(msgs, config, true, &merged).ok());
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (TrackEntry{42, 1, 7}));
}

TEST(TrackerMergeTest, UnsortedPlainStreamTakesReferencePath) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  // Hand-built plain message with descending keys — a legacy/adversarial
  // sender the cursor must flag so the merge falls back to the sort path.
  ByteBuffer data;
  ByteWriter w(&data);
  for (uint64_t key : {30u, 20u, 10u}) {
    w.PutUint(key, config.key_bytes);
    w.PutUint(2, config.count_bytes);
  }
  std::vector<Message> msgs;
  msgs.push_back(Msg(0, std::move(data)));
  TrackingMessageCursor cursor;
  ASSERT_TRUE(cursor.Init(msgs[0], config, true).ok());
  EXPECT_FALSE(cursor.sorted());

  auto bufs = EncodeTrackingMessages({{15, 1}, {25, 1}}, config, true, 1);
  msgs.push_back(Msg(1, std::move(bufs[0])));
  std::vector<TrackEntry> merged;
  ASSERT_TRUE(TryMergeTrackingMessages(msgs, config, true, &merged).ok());
  EXPECT_EQ(merged, ReferenceMerge(msgs, config, true));
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.front(), (TrackEntry{10, 0, 2}));
  EXPECT_EQ(merged.back(), (TrackEntry{30, 0, 2}));
}

TEST(TrackerMergeTest, DeltaWraparoundFlagsUnsorted) {
  JoinConfig config;
  config.key_bytes = 8;
  config.delta_tracking = true;
  // Two gaps whose prefix sum wraps uint64: decoded keys are 1 then 0, a
  // descending stream the sorted-by-construction assumption must not trust.
  ByteBuffer data;
  EncodeLeb128(2, &data);                      // Entry count.
  EncodeLeb128(1, &data);                      // First key: 1.
  EncodeLeb128(~uint64_t{0}, &data);           // 1 + 2^64-1 wraps to 0.
  std::vector<Message> msgs;
  msgs.push_back(Msg(0, std::move(data)));
  TrackingMessageCursor cursor;
  ASSERT_TRUE(cursor.Init(msgs[0], config, false).ok());
  EXPECT_FALSE(cursor.sorted());

  std::vector<TrackEntry> merged;
  ASSERT_TRUE(TryMergeTrackingMessages(msgs, config, false, &merged).ok());
  EXPECT_EQ(merged, ReferenceMerge(msgs, config, false));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key, 0u);
  EXPECT_EQ(merged[1].key, 1u);
}

TEST(TrackerMergeTest, RejectsCorruptStreams) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  auto bufs = EncodeTrackingMessages({{1, 2}, {3, 4}}, config, true, 1);
  ByteBuffer good = bufs[0];

  // Truncated mid-entry: not a multiple of the entry width.
  ByteBuffer truncated(good.begin(), good.end() - 3);
  std::vector<TrackEntry> merged;
  EXPECT_FALSE(TryMergeTrackingMessages({Msg(0, truncated)}, config, true,
                                        &merged)
                   .ok());

  // Delta stream whose declared count exceeds the payload.
  JoinConfig delta_config = config;
  delta_config.delta_tracking = true;
  ByteBuffer bogus;
  EncodeLeb128(1000, &bogus);
  EXPECT_FALSE(TryMergeTrackingMessages({Msg(0, bogus)}, delta_config, true,
                                        &merged)
                   .ok());
}

TEST(TrackerMergeTest, CursorWalksWireOrder) {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 2;
  auto bufs = EncodeTrackingMessages({{10, 3}, {20, 5}}, config, true, 1);
  Message msg = Msg(6, std::move(bufs[0]));  // Must outlive the cursor.
  TrackingMessageCursor cursor;
  ASSERT_TRUE(cursor.Init(msg, config, true).ok());
  EXPECT_TRUE(cursor.sorted());
  EXPECT_EQ(cursor.entries(), 2u);
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 10u);
  EXPECT_EQ(cursor.node(), 6u);
  EXPECT_EQ(cursor.count(), 3u);
  cursor.Next();
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), 20u);
  EXPECT_EQ(cursor.count(), 5u);
  cursor.Next();
  EXPECT_FALSE(cursor.Valid());
}

}  // namespace
}  // namespace tj
