// Behavioral tests of the track join drivers: traffic structure, locality
// exploitation, semi-join filtering, and agreement between the measured
// traffic and the per-key scheduler's planned costs.
#include "core/track_join.h"

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/hash_join.h"
#include "common/hash.h"
#include "core/schedule.h"
#include "core/tracker.h"
#include "exec/key_aggregate.h"
#include "exec/radix_sort.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 1;
  config.node_bytes = 1;
  return config;
}

TEST(TrackJoinTest, FullyCollocatedTransfersNoPayloads) {
  // Every matched key's R and S tuples on the same node: 4TJ must move no
  // tuples at all (paper Figure 6, 5,0,0... pattern: "track join eliminates
  // all transfers of payloads").
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  spec.r_multiplicity = 5;
  spec.s_multiplicity = 5;
  spec.r_pattern = {5};
  spec.s_pattern = {5};
  spec.collocation = Collocation::kInter;
  Workload w = GenerateWorkload(spec);

  JoinResult result = RunTrackJoin4(w.r, w.s, TestConfig());
  EXPECT_EQ(result.output_rows, w.expected_output_rows);
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
  EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
  // Tracking still crosses the network.
  EXPECT_GT(result.traffic.NetworkBytes(TrafficClass::kKeysAndCounts), 0u);
}

TEST(TrackJoinTest, UnmatchedKeysNeverShipTuples) {
  // Perfect semi-join filtering: keys present in only one table cost
  // tracking traffic but no locations and no tuples.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 0;
  spec.r_unmatched = 1000;
  spec.s_unmatched = 1000;
  Workload w = GenerateWorkload(spec);
  for (auto version : {TrackJoinVersion::k2Phase, TrackJoinVersion::k3Phase,
                       TrackJoinVersion::k4Phase}) {
    JoinResult result = RunTrackJoin(w.r, w.s, TestConfig(), version);
    EXPECT_EQ(result.output_rows, 0u);
    EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
    EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
    EXPECT_EQ(result.traffic.NetworkBytes(TrafficClass::kKeysAndNodes), 0u);
  }
}

TEST(TrackJoinTest, TwoPhaseSendsOnlyChosenDirection) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 400;
  spec.r_payload = 8;
  spec.s_payload = 32;
  Workload w = GenerateWorkload(spec);

  JoinResult rs = RunTrackJoin2(w.r, w.s, TestConfig(), Direction::kRtoS);
  EXPECT_EQ(rs.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
  EXPECT_GT(rs.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);

  JoinResult sr = RunTrackJoin2(w.r, w.s, TestConfig(), Direction::kStoR);
  EXPECT_EQ(sr.traffic.NetworkBytes(TrafficClass::kRTuples), 0u);
  EXPECT_GT(sr.traffic.NetworkBytes(TrafficClass::kSTuples), 0u);
}

TEST(TrackJoinTest, ThreePhasePicksCheaperSidePerKey) {
  // Unique keys, wide S payloads: 3TJ must ship R tuples (narrow side),
  // matching 2TJ-R, and beat 2TJ-S.
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 500;
  spec.r_payload = 4;
  spec.s_payload = 56;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();

  uint64_t tj3_payload =
      RunTrackJoin3(w.r, w.s, config)
          .traffic.NetworkBytes(TrafficClass::kRTuples) +
      RunTrackJoin3(w.r, w.s, config).traffic.NetworkBytes(TrafficClass::kSTuples);
  uint64_t tj2s_payload =
      RunTrackJoin2(w.r, w.s, config, Direction::kStoR)
          .traffic.NetworkBytes(TrafficClass::kSTuples);
  EXPECT_LT(tj3_payload, tj2s_payload);
}

/// Recomputes the planned per-key costs straight from the input tables and
/// compares with the driver's measured schedule-phase traffic: location
/// messages + migration instructions + all tuple transfers.
uint64_t PlannedCost(const Workload& w, const JoinConfig& config,
                     TrackJoinVersion version, Direction dir2) {
  const uint32_t n = w.r.num_nodes();
  std::vector<TrackEntry> r_entries, s_entries;
  for (uint32_t node = 0; node < n; ++node) {
    TupleBlock block = w.r.node(node);
    for (const auto& kc : AggregateKeys(block)) {
      r_entries.push_back({kc.key, node, kc.count});
    }
    block = w.s.node(node);
    for (const auto& kc : AggregateKeys(block)) {
      s_entries.push_back({kc.key, node, kc.count});
    }
  }
  MergeTrackEntries(&r_entries);
  MergeTrackEntries(&s_entries);
  uint64_t width_r = config.key_bytes + w.r.payload_width();
  uint64_t width_s = config.key_bytes + w.s.payload_width();
  uint64_t total = 0;
  // Placements must use the same tracker the driver uses: hash(key) % n.
  PlacementIterator it(r_entries, s_entries, width_r, width_s, /*tracker=*/0,
                       config.MsgBytes());
  while (it.Next()) {
    KeyPlacement p = it.placement();
    p.tracker = HashPartition(it.key(), n);
    switch (version) {
      case TrackJoinVersion::k2Phase:
        total += SelectiveBroadcastCost(p, dir2);
        break;
      case TrackJoinVersion::k3Phase: {
        uint64_t cost = 0;
        CheaperBroadcastDirection(p, &cost);
        total += cost;
        break;
      }
      case TrackJoinVersion::k4Phase:
        total += PlanOptimal(p).plan.cost;
        break;
    }
  }
  return total;
}

uint64_t MeasuredScheduleBytes(const JoinResult& result) {
  return result.traffic.NetworkBytes(TrafficClass::kKeysAndNodes) +
         result.traffic.NetworkBytes(TrafficClass::kRTuples) +
         result.traffic.NetworkBytes(TrafficClass::kSTuples);
}

class PlannedVsMeasured
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PlannedVsMeasured, DriverTrafficMatchesScheduler) {
  auto [version_int, seed] = GetParam();
  auto version = static_cast<TrackJoinVersion>(version_int);
  WorkloadSpec spec;
  spec.num_nodes = 5;
  spec.matched_keys = 200;
  spec.r_multiplicity = 3;
  spec.s_multiplicity = 2;
  spec.r_payload = 10;
  spec.s_payload = 20;
  spec.r_unmatched = 100;
  spec.s_unmatched = 50;
  spec.seed = seed;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = TestConfig();

  JoinResult result = RunTrackJoin(w.r, w.s, config, version, Direction::kRtoS);
  EXPECT_EQ(result.output_rows, w.expected_output_rows);
  EXPECT_EQ(MeasuredScheduleBytes(result),
            PlannedCost(w, config, version, Direction::kRtoS));
}

INSTANTIATE_TEST_SUITE_P(
    Versions, PlannedVsMeasured,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(TrackJoinTest, PhaseBreakdownIsComplete) {
  WorkloadSpec spec;
  spec.matched_keys = 50;
  Workload w = GenerateWorkload(spec);
  JoinResult result = RunTrackJoin4(w.r, w.s, TestConfig());
  ASSERT_GE(result.phase_seconds.size(), 9u);
  EXPECT_EQ(result.phase_seconds.front().first, "sort local R tuples");
  EXPECT_EQ(result.phase_seconds.back().first, "final merge-join S->R");
  EXPECT_GE(result.TotalCpuSeconds(), 0.0);
}

TEST(TrackJoinTest, CompressionTogglesPreserveResults) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.s_multiplicity = 3;
  Workload w = GenerateWorkload(spec);
  JoinConfig plain = TestConfig();
  JoinConfig compressed = TestConfig();
  compressed.delta_tracking = true;
  compressed.group_locations = true;

  JoinResult a = RunTrackJoin4(w.r, w.s, plain);
  JoinResult b = RunTrackJoin4(w.r, w.s, compressed);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_EQ(a.checksum.digest(), b.checksum.digest());
  // Dense keys: compressed tracking must not exceed plain tracking.
  EXPECT_LE(b.traffic.NetworkBytes(TrafficClass::kKeysAndCounts),
            a.traffic.NetworkBytes(TrafficClass::kKeysAndCounts));
  // Tuples shipped are identical.
  EXPECT_EQ(a.traffic.NetworkBytes(TrafficClass::kRTuples),
            b.traffic.NetworkBytes(TrafficClass::kRTuples));
}

}  // namespace
}  // namespace tj
