// Unit tests for heavy-hitter splitting: the PlanHotSplit planner against
// hand-computed costs/bottlenecks, the w = 1 reduction to the migration
// plan, the threshold detector, and end-to-end output identity of 4TJ with
// splitting on vs off.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/hash_join.h"
#include "core/schedule.h"
#include "core/track_join.h"
#include "core/tracker.h"
#include "workload/generator.h"

namespace tj {
namespace {

KeyPlacement MakePlacement(std::vector<uint64_t> r_sizes,
                           std::vector<uint64_t> s_sizes, uint32_t tracker,
                           uint64_t msg_bytes) {
  KeyPlacement p;
  for (uint32_t i = 0; i < r_sizes.size(); ++i) {
    if (r_sizes[i] > 0) p.r.push_back(NodeSize{i, r_sizes[i]});
  }
  for (uint32_t i = 0; i < s_sizes.size(); ++i) {
    if (s_sizes[i] > 0) p.s.push_back(NodeSize{i, s_sizes[i]});
  }
  p.tracker = tracker;
  p.msg_bytes = msg_bytes;
  return p;
}

// Symmetric placement, unit-width tuples, M = 0:
// R = {10,10,10,10}, S = {6,6,6,6}.
//   Selective broadcast: R->S 40*4-40 = 120, S->R 24*4-24 = 72.
//   Full migration (either direction, to node 0): (40-10)+(24-6) = 48.
KeyPlacement SymmetricPlacement() {
  return MakePlacement({10, 10, 10, 10}, {6, 6, 6, 6}, /*tracker=*/0,
                       /*msg_bytes=*/0);
}

TEST(HotSplitTest, WidthOneReducesToMigrationPlan) {
  KeyPlacement p = SymmetricPlacement();
  KeySchedule sched = PlanOptimal(p);
  // The optimal plan migrates every non-kept target to one node.
  EXPECT_EQ(sched.plan.migrate.size(), 3u);
  EXPECT_EQ(sched.plan.cost, 48u);

  HotKeyPlan hot = PlanHotSplit(p, /*width_r=*/1, /*width_s=*/1,
                                /*max_split=*/1);
  ASSERT_TRUE(hot.valid);
  EXPECT_EQ(hot.split(), 1u);
  // The single worker is exactly the node the migration plan keeps, at
  // exactly the full-migration price, and both models agree on the
  // per-node bottleneck: everything funnels through that node.
  EXPECT_EQ(hot.workers[0], sched.plan.dest);
  EXPECT_EQ(hot.cost, sched.plan.cost);
  EXPECT_EQ(hot.bottleneck, PlanBottleneck(p, sched.dir, sched.plan));
  EXPECT_EQ(hot.bottleneck, 48u);
}

TEST(HotSplitTest, UncappedStopsBelowBroadcastDegeneracy) {
  KeyPlacement p = SymmetricPlacement();
  HotKeyPlan hot = PlanHotSplit(p, 1, 1, /*max_split=*/0);
  ASSERT_TRUE(hot.valid);
  // S->R, w = 3: broadcast S (24 bytes) to workers {0,1,2}; node 3's 10 R
  // rows fragment 4/3/3. Cost = 24*3 - 18 + (40 - 30) = 64; bottleneck =
  // 4 + (24 - 6) = 22.
  //
  // w = 4 would have bottleneck 18 but its cost (72) equals plain S->R
  // selective broadcast — the degenerate case the planner must reject —
  // so the uncapped search settles at w = 3.
  EXPECT_EQ(hot.dir, Direction::kStoR);
  EXPECT_EQ(hot.split(), 3u);
  EXPECT_EQ(hot.workers, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(hot.cost, 64u);
  EXPECT_EQ(hot.bottleneck, 22u);
  EXPECT_LT(hot.cost, SelectiveBroadcastCost(p, Direction::kStoR));
}

TEST(HotSplitTest, RankedWorkersAbsorbRemainderRows) {
  // Uneven placement: R = {8,8,8,8}, S = {9,3,0,0}, M = 0. The planner
  // broadcasts the small S side and fragments R. Workers ranked by local
  // bytes (r+s): node0 (17), node1 (11), then the node2/node3 tie breaks
  // to the lower id. At w = 3 only node3's 8 R rows move, chunked 3/3/2
  // (earlier workers take the remainder): cost = 12*3 - 12 + (32 - 24) =
  // 32, bottleneck = node2's 2 + (12 - 0) = 14. w = 4 would cost 36 —
  // exactly plain S->R broadcast — and is rejected as degenerate.
  KeyPlacement p = MakePlacement({8, 8, 8, 8}, {9, 3, 0, 0}, 0, 0);
  HotKeyPlan hot = PlanHotSplit(p, 1, 1, 0);
  ASSERT_TRUE(hot.valid);
  EXPECT_EQ(hot.dir, Direction::kStoR);
  EXPECT_EQ(hot.workers, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(hot.cost, 32u);
  EXPECT_EQ(hot.bottleneck, 14u);
}

TEST(HotSplitTest, MessageBytesArePriced) {
  // Same shape as SymmetricPlacement but M = 2 and tracker = 0: location
  // pairs to broadcast-side holders and fragment instructions to
  // non-worker holders each cost w * M, free for the tracker itself.
  KeyPlacement p = MakePlacement({10, 10, 10, 10}, {6, 6, 6, 6}, 0, 2);
  HotKeyPlan hot = PlanHotSplit(p, 1, 1, 3);
  ASSERT_TRUE(hot.valid);
  // S->R w=3: base 64; 3 non-tracker S holders get 3 pairs (18) and the
  // non-worker R holder (node 3, not tracker) gets 3 pairs (6): 88.
  EXPECT_EQ(hot.dir, Direction::kStoR);
  EXPECT_EQ(hot.split(), 3u);
  EXPECT_EQ(hot.cost, 88u);
}

TEST(HotSplitTest, EmptySideIsInvalid) {
  KeyPlacement p = MakePlacement({5, 5}, {0, 0}, 0, 0);
  EXPECT_FALSE(PlanHotSplit(p, 1, 1, 0).valid);
}

TEST(HotSplitTest, ThresholdDetectorBoundary) {
  // One key on two nodes: 10 R rows x 10 S rows = 100 output rows.
  std::vector<TrackEntry> r = {{1, 0, 4}, {1, 1, 6}};
  std::vector<TrackEntry> s = {{1, 0, 10}};
  PlacementIterator it(r, s, 1, 1, 0, 0);
  ASSERT_TRUE(it.Next());
  EXPECT_EQ(it.r_row_count(), 10u);
  EXPECT_EQ(it.s_row_count(), 10u);
  EXPECT_TRUE(it.OutputProductAtLeast(99));
  EXPECT_TRUE(it.OutputProductAtLeast(100));   // Inclusive boundary.
  EXPECT_FALSE(it.OutputProductAtLeast(101));
}

TEST(HotSplitTest, ThresholdDetectorSaturatesOnOverflow) {
  // 2^33 x 2^33 rows overflows uint64; the detector must treat that as
  // "at least any threshold", not wrap around to a small product.
  std::vector<TrackEntry> r = {{1, 0, 1ull << 33}};
  std::vector<TrackEntry> s = {{1, 1, 1ull << 33}};
  PlacementIterator it(r, s, 1, 1, 0, 0);
  ASSERT_TRUE(it.Next());
  EXPECT_TRUE(it.OutputProductAtLeast(~0ull));
}

// End-to-end: on a skewed workload, splitting must not change the join
// output (rows and checksum), must fire on the head keys, and must lower
// the per-node compute bottleneck; on the same workload with the
// threshold off, no fragment traffic may exist.
TEST(HotSplitTest, SplitOutputIdenticalAndComputeSpread) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 8;
  spec.key_domain = 4000;
  spec.r_rows = 8000;
  spec.s_rows = 8000;
  spec.r_theta = 1.2;
  spec.s_theta = 1.2;
  spec.seed = 99;
  Workload w = GenerateZipfWorkload(spec);

  JoinConfig config;
  config.key_bytes = 4;
  JoinResult off = RunTrackJoin4(w.r, w.s, config);
  config.hot_key_threshold = 10000;
  config.hot_key_max_split = 4;
  JoinResult on = RunTrackJoin4(w.r, w.s, config);

  EXPECT_EQ(off.output_rows, w.expected_output_rows);
  EXPECT_EQ(on.output_rows, off.output_rows);
  EXPECT_EQ(on.checksum, off.checksum);

  // Splitting actually happened: fragment instructions moved...
  EXPECT_GT(on.traffic.NetworkBytes(MessageType::kFragmentR) +
                on.traffic.NetworkBytes(MessageType::kFragmentS),
            0u);
  // ...and the run without a threshold moved none.
  EXPECT_EQ(off.traffic.NetworkBytes(MessageType::kFragmentR), 0u);
  EXPECT_EQ(off.traffic.NetworkBytes(MessageType::kFragmentS), 0u);

  // The head key's product no longer lands on one node: the max per-node
  // output (compute bottleneck) drops.
  ASSERT_EQ(off.node_output_rows.size(), spec.num_nodes);
  ASSERT_EQ(on.node_output_rows.size(), spec.num_nodes);
  uint64_t off_sum = 0, on_sum = 0;
  for (uint64_t v : off.node_output_rows) off_sum += v;
  for (uint64_t v : on.node_output_rows) on_sum += v;
  EXPECT_EQ(off_sum, off.output_rows);
  EXPECT_EQ(on_sum, on.output_rows);
  uint64_t off_max =
      *std::max_element(off.node_output_rows.begin(),
                        off.node_output_rows.end());
  uint64_t on_max = *std::max_element(on.node_output_rows.begin(),
                                      on.node_output_rows.end());
  EXPECT_LT(on_max, off_max);
}

// A uniform workload must be byte-identical with the feature enabled: the
// threshold is never reached, so the traffic matrices match exactly.
TEST(HotSplitTest, UniformWorkloadUnaffected) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 4;
  spec.key_domain = 2000;
  spec.r_rows = 6000;
  spec.s_rows = 6000;
  spec.r_theta = 0.0;
  spec.s_theta = 0.0;
  Workload w = GenerateZipfWorkload(spec);

  JoinConfig config;
  config.key_bytes = 4;
  JoinResult off = RunTrackJoin4(w.r, w.s, config);
  config.hot_key_threshold = 1000;  // Far above any uniform key's product.
  JoinResult on = RunTrackJoin4(w.r, w.s, config);

  EXPECT_EQ(on.checksum, off.checksum);
  EXPECT_EQ(on.traffic.TotalNetworkBytes(), off.traffic.TotalNetworkBytes());
  for (int t = 0; t < kNumMessageTypes; ++t) {
    EXPECT_EQ(on.traffic.NetworkBytes(static_cast<MessageType>(t)),
              off.traffic.NetworkBytes(static_cast<MessageType>(t)))
        << MessageTypeName(static_cast<MessageType>(t));
  }
}

}  // namespace
}  // namespace tj
