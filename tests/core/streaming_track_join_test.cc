// The streaming (pipelined-style) 2-phase driver must reproduce the
// sort-based driver exactly: same verified output and byte-identical
// network traffic, for any flush threshold.
#include "core/streaming_track_join.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

WorkloadSpec BaseSpec() {
  WorkloadSpec spec;
  spec.num_nodes = 5;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 10;
  spec.s_payload = 18;
  spec.r_unmatched = 80;
  spec.s_unmatched = 120;
  return spec;
}

class StreamingVsSorted
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(StreamingVsSorted, ByteIdenticalTraffic) {
  auto [dir_int, flush] = GetParam();
  Direction dir = static_cast<Direction>(dir_int);
  Workload w = GenerateWorkload(BaseSpec());
  JoinConfig config = TestConfig();

  JoinResult sorted = RunTrackJoin2(w.r, w.s, config, dir);
  JoinResult streaming = RunStreamingTrackJoin2(w.r, w.s, config, dir, flush);

  EXPECT_EQ(streaming.output_rows, sorted.output_rows);
  EXPECT_EQ(streaming.checksum.digest(), sorted.checksum.digest());
  // Traffic is byte-identical per class: streaming only changes batching.
  for (auto cls : {TrafficClass::kKeysAndCounts, TrafficClass::kKeysAndNodes,
                   TrafficClass::kRTuples, TrafficClass::kSTuples}) {
    EXPECT_EQ(streaming.traffic.NetworkBytes(cls),
              sorted.traffic.NetworkBytes(cls))
        << TrafficClassName(cls);
  }
  EXPECT_EQ(streaming.traffic.TotalLocalBytes(),
            sorted.traffic.TotalLocalBytes());
}

INSTANTIATE_TEST_SUITE_P(
    DirectionsAndFlush, StreamingVsSorted,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0ull, 64ull, 4096ull)));

TEST(StreamingTrackJoinTest, SmallFlushMeansManyMessagesSameBytes) {
  Workload w = GenerateWorkload(BaseSpec());
  JoinConfig config = TestConfig();
  JoinResult coarse =
      RunStreamingTrackJoin2(w.r, w.s, config, Direction::kRtoS, 0);
  JoinResult fine =
      RunStreamingTrackJoin2(w.r, w.s, config, Direction::kRtoS, 32);
  EXPECT_EQ(coarse.traffic.TotalNetworkBytes(),
            fine.traffic.TotalNetworkBytes());
  EXPECT_EQ(coarse.checksum.digest(), fine.checksum.digest());
}

TEST(StreamingTrackJoinTest, EmptyInputs) {
  PartitionedTable r("R", 3, 4), s("S", 3, 8);
  JoinResult result =
      RunStreamingTrackJoin2(r, s, TestConfig(), Direction::kRtoS);
  EXPECT_EQ(result.output_rows, 0u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
}

TEST(StreamingTrackJoinTest, RejectsCompressedWireFormat) {
  PartitionedTable r("R", 2, 4), s("S", 2, 4);
  JoinConfig config = TestConfig();
  config.delta_tracking = true;
  EXPECT_DEATH(RunStreamingTrackJoin2(r, s, config, Direction::kRtoS), "");
}

TEST(StreamingTrackJoinTest, PhaseNamesAreStreamingSpecific) {
  Workload w = GenerateWorkload(BaseSpec());
  JoinResult result =
      RunStreamingTrackJoin2(w.r, w.s, TestConfig(), Direction::kRtoS);
  ASSERT_EQ(result.phase_seconds.size(), 4u);
  EXPECT_EQ(result.phase_seconds[0].first, "stream & track keys");
  EXPECT_EQ(result.phase_seconds[3].first, "commit joins");
}

}  // namespace
}  // namespace tj
