#include "core/semi_join.h"

#include <gtest/gtest.h>

#include "baseline/hash_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig TestConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  return config;
}

WorkloadSpec SelectiveSpec() {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 200;
  spec.r_unmatched = 2000;  // 10% selectivity on R.
  spec.s_unmatched = 2000;
  spec.r_payload = 12;
  spec.s_payload = 24;
  return spec;
}

TEST(SemiJoinTest, PruningNeverDropsMatches) {
  Workload w = GenerateWorkload(SelectiveSpec());
  SemiJoinConfig semi;
  FilteredInputs pre = ExchangeFiltersAndPrune(w.r, w.s, semi);
  // All matched rows survive.
  EXPECT_GE(pre.r.TotalRows(), 200u);
  EXPECT_GE(pre.s.TotalRows(), 200u);
  // Most unmatched rows are pruned at 10 bits/key.
  EXPECT_GT(pre.r_rows_pruned, 1800u);
  EXPECT_GT(pre.s_rows_pruned, 1800u);
  EXPECT_EQ(pre.r.TotalRows() + pre.r_rows_pruned, w.r.TotalRows());
}

TEST(SemiJoinTest, FilteredHashJoinCorrect) {
  Workload w = GenerateWorkload(SelectiveSpec());
  JoinResult plain = RunHashJoin(w.r, w.s, TestConfig());
  JoinResult filtered = RunFilteredHashJoin(w.r, w.s, TestConfig(), {});
  EXPECT_EQ(filtered.output_rows, plain.output_rows);
  EXPECT_EQ(filtered.checksum.digest(), plain.checksum.digest());
}

TEST(SemiJoinTest, FilteredTrackJoinCorrectAllVersions) {
  Workload w = GenerateWorkload(SelectiveSpec());
  JoinResult plain = RunHashJoin(w.r, w.s, TestConfig());
  for (auto version : {TrackJoinVersion::k2Phase, TrackJoinVersion::k3Phase,
                       TrackJoinVersion::k4Phase}) {
    JoinResult filtered =
        RunFilteredTrackJoin(w.r, w.s, TestConfig(), {}, version);
    EXPECT_EQ(filtered.output_rows, plain.output_rows);
    EXPECT_EQ(filtered.checksum.digest(), plain.checksum.digest());
  }
}

TEST(SemiJoinTest, FilteringShrinksHashJoinTupleTraffic) {
  Workload w = GenerateWorkload(SelectiveSpec());
  JoinResult plain = RunHashJoin(w.r, w.s, TestConfig());
  JoinResult filtered = RunFilteredHashJoin(w.r, w.s, TestConfig(), {});
  uint64_t plain_tuples = plain.traffic.NetworkBytes(TrafficClass::kRTuples) +
                          plain.traffic.NetworkBytes(TrafficClass::kSTuples);
  uint64_t filtered_tuples =
      filtered.traffic.NetworkBytes(TrafficClass::kRTuples) +
      filtered.traffic.NetworkBytes(TrafficClass::kSTuples);
  EXPECT_LT(filtered_tuples, plain_tuples / 5);
  EXPECT_GT(filtered.traffic.NetworkBytes(TrafficClass::kFilter), 0u);
}

TEST(SemiJoinTest, TrackJoinTrackingShrinksButTuplesUnchanged) {
  // Track join already ships only matching tuples; Bloom filtering can
  // only thin the tracking phase.
  Workload w = GenerateWorkload(SelectiveSpec());
  JoinConfig config = TestConfig();
  JoinResult plain = RunTrackJoin4(w.r, w.s, config);
  JoinResult filtered =
      RunFilteredTrackJoin(w.r, w.s, config, {}, TrackJoinVersion::k4Phase);
  EXPECT_LT(filtered.traffic.NetworkBytes(TrafficClass::kKeysAndCounts),
            plain.traffic.NetworkBytes(TrafficClass::kKeysAndCounts));
  // Tuple traffic identical up to Bloom false positives (which never add
  // tuples — only tracking entries).
  EXPECT_EQ(filtered.traffic.NetworkBytes(TrafficClass::kRTuples),
            plain.traffic.NetworkBytes(TrafficClass::kRTuples));
  EXPECT_EQ(filtered.traffic.NetworkBytes(TrafficClass::kSTuples),
            plain.traffic.NetworkBytes(TrafficClass::kSTuples));
}

TEST(SemiJoinTest, NonSelectiveInputsGainNothing) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 500;
  Workload w = GenerateWorkload(spec);
  FilteredInputs pre = ExchangeFiltersAndPrune(w.r, w.s, {});
  EXPECT_EQ(pre.r_rows_pruned, 0u);
  EXPECT_EQ(pre.s_rows_pruned, 0u);
  EXPECT_GT(pre.filter_traffic.NetworkBytes(TrafficClass::kFilter), 0u);
}

}  // namespace
}  // namespace tj
