// Unit tests for the per-key scheduler's cost functions against
// hand-computed values, including the paper's worked examples (Figures 1-2).
#include "core/schedule.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

KeyPlacement MakePlacement(std::vector<uint64_t> r_sizes,
                           std::vector<uint64_t> s_sizes, uint32_t tracker,
                           uint64_t msg_bytes) {
  KeyPlacement p;
  for (uint32_t i = 0; i < r_sizes.size(); ++i) {
    if (r_sizes[i] > 0) p.r.push_back(NodeSize{i, r_sizes[i]});
  }
  for (uint32_t i = 0; i < s_sizes.size(); ++i) {
    if (s_sizes[i] > 0) p.s.push_back(NodeSize{i, s_sizes[i]});
  }
  p.tracker = tracker;
  p.msg_bytes = msg_bytes;
  return p;
}

// Figure 1 of the paper: R = {2,0,4,0,0}, S = {0,3,0,1,0}, unit-size
// tuples, message costs ignored (M = 0).
//
// 2-phase (R -> S): 6 R bytes to 2 S locations, no R local to S = 12.
// 3-phase picks S -> R: 4 S bytes to 2 R locations, none local = 8.
// 4-phase: migrate node3's single S tuple to node1, then S -> R:
//   migration 1 + (3+1) S bytes x 2 R locations - 0 local ... = 6? The
//   paper reports cost 6: migrate 1 (S from node3 to node1) + broadcast
//   4+1 = 5 to ... Let's simply assert the paper's totals.
TEST(ScheduleTest, PaperFigure1Example) {
  KeyPlacement p = MakePlacement({2, 0, 4, 0, 0}, {0, 3, 0, 1, 0},
                                 /*tracker=*/4, /*msg_bytes=*/0);
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kRtoS), 12u);
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kStoR), 8u);
  EXPECT_EQ(CheaperBroadcastDirection(p), Direction::kStoR);
  KeySchedule sched = PlanOptimal(p);
  EXPECT_EQ(sched.plan.cost, 6u);
}

// Figure 2 of the paper: R = {0,4,8,9,6}, S = {0,2,5,3,1}, M = 0.
// Selective broadcast R->S: Rall=27 to 4 S locations = 108, minus
// Rlocal=27 -> 81?? The figure caption says cost 0+33 for the broadcast of
// S (the figure optimizes the S->R direction): Sall=11 x 4 R-locations=44
// minus Slocal=11 -> 33. Then migrating node4 (S=1,R=6 -> saves), node1
// (S=2,R=4), keeping node2... The caption sequence ends at cost 10+14=24.
TEST(ScheduleTest, PaperFigure2Example) {
  KeyPlacement p = MakePlacement({0, 4, 8, 9, 6}, {0, 2, 5, 3, 1},
                                 /*tracker=*/0, /*msg_bytes=*/0);
  // S -> R plain selective broadcast: Sall=11, Rnodes(locations)=4,
  // Slocal = 11 (every S node also holds R): 11*4 - 11 = 33.
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kStoR), 33u);
  MigrationPlan plan = PlanMigrateAndBroadcast(p, Direction::kStoR);
  // Paper's walk: migrate node1 (cost 4+24=28), keep node3 (13+16=29
  // rejected), migrate node4 (10+14=24). Final cost 24, kept = {node2}.
  // Wait: the kept node maximizing |R|+|S| is node3 (9+3=12) vs node2
  // (8+5=13) -> node2 is forced kept. Decisions: node1: 2+4-11=-5 migrate;
  // node3: 3+9-11=+1 keep; node4: 1+6-11=-4 migrate. Cost = 33-5-4 = 24.
  EXPECT_EQ(plan.cost, 24u);
  EXPECT_EQ(plan.dest, 2u);
  EXPECT_EQ(plan.migrate, (std::vector<uint32_t>{1, 4}));
  // And the R->S direction is worse, so 4TJ picks S->R at 24.
  KeySchedule sched = PlanOptimal(p);
  EXPECT_EQ(sched.dir, Direction::kStoR);
  EXPECT_EQ(sched.plan.cost, 24u);
}

TEST(ScheduleTest, EmptySideCostsNothing) {
  KeyPlacement p = MakePlacement({5, 5}, {0, 0}, 0, 2);
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kRtoS), 0u);
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kStoR), 0u);
  EXPECT_EQ(PlanMigrateAndBroadcast(p, Direction::kRtoS).cost, 0u);
  EXPECT_EQ(PlanOptimal(p).plan.cost, 0u);
}

TEST(ScheduleTest, SingleNodeCollocatedIsFreeExceptMessages) {
  // All tuples of both tables on node 1; tracker on node 0; M = 3.
  KeyPlacement p = MakePlacement({0, 10}, {0, 20}, 0, 3);
  // R->S: Rall=10, Snodes=1, Rlocal=10, Rnodes=1 (node1 != tracker):
  // 10*1 - 10 + 1*1*3 = 3 (one location message).
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kRtoS), 3u);
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kStoR), 3u);
  EXPECT_EQ(PlanOptimal(p).plan.cost, 3u);
}

TEST(ScheduleTest, TrackerLocationMessagesAreFree) {
  // Broadcast side entirely on the tracker node: no location messages.
  KeyPlacement p = MakePlacement({10, 0}, {0, 20}, /*tracker=*/0,
                                 /*msg_bytes=*/5);
  // R->S: Rall=10 to 1 S node, Rlocal=0, Rnodes=0 (only node0==tracker):
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kRtoS), 10u);
  // S->R: Sall=20 to 1 R node, Slocal=0, Snodes(bcast)=1 (node1!=tracker):
  EXPECT_EQ(SelectiveBroadcastCost(p, Direction::kStoR), 20u + 5u);
  EXPECT_EQ(PlanOptimal(p).dir, Direction::kRtoS);
}

TEST(ScheduleTest, MigrationConsolidatesToHeaviestNode) {
  // S spread over 3 nodes, R huge on one node: everything should meet at
  // the R node if it holds S too, else at the largest S node.
  KeyPlacement p = MakePlacement({0, 0, 0, 100}, {7, 8, 9, 10}, 0, 0);
  MigrationPlan plan = PlanMigrateAndBroadcast(p, Direction::kRtoS);
  EXPECT_EQ(plan.dest, 3u);  // |R|+|S| = 110 dominates.
  // Nodes 0,1,2 all migrate: delta_i = 0 + s_i - 100 < 0.
  EXPECT_EQ(plan.migrate, (std::vector<uint32_t>{0, 1, 2}));
  // Cost: broadcast phase is free (R stays at node3, the only location);
  // migrations cost 7+8+9 = 24.
  EXPECT_EQ(plan.cost, 24u);
}

TEST(ScheduleTest, TieBreaksPreferRtoS) {
  KeyPlacement p = MakePlacement({4, 0}, {0, 4}, 0, 0);
  EXPECT_EQ(CheaperBroadcastDirection(p), Direction::kRtoS);
  EXPECT_EQ(PlanOptimal(p).dir, Direction::kRtoS);
}

TEST(ScheduleTest, MigrationInstructionCostCountsUnlessTracker) {
  // Tracker is node 0 and holds S; migrating it away needs no instruction
  // message, while migrating node 1 costs one instruction of M bytes.
  KeyPlacement with_tracker_s =
      MakePlacement({0, 0, 50}, {3, 0, 4}, /*tracker=*/0, /*msg_bytes=*/2);
  MigrationPlan plan =
      PlanMigrateAndBroadcast(with_tracker_s, Direction::kRtoS);
  // dest = node2 (50+4). node0 migrates: delta = 0+3-50-(1*2) = -49 (no +M
  // because it's the tracker). Cost = bcast(50*2 - 50 + 1*2*2 = 54) - 49 = 5.
  EXPECT_EQ(plan.dest, 2u);
  EXPECT_EQ(plan.migrate, (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan.cost, 5u);
}

}  // namespace
}  // namespace tj
