// Equivalence tests for the pipelined (event-driven micro-batch) track
// join: traffic matrices, checksums, schedules and EXPLAIN audits must be
// byte-identical to the barrier driver's, across versions, scheduling
// features, chunk sizes and inbox budgets — while the modeled makespan
// beats the barrier reference on pipeline-friendly workloads. Fault
// injection must preserve output parity; crashes must fail both drivers.
#include "core/pipelined_track_join.h"

#include <gtest/gtest.h>

#include <vector>

#include <cmath>
#include <string>

#include "core/schedule.h"
#include "core/track_join.h"
#include "costmodel/pipeline.h"
#include "net/failure.h"
#include "obs/blame.h"
#include "workload/generator.h"

namespace tj {
namespace {

JoinConfig BaseConfig() {
  JoinConfig config;
  config.key_bytes = 4;
  config.count_bytes = 1;
  config.node_bytes = 1;
  return config;
}

Workload SmallWorkload(uint32_t nodes = 4) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 3000;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_unmatched = 500;
  spec.s_unmatched = 700;
  Workload w = GenerateWorkload(spec);
  return w;
}

void ExpectAuditsEqual(const ScheduleAuditLog& barrier,
                       const ScheduleAuditLog& pipelined) {
  const auto a = barrier.Collect();
  const auto b = pipelined.Collect();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "audit " << i;
    EXPECT_EQ(a[i].chosen_dir, b[i].chosen_dir) << "key " << a[i].key;
    EXPECT_EQ(a[i].chosen_cost, b[i].chosen_cost) << "key " << a[i].key;
    EXPECT_EQ(a[i].chosen_migrations, b[i].chosen_migrations)
        << "key " << a[i].key;
    EXPECT_EQ(a[i].chosen_split, b[i].chosen_split) << "key " << a[i].key;
    EXPECT_EQ(a[i].cls, b[i].cls) << "key " << a[i].key;
    EXPECT_EQ(a[i].hash_join_cost, b[i].hash_join_cost) << "key " << a[i].key;
  }
}

// Runs both drivers on the same inputs and checks full equivalence:
// byte-identical traffic (network, local and retransmit ledgers all
// compared cell by cell), checksum, cardinalities and EXPLAIN audits.
void ExpectPipelinedMatchesBarrier(const Workload& w, JoinConfig config,
                                   TrackJoinVersion version) {
  ScheduleAuditLog barrier_audit, pipelined_audit;
  JoinConfig barrier_config = config;
  barrier_config.pipeline.enabled = false;
  barrier_config.schedule_audit = &barrier_audit;
  Result<JoinResult> barrier =
      TryRunTrackJoin(w.r, w.s, barrier_config, version);
  ASSERT_TRUE(barrier.ok()) << barrier.status().ToString();

  JoinConfig pipelined_config = config;
  pipelined_config.schedule_audit = &pipelined_audit;
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, pipelined_config, version);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();

  EXPECT_EQ(pipelined->output_rows, barrier->output_rows);
  EXPECT_EQ(pipelined->output_rows, w.expected_output_rows);
  EXPECT_EQ(pipelined->node_output_rows, barrier->node_output_rows);
  EXPECT_TRUE(pipelined->checksum == barrier->checksum);
  EXPECT_TRUE(pipelined->traffic == barrier->traffic)
      << "traffic matrices differ";
  ExpectAuditsEqual(barrier_audit, pipelined_audit);
  EXPECT_GT(pipelined->makespan_seconds, 0.0);
  EXPECT_GT(pipelined->barrier_makespan_seconds, 0.0);
}

TEST(PipelinedTrackJoinTest, ThreePhaseByteIdenticalToBarrier) {
  ExpectPipelinedMatchesBarrier(SmallWorkload(), BaseConfig(),
                                TrackJoinVersion::k3Phase);
}

TEST(PipelinedTrackJoinTest, FourPhaseByteIdenticalToBarrier) {
  ExpectPipelinedMatchesBarrier(SmallWorkload(), BaseConfig(),
                                TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, FourPhaseWithBalanceByteIdentical) {
  JoinConfig config = BaseConfig();
  config.balance_loads = true;
  ExpectPipelinedMatchesBarrier(SmallWorkload(), config,
                                TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, FourPhaseWithHotSplitByteIdentical) {
  // Skewed repeats make real hot keys; the split decisions (and the
  // fragment instruction groups, which must never be sliced mid-group)
  // have to come out identical to the barrier run's.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 400;
  spec.r_multiplicity = 6;
  spec.s_multiplicity = 12;
  spec.r_pattern = {3, 2, 1};
  spec.s_pattern = {6, 4, 2};
  Workload w = GenerateWorkload(spec);
  JoinConfig config = BaseConfig();
  config.balance_loads = true;
  config.hot_key_threshold = 36;
  config.hot_key_max_split = 3;
  ExpectPipelinedMatchesBarrier(w, config, TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, DrrPolicyByteIdenticalToBarrier) {
  // The egress scheduler only reorders modeled NIC time; the full
  // equivalence battery (traffic, checksum, audits) must hold under DRR
  // exactly as under FIFO, for both pipelined variants.
  JoinConfig config = BaseConfig();
  config.pipeline.drr = true;
  ExpectPipelinedMatchesBarrier(SmallWorkload(), config,
                                TrackJoinVersion::k3Phase);
  ExpectPipelinedMatchesBarrier(SmallWorkload(), config,
                                TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, DrrHotSplitTinyQuantumByteIdentical) {
  // Hot-split fragment groups under a sub-chunk quantum: heavy per-key
  // bursts cross the scheduler in many top-up rounds, and the split
  // decisions must still match the barrier run's exactly.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 400;
  spec.r_multiplicity = 6;
  spec.s_multiplicity = 12;
  spec.r_pattern = {3, 2, 1};
  spec.s_pattern = {6, 4, 2};
  Workload w = GenerateWorkload(spec);
  JoinConfig config = BaseConfig();
  config.hot_key_threshold = 36;
  config.hot_key_max_split = 3;
  config.pipeline.drr = true;
  config.pipeline.drr_quantum_bytes = 64;
  ExpectPipelinedMatchesBarrier(w, config, TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, FifoAndDrrShareLedgersButNotTiming) {
  // A/B on identical inputs: the two policies must agree on every byte
  // ledger and the barrier reference (pure per-stage accounting) while
  // being free to disagree on the event-driven makespan.
  Workload w = SmallWorkload();
  JoinConfig fifo_config = BaseConfig();
  JoinConfig drr_config = BaseConfig();
  drr_config.pipeline.drr = true;
  Result<JoinResult> fifo =
      TryRunPipelinedTrackJoin(w.r, w.s, fifo_config, TrackJoinVersion::k4Phase);
  Result<JoinResult> drr =
      TryRunPipelinedTrackJoin(w.r, w.s, drr_config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(fifo.ok()) << fifo.status().ToString();
  ASSERT_TRUE(drr.ok()) << drr.status().ToString();
  EXPECT_TRUE(drr->traffic == fifo->traffic);
  EXPECT_TRUE(drr->checksum == fifo->checksum);
  EXPECT_EQ(drr->output_rows, fifo->output_rows);
  EXPECT_EQ(drr->node_output_rows, fifo->node_output_rows);
  EXPECT_DOUBLE_EQ(drr->barrier_makespan_seconds,
                   fifo->barrier_makespan_seconds);
  EXPECT_GT(drr->makespan_seconds, 0.0);
}

TEST(PipelinedTrackJoinTest, DirectionStoRByteIdentical) {
  Workload w = SmallWorkload();
  JoinConfig config = BaseConfig();
  Result<JoinResult> barrier = TryRunTrackJoin(
      w.r, w.s, config, TrackJoinVersion::k3Phase, Direction::kStoR);
  Result<JoinResult> pipelined = TryRunPipelinedTrackJoin(
      w.r, w.s, config, TrackJoinVersion::k3Phase, Direction::kStoR);
  ASSERT_TRUE(barrier.ok());
  ASSERT_TRUE(pipelined.ok());
  EXPECT_TRUE(pipelined->traffic == barrier->traffic);
  EXPECT_TRUE(pipelined->checksum == barrier->checksum);
}

TEST(PipelinedTrackJoinTest, MaterializedOutputMatchesCardinalityAndDigest) {
  Workload w = SmallWorkload();
  JoinConfig config = BaseConfig();
  config.materialize = true;
  Result<JoinResult> barrier =
      TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(barrier.ok());
  ASSERT_TRUE(pipelined.ok());
  ASSERT_TRUE(pipelined->output.has_value());
  ASSERT_TRUE(barrier->output.has_value());
  // Pairs join at the same nodes; within a node the pipelined driver emits
  // them in arrival order, so compare per-node cardinalities plus the
  // order-independent checksum, not raw bytes.
  ASSERT_EQ(pipelined->output->num_nodes(), barrier->output->num_nodes());
  for (uint32_t node = 0; node < barrier->output->num_nodes(); ++node) {
    EXPECT_EQ(pipelined->output->node(node).size(),
              barrier->output->node(node).size())
        << "node " << node;
  }
  EXPECT_TRUE(pipelined->checksum == barrier->checksum);
}

TEST(PipelinedTrackJoinTest, SingleKeyTablesAreOneRange) {
  // Every tuple shares one key: the whole run is a single key range whose
  // final frontier batch does all the work, and the key is hot enough to
  // split when asked.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 1;
  spec.r_multiplicity = 48;
  spec.s_multiplicity = 64;
  Workload w = GenerateWorkload(spec);
  JoinConfig config = BaseConfig();
  ExpectPipelinedMatchesBarrier(w, config, TrackJoinVersion::k3Phase);
  config.hot_key_threshold = 2;
  config.hot_key_max_split = 4;
  ExpectPipelinedMatchesBarrier(w, config, TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, EmptyInputsTerminate) {
  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 0;
  Workload w = GenerateWorkload(spec);
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, BaseConfig(),
                               TrackJoinVersion::k4Phase);
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  EXPECT_EQ(pipelined->output_rows, 0u);
}

TEST(PipelinedTrackJoinTest, TinyChunksAndInboxBudgetStayByteIdentical) {
  // Aggressive slicing (256-byte chunks) and a starved inbox (one chunk of
  // window per link) maximize credit stalls; results must not move.
  Workload w = SmallWorkload();
  JoinConfig config = BaseConfig();
  config.pipeline.chunk_bytes = 256;
  config.pipeline.inbox_budget_bytes = 256 * 4;
  ExpectPipelinedMatchesBarrier(w, config, TrackJoinVersion::k4Phase);
}

TEST(PipelinedTrackJoinTest, StragglerSourceSaturatesInboxButResultsHold) {
  // A slow source under a tight inbox budget: every other node races ahead,
  // the straggler's streams gate the frontier, and flow control holds
  // memory bounded. Traffic stays byte-identical (straggling is modeled
  // time only, pristine wire path).
  Workload w = SmallWorkload();
  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 0.5;
  JoinConfig config = BaseConfig();
  config.fault_policy = &policy;
  config.pipeline.chunk_bytes = 512;
  config.pipeline.inbox_budget_bytes = 512 * 4;

  JoinConfig pristine = BaseConfig();
  Result<JoinResult> barrier =
      TryRunTrackJoin(w.r, w.s, pristine, TrackJoinVersion::k4Phase);
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(barrier.ok());
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  EXPECT_TRUE(pipelined->traffic == barrier->traffic);
  EXPECT_TRUE(pipelined->checksum == barrier->checksum);
  // The straggler's late start is on the critical path.
  EXPECT_GT(pipelined->makespan_seconds, 0.5);
}

TEST(PipelinedTrackJoinTest, DeliveryFaultsPreserveOutput) {
  // Under injected delivery faults the wire path retries per chunk; the
  // output must match the pristine barrier run exactly (only retransmit
  // accounting and timing may differ).
  Workload w = SmallWorkload();
  JoinConfig pristine = BaseConfig();
  Result<JoinResult> reference =
      TryRunTrackJoin(w.r, w.s, pristine, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(reference.ok());

  struct Mode {
    const char* name;
    FaultPolicy policy;
  };
  std::vector<Mode> modes(4);
  modes[0].name = "drop";
  modes[0].policy.drop = 0.05;
  modes[1].name = "corrupt";
  modes[1].policy.corrupt = 0.05;
  modes[2].name = "duplicate";
  modes[2].policy.duplicate = 0.05;
  modes[3].name = "reorder";
  modes[3].policy.reorder = 0.05;
  for (const Mode& mode : modes) {
    JoinConfig config = BaseConfig();
    config.fault_policy = &mode.policy;
    config.fault_seed = 17;
    Result<JoinResult> pipelined = TryRunPipelinedTrackJoin(
        w.r, w.s, config, TrackJoinVersion::k4Phase);
    ASSERT_TRUE(pipelined.ok())
        << mode.name << ": " << pipelined.status().ToString();
    EXPECT_TRUE(pipelined->checksum == reference->checksum) << mode.name;
    EXPECT_EQ(pipelined->output_rows, reference->output_rows) << mode.name;
  }
}

TEST(PipelinedTrackJoinTest, CrashFailsBothDriversWithDataLoss) {
  Workload w = SmallWorkload();
  FaultPolicy policy;
  policy.crash_node = 2;
  JoinConfig config = BaseConfig();
  config.fault_policy = &policy;
  Result<JoinResult> barrier =
      TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_FALSE(barrier.ok());
  ASSERT_FALSE(pipelined.ok());
  EXPECT_EQ(barrier.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(pipelined.status().code(), StatusCode::kDataLoss);
}

TEST(PipelinedTrackJoinTest, CrashDiagnosticsNameTheDeadNode) {
  Workload w = SmallWorkload();
  FaultPolicy policy;
  policy.crash_node = 0;
  RunDiagnostics diagnostics;
  JoinConfig config = BaseConfig();
  config.fault_policy = &policy;
  config.diagnostics = &diagnostics;
  Result<JoinResult> pipelined =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k3Phase);
  ASSERT_FALSE(pipelined.ok());
  ASSERT_EQ(diagnostics.failure.dead_nodes.size(), 1u);
  EXPECT_EQ(diagnostics.failure.dead_nodes[0], 0u);
}

TEST(PipelinedTrackJoinTest, MakespanBeatsBarrierOnStreamingWorkload) {
  // A data-heavy workload with real per-range work: tracking, scheduling
  // and transfers overlap, so the critical path lands well under the
  // barrier-equivalent sum of per-stage maxima.
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 40000;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  Workload w = GenerateWorkload(spec);
  Result<JoinResult> pipelined = TryRunPipelinedTrackJoin(
      w.r, w.s, BaseConfig(), TrackJoinVersion::k4Phase);
  ASSERT_TRUE(pipelined.ok());
  EXPECT_LT(pipelined->makespan_seconds,
            0.95 * pipelined->barrier_makespan_seconds);
}

TEST(PipelinedTrackJoinTest, ProfileReportsPipelinedStages) {
  Workload w = SmallWorkload();
  Result<JoinResult> pipelined = TryRunPipelinedTrackJoin(
      w.r, w.s, BaseConfig(), TrackJoinVersion::k4Phase);
  ASSERT_TRUE(pipelined.ok());
  EXPECT_EQ(pipelined->profile.algorithm, "4tj-p");
  EXPECT_EQ(pipelined->profile.run_max_node_bytes,
            pipelined->traffic.MaxNodeBytes());
  std::vector<std::string> names;
  for (const StepRecord& step : pipelined->profile.steps) {
    names.push_back(step.phase);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"source", "track", "schedule",
                                             "transfer", "join"}));
}

// The blame report's reconciliation contract: every (node, resource,
// stage, wait-class) bucket sums back to the makespan to the exact
// microsecond, across versions, cluster sizes, hot-split on/off and fault
// modes. Zero tolerance — modeled time is deterministic.
TEST(PipelinedTrackJoinTest, BlameReconciliationMatrix) {
  FaultPolicy drop_policy;
  drop_policy.drop = 0.05;
  FaultPolicy straggler_policy;
  straggler_policy.slow_node = 1;
  straggler_policy.slowdown_seconds = 0.5;
  struct FaultMode {
    const char* name;
    const FaultPolicy* policy;
  };
  const std::vector<FaultMode> modes = {
      {"pristine", nullptr},
      {"drop", &drop_policy},
      {"straggler", &straggler_policy},
  };
  for (uint32_t nodes : {4u, 8u}) {
    Workload w = SmallWorkload(nodes);
    for (TrackJoinVersion version :
         {TrackJoinVersion::k3Phase, TrackJoinVersion::k4Phase}) {
      for (bool hot_split : {false, true}) {
        if (hot_split && version != TrackJoinVersion::k4Phase) continue;
        for (bool drr : {false, true}) {
        for (const FaultMode& mode : modes) {
          JoinConfig config = BaseConfig();
          config.collect_blame = true;
          config.fault_policy = mode.policy;
          config.fault_seed = 17;
          config.pipeline.drr = drr;
          if (hot_split) {
            config.hot_key_threshold = 6;
            config.hot_key_max_split = 3;
          }
          SCOPED_TRACE(std::string(mode.name) + " nodes=" +
                       std::to_string(nodes) + " version=" +
                       std::to_string(static_cast<int>(version)) +
                       " hot_split=" + std::to_string(hot_split) +
                       " drr=" + std::to_string(drr));
          Result<JoinResult> run =
              TryRunPipelinedTrackJoin(w.r, w.s, config, version);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          ASSERT_TRUE(run->blame.has_value());
          const BlameReport& blame = *run->blame;
          EXPECT_EQ(blame.makespan_us,
                    std::llround(run->makespan_seconds * 1e6));
          EXPECT_EQ(blame.bucket_sum_us, blame.makespan_us);
          EXPECT_TRUE(blame.reconciled);
          int64_t class_sum = 0;
          for (int c = 0; c < kNumBlameClasses; ++c) {
            EXPECT_GE(blame.class_us[c], 0);
            class_sum += blame.class_us[c];
          }
          EXPECT_EQ(class_sum, blame.makespan_us);
          int64_t bucket_sum = 0;
          for (const BlameBucket& bucket : blame.buckets) {
            EXPECT_GT(bucket.micros, 0);
            EXPECT_LT(bucket.node, nodes);
            bucket_sum += bucket.micros;
          }
          EXPECT_EQ(bucket_sum, blame.makespan_us);
          for (const BlameEdge& edge : blame.top_edges) {
            EXPECT_LE(0, edge.start_us);
            EXPECT_LT(edge.start_us, edge.end_us);
            EXPECT_LE(edge.end_us, blame.makespan_us);
          }
          // drr_wait is a DRR-only class by construction.
          if (!drr) {
            EXPECT_EQ(blame.class_us[static_cast<int>(BlameClass::kDrrWait)],
                      0);
          }
        }
        }
      }
    }
  }
}

TEST(PipelinedTrackJoinTest, BlameIsPassiveAndDeterministic) {
  // Collecting blame must not move a single byte or bit of the result
  // (traffic, checksum, makespan), and two identical runs must serialize
  // to byte-identical JSON.
  Workload w = SmallWorkload();
  JoinConfig plain = BaseConfig();
  Result<JoinResult> without =
      TryRunPipelinedTrackJoin(w.r, w.s, plain, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(without.ok());

  JoinConfig config = BaseConfig();
  config.collect_blame = true;
  Result<JoinResult> first =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  Result<JoinResult> second =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->traffic == without->traffic);
  EXPECT_TRUE(first->checksum == without->checksum);
  EXPECT_DOUBLE_EQ(first->makespan_seconds, without->makespan_seconds);
  ASSERT_TRUE(first->blame.has_value());
  ASSERT_TRUE(second->blame.has_value());
  EXPECT_EQ(first->blame->algorithm, "4tj-p");
  EXPECT_EQ(ToJson(*first->blame), ToJson(*second->blame));
}

TEST(PipelinedTrackJoinTest, BlameMakespanSitsInsideCostModelBounds) {
  // Cost-model cross-check: the blame-reconciled makespan must respect the
  // de-pipelined upper bound computed from the run's own step profile, and
  // the bounds themselves must be ordered. (The lower bound is the
  // perfect-overlap ideal; real schedules sit between the two.)
  Workload w = SmallWorkload();
  JoinConfig config = BaseConfig();
  config.collect_blame = true;
  Result<JoinResult> run =
      TryRunPipelinedTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->blame.has_value());
  const PipelineBounds bounds = ProfileMakespanBounds(run->profile);
  EXPECT_LE(bounds.lower_seconds, bounds.upper_seconds);
  const double makespan = run->blame->makespan_us / 1e6;
  EXPECT_LE(makespan, bounds.upper_seconds * (1 + 1e-9));
  EXPECT_GT(makespan, 0.0);
}

TEST(PipelinedTrackJoinTest, RejectsTwoPhaseAndCompressedWireFormats) {
  Workload w = SmallWorkload();
  EXPECT_FALSE(TryRunPipelinedTrackJoin(w.r, w.s, BaseConfig(),
                                        TrackJoinVersion::k2Phase)
                   .ok());
  JoinConfig delta = BaseConfig();
  delta.delta_tracking = true;
  EXPECT_FALSE(
      TryRunPipelinedTrackJoin(w.r, w.s, delta, TrackJoinVersion::k3Phase)
          .ok());
  JoinConfig group = BaseConfig();
  group.group_locations = true;
  EXPECT_FALSE(
      TryRunPipelinedTrackJoin(w.r, w.s, group, TrackJoinVersion::k4Phase)
          .ok());
}

}  // namespace
}  // namespace tj
