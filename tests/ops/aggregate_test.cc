#include "ops/aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "common/hash.h"
#include "common/rng.h"
#include "workload/generator.h"

namespace tj {
namespace {

/// Builds a table whose rows carry a 4-byte group id and a 4-byte value in
/// the payload.
PartitionedTable MakeInput(uint32_t nodes, uint64_t rows, uint64_t groups,
                           uint64_t seed,
                           std::map<uint64_t, std::pair<uint64_t, uint64_t>>*
                               expected) {
  PartitionedTable table("in", nodes, 8);
  Rng rng(seed);
  uint8_t payload[8];
  for (uint64_t i = 0; i < rows; ++i) {
    uint64_t group = rng.Below(groups);
    uint64_t value = rng.Below(100000);
    for (int b = 0; b < 4; ++b) payload[b] = static_cast<uint8_t>(group >> (8 * b));
    for (int b = 0; b < 4; ++b) {
      payload[4 + b] = static_cast<uint8_t>(value >> (8 * b));
    }
    table.node(rng.Below(nodes)).Append(i, payload);
    auto& e = (*expected)[group];
    e.first += value;
    e.second += 1;
  }
  return table;
}

AggregateConfig GroupByPayloadConfig() {
  AggregateConfig config;
  config.group_by = FieldRef::Payload(0, 4);
  config.value = FieldRef::Payload(4, 4);
  return config;
}

std::map<uint64_t, std::pair<uint64_t, uint64_t>> Collect(
    const AggregateResult& result, uint32_t sum_bytes) {
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> out;
  for (uint32_t node = 0; node < result.output.num_nodes(); ++node) {
    const TupleBlock& block = result.output.node(node);
    for (uint64_t row = 0; row < block.size(); ++row) {
      const uint8_t* p = block.Payload(row);
      uint64_t sum = 0, count = 0;
      for (uint32_t i = 0; i < sum_bytes; ++i) {
        sum |= static_cast<uint64_t>(p[i]) << (8 * i);
      }
      for (uint32_t i = 0; i < 8; ++i) {
        count |= static_cast<uint64_t>(p[sum_bytes + i]) << (8 * i);
      }
      EXPECT_FALSE(out.count(block.Key(row)));  // Groups appear once.
      out[block.Key(row)] = {sum, count};
    }
  }
  return out;
}

TEST(AggregateTest, MatchesReferenceBothStrategies) {
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> expected;
  PartitionedTable input = MakeInput(4, 5000, 100, 3, &expected);

  for (bool pre : {false, true}) {
    AggregateConfig config = GroupByPayloadConfig();
    config.pre_aggregate = pre;
    AggregateResult result = RunDistributedAggregate(input, config);
    EXPECT_EQ(result.groups, expected.size()) << pre;
    EXPECT_EQ(result.input_rows, 5000u);
    auto got = Collect(result, config.sum_bytes);
    EXPECT_EQ(got, expected) << "pre_aggregate=" << pre;
  }
}

TEST(AggregateTest, PreAggregationShrinksTraffic) {
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> expected;
  PartitionedTable input = MakeInput(8, 40000, 50, 5, &expected);

  AggregateConfig naive = GroupByPayloadConfig();
  naive.pre_aggregate = false;
  AggregateConfig pre = GroupByPayloadConfig();
  AggregateResult naive_run = RunDistributedAggregate(input, naive);
  AggregateResult pre_run = RunDistributedAggregate(input, pre);
  // 40000 rows vs <= 8*50 partials.
  EXPECT_LT(pre_run.traffic.TotalNetworkBytes() * 50,
            naive_run.traffic.TotalNetworkBytes());
}

TEST(AggregateTest, ManyGroupsMakePreAggregationPointless) {
  // Every row its own group: pre-aggregation cannot reduce anything.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> expected;
  PartitionedTable input = MakeInput(4, 3000, 1 << 30, 7, &expected);
  AggregateConfig naive = GroupByPayloadConfig();
  naive.pre_aggregate = false;
  AggregateConfig pre = GroupByPayloadConfig();
  AggregateResult naive_run = RunDistributedAggregate(input, naive);
  AggregateResult pre_run = RunDistributedAggregate(input, pre);
  EXPECT_EQ(pre_run.traffic.TotalNetworkBytes(),
            naive_run.traffic.TotalNetworkBytes());
}

TEST(AggregateTest, GroupByJoinKey) {
  PartitionedTable table("in", 3, 4);
  uint8_t value[4] = {10, 0, 0, 0};
  table.node(0).Append(7, value);
  table.node(1).Append(7, value);
  value[0] = 5;
  table.node(2).Append(9, value);
  AggregateConfig config;  // Defaults: group by key, value = payload[0..4).
  AggregateResult result = RunDistributedAggregate(table, config);
  auto got = Collect(result, config.sum_bytes);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[7], (std::pair<uint64_t, uint64_t>{20, 2}));
  EXPECT_EQ(got[9], (std::pair<uint64_t, uint64_t>{5, 1}));
}

TEST(AggregateTest, EmptyInput) {
  PartitionedTable table("in", 2, 8);
  AggregateResult result =
      RunDistributedAggregate(table, GroupByPayloadConfig());
  EXPECT_EQ(result.groups, 0u);
  EXPECT_EQ(result.traffic.TotalNetworkBytes(), 0u);
}

TEST(AggregateTest, OutputResidencyByGroupHash) {
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> expected;
  PartitionedTable input = MakeInput(4, 2000, 64, 11, &expected);
  AggregateResult result =
      RunDistributedAggregate(input, GroupByPayloadConfig());
  for (uint32_t node = 0; node < 4; ++node) {
    const TupleBlock& block = result.output.node(node);
    for (uint64_t row = 0; row < block.size(); ++row) {
      EXPECT_EQ(HashPartition(block.Key(row), 4), node);
    }
  }
}

}  // namespace
}  // namespace tj
