#include "common/status.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad width");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad width");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  TJ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfIfEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssign(int x, int* out) {
  TJ_ASSIGN_OR_RETURN(*out, HalfIfEven(x));
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssign(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssign(7, &out).ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

}  // namespace
}  // namespace tj
