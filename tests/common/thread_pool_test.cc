#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tj {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(50, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 50 * 49 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace tj
