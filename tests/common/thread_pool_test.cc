#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace tj {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(50, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 50 * 49 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

// Regression: ParallelFor used to drain the whole pool, so an unrelated
// in-flight task kept the batch blocked (and this test hung here).
TEST(ThreadPoolTest, ParallelForWaitsForItsBatchOnly) {
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> gated_done{false};
  pool.Submit([&, gate] {
    gate.wait();
    gated_done.store(true);
  });
  std::vector<std::atomic<int>> hits(200);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_FALSE(gated_done.load());  // The batch did not wait for the task.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  release.set_value();
  pool.Wait();  // Whole-pool drain still covers unrelated tasks.
  EXPECT_TRUE(gated_done.load());
}

// Regression: two concurrent ParallelFor batches used to block on each
// other; the fast batch must finish while the slow one is still gated.
TEST(ThreadPoolTest, ConcurrentBatchesDoNotBlockEachOther) {
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> slow_started{0};
  std::atomic<int> slow_done{0};
  std::thread slow_caller([&] {
    pool.ParallelFor(2, [&](size_t) {
      slow_started.fetch_add(1);
      gate.wait();
      slow_done.fetch_add(1);
    });
  });
  while (slow_started.load() < 2) std::this_thread::yield();

  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(slow_done.load(), 0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  release.set_value();
  slow_caller.join();
  EXPECT_EQ(slow_done.load(), 2);
}

TEST(ThreadPoolTest, ManyConcurrentBatchesCoverAllIndexes) {
  ThreadPool pool(4);
  constexpr int kBatches = 8;
  constexpr size_t kPerBatch = 100;
  std::vector<std::atomic<int>> hits(kBatches * kPerBatch);
  std::vector<std::thread> callers;
  for (int b = 0; b < kBatches; ++b) {
    callers.emplace_back([&, b] {
      pool.ParallelFor(kPerBatch, [&, b](size_t i) {
        hits[b * kPerBatch + i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Nested use: a pool task running its own ParallelFor on the same pool.
// The calling thread participates in its batch, so this terminates even
// when every worker is already occupied by the outer batch (the join
// kernels nest exactly like this: per-node phase work on the pool, chunked
// partition/sort inside it).
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForOnSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](size_t) {
    pool.ParallelFor(3, [&](size_t) {
      pool.ParallelFor(3, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 27);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace tj
