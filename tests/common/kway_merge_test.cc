#include "common/kway_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace tj {
namespace {

/// Minimal cursor over a borrowed sorted vector.
struct VecCursor {
  const std::vector<uint64_t>* v = nullptr;
  size_t i = 0;

  bool Valid() const { return i < v->size(); }
  void Next() { ++i; }
  uint64_t head() const { return (*v)[i]; }
};

struct HeadLess {
  bool operator()(const VecCursor& a, const VecCursor& b) const {
    return a.head() < b.head();
  }
};

std::vector<uint64_t> Drain(std::vector<VecCursor>* cursors) {
  LoserTree<VecCursor, HeadLess> tree(cursors);
  std::vector<uint64_t> out;
  while (!tree.Done()) {
    out.push_back(tree.Top().head());
    tree.Pop();
  }
  return out;
}

std::vector<VecCursor> Cursors(const std::vector<std::vector<uint64_t>>& runs) {
  std::vector<VecCursor> cursors;
  for (const auto& run : runs) cursors.push_back(VecCursor{&run, 0});
  return cursors;
}

TEST(KwayMergeTest, MergesSortedRuns) {
  std::vector<std::vector<uint64_t>> runs = {
      {1, 4, 9}, {2, 3, 10}, {5, 6, 7, 8}};
  auto cursors = Cursors(runs);
  EXPECT_EQ(Drain(&cursors),
            (std::vector<uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(KwayMergeTest, NoCursorsIsDone) {
  std::vector<VecCursor> cursors;
  LoserTree<VecCursor, HeadLess> tree(&cursors);
  EXPECT_TRUE(tree.Done());
}

TEST(KwayMergeTest, SingleSource) {
  std::vector<std::vector<uint64_t>> runs = {{3, 3, 5}};
  auto cursors = Cursors(runs);
  EXPECT_EQ(Drain(&cursors), (std::vector<uint64_t>{3, 3, 5}));
}

TEST(KwayMergeTest, EmptySourcesLoseEveryMatch) {
  std::vector<std::vector<uint64_t>> runs = {{}, {2, 4}, {}, {1}, {}};
  auto cursors = Cursors(runs);
  EXPECT_EQ(Drain(&cursors), (std::vector<uint64_t>{1, 2, 4}));
}

TEST(KwayMergeTest, AllSourcesEmpty) {
  std::vector<std::vector<uint64_t>> runs = {{}, {}, {}};
  auto cursors = Cursors(runs);
  LoserTree<VecCursor, HeadLess> tree(&cursors);
  EXPECT_TRUE(tree.Done());
}

TEST(KwayMergeTest, TiesBreakTowardLowerCursorIndex) {
  std::vector<std::vector<uint64_t>> runs = {{7, 9}, {7, 7}, {7}};
  auto cursors = Cursors(runs);
  LoserTree<VecCursor, HeadLess> tree(&cursors);
  // All heads equal 7: pops must surface cursors 0, 1, 2 in index order,
  // then cursor 1's second 7 before the larger heads.
  std::vector<size_t> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(tree.Done());
    EXPECT_EQ(tree.Top().head(), 7u);
    order.push_back(tree.TopIndex());
    tree.Pop();
  }
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 1, 2}));
  EXPECT_EQ(tree.Top().head(), 9u);
}

TEST(KwayMergeTest, RandomizedAgainstSort) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    size_t k = 1 + rng.Below(17);
    std::vector<std::vector<uint64_t>> runs(k);
    std::vector<uint64_t> expected;
    for (auto& run : runs) {
      size_t n = rng.Below(40);  // Empty runs included.
      for (size_t i = 0; i < n; ++i) run.push_back(rng.Below(64));
      std::sort(run.begin(), run.end());
      expected.insert(expected.end(), run.begin(), run.end());
    }
    std::sort(expected.begin(), expected.end());
    auto cursors = Cursors(runs);
    EXPECT_EQ(Drain(&cursors), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace tj
