#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace tj {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  EXPECT_NE(SplitMix64(0), 0u);  // Zero does not map to zero.
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(29);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  Rng rng(31);
  ZipfGenerator zipf(1000, 1.2);
  int first_decile = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(&rng) < 100) ++first_decile;
  }
  // Under theta=1.2 skew the first 10% of the domain draws the large
  // majority of samples.
  EXPECT_GT(first_decile, kSamples / 2);
}

TEST(ZipfTest, HeadFrequencyGrowsWithTheta) {
  constexpr int kSamples = 20000;
  int previous = 0;
  for (double theta : {0.0, 0.5, 1.0, 1.5}) {
    Rng rng(41);
    ZipfGenerator zipf(1000, theta);
    int head = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (zipf.Next(&rng) == 0) ++head;
    }
    // The hottest value's draw frequency rises strictly with theta; the
    // steps between these thetas dwarf sampling noise at 20k draws.
    EXPECT_GT(head, previous) << "theta " << theta;
    previous = head;
  }
  // theta=1.5: value 0 alone draws a double-digit share of all samples.
  EXPECT_GT(previous, kSamples / 10);
}

TEST(ZipfTest, DomainOfOneAlwaysZero) {
  Rng rng(43);
  for (double theta : {0.0, 1.2}) {
    ZipfGenerator zipf(1, theta);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
  }
}

TEST(ZipfTest, SharedSamplerStreamsAreIndependent) {
  // Sampling is const, so two Rng streams drawing from one generator must
  // match two streams drawing from private generators with the same setup.
  ZipfGenerator shared(100, 1.1);
  ZipfGenerator own_a(100, 1.1);
  ZipfGenerator own_b(100, 1.1);
  Rng a1(47), a2(47), b1(53), b2(53);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(shared.Next(&a1), own_a.Next(&a2));
    EXPECT_EQ(shared.Next(&b1), own_b.Next(&b2));
  }
}

TEST(ZipfTest, StaysInDomain) {
  Rng rng(37);
  for (double theta : {0.0, 0.5, 0.99, 1.0, 1.5}) {
    ZipfGenerator zipf(17, theta);
    for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.Next(&rng), 17u);
  }
}

}  // namespace
}  // namespace tj
