#include "common/bit_util.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

TEST(BitUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(0), 1u);
  EXPECT_EQ(CeilLog2(1), 1u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(256), 8u);
  EXPECT_EQ(CeilLog2(257), 9u);
  EXPECT_EQ(CeilLog2(1ULL << 32), 32u);
  EXPECT_EQ(CeilLog2((1ULL << 32) + 1), 33u);
  // Paper Table 1: 769,785,856 distinct values fit in 30 bits.
  EXPECT_EQ(CeilLog2(769785856), 30u);
  EXPECT_EQ(CeilLog2(53), 6u);
  EXPECT_EQ(CeilLog2(297952), 19u);
}

TEST(BitUtilTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 1u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(~0ULL), 64u);
}

TEST(BitUtilTest, BitsToBytes) {
  EXPECT_EQ(BitsToBytes(1), 1u);
  EXPECT_EQ(BitsToBytes(8), 1u);
  EXPECT_EQ(BitsToBytes(9), 2u);
  EXPECT_EQ(BitsToBytes(64), 8u);
}

TEST(BitUtilTest, BitsToFixedBytes) {
  EXPECT_EQ(BitsToFixedBytes(1), 1u);
  EXPECT_EQ(BitsToFixedBytes(8), 1u);
  EXPECT_EQ(BitsToFixedBytes(9), 2u);
  EXPECT_EQ(BitsToFixedBytes(16), 2u);
  EXPECT_EQ(BitsToFixedBytes(17), 4u);
  EXPECT_EQ(BitsToFixedBytes(30), 4u);  // Workload X keys: 30 bits -> 4 bytes.
  EXPECT_EQ(BitsToFixedBytes(33), 8u);
  EXPECT_EQ(BitsToFixedBytes(64), 8u);
}

TEST(BitUtilTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

}  // namespace
}  // namespace tj
