#include "common/byte_buffer.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

TEST(ByteBufferTest, WriteReadRoundTrip) {
  ByteBuffer buf;
  ByteWriter writer(&buf);
  writer.PutU8(0xab);
  writer.PutU16(0x1234);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  ByteReader reader(buf);
  EXPECT_EQ(reader.GetU8(), 0xab);
  EXPECT_EQ(reader.GetU16(), 0x1234);
  EXPECT_EQ(reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(reader.Done());
}

TEST(ByteBufferTest, ArbitraryWidths) {
  ByteBuffer buf;
  ByteWriter writer(&buf);
  for (uint32_t width = 1; width <= 8; ++width) {
    uint64_t v = 0x1122334455667788ULL &
                 (width == 8 ? ~0ULL : ((1ULL << (8 * width)) - 1));
    writer.PutUint(v, width);
  }
  ByteReader reader(buf);
  for (uint32_t width = 1; width <= 8; ++width) {
    uint64_t expect = 0x1122334455667788ULL &
                      (width == 8 ? ~0ULL : ((1ULL << (8 * width)) - 1));
    EXPECT_EQ(reader.GetUint(width), expect) << width;
  }
}

TEST(ByteBufferTest, ZeroWidthWritesNothing) {
  ByteBuffer buf;
  ByteWriter writer(&buf);
  writer.PutUint(12345, 0);
  EXPECT_TRUE(buf.empty());
  ByteReader reader(buf);
  EXPECT_EQ(reader.GetUint(0), 0u);
}

TEST(ByteBufferTest, LittleEndianLayout) {
  ByteBuffer buf;
  ByteWriter writer(&buf);
  writer.PutU32(0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(ByteBufferTest, RawBytes) {
  ByteBuffer buf;
  ByteWriter writer(&buf);
  uint8_t payload[5] = {9, 8, 7, 6, 5};
  writer.PutBytes(payload, sizeof(payload));
  uint8_t out[5] = {0};
  ByteReader reader(buf);
  reader.GetBytes(out, 5);
  EXPECT_EQ(0, memcmp(payload, out, 5));
  EXPECT_TRUE(reader.Done());
}

TEST(ByteBufferTest, SkipAndRemaining) {
  ByteBuffer buf(10, 0xcc);
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 10u);
  reader.Skip(4);
  EXPECT_EQ(reader.remaining(), 6u);
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_EQ(*reader.Current(), 0xcc);
  reader.Skip(6);
  EXPECT_TRUE(reader.Done());
}

TEST(ByteBufferTest, InterleavedWriteAppends) {
  ByteBuffer buf;
  ByteWriter w1(&buf);
  w1.PutU8(1);
  ByteWriter w2(&buf);
  w2.PutU8(2);
  w1.PutU8(3);
  EXPECT_EQ(buf, (ByteBuffer{1, 2, 3}));
}

}  // namespace
}  // namespace tj
