#include "common/flat_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace tj {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  map[5] = 50;
  map[7] = 70;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 50);
  EXPECT_EQ(map.Find(6), nullptr);
  EXPECT_TRUE(map.Contains(7));
  EXPECT_TRUE(map.Erase(5));
  EXPECT_FALSE(map.Erase(5));
  EXPECT_FALSE(map.Contains(5));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<std::vector<uint32_t>> map;
  EXPECT_TRUE(map[42].empty());
  map[42].push_back(1);
  map[42].push_back(2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map[42].size(), 2u);
}

TEST(FlatMapTest, GrowthKeepsAllEntries) {
  FlatMap<uint64_t> map;
  for (uint64_t k = 0; k < 10000; ++k) map[k * 31] = k;
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.Find(k * 31), nullptr) << k;
    EXPECT_EQ(*map.Find(k * 31), k);
  }
}

TEST(FlatMapTest, ReservePreventsMidInsertRehash) {
  FlatMap<int> map;
  map.Reserve(1000);
  size_t cap = map.capacity();
  for (uint64_t k = 0; k < 1000; ++k) map[k] = 1;
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, TombstoneReuseKeepsCapacityFlat) {
  FlatMap<int> map;
  for (uint64_t k = 0; k < 8; ++k) map[k] = static_cast<int>(k);
  size_t cap = map.capacity();
  // Erase/reinsert cycles far beyond capacity: the reinsert must claim the
  // tombstone on its probe path instead of consuming fresh slots, so the
  // table never grows.
  for (int round = 0; round < 10000; ++round) {
    uint64_t k = static_cast<uint64_t>(round % 8);
    EXPECT_TRUE(map.Erase(k));
    map[k] = round;
  }
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.size(), 8u);
}

TEST(FlatMapTest, ClearEmptiesButKeepsWorking) {
  FlatMap<int> map;
  for (uint64_t k = 0; k < 100; ++k) map[k] = 1;
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(3));
  map[3] = 9;
  EXPECT_EQ(*map.Find(3), 9);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryOnce) {
  FlatMap<uint64_t> map;
  for (uint64_t k = 0; k < 500; ++k) map[k ^ 0xdeadbeef] = k;
  std::unordered_map<uint64_t, uint64_t> seen;
  map.ForEach([&](uint64_t key, const uint64_t& value) { seen[key] = value; });
  EXPECT_EQ(seen.size(), 500u);
  for (uint64_t k = 0; k < 500; ++k) EXPECT_EQ(seen[k ^ 0xdeadbeef], k);
}

TEST(FlatMapTest, DifferentialFuzzAgainstUnorderedMap) {
  Rng rng(99);
  FlatMap<uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  // Small key universe forces frequent hits, erases of present keys, and
  // tombstone-slot reuse; 20k ops cross several growth boundaries.
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Below(512);
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // Insert / overwrite.
        uint64_t value = rng.Next();
        map[key] = value;
        ref[key] = value;
        break;
      }
      case 2: {  // Erase.
        EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // Lookup.
        auto it = ref.find(key);
        const uint64_t* found = map.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full final sweep both ways.
  std::unordered_map<uint64_t, uint64_t> dumped;
  map.ForEach([&](uint64_t k, const uint64_t& v) {
    EXPECT_TRUE(dumped.emplace(k, v).second);  // No duplicate visits.
  });
  EXPECT_EQ(dumped.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(dumped.count(k)) << k;
    EXPECT_EQ(dumped[k], v);
  }
}

TEST(FlatSetTest, InsertReportsNovelty) {
  FlatSet set;
  EXPECT_TRUE(set.Insert(10));
  EXPECT_FALSE(set.Insert(10));
  EXPECT_TRUE(set.Insert(11));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(12));
  EXPECT_TRUE(set.Erase(10));
  EXPECT_FALSE(set.Contains(10));
  EXPECT_TRUE(set.Insert(10));  // Reinsert after erase.
}

TEST(FlatSetTest, DifferentialFuzzAgainstUnorderedSet) {
  Rng rng(7);
  FlatSet set;
  std::unordered_set<uint64_t> ref;
  for (int op = 0; op < 10000; ++op) {
    uint64_t key = rng.Below(256);
    if (rng.Below(3) == 0) {
      EXPECT_EQ(set.Erase(key), ref.erase(key) > 0);
    } else {
      EXPECT_EQ(set.Insert(key), ref.insert(key).second);
    }
    ASSERT_EQ(set.size(), ref.size());
  }
  std::vector<uint64_t> keys;
  set.ForEach([&](uint64_t k) { keys.push_back(k); });
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> expected(ref.begin(), ref.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(keys, expected);
}

}  // namespace
}  // namespace tj
