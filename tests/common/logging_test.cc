#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/stopwatch.h"

namespace tj {
namespace {

TEST(LoggingTest, CheckPassesOnTrue) {
  TJ_CHECK(true);
  TJ_CHECK_EQ(1, 1);
  TJ_CHECK_NE(1, 2);
  TJ_CHECK_LT(1, 2);
  TJ_CHECK_LE(2, 2);
  TJ_CHECK_GT(3, 2);
  TJ_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(TJ_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(TJ_CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(TJ_CHECK_LT(5, 3), "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(TJ_CHECK_OK(Status::Corruption("bad page")), "bad page");
  TJ_CHECK_OK(Status::OK());  // Must not abort.
}

TEST(LoggingTest, LevelFilteringRoundTrips) {
  auto prev = internal::SetLogLevel(internal::LogLevel::kError);
  EXPECT_EQ(internal::GetLogLevel(), internal::LogLevel::kError);
  TJ_LOG(Info) << "suppressed";  // Below the level: no crash, no emit.
  internal::SetLogLevel(prev);
  EXPECT_EQ(internal::GetLogLevel(), prev);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little time; elapsed must be monotone.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), second);
}

}  // namespace
}  // namespace tj
