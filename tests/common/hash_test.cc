#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace tj {
namespace {

TEST(HashTest, Mix64Deterministic) {
  EXPECT_EQ(HashMix64(42), HashMix64(42));
  EXPECT_NE(HashMix64(42), HashMix64(43));
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  // A bijective mixer never collides; sample a large set.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(HashMix64(i)).second);
  }
}

TEST(HashTest, SeedsGiveIndependentStreams) {
  int equal = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (HashKey(k, 1) == HashKey(k, 2)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(HashTest, BytesHashMatchesOnEqualInput) {
  const char a[] = "track join";
  const char b[] = "track join";
  EXPECT_EQ(HashBytes(a, sizeof(a)), HashBytes(b, sizeof(b)));
  EXPECT_NE(HashBytes(a, sizeof(a)), HashBytes(a, sizeof(a) - 1));
  EXPECT_NE(HashBytes(a, sizeof(a), 1), HashBytes(a, sizeof(a), 2));
}

TEST(HashTest, PartitionInRangeAndBalanced) {
  constexpr uint32_t kNodes = 16;
  std::vector<int> counts(kNodes, 0);
  constexpr int kKeys = 160000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint32_t p = HashPartition(k, kNodes);
    ASSERT_LT(p, kNodes);
    ++counts[p];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kKeys / kNodes, kKeys / kNodes * 0.05);
  }
}

TEST(HashTest, PartitionSingleNode) {
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(HashPartition(k, 1), 0u);
}

}  // namespace
}  // namespace tj
