#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "exec/key_aggregate.h"

namespace tj {
namespace {

std::map<uint64_t, std::vector<std::pair<uint32_t, uint64_t>>> KeyPlacements(
    const PartitionedTable& table) {
  std::map<uint64_t, std::vector<std::pair<uint32_t, uint64_t>>> out;
  for (uint32_t node = 0; node < table.num_nodes(); ++node) {
    for (const auto& kc : AggregateKeys(table.node(node))) {
      out[kc.key].emplace_back(node, kc.count);
    }
  }
  return out;
}

TEST(GeneratorTest, CardinalitiesMatchSpec) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 100;
  spec.r_multiplicity = 3;
  spec.s_multiplicity = 5;
  spec.r_unmatched = 17;
  spec.s_unmatched = 23;
  Workload w = GenerateWorkload(spec);
  EXPECT_EQ(w.r.TotalRows(), 100u * 3 + 17);
  EXPECT_EQ(w.s.TotalRows(), 100u * 5 + 23);
  EXPECT_EQ(w.expected_output_rows, 100u * 15);
}

TEST(GeneratorTest, PatternsPlaceRepeatsAsSpecified) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 200;
  spec.s_multiplicity = 5;
  spec.s_pattern = {2, 2, 1};
  spec.collocation = Collocation::kIntra;
  Workload w = GenerateWorkload(spec);
  auto placements = KeyPlacements(w.s);
  ASSERT_EQ(placements.size(), 200u);
  for (const auto& [key, nodes] : placements) {
    ASSERT_EQ(nodes.size(), 3u) << key;
    std::multiset<uint64_t> counts;
    for (const auto& [node, count] : nodes) counts.insert(count);
    EXPECT_EQ(counts, (std::multiset<uint64_t>{1, 2, 2}));
  }
}

TEST(GeneratorTest, InterCollocationAlignsTables) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 150;
  spec.r_multiplicity = 5;
  spec.s_multiplicity = 5;
  spec.r_pattern = {5};
  spec.s_pattern = {5};
  spec.collocation = Collocation::kInter;
  Workload w = GenerateWorkload(spec);
  auto r_placements = KeyPlacements(w.r);
  auto s_placements = KeyPlacements(w.s);
  for (const auto& [key, r_nodes] : r_placements) {
    ASSERT_EQ(r_nodes.size(), 1u);
    const auto& s_nodes = s_placements.at(key);
    ASSERT_EQ(s_nodes.size(), 1u);
    EXPECT_EQ(r_nodes[0].first, s_nodes[0].first) << key;
  }
}

TEST(GeneratorTest, IntraCollocationIndependentAcrossTables) {
  WorkloadSpec spec;
  spec.num_nodes = 16;
  spec.matched_keys = 400;
  spec.r_multiplicity = 5;
  spec.s_multiplicity = 5;
  spec.r_pattern = {5};
  spec.s_pattern = {5};
  spec.collocation = Collocation::kIntra;
  Workload w = GenerateWorkload(spec);
  auto r_placements = KeyPlacements(w.r);
  auto s_placements = KeyPlacements(w.s);
  int aligned = 0;
  for (const auto& [key, r_nodes] : r_placements) {
    if (r_nodes[0].first == s_placements.at(key)[0].first) ++aligned;
  }
  // Independent placement aligns ~1/16 of keys, far below 1/2.
  EXPECT_LT(aligned, 100);
  EXPECT_GT(aligned, 0);  // But some collide by chance.
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  WorkloadSpec spec;
  spec.matched_keys = 50;
  spec.seed = 7;
  Workload a = GenerateWorkload(spec);
  Workload b = GenerateWorkload(spec);
  for (uint32_t node = 0; node < a.r.num_nodes(); ++node) {
    EXPECT_EQ(a.r.node(node).keys(), b.r.node(node).keys());
  }
  spec.seed = 8;
  Workload c = GenerateWorkload(spec);
  bool any_diff = false;
  for (uint32_t node = 0; node < a.r.num_nodes(); ++node) {
    any_diff |= a.r.node(node).keys() != c.r.node(node).keys();
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, UnmatchedKeysAreDisjoint) {
  WorkloadSpec spec;
  spec.matched_keys = 100;
  spec.r_unmatched = 50;
  spec.s_unmatched = 50;
  Workload w = GenerateWorkload(spec);
  std::set<uint64_t> r_keys, s_keys;
  for (uint32_t node = 0; node < w.r.num_nodes(); ++node) {
    for (uint64_t k : w.r.node(node).keys()) r_keys.insert(k);
    for (uint64_t k : w.s.node(node).keys()) s_keys.insert(k);
  }
  EXPECT_EQ(r_keys.size(), 150u);
  EXPECT_EQ(s_keys.size(), 150u);
  // Intersection is exactly the matched keys 1..100.
  std::set<uint64_t> both;
  std::set_intersection(r_keys.begin(), r_keys.end(), s_keys.begin(),
                        s_keys.end(), std::inserter(both, both.begin()));
  EXPECT_EQ(both.size(), 100u);
  EXPECT_EQ(*both.begin(), 1u);
  EXPECT_EQ(*both.rbegin(), 100u);
}

TEST(GeneratorTest, ShuffleKeepsRowsMovesPlacement) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 500;
  spec.r_multiplicity = 5;
  spec.r_pattern = {5};
  spec.collocation = Collocation::kIntra;
  Workload w = GenerateWorkload(spec);
  uint64_t rows = w.r.TotalRows();
  ShuffleTable(&w.r, 3);
  EXPECT_EQ(w.r.TotalRows(), rows);
  // After shuffling, a key's 5 repeats rarely stay on one node.
  auto placements = KeyPlacements(w.r);
  int collocated = 0;
  for (const auto& [key, nodes] : placements) collocated += nodes.size() == 1;
  EXPECT_LT(collocated, 50);
}

TEST(GeneratorTest, PayloadWidthsApplied) {
  WorkloadSpec spec;
  spec.matched_keys = 10;
  spec.r_payload = 7;
  spec.s_payload = 0;
  Workload w = GenerateWorkload(spec);
  EXPECT_EQ(w.r.payload_width(), 7u);
  EXPECT_EQ(w.s.payload_width(), 0u);
}

}  // namespace
}  // namespace tj
