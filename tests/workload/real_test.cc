// Checks the workload X / Y reconstructions against every statistic the
// paper publishes about them.
#include "workload/real.h"

#include <gtest/gtest.h>

#include <map>

#include "exec/key_aggregate.h"

namespace tj {
namespace {

TEST(RealWorkloadTest, XQ1SchemaMatchesTable1) {
  RealJoinSpec x = WorkloadX(1);
  EXPECT_EQ(x.t_r, 769845120u);
  EXPECT_EQ(x.t_s, 790963741u);
  EXPECT_EQ(x.t_rs, 730073001u);
  // Figure 9: 79 bits per R tuple, 145 per S tuple under dictionary coding.
  EXPECT_EQ(x.r_schema.TupleBitsX100(EncodingScheme::kDictionary), 7900u);
  EXPECT_EQ(x.s_schema.TupleBitsX100(EncodingScheme::kDictionary), 14500u);
  EXPECT_EQ(x.r_schema.KeyBitsX100(EncodingScheme::kDictionary), 3000u);
}

TEST(RealWorkloadTest, AllFiveQueriesMatchFigure9Bits) {
  const uint64_t expected_r[] = {7900, 6700, 6000, 6700, 6900};
  const uint64_t expected_s[] = {14500, 12000, 12600, 13100, 14500};
  for (int q = 1; q <= 5; ++q) {
    RealJoinSpec x = WorkloadX(q);
    EXPECT_EQ(x.r_schema.TupleBitsX100(EncodingScheme::kDictionary),
              expected_r[q - 1])
        << "Q" << q;
    EXPECT_EQ(x.s_schema.TupleBitsX100(EncodingScheme::kDictionary),
              expected_s[q - 1])
        << "Q" << q;
  }
}

TEST(RealWorkloadTest, YCardinalitiesApproximatePaper) {
  RealJoinSpec y = WorkloadY();
  // Matched tuples stay below the published totals (the remainder is
  // modeled as unmatched) and the output matches exactly by construction.
  double matched_r = static_cast<double>(y.matched_keys) * y.r_multiplicity;
  double matched_s = static_cast<double>(y.matched_keys) * y.s_multiplicity;
  double t_rs = static_cast<double>(y.matched_keys) * y.r_multiplicity *
                y.s_multiplicity;
  EXPECT_LE(matched_r, static_cast<double>(y.t_r));
  EXPECT_LE(matched_s, static_cast<double>(y.t_s));
  EXPECT_NEAR(matched_r / y.t_r, 0.645, 0.02);
  EXPECT_NEAR(matched_s / y.t_s, 0.63, 0.02);
  EXPECT_NEAR(t_rs / y.t_rs, 1.0, 0.01);
  // 37- and 47-byte variable-byte tuples.
  uint64_t r_bits = y.r_schema.TupleBitsX100(EncodingScheme::kVariableByte);
  uint64_t s_bits = y.s_schema.TupleBitsX100(EncodingScheme::kVariableByte);
  EXPECT_NEAR(r_bits / 800.0, 37.0, 1.0);
  EXPECT_NEAR(s_bits / 800.0, 47.0, 1.0);
}

TEST(RealWorkloadTest, InstantiationScalesCardinalities) {
  RealJoinSpec x = WorkloadX(1);
  Workload w = InstantiateReal(x, 4, /*scale_divisor=*/100000,
                               /*original_order=*/false);
  EXPECT_NEAR(static_cast<double>(w.r.TotalRows()),
              static_cast<double>(x.t_r) / 100000, x.t_r / 100000 * 0.01);
  EXPECT_NEAR(static_cast<double>(w.s.TotalRows()),
              static_cast<double>(x.t_s) / 100000, x.t_s / 100000 * 0.01);
  EXPECT_EQ(w.r.payload_width(), x.impl_r_payload);
  EXPECT_EQ(w.s.payload_width(), x.impl_s_payload);
}

TEST(RealWorkloadTest, OriginalOrderingXHasPartialCollocation) {
  RealJoinSpec x = WorkloadX(1);
  Workload w = InstantiateReal(x, 8, 200000, /*original_order=*/true);
  // Count matched keys whose single R copy and single S copy collocate.
  std::map<uint64_t, uint32_t> r_at;
  for (uint32_t node = 0; node < 8; ++node) {
    for (const auto& kc : AggregateKeys(w.r.node(node))) {
      r_at[kc.key] = node;
    }
  }
  uint64_t matched = 0, collocated = 0;
  for (uint32_t node = 0; node < 8; ++node) {
    for (const auto& kc : AggregateKeys(w.s.node(node))) {
      auto it = r_at.find(kc.key);
      if (it == r_at.end()) continue;
      ++matched;
      collocated += it->second == node;
    }
  }
  double rate = static_cast<double>(collocated) / matched;
  // 80% explicit + ~1/8 chance for the random remainder ~ 0.825.
  EXPECT_NEAR(rate, 0.825, 0.05);
}

TEST(RealWorkloadTest, OriginalOrderingYCollocatesRepeats) {
  RealJoinSpec y = WorkloadY();
  Workload w = InstantiateReal(y, 8, 2000, /*original_order=*/true);
  // Matched keys occupy [1, matched]; keys above are unmatched singletons.
  // ~67% of matched keys keep all their repeats on one node.
  const uint64_t matched = std::max<uint64_t>(1, y.matched_keys / 2000);
  uint64_t fully_collocated = 0;
  for (uint32_t node = 0; node < 8; ++node) {
    for (const auto& kc : AggregateKeys(w.s.node(node))) {
      if (kc.key > matched) continue;
      if (kc.count == y.s_multiplicity) ++fully_collocated;
    }
  }
  double rate = static_cast<double>(fully_collocated) / matched;
  EXPECT_NEAR(rate, y.original_collocated_fraction, 0.06);
}

TEST(RealWorkloadTest, InvalidQueryRejected) {
  EXPECT_DEATH(WorkloadX(0), "");
  EXPECT_DEATH(WorkloadX(6), "");
}

}  // namespace
}  // namespace tj
