#include <gtest/gtest.h>

#include <map>

#include "baseline/hash_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

TEST(ZipfWorkloadTest, CardinalitiesAndOutputExact) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 4;
  spec.key_domain = 500;
  spec.r_rows = 3000;
  spec.s_rows = 5000;
  spec.r_theta = 0.9;
  spec.s_theta = 0.9;
  Workload w = GenerateZipfWorkload(spec);
  EXPECT_EQ(w.r.TotalRows(), 3000u);
  EXPECT_EQ(w.s.TotalRows(), 5000u);

  // Brute-force the expected output from the generated tables.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> counts;
  for (uint32_t node = 0; node < 4; ++node) {
    for (uint64_t key : w.r.node(node).keys()) ++counts[key].first;
    for (uint64_t key : w.s.node(node).keys()) ++counts[key].second;
  }
  uint64_t expected = 0;
  for (const auto& [key, rs] : counts) expected += rs.first * rs.second;
  EXPECT_EQ(w.expected_output_rows, expected);

  // And the join delivers exactly that.
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunHashJoin(w.r, w.s, config);
  EXPECT_EQ(result.output_rows, expected);
}

TEST(ZipfWorkloadTest, SkewConcentratesMultiplicity) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 2;
  spec.key_domain = 10000;
  spec.r_rows = 20000;
  spec.s_rows = 20000;
  spec.r_theta = 1.2;
  spec.s_theta = 1.2;
  Workload skewed = GenerateZipfWorkload(spec);
  spec.r_theta = 0.0;
  spec.s_theta = 0.0;
  spec.seed = spec.seed + 1;
  Workload uniform = GenerateZipfWorkload(spec);
  // Quadratic output blows up under skew.
  EXPECT_GT(skewed.expected_output_rows, 4 * uniform.expected_output_rows);
}

TEST(ZipfWorkloadTest, DeterministicBySeed) {
  ZipfWorkloadSpec spec;
  spec.key_domain = 100;
  spec.r_rows = 1000;
  spec.s_rows = 1000;
  Workload a = GenerateZipfWorkload(spec);
  Workload b = GenerateZipfWorkload(spec);
  for (uint32_t node = 0; node < spec.num_nodes; ++node) {
    EXPECT_EQ(a.r.node(node).keys(), b.r.node(node).keys());
  }
}

TEST(ZipfWorkloadTest, PayloadsDistinctPerCopy) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 1;
  spec.key_domain = 1;  // Every row is the same key.
  spec.r_rows = 10;
  spec.s_rows = 0;
  spec.r_payload = 8;
  Workload w = GenerateZipfWorkload(spec);
  const TupleBlock& block = w.r.node(0);
  for (uint64_t i = 1; i < block.size(); ++i) {
    EXPECT_NE(0, memcmp(block.Payload(0), block.Payload(i), 8));
  }
}

TEST(ZipfWorkloadTest, EmptySideYieldsZeroOutput) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 3;
  spec.key_domain = 50;
  spec.r_rows = 0;
  spec.s_rows = 400;
  Workload w = GenerateZipfWorkload(spec);
  EXPECT_EQ(w.r.TotalRows(), 0u);
  EXPECT_EQ(w.s.TotalRows(), 400u);
  EXPECT_EQ(w.expected_output_rows, 0u);
}

TEST(ZipfWorkloadTest, DomainOfOneIsFullCrossProduct) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 2;
  spec.key_domain = 1;
  spec.r_rows = 30;
  spec.s_rows = 40;
  Workload w = GenerateZipfWorkload(spec);
  EXPECT_EQ(w.expected_output_rows, 1200u);
}

TEST(ZipfWorkloadTest, OutputProductOverflowIsInvalidArgument) {
  uint64_t total = 0;
  EXPECT_TRUE(AddOutputProduct(1, 1u << 20, 1u << 20, &total).ok());
  EXPECT_EQ(total, 1ull << 40);

  // One key's product alone exceeds uint64.
  Status product = AddOutputProduct(7, 1ull << 33, 1ull << 33, &total);
  EXPECT_EQ(product.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(product.message().find("key 7"), std::string::npos);
  EXPECT_EQ(total, 1ull << 40);  // Untouched on failure.

  // The running sum can overflow even when each product fits.
  total = ~0ull - 10;
  Status sum = AddOutputProduct(9, 4, 4, &total);
  EXPECT_EQ(sum.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(total, ~0ull - 10);
}

TEST(ZipfWorkloadTest, ThetaZeroFastPathIsUniform) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 2;
  spec.key_domain = 4;
  spec.r_rows = 40000;
  spec.s_rows = 0;
  spec.r_theta = 0.0;
  spec.s_theta = 0.0;
  Workload w = GenerateZipfWorkload(spec);
  std::map<uint64_t, uint64_t> counts;
  for (uint32_t node = 0; node < spec.num_nodes; ++node) {
    for (uint64_t key : w.r.node(node).keys()) ++counts[key];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [key, count] : counts) EXPECT_NEAR(count, 10000, 500);
}

}  // namespace
}  // namespace tj
