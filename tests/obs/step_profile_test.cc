// StepProfile invariants: per-phase records must sum to the run's
// end-to-end totals (wall times, per-type byte ledgers, recovery counters),
// the goodput/retransmit split must match the TrafficMatrix exactly — with
// and without an active FaultPolicy — and the JSON/CSV renderings are
// golden-checked so `tjsim --profile` output stays a stable interface.
#include "obs/step_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "core/late_hash_join.h"
#include "core/rid_hash_join.h"
#include "core/semi_join.h"
#include "core/streaming_track_join.h"
#include "core/track_join.h"
#include "net/fault_injector.h"
#include "workload/generator.h"

namespace tj {
namespace {

Workload TestWorkload(uint32_t nodes = 4) {
  WorkloadSpec spec;
  spec.num_nodes = nodes;
  spec.matched_keys = 600;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_unmatched = 100;
  spec.s_unmatched = 150;
  spec.r_payload = 16;
  spec.s_payload = 16;
  spec.seed = 42;
  return GenerateWorkload(spec);
}

// The per-step records must add up to exactly what the run's TrafficMatrix
// and phase_seconds report, per message type and in total, for every
// algorithm entry point.
void CheckProfileMatchesRun(const std::string& label, const JoinResult& r) {
  SCOPED_TRACE(label);
  const StepProfile& prof = r.profile;
  EXPECT_EQ(prof.algorithm, label);
  ASSERT_FALSE(prof.steps.empty());

  // Wall time: the profile carries the same per-phase times in the same
  // order as the legacy phase_seconds list.
  ASSERT_EQ(prof.steps.size(), r.phase_seconds.size());
  for (size_t i = 0; i < prof.steps.size(); ++i) {
    EXPECT_EQ(prof.steps[i].phase, r.phase_seconds[i].first);
    EXPECT_DOUBLE_EQ(prof.steps[i].wall_seconds, r.phase_seconds[i].second);
  }
  EXPECT_NEAR(prof.TotalWallSeconds(), r.TotalCpuSeconds(), 1e-12);

  // Bytes: phase deltas must sum to the final matrix, type by type.
  for (int t = 0; t < kNumMessageTypes; ++t) {
    MessageType type = static_cast<MessageType>(t);
    EXPECT_EQ(prof.NetworkBytes(type), r.traffic.NetworkBytes(type))
        << MessageTypeName(type);
    EXPECT_EQ(prof.LocalBytes(type), r.traffic.LocalBytes(type))
        << MessageTypeName(type);
    EXPECT_EQ(prof.RetransmitBytes(type), r.traffic.RetransmitBytes(type))
        << MessageTypeName(type);
  }
  EXPECT_EQ(prof.TotalGoodputBytes(), r.traffic.TotalNetworkBytes());
  EXPECT_EQ(prof.TotalLocalBytes(), r.traffic.TotalLocalBytes());
  EXPECT_EQ(prof.TotalRetransmitBytes(), r.traffic.TotalRetransmitBytes());
  EXPECT_EQ(prof.run_max_node_bytes, r.traffic.MaxNodeBytes());

  // Recovery counters: phase deltas sum to the run's reliability stats.
  EXPECT_EQ(prof.TotalRetransmittedFrames(),
            r.reliability.retransmitted_frames);
  EXPECT_EQ(prof.TotalNackMessages(), r.reliability.nack_messages);

  // A phase's NIC bottleneck can never exceed its total network bytes, and
  // the whole-run bottleneck can never exceed the sum of phase bottlenecks.
  uint64_t phase_bottleneck_sum = 0;
  for (const StepRecord& s : prof.steps) {
    EXPECT_LE(s.max_node_bytes, s.goodput_bytes + s.retransmit_bytes);
    phase_bottleneck_sum += s.max_node_bytes;
  }
  EXPECT_LE(prof.run_max_node_bytes, phase_bottleneck_sum);
}

TEST(StepProfileTest, PhaseSumsMatchRunTotalsForEveryAlgorithm) {
  Workload w = TestWorkload();
  JoinConfig config;
  config.key_bytes = 4;
  CheckProfileMatchesRun("hj", RunHashJoin(w.r, w.s, config));
  CheckProfileMatchesRun("bj-r",
                         RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS));
  CheckProfileMatchesRun("bj-s",
                         RunBroadcastJoin(w.r, w.s, config, Direction::kStoR));
  CheckProfileMatchesRun("2tj-r",
                         RunTrackJoin2(w.r, w.s, config, Direction::kRtoS));
  CheckProfileMatchesRun("2tj-s",
                         RunTrackJoin2(w.r, w.s, config, Direction::kStoR));
  CheckProfileMatchesRun("3tj", RunTrackJoin3(w.r, w.s, config));
  CheckProfileMatchesRun("4tj", RunTrackJoin4(w.r, w.s, config));
  CheckProfileMatchesRun(
      "stj-r", RunStreamingTrackJoin2(w.r, w.s, config, Direction::kRtoS, 64));
  CheckProfileMatchesRun("rid-hj", RunRidHashJoin(w.r, w.s, config));
  CheckProfileMatchesRun("late-hj",
                         RunLateMaterializedHashJoin(w.r, w.s, config));
}

TEST(StepProfileTest, SemiJoinWrapperPrependsFilterPhases) {
  Workload w = TestWorkload();
  JoinConfig config;
  config.key_bytes = 4;
  SemiJoinConfig semi;
  JoinResult r = RunFilteredHashJoin(w.r, w.s, config, semi);
  const StepProfile& prof = r.profile;
  EXPECT_EQ(prof.algorithm, "sj+hj");
  ASSERT_FALSE(prof.steps.empty());
  EXPECT_EQ(prof.steps.front().phase, "broadcast bloom filters");
  // The filter exchange moves bloom filters over the wire; the profile must
  // see those bytes even though they happen before the inner join's fabric.
  ASSERT_NE(prof.Find("broadcast bloom filters"), nullptr);
  EXPECT_GT(prof.Find("broadcast bloom filters")->goodput_bytes, 0u);
  // And the spliced profile still reconciles with the merged traffic.
  EXPECT_EQ(prof.TotalGoodputBytes(), r.traffic.TotalNetworkBytes());
  EXPECT_EQ(prof.TotalLocalBytes(), r.traffic.TotalLocalBytes());
}

TEST(StepProfileTest, GoodputRetransmitSplitMatchesLedgersUnderFaults) {
  Workload w = TestWorkload();
  FaultPolicy policy;
  policy.drop = 0.05;
  policy.corrupt = 0.05;
  policy.duplicate = 0.05;
  policy.max_retries = 64;
  JoinConfig config;
  config.key_bytes = 4;
  config.fault_policy = &policy;
  config.fault_seed = 7;

  Result<JoinResult> run = TryRunHashJoin(w.r, w.s, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  CheckProfileMatchesRun("hj", *run);
  // With these rates on this workload the recovery protocol must have done
  // real work, and it must be accounted to specific phases.
  const StepProfile& prof = run->profile;
  EXPECT_GT(prof.TotalRetransmitBytes(), 0u);
  EXPECT_GT(prof.TotalRetransmittedFrames(), 0u);
  uint64_t faults = 0;
  for (const StepRecord& s : prof.steps) {
    faults += s.frames_dropped + s.frames_corrupted + s.frames_duplicated;
  }
  EXPECT_EQ(faults, run->reliability.faults.frames_dropped +
                        run->reliability.faults.frames_corrupted +
                        run->reliability.faults.frames_duplicated);

  Result<JoinResult> track = TryRunTrackJoin(w.r, w.s, config,
                                             TrackJoinVersion::k4Phase);
  ASSERT_TRUE(track.ok()) << track.status().ToString();
  CheckProfileMatchesRun("4tj", *track);
}

TEST(StepProfileTest, InactivePolicyKeepsProfilePassiveAndDeterministic) {
  Workload w = TestWorkload();
  FaultPolicy inactive;  // All-zero: fabric must stay on the pristine path.
  ASSERT_FALSE(inactive.active());
  JoinConfig config;
  config.key_bytes = 4;
  JoinConfig with_policy = config;
  with_policy.fault_policy = &inactive;

  JoinResult plain = RunHashJoin(w.r, w.s, config);
  JoinResult observed = RunHashJoin(w.r, w.s, with_policy);
  EXPECT_EQ(plain.checksum.digest(), observed.checksum.digest());
  EXPECT_EQ(plain.output_rows, observed.output_rows);
  EXPECT_TRUE(plain.traffic == observed.traffic);
  EXPECT_EQ(plain.profile.TotalRetransmitBytes(), 0u);
  EXPECT_EQ(observed.profile.TotalRetransmitBytes(), 0u);
  // Byte-level records are reproducible run to run.
  ASSERT_EQ(plain.profile.steps.size(), observed.profile.steps.size());
  for (size_t i = 0; i < plain.profile.steps.size(); ++i) {
    EXPECT_EQ(plain.profile.steps[i].goodput_bytes,
              observed.profile.steps[i].goodput_bytes);
    EXPECT_EQ(plain.profile.steps[i].max_node_bytes,
              observed.profile.steps[i].max_node_bytes);
  }
}

StepProfile GoldenProfile() {
  StepProfile prof;
  prof.algorithm = "hj";
  prof.num_nodes = 2;
  prof.run_max_node_bytes = 7;
  StepRecord rec;
  rec.phase = "p";
  rec.wall_seconds = 0.5;
  rec.net_seconds = 0.25;
  rec.goodput_bytes = 10;
  rec.local_bytes = 4;
  rec.retransmit_bytes = 2;
  rec.max_node_bytes = 7;
  rec.retransmitted_frames = 1;
  rec.nack_messages = 1;
  rec.frames_dropped = 1;
  rec.network_bytes_by_type[static_cast<int>(MessageType::kDataR)] = 10;
  rec.local_bytes_by_type[static_cast<int>(MessageType::kDataR)] = 4;
  rec.retransmit_bytes_by_type[static_cast<int>(MessageType::kAck)] = 2;
  prof.steps.push_back(rec);
  return prof;
}

TEST(StepProfileTest, JsonGolden) {
  EXPECT_EQ(
      ToJson(GoldenProfile()),
      "{\"algorithm\": \"hj\", \"nodes\": 2, \"totals\": "
      "{\"wall_seconds\": 0.5, \"net_seconds\": 0.25, \"goodput_bytes\": 10, "
      "\"local_bytes\": 4, \"retransmit_bytes\": 2, "
      "\"run_max_node_bytes\": 7, \"recovery_bytes\": 0}, \"steps\": "
      "[{\"phase\": \"p\", "
      "\"wall_seconds\": 0.5, \"net_seconds\": 0.25, \"goodput_bytes\": 10, "
      "\"local_bytes\": 4, \"retransmit_bytes\": 2, \"max_node_bytes\": 7, "
      "\"retransmitted_frames\": 1, \"nack_messages\": 1, "
      "\"frames_dropped\": 1, \"frames_corrupted\": 0, "
      "\"frames_duplicated\": 0, \"bytes_by_type\": "
      "{\"data_r\": {\"network\": 10, \"local\": 4, \"retransmit\": 0}, "
      "\"ack\": {\"network\": 0, \"local\": 0, \"retransmit\": 2}}}]}");
}

TEST(StepProfileTest, CsvGolden) {
  EXPECT_EQ(StepCsvHeader(),
            "algorithm,phase,wall_seconds,net_seconds,goodput_bytes,"
            "local_bytes,retransmit_bytes,max_node_bytes,"
            "retransmitted_frames,nack_messages,frames_dropped,"
            "frames_corrupted,frames_duplicated");
  EXPECT_EQ(ToCsv(GoldenProfile()),
            "hj,\"p\",0.5,0.25,10,4,2,7,1,1,1,0,0\n");
}

TEST(StepProfileTest, CsvEscapesHostilePhaseAndAlgorithmNames) {
  StepProfile prof = GoldenProfile();
  // A phase name carrying every CSV-hostile character: delimiter, quote,
  // newline, carriage return.
  prof.steps[0].phase = "track, \"phase\"\r\none";
  prof.algorithm = "h,j\"x";
  std::string csv = ToCsv(prof);
  // RFC 4180: both fields quoted, internal quotes doubled, separators and
  // line breaks preserved inside the quotes — exactly one record row.
  EXPECT_EQ(csv,
            "\"h,j\"\"x\",\"track, \"\"phase\"\"\r\none\","
            "0.5,0.25,10,4,2,7,1,1,1,0,0\n");
}

TEST(StepProfileTest, CsvDoesNotTruncateLongNames) {
  StepProfile prof = GoldenProfile();
  prof.steps[0].phase = std::string(2000, 'p') + ",\"";
  std::string csv = ToCsv(prof);
  EXPECT_NE(csv.find(std::string(2000, 'p')), std::string::npos);
  EXPECT_EQ(csv.back(), '\n');
}

TEST(StepProfileTest, JsonEscapesHostileNames) {
  StepProfile prof = GoldenProfile();
  prof.algorithm = "a\"b\\c";
  prof.steps[0].phase = "p\nq\tr";
  std::string json = ToJson(prof);
  EXPECT_NE(json.find("\"algorithm\": \"a\\\"b\\\\c\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"phase\": \"p\\nq\\tr\""), std::string::npos) << json;
  // No raw control characters may survive into the JSON text.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(StepProfileTest, ApplyTimeModelReprices) {
  StepProfile prof = GoldenProfile();
  NetworkTimeModel model;
  model.node_bandwidth_bytes_per_sec = 14.0;
  prof.ApplyTimeModel(model);
  EXPECT_DOUBLE_EQ(prof.steps[0].net_seconds, 0.5);  // 7 bytes / 14 B/s.
  EXPECT_DOUBLE_EQ(prof.TotalNetSeconds(), 0.5);
}

TEST(StepProfileTest, FindAndWallSeconds) {
  StepProfile prof = GoldenProfile();
  ASSERT_NE(prof.Find("p"), nullptr);
  EXPECT_EQ(prof.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(prof.WallSeconds("p"), 0.5);
  EXPECT_DOUBLE_EQ(prof.WallSeconds("missing"), 0.0);
}

}  // namespace
}  // namespace tj
