#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tj {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, HoldsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
}

TEST(TimerMetricTest, AccumulatesAndAverages) {
  TimerMetric t;
  EXPECT_EQ(t.Count(), 0u);
  EXPECT_EQ(t.MeanSeconds(), 0.0);
  t.Record(1.0);
  t.Record(3.0);
  EXPECT_EQ(t.Count(), 2u);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(t.MeanSeconds(), 2.0);
}

TEST(HistogramTest, BucketForCoversRange) {
  // Non-positive values land in bucket 0; the top saturates.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(-3.0), 0);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
  // A value is counted in a bucket whose upper bound is >= the value and
  // whose predecessor's bound is below it.
  for (double v : {1e-6, 0.5, 1.0, 3.0, 1024.0, 5e8}) {
    int b = Histogram::BucketFor(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    if (b > 0) EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
  }
  // Exact powers of two sit at their bucket's inclusive upper bound.
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(8.0)), 8.0);
}

TEST(HistogramTest, ObserveAccumulatesSumAndCounts) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Observe(3.0);
  h.Observe(3.5);
  h.Observe(1000.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1006.5);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(3.0)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(1000.0)), 1u);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(2.0);
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expect = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.Count(), expect);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(2.0)), expect);
  EXPECT_DOUBLE_EQ(h.Sum(), 2.0 * static_cast<double>(expect));
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.Increment(7);
  EXPECT_EQ(registry.counter("x").Value(), 7u);
  // Distinct kinds with the same name are distinct instruments.
  registry.gauge("x").Set(1.0);
  EXPECT_EQ(registry.counter("x").Value(), 7u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(1);
  registry.gauge("alpha").Set(2.0);
  registry.timer("mid").Record(0.5);
  std::vector<MetricsRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_STREQ(samples[0].kind, "gauge");
  EXPECT_STREQ(samples[1].kind, "timer");
  EXPECT_STREQ(samples[2].kind, "counter");
  EXPECT_EQ(samples[1].count, 1u);
}

TEST(MetricsRegistryTest, ToJsonGolden) {
  MetricsRegistry registry;
  registry.counter("join.runs").Increment(3);
  registry.gauge("join.last_net_seconds").Set(0.5);
  registry.timer("join.wall_seconds").Record(1.5);
  EXPECT_EQ(registry.ToJson(),
            "{\"join.last_net_seconds\": {\"kind\": \"gauge\", \"value\": 0.5}"
            ", \"join.runs\": {\"kind\": \"counter\", \"value\": 3}"
            ", \"join.wall_seconds\": {\"kind\": \"timer\", "
            "\"total_seconds\": 1.5, \"count\": 1}}");
}

TEST(MetricsRegistryTest, HistogramAppearsInSnapshotAndJson) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("fabric.message_bytes");
  h.Observe(100.0);
  h.Observe(100.0);
  h.Observe(4096.0);
  std::vector<MetricsRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_STREQ(samples[0].kind, "histogram");
  EXPECT_EQ(samples[0].count, 3u);
  EXPECT_DOUBLE_EQ(samples[0].value, 4296.0);
  ASSERT_EQ(samples[0].buckets.size(), 2u);
  EXPECT_EQ(samples[0].buckets[0].second, 2u);  // the two 100s
  EXPECT_EQ(samples[0].buckets[1].second, 1u);
  EXPECT_EQ(registry.ToJson(),
            "{\"fabric.message_bytes\": {\"kind\": \"histogram\", "
            "\"sum\": 4296, \"count\": 3, "
            "\"buckets\": {\"128\": 2, \"4096\": 1}}}");
}

TEST(MetricsRegistryTest, ToPrometheusRendersAllKinds) {
  MetricsRegistry registry;
  registry.counter("join.runs").Increment(3);
  registry.gauge("join.last_net_seconds").Set(0.5);
  registry.timer("join.wall_seconds").Record(1.5);
  Histogram& h = registry.histogram("fabric.message_bytes");
  h.Observe(100.0);
  h.Observe(4096.0);
  std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# TYPE join_runs counter\njoin_runs 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE join_last_net_seconds gauge\n"
                      "join_last_net_seconds 0.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE join_wall_seconds summary\n"
                      "join_wall_seconds_sum 1.5\n"
                      "join_wall_seconds_count 1\n"),
            std::string::npos)
      << text;
  // Histogram buckets are cumulative and close with +Inf / _sum / _count.
  EXPECT_NE(text.find("# TYPE fabric_message_bytes histogram\n"
                      "fabric_message_bytes_bucket{le=\"128\"} 1\n"
                      "fabric_message_bytes_bucket{le=\"4096\"} 2\n"
                      "fabric_message_bytes_bucket{le=\"+Inf\"} 2\n"
                      "fabric_message_bytes_sum 4196\n"
                      "fabric_message_bytes_count 2\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, JsonEscapesControlCharacters) {
  MetricsRegistry registry;
  registry.counter("a\"b\\c\nd").Increment();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a\\\"b\\\\c\\nd\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("hits").Increment();
        registry.timer("latency").Record(1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.timer("latency").Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ResetForTestDropsInstruments) {
  MetricsRegistry registry;
  registry.counter("gone").Increment(5);
  registry.ResetForTest();
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.counter("gone").Value(), 0u);
}

TEST(MetricsRegistryTest, GlobalIsOneRegistry) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace tj
