#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tj {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, HoldsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
}

TEST(TimerMetricTest, AccumulatesAndAverages) {
  TimerMetric t;
  EXPECT_EQ(t.Count(), 0u);
  EXPECT_EQ(t.MeanSeconds(), 0.0);
  t.Record(1.0);
  t.Record(3.0);
  EXPECT_EQ(t.Count(), 2u);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(t.MeanSeconds(), 2.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.Increment(7);
  EXPECT_EQ(registry.counter("x").Value(), 7u);
  // Distinct kinds with the same name are distinct instruments.
  registry.gauge("x").Set(1.0);
  EXPECT_EQ(registry.counter("x").Value(), 7u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(1);
  registry.gauge("alpha").Set(2.0);
  registry.timer("mid").Record(0.5);
  std::vector<MetricsRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_STREQ(samples[0].kind, "gauge");
  EXPECT_STREQ(samples[1].kind, "timer");
  EXPECT_STREQ(samples[2].kind, "counter");
  EXPECT_EQ(samples[1].count, 1u);
}

TEST(MetricsRegistryTest, ToJsonGolden) {
  MetricsRegistry registry;
  registry.counter("join.runs").Increment(3);
  registry.gauge("join.last_net_seconds").Set(0.5);
  registry.timer("join.wall_seconds").Record(1.5);
  EXPECT_EQ(registry.ToJson(),
            "{\"join.last_net_seconds\": {\"kind\": \"gauge\", \"value\": 0.5}"
            ", \"join.runs\": {\"kind\": \"counter\", \"value\": 3}"
            ", \"join.wall_seconds\": {\"kind\": \"timer\", "
            "\"total_seconds\": 1.5, \"count\": 1}}");
}

TEST(MetricsRegistryTest, JsonEscapesControlCharacters) {
  MetricsRegistry registry;
  registry.counter("a\"b\\c\nd").Increment();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a\\\"b\\\\c\\nd\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("hits").Increment();
        registry.timer("latency").Record(1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.timer("latency").Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ResetForTestDropsInstruments) {
  MetricsRegistry registry;
  registry.counter("gone").Increment(5);
  registry.ResetForTest();
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.counter("gone").Value(), 0u);
}

TEST(MetricsRegistryTest, GlobalIsOneRegistry) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace tj
