#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tj {
namespace {

/// The tracer is a process-wide singleton; every test leaves it disabled
/// and empty so the others (and any instrumented code the gtest harness
/// touches) see a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndSpansRecordNothing) {
  EXPECT_FALSE(Tracer::enabled());
  { TraceSpan span("kernel", "ignored", 42); }
  Tracer::Global().RecordCounter("nic.ingress_bytes", 0, 7);
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
}

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  Tracer::Global().Enable();
  { TraceSpan span("phase", "track", 123); }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "track");
  EXPECT_STREQ(events[0].category, "phase");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].value, 123);
  EXPECT_EQ(events[0].node, kTraceNoNode);
  EXPECT_GE(events[0].dur_us, 0);
}

TEST_F(TraceTest, ScopedTraceNodeAttributesAndRestores) {
  Tracer::Global().Enable();
  EXPECT_EQ(CurrentTraceNode(), kTraceNoNode);
  {
    ScopedTraceNode node(3);
    EXPECT_EQ(CurrentTraceNode(), 3u);
    {
      ScopedTraceNode inner(5);
      TraceSpan span("kernel", "inner");
    }
    EXPECT_EQ(CurrentTraceNode(), 3u);
    TraceSpan span("kernel", "outer");
  }
  EXPECT_EQ(CurrentTraceNode(), kTraceNoNode);
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].node, 5u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].node, 3u);
}

TEST_F(TraceTest, SpanOpenAcrossEnableDoesNotRecord) {
  // A span constructed while disabled must stay silent even if tracing is
  // switched on before it closes — it never read the clock.
  TraceSpan* span = new TraceSpan("kernel", "late");
  Tracer::Global().Enable();
  delete span;
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
}

TEST_F(TraceTest, CountersAndLabelsExportToChromeJson) {
  Tracer::Global().Enable();
  Tracer::Global().SetProcessLabel(0, "node 0");
  Tracer::Global().RecordCounter("nic.ingress_bytes", 0, 4096);
  {
    ScopedTraceNode node(0);
    TraceSpan span("phase", "track", 10);
  }
  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"node 0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"nic.ingress_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\": 4096"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\": 10"), std::string::npos) << json;
}

TEST_F(TraceTest, HostileSpanNamesAreEscaped) {
  Tracer::Global().Enable();
  { TraceSpan span("phase", "a\"b\\c\nd"); }
  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"a\\\"b\\\\c\\nd\""), std::string::npos) << json;
}

TEST_F(TraceTest, ThreadsMergeSortedByStartTime) {
  Tracer::Global().Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      ScopedTraceNode node(static_cast<uint32_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("kernel", "work");
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_start_us, events[i].t_start_us);
  }
}

TEST_F(TraceTest, ClearDropsEventsButKeepsEnabled) {
  Tracer::Global().Enable();
  { TraceSpan span("kernel", "x"); }
  EXPECT_EQ(Tracer::Global().EventCount(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().EventCount(), 0u);
  EXPECT_TRUE(Tracer::enabled());
}

}  // namespace
}  // namespace tj
