#include "obs/explain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

TEST(AuditPlacementTest, FillsBothDirectionsAndPlacementSummary) {
  KeyPlacement p;
  p.r = {{0, 100}, {1, 10}};
  p.s = {{1, 40}};
  p.tracker = 0;
  p.msg_bytes = 5;
  KeyScheduleAudit audit = AuditPlacement(p);
  EXPECT_EQ(audit.broadcast_cost[0], SelectiveBroadcastCost(p, Direction::kRtoS));
  EXPECT_EQ(audit.broadcast_cost[1], SelectiveBroadcastCost(p, Direction::kStoR));
  MigrationPlan r_plan = PlanMigrateAndBroadcast(p, Direction::kRtoS);
  MigrationPlan s_plan = PlanMigrateAndBroadcast(p, Direction::kStoR);
  EXPECT_EQ(audit.plan_cost[0], r_plan.cost);
  EXPECT_EQ(audit.plan_cost[1], s_plan.cost);
  EXPECT_EQ(audit.migrate_count[0], r_plan.migrate.size());
  EXPECT_EQ(audit.migrate_count[1], s_plan.migrate.size());
  EXPECT_EQ(audit.r_bytes, 110u);
  EXPECT_EQ(audit.s_bytes, 40u);
  EXPECT_EQ(audit.r_nodes, 2u);
  EXPECT_EQ(audit.s_nodes, 1u);
  // Hash join ships everything not already at the hash destination (the
  // tracker): 110 + 40 minus the 100 R bytes resident at node 0.
  EXPECT_EQ(audit.hash_join_cost, 50u);
}

TEST(AuditPlacementTest, ClassifyAudit) {
  KeyScheduleAudit audit;
  audit.chosen_cost = 0;
  audit.chosen_migrations = 0;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kFree);
  audit.chosen_cost = 10;
  audit.chosen_dir = Direction::kRtoS;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kBroadcastRtoS);
  audit.chosen_dir = Direction::kStoR;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kBroadcastStoR);
  audit.chosen_migrations = 2;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kMigrated);
  // A split key is hot_split no matter what else the record says.
  audit.chosen_split = 3;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kHotSplit);
  audit.chosen_migrations = 0;
  EXPECT_EQ(ClassifyAudit(audit), ScheduleClass::kHotSplit);
}

TEST(ScheduleAuditLogTest, CollectConcatenatesInNodeOrder) {
  ScheduleAuditLog log;
  EXPECT_FALSE(log.armed());
  log.Reset(3);
  EXPECT_TRUE(log.armed());
  KeyScheduleAudit a;
  a.key = 7;
  log.Record(2, a);
  a.key = 3;
  log.Record(0, a);
  std::vector<KeyScheduleAudit> all = log.Collect();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, 3u);
  EXPECT_EQ(all[1].key, 7u);
  log.Reset(3);
  EXPECT_TRUE(log.Collect().empty());
}

Workload SpreadWorkload() {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.seed = 7;
  spec.matched_keys = 200;
  spec.r_multiplicity = 6;
  spec.s_multiplicity = 6;
  spec.r_pattern = {5, 1};
  spec.s_pattern = {1, 5};
  spec.collocation = Collocation::kIntra;
  spec.r_unmatched = 40;
  spec.s_unmatched = 0;
  spec.r_payload = 4;
  spec.s_payload = 4;
  return GenerateWorkload(spec);
}

ScheduleExplain RunAudited(const Workload& w, TrackJoinVersion version,
                           bool balance, const std::string& label) {
  JoinConfig config;
  config.key_bytes = 4;
  config.balance_loads = balance;
  ScheduleAuditLog audit;
  config.schedule_audit = &audit;
  Result<JoinResult> run = TryRunTrackJoin(w.r, w.s, config, version);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return BuildScheduleExplain(label, audit, run.value().traffic,
                              /*top_k=*/5);
}

/// The headline acceptance invariant: summing the per-key audited costs
/// reproduces the run's scheduled network traffic byte-for-byte, and
/// adding the tracking bytes reproduces the run's entire network traffic.
void ExpectExact(const ScheduleExplain& e) {
  EXPECT_TRUE(e.matches_traffic) << e.algorithm << ": audited "
                                 << e.scheduled_bytes << " B vs traffic "
                                 << e.traffic_scheduled_bytes << " B";
  EXPECT_EQ(e.scheduled_bytes + e.tracking_bytes, e.traffic_total_bytes)
      << e.algorithm;
  uint64_t class_keys = 0, class_bytes = 0;
  for (int c = 0; c < kNumScheduleClasses; ++c) {
    class_keys += e.by_class[c].keys;
    class_bytes += e.by_class[c].bytes;
  }
  EXPECT_EQ(class_keys, e.total_keys) << e.algorithm;
  EXPECT_EQ(class_bytes, e.scheduled_bytes) << e.algorithm;
}

TEST(ScheduleExplainTest, ThreePhaseAuditMatchesTrafficExactly) {
  Workload w = SpreadWorkload();
  ScheduleExplain e = RunAudited(w, TrackJoinVersion::k3Phase, false, "3tj");
  // One record per scheduled key: exactly the 200 matched keys (unmatched
  // keys die at the tracker and never reach the scheduler).
  EXPECT_EQ(e.total_keys, 200u);
  ExpectExact(e);
  // All 4-phase candidate fields are populated even when 3-phase ran.
  ASSERT_FALSE(e.top.empty());
  EXPECT_LE(e.top.size(), 5u);
  for (const KeyScheduleAudit& rec : e.top) {
    EXPECT_EQ(rec.chosen_migrations, 0u);
    EXPECT_GT(rec.chosen_cost, 0u);
    EXPECT_EQ(rec.chosen_cost,
              rec.broadcast_cost[static_cast<int>(rec.chosen_dir)]);
  }
}

TEST(ScheduleExplainTest, FourPhaseAuditMatchesTrafficExactly) {
  Workload w = SpreadWorkload();
  ScheduleExplain e = RunAudited(w, TrackJoinVersion::k4Phase, false, "4tj");
  EXPECT_EQ(e.total_keys, 200u);
  ExpectExact(e);
  // This workload makes consolidation profitable: 5/1-spread fragments on
  // both sides, so the 4-phase plan migrates for most matched keys.
  EXPECT_GT(e.by_class[static_cast<int>(ScheduleClass::kMigrated)].keys, 0u);
  // The chosen plan never exceeds either pure-broadcast candidate.
  for (const KeyScheduleAudit& rec : e.top) {
    EXPECT_LE(rec.chosen_cost, rec.broadcast_cost[0]);
    EXPECT_LE(rec.chosen_cost, rec.broadcast_cost[1]);
  }
}

TEST(ScheduleExplainTest, BalancedFourPhaseKeepsExactTraffic) {
  // Balance-aware scheduling only re-spends traffic-free degrees of
  // freedom, so the audit must still reconcile exactly.
  Workload w = SpreadWorkload();
  ScheduleExplain e =
      RunAudited(w, TrackJoinVersion::k4Phase, true, "4tj-balance");
  EXPECT_EQ(e.total_keys, 200u);
  ExpectExact(e);
}

TEST(ScheduleExplainTest, SavedVsHashIsHashMinusScheduled) {
  Workload w = SpreadWorkload();
  ScheduleExplain e = RunAudited(w, TrackJoinVersion::k4Phase, false, "4tj");
  EXPECT_EQ(e.saved_vs_hash_bytes,
            static_cast<int64_t>(e.hash_join_bytes) -
                static_cast<int64_t>(e.scheduled_bytes));
  // Track join's whole point on this workload: beat the hash join.
  EXPECT_GT(e.saved_vs_hash_bytes, 0);
}

TEST(ScheduleExplainTest, JsonAndTableRenderTotals) {
  Workload w = SpreadWorkload();
  ScheduleExplain e = RunAudited(w, TrackJoinVersion::k4Phase, false, "4tj");
  std::string json = ToJson(e);
  EXPECT_NE(json.find("\"algorithm\": \"4tj\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"matches_traffic\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"migrated\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"top_keys\": ["), std::string::npos) << json;
  std::string table = ToTable(e);
  EXPECT_NE(table.find("EXPLAIN 4tj"), std::string::npos) << table;
  EXPECT_NE(table.find("exact match"), std::string::npos) << table;
}

TEST(ScheduleExplainTest, HotSplitClassReconcilesExactly) {
  ZipfWorkloadSpec spec;
  spec.num_nodes = 8;
  spec.key_domain = 4000;
  spec.r_rows = 8000;
  spec.s_rows = 8000;
  spec.r_theta = 1.2;
  spec.s_theta = 1.2;
  spec.seed = 99;
  Workload w = GenerateZipfWorkload(spec);

  JoinConfig config;
  config.key_bytes = 4;
  config.hot_key_threshold = 10000;
  ScheduleAuditLog audit;
  config.schedule_audit = &audit;
  Result<JoinResult> run =
      TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ScheduleExplain e =
      BuildScheduleExplain("4tj", audit, run.value().traffic, /*top_k=*/5);
  // Split keys exist, their class carries bytes, and the per-key audit
  // still reconciles byte-for-byte against the run's traffic matrix —
  // the hot plan's modeled cost must equal what actually hit the wire.
  const auto& hot = e.by_class[static_cast<int>(ScheduleClass::kHotSplit)];
  EXPECT_GT(hot.keys, 0u);
  EXPECT_GT(hot.bytes, 0u);
  ExpectExact(e);
  // The head keys are the split ones, and the renderers surface them.
  ASSERT_FALSE(e.top.empty());
  EXPECT_GT(e.top[0].chosen_split, 0u);
  EXPECT_NE(ToJson(e).find("\"hot_split\""), std::string::npos);
  EXPECT_NE(ToTable(e).find("hot_split"), std::string::npos);
}

TEST(ScheduleExplainTest, TopKeysDeterministicUnderCostTies) {
  // Records with identical costs must surface in key order regardless of
  // insertion order, so two runs of the same audit render identically.
  for (int top_k : {3, 7}) {
    ScheduleAuditLog forward, backward;
    forward.Reset(1);
    backward.Reset(1);
    std::vector<uint64_t> keys = {11, 3, 42, 27, 8, 19, 5};
    KeyScheduleAudit a;
    a.chosen_cost = 500;  // All tied.
    a.chosen_dir = Direction::kRtoS;
    for (uint64_t k : keys) {
      a.key = k;
      forward.Record(0, a);
    }
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      a.key = *it;
      backward.Record(0, a);
    }
    TrafficMatrix traffic(1);
    ScheduleExplain f = BuildScheduleExplain("t", forward, traffic, top_k);
    ScheduleExplain b = BuildScheduleExplain("t", backward, traffic, top_k);
    ASSERT_EQ(f.top.size(), std::min<size_t>(top_k, keys.size()));
    for (size_t i = 0; i + 1 < f.top.size(); ++i) {
      EXPECT_LT(f.top[i].key, f.top[i + 1].key);  // Ties break by key.
    }
    EXPECT_EQ(ToJson(f), ToJson(b));
    EXPECT_EQ(ToTable(f), ToTable(b));
  }
}

TEST(ScheduleExplainTest, RepeatedRunsRenderIdentically) {
  // Regression: run the same audited join twice end to end; the rendered
  // EXPLAIN (including --explain-top ordering) must be byte-identical.
  Workload w = SpreadWorkload();
  ScheduleExplain a = RunAudited(w, TrackJoinVersion::k4Phase, false, "4tj");
  ScheduleExplain b = RunAudited(w, TrackJoinVersion::k4Phase, false, "4tj");
  EXPECT_EQ(ToJson(a), ToJson(b));
  EXPECT_EQ(ToTable(a), ToTable(b));
}

TEST(ScheduleExplainTest, HostileAlgorithmNameIsEscapedInJson) {
  ScheduleAuditLog log;
  log.Reset(1);
  TrafficMatrix traffic(1);
  ScheduleExplain e =
      BuildScheduleExplain("a\"b\nc", log, traffic, /*top_k=*/3);
  std::string json = ToJson(e);
  EXPECT_NE(json.find("\"a\\\"b\\nc\""), std::string::npos) << json;
}

}  // namespace
}  // namespace tj
