// Observability must be strictly passive: enabling span tracing and the
// scheduler audit may not change join results, the traffic matrix, or a
// single byte of the per-phase StepProfile — for any algorithm, with or
// without a thread pool driving the phases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "common/thread_pool.h"
#include "core/late_hash_join.h"
#include "core/rid_hash_join.h"
#include "core/schedule.h"
#include "core/track_join.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace tj {
namespace {

const char* const kAlgos[] = {"hj",    "bj-r", "bj-s",   "2tj-r",  "2tj-s",
                              "3tj",   "4tj",  "rid-hj", "late-hj"};

bool IsTrackAlgo(const std::string& name) {
  return name == "2tj-r" || name == "2tj-s" || name == "3tj" || name == "4tj";
}

Workload TestWorkload() {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.seed = 11;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_unmatched = 50;
  spec.s_unmatched = 25;
  spec.r_payload = 8;
  spec.s_payload = 8;
  return GenerateWorkload(spec);
}

JoinResult RunAlgo(const std::string& name, const Workload& w,
               const JoinConfig& config) {
  Result<JoinResult> run = [&]() -> Result<JoinResult> {
    if (name == "hj") return TryRunHashJoin(w.r, w.s, config);
    if (name == "bj-r") {
      return TryRunBroadcastJoin(w.r, w.s, config, Direction::kRtoS);
    }
    if (name == "bj-s") {
      return TryRunBroadcastJoin(w.r, w.s, config, Direction::kStoR);
    }
    if (name == "2tj-r") {
      return TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k2Phase,
                             Direction::kRtoS);
    }
    if (name == "2tj-s") {
      return TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k2Phase,
                             Direction::kStoR);
    }
    if (name == "3tj") {
      return TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k3Phase);
    }
    if (name == "4tj") {
      return TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase);
    }
    if (name == "rid-hj") return TryRunRidHashJoin(w.r, w.s, config);
    return TryRunLateMaterializedHashJoin(w.r, w.s, config);
  }();
  EXPECT_TRUE(run.ok()) << name << ": " << run.status().ToString();
  return std::move(run).value();
}

void ExpectIdentical(const JoinResult& base, const JoinResult& instrumented,
                     const std::string& label) {
  EXPECT_EQ(base.output_rows, instrumented.output_rows) << label;
  EXPECT_EQ(base.checksum.digest(), instrumented.checksum.digest()) << label;
  EXPECT_TRUE(base.traffic == instrumented.traffic) << label;
  ASSERT_EQ(base.profile.steps.size(), instrumented.profile.steps.size())
      << label;
  for (size_t i = 0; i < base.profile.steps.size(); ++i) {
    const StepRecord& a = base.profile.steps[i];
    const StepRecord& b = instrumented.profile.steps[i];
    EXPECT_EQ(a.phase, b.phase) << label;
    EXPECT_EQ(a.network_bytes_by_type, b.network_bytes_by_type)
        << label << " step " << a.phase;
    EXPECT_EQ(a.local_bytes_by_type, b.local_bytes_by_type)
        << label << " step " << a.phase;
    EXPECT_EQ(a.retransmit_bytes_by_type, b.retransmit_bytes_by_type)
        << label << " step " << a.phase;
    EXPECT_EQ(a.goodput_bytes, b.goodput_bytes) << label << " step " << a.phase;
    EXPECT_EQ(a.max_node_bytes, b.max_node_bytes)
        << label << " step " << a.phase;
  }
}

class PassivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(PassivityTest, TraceAndAuditChangeNoBytes) {
  Workload w = TestWorkload();
  ThreadPool pool(3);
  for (const char* algo : kAlgos) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      JoinConfig base_config;
      base_config.key_bytes = 4;
      base_config.thread_pool = p;
      JoinResult base = RunAlgo(algo, w, base_config);

      JoinConfig instrumented_config = base_config;
      ScheduleAuditLog audit;
      if (IsTrackAlgo(algo)) instrumented_config.schedule_audit = &audit;
      Tracer::Global().Enable();
      JoinResult instrumented = RunAlgo(algo, w, instrumented_config);
      Tracer::Global().Disable();

      const std::string label =
          std::string(algo) + (p != nullptr ? " (pool)" : " (sequential)");
      // Tracing actually happened — the run is instrumented, not skipped —
      // and still nothing observable moved.
      EXPECT_GT(Tracer::Global().EventCount(), 0u) << label;
      Tracer::Global().Clear();
      if (IsTrackAlgo(algo)) {
        EXPECT_FALSE(audit.Collect().empty()) << label;
      }
      ExpectIdentical(base, instrumented, label);
    }
  }
}

TEST_F(PassivityTest, AuditedRunsAreDeterministicAcrossThreadCounts) {
  // The audit's per-node lanes must make concurrent scheduling phases
  // race-free: identical records regardless of pool width.
  Workload w = TestWorkload();
  std::vector<std::vector<KeyScheduleAudit>> collected;
  ThreadPool pool4(4);
  ThreadPool pool2(2);
  for (ThreadPool* p :
       {static_cast<ThreadPool*>(nullptr), &pool2, &pool4}) {
    JoinConfig config;
    config.key_bytes = 4;
    config.thread_pool = p;
    ScheduleAuditLog audit;
    config.schedule_audit = &audit;
    RunAlgo("4tj", w, config);
    collected.push_back(audit.Collect());
  }
  ASSERT_EQ(collected[0].size(), collected[1].size());
  ASSERT_EQ(collected[0].size(), collected[2].size());
  for (size_t i = 0; i < collected[0].size(); ++i) {
    for (size_t v = 1; v < collected.size(); ++v) {
      EXPECT_EQ(collected[0][i].key, collected[v][i].key);
      EXPECT_EQ(collected[0][i].chosen_cost, collected[v][i].chosen_cost);
      EXPECT_EQ(collected[0][i].cls, collected[v][i].cls);
      EXPECT_EQ(collected[0][i].chosen_migrations,
                collected[v][i].chosen_migrations);
    }
  }
}

}  // namespace
}  // namespace tj
