// Critical-path blame tests against hand-built pipelined fabrics: every
// scenario's bucket sum must telescope to the modeled makespan exactly
// (microsecond integers, zero tolerance), wait classes must land where the
// scenario puts the contention (credit-exhausted vs head-of-line, egress
// HOL, straggler cpu-queue), and the JSON export must be byte-stable.
#include "obs/blame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/pipelined_fabric.h"
#include "obs/metrics.h"

namespace tj {
namespace {

int64_t Micros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

ByteBuffer Bytes(size_t size) {
  ByteBuffer buf;
  buf.assign(size, 0xAB);
  return buf;
}

PipelinedFabric::Params SmallParams(uint32_t nodes) {
  PipelinedFabric::Params params;
  params.num_nodes = nodes;
  params.cost.cpu_bandwidth_bytes_per_sec = 100.0;  // 1 byte = 10 ms.
  params.cost.net_bandwidth_bytes_per_sec = 100.0;
  params.chunk_bytes = 64;
  params.inbox_budget_bytes = 64 * nodes;  // window = 64 bytes per link.
  return params;
}

int64_t ClassUs(const BlameReport& report, BlameClass cls) {
  return report.class_us[static_cast<int>(cls)];
}

void ExpectReconciled(const BlameReport& report,
                      const PipelinedFabric& fabric) {
  EXPECT_EQ(report.makespan_us, Micros(fabric.makespan_seconds()));
  EXPECT_EQ(report.bucket_sum_us, report.makespan_us);
  EXPECT_TRUE(report.reconciled);
  int64_t class_sum = 0;
  for (int c = 0; c < kNumBlameClasses; ++c) class_sum += report.class_us[c];
  EXPECT_EQ(class_sum, report.makespan_us);
  int64_t bucket_sum = 0;
  for (const BlameBucket& bucket : report.buckets) {
    EXPECT_GT(bucket.micros, 0);
    EXPECT_LT(bucket.node, report.num_nodes);
    bucket_sum += bucket.micros;
  }
  EXPECT_EQ(bucket_sum, report.makespan_us);
}

TEST(BlameTest, EmptyFabricReconcilesToZero) {
  PipelinedFabric fabric(SmallParams(2));
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport report = BuildBlameReport(fabric);
  EXPECT_EQ(report.makespan_us, 0);
  EXPECT_EQ(report.bucket_sum_us, 0);
  EXPECT_TRUE(report.reconciled);
  EXPECT_TRUE(report.buckets.empty());
}

TEST(BlameTest, ChainSplitsIntoComputeAndWire) {
  // 1 s sender CPU, 0.5 s wire, 0.5 s handler CPU: the whole 2 s makespan
  // is compute + wire, with zero queueing anywhere.
  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
    fabric.ChargeCpuBytes(chunk.data.size());
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.ChargeCpuBytes(100);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(50), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_EQ(report.makespan_us, 2000000);
  EXPECT_EQ(ClassUs(report, BlameClass::kCompute), 1500000);
  EXPECT_EQ(ClassUs(report, BlameClass::kWire), 500000);
  EXPECT_EQ(report.hol_us, 0);
}

TEST(BlameTest, ExhaustedCreditWindowIsChargedToTheLink) {
  // The 64-byte window holds exactly the first chunk; the second sits at
  // the (empty) FIFO head until the first handler finishes, so its wait is
  // credit_exhausted, not head-of-line.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t hol_before =
      metrics.counter("pipeline.credit_stall_hol_total").Value();
  const uint64_t exhausted_before =
      metrics.counter("pipeline.credit_stall_exhausted_total").Value();
  const uint64_t hist_before =
      metrics.histogram("pipeline.credit_stall_seconds").Count();

  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(100);  // Each handler takes 1 s.
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(32), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  // chunk1 wire [0, 0.64), handler [0.64, 1.64); chunk2 granted at 1.64,
  // wire [1.64, 1.96), handler [1.96, 2.96).
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_EQ(report.makespan_us, 2960000);
  EXPECT_EQ(ClassUs(report, BlameClass::kCreditExhausted), 1640000);
  EXPECT_EQ(ClassUs(report, BlameClass::kCreditHol), 0);
  EXPECT_EQ(report.hol_us, 0);

  EXPECT_EQ(metrics.counter("pipeline.credit_stall_hol_total").Value(),
            hol_before);
  EXPECT_EQ(metrics.counter("pipeline.credit_stall_exhausted_total").Value(),
            exhausted_before + 1);
  EXPECT_EQ(metrics.histogram("pipeline.credit_stall_seconds").Count(),
            hist_before + 1);
}

TEST(BlameTest, QueuedBehindAnotherChunkIsHeadOfLine) {
  // Three 64-byte chunks into a one-chunk window: the second stalls on an
  // empty queue (exhausted), the third stalls behind it (head-of-line).
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t hol_before =
      metrics.counter("pipeline.credit_stall_hol_total").Value();
  const uint64_t exhausted_before =
      metrics.counter("pipeline.credit_stall_exhausted_total").Value();

  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  EXPECT_EQ(metrics.counter("pipeline.credit_stall_hol_total").Value(),
            hol_before + 1);
  EXPECT_EQ(metrics.counter("pipeline.credit_stall_exhausted_total").Value(),
            exhausted_before + 1);

  // The last handler chains through the third chunk, whose [admit, head)
  // wait spans the whole first handler turnaround.
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_GT(ClassUs(report, BlameClass::kCreditHol), 0);
  EXPECT_GT(report.hol_us, 0);
}

TEST(BlameTest, EgressWaitBehindOtherDestinationIsHol) {
  // One task sends to two different destinations back to back: the second
  // chunk has credit (different link) but finds the egress NIC held by the
  // transfer to the *other* destination — egress head-of-line.
  PipelinedFabric fabric(SmallParams(3));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    fabric.SendChunk(0, 2, MessageType::kDataR, Bytes(64), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  const auto& chunks = fabric.chunk_timings();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_FALSE(chunks[0].egress_hol);
  EXPECT_TRUE(chunks[1].egress_hol);
  // Root: node 2's handler, behind the second chunk's egress-HOL wait.
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_EQ(ClassUs(report, BlameClass::kEgressHol), 640000);
  EXPECT_EQ(report.hol_us, 640000);
}

TEST(BlameTest, DrrQuantumCursorWaitIsChargedAsDrrWait) {
  // DRR with a one-chunk quantum: node 0 sends two 64-byte chunks to node
  // 1 and one 128-byte chunk to node 2. The first d1 chunk is served solo
  // (top-up rounds accumulate only its queue). At its transfer-done the
  // top-up round hands every queue one quantum: d1's front is eligible and
  // wins, but d2's double-size front is still deficit-short — it *lost to
  // the quantum cursor*, which is exactly the drr_wait class. The d2 chunk
  // is the last arrival, so the whole decomposition sits on the critical
  // path:
  //   [0, 0.64)      egress_hol (NIC busy with the first d1 transfer)
  //   [0.64, 1.28)   drr_wait   (ready but deficit-short at the pick)
  //   [1.28, 2.56)   wire
  PipelinedFabric::Params params = SmallParams(3);
  params.egress_policy = EgressSchedPolicy::kDrr;
  params.drr_quantum_bytes = 64;
  params.inbox_budget_bytes = 1 << 20;  // Credit never binds here.
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/false);
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    fabric.SendChunk(0, 2, MessageType::kDataR, Bytes(128), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_EQ(report.makespan_us, 2560000);
  EXPECT_EQ(ClassUs(report, BlameClass::kEgressHol), 640000);
  EXPECT_EQ(ClassUs(report, BlameClass::kDrrWait), 640000);
  EXPECT_EQ(ClassUs(report, BlameClass::kWire), 1280000);
  // drr_wait is quantum-cursor fairness, not head-of-line blocking.
  EXPECT_EQ(report.hol_us, 640000);
}

TEST(BlameTest, StragglerLateStartShowsAsCpuQueue) {
  // A slow node's CPU comes up late: its first task is ready at time zero
  // but waits for the CPU, so the whole delay is cpu_queue on that node.
  FaultPolicy policy;
  policy.slow_node = 1;
  policy.slowdown_seconds = 3.0;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  PipelinedFabric fabric(params);
  fabric.Post(1, "work", "late", [&] {
    fabric.ChargeCpuBytes(100);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_EQ(report.makespan_us, 4000000);
  EXPECT_EQ(ClassUs(report, BlameClass::kCpuQueue), 3000000);
  EXPECT_EQ(ClassUs(report, BlameClass::kCompute), 1000000);
}

TEST(BlameTest, DeliveryFaultRetriesStayReconciled) {
  // Dropped frames retry inline on the wire; the retry time lands in the
  // wire class and the sum still telescopes exactly.
  FaultPolicy policy;
  policy.drop = 0.3;
  PipelinedFabric::Params params = SmallParams(2);
  params.fault_policy = &policy;
  params.fault_seed = 11;
  PipelinedFabric fabric(params);
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(50);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    for (int i = 0; i < 8; ++i) {
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), i == 7);
    }
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  ASSERT_GT(fabric.reliability().faults.frames_dropped, 0u);
  BlameReport report = BuildBlameReport(fabric);
  ExpectReconciled(report, fabric);
  EXPECT_GT(ClassUs(report, BlameClass::kWire), 0);
}

TEST(BlameTest, ReportAndJsonAreDeterministic) {
  auto run = [] {
    PipelinedFabric fabric(SmallParams(3));
    fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk& chunk) {
      fabric.ChargeCpuBytes(chunk.data.size());
      return Status::OK();
    });
    for (uint32_t src = 0; src < 3; ++src) {
      fabric.Post(src, "send", "s" + std::to_string(src), [&fabric, src] {
        fabric.ChargeCpuBytes(40 * (src + 1));
        for (uint32_t dst = 0; dst < 3; ++dst) {
          if (dst == src) continue;
          fabric.SendChunk(src, dst, MessageType::kDataR, Bytes(64), true);
        }
        return Status::OK();
      });
    }
    EXPECT_TRUE(fabric.Run().ok());
    BlameReport report = BuildBlameReport(fabric);
    report.algorithm = "test";
    return ToJson(report);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(BlameTest, TopKTruncatesEdgesButNotBuckets) {
  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(10);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    for (int i = 0; i < 6; ++i) {
      fabric.ChargeCpuBytes(10);
      fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(32), i == 5);
    }
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport full = BuildBlameReport(fabric, /*top_k=*/100);
  BlameReport capped = BuildBlameReport(fabric, /*top_k=*/2);
  ASSERT_GT(full.top_edges.size(), 2u);
  EXPECT_EQ(capped.top_edges.size(), 2u);
  // Truncation is presentation only: totals and buckets are untouched.
  EXPECT_EQ(capped.bucket_sum_us, full.bucket_sum_us);
  EXPECT_EQ(capped.buckets.size(), full.buckets.size());
  EXPECT_TRUE(capped.reconciled);
}

TEST(BlameTest, TableRendersHeaderAndClasses) {
  PipelinedFabric fabric(SmallParams(2));
  fabric.OnChunk(MessageType::kDataR, "recv", [&](const Chunk&) {
    fabric.ChargeCpuBytes(50);
    return Status::OK();
  });
  fabric.Post(0, "send", "s", [&] {
    fabric.SendChunk(0, 1, MessageType::kDataR, Bytes(64), /*eos=*/true);
    return Status::OK();
  });
  ASSERT_TRUE(fabric.Run().ok());
  BlameReport report = BuildBlameReport(fabric);
  report.algorithm = "4tj-p";
  const std::string table = ToTable(report);
  EXPECT_NE(table.find("critical-path blame: algorithm=4tj-p"),
            std::string::npos);
  EXPECT_NE(table.find("reconciled=yes"), std::string::npos);
  for (int c = 0; c < kNumBlameClasses; ++c) {
    EXPECT_NE(table.find(BlameClassName(static_cast<BlameClass>(c))),
              std::string::npos);
  }
}

}  // namespace
}  // namespace tj
