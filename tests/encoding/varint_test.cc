#include "encoding/varint.h"

#include <gtest/gtest.h>

#include <vector>

namespace tj {
namespace {

const std::vector<uint64_t> kSamples = {
    0,   1,   99,  100,  127,  128,   255,        256,
    9999, 10000, 16383, 16384, 1234567890ULL, ~0ULL, (1ULL << 32), 42};

TEST(Leb128Test, RoundTrip) {
  ByteBuffer buf;
  for (uint64_t v : kSamples) EncodeLeb128(v, &buf);
  ByteReader reader(buf);
  for (uint64_t v : kSamples) EXPECT_EQ(DecodeLeb128(&reader), v);
  EXPECT_TRUE(reader.Done());
}

TEST(Leb128Test, SizeMatchesEncoding) {
  for (uint64_t v : kSamples) {
    ByteBuffer buf;
    EncodeLeb128(v, &buf);
    EXPECT_EQ(buf.size(), Leb128Size(v)) << v;
  }
}

TEST(Leb128Test, KnownSizes) {
  EXPECT_EQ(Leb128Size(0), 1u);
  EXPECT_EQ(Leb128Size(127), 1u);
  EXPECT_EQ(Leb128Size(128), 2u);
  EXPECT_EQ(Leb128Size(16383), 2u);
  EXPECT_EQ(Leb128Size(16384), 3u);
  EXPECT_EQ(Leb128Size(~0ULL), 10u);
}

TEST(Base100Test, RoundTrip) {
  ByteBuffer buf;
  for (uint64_t v : kSamples) EncodeBase100(v, &buf);
  ByteReader reader(buf);
  for (uint64_t v : kSamples) EXPECT_EQ(DecodeBase100(&reader), v);
  EXPECT_TRUE(reader.Done());
}

TEST(Base100Test, SizeMatchesEncoding) {
  for (uint64_t v : kSamples) {
    ByteBuffer buf;
    EncodeBase100(v, &buf);
    EXPECT_EQ(buf.size(), Base100Size(v)) << v;
  }
}

TEST(Base100Test, SizeIsDigitPairs) {
  // Base-100: one byte per two decimal digits — the paper's NUMBER widths.
  EXPECT_EQ(Base100Size(0), 1u);
  EXPECT_EQ(Base100Size(99), 1u);
  EXPECT_EQ(Base100Size(100), 2u);
  EXPECT_EQ(Base100Size(9999), 2u);
  EXPECT_EQ(Base100Size(10000), 3u);
  EXPECT_EQ(Base100Size(999999), 3u);
  // A 12-decimal-digit id needs 6 bytes.
  EXPECT_EQ(Base100Size(999999999999ULL), 6u);
}

TEST(Base100Test, ExhaustiveSmallRange) {
  ByteBuffer buf;
  for (uint64_t v = 0; v < 20000; ++v) EncodeBase100(v, &buf);
  ByteReader reader(buf);
  for (uint64_t v = 0; v < 20000; ++v) ASSERT_EQ(DecodeBase100(&reader), v);
}

}  // namespace
}  // namespace tj
