#include "encoding/node_group.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace tj {
namespace {

std::vector<KeyNodePair> Sorted(std::vector<KeyNodePair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const KeyNodePair& a, const KeyNodePair& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.key < b.key;
            });
  return pairs;
}

TEST(NodeGroupTest, RoundTrip) {
  std::vector<KeyNodePair> pairs = {
      {100, 2}, {5, 0}, {7, 2}, {100, 0}, {3, 1}};
  ByteBuffer buf;
  NodeGroupEncode(pairs, /*key_bytes=*/4, &buf);
  ByteReader reader(buf);
  auto decoded = NodeGroupDecode(&reader, 4);
  EXPECT_EQ(Sorted(decoded), Sorted(pairs));
  EXPECT_TRUE(reader.Done());
}

TEST(NodeGroupTest, SizeMatchesEncoding) {
  Rng rng(3);
  std::vector<KeyNodePair> pairs;
  for (int i = 0; i < 1000; ++i) {
    pairs.push_back({rng.Below(1 << 20), static_cast<uint32_t>(rng.Below(8))});
  }
  ByteBuffer buf;
  NodeGroupEncode(pairs, 3, &buf);
  EXPECT_EQ(buf.size(), NodeGroupEncodedSize(pairs, 3));
}

TEST(NodeGroupTest, GroupingBeatsUngroupedForManyKeysPerNode) {
  std::vector<KeyNodePair> pairs;
  for (uint64_t k = 0; k < 500; ++k) pairs.push_back({k, 3});
  // Grouped: ~1 node label total. Ungrouped: 1 node byte per pair.
  EXPECT_LT(NodeGroupEncodedSize(pairs, 4), UngroupedSize(pairs, 4));
}

TEST(NodeGroupTest, EmptyInput) {
  ByteBuffer buf;
  NodeGroupEncode({}, 4, &buf);
  ByteReader reader(buf);
  EXPECT_TRUE(NodeGroupDecode(&reader, 4).empty());
}

TEST(NodeGroupTest, SingleNodeManyKeys) {
  std::vector<KeyNodePair> pairs;
  for (uint64_t k = 10; k < 20; ++k) pairs.push_back({k, 7});
  ByteBuffer buf;
  NodeGroupEncode(pairs, 2, &buf);
  ByteReader reader(buf);
  auto decoded = NodeGroupDecode(&reader, 2);
  ASSERT_EQ(decoded.size(), 10u);
  for (const auto& p : decoded) EXPECT_EQ(p.node, 7u);
}

}  // namespace
}  // namespace tj
