#include "encoding/encoding.h"

#include <gtest/gtest.h>

namespace tj {
namespace {

TEST(EncodingTest, SchemeNames) {
  EXPECT_STREQ(EncodingSchemeName(EncodingScheme::kFixedByte), "FixedByte");
  EXPECT_STREQ(EncodingSchemeName(EncodingScheme::kVariableByte),
               "VariableByte");
  EXPECT_STREQ(EncodingSchemeName(EncodingScheme::kDictionary), "Dictionary");
}

TEST(EncodingTest, DictionaryIsExactBits) {
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kDictionary, 30, 0), 3000u);
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kDictionary, 6, 0), 600u);
}

TEST(EncodingTest, FixedByteRoundsUp) {
  // 30-bit codes round to 4 bytes = 32 bits.
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kFixedByte, 30, 0), 3200u);
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kFixedByte, 6, 0), 800u);
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kFixedByte, 9, 0), 1600u);
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kFixedByte, 33, 0), 6400u);
}

TEST(EncodingTest, VariableByteUsesRawWidth) {
  // avg_raw_bytes_x100 = 350 means 3.5 bytes -> 28 bits.
  EXPECT_EQ(EncodedBitsX100(EncodingScheme::kVariableByte, 30, 350), 2800u);
}

TEST(EncodingTest, AverageBase100SingleBucket) {
  // All of [0,99] take 1 byte.
  EXPECT_EQ(AverageBase100BytesX100(0, 99), 100u);
  // All of [100, 9999] take 2 bytes.
  EXPECT_EQ(AverageBase100BytesX100(100, 9999), 200u);
}

TEST(EncodingTest, AverageBase100MixedBuckets) {
  // [0, 199]: 100 values of 1 byte + 100 of 2 bytes -> 1.5 avg.
  EXPECT_EQ(AverageBase100BytesX100(0, 199), 150u);
}

TEST(EncodingTest, AverageBase100SingleValue) {
  EXPECT_EQ(AverageBase100BytesX100(5, 5), 100u);
  EXPECT_EQ(AverageBase100BytesX100(100, 100), 200u);
  EXPECT_EQ(AverageBase100BytesX100(10000, 10000), 300u);
}

TEST(EncodingTest, AverageBase100LargeRangeDominatedByTop) {
  // Uniform over [0, 10^12): almost all values need 6 bytes.
  uint32_t avg = AverageBase100BytesX100(0, 999999999999ULL);
  EXPECT_GE(avg, 594u);
  EXPECT_LE(avg, 600u);
}

TEST(EncodingTest, AverageBase100HandlesHugeValues) {
  uint32_t avg = AverageBase100BytesX100(~0ULL - 10, ~0ULL);
  EXPECT_EQ(avg, 1000u);  // 2^64-1 has 20 digits -> 10 bytes.
}

}  // namespace
}  // namespace tj
