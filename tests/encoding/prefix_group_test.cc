#include "encoding/prefix_group.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace tj {
namespace {

TEST(PrefixGroupTest, RoundTrip) {
  std::vector<uint64_t> values = {0, 1, 255, 256, 300, 70000, 70001};
  for (uint32_t prefix : {0u, 4u, 8u, 16u}) {
    ByteBuffer buf;
    PrefixGroupEncode(values, 32, prefix, &buf);
    ByteReader reader(buf);
    std::vector<uint64_t> decoded = PrefixGroupDecode(&reader, 32, prefix);
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(decoded, sorted) << "prefix=" << prefix;
    EXPECT_TRUE(reader.Done());
  }
}

TEST(PrefixGroupTest, SizeMatchesEncoding) {
  Rng rng(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.Below(1 << 24));
  for (uint32_t prefix : {0u, 8u, 12u, 23u}) {
    ByteBuffer buf;
    PrefixGroupEncode(values, 24, prefix, &buf);
    EXPECT_EQ(buf.size(), PrefixGroupEncodedSize(values, 24, prefix));
  }
}

TEST(PrefixGroupTest, SharedPrefixesShrinkOutput) {
  // Many values under few prefixes: grouping should beat flat packing.
  std::vector<uint64_t> values;
  Rng rng(5);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 1000; ++i) {
      values.push_back((static_cast<uint64_t>(p) << 24) | rng.Below(1 << 24));
    }
  }
  uint64_t flat = PrefixGroupEncodedSize(values, 32, 0);
  uint64_t grouped = PrefixGroupEncodedSize(values, 32, 8);
  EXPECT_LT(grouped, flat);
}

TEST(PrefixGroupTest, BestPrefixIsNoWorseThanEndpoints) {
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.Below(1 << 20));
  uint32_t best = BestPrefixBits(values, 20);
  uint64_t best_size = PrefixGroupEncodedSize(values, 20, best);
  for (uint32_t p = 0; p < 20; ++p) {
    EXPECT_LE(best_size, PrefixGroupEncodedSize(values, 20, p));
  }
}

TEST(PrefixGroupTest, DuplicatesSurvive) {
  std::vector<uint64_t> values = {7, 7, 7, 7, 8, 8};
  ByteBuffer buf;
  PrefixGroupEncode(values, 8, 4, &buf);
  ByteReader reader(buf);
  EXPECT_EQ(PrefixGroupDecode(&reader, 8, 4), values);
}

TEST(PrefixGroupTest, EmptyInput) {
  ByteBuffer buf;
  PrefixGroupEncode({}, 16, 8, &buf);
  ByteReader reader(buf);
  EXPECT_TRUE(PrefixGroupDecode(&reader, 16, 8).empty());
}

TEST(PrefixGroupTest, SixtyFourBitWidth) {
  Rng rng(9);
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Next());
  ByteBuffer buf;
  PrefixGroupEncode(values, 64, 16, &buf);
  ByteReader reader(buf);
  std::vector<uint64_t> decoded = PrefixGroupDecode(&reader, 64, 16);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(decoded, values);
}

}  // namespace
}  // namespace tj
