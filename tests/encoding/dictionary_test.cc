#include "encoding/dictionary.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tj {
namespace {

TEST(DictionaryTest, BuildSortsAndDeduplicates) {
  Dictionary dict = Dictionary::Build({5, 3, 5, 1, 3, 9});
  EXPECT_EQ(dict.size(), 4u);
  EXPECT_EQ(dict.values(), (std::vector<uint64_t>{1, 3, 5, 9}));
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary dict = Dictionary::Build({100, 42, 7, 99999});
  for (uint64_t v : {7ULL, 42ULL, 100ULL, 99999ULL}) {
    auto code = dict.Encode(v);
    ASSERT_TRUE(code.ok()) << v;
    EXPECT_EQ(dict.Decode(*code), v);
  }
}

TEST(DictionaryTest, OrderPreserving) {
  Dictionary dict = Dictionary::Build({30, 10, 20});
  EXPECT_LT(*dict.Encode(10), *dict.Encode(20));
  EXPECT_LT(*dict.Encode(20), *dict.Encode(30));
}

TEST(DictionaryTest, MissingValueIsNotFound) {
  Dictionary dict = Dictionary::Build({1, 2, 3});
  EXPECT_FALSE(dict.Encode(4).ok());
  EXPECT_EQ(dict.Encode(4).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(dict.Contains(4));
  EXPECT_TRUE(dict.Contains(2));
}

TEST(DictionaryTest, CodeBitsIsCeilLog2) {
  EXPECT_EQ(Dictionary::Build({1}).code_bits(), 1u);
  EXPECT_EQ(Dictionary::Build({1, 2}).code_bits(), 1u);
  EXPECT_EQ(Dictionary::Build({1, 2, 3}).code_bits(), 2u);
  std::vector<uint64_t> values(53);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * 7;
  EXPECT_EQ(Dictionary::Build(values).code_bits(), 6u);  // Table 1: T.ID.
}

TEST(DictionaryTest, LargeRandomRoundTrip) {
  Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Next());
  Dictionary dict = Dictionary::Build(values);
  for (uint64_t v : values) {
    auto code = dict.Encode(v);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(dict.Decode(*code), v);
  }
}

}  // namespace
}  // namespace tj
