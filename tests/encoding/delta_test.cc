#include "encoding/delta.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tj {
namespace {

TEST(DeltaTest, RoundTripSorted) {
  std::vector<uint64_t> values = {1, 5, 5, 100, 1000000, 1000001};
  ByteBuffer buf;
  EXPECT_EQ(DeltaEncode(values, /*presorted=*/true, &buf), values.size());
  ByteReader reader(buf);
  EXPECT_EQ(DeltaDecode(&reader), values);
  EXPECT_TRUE(reader.Done());
}

TEST(DeltaTest, UnsortedInputComesBackSorted) {
  std::vector<uint64_t> values = {9, 1, 4, 4, 2};
  ByteBuffer buf;
  DeltaEncode(values, /*presorted=*/false, &buf);
  ByteReader reader(buf);
  EXPECT_EQ(DeltaDecode(&reader), (std::vector<uint64_t>{1, 2, 4, 4, 9}));
}

TEST(DeltaTest, EmptyStream) {
  ByteBuffer buf;
  DeltaEncode({}, true, &buf);
  ByteReader reader(buf);
  EXPECT_TRUE(DeltaDecode(&reader).empty());
}

TEST(DeltaTest, SizeMatchesEncoding) {
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Below(1 << 20));
  ByteBuffer buf;
  DeltaEncode(values, false, &buf);
  EXPECT_EQ(buf.size(), DeltaEncodedSize(values, false));
}

TEST(DeltaTest, DenseKeysCompressWell) {
  // Dense sorted keys have gaps of 1: one byte each, vs 4+ raw bytes.
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 10000; ++i) values.push_back(1000000000 + i);
  uint64_t size = DeltaEncodedSize(values, true);
  EXPECT_LT(size, 10000 + 16u);       // ~1 byte per key plus the header.
  EXPECT_LT(size, 4u * 10000 / 3);    // Far below 4-byte fixed keys.
}

TEST(DeltaTest, RandomRoundTrip) {
  Rng rng(11);
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Next() >> rng.Below(50));
  ByteBuffer buf;
  DeltaEncode(values, false, &buf);
  ByteReader reader(buf);
  std::vector<uint64_t> decoded = DeltaDecode(&reader);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(decoded, values);
}

}  // namespace
}  // namespace tj
