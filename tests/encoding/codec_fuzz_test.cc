// Randomized round-trip fuzzing of every wire codec, parameterized over
// seeds and value distributions. Any byte-level regression in a codec
// breaks traffic accounting silently, so these run wide.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bit_util.h"
#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/node_group.h"
#include "encoding/prefix_group.h"
#include "encoding/varint.h"

namespace tj {
namespace {

class CodecFuzzTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // Distribution 0: dense small; 1: full 64-bit; 2: mixed magnitudes;
  // 3: heavy duplicates.
  std::vector<uint64_t> MakeValues(size_t count) {
    auto [seed, dist] = GetParam();
    Rng rng(seed * 977 + dist);
    std::vector<uint64_t> values(count);
    for (auto& v : values) {
      switch (dist) {
        case 0:
          v = rng.Below(1 << 16);
          break;
        case 1:
          v = rng.Next();
          break;
        case 2:
          v = rng.Next() >> rng.Below(60);
          break;
        default:
          v = rng.Below(50);
          break;
      }
    }
    return values;
  }
};

TEST_P(CodecFuzzTest, Leb128) {
  auto values = MakeValues(2000);
  ByteBuffer buf;
  uint64_t expected_size = 0;
  for (uint64_t v : values) {
    expected_size += Leb128Size(v);
    EncodeLeb128(v, &buf);
  }
  EXPECT_EQ(buf.size(), expected_size);
  ByteReader reader(buf);
  for (uint64_t v : values) ASSERT_EQ(DecodeLeb128(&reader), v);
  EXPECT_TRUE(reader.Done());
}

TEST_P(CodecFuzzTest, Base100) {
  auto values = MakeValues(2000);
  ByteBuffer buf;
  for (uint64_t v : values) EncodeBase100(v, &buf);
  ByteReader reader(buf);
  for (uint64_t v : values) ASSERT_EQ(DecodeBase100(&reader), v);
}

TEST_P(CodecFuzzTest, BitPackAtValueWidth) {
  auto values = MakeValues(1500);
  uint64_t max_value = 1;
  for (uint64_t v : values) max_value = std::max(max_value, v);
  uint32_t bits = BitWidth(max_value);
  ByteBuffer buf;
  {
    BitPacker packer(&buf);
    for (uint64_t v : values) packer.Put(v, bits);
  }
  BitUnpacker unpacker(buf);
  for (uint64_t v : values) ASSERT_EQ(unpacker.Get(bits), v);
}

TEST_P(CodecFuzzTest, Delta) {
  auto values = MakeValues(1500);
  ByteBuffer buf;
  DeltaEncode(values, /*presorted=*/false, &buf);
  EXPECT_EQ(buf.size(), DeltaEncodedSize(values, false));
  ByteReader reader(buf);
  auto decoded = DeltaDecode(&reader);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(decoded, values);
}

TEST_P(CodecFuzzTest, PrefixGroup) {
  auto values = MakeValues(1200);
  uint64_t max_value = 1;
  for (uint64_t v : values) max_value = std::max(max_value, v);
  uint32_t width = BitWidth(max_value);
  for (uint32_t prefix : {0u, width / 3, width - 1}) {
    if (prefix >= width) continue;
    ByteBuffer buf;
    PrefixGroupEncode(values, width, prefix, &buf);
    EXPECT_EQ(buf.size(), PrefixGroupEncodedSize(values, width, prefix));
    ByteReader reader(buf);
    auto decoded = PrefixGroupDecode(&reader, width, prefix);
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(decoded, sorted) << "prefix=" << prefix;
  }
}

TEST_P(CodecFuzzTest, NodeGroup) {
  auto [seed, dist] = GetParam();
  Rng rng(seed * 31 + dist);
  std::vector<KeyNodePair> pairs;
  for (int i = 0; i < 800; ++i) {
    pairs.push_back(
        {rng.Below(1ULL << 32), static_cast<uint32_t>(rng.Below(16))});
  }
  ByteBuffer buf;
  NodeGroupEncode(pairs, 4, &buf);
  EXPECT_EQ(buf.size(), NodeGroupEncodedSize(pairs, 4));
  ByteReader reader(buf);
  auto decoded = NodeGroupDecode(&reader, 4);
  auto canon = [](std::vector<KeyNodePair> p) {
    std::sort(p.begin(), p.end(), [](const KeyNodePair& a, const KeyNodePair& b) {
      return std::tie(a.node, a.key) < std::tie(b.node, b.key);
    });
    return p;
  };
  EXPECT_EQ(canon(decoded), canon(pairs));
}

TEST_P(CodecFuzzTest, Dictionary) {
  auto values = MakeValues(1000);
  Dictionary dict = Dictionary::Build(values);
  for (uint64_t v : values) {
    auto code = dict.Encode(v);
    ASSERT_TRUE(code.ok());
    ASSERT_EQ(dict.Decode(*code), v);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndDistributions, CodecFuzzTest,
                         ::testing::Combine(::testing::Range(1, 6),
                                            ::testing::Range(0, 4)));

// Malformed-input hardening: every Try* decoder must reject truncated,
// oversized-count, and bit-flipped payloads with Status::Corruption — never
// read out of bounds, over-allocate, or abort. These are exactly the bytes
// a faulty link can hand a join phase (net/fault_injector.h), so "CHECK and
// die" is not an option on this path.
TEST(CodecMalformedTest, TruncatedLeb128) {
  ByteBuffer buf;
  EncodeLeb128(300, &buf);  // two bytes, continuation bit on the first
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteBuffer trunc;
    trunc.insert(trunc.end(), buf.begin(), buf.begin() + cut);
    ByteReader reader(trunc);
    uint64_t value = 0;
    Status status = TryDecodeLeb128(&reader, &value);
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(CodecMalformedTest, OverlongLeb128) {
  // 10 continuation bytes = 70 payload bits: more than a uint64 can hold.
  ByteBuffer buf(11, 0x80);
  buf.back() = 0x01;
  ByteReader reader(buf);
  uint64_t value = 0;
  EXPECT_EQ(TryDecodeLeb128(&reader, &value).code(), StatusCode::kCorruption);
}

TEST(CodecMalformedTest, TruncatedBase100) {
  ByteBuffer buf;
  EncodeBase100(987654321, &buf);
  ByteBuffer trunc;
  trunc.insert(trunc.end(), buf.begin(), buf.end() - 1);
  ByteReader reader(trunc);
  uint64_t value = 0;
  EXPECT_EQ(TryDecodeBase100(&reader, &value).code(), StatusCode::kCorruption);
}

TEST(CodecMalformedTest, DeltaCountExceedsPayload) {
  // Header claims 1M values but the stream holds 3 gaps: the decoder must
  // refuse before reserving room for the phantom million.
  ByteBuffer buf;
  EncodeLeb128(1000000, &buf);
  EncodeLeb128(1, &buf);
  EncodeLeb128(1, &buf);
  EncodeLeb128(1, &buf);
  ByteReader reader(buf);
  std::vector<uint64_t> out;
  EXPECT_EQ(TryDeltaDecode(&reader, &out).code(), StatusCode::kCorruption);
}

TEST(CodecMalformedTest, DeltaTruncatedMidStream) {
  std::vector<uint64_t> values = {5, 1000, 70000, 1 << 20};
  ByteBuffer buf;
  DeltaEncode(values, /*presorted=*/false, &buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    ByteBuffer trunc;
    trunc.insert(trunc.end(), buf.begin(), buf.begin() + cut);
    ByteReader reader(trunc);
    std::vector<uint64_t> out;
    EXPECT_EQ(TryDeltaDecode(&reader, &out).code(), StatusCode::kCorruption)
        << "cut=" << cut;
  }
}

TEST(CodecMalformedTest, NodeGroupBadCountsAndTrailing) {
  std::vector<KeyNodePair> pairs = {{10, 0}, {20, 0}, {30, 2}};
  ByteBuffer buf;
  NodeGroupEncode(pairs, 4, &buf);

  // Truncations at every boundary.
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    ByteBuffer trunc;
    trunc.insert(trunc.end(), buf.begin(), buf.begin() + cut);
    ByteReader reader(trunc);
    std::vector<KeyNodePair> out;
    EXPECT_EQ(TryNodeGroupDecode(&reader, 4, &out).code(),
              StatusCode::kCorruption)
        << "cut=" << cut;
  }

  // Trailing garbage after a well-formed stream.
  ByteBuffer extra = buf;
  extra.push_back(0x7f);
  ByteReader reader(extra);
  std::vector<KeyNodePair> out;
  EXPECT_EQ(TryNodeGroupDecode(&reader, 4, &out).code(),
            StatusCode::kCorruption);
}

TEST(CodecMalformedTest, PrefixGroupTruncatedHeader) {
  std::vector<uint64_t> values = {3, 9, 200, 4096, 100000};
  ByteBuffer buf;
  PrefixGroupEncode(values, /*width_bits=*/20, /*prefix_bits=*/8, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteBuffer trunc;
    trunc.insert(trunc.end(), buf.begin(), buf.begin() + cut);
    ByteReader reader(trunc);
    std::vector<uint64_t> out;
    Status status = TryPrefixGroupDecode(&reader, 20, 8, &out);
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(CodecMalformedTest, PrefixGroupCountOverflow) {
  // A group header whose count field claims far more suffixes than the
  // stream's declared total (and than the remaining bits could encode).
  ByteBuffer buf;
  EncodeLeb128(3, &buf);  // declared total
  {
    BitPacker packer(&buf);
    packer.Put(0, 8);            // prefix
    packer.Put(0xffffffff, 32);  // absurd count
    packer.Put(1, 12);           // one lonely suffix
  }
  ByteReader reader(buf);
  std::vector<uint64_t> out;
  EXPECT_EQ(TryPrefixGroupDecode(&reader, 20, 8, &out).code(),
            StatusCode::kCorruption);
}

TEST(CodecMalformedTest, DictionaryBitFlips) {
  std::vector<uint64_t> values = {7, 42, 1000, 65536, 1ULL << 40};
  Dictionary dict = Dictionary::Build(values);
  ByteBuffer page;
  dict.Serialize(&page);

  Result<Dictionary> good = Dictionary::Deserialize(page);
  ASSERT_TRUE(good.ok());

  // Flip every bit of the page: each either still parses to a dictionary
  // (a benign value change) or reports Corruption. It must never crash,
  // read out of bounds, or abort.
  for (size_t byte = 0; byte < page.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      ByteBuffer flipped = page;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      Result<Dictionary> parsed = Dictionary::Deserialize(flipped);
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption)
            << "byte=" << byte << " bit=" << bit;
      }
    }
  }

  // Truncations, too: the count byte survives every cut below, so the page
  // always promises more values than the remaining bytes can hold.
  for (size_t cut = 1; cut < page.size(); ++cut) {
    ByteBuffer trunc;
    trunc.insert(trunc.end(), page.begin(), page.begin() + cut);
    Result<Dictionary> parsed = Dictionary::Deserialize(trunc);
    ASSERT_FALSE(parsed.ok()) << "cut=" << cut;
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
  }
}

TEST(CodecMalformedTest, DictionaryRoundTrip) {
  std::vector<uint64_t> values = {1, 2, 3, 500, 1ULL << 33};
  Dictionary dict = Dictionary::Build(values);
  ByteBuffer page;
  dict.Serialize(&page);
  Result<Dictionary> parsed = Dictionary::Deserialize(page);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), dict.size());
  for (uint64_t v : values) {
    auto code = parsed->Encode(v);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(parsed->Decode(*code), v);
  }
}

}  // namespace
}  // namespace tj
