// Randomized round-trip fuzzing of every wire codec, parameterized over
// seeds and value distributions. Any byte-level regression in a codec
// breaks traffic accounting silently, so these run wide.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bit_util.h"
#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/node_group.h"
#include "encoding/prefix_group.h"
#include "encoding/varint.h"

namespace tj {
namespace {

class CodecFuzzTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // Distribution 0: dense small; 1: full 64-bit; 2: mixed magnitudes;
  // 3: heavy duplicates.
  std::vector<uint64_t> MakeValues(size_t count) {
    auto [seed, dist] = GetParam();
    Rng rng(seed * 977 + dist);
    std::vector<uint64_t> values(count);
    for (auto& v : values) {
      switch (dist) {
        case 0:
          v = rng.Below(1 << 16);
          break;
        case 1:
          v = rng.Next();
          break;
        case 2:
          v = rng.Next() >> rng.Below(60);
          break;
        default:
          v = rng.Below(50);
          break;
      }
    }
    return values;
  }
};

TEST_P(CodecFuzzTest, Leb128) {
  auto values = MakeValues(2000);
  ByteBuffer buf;
  uint64_t expected_size = 0;
  for (uint64_t v : values) {
    expected_size += Leb128Size(v);
    EncodeLeb128(v, &buf);
  }
  EXPECT_EQ(buf.size(), expected_size);
  ByteReader reader(buf);
  for (uint64_t v : values) ASSERT_EQ(DecodeLeb128(&reader), v);
  EXPECT_TRUE(reader.Done());
}

TEST_P(CodecFuzzTest, Base100) {
  auto values = MakeValues(2000);
  ByteBuffer buf;
  for (uint64_t v : values) EncodeBase100(v, &buf);
  ByteReader reader(buf);
  for (uint64_t v : values) ASSERT_EQ(DecodeBase100(&reader), v);
}

TEST_P(CodecFuzzTest, BitPackAtValueWidth) {
  auto values = MakeValues(1500);
  uint64_t max_value = 1;
  for (uint64_t v : values) max_value = std::max(max_value, v);
  uint32_t bits = BitWidth(max_value);
  ByteBuffer buf;
  {
    BitPacker packer(&buf);
    for (uint64_t v : values) packer.Put(v, bits);
  }
  BitUnpacker unpacker(buf);
  for (uint64_t v : values) ASSERT_EQ(unpacker.Get(bits), v);
}

TEST_P(CodecFuzzTest, Delta) {
  auto values = MakeValues(1500);
  ByteBuffer buf;
  DeltaEncode(values, /*presorted=*/false, &buf);
  EXPECT_EQ(buf.size(), DeltaEncodedSize(values, false));
  ByteReader reader(buf);
  auto decoded = DeltaDecode(&reader);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(decoded, values);
}

TEST_P(CodecFuzzTest, PrefixGroup) {
  auto values = MakeValues(1200);
  uint64_t max_value = 1;
  for (uint64_t v : values) max_value = std::max(max_value, v);
  uint32_t width = BitWidth(max_value);
  for (uint32_t prefix : {0u, width / 3, width - 1}) {
    if (prefix >= width) continue;
    ByteBuffer buf;
    PrefixGroupEncode(values, width, prefix, &buf);
    EXPECT_EQ(buf.size(), PrefixGroupEncodedSize(values, width, prefix));
    ByteReader reader(buf);
    auto decoded = PrefixGroupDecode(&reader, width, prefix);
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(decoded, sorted) << "prefix=" << prefix;
  }
}

TEST_P(CodecFuzzTest, NodeGroup) {
  auto [seed, dist] = GetParam();
  Rng rng(seed * 31 + dist);
  std::vector<KeyNodePair> pairs;
  for (int i = 0; i < 800; ++i) {
    pairs.push_back(
        {rng.Below(1ULL << 32), static_cast<uint32_t>(rng.Below(16))});
  }
  ByteBuffer buf;
  NodeGroupEncode(pairs, 4, &buf);
  EXPECT_EQ(buf.size(), NodeGroupEncodedSize(pairs, 4));
  ByteReader reader(buf);
  auto decoded = NodeGroupDecode(&reader, 4);
  auto canon = [](std::vector<KeyNodePair> p) {
    std::sort(p.begin(), p.end(), [](const KeyNodePair& a, const KeyNodePair& b) {
      return std::tie(a.node, a.key) < std::tie(b.node, b.key);
    });
    return p;
  };
  EXPECT_EQ(canon(decoded), canon(pairs));
}

TEST_P(CodecFuzzTest, Dictionary) {
  auto values = MakeValues(1000);
  Dictionary dict = Dictionary::Build(values);
  for (uint64_t v : values) {
    auto code = dict.Encode(v);
    ASSERT_TRUE(code.ok());
    ASSERT_EQ(dict.Decode(*code), v);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndDistributions, CodecFuzzTest,
                         ::testing::Combine(::testing::Range(1, 6),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace tj
