#include "encoding/bitpack.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tj {
namespace {

TEST(BitPackTest, RoundTripEveryWidth) {
  Rng rng(3);
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    std::vector<uint64_t> values;
    uint64_t mask = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
    for (int i = 0; i < 100; ++i) values.push_back(rng.Next() & mask);
    ByteBuffer buf;
    {
      BitPacker packer(&buf);
      for (uint64_t v : values) packer.Put(v, bits);
    }
    EXPECT_EQ(buf.size(), PackedBytes(values.size(), bits)) << bits;
    BitUnpacker unpacker(buf);
    for (uint64_t v : values) ASSERT_EQ(unpacker.Get(bits), v) << bits;
  }
}

TEST(BitPackTest, MixedWidthsInOneStream) {
  ByteBuffer buf;
  {
    BitPacker packer(&buf);
    packer.Put(1, 1);
    packer.Put(5, 3);
    packer.Put(200, 8);
    packer.Put(0x3fffffff, 30);
    packer.Put(0xdeadbeefcafef00dULL, 64);
    packer.Put(0, 7);
  }
  BitUnpacker unpacker(buf);
  EXPECT_EQ(unpacker.Get(1), 1u);
  EXPECT_EQ(unpacker.Get(3), 5u);
  EXPECT_EQ(unpacker.Get(8), 200u);
  EXPECT_EQ(unpacker.Get(30), 0x3fffffffu);
  EXPECT_EQ(unpacker.Get(64), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(unpacker.Get(7), 0u);
}

TEST(BitPackTest, PackedBytesExact) {
  EXPECT_EQ(PackedBytes(0, 13), 0u);
  EXPECT_EQ(PackedBytes(1, 1), 1u);
  EXPECT_EQ(PackedBytes(8, 1), 1u);
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(3, 30), 12u);  // 90 bits -> 12 bytes.
  // 10^9 tuples of 30-bit keys: 3.75e9 bytes, not 4e9.
  EXPECT_EQ(PackedBytes(1000000000, 30), 3750000000u);
}

TEST(BitPackTest, FlushOnDestructionPadsWithZeros) {
  ByteBuffer buf;
  {
    BitPacker packer(&buf);
    packer.Put(1, 1);  // One bit only.
  }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 1);
}

TEST(BitPackTest, BytesConsumedTracksPartialBytes) {
  ByteBuffer buf;
  {
    BitPacker packer(&buf);
    packer.Put(0x7, 3);
    packer.Put(0x1, 3);
    packer.Put(0xff, 8);
  }
  BitUnpacker unpacker(buf);
  unpacker.Get(3);
  EXPECT_EQ(unpacker.bytes_consumed(), 1u);
  unpacker.Get(3);
  EXPECT_EQ(unpacker.bytes_consumed(), 1u);
  unpacker.Get(8);
  EXPECT_EQ(unpacker.bytes_consumed(), 2u);
}

}  // namespace
}  // namespace tj
