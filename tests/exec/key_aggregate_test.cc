#include "exec/key_aggregate.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/radix_sort.h"

namespace tj {
namespace {

TupleBlock KeysOnly(std::vector<uint64_t> keys) {
  TupleBlock block(0);
  for (uint64_t k : keys) block.Append(k, nullptr);
  return block;
}

TEST(KeyAggregateTest, SortedRuns) {
  TupleBlock block = KeysOnly({1, 1, 1, 3, 7, 7});
  auto agg = AggregateSortedKeys(block);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg[0], (KeyCount{1, 3}));
  EXPECT_EQ(agg[1], (KeyCount{3, 1}));
  EXPECT_EQ(agg[2], (KeyCount{7, 2}));
}

TEST(KeyAggregateTest, Empty) {
  TupleBlock block(0);
  EXPECT_TRUE(AggregateSortedKeys(block).empty());
  EXPECT_TRUE(AggregateKeys(block).empty());
}

TEST(KeyAggregateTest, UnsortedInputViaAggregateKeys) {
  TupleBlock block = KeysOnly({5, 1, 5, 1, 5});
  auto agg = AggregateKeys(block);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0], (KeyCount{1, 2}));
  EXPECT_EQ(agg[1], (KeyCount{5, 3}));
}

TEST(KeyAggregateTest, CountsSumToRows) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Below(300));
  TupleBlock block = KeysOnly(keys);
  SortBlockByKey(&block);
  auto agg = AggregateSortedKeys(block);
  uint64_t total = 0;
  for (const auto& kc : agg) total += kc.count;
  EXPECT_EQ(total, block.size());
  // Distinct keys and sorted order.
  for (size_t i = 1; i < agg.size(); ++i) {
    EXPECT_LT(agg[i - 1].key, agg[i].key);
  }
}

TEST(KeyAggregateTest, SingleKey) {
  TupleBlock block = KeysOnly(std::vector<uint64_t>(100, 9));
  auto agg = AggregateSortedKeys(block);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].count, 100u);
}

}  // namespace
}  // namespace tj
