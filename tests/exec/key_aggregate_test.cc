#include "exec/key_aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "exec/radix_sort.h"

namespace tj {
namespace {

TupleBlock KeysOnly(std::vector<uint64_t> keys) {
  TupleBlock block(0);
  for (uint64_t k : keys) block.Append(k, nullptr);
  return block;
}

TEST(KeyAggregateTest, SortedRuns) {
  TupleBlock block = KeysOnly({1, 1, 1, 3, 7, 7});
  auto agg = AggregateSortedKeys(block);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg[0], (KeyCount{1, 3}));
  EXPECT_EQ(agg[1], (KeyCount{3, 1}));
  EXPECT_EQ(agg[2], (KeyCount{7, 2}));
}

TEST(KeyAggregateTest, Empty) {
  TupleBlock block(0);
  EXPECT_TRUE(AggregateSortedKeys(block).empty());
  EXPECT_TRUE(AggregateKeys(block).empty());
}

TEST(KeyAggregateTest, UnsortedInputViaAggregateKeys) {
  TupleBlock block = KeysOnly({5, 1, 5, 1, 5});
  auto agg = AggregateKeys(block);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0], (KeyCount{1, 2}));
  EXPECT_EQ(agg[1], (KeyCount{5, 3}));
}

TEST(KeyAggregateTest, CountsSumToRows) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Below(300));
  TupleBlock block = KeysOnly(keys);
  SortBlockByKey(&block);
  auto agg = AggregateSortedKeys(block);
  uint64_t total = 0;
  for (const auto& kc : agg) total += kc.count;
  EXPECT_EQ(total, block.size());
  // Distinct keys and sorted order.
  for (size_t i = 1; i < agg.size(); ++i) {
    EXPECT_LT(agg[i - 1].key, agg[i].key);
  }
}

TEST(KeyAggregateTest, ShuffledAndSortedInputsAgree) {
  // AggregateKeys sorts internally (radix), so any permutation of the same
  // key multiset — including already-sorted input — must produce the same
  // (key, count) runs as a std::sort reference.
  Rng rng(17);
  for (uint64_t universe : {uint64_t{50}, uint64_t{1} << 40}) {
    std::vector<uint64_t> keys;
    for (int i = 0; i < 4000; ++i) keys.push_back(rng.Below(universe));

    std::vector<uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    std::vector<KeyCount> expected;
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      expected.push_back(KeyCount{sorted[i], j - i});
      i = j;
    }

    EXPECT_EQ(AggregateKeys(KeysOnly(keys)), expected);
    EXPECT_EQ(AggregateKeys(KeysOnly(sorted)), expected);
    std::vector<uint64_t> reversed(sorted.rbegin(), sorted.rend());
    EXPECT_EQ(AggregateKeys(KeysOnly(reversed)), expected);
  }
}

TEST(KeyAggregateTest, SingleKey) {
  TupleBlock block = KeysOnly(std::vector<uint64_t>(100, 9));
  auto agg = AggregateSortedKeys(block);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].count, 100u);
}

}  // namespace
}  // namespace tj
