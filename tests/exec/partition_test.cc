#include "exec/partition.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

TupleBlock RandomBlock(Rng* rng, size_t n, uint32_t width) {
  TupleBlock block(width);
  std::vector<uint8_t> payload(width);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = rng->Below(100000);
    for (uint32_t b = 0; b < width; ++b) {
      payload[b] = static_cast<uint8_t>((key + i) >> (b % 8));
    }
    block.Append(key, width ? payload.data() : nullptr);
  }
  return block;
}

TEST(PartitionTest, EveryRowLandsByHash) {
  Rng rng(3);
  TupleBlock block = RandomBlock(&rng, 2000, 4);
  auto parts = HashPartitionBlock(block, 7);
  ASSERT_EQ(parts.size(), 7u);
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts.size(); ++p) {
    total += parts[p].size();
    for (uint64_t row = 0; row < parts[p].size(); ++row) {
      EXPECT_EQ(HashPartition(parts[p].Key(row), 7), p);
    }
  }
  EXPECT_EQ(total, block.size());
}

TEST(PartitionTest, IndexesMatchBlocks) {
  Rng rng(5);
  TupleBlock block = RandomBlock(&rng, 1000, 0);
  auto parts = HashPartitionBlock(block, 4);
  auto indexes = HashPartitionIndexes(block, 4);
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(parts[p].size(), indexes[p].size());
    for (size_t i = 0; i < indexes[p].size(); ++i) {
      EXPECT_EQ(block.Key(indexes[p][i]), parts[p].Key(i));
    }
  }
}

TEST(PartitionTest, SinglePartitionKeepsAll) {
  Rng rng(7);
  TupleBlock block = RandomBlock(&rng, 100, 2);
  auto parts = HashPartitionBlock(block, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), block.size());
}

TEST(PartitionTest, RoughlyBalanced) {
  Rng rng(9);
  TupleBlock block(0);
  for (uint64_t k = 0; k < 64000; ++k) block.Append(k, nullptr);
  auto indexes = HashPartitionIndexes(block, 16);
  for (const auto& part : indexes) {
    EXPECT_NEAR(part.size(), 4000, 400);
  }
}

TEST(PartitionTest, EmptyBlock) {
  TupleBlock block(4);
  auto parts = HashPartitionBlock(block, 3);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());

  Result<PartitionLayout> layout = TryRadixPartition(block, 3);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->num_parts(), 3u);
  EXPECT_TRUE(layout->tuples.empty());
  for (uint32_t p = 0; p < 3; ++p) EXPECT_EQ(layout->Size(p), 0u);

  Result<KeyPartitionLayout> keys = TryRadixPartitionKeys(block, 3);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->keys.empty());
  EXPECT_EQ(keys->bounds.size(), 4u);
}

TEST(PartitionTest, ZeroPartitionCountIsInvalidArgument) {
  TupleBlock block(4);
  uint8_t payload[4] = {0};
  block.Append(1, payload);

  Result<PartitionLayout> layout = TryRadixPartition(block, 0);
  ASSERT_FALSE(layout.ok());
  EXPECT_EQ(layout.status().code(), StatusCode::kInvalidArgument);

  Result<KeyPartitionLayout> keys = TryRadixPartitionKeys(block, 0);
  ASSERT_FALSE(keys.ok());
  EXPECT_EQ(keys.status().code(), StatusCode::kInvalidArgument);

  Result<std::vector<std::vector<uint32_t>>> indexes =
      TryHashPartitionIndexes(block, 0);
  ASSERT_FALSE(indexes.ok());
  EXPECT_EQ(indexes.status().code(), StatusCode::kInvalidArgument);
}

// The contiguous runs must hold each partition's rows in input order
// (stability) — serialized streams depend on it being bit-identical to the
// legacy row-index serialization.
TEST(PartitionTest, LayoutIsStableAndMatchesIndexes) {
  Rng rng(11);
  TupleBlock block = RandomBlock(&rng, 5000, 6);
  for (uint32_t parts : {1u, 4u, 7u, 13u}) {  // Not only powers of two.
    Result<PartitionLayout> layout = TryRadixPartition(block, parts);
    ASSERT_TRUE(layout.ok());
    auto indexes = HashPartitionIndexes(block, parts);
    ASSERT_EQ(layout->bounds.back(), block.size());
    for (uint32_t p = 0; p < parts; ++p) {
      ASSERT_EQ(layout->Size(p), indexes[p].size());
      for (uint64_t i = 0; i < indexes[p].size(); ++i) {
        uint64_t row = layout->Begin(p) + i;
        ASSERT_EQ(layout->tuples.Key(row), block.Key(indexes[p][i]));
        ASSERT_EQ(std::memcmp(layout->tuples.Payload(row),
                              block.Payload(indexes[p][i]), 6),
                  0);
      }
    }
  }
}

TEST(PartitionTest, KeyLayoutRowIdsMapBack) {
  Rng rng(13);
  TupleBlock block = RandomBlock(&rng, 3000, 0);
  Result<KeyPartitionLayout> layout = TryRadixPartitionKeys(block, 5);
  ASSERT_TRUE(layout.ok());
  for (uint32_t p = 0; p < 5; ++p) {
    for (uint64_t i = layout->Begin(p); i < layout->End(p); ++i) {
      EXPECT_EQ(layout->keys[i], block.Key(layout->row_ids[i]));
      EXPECT_EQ(HashPartition(layout->keys[i], 5), p);
    }
    // Row ids ascend inside a partition: stable layout.
    for (uint64_t i = layout->Begin(p) + 1; i < layout->End(p); ++i) {
      EXPECT_LT(layout->row_ids[i - 1], layout->row_ids[i]);
    }
  }
}

// Same input => identical partition layout for every thread count,
// including no pool at all.
TEST(PartitionTest, DeterministicAcrossThreadCounts) {
  Rng rng(17);
  TupleBlock block = RandomBlock(&rng, 120000, 8);
  for (uint32_t parts : {3u, 16u}) {
    Result<PartitionLayout> base = TryRadixPartition(block, parts, nullptr);
    ASSERT_TRUE(base.ok());
    for (size_t threads : {2u, 3u, 8u}) {
      ThreadPool pool(threads);
      Result<PartitionLayout> got = TryRadixPartition(block, parts, &pool);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->bounds, base->bounds);
      ASSERT_EQ(got->tuples.keys(), base->tuples.keys());
      ASSERT_EQ(std::memcmp(got->tuples.Payload(0), base->tuples.Payload(0),
                            block.size() * 8),
                0);

      Result<KeyPartitionLayout> kgot =
          TryRadixPartitionKeys(block, parts, &pool);
      Result<KeyPartitionLayout> kbase =
          TryRadixPartitionKeys(block, parts, nullptr);
      ASSERT_TRUE(kgot.ok());
      ASSERT_EQ(kgot->keys, kbase->keys);
      ASSERT_EQ(kgot->row_ids, kbase->row_ids);
      ASSERT_EQ(kgot->bounds, kbase->bounds);
    }
  }
}

// Maximal skew: a single distinct key routes every row to one partition.
// The chunk-parallel scatter must still fill it correctly, and the skew
// guard must flag it.
TEST(PartitionTest, SingleDistinctKeyMaximalSkew) {
  TupleBlock block(4);
  uint8_t payload[4];
  for (uint32_t i = 0; i < 100000; ++i) {
    std::memcpy(payload, &i, 4);
    block.Append(42, payload);
  }
  ThreadPool pool(4);
  Result<PartitionLayout> layout = TryRadixPartition(block, 8, &pool);
  ASSERT_TRUE(layout.ok());
  const uint32_t target = HashPartition(42, 8);
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(layout->Size(p), p == target ? block.size() : 0u);
  }
  // Stable: payloads stay in append order.
  for (uint32_t i = 0; i < block.size(); ++i) {
    uint32_t got;
    std::memcpy(&got, layout->tuples.Payload(layout->Begin(target) + i), 4);
    ASSERT_EQ(got, i);
  }
  auto heavy = HeavyPartitions(layout->bounds, 2.0);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], target);
}

TEST(PartitionTest, HeavyPartitionsOnBalancedLayoutIsEmpty) {
  Rng rng(19);
  TupleBlock block(0);
  for (uint64_t k = 0; k < 32000; ++k) block.Append(k, nullptr);
  Result<PartitionLayout> layout = TryRadixPartition(block, 16);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(HeavyPartitions(layout->bounds, 2.0).empty());
}

}  // namespace
}  // namespace tj
