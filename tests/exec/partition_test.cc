#include "exec/partition.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"

namespace tj {
namespace {

TupleBlock RandomBlock(Rng* rng, size_t n, uint32_t width) {
  TupleBlock block(width);
  std::vector<uint8_t> payload(width, 7);
  for (size_t i = 0; i < n; ++i) {
    block.Append(rng->Below(100000), width ? payload.data() : nullptr);
  }
  return block;
}

TEST(PartitionTest, EveryRowLandsByHash) {
  Rng rng(3);
  TupleBlock block = RandomBlock(&rng, 2000, 4);
  auto parts = HashPartitionBlock(block, 7);
  ASSERT_EQ(parts.size(), 7u);
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts.size(); ++p) {
    total += parts[p].size();
    for (uint64_t row = 0; row < parts[p].size(); ++row) {
      EXPECT_EQ(HashPartition(parts[p].Key(row), 7), p);
    }
  }
  EXPECT_EQ(total, block.size());
}

TEST(PartitionTest, IndexesMatchBlocks) {
  Rng rng(5);
  TupleBlock block = RandomBlock(&rng, 1000, 0);
  auto parts = HashPartitionBlock(block, 4);
  auto indexes = HashPartitionIndexes(block, 4);
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(parts[p].size(), indexes[p].size());
    for (size_t i = 0; i < indexes[p].size(); ++i) {
      EXPECT_EQ(block.Key(indexes[p][i]), parts[p].Key(i));
    }
  }
}

TEST(PartitionTest, SinglePartitionKeepsAll) {
  Rng rng(7);
  TupleBlock block = RandomBlock(&rng, 100, 2);
  auto parts = HashPartitionBlock(block, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), block.size());
}

TEST(PartitionTest, RoughlyBalanced) {
  Rng rng(9);
  TupleBlock block(0);
  for (uint64_t k = 0; k < 64000; ++k) block.Append(k, nullptr);
  auto indexes = HashPartitionIndexes(block, 16);
  for (const auto& part : indexes) {
    EXPECT_NEAR(part.size(), 4000, 400);
  }
}

TEST(PartitionTest, EmptyBlock) {
  TupleBlock block(4);
  auto parts = HashPartitionBlock(block, 3);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace tj
