#include "exec/local_join.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "exec/radix_sort.h"

namespace tj {
namespace {

TupleBlock MakeBlock(std::vector<uint64_t> keys, uint32_t width,
                     uint8_t fill) {
  TupleBlock block(width);
  std::vector<uint8_t> payload(width);
  for (uint64_t k : keys) {
    for (uint32_t i = 0; i < width; ++i) {
      payload[i] = static_cast<uint8_t>(fill + k + i);
    }
    block.Append(k, payload.data());
  }
  return block;
}

uint64_t BruteForceCount(const std::vector<uint64_t>& r,
                         const std::vector<uint64_t>& s) {
  uint64_t count = 0;
  for (uint64_t a : r) {
    for (uint64_t b : s) count += a == b;
  }
  return count;
}

TEST(LocalJoinTest, SimpleMatch) {
  TupleBlock r = MakeBlock({1, 2, 3}, 2, 0);
  TupleBlock s = MakeBlock({2, 3, 4}, 2, 100);
  uint64_t outputs = 0;
  uint64_t count = SortMergeJoin(&r, &s, [&](uint64_t key, const uint8_t* pr,
                                             const uint8_t* ps) {
    EXPECT_TRUE(key == 2 || key == 3);
    EXPECT_EQ(pr[0], static_cast<uint8_t>(key));
    EXPECT_EQ(ps[0], static_cast<uint8_t>(100 + key));
    ++outputs;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(outputs, 2u);
}

TEST(LocalJoinTest, CartesianProductOfDuplicates) {
  TupleBlock r = MakeBlock({5, 5, 5}, 0, 0);
  TupleBlock s = MakeBlock({5, 5}, 0, 0);
  EXPECT_EQ(SortMergeJoin(&r, &s, nullptr), 6u);
}

TEST(LocalJoinTest, NoMatches) {
  TupleBlock r = MakeBlock({1, 3, 5}, 0, 0);
  TupleBlock s = MakeBlock({2, 4, 6}, 0, 0);
  EXPECT_EQ(SortMergeJoin(&r, &s, nullptr), 0u);
}

TEST(LocalJoinTest, EmptyInputs) {
  TupleBlock r(4), s(4);
  EXPECT_EQ(SortMergeJoin(&r, &s, nullptr), 0u);
  EXPECT_EQ(HashTableJoin(r, s, nullptr), 0u);
  TupleBlock one = MakeBlock({1}, 4, 0);
  EXPECT_EQ(SortMergeJoin(&one, &s, nullptr), 0u);
  EXPECT_EQ(HashTableJoin(one, s, nullptr), 0u);
}

TEST(LocalJoinTest, MergeAndHashAgreeOnRandomInputs) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<uint64_t> r_keys, s_keys;
    size_t nr = rng.Below(400), ns = rng.Below(400);
    uint64_t domain = 1 + rng.Below(200);
    for (size_t i = 0; i < nr; ++i) r_keys.push_back(rng.Below(domain));
    for (size_t i = 0; i < ns; ++i) s_keys.push_back(rng.Below(domain));
    TupleBlock r = MakeBlock(r_keys, 3, 0);
    TupleBlock s = MakeBlock(s_keys, 5, 50);

    JoinChecksum merge_sum, hash_sum;
    TupleBlock r_copy = r, s_copy = s;
    uint64_t merge_count =
        SortMergeJoin(&r_copy, &s_copy, ChecksumSink(&merge_sum, 3, 5));
    uint64_t hash_count = HashTableJoin(r, s, ChecksumSink(&hash_sum, 3, 5));

    EXPECT_EQ(merge_count, BruteForceCount(r_keys, s_keys));
    EXPECT_EQ(hash_count, merge_count);
    EXPECT_EQ(merge_sum.digest(), hash_sum.digest());
  }
}

TEST(LocalJoinTest, MergeJoinSortedRequiresSortedInputs) {
  TupleBlock r = MakeBlock({1, 2, 3}, 0, 0);
  TupleBlock s = MakeBlock({1, 2, 3}, 0, 0);
  EXPECT_EQ(MergeJoinSorted(r, s, nullptr), 3u);
}

TEST(LocalJoinTest, SortMergeSortsUnsortedInputs) {
  TupleBlock r = MakeBlock({3, 1, 2}, 0, 0);
  TupleBlock s = MakeBlock({2, 3, 1}, 0, 0);
  EXPECT_EQ(SortMergeJoin(&r, &s, nullptr), 3u);
  EXPECT_TRUE(IsSortedByKey(r));
  EXPECT_TRUE(IsSortedByKey(s));
}

TEST(LocalJoinTest, ChecksumSinkAccumulates) {
  TupleBlock r = MakeBlock({1, 2}, 2, 0);
  TupleBlock s = MakeBlock({1, 2}, 2, 9);
  JoinChecksum sum;
  SortMergeJoin(&r, &s, ChecksumSink(&sum, 2, 2));
  EXPECT_EQ(sum.count(), 2u);
  EXPECT_NE(sum.digest(), 0u);
}

}  // namespace
}  // namespace tj
