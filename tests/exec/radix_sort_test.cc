#include "exec/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace tj {
namespace {

TEST(RadixSortTest, SortsPairsLikeStdSort) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng.Below(3000);
    std::vector<uint64_t> keys(n);
    std::vector<uint32_t> values(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Next() >> rng.Below(56);  // Mixed magnitudes.
      values[i] = static_cast<uint32_t>(i);
    }
    std::vector<std::pair<uint64_t, uint32_t>> expect;
    for (size_t i = 0; i < n; ++i) expect.emplace_back(keys[i], values[i]);
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    RadixSortPairs(&keys, &values);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // Radix sort is not stable across our in-place passes; compare multisets
    // of (key, value) pairs instead of exact sequences.
    std::multiset<std::pair<uint64_t, uint32_t>> got, want;
    for (size_t i = 0; i < n; ++i) got.emplace(keys[i], values[i]);
    for (const auto& p : expect) want.insert(p);
    EXPECT_EQ(got, want);
  }
}

TEST(RadixSortTest, PayloadsFollowKeys) {
  TupleBlock block(4);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Below(1000);
    uint8_t payload[4];
    for (int b = 0; b < 4; ++b) payload[b] = static_cast<uint8_t>(key >> (b * 8));
    block.Append(key, payload);
  }
  SortBlockByKey(&block);
  ASSERT_TRUE(IsSortedByKey(block));
  for (uint64_t row = 0; row < block.size(); ++row) {
    uint64_t key = block.Key(row);
    const uint8_t* p = block.Payload(row);
    for (int b = 0; b < 4; ++b) {
      ASSERT_EQ(p[b], static_cast<uint8_t>(key >> (b * 8)));
    }
  }
}

TEST(RadixSortTest, EmptyAndSingle) {
  std::vector<uint64_t> keys;
  std::vector<uint32_t> values;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(keys.empty());

  keys = {42};
  values = {0};
  RadixSortPairs(&keys, &values);
  EXPECT_EQ(keys[0], 42u);
}

TEST(RadixSortTest, AllEqualKeys) {
  std::vector<uint64_t> keys(1000, 7);
  std::vector<uint32_t> values(1000);
  for (uint32_t i = 0; i < 1000; ++i) values[i] = i;
  RadixSortPairs(&keys, &values);
  std::sort(values.begin(), values.end());
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(keys[i], 7u);
    EXPECT_EQ(values[i], i);
  }
}

TEST(RadixSortTest, AlreadySortedAndReversed) {
  std::vector<uint64_t> keys(2000);
  std::vector<uint32_t> values(2000, 0);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  for (size_t i = 0; i < keys.size(); ++i) keys[i] = keys.size() - i;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RadixSortTest, FullWidthKeys) {
  Rng rng(11);
  std::vector<uint64_t> keys(3000);
  std::vector<uint32_t> values(3000, 0);
  for (auto& k : keys) k = rng.Next();  // Uses all 8 bytes.
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RadixSortTest, IsSortedDetector) {
  TupleBlock sorted(0), unsorted(0);
  for (uint64_t k : {1, 2, 3}) sorted.Append(k, nullptr);
  for (uint64_t k : {3, 1, 2}) unsorted.Append(k, nullptr);
  EXPECT_TRUE(IsSortedByKey(sorted));
  EXPECT_FALSE(IsSortedByKey(unsorted));
  TupleBlock empty(0);
  EXPECT_TRUE(IsSortedByKey(empty));
}

}  // namespace
}  // namespace tj
