#include "exec/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

TEST(RadixSortTest, SortsPairsLikeStdSort) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng.Below(3000);
    std::vector<uint64_t> keys(n);
    std::vector<uint32_t> values(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Next() >> rng.Below(56);  // Mixed magnitudes.
      values[i] = static_cast<uint32_t>(i);
    }
    std::vector<std::pair<uint64_t, uint32_t>> expect;
    for (size_t i = 0; i < n; ++i) expect.emplace_back(keys[i], values[i]);
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    RadixSortPairs(&keys, &values);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    // The scatter-based passes are stable, so the exact sequence must match
    // a stable std::sort — including the value order of duplicate keys.
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(keys[i], expect[i].first);
      ASSERT_EQ(values[i], expect[i].second);
    }
  }
}

TEST(RadixSortTest, PayloadsFollowKeys) {
  TupleBlock block(4);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Below(1000);
    uint8_t payload[4];
    for (int b = 0; b < 4; ++b) payload[b] = static_cast<uint8_t>(key >> (b * 8));
    block.Append(key, payload);
  }
  SortBlockByKey(&block);
  ASSERT_TRUE(IsSortedByKey(block));
  for (uint64_t row = 0; row < block.size(); ++row) {
    uint64_t key = block.Key(row);
    const uint8_t* p = block.Payload(row);
    for (int b = 0; b < 4; ++b) {
      ASSERT_EQ(p[b], static_cast<uint8_t>(key >> (b * 8)));
    }
  }
}

TEST(RadixSortTest, EmptyAndSingle) {
  std::vector<uint64_t> keys;
  std::vector<uint32_t> values;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(keys.empty());

  keys = {42};
  values = {0};
  RadixSortPairs(&keys, &values);
  EXPECT_EQ(keys[0], 42u);
}

TEST(RadixSortTest, AllEqualKeys) {
  std::vector<uint64_t> keys(1000, 7);
  std::vector<uint32_t> values(1000);
  for (uint32_t i = 0; i < 1000; ++i) values[i] = i;
  RadixSortPairs(&keys, &values);
  std::sort(values.begin(), values.end());
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(keys[i], 7u);
    EXPECT_EQ(values[i], i);
  }
}

TEST(RadixSortTest, AlreadySortedAndReversed) {
  std::vector<uint64_t> keys(2000);
  std::vector<uint32_t> values(2000, 0);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  for (size_t i = 0; i < keys.size(); ++i) keys[i] = keys.size() - i;
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RadixSortTest, FullWidthKeys) {
  Rng rng(11);
  std::vector<uint64_t> keys(3000);
  std::vector<uint32_t> values(3000, 0);
  for (auto& k : keys) k = rng.Next();  // Uses all 8 bytes.
  RadixSortPairs(&keys, &values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

// Parallel sort must produce bit-identical output to the sequential sort
// for every thread count: both are stable, so duplicate keys keep their
// input value order too.
TEST(RadixSortTest, ParallelMatchesSequentialExactly) {
  Rng rng(23);
  const size_t n = 300000;  // Above the parallel threshold.
  std::vector<uint64_t> base_keys(n);
  std::vector<uint32_t> base_values(n);
  for (size_t i = 0; i < n; ++i) {
    // Heavy duplication (few distinct keys) exercises stability.
    base_keys[i] = rng.Below(5000) << rng.Below(3);
    base_values[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint64_t> seq_keys = base_keys;
  std::vector<uint32_t> seq_values = base_values;
  RadixSortPairs(&seq_keys, &seq_values);
  for (size_t threads : {2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> keys = base_keys;
    std::vector<uint32_t> values = base_values;
    RadixSortPairs(&keys, &values, &pool);
    ASSERT_EQ(keys, seq_keys) << threads << " threads";
    ASSERT_EQ(values, seq_values) << threads << " threads";
  }
}

// Skew guard: one dominant key (half the input) plus noise. The heavy
// bucket must re-enter the parallel pass without corrupting the layout.
TEST(RadixSortTest, ParallelSingleDominantKey) {
  Rng rng(29);
  const size_t n = 200000;
  std::vector<uint64_t> base_keys(n);
  std::vector<uint32_t> base_values(n);
  for (size_t i = 0; i < n; ++i) {
    base_keys[i] = (i % 2 == 0) ? 0xdeadbeefULL : rng.Next();
    base_values[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint64_t> seq_keys = base_keys;
  std::vector<uint32_t> seq_values = base_values;
  RadixSortPairs(&seq_keys, &seq_values);
  ThreadPool pool(8);
  RadixSortPairs(&base_keys, &base_values, &pool);
  EXPECT_EQ(base_keys, seq_keys);
  EXPECT_EQ(base_values, seq_values);
}

// All-equal keys at parallel scale: every histogram is degenerate, so the
// sort must fall through its single-bucket fast path on each byte.
TEST(RadixSortTest, ParallelAllEqualKeys) {
  const size_t n = 150000;
  std::vector<uint64_t> keys(n, 0x0123456789abcdefULL);
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<uint32_t>(i);
  ThreadPool pool(4);
  RadixSortPairs(&keys, &values, &pool);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], 0x0123456789abcdefULL);
    ASSERT_EQ(values[i], i);  // Stability keeps the input order.
  }
}

TEST(RadixSortTest, SortBlockParallelMatchesSequential) {
  Rng rng(31);
  TupleBlock base(8);
  uint8_t payload[8];
  for (size_t i = 0; i < 120000; ++i) {
    uint64_t key = rng.Below(4000);
    std::memcpy(payload, &i, 8);
    base.Append(key, payload);
  }
  TupleBlock seq = base;
  SortBlockByKey(&seq);
  ThreadPool pool(8);
  TupleBlock par = base;
  SortBlockByKey(&par, &pool);
  ASSERT_EQ(par.keys(), seq.keys());
  ASSERT_EQ(
      std::memcmp(par.Payload(0), seq.Payload(0), par.size() * 8), 0);
}

TEST(RadixSortTest, IsSortedDetector) {
  TupleBlock sorted(0), unsorted(0);
  for (uint64_t k : {1, 2, 3}) sorted.Append(k, nullptr);
  for (uint64_t k : {3, 1, 2}) unsorted.Append(k, nullptr);
  EXPECT_TRUE(IsSortedByKey(sorted));
  EXPECT_FALSE(IsSortedByKey(unsorted));
  TupleBlock empty(0);
  EXPECT_TRUE(IsSortedByKey(empty));
}

}  // namespace
}  // namespace tj
