// Materialized-output tests: every algorithm must materialize the exact
// same multiset of <key | payloadR | payloadS> rows, and materialized
// outputs must chain into further joins.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "common/hash.h"
#include "core/late_hash_join.h"
#include "core/rid_hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

/// Order-independent fingerprint of a materialized table: sorted row
/// hashes.
std::vector<uint64_t> RowHashes(const PartitionedTable& table) {
  std::vector<uint64_t> hashes;
  for (uint32_t node = 0; node < table.num_nodes(); ++node) {
    const TupleBlock& block = table.node(node);
    for (uint64_t row = 0; row < block.size(); ++row) {
      uint64_t h = HashKey(block.Key(row));
      h = HashMix64(h ^ HashBytes(block.Payload(row), block.payload_width()));
      hashes.push_back(h);
    }
  }
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

TEST(MaterializeTest, AllAlgorithmsProduceSameRows) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 300;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 6;
  spec.s_payload = 10;
  spec.r_unmatched = 50;
  spec.s_unmatched = 70;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  config.materialize = true;

  JoinResult reference = RunHashJoin(w.r, w.s, config);
  ASSERT_TRUE(reference.output.has_value());
  EXPECT_EQ(reference.output->TotalRows(), reference.output_rows);
  EXPECT_EQ(reference.output->payload_width(), 16u);
  std::vector<uint64_t> expected = RowHashes(*reference.output);

  auto check = [&](const char* name, const JoinResult& result) {
    ASSERT_TRUE(result.output.has_value()) << name;
    EXPECT_EQ(result.output->TotalRows(), reference.output_rows) << name;
    EXPECT_EQ(RowHashes(*result.output), expected) << name;
  };
  check("BJ-R", RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS));
  check("BJ-S", RunBroadcastJoin(w.r, w.s, config, Direction::kStoR));
  check("2TJ-R", RunTrackJoin2(w.r, w.s, config, Direction::kRtoS));
  check("2TJ-S", RunTrackJoin2(w.r, w.s, config, Direction::kStoR));
  check("3TJ", RunTrackJoin3(w.r, w.s, config));
  check("4TJ", RunTrackJoin4(w.r, w.s, config));
  check("rid-HJ", RunRidHashJoin(w.r, w.s, config));
  check("late-HJ", RunLateMaterializedHashJoin(w.r, w.s, config));
}

TEST(MaterializeTest, OffByDefault) {
  WorkloadSpec spec;
  spec.matched_keys = 50;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  JoinResult result = RunTrackJoin4(w.r, w.s, config);
  EXPECT_FALSE(result.output.has_value());
}

TEST(MaterializeTest, RowsContainBothPayloads) {
  // One matched pair with known payload bytes.
  PartitionedTable r("R", 2, 2), s("S", 2, 3);
  uint8_t pr[2] = {0xaa, 0xbb};
  uint8_t ps[3] = {0x11, 0x22, 0x33};
  r.node(0).Append(7, pr);
  s.node(1).Append(7, ps);
  JoinConfig config;
  config.key_bytes = 4;
  config.materialize = true;
  JoinResult result = RunTrackJoin4(r, s, config);
  ASSERT_TRUE(result.output.has_value());
  ASSERT_EQ(result.output->TotalRows(), 1u);
  for (uint32_t node = 0; node < 2; ++node) {
    const TupleBlock& block = result.output->node(node);
    for (uint64_t row = 0; row < block.size(); ++row) {
      EXPECT_EQ(block.Key(row), 7u);
      const uint8_t* p = block.Payload(row);
      EXPECT_EQ(p[0], 0xaa);
      EXPECT_EQ(p[1], 0xbb);
      EXPECT_EQ(p[2], 0x11);
      EXPECT_EQ(p[3], 0x22);
      EXPECT_EQ(p[4], 0x33);
    }
  }
}

TEST(MaterializeTest, OutputChainsIntoNextJoin) {
  // Join twice: (R join S) re-keyed on a byte of R's payload joins a third
  // table keyed on that byte's value.
  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 256;
  spec.r_payload = 4;
  spec.s_payload = 4;
  Workload w = GenerateWorkload(spec);
  JoinConfig config;
  config.key_bytes = 4;
  config.materialize = true;
  JoinResult first = RunTrackJoin4(w.r, w.s, config);
  ASSERT_TRUE(first.output.has_value());

  // Re-key on the first payload byte: values 0..255.
  PartitionedTable rekeyed =
      RekeyByPayloadField(*first.output, /*offset=*/0, /*bytes=*/1, "mid");
  // Third table: one row per possible byte value.
  PartitionedTable t3("T3", 3, 0);
  for (uint64_t v = 0; v < 256; ++v) t3.node(v % 3).Append(v, nullptr);
  JoinResult second = RunTrackJoin4(rekeyed, t3, config);
  // Every intermediate row has exactly one match.
  EXPECT_EQ(second.output_rows, first.output_rows);
}

}  // namespace
}  // namespace tj
