// Integration property test: every distributed join algorithm must produce
// exactly the same join output (cardinality and order-independent checksum)
// on the same inputs, across node counts, multiplicities, placement
// patterns, collocation modes, selectivities and payload widths — and the
// traffic ordering the paper proves must hold (4TJ <= 3TJ payload optimum,
// migration never hurts, etc.).
#include <gtest/gtest.h>

#include <vector>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "core/track_join.h"
#include "exec/local_join.h"
#include "exec/radix_sort.h"
#include "workload/generator.h"

namespace tj {
namespace {

/// Ground truth: gather all tuples to one node and join locally.
JoinChecksum ReferenceJoin(const PartitionedTable& r, const PartitionedTable& s,
                           uint64_t* rows_out) {
  TupleBlock all_r(r.payload_width());
  TupleBlock all_s(s.payload_width());
  for (uint32_t node = 0; node < r.num_nodes(); ++node) {
    const TupleBlock& br = r.node(node);
    for (uint64_t row = 0; row < br.size(); ++row) all_r.AppendFrom(br, row);
    const TupleBlock& bs = s.node(node);
    for (uint64_t row = 0; row < bs.size(); ++row) all_s.AppendFrom(bs, row);
  }
  JoinChecksum checksum;
  *rows_out = SortMergeJoin(
      &all_r, &all_s,
      ChecksumSink(&checksum, r.payload_width(), s.payload_width()));
  return checksum;
}

struct Case {
  WorkloadSpec spec;
  const char* name;
};

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, AllAlgorithmsAgree) {
  const WorkloadSpec& spec = GetParam().spec;
  Workload w = GenerateWorkload(spec);

  uint64_t expected_rows = 0;
  JoinChecksum expected = ReferenceJoin(w.r, w.s, &expected_rows);
  EXPECT_EQ(expected_rows, w.expected_output_rows);

  JoinConfig config;
  config.key_bytes = 8;  // Generous: generated keys are dense 64-bit.

  struct Run {
    const char* name;
    JoinResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"HJ", RunHashJoin(w.r, w.s, config)});
  runs.push_back({"BJ-R", RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS)});
  runs.push_back({"BJ-S", RunBroadcastJoin(w.r, w.s, config, Direction::kStoR)});
  runs.push_back({"2TJ-R", RunTrackJoin2(w.r, w.s, config, Direction::kRtoS)});
  runs.push_back({"2TJ-S", RunTrackJoin2(w.r, w.s, config, Direction::kStoR)});
  runs.push_back({"3TJ", RunTrackJoin3(w.r, w.s, config)});
  runs.push_back({"4TJ", RunTrackJoin4(w.r, w.s, config)});

  for (const Run& run : runs) {
    EXPECT_EQ(run.result.output_rows, expected_rows) << run.name;
    EXPECT_EQ(run.result.checksum.count(), expected.count()) << run.name;
    EXPECT_EQ(run.result.checksum.digest(), expected.digest()) << run.name;
  }

  // Paper-proved traffic orderings (tuple payload classes only; tracking
  // overhead differs by design):
  // 4TJ's per-key schedules are never worse than 3TJ's schedule + location
  // traffic, since migration is only applied when it reduces cost.
  auto schedule_bytes = [](const JoinResult& res) {
    return res.traffic.NetworkBytes(TrafficClass::kRTuples) +
           res.traffic.NetworkBytes(TrafficClass::kSTuples) +
           res.traffic.NetworkBytes(TrafficClass::kKeysAndNodes);
  };
  const JoinResult& tj3 = runs[5].result;
  const JoinResult& tj4 = runs[6].result;
  EXPECT_LE(schedule_bytes(tj4), schedule_bytes(tj3));
}

// The zero-fault invariant: passing an inactive FaultPolicy{} must be
// indistinguishable from passing none — byte-identical results AND a
// byte-identical TrafficMatrix (no framing, no control traffic, no
// retransmit ledger entries), for every algorithm.
TEST_P(EquivalenceTest, InactiveFaultPolicyIsByteIdentical) {
  const WorkloadSpec& spec = GetParam().spec;
  Workload w = GenerateWorkload(spec);

  JoinConfig plain;
  plain.key_bytes = 8;
  FaultPolicy zero;
  ASSERT_FALSE(zero.active());
  JoinConfig inert = plain;
  inert.fault_policy = &zero;
  inert.fault_seed = 12345;  // Must be irrelevant.

  auto compare = [&](const char* name, const JoinResult& a,
                     const JoinResult& b) {
    EXPECT_EQ(a.output_rows, b.output_rows) << name;
    EXPECT_EQ(a.checksum.digest(), b.checksum.digest()) << name;
    EXPECT_TRUE(a.traffic == b.traffic) << name;
    EXPECT_EQ(b.traffic.TotalRetransmitBytes(), 0u) << name;
    EXPECT_EQ(b.reliability.retransmitted_frames, 0u) << name;
    EXPECT_EQ(b.reliability.nack_messages, 0u) << name;
    EXPECT_EQ(b.reliability.faults.frames_dropped, 0u) << name;
  };
  compare("HJ", RunHashJoin(w.r, w.s, plain), RunHashJoin(w.r, w.s, inert));
  compare("BJ-R", RunBroadcastJoin(w.r, w.s, plain, Direction::kRtoS),
          RunBroadcastJoin(w.r, w.s, inert, Direction::kRtoS));
  compare("2TJ-R", RunTrackJoin2(w.r, w.s, plain, Direction::kRtoS),
          RunTrackJoin2(w.r, w.s, inert, Direction::kRtoS));
  compare("3TJ", RunTrackJoin3(w.r, w.s, plain),
          RunTrackJoin3(w.r, w.s, inert));
  compare("4TJ", RunTrackJoin4(w.r, w.s, plain),
          RunTrackJoin4(w.r, w.s, inert));
}

WorkloadSpec Base() {
  WorkloadSpec s;
  s.num_nodes = 4;
  s.matched_keys = 200;
  s.r_payload = 12;
  s.s_payload = 24;
  s.seed = 99;
  return s;
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;

  WorkloadSpec s = Base();
  cases.push_back({s, "unique_random"});

  s = Base();
  s.s_multiplicity = 5;
  s.s_pattern = {5};
  s.collocation = Collocation::kIntra;
  cases.push_back({s, "s5_collocated"});

  s = Base();
  s.s_multiplicity = 5;
  s.s_pattern = {2, 2, 1};
  s.collocation = Collocation::kIntra;
  cases.push_back({s, "s5_pattern221"});

  s = Base();
  s.r_multiplicity = 5;
  s.s_multiplicity = 5;
  s.r_pattern = {5};
  s.s_pattern = {5};
  s.collocation = Collocation::kInter;
  cases.push_back({s, "both5_inter"});

  s = Base();
  s.r_multiplicity = 3;
  s.s_multiplicity = 4;
  s.collocation = Collocation::kRandom;
  cases.push_back({s, "multi_random"});

  s = Base();
  s.r_unmatched = 150;
  s.s_unmatched = 250;
  cases.push_back({s, "selective"});

  s = Base();
  s.num_nodes = 1;
  cases.push_back({s, "single_node"});

  s = Base();
  s.num_nodes = 16;
  s.matched_keys = 120;
  s.r_multiplicity = 2;
  s.s_multiplicity = 7;
  s.r_pattern = {1, 1};
  s.s_pattern = {4, 2, 1};
  s.collocation = Collocation::kIntra;
  s.r_unmatched = 60;
  s.s_unmatched = 60;
  cases.push_back({s, "sixteen_nodes_mixed"});

  s = Base();
  s.r_payload = 0;
  s.s_payload = 0;
  cases.push_back({s, "key_only_tuples"});

  s = Base();
  s.matched_keys = 1;
  s.r_multiplicity = 8;
  s.s_multiplicity = 8;
  cases.push_back({s, "single_hot_key"});

  s = Base();
  s.matched_keys = 0;
  s.r_unmatched = 100;
  s.s_unmatched = 100;
  cases.push_back({s, "no_matches"});

  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, EquivalenceTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace tj
