// Chaos sweep: fully randomized workload shapes (node counts, key
// multiplicities, patterns, collocation, selectivities, widths), every
// algorithm run against the single-node reference. Seeds are the
// parameter, so failures reproduce exactly.
#include <gtest/gtest.h>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "common/rng.h"
#include "core/late_hash_join.h"
#include "core/recovery.h"
#include "core/rid_hash_join.h"
#include "core/streaming_track_join.h"
#include "core/track_join.h"
#include "exec/local_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

WorkloadSpec RandomSpec(Rng* rng) {
  WorkloadSpec spec;
  spec.num_nodes = 1 + static_cast<uint32_t>(rng->Below(10));
  spec.matched_keys = rng->Below(400);
  spec.r_multiplicity = 1 + static_cast<uint32_t>(rng->Below(5));
  spec.s_multiplicity = 1 + static_cast<uint32_t>(rng->Below(5));
  spec.r_payload = static_cast<uint32_t>(rng->Below(40));
  spec.s_payload = static_cast<uint32_t>(rng->Below(40));
  spec.r_unmatched = rng->Below(200);
  spec.s_unmatched = rng->Below(200);
  spec.seed = rng->Next();
  switch (rng->Below(3)) {
    case 0:
      spec.collocation = Collocation::kRandom;
      break;
    case 1:
      spec.collocation = Collocation::kIntra;
      break;
    default:
      spec.collocation = Collocation::kInter;
      break;
  }
  if (spec.collocation != Collocation::kRandom) {
    spec.collocated_fraction = rng->NextDouble();
    // Random pattern: split the multiplicity into <= num_nodes groups.
    auto make_pattern = [&](uint32_t mult) {
      std::vector<uint32_t> pattern;
      uint32_t left = mult;
      while (left > 0 && pattern.size() + 1 < spec.num_nodes) {
        uint32_t take = 1 + static_cast<uint32_t>(rng->Below(left));
        pattern.push_back(take);
        left -= take;
      }
      if (left > 0) pattern.push_back(left);
      return pattern;
    };
    spec.r_pattern = make_pattern(spec.r_multiplicity);
    spec.s_pattern = make_pattern(spec.s_multiplicity);
  }
  return spec;
}

JoinChecksum Reference(const Workload& w, uint64_t* rows) {
  TupleBlock all_r(w.r.payload_width()), all_s(w.s.payload_width());
  for (uint32_t node = 0; node < w.r.num_nodes(); ++node) {
    const TupleBlock& br = w.r.node(node);
    for (uint64_t row = 0; row < br.size(); ++row) all_r.AppendFrom(br, row);
    const TupleBlock& bs = w.s.node(node);
    for (uint64_t row = 0; row < bs.size(); ++row) all_s.AppendFrom(bs, row);
  }
  JoinChecksum checksum;
  *rows = SortMergeJoin(
      &all_r, &all_s,
      ChecksumSink(&checksum, w.r.payload_width(), w.s.payload_width()));
  return checksum;
}

class ChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosTest, EveryAlgorithmMatchesReference) {
  Rng rng(GetParam() * 7919 + 13);
  for (int round = 0; round < 4; ++round) {
    WorkloadSpec spec = RandomSpec(&rng);
    Workload w = GenerateWorkload(spec);
    uint64_t expected_rows = 0;
    JoinChecksum expected = Reference(w, &expected_rows);
    ASSERT_EQ(expected_rows, w.expected_output_rows);

    JoinConfig config;
    config.key_bytes = 4;
    auto check = [&](const char* name, const JoinResult& result) {
      EXPECT_EQ(result.output_rows, expected_rows)
          << name << " seed=" << GetParam() << " round=" << round;
      EXPECT_EQ(result.checksum.digest(), expected.digest())
          << name << " seed=" << GetParam() << " round=" << round;
    };
    check("HJ", RunHashJoin(w.r, w.s, config));
    check("BJ-R", RunBroadcastJoin(w.r, w.s, config, Direction::kRtoS));
    check("BJ-S", RunBroadcastJoin(w.r, w.s, config, Direction::kStoR));
    check("2TJ-R", RunTrackJoin2(w.r, w.s, config, Direction::kRtoS));
    check("2TJ-S", RunTrackJoin2(w.r, w.s, config, Direction::kStoR));
    check("3TJ", RunTrackJoin3(w.r, w.s, config));
    check("4TJ", RunTrackJoin4(w.r, w.s, config));
    check("s2TJ",
          RunStreamingTrackJoin2(w.r, w.s, config, Direction::kRtoS, 128));
    check("rid-HJ", RunRidHashJoin(w.r, w.s, config));
    check("late-HJ", RunLateMaterializedHashJoin(w.r, w.s, config));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range(1, 13));

// Fault chaos: the same all-algorithms-vs-reference sweep, but behind a
// randomized (sometimes all-zero) FaultPolicy. Recoverable fault rates must
// leave every result exact — bit flips, drops and duplicates are absorbed
// by the retry protocol, never joined into the output — and the all-zero
// policy must not even change the traffic matrix.
class FaultChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultChaosTest, RecoverableFaultsLeaveResultsExact) {
  Rng rng(GetParam() * 104729 + 7);
  for (int round = 0; round < 3; ++round) {
    WorkloadSpec spec = RandomSpec(&rng);
    Workload w = GenerateWorkload(spec);
    uint64_t expected_rows = 0;
    JoinChecksum expected = Reference(w, &expected_rows);

    // Roughly one round in four runs the all-zero policy: the equivalence
    // branch below then asserts the byte-identical pristine path.
    FaultPolicy policy;
    if (rng.Below(4) != 0) {
      policy.drop = rng.NextDouble() * 0.05;
      policy.corrupt = rng.NextDouble() * 0.05;
      policy.duplicate = rng.NextDouble() * 0.05;
      policy.reorder = rng.NextDouble() * 0.2;
      policy.max_retries = 64;  // Recoverable by construction.
    }

    JoinConfig config;
    config.key_bytes = 4;
    JoinConfig faulty = config;
    faulty.fault_policy = &policy;
    faulty.fault_seed = rng.Next();

    auto check = [&](const char* name, Result<JoinResult> run,
                     Result<JoinResult> clean) {
      ASSERT_TRUE(run.ok()) << name << " seed=" << GetParam()
                            << " round=" << round << ": "
                            << run.status().ToString();
      const JoinResult& result = *run;
      EXPECT_EQ(result.output_rows, expected_rows)
          << name << " seed=" << GetParam() << " round=" << round;
      EXPECT_EQ(result.checksum.digest(), expected.digest())
          << name << " seed=" << GetParam() << " round=" << round;
      if (!policy.active()) {
        // All-zero policy: identical traffic (framing stays off) and no
        // reliability work at all.
        ASSERT_TRUE(clean.ok());
        EXPECT_TRUE(result.traffic == clean->traffic)
            << name << " seed=" << GetParam() << " round=" << round;
        EXPECT_EQ(result.reliability.retransmitted_frames, 0u);
        EXPECT_EQ(result.traffic.TotalRetransmitBytes(), 0u);
      } else {
        // Goodput counts each message's first framed copy: the clean run's
        // payload bytes plus exactly one 16-byte header per network
        // message. Retry traffic lives only in the retransmit ledger.
        ASSERT_TRUE(clean.ok());
        uint64_t goodput = result.traffic.TotalNetworkBytes();
        uint64_t unframed = clean->traffic.TotalNetworkBytes();
        EXPECT_GE(goodput, unframed)
            << name << " seed=" << GetParam() << " round=" << round;
        EXPECT_EQ((goodput - unframed) % kFrameHeaderBytes, 0u)
            << name << " seed=" << GetParam() << " round=" << round;
      }
    };
    check("HJ", TryRunHashJoin(w.r, w.s, faulty),
          TryRunHashJoin(w.r, w.s, config));
    check("BJ-R", TryRunBroadcastJoin(w.r, w.s, faulty, Direction::kRtoS),
          TryRunBroadcastJoin(w.r, w.s, config, Direction::kRtoS));
    check("2TJ-R",
          TryRunTrackJoin(w.r, w.s, faulty, TrackJoinVersion::k2Phase,
                          Direction::kRtoS),
          TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k2Phase,
                          Direction::kRtoS));
    check("3TJ", TryRunTrackJoin(w.r, w.s, faulty, TrackJoinVersion::k3Phase),
          TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k3Phase));
    check("4TJ", TryRunTrackJoin(w.r, w.s, faulty, TrackJoinVersion::k4Phase),
          TryRunTrackJoin(w.r, w.s, config, TrackJoinVersion::k4Phase));
    check("s2TJ",
          TryRunStreamingTrackJoin2(w.r, w.s, faulty, Direction::kRtoS, 128),
          TryRunStreamingTrackJoin2(w.r, w.s, config, Direction::kRtoS, 128));
    check("rid-HJ", TryRunRidHashJoin(w.r, w.s, faulty),
          TryRunRidHashJoin(w.r, w.s, config));
    check("late-HJ", TryRunLateMaterializedHashJoin(w.r, w.s, faulty),
          TryRunLateMaterializedHashJoin(w.r, w.s, config));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChaosTest, ::testing::Range(1, 9));

// --- Recovery chaos --------------------------------------------------------

/// The nine named algorithms as recovery runners, in tjsim's order.
std::vector<std::pair<const char*, JoinRunner>> AllRunners() {
  auto tj = [](TrackJoinVersion version, Direction dir) {
    return [version, dir](const PartitionedTable& r, const PartitionedTable& s,
                          const JoinConfig& cfg) {
      return TryRunTrackJoin(r, s, cfg, version, dir);
    };
  };
  return {
      {"bj-r",
       [](const PartitionedTable& r, const PartitionedTable& s,
          const JoinConfig& cfg) {
         return TryRunBroadcastJoin(r, s, cfg, Direction::kRtoS);
       }},
      {"bj-s",
       [](const PartitionedTable& r, const PartitionedTable& s,
          const JoinConfig& cfg) {
         return TryRunBroadcastJoin(r, s, cfg, Direction::kStoR);
       }},
      {"hj",
       [](const PartitionedTable& r, const PartitionedTable& s,
          const JoinConfig& cfg) { return TryRunHashJoin(r, s, cfg); }},
      {"2tj-r", tj(TrackJoinVersion::k2Phase, Direction::kRtoS)},
      {"2tj-s", tj(TrackJoinVersion::k2Phase, Direction::kStoR)},
      {"3tj", tj(TrackJoinVersion::k3Phase, Direction::kRtoS)},
      {"4tj", tj(TrackJoinVersion::k4Phase, Direction::kRtoS)},
      {"rid-hj",
       [](const PartitionedTable& r, const PartitionedTable& s,
          const JoinConfig& cfg) { return TryRunRidHashJoin(r, s, cfg); }},
      {"late-hj",
       [](const PartitionedTable& r, const PartitionedTable& s,
          const JoinConfig& cfg) {
         return TryRunLateMaterializedHashJoin(r, s, cfg);
       }},
  };
}

// Randomized crash / loss / straggler schedules against replicated
// placement: every within-budget recovery must land on the byte-identical
// checksum of the pristine reference, with accounting in the original
// cluster's coordinates.
class RecoveryChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryChaosTest, WithinBudgetSchedulesRecoverExactly) {
  Rng rng(GetParam() * 48611 + 101);
  for (int round = 0; round < 2; ++round) {
    WorkloadSpec spec = RandomSpec(&rng);
    // Failover needs survivors: at least 3 nodes, and chained
    // declustering's neighbor must outlive a single death (k=2).
    spec.num_nodes = 3 + static_cast<uint32_t>(rng.Below(6));
    Workload w = GenerateWorkload(spec);
    uint64_t expected_rows = 0;
    JoinChecksum expected = Reference(w, &expected_rows);
    ReplicatedWorkload rw = ReplicateWorkload(w, 2);

    FaultPolicy policy;
    RecoveryOptions options;
    const uint32_t shape = static_cast<uint32_t>(rng.Below(3));
    if (shape == 0) {  // Fail-stop crash at a random phase.
      policy.crash_node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
      policy.crash_phase = static_cast<uint32_t>(rng.Below(5));
    } else if (shape == 1) {  // Recoverable message-level attrition.
      policy.drop = rng.NextDouble() * 0.05;
      policy.corrupt = rng.NextDouble() * 0.05;
      policy.max_retries = 64;
    } else {  // Straggler past the modeled deadline.
      policy.slow_node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
      policy.slowdown_seconds = 2.0;
      options.phase_deadline_seconds = 0.5;
    }

    JoinConfig config;
    config.key_bytes = 4;
    config.fault_policy = &policy;
    config.fault_seed = rng.Next();

    for (const auto& [name, runner] : AllRunners()) {
      RecoveryReport report;
      Result<JoinResult> run =
          RunWithRecovery(rw.r, rw.s, config, options, runner, &report);
      ASSERT_TRUE(run.ok())
          << name << " seed=" << GetParam() << " round=" << round
          << " shape=" << shape << ": " << run.status().ToString();
      EXPECT_EQ(run->output_rows, expected_rows)
          << name << " seed=" << GetParam() << " round=" << round;
      EXPECT_EQ(run->checksum.digest(), expected.digest())
          << name << " seed=" << GetParam() << " round=" << round;
      // Accounting invariants: original coordinates, ledger consistency.
      EXPECT_EQ(run->traffic.num_nodes(), spec.num_nodes);
      EXPECT_EQ(run->profile.recovery_bytes,
                run->traffic.TotalRecoveryBytes());
      EXPECT_EQ(report.recovery_bytes, run->profile.recovery_bytes);
      EXPECT_GE(report.attempts, 1u);
      if (report.attempts == 1) {
        // First try succeeded: nothing may bill to the recovery ledger.
        EXPECT_EQ(run->profile.recovery_bytes, 0u)
            << name << " seed=" << GetParam() << " round=" << round;
      }
      if (shape != 1) {
        // A crash or promoted straggler always costs at least one failover
        // once the fault actually fires (crash_phase may sit past the
        // run's last phase, in which case attempt 1 simply succeeds).
        EXPECT_LE(report.failovers, 1u);
        if (report.failovers == 1) {
          const uint32_t victim =
              shape == 0 ? policy.crash_node : policy.slow_node;
          EXPECT_EQ(report.dead_nodes, (std::vector<uint32_t>{victim}))
              << name << " seed=" << GetParam() << " round=" << round;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryChaosTest, ::testing::Range(1, 8));

// Beyond-budget schedules must fail with a *typed* error — never an abort,
// a hang, or a partial result.
TEST(RecoveryBudgetTest, UnreplicatedCrashIsTypedUnavailable) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.matched_keys = 200;
  spec.seed = 5;
  Workload w = GenerateWorkload(spec);
  ReplicatedWorkload rw = ReplicateWorkload(w, 1);  // No spare copies.
  FaultPolicy policy;
  policy.crash_node = 1;
  JoinConfig config;
  config.key_bytes = 4;
  config.fault_policy = &policy;
  config.fault_seed = 2;

  for (const auto& [name, runner] : AllRunners()) {
    RecoveryReport report;
    Result<JoinResult> run =
        RunWithRecovery(rw.r, rw.s, config, {}, runner, &report);
    ASSERT_FALSE(run.ok()) << name;
    EXPECT_EQ(run.status().code(), StatusCode::kUnavailable) << name;
  }
}

TEST(RecoveryBudgetTest, TotalLossExhaustsBudgetTyped) {
  WorkloadSpec spec;
  spec.num_nodes = 3;
  spec.matched_keys = 100;
  spec.seed = 6;
  Workload w = GenerateWorkload(spec);
  ReplicatedWorkload rw = ReplicateWorkload(w, 2);
  FaultPolicy policy;
  policy.drop = 1.0;  // Unrecoverable on every topology.
  policy.max_retries = 2;
  JoinConfig config;
  config.key_bytes = 4;
  config.fault_policy = &policy;
  config.fault_seed = 3;
  RecoveryOptions options;
  options.max_attempts = 2;

  RecoveryReport report;
  Result<JoinResult> run = RunWithRecovery(
      rw.r, rw.s, config, options,
      [](const PartitionedTable& r, const PartitionedTable& s,
         const JoinConfig& cfg) { return TryRunHashJoin(r, s, cfg); },
      &report);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(run.status().ToString().find("recovery budget exhausted"),
            std::string::npos);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_GT(report.recovery_bytes, 0u);  // The failed attempts are billed.
}

}  // namespace
}  // namespace tj
