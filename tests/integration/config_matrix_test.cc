// Configuration-matrix sweep: every track join version must produce the
// reference join result under EVERY combination of feature toggles (wire
// compression, load balancing, materialization, threading) and across
// cluster sizes — the combinations are where integration bugs hide.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/hash_join.h"
#include "common/thread_pool.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

// (version, delta_tracking, group_locations, balance_loads, materialize,
//  use_thread_pool, num_nodes)
using MatrixParam = std::tuple<int, bool, bool, bool, bool, bool, int>;

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrixTest, MatchesReference) {
  auto [version_int, delta, group, balance, materialize, threaded, nodes] =
      GetParam();

  WorkloadSpec spec;
  spec.num_nodes = static_cast<uint32_t>(nodes);
  spec.matched_keys = 150;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 9;
  spec.s_payload = 17;
  spec.r_unmatched = 40;
  spec.s_unmatched = 60;
  if (nodes >= 2) {
    spec.s_pattern = {2, 1};
    spec.r_pattern = {1, 1};
    spec.collocation = Collocation::kIntra;
    spec.collocated_fraction = 0.5;
  }
  Workload w = GenerateWorkload(spec);

  JoinConfig reference_config;
  reference_config.key_bytes = 4;
  JoinResult reference = RunHashJoin(w.r, w.s, reference_config);
  ASSERT_EQ(reference.output_rows, w.expected_output_rows);

  ThreadPool pool(3);
  JoinConfig config;
  config.key_bytes = 4;
  config.delta_tracking = delta;
  config.group_locations = group;
  config.balance_loads = balance;
  config.materialize = materialize;
  config.thread_pool = threaded ? &pool : nullptr;

  JoinResult result = RunTrackJoin(
      w.r, w.s, config, static_cast<TrackJoinVersion>(version_int));
  EXPECT_EQ(result.output_rows, reference.output_rows);
  EXPECT_EQ(result.checksum.digest(), reference.checksum.digest());
  if (materialize) {
    ASSERT_TRUE(result.output.has_value());
    EXPECT_EQ(result.output->TotalRows(), reference.output_rows);
  } else {
    EXPECT_FALSE(result.output.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigMatrixTest,
    ::testing::Combine(::testing::Values(2, 3, 4),      // version
                       ::testing::Bool(),               // delta_tracking
                       ::testing::Bool(),               // group_locations
                       ::testing::Values(false, true),  // balance_loads
                       ::testing::Values(false, true),  // materialize
                       ::testing::Values(false, true),  // thread pool
                       ::testing::Values(1, 3, 8)));    // nodes

}  // namespace
}  // namespace tj
