// Concurrent phase execution must be bit-identical to sequential: same
// join output, same traffic matrix, same message delivery order.
#include <gtest/gtest.h>

#include "baseline/broadcast_join.h"
#include "baseline/hash_join.h"
#include "common/thread_pool.h"
#include "core/late_hash_join.h"
#include "core/rid_hash_join.h"
#include "core/track_join.h"
#include "workload/generator.h"

namespace tj {
namespace {

TEST(ParallelFabricTest, AllAlgorithmsMatchSequential) {
  WorkloadSpec spec;
  spec.num_nodes = 6;
  spec.matched_keys = 400;
  spec.r_multiplicity = 2;
  spec.s_multiplicity = 3;
  spec.r_payload = 10;
  spec.s_payload = 22;
  spec.r_unmatched = 100;
  spec.s_unmatched = 100;
  Workload w = GenerateWorkload(spec);

  JoinConfig serial;
  serial.key_bytes = 4;
  ThreadPool pool(4);
  JoinConfig parallel = serial;
  parallel.thread_pool = &pool;

  auto check = [&](auto&& run) {
    JoinResult a = run(serial);
    JoinResult b = run(parallel);
    EXPECT_EQ(a.output_rows, b.output_rows);
    EXPECT_EQ(a.checksum.digest(), b.checksum.digest());
    EXPECT_EQ(a.traffic.TotalNetworkBytes(), b.traffic.TotalNetworkBytes());
    EXPECT_EQ(a.traffic.TotalLocalBytes(), b.traffic.TotalLocalBytes());
    for (uint32_t node = 0; node < spec.num_nodes; ++node) {
      EXPECT_EQ(a.traffic.EgressBytes(node), b.traffic.EgressBytes(node));
      EXPECT_EQ(a.traffic.IngressBytes(node), b.traffic.IngressBytes(node));
    }
  };

  check([&](const JoinConfig& c) { return RunHashJoin(w.r, w.s, c); });
  check([&](const JoinConfig& c) {
    return RunBroadcastJoin(w.r, w.s, c, Direction::kRtoS);
  });
  check([&](const JoinConfig& c) {
    return RunTrackJoin2(w.r, w.s, c, Direction::kStoR);
  });
  check([&](const JoinConfig& c) { return RunTrackJoin3(w.r, w.s, c); });
  check([&](const JoinConfig& c) { return RunTrackJoin4(w.r, w.s, c); });
  check([&](const JoinConfig& c) { return RunRidHashJoin(w.r, w.s, c); });
  check([&](const JoinConfig& c) {
    return RunLateMaterializedHashJoin(w.r, w.s, c);
  });
}

TEST(ParallelFabricTest, RepeatedRunsAreStable) {
  WorkloadSpec spec;
  spec.num_nodes = 8;
  spec.matched_keys = 300;
  spec.s_multiplicity = 4;
  Workload w = GenerateWorkload(spec);
  ThreadPool pool(8);
  JoinConfig config;
  config.key_bytes = 4;
  config.thread_pool = &pool;

  JoinResult first = RunTrackJoin4(w.r, w.s, config);
  for (int i = 0; i < 5; ++i) {
    JoinResult again = RunTrackJoin4(w.r, w.s, config);
    EXPECT_EQ(again.checksum.digest(), first.checksum.digest());
    EXPECT_EQ(again.traffic.TotalNetworkBytes(),
              first.traffic.TotalNetworkBytes());
  }
}

}  // namespace
}  // namespace tj
