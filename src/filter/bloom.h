// Bloom filter for semi-join filtering (paper Section 3.3).
//
// "When join operations are coupled with selections, we can prune tuples
// both individually per table and across tables. To that end, databases use
// semi-join implemented using Bloom filters, which are optimized towards
// network traffic."
#ifndef TJ_FILTER_BLOOM_H_
#define TJ_FILTER_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"

namespace tj {

class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` keys at `bits_per_key` bits each
  /// (the paper's per-qualifying-tuple filter length wbf). num_hashes
  /// defaults to the optimum ln2 · bits_per_key.
  BloomFilter(uint64_t expected_keys, uint32_t bits_per_key,
              uint32_t num_hashes = 0);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Unions another filter into this one. Preconditions: same geometry.
  void Union(const BloomFilter& other);

  /// Filter payload size in bytes (what a broadcast transfers).
  uint64_t SizeBytes() const { return bits_.size() * 8; }
  uint64_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }

  /// Expected false-positive rate after `inserted` keys.
  double TheoreticalFpRate(uint64_t inserted) const;

  /// Serialization for the filter-broadcast phase.
  void Serialize(ByteBuffer* out) const;
  static BloomFilter Deserialize(ByteReader* in);

 private:
  BloomFilter() = default;

  uint64_t num_bits_ = 0;
  uint32_t num_hashes_ = 1;
  std::vector<uint64_t> bits_;
};

}  // namespace tj

#endif  // TJ_FILTER_BLOOM_H_
