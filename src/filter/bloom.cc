#include "filter/bloom.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "encoding/varint.h"

namespace tj {

BloomFilter::BloomFilter(uint64_t expected_keys, uint32_t bits_per_key,
                         uint32_t num_hashes) {
  TJ_CHECK_GT(bits_per_key, 0u);
  num_bits_ = std::max<uint64_t>(64, expected_keys * bits_per_key);
  num_bits_ = (num_bits_ + 63) / 64 * 64;
  bits_.assign(num_bits_ / 64, 0);
  if (num_hashes == 0) {
    num_hashes = static_cast<uint32_t>(bits_per_key * 0.693);
    if (num_hashes < 1) num_hashes = 1;
    if (num_hashes > 16) num_hashes = 16;
  }
  num_hashes_ = num_hashes;
}

void BloomFilter::Add(uint64_t key) {
  // Double hashing: h1 + i·h2 positions, the standard Kirsch-Mitzenmacher
  // construction.
  uint64_t h1 = HashKey(key, 101);
  uint64_t h2 = HashKey(key, 202) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    bits_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = HashKey(key, 101);
  uint64_t h2 = HashKey(key, 202) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % num_bits_;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::Union(const BloomFilter& other) {
  TJ_CHECK_EQ(num_bits_, other.num_bits_);
  TJ_CHECK_EQ(num_hashes_, other.num_hashes_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

double BloomFilter::TheoreticalFpRate(uint64_t inserted) const {
  double fill = 1.0 - std::exp(-static_cast<double>(num_hashes_) *
                               static_cast<double>(inserted) /
                               static_cast<double>(num_bits_));
  return std::pow(fill, num_hashes_);
}

void BloomFilter::Serialize(ByteBuffer* out) const {
  EncodeLeb128(num_bits_, out);
  EncodeLeb128(num_hashes_, out);
  ByteWriter writer(out);
  for (uint64_t word : bits_) writer.PutU64(word);
}

BloomFilter BloomFilter::Deserialize(ByteReader* in) {
  BloomFilter filter;
  filter.num_bits_ = DecodeLeb128(in);
  filter.num_hashes_ = static_cast<uint32_t>(DecodeLeb128(in));
  filter.bits_.resize(filter.num_bits_ / 64);
  for (auto& word : filter.bits_) word = in->GetU64();
  return filter;
}

}  // namespace tj
