// Replicated partition placement (chained declustering).
//
// Each table partition gets a primary plus k-1 replicas: copy c of
// partition p lives on node (p + c) mod N, the classic chained-declustering
// map — successive copies chain onto the next nodes, so any single node
// failure leaves every partition with a surviving holder when k >= 2, and
// the failover load spreads over the dead node's neighbors instead of
// doubling one mirror's work.
//
// Replicas are views, not copies: payload synthesis is deterministic from
// (table seed, key, copy index) — see storage/table.h — so the rows a
// replica holder would serve are bit-identical to the primary partition.
// FailoverView materializes exactly the surviving assignment the recovery
// layer needs: dead partitions re-homed onto their first surviving holder,
// live nodes compacted to a dense [0, N_live) id space.
#ifndef TJ_STORAGE_REPLICA_H_
#define TJ_STORAGE_REPLICA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace tj {

/// Chained-declustering placement map for one cluster size and replication
/// factor. Pure arithmetic; shared by every table on the cluster.
class ReplicaMap {
 public:
  static constexpr uint32_t kNoNode = ~0u;

  /// `replication` is clamped to [1, num_nodes] (more copies than nodes
  /// would chain onto the same node again and add nothing).
  ReplicaMap(uint32_t num_nodes, uint32_t replication);

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t replication() const { return replication_; }

  /// Node holding copy `copy` (0 = primary) of partition `partition`.
  uint32_t HolderOf(uint32_t partition, uint32_t copy) const {
    return (partition + copy) % num_nodes_;
  }

  /// Lowest-copy holder of `partition` that is still alive
  /// (alive[node] == false marks a dead node). kNoNode if every copy died.
  uint32_t SurvivingHolder(uint32_t partition,
                           const std::vector<bool>& alive) const;

  /// True iff every partition keeps at least one surviving holder.
  bool CanRecover(const std::vector<bool>& alive) const;

 private:
  uint32_t num_nodes_;
  uint32_t replication_;
};

/// Dense renumbering of the survivors of a failure. Both join inputs (and
/// the traffic remap) must agree on it, so it is built once per failover.
struct SurvivorPlan {
  /// live_to_original[new_id] = original node id, ascending.
  std::vector<uint32_t> live_to_original;
  /// original_to_live[original_id] = new id, or ReplicaMap::kNoNode if dead.
  std::vector<uint32_t> original_to_live;

  uint32_t num_live() const {
    return static_cast<uint32_t>(live_to_original.size());
  }
};

/// Compacts the survivors of `dead` (original node ids; duplicates and
/// out-of-range ids ignored) into a dense id space. Fails with Unavailable
/// when no node survives.
Result<SurvivorPlan> PlanSurvivors(uint32_t num_nodes,
                                   const std::vector<uint32_t>& dead);

/// A partitioned table plus its replica placement. Holds a pointer to the
/// primary table (not owned; must outlive this view).
class ReplicatedTable {
 public:
  ReplicatedTable(const PartitionedTable* primary, uint32_t replication)
      : primary_(primary), map_(primary->num_nodes(), replication) {}

  const PartitionedTable& primary() const { return *primary_; }
  const ReplicaMap& map() const { return map_; }
  uint32_t replication() const { return map_.replication(); }

  /// Extra storage the replicas imply: (k-1) copies of every row's
  /// key + payload bytes.
  uint64_t ReplicaBytes() const;

  /// The degraded table after the nodes in `plan` died: every dead node's
  /// partition is appended onto its first surviving replica holder, and
  /// partitions are renumbered by `plan`. Keys of every re-homed row are
  /// appended to `rehomed_keys` (unsorted, with duplicates) when non-null —
  /// the EXPLAIN audit marks those keys' schedules as failover decisions.
  /// Fails with Unavailable when a dead partition has no surviving copy
  /// (replication too small for this failure).
  Result<PartitionedTable> FailoverView(
      const SurvivorPlan& plan, std::vector<uint64_t>* rehomed_keys) const;

 private:
  const PartitionedTable* primary_;
  ReplicaMap map_;
};

}  // namespace tj

#endif  // TJ_STORAGE_REPLICA_H_
