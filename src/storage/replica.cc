#include "storage/replica.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace tj {

ReplicaMap::ReplicaMap(uint32_t num_nodes, uint32_t replication)
    : num_nodes_(num_nodes),
      replication_(std::max(1u, std::min(replication, num_nodes))) {
  TJ_CHECK_GT(num_nodes, 0u);
}

uint32_t ReplicaMap::SurvivingHolder(uint32_t partition,
                                     const std::vector<bool>& alive) const {
  TJ_CHECK_EQ(alive.size(), static_cast<size_t>(num_nodes_));
  for (uint32_t copy = 0; copy < replication_; ++copy) {
    uint32_t holder = HolderOf(partition, copy);
    if (alive[holder]) return holder;
  }
  return kNoNode;
}

bool ReplicaMap::CanRecover(const std::vector<bool>& alive) const {
  for (uint32_t p = 0; p < num_nodes_; ++p) {
    if (SurvivingHolder(p, alive) == kNoNode) return false;
  }
  return true;
}

Result<SurvivorPlan> PlanSurvivors(uint32_t num_nodes,
                                   const std::vector<uint32_t>& dead) {
  SurvivorPlan plan;
  plan.original_to_live.assign(num_nodes, ReplicaMap::kNoNode);
  std::vector<bool> alive(num_nodes, true);
  for (uint32_t node : dead) {
    if (node < num_nodes) alive[node] = false;
  }
  for (uint32_t node = 0; node < num_nodes; ++node) {
    if (!alive[node]) continue;
    plan.original_to_live[node] =
        static_cast<uint32_t>(plan.live_to_original.size());
    plan.live_to_original.push_back(node);
  }
  if (plan.live_to_original.empty()) {
    return Status::Unavailable("no node survives the failure (all " +
                               std::to_string(num_nodes) + " dead)");
  }
  return plan;
}

uint64_t ReplicatedTable::ReplicaBytes() const {
  if (map_.replication() <= 1) return 0;
  uint64_t row_bytes = 0;
  for (uint32_t p = 0; p < primary_->num_nodes(); ++p) {
    const TupleBlock& block = primary_->node(p);
    row_bytes += block.size() * (8 + primary_->payload_width());
  }
  return row_bytes * (map_.replication() - 1);
}

Result<PartitionedTable> ReplicatedTable::FailoverView(
    const SurvivorPlan& plan, std::vector<uint64_t>* rehomed_keys) const {
  const uint32_t n = primary_->num_nodes();
  TJ_CHECK_EQ(plan.original_to_live.size(), static_cast<size_t>(n));
  std::vector<bool> alive(n, false);
  for (uint32_t node : plan.live_to_original) alive[node] = true;

  PartitionedTable out(primary_->name(), plan.num_live(),
                       primary_->payload_width());
  for (uint32_t p = 0; p < n; ++p) {
    const TupleBlock& block = primary_->node(p);
    uint32_t holder = alive[p] ? p : map_.SurvivingHolder(p, alive);
    if (holder == ReplicaMap::kNoNode) {
      return Status::Unavailable(
          "partition " + std::to_string(p) + " of table '" +
          primary_->name() + "' lost all " +
          std::to_string(map_.replication()) +
          " cop" + (map_.replication() == 1 ? "y" : "ies") +
          " (replication factor too small for this failure)");
    }
    TupleBlock& dst = out.node(plan.original_to_live[holder]);
    dst.Reserve(dst.size() + block.size());
    for (uint64_t row = 0; row < block.size(); ++row) {
      dst.AppendFrom(block, row);
    }
    if (holder != p && rehomed_keys != nullptr) {
      rehomed_keys->reserve(rehomed_keys->size() + block.size());
      for (uint64_t row = 0; row < block.size(); ++row) {
        rehomed_keys->push_back(block.Key(row));
      }
    }
  }
  return out;
}

}  // namespace tj
