#include "storage/table.h"

#include "common/hash.h"
#include "common/rng.h"

namespace tj {

PartitionedTable RekeyByPayloadField(const PartitionedTable& table,
                                     uint32_t offset, uint32_t bytes,
                                     std::string name) {
  TJ_CHECK_LE(bytes, 8u);
  TJ_CHECK_LE(offset + bytes, table.payload_width());
  PartitionedTable out(std::move(name), table.num_nodes(),
                       table.payload_width());
  for (uint32_t node = 0; node < table.num_nodes(); ++node) {
    const TupleBlock& block = table.node(node);
    out.node(node).Reserve(block.size());
    for (uint64_t row = 0; row < block.size(); ++row) {
      uint64_t key = 0;
      const uint8_t* p = block.Payload(row) + offset;
      for (uint32_t i = 0; i < bytes; ++i) {
        key |= static_cast<uint64_t>(p[i]) << (8 * i);
      }
      out.node(node).Append(key, block.Payload(row));
    }
  }
  return out;
}

void SynthesizePayload(uint64_t table_seed, uint64_t key, uint64_t copy,
                       uint32_t width, uint8_t* payload) {
  uint64_t state = SplitMix64(table_seed ^ HashKey(key, 17) ^ (copy * 0xa55a5aa5ULL));
  for (uint32_t i = 0; i < width; i += 8) {
    state = SplitMix64(state);
    for (uint32_t b = 0; b < 8 && i + b < width; ++b) {
      payload[i + b] = static_cast<uint8_t>(state >> (8 * b));
    }
  }
}

void JoinChecksum::Accumulate(uint64_t key, const uint8_t* payload_r,
                              uint32_t width_r, const uint8_t* payload_s,
                              uint32_t width_s) {
  uint64_t h = HashKey(key, 3);
  h = HashMix64(h ^ HashBytes(payload_r, width_r, 5));
  h = HashMix64(h ^ HashBytes(payload_s, width_s, 7));
  ++count_;
  sum_ += h;
  xor_ ^= h;
}

}  // namespace tj
