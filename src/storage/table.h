// Partitioned tables and deterministic payload synthesis.
//
// A PartitionedTable is one join input split across the cluster's nodes —
// "tables R and S split arbitrarily across N nodes" (paper Section 2).
// Payload bytes are synthesized deterministically from (table seed, key,
// copy index) so any join's output can be verified by an order-independent
// checksum without keeping a reference copy.
#ifndef TJ_STORAGE_TABLE_H_
#define TJ_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple_block.h"

namespace tj {

class PartitionedTable {
 public:
  PartitionedTable(std::string name, uint32_t num_nodes, uint32_t payload_width)
      : name_(std::move(name)) {
    partitions_.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) partitions_.emplace_back(payload_width);
  }

  const std::string& name() const { return name_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(partitions_.size()); }
  uint32_t payload_width() const { return partitions_[0].payload_width(); }

  TupleBlock& node(uint32_t i) { return partitions_[i]; }
  const TupleBlock& node(uint32_t i) const { return partitions_[i]; }

  /// Total rows across all nodes.
  uint64_t TotalRows() const {
    uint64_t total = 0;
    for (const auto& p : partitions_) total += p.size();
    return total;
  }

 private:
  std::string name_;
  std::vector<TupleBlock> partitions_;
};

/// Builds a new partitioned table whose join key is a little-endian integer
/// field embedded in each row's payload at [offset, offset + bytes).
/// Tuples stay on their nodes and keep their full payloads. This is how a
/// materialized join output is fed into the next join of a multi-join plan
/// (see examples/star_schema_query.cpp).
PartitionedTable RekeyByPayloadField(const PartitionedTable& table,
                                     uint32_t offset, uint32_t bytes,
                                     std::string name);

/// Fills `payload` (width bytes) deterministically from a seed triple. The
/// first 8 bytes embed a hash usable for verification; remaining bytes are a
/// pseudo-random stream.
void SynthesizePayload(uint64_t table_seed, uint64_t key, uint64_t copy,
                       uint32_t width, uint8_t* payload);

/// Order-independent fingerprint of a set of joined output tuples.
/// Accumulate() may be called in any order and from partial results;
/// Merge() combines per-node accumulators.
class JoinChecksum {
 public:
  /// Adds one output tuple <key, payloadR, payloadS>.
  void Accumulate(uint64_t key, const uint8_t* payload_r, uint32_t width_r,
                  const uint8_t* payload_s, uint32_t width_s);

  void Merge(const JoinChecksum& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    xor_ ^= other.xor_;
  }

  uint64_t count() const { return count_; }
  uint64_t digest() const { return sum_ ^ (xor_ * 0x9e3779b97f4a7c15ULL); }

  bool operator==(const JoinChecksum& other) const {
    return count_ == other.count_ && sum_ == other.sum_ && xor_ == other.xor_;
  }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t xor_ = 0;
};

}  // namespace tj

#endif  // TJ_STORAGE_TABLE_H_
