#include "storage/schema.h"

#include <cstdio>

#include "common/bit_util.h"

namespace tj {

uint32_t ColumnSpec::DictBits() const {
  if (char_bytes > 0) return char_bytes * 8;
  return CeilLog2(distinct_values);
}

// Commercial NUMBER values are stored as base-100 digit pairs behind a
// ~2-byte header (length + sign/exponent); the paper's "variable byte"
// widths for workloads X and Y include it (footnote 1 and the Figure 7
// variable-byte bars are only consistent with headered values).
constexpr uint32_t kNumberHeaderBytesX100 = 200;

uint64_t ColumnSpec::BitsX100(EncodingScheme scheme) const {
  if (char_bytes > 0) {
    // Character data is carried verbatim under every scheme we model.
    return 100ULL * 8 * char_bytes;
  }
  uint32_t avg_raw =
      kNumberHeaderBytesX100 +
      AverageBase100BytesX100(min_raw_value,
                              std::max(min_raw_value, max_raw_value));
  return EncodedBitsX100(scheme, DictBits(), avg_raw);
}

namespace {

uint64_t SumBitsX100(const std::vector<ColumnSpec>& columns,
                     EncodingScheme scheme) {
  uint64_t total = 0;
  for (const auto& c : columns) total += c.BitsX100(scheme);
  return total;
}

}  // namespace

uint64_t TableSchema::KeyBitsX100(EncodingScheme scheme) const {
  return SumBitsX100(key_columns, scheme);
}

uint64_t TableSchema::PayloadBitsX100(EncodingScheme scheme) const {
  return SumBitsX100(payload_columns, scheme);
}

uint64_t TableSchema::TupleBitsX100(EncodingScheme scheme) const {
  return KeyBitsX100(scheme) + PayloadBitsX100(scheme);
}

uint32_t TableSchema::KeyBytes(EncodingScheme scheme) const {
  return (KeyBitsX100(scheme) + 799) / 800;
}

uint32_t TableSchema::PayloadBytes(EncodingScheme scheme) const {
  return (PayloadBitsX100(scheme) + 799) / 800;
}

std::string FormatBitsX100(uint64_t bits_x100) {
  char buf[32];
  if (bits_x100 % 100 == 0) {
    std::snprintf(buf, sizeof(buf), "%llu bits",
                  static_cast<unsigned long long>(bits_x100 / 100));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f bits",
                  static_cast<double>(bits_x100) / 100.0);
  }
  return buf;
}

}  // namespace tj
