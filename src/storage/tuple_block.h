// Physical tuple storage: fixed-width rows of <key, payload bytes>.
//
// A TupleBlock is the unit the execution engine operates on: one table's
// tuples resident at one node. Keys are 64-bit; payloads are a fixed number
// of bytes per row, stored contiguously. This matches the paper's
// implementation ("our implementation supports fixed byte widths").
#ifndef TJ_STORAGE_TUPLE_BLOCK_H_
#define TJ_STORAGE_TUPLE_BLOCK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/status.h"

namespace tj {

class TupleBlock {
 public:
  explicit TupleBlock(uint32_t payload_width = 0)
      : payload_width_(payload_width) {}

  uint32_t payload_width() const { return payload_width_; }
  uint64_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  void Reserve(uint64_t rows) {
    keys_.reserve(rows);
    payloads_.reserve(rows * payload_width_);
  }

  /// Appends a row. `payload` must point at payload_width() bytes (may be
  /// null iff payload_width() == 0).
  void Append(uint64_t key, const uint8_t* payload) {
    keys_.push_back(key);
    if (payload_width_ > 0) {
      payloads_.insert(payloads_.end(), payload, payload + payload_width_);
    }
  }

  /// Appends row `row` of `other` (must have the same payload width).
  void AppendFrom(const TupleBlock& other, uint64_t row) {
    TJ_CHECK_EQ(payload_width_, other.payload_width_);
    Append(other.Key(row), other.Payload(row));
  }

  uint64_t Key(uint64_t row) const { return keys_[row]; }

  /// Pointer to row's payload bytes (valid until the block is modified).
  const uint8_t* Payload(uint64_t row) const {
    return payload_width_ == 0 ? nullptr
                               : payloads_.data() + row * payload_width_;
  }

  const std::vector<uint64_t>& keys() const { return keys_; }

  /// Grows (or shrinks) the block to `rows` rows. New rows are
  /// zero-initialized; the radix kernels overwrite every row through the
  /// mutable accessors below before reading any.
  void Resize(uint64_t rows) {
    keys_.resize(rows);
    payloads_.resize(rows * payload_width_);
  }

  /// Raw write access for the scatter kernels (exec/partition.cc,
  /// exec/radix_sort.cc): concurrent writers must target disjoint rows.
  uint64_t* MutableKeys() { return keys_.data(); }
  uint8_t* MutablePayloads() { return payloads_.data(); }

  /// Width of one serialized row: key_bytes + payload bytes.
  uint32_t RowBytes(uint32_t key_bytes) const {
    return key_bytes + payload_width_;
  }

  /// Serializes rows [begin, end) with a `key_bytes`-byte key.
  void SerializeRows(uint64_t begin, uint64_t end, uint32_t key_bytes,
                     ByteBuffer* out) const;

  /// Serializes an arbitrary set of rows (by index) with a `key_bytes`-byte
  /// key.
  void SerializeRowsIndexed(const std::vector<uint32_t>& rows,
                            uint32_t key_bytes, ByteBuffer* out) const;

  /// Rebuilds the block keeping only rows where keep(row) is true.
  /// Preserves order. Returns the number of rows removed.
  uint64_t Filter(const std::function<bool(uint64_t row)>& keep);

  /// First and one-past-last row of the sorted block whose key equals `key`
  /// (empty range if absent). Precondition: sorted by key.
  std::pair<uint64_t, uint64_t> EqualRange(uint64_t key) const;

  /// Appends rows parsed from `in`, each `key_bytes` + payload_width bytes,
  /// until `in` is exhausted. Aborts on malformed input; use the Try
  /// variant for untrusted bytes.
  void DeserializeRows(ByteReader* in, uint32_t key_bytes);

  /// Bounds-checked variant: input whose size is not a whole number of rows
  /// returns Status::Corruption (and appends nothing).
  Status TryDeserializeRows(ByteReader* in, uint32_t key_bytes);

  /// Drops all rows, keeping capacity.
  void Clear() {
    keys_.clear();
    payloads_.clear();
  }

  /// In-place reorder by a permutation: row i moves to position perm[i]...
  /// (see .cc for the exact convention: output[i] = input[perm[i]]).
  /// With a pool, the gather runs chunk-parallel; output is identical.
  void Permute(const std::vector<uint32_t>& perm,
               class ThreadPool* pool = nullptr);

  /// Total resident bytes (keys at 8 bytes + payloads).
  uint64_t MemoryBytes() const {
    return keys_.size() * 8 + payloads_.size();
  }

 private:
  uint32_t payload_width_;
  std::vector<uint64_t> keys_;
  std::vector<uint8_t> payloads_;
};

}  // namespace tj

#endif  // TJ_STORAGE_TUPLE_BLOCK_H_
