#include "storage/tuple_block.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace tj {

void TupleBlock::SerializeRows(uint64_t begin, uint64_t end, uint32_t key_bytes,
                               ByteBuffer* out) const {
  TJ_CHECK_LE(begin, end);
  TJ_CHECK_LE(end, size());
  ByteWriter writer(out);
  for (uint64_t row = begin; row < end; ++row) {
    writer.PutUint(keys_[row], key_bytes);
    if (payload_width_ > 0) writer.PutBytes(Payload(row), payload_width_);
  }
}

void TupleBlock::SerializeRowsIndexed(const std::vector<uint32_t>& rows,
                                      uint32_t key_bytes,
                                      ByteBuffer* out) const {
  ByteWriter writer(out);
  for (uint32_t row : rows) {
    TJ_CHECK_LT(row, size());
    writer.PutUint(keys_[row], key_bytes);
    if (payload_width_ > 0) writer.PutBytes(Payload(row), payload_width_);
  }
}

uint64_t TupleBlock::Filter(const std::function<bool(uint64_t)>& keep) {
  uint64_t out = 0;
  for (uint64_t row = 0; row < size(); ++row) {
    if (!keep(row)) continue;
    if (out != row) {
      keys_[out] = keys_[row];
      if (payload_width_ > 0) {
        std::memmove(payloads_.data() + out * payload_width_,
                     payloads_.data() + row * payload_width_, payload_width_);
      }
    }
    ++out;
  }
  uint64_t removed = size() - out;
  keys_.resize(out);
  payloads_.resize(out * payload_width_);
  return removed;
}

std::pair<uint64_t, uint64_t> TupleBlock::EqualRange(uint64_t key) const {
  auto lo = std::lower_bound(keys_.begin(), keys_.end(), key);
  auto hi = std::upper_bound(lo, keys_.end(), key);
  return {static_cast<uint64_t>(lo - keys_.begin()),
          static_cast<uint64_t>(hi - keys_.begin())};
}

void TupleBlock::DeserializeRows(ByteReader* in, uint32_t key_bytes) {
  Status status = TryDeserializeRows(in, key_bytes);
  TJ_CHECK(status.ok()) << status.ToString();
}

Status TupleBlock::TryDeserializeRows(ByteReader* in, uint32_t key_bytes) {
  const uint32_t row_bytes = key_bytes + payload_width_;
  TJ_CHECK_GT(row_bytes, 0u);
  if (in->remaining() % row_bytes != 0) {
    return Status::Corruption("tuple payload not a multiple of row size");
  }
  uint64_t rows = in->remaining() / row_bytes;
  Reserve(size() + rows);
  for (uint64_t i = 0; i < rows; ++i) {
    uint64_t key = in->GetUint(key_bytes);
    keys_.push_back(key);
    if (payload_width_ > 0) {
      size_t old = payloads_.size();
      payloads_.resize(old + payload_width_);
      in->GetBytes(payloads_.data() + old, payload_width_);
    }
  }
  return Status::OK();
}

void TupleBlock::Permute(const std::vector<uint32_t>& perm, ThreadPool* pool) {
  TJ_CHECK_EQ(perm.size(), keys_.size());
  std::vector<uint64_t> new_keys(keys_.size());
  std::vector<uint8_t> new_payloads(payloads_.size());
  auto gather = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      new_keys[i] = keys_[perm[i]];
      if (payload_width_ > 0) {
        std::memcpy(
            new_payloads.data() + i * payload_width_,
            payloads_.data() + static_cast<uint64_t>(perm[i]) * payload_width_,
            payload_width_);
      }
    }
  };
  constexpr uint64_t kMinChunkRows = 1 << 14;
  const uint64_t n = perm.size();
  if (pool == nullptr || n < 2 * kMinChunkRows) {
    gather(0, n);
  } else {
    const uint64_t chunks =
        std::min<uint64_t>(pool->num_threads() * 4, n / kMinChunkRows);
    const uint64_t per = (n + chunks - 1) / chunks;
    pool->ParallelFor(chunks, [&](size_t c) {
      uint64_t begin = c * per;
      gather(begin, std::min(n, begin + per));
    });
  }
  keys_ = std::move(new_keys);
  payloads_ = std::move(new_payloads);
}

}  // namespace tj
