// Logical column/table schemas with encoding-aware width models.
//
// The traffic results of the paper depend on tuple widths *under a given
// encoding scheme* (Figures 7-9 sweep fixed-byte / variable-byte /
// dictionary). A TableSchema carries per-column distinct counts and raw
// value ranges so each scheme's width can be derived, reproducing e.g.
// Table 1's bit widths for workload X.
#ifndef TJ_STORAGE_SCHEMA_H_
#define TJ_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/encoding.h"

namespace tj {

/// One column of a join input relation.
struct ColumnSpec {
  std::string name;
  /// Number of distinct values (drives the dictionary code width).
  uint64_t distinct_values = 1;
  /// Raw (pre-dictionary) value range; drives variable-byte widths.
  uint64_t min_raw_value = 0;
  uint64_t max_raw_value = 0;
  /// For fixed-length character columns: byte length (0 = numeric column).
  /// Char columns have the same width under every scheme.
  uint32_t char_bytes = 0;

  /// Compacted dictionary code width: ceil(log2(distinct_values)).
  uint32_t DictBits() const;

  /// Average width in bits ×100 under `scheme`.
  uint64_t BitsX100(EncodingScheme scheme) const;
};

/// Schema of one side of the join: the key column(s) followed by payload
/// columns. Multi-column conjunctive keys are modeled as one concatenated
/// key column (the paper's wk is "the total width of the join key columns").
struct TableSchema {
  std::string name;
  std::vector<ColumnSpec> key_columns;
  std::vector<ColumnSpec> payload_columns;

  /// Average join-key width in bits ×100 under `scheme` (paper's wk).
  uint64_t KeyBitsX100(EncodingScheme scheme) const;
  /// Average payload width in bits ×100 under `scheme` (paper's wR / wS).
  uint64_t PayloadBitsX100(EncodingScheme scheme) const;
  /// KeyBitsX100 + PayloadBitsX100.
  uint64_t TupleBitsX100(EncodingScheme scheme) const;

  /// Physical widths for the execution engine: whole bytes.
  uint32_t KeyBytes(EncodingScheme scheme) const;
  uint32_t PayloadBytes(EncodingScheme scheme) const;
};

/// Pretty bits-per-tuple string, e.g. "79 bits".
std::string FormatBitsX100(uint64_t bits_x100);

}  // namespace tj

#endif  // TJ_STORAGE_SCHEMA_H_
