#include "costmodel/class_estimator.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "core/schedule.h"
#include "core/tracker.h"
#include "exec/key_aggregate.h"

namespace tj {

namespace {

constexpr uint64_t kSampleSalt = 0xc0551edULL;

/// Correlated sampling: a key is in the sample iff its (salted) hash falls
/// under the rate threshold — the same decision everywhere the key occurs.
bool Sampled(uint64_t key, double rate, uint64_t seed) {
  if (rate >= 1.0) return true;
  uint64_t threshold =
      static_cast<uint64_t>(rate * static_cast<double>(~0ULL));
  return HashKey(key, kSampleSalt ^ seed) <= threshold;
}

}  // namespace

ClassEstimate EstimateClasses(const PartitionedTable& r,
                              const PartitionedTable& s,
                              const JoinConfig& config, double sample_rate,
                              uint64_t seed) {
  TJ_CHECK_GT(sample_rate, 0.0);
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();
  const uint32_t width_r = config.key_bytes + r.payload_width();
  const uint32_t width_s = config.key_bytes + s.payload_width();

  // Build the sampled tracker tables (what the tracking phase would see,
  // restricted to sampled keys).
  std::vector<TrackEntry> r_entries, s_entries;
  for (uint32_t node = 0; node < n; ++node) {
    for (const auto& kc : AggregateKeys(r.node(node))) {
      if (Sampled(kc.key, sample_rate, seed)) {
        r_entries.push_back({kc.key, node, kc.count});
      }
    }
    for (const auto& kc : AggregateKeys(s.node(node))) {
      if (Sampled(kc.key, sample_rate, seed)) {
        s_entries.push_back({kc.key, node, kc.count});
      }
    }
  }
  MergeTrackEntries(&r_entries);
  MergeTrackEntries(&s_entries);

  ClassEstimate estimate;
  double rs_weight = 0, sr_weight = 0, hash_weight = 0;
  double sampled_cost = 0;

  PlacementIterator it(r_entries, s_entries, width_r, width_s, /*tracker=*/0,
                       config.MsgBytes());
  while (it.Next()) {
    KeyPlacement p = it.placement();
    p.tracker = HashPartition(it.key(), n);
    KeySchedule sched = PlanOptimal(p);
    sampled_cost += static_cast<double>(sched.plan.cost);
    ++estimate.sampled_keys;

    // Weight classes by the key's matched tuple bytes (the paper's classes
    // partition the tables' tuples, not just the key space).
    double weight = 0;
    for (const auto& ns : p.r) weight += static_cast<double>(ns.bytes);
    for (const auto& ns : p.s) weight += static_cast<double>(ns.bytes);

    // Hash-like: the schedule consolidates everything onto one node (every
    // target location but the destination migrates away).
    const auto& target = sched.dir == Direction::kRtoS ? p.s : p.r;
    bool consolidates =
        target.size() > 1 && sched.plan.migrate.size() + 1 == target.size();
    if (consolidates) {
      hash_weight += weight;
    } else if (sched.dir == Direction::kRtoS) {
      rs_weight += weight;
    } else {
      sr_weight += weight;
    }
  }

  double total = rs_weight + sr_weight + hash_weight;
  if (total > 0) {
    estimate.classes.rs = rs_weight / total;
    estimate.classes.sr = sr_weight / total;
    estimate.classes.hash = hash_weight / total;
  } else {
    estimate.classes = CorrelationClasses{0, 0, 0};
  }
  estimate.schedule_bytes = sampled_cost / sample_rate;
  estimate.matched_keys =
      static_cast<double>(estimate.sampled_keys) / sample_rate;
  return estimate;
}

}  // namespace tj
