// Traffic re-pricing: converting simulated traffic to another encoding.
//
// The simulator moves physical, whole-byte tuples; the paper's figures
// price traffic at sub-byte encoded widths (e.g. 30-bit dictionary keys).
// Because every message of a given type is a flat array of fixed-size
// entries, the entry *count* can be recovered from the physical byte total
// and re-priced under any per-entry bit width — giving the exact traffic
// the same transfer schedule would cost under fixed-byte, variable-byte or
// dictionary encoding (Figures 7-11).
//
// Requires the plain codecs (JoinConfig delta_tracking/group_locations off).
#ifndef TJ_COSTMODEL_REPRICE_H_
#define TJ_COSTMODEL_REPRICE_H_

#include "core/join_types.h"
#include "net/traffic.h"

namespace tj {

/// Target per-entry widths in bits (may be fractional via x100 fixed point).
struct PricingSpec {
  /// Physical widths the simulation ran with.
  JoinConfig physical;
  bool physical_with_counts = false;  ///< Tracking entries carried counts.
  uint32_t physical_payload_r = 0;    ///< Payload bytes of R rows.
  uint32_t physical_payload_s = 0;

  /// Target widths in bits ×100.
  uint64_t key_bits_x100 = 3200;
  uint64_t count_bits_x100 = 800;
  uint64_t node_bits_x100 = 800;
  uint64_t payload_r_bits_x100 = 0;
  uint64_t payload_s_bits_x100 = 0;
};

/// Network bytes of one message type re-priced to the target widths.
double RepricedNetworkBytes(const TrafficMatrix& traffic, MessageType type,
                            const PricingSpec& spec);

/// Network bytes of one figure class re-priced.
double RepricedNetworkBytes(const TrafficMatrix& traffic, TrafficClass cls,
                            const PricingSpec& spec);

/// Total network bytes re-priced.
double RepricedTotalNetworkBytes(const TrafficMatrix& traffic,
                                 const PricingSpec& spec);

}  // namespace tj

#endif  // TJ_COSTMODEL_REPRICE_H_
