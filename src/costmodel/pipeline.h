// Pipelined execution schedule model (paper Section 5).
//
// The library executes joins de-pipelined (like the paper's measurements);
// a production implementation would stream input slices through the phase
// sequence so CPU work and transfers overlap. This module computes the
// makespan of that schedule without rewriting the algorithms: the measured
// per-phase CPU times and per-phase transfer volumes become a chain of
// stages, the input is notionally cut into `chunks` slices, and a
// two-resource (CPU, NIC) list schedule yields the end-to-end time.
//
// chunks = 1 degenerates to the de-pipelined sum; chunks -> infinity
// approaches max(total CPU, total NET) — the classic pipeline bounds.
#ifndef TJ_COSTMODEL_PIPELINE_H_
#define TJ_COSTMODEL_PIPELINE_H_

#include <string>
#include <vector>

#include "core/join_types.h"
#include "net/time_model.h"

namespace tj {

/// One stage of the pipeline: a CPU burst followed by a transfer.
struct PipelineStage {
  std::string name;
  double cpu_seconds = 0;
  double net_seconds = 0;
};

/// Derives the stage chain of a finished join run: per-phase wall-clock CPU
/// (scaled by `time_scale`) plus the modeled transfer time of the message
/// types that phase emits, at `model`'s bandwidth with `num_nodes` NICs
/// transferring concurrently. Understands the phase names of every join
/// driver in this library; unknown phases count as CPU-only.
std::vector<PipelineStage> BuildPipelineStages(const JoinResult& result,
                                               const NetworkTimeModel& model,
                                               uint32_t num_nodes,
                                               double time_scale = 1.0);

/// Makespan of pushing `chunks` equal input slices through the stage chain
/// with one CPU resource and one NET resource (both FIFO, work-conserving).
/// Precondition: chunks >= 1.
double PipelineMakespan(const std::vector<PipelineStage>& stages,
                        uint32_t chunks);

/// Convenience: total de-pipelined time (== PipelineMakespan(stages, 1)).
double DepipelinedSeconds(const std::vector<PipelineStage>& stages);

/// Theoretical envelope for any pipelined schedule of `stages`: no schedule
/// beats saturating the busier resource (lower = max(Σcpu, Σnet)), and none
/// is worse than running every stage back to back with no overlap at all
/// (upper = DepipelinedSeconds). The event-driven fabric's measured
/// makespan must land inside; tests and the CI makespan gate pin this.
struct PipelineBounds {
  double lower_seconds = 0;
  double upper_seconds = 0;

  bool Contains(double seconds, double tolerance = 1e-9) const {
    return seconds >= lower_seconds - tolerance &&
           seconds <= upper_seconds + tolerance;
  }
};
PipelineBounds MakespanBounds(const std::vector<PipelineStage>& stages);

/// Derives the stage chain of a *pipelined* run from its step profile:
/// each step's busiest-node CPU seconds and busiest-NIC transfer seconds
/// become one stage. Unlike BuildPipelineStages (which reprices a barrier
/// run's traffic), this reads the modeled numbers the pipelined fabric
/// already computed — MakespanBounds of the result brackets the run's own
/// makespan_seconds.
std::vector<PipelineStage> StagesFromProfile(const StepProfile& profile);

/// Convenience composing the two: the theoretical envelope of a pipelined
/// run's own step profile. Used as the cost-model cross-check on the
/// critical-path blame report — a reconciled report's makespan (== the
/// fabric's measured makespan) must land inside these bounds, tying the
/// microsecond-exact blame decomposition back to the analytic model.
PipelineBounds ProfileMakespanBounds(const StepProfile& profile);

}  // namespace tj

#endif  // TJ_COSTMODEL_PIPELINE_H_
