// Analytic network cost model (paper Section 3).
//
// Closed-form traffic estimates, in bytes, for every algorithm the paper
// analyzes: broadcast join, (Grace) hash join, 2-/3-/4-phase track join
// with correlation classes, the rid-based tracking-aware hash join of
// Section 3.2, and the Bloom-filtered variants of Section 3.3. The model
// assumes uniform random tuple placement — the worst case for track join.
#ifndef TJ_COSTMODEL_NETWORK_COST_H_
#define TJ_COSTMODEL_NETWORK_COST_H_

#include "costmodel/stats.h"

namespace tj {

/// Broadcast join: the chosen table is replicated to the other N-1 nodes.
double BroadcastJoinCost(const JoinStats& stats, bool broadcast_r);

/// Grace hash join: both tables hash-partitioned. `discount_local` applies
/// the 1/N in-place probability the paper's formula omits.
double HashJoinCost(const JoinStats& stats, bool discount_local = false);

/// 2-phase track join, R→S direction (swap R/S fields in `stats` for S→R):
///   (dR·nR + dS·nS)·wk          tracking
/// + dR·mS·wk                    S locations
/// + tR·sR·mS·(wk+wR)            R tuples to S locations
double TrackJoin2Cost(const JoinStats& stats);

/// Fractions of the key space resolved by each mechanism, used by the 3-
/// and 4-phase cost formulas ("correlation classes", estimated via
/// correlated sampling in the paper). Fractions sum to 1.
struct CorrelationClasses {
  double rs = 1.0;    ///< Class 1: joined by R→S selective broadcast.
  double sr = 0.0;    ///< Class 2: joined by S→R selective broadcast.
  double hash = 0.0;  ///< Class 3 (4-phase only): hash-join-like schedules.
};

/// 3-phase track join: tracking with counters plus the two selective
/// broadcast classes.
double TrackJoin3Cost(const JoinStats& stats, const CorrelationClasses& cls);

/// 4-phase track join (simplified class model): 3-phase classes plus a
/// hash-like class for keys whose tuples consolidate at one node.
double TrackJoin4Cost(const JoinStats& stats, const CorrelationClasses& cls);

/// Late-materialized hash join (Section 3.2): keys+rids shuffled, payloads
/// fetched at output cardinality.
double LateMaterializedHashJoinCost(const JoinStats& stats);

/// Rid-based tracking-aware hash join (Section 3.2): the improved variant
/// that re-joins at the wider tuple's node. Provably dominated by 2TJ.
double RidTrackingHashJoinCost(const JoinStats& stats);

/// Bloom-filtered costs (Section 3.3). `bloom_bytes_per_tuple` is wbf and
/// `fp_rate` the filter's relative error e.
double FilteredHashJoinCost(const JoinStats& stats,
                            double bloom_bytes_per_tuple, double fp_rate);
double FilteredLateMaterializedHashJoinCost(const JoinStats& stats,
                                            double bloom_bytes_per_tuple,
                                            double fp_rate);
double FilteredTrackJoin2Cost(const JoinStats& stats,
                              double bloom_bytes_per_tuple, double fp_rate);

}  // namespace tj

#endif  // TJ_COSTMODEL_NETWORK_COST_H_
