#include "costmodel/pipeline.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace tj {

namespace {

/// Message types whose transfer belongs to a named phase, across all join
/// drivers in this library.
const std::map<std::string, std::vector<MessageType>>& PhaseTransfers() {
  static const auto* kMap = new std::map<std::string, std::vector<MessageType>>{
      // Track join driver.
      {"hash partition & transfer keys",
       {MessageType::kTrackR, MessageType::kTrackS}},
      {"generate schedules & send locations",
       {MessageType::kLocationsToR, MessageType::kLocationsToS,
        MessageType::kMigrateR, MessageType::kMigrateS}},
      {"selective broadcast & migrate",
       {MessageType::kDataR, MessageType::kDataS, MessageType::kMigrationDataR,
        MessageType::kMigrationDataS}},
      // Hash join driver.
      {"hash partition & transfer R tuples", {MessageType::kDataR}},
      {"hash partition & transfer S tuples", {MessageType::kDataS}},
      // Broadcast join driver.
      {"broadcast tuples", {MessageType::kDataR, MessageType::kDataS}},
      // Rid / late-materialized hash joins.
      {"transfer key columns", {MessageType::kTrackR, MessageType::kTrackS}},
      {"join keys & return rids", {MessageType::kRidR, MessageType::kRidS}},
      {"join keys & request payloads",
       {MessageType::kRidR, MessageType::kRidS}},
      {"fetch & forward tuples", {MessageType::kDataR, MessageType::kDataS}},
      {"fetch payloads", {MessageType::kDataR, MessageType::kDataS}},
      // Semi-join prologue.
      {"broadcast bloom filters", {MessageType::kFilter}},
  };
  return *kMap;
}

}  // namespace

std::vector<PipelineStage> BuildPipelineStages(const JoinResult& result,
                                               const NetworkTimeModel& model,
                                               uint32_t num_nodes,
                                               double time_scale) {
  TJ_CHECK_GT(num_nodes, 0u);
  std::vector<PipelineStage> stages;
  stages.reserve(result.phase_seconds.size());
  const auto& transfers = PhaseTransfers();
  for (const auto& [name, cpu] : result.phase_seconds) {
    PipelineStage stage;
    stage.name = name;
    stage.cpu_seconds = cpu * time_scale;
    auto it = transfers.find(name);
    if (it != transfers.end()) {
      uint64_t bytes = 0;
      for (MessageType type : it->second) {
        bytes += result.traffic.NetworkBytes(type);
      }
      // Per-node senders run concurrently; the average NIC's share decides
      // (consistent with the Tables 3/4 transfer rows).
      stage.net_seconds = static_cast<double>(bytes) / num_nodes /
                          model.node_bandwidth_bytes_per_sec * time_scale;
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

double PipelineMakespan(const std::vector<PipelineStage>& stages,
                        uint32_t chunks) {
  TJ_CHECK_GE(chunks, 1u);
  if (stages.empty()) return 0;
  const size_t num_stages = stages.size();
  // ready[p] per chunk: finish time of the chunk's previous stage.
  // Greedy list schedule: repeatedly start the ready sub-task with the
  // earliest ready time; CPU and NET are independent FIFO resources and a
  // stage's transfer follows its CPU burst.
  double cpu_free = 0, net_free = 0;
  // Per chunk: current stage index and time it became ready.
  std::vector<size_t> next_stage(chunks, 0);
  std::vector<double> ready_at(chunks, 0.0);
  size_t remaining = chunks * num_stages;
  double makespan = 0;
  while (remaining > 0) {
    // Pick the ready chunk with the earliest ready time (ties: lowest id).
    size_t best = chunks;
    for (size_t c = 0; c < chunks; ++c) {
      if (next_stage[c] >= num_stages) continue;
      if (best == chunks || ready_at[c] < ready_at[best]) best = c;
    }
    TJ_CHECK_LT(best, chunks);
    const PipelineStage& stage = stages[next_stage[best]];
    double cpu_start = std::max(ready_at[best], cpu_free);
    double cpu_end = cpu_start + stage.cpu_seconds / chunks;
    cpu_free = cpu_end;
    double net_start = std::max(cpu_end, net_free);
    double net_end = net_start + stage.net_seconds / chunks;
    net_free = net_end;
    ready_at[best] = net_end;
    makespan = std::max(makespan, net_end);
    ++next_stage[best];
    --remaining;
  }
  return makespan;
}

double DepipelinedSeconds(const std::vector<PipelineStage>& stages) {
  double total = 0;
  for (const auto& stage : stages) {
    total += stage.cpu_seconds + stage.net_seconds;
  }
  return total;
}

PipelineBounds MakespanBounds(const std::vector<PipelineStage>& stages) {
  PipelineBounds bounds;
  double cpu = 0, net = 0;
  for (const auto& stage : stages) {
    cpu += stage.cpu_seconds;
    net += stage.net_seconds;
  }
  bounds.lower_seconds = std::max(cpu, net);
  bounds.upper_seconds = DepipelinedSeconds(stages);
  return bounds;
}

std::vector<PipelineStage> StagesFromProfile(const StepProfile& profile) {
  std::vector<PipelineStage> stages;
  stages.reserve(profile.steps.size());
  for (const StepRecord& step : profile.steps) {
    stages.push_back({step.phase, step.wall_seconds, step.net_seconds});
  }
  return stages;
}

PipelineBounds ProfileMakespanBounds(const StepProfile& profile) {
  return MakespanBounds(StagesFromProfile(profile));
}

}  // namespace tj
