#include "costmodel/network_cost.h"

#include <algorithm>

namespace tj {

double BroadcastJoinCost(const JoinStats& stats, bool broadcast_r) {
  double tuples = broadcast_r ? stats.t_r : stats.t_s;
  double width = stats.w_k + (broadcast_r ? stats.w_r : stats.w_s);
  return tuples * width * (stats.num_nodes - 1);
}

double HashJoinCost(const JoinStats& stats, bool discount_local) {
  double cost = stats.t_r * (stats.w_k + stats.w_r) +
                stats.t_s * (stats.w_k + stats.w_s);
  if (discount_local) cost *= 1.0 - 1.0 / stats.num_nodes;
  return cost;
}

double TrackJoin2Cost(const JoinStats& stats) {
  double track = (stats.d_r * stats.NodesPerKeyR() +
                  stats.d_s * stats.NodesPerKeyS()) *
                 stats.w_k;
  double locations = stats.d_r * stats.MatchNodesPerKeyS() * stats.w_k;
  double data = stats.t_r * stats.s_r * stats.MatchNodesPerKeyS() *
                (stats.w_k + stats.w_r);
  return track + locations + data;
}

namespace {

/// Tracking with per-node counters (3-/4-phase).
double TrackingWithCountsCost(const JoinStats& stats) {
  return stats.d_r * stats.NodesPerKeyR() * (stats.w_k + stats.CountBytesR()) +
         stats.d_s * stats.NodesPerKeyS() * (stats.w_k + stats.CountBytesS());
}

/// One selective-broadcast class: location messages plus tuple transfers,
/// scaled by the class fraction. `to_s` selects the R→S direction.
double BroadcastClassCost(const JoinStats& stats, double fraction, bool to_s) {
  if (fraction <= 0) return 0;
  if (to_s) {
    return fraction * (stats.d_r * stats.MatchNodesPerKeyS() * stats.w_k +
                       stats.t_r * stats.s_r * stats.MatchNodesPerKeyS() *
                           (stats.w_k + stats.w_r));
  }
  return fraction * (stats.d_s * stats.MatchNodesPerKeyR() * stats.w_k +
                     stats.t_s * stats.s_s * stats.MatchNodesPerKeyR() *
                         (stats.w_k + stats.w_s));
}

}  // namespace

double TrackJoin3Cost(const JoinStats& stats, const CorrelationClasses& cls) {
  return TrackingWithCountsCost(stats) +
         BroadcastClassCost(stats, cls.rs, /*to_s=*/true) +
         BroadcastClassCost(stats, cls.sr, /*to_s=*/false);
}

double TrackJoin4Cost(const JoinStats& stats, const CorrelationClasses& cls) {
  // Class 3 behaves like hash join: both sides consolidate at one node,
  // with location messages directing the moves (paper's R3 -> h(k) terms).
  double hash_class = 0;
  if (cls.hash > 0) {
    hash_class =
        cls.hash * (stats.d_r * stats.NodesPerKeyR() * stats.w_k +
                    stats.t_r * stats.s_r * (stats.w_k + stats.w_r) +
                    stats.d_s * stats.NodesPerKeyS() * stats.w_k +
                    stats.t_s * stats.s_s * (stats.w_k + stats.w_s));
  }
  return TrackingWithCountsCost(stats) +
         BroadcastClassCost(stats, cls.rs, /*to_s=*/true) +
         BroadcastClassCost(stats, cls.sr, /*to_s=*/false) + hash_class;
}

double LateMaterializedHashJoinCost(const JoinStats& stats) {
  return (stats.t_r + stats.t_s) * stats.w_k +
         stats.t_rs *
             (stats.w_r + stats.w_s + stats.RidBytesR() + stats.RidBytesS());
}

double RidTrackingHashJoinCost(const JoinStats& stats) {
  return (stats.t_r + stats.t_s) * stats.w_k +
         stats.t_rs * (std::min(stats.w_r, stats.w_s) + stats.w_k +
                       stats.RidBytesR() + stats.RidBytesS());
}

namespace {

double FilterBroadcastCost(const JoinStats& stats,
                           double bloom_bytes_per_tuple) {
  return (stats.t_r * stats.s_r + stats.t_s * stats.s_s) * stats.num_nodes *
         bloom_bytes_per_tuple;
}

}  // namespace

double FilteredHashJoinCost(const JoinStats& stats,
                            double bloom_bytes_per_tuple, double fp_rate) {
  return FilterBroadcastCost(stats, bloom_bytes_per_tuple) +
         stats.t_r * (stats.s_r + fp_rate) * (stats.w_k + stats.w_r) +
         stats.t_s * (stats.s_s + fp_rate) * (stats.w_k + stats.w_s);
}

double FilteredLateMaterializedHashJoinCost(const JoinStats& stats,
                                            double bloom_bytes_per_tuple,
                                            double fp_rate) {
  return FilterBroadcastCost(stats, bloom_bytes_per_tuple) +
         stats.t_r * (stats.s_r + fp_rate) * (stats.w_k + stats.RidBytesR()) +
         stats.t_s * (stats.s_s + fp_rate) * (stats.w_k + stats.RidBytesS()) +
         stats.t_rs *
             (stats.w_r + stats.w_s + stats.RidBytesR() + stats.RidBytesS());
}

double FilteredTrackJoin2Cost(const JoinStats& stats,
                              double bloom_bytes_per_tuple, double fp_rate) {
  auto match_nodes = [&](double t, double s, double d) {
    return std::min<double>(stats.num_nodes, d > 0 ? t * s / d : 0);
  };
  double me_r = match_nodes(stats.t_r, stats.s_r + fp_rate, stats.d_r);
  double me_s = match_nodes(stats.t_s, stats.s_s + fp_rate, stats.d_s);
  return FilterBroadcastCost(stats, bloom_bytes_per_tuple) +
         stats.d_r * (stats.s_r + fp_rate) * me_r * stats.w_k +
         stats.d_s * (stats.s_s + fp_rate) * me_s * stats.w_k +
         stats.d_r * stats.s_r * stats.MatchNodesPerKeyS() * stats.w_k +
         stats.t_r * stats.s_r * stats.MatchNodesPerKeyS() *
             (stats.w_k + stats.w_r);
}

}  // namespace tj
