#include "costmodel/optimizer.h"

#include <algorithm>

namespace tj {

namespace {

JoinStats SwapRS(const JoinStats& stats) {
  JoinStats swapped = stats;
  std::swap(swapped.t_r, swapped.t_s);
  std::swap(swapped.d_r, swapped.d_s);
  std::swap(swapped.w_r, swapped.w_s);
  std::swap(swapped.s_r, swapped.s_s);
  return swapped;
}

}  // namespace

std::vector<PlanChoice> RankAlgorithms(const JoinStats& stats,
                                       const CorrelationClasses& classes) {
  // With no class estimate, assume the cheaper plain direction resolves all
  // keys — exact in the near-unique-key regime.
  CorrelationClasses cls = classes;
  if (cls.rs + cls.sr + cls.hash <= 0) cls = CorrelationClasses{1.0, 0.0, 0.0};
  double rs_2tj = TrackJoin2Cost(stats);
  double sr_2tj = TrackJoin2Cost(SwapRS(stats));
  CorrelationClasses best_dir{rs_2tj <= sr_2tj ? 1.0 : 0.0,
                              rs_2tj <= sr_2tj ? 0.0 : 1.0, 0.0};
  CorrelationClasses cls3 = classes.rs + classes.sr + classes.hash > 0
                                ? CorrelationClasses{cls.rs + cls.hash / 2,
                                                     cls.sr + cls.hash / 2, 0}
                                : best_dir;
  CorrelationClasses cls4 =
      classes.rs + classes.sr + classes.hash > 0 ? cls : best_dir;

  std::vector<PlanChoice> plans = {
      {JoinAlgorithm::kBroadcastR, BroadcastJoinCost(stats, true)},
      {JoinAlgorithm::kBroadcastS, BroadcastJoinCost(stats, false)},
      {JoinAlgorithm::kHash, HashJoinCost(stats)},
      {JoinAlgorithm::kTrack2R, rs_2tj},
      {JoinAlgorithm::kTrack2S, sr_2tj},
      {JoinAlgorithm::kTrack3, TrackJoin3Cost(stats, cls3)},
      {JoinAlgorithm::kTrack4, TrackJoin4Cost(stats, cls4)},
  };
  std::stable_sort(plans.begin(), plans.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.modeled_bytes < b.modeled_bytes;
                   });
  return plans;
}

PlanChoice ChooseAlgorithm(const JoinStats& stats,
                           const CorrelationClasses& classes) {
  return RankAlgorithms(stats, classes).front();
}

bool TrackJoinBeatsHashJoinUniqueKeys(double w_k, double w_r, double w_s) {
  return 2 * w_k <= std::max(w_r, w_s);
}

}  // namespace tj
