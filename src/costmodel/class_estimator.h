// Correlation-class estimation via correlated sampling (paper §3.1).
//
// "To populate the classes, we can use correlated sampling, a recently
// proposed technique that preserves the join relationships of tuples, is
// independent of the distribution, and can be generated off-line. The
// sample is augmented with initial placements of tuples. Besides computing
// the exact track join cost, we incrementally classify the keys to
// correlation classes based on traffic levels."
//
// Keys are sampled by a hash threshold, so the same keys are sampled from
// both tables on every node — join relationships and placements survive.
// For each sampled key the 4-phase scheduler runs for real, the key is
// classified by the mechanism its optimal schedule uses, and the observed
// costs extrapolate to the full input.
#ifndef TJ_COSTMODEL_CLASS_ESTIMATOR_H_
#define TJ_COSTMODEL_CLASS_ESTIMATOR_H_

#include "core/join_types.h"
#include "costmodel/network_cost.h"
#include "storage/table.h"

namespace tj {

struct ClassEstimate {
  /// Fractions of matched tuples joined by each mechanism: plain R->S /
  /// S->R selective broadcast vs hash-join-like consolidation to a single
  /// node. Sums to 1 when any key matched.
  CorrelationClasses classes;
  /// Extrapolated 4-phase schedule traffic (locations + migrations +
  /// tuple transfers; tracking excluded) in bytes.
  double schedule_bytes = 0;
  /// Extrapolated matched distinct keys.
  double matched_keys = 0;
  /// Keys actually inspected.
  uint64_t sampled_keys = 0;
};

/// Estimates correlation classes and schedule traffic from a correlated
/// sample of rate `sample_rate` in (0, 1]. Deterministic given `seed`.
/// With sample_rate == 1 the schedule_bytes equal the real 4TJ schedule
/// traffic exactly.
ClassEstimate EstimateClasses(const PartitionedTable& r,
                              const PartitionedTable& s,
                              const JoinConfig& config, double sample_rate,
                              uint64_t seed = 0);

}  // namespace tj

#endif  // TJ_COSTMODEL_CLASS_ESTIMATOR_H_
