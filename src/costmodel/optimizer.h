// Query-optimizer algorithm selection.
//
// "The formal model of track join is used by the query optimizer to decide
// whether to use track join in favor of hash join or broadcast join. ...
// The query optimizer should pick 2-phase track join rather than 4-phase
// when both tables have almost entirely unique keys ... Simple broadcast
// join can be better if one table is very small." (Section 3.)
#ifndef TJ_COSTMODEL_OPTIMIZER_H_
#define TJ_COSTMODEL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/join_types.h"
#include "costmodel/network_cost.h"

namespace tj {

/// One candidate plan with its modeled traffic.
struct PlanChoice {
  JoinAlgorithm algorithm;
  double modeled_bytes;
};

/// Models every candidate and returns them sorted cheapest-first.
/// `classes` feeds the 3-/4-phase class model (defaults assume the cheaper
/// single direction resolves everything, the near-unique-key regime).
std::vector<PlanChoice> RankAlgorithms(const JoinStats& stats,
                                       const CorrelationClasses& classes = {});

/// The cheapest candidate.
PlanChoice ChooseAlgorithm(const JoinStats& stats,
                           const CorrelationClasses& classes = {});

/// The paper's no-locality break-even rule for unique-key joins of equal
/// cardinality: track join transfers less than hash join iff
/// 2·wk <= max(wR, wS). (End of Section 3.1.)
bool TrackJoinBeatsHashJoinUniqueKeys(double w_k, double w_r, double w_s);

}  // namespace tj

#endif  // TJ_COSTMODEL_OPTIMIZER_H_
