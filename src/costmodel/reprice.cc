#include "costmodel/reprice.h"

#include "common/logging.h"

namespace tj {

namespace {

/// Physical bytes of one entry of `type`, and its target bits ×100.
struct EntryWidths {
  uint64_t physical_bytes;
  uint64_t target_bits_x100;
};

EntryWidths WidthsFor(MessageType type, const PricingSpec& spec) {
  const JoinConfig& phys = spec.physical;
  switch (type) {
    case MessageType::kTrackR:
    case MessageType::kTrackS:
      if (spec.physical_with_counts) {
        return {phys.key_bytes + phys.count_bytes,
                spec.key_bits_x100 + spec.count_bits_x100};
      }
      return {phys.key_bytes, spec.key_bits_x100};
    case MessageType::kLocationsToR:
    case MessageType::kLocationsToS:
    case MessageType::kMigrateR:
    case MessageType::kMigrateS:
    case MessageType::kFragmentR:
    case MessageType::kFragmentS:
      return {phys.key_bytes + phys.node_bytes,
              spec.key_bits_x100 + spec.node_bits_x100};
    case MessageType::kDataR:
    case MessageType::kMigrationDataR:
      return {phys.key_bytes + spec.physical_payload_r,
              spec.key_bits_x100 + spec.payload_r_bits_x100};
    case MessageType::kDataS:
    case MessageType::kMigrationDataS:
      return {phys.key_bytes + spec.physical_payload_s,
              spec.key_bits_x100 + spec.payload_s_bits_x100};
    case MessageType::kRidR:
    case MessageType::kRidS:
    case MessageType::kFilter:
      // Rid and filter streams are not re-priced (byte-exact already).
      return {1, 800};
  }
  TJ_LOG(Fatal) << "unknown message type";
  return {1, 800};
}

}  // namespace

double RepricedNetworkBytes(const TrafficMatrix& traffic, MessageType type,
                            const PricingSpec& spec) {
  uint64_t bytes = traffic.NetworkBytes(type);
  if (bytes == 0) return 0;
  EntryWidths widths = WidthsFor(type, spec);
  TJ_CHECK_EQ(bytes % widths.physical_bytes, 0u)
      << "message type " << static_cast<int>(type)
      << " is not a flat entry array (compression toggles on?)";
  double entries = static_cast<double>(bytes / widths.physical_bytes);
  return entries * static_cast<double>(widths.target_bits_x100) / 800.0;
}

double RepricedNetworkBytes(const TrafficMatrix& traffic, TrafficClass cls,
                            const PricingSpec& spec) {
  double total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    auto type = static_cast<MessageType>(t);
    if (ClassOf(type) == cls) total += RepricedNetworkBytes(traffic, type, spec);
  }
  return total;
}

double RepricedTotalNetworkBytes(const TrafficMatrix& traffic,
                                 const PricingSpec& spec) {
  double total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    total += RepricedNetworkBytes(traffic, static_cast<MessageType>(t), spec);
  }
  return total;
}

}  // namespace tj
