// Join statistics consumed by the analytic network cost model (Section 3.1).
#ifndef TJ_COSTMODEL_STATS_H_
#define TJ_COSTMODEL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace tj {

/// Optimizer-visible statistics of a distributed equi-join. Widths are in
/// bytes and may be fractional (bit-packed dictionary codes).
struct JoinStats {
  uint32_t num_nodes = 16;  ///< N.
  double t_r = 0;           ///< Tuple count of R.
  double t_s = 0;           ///< Tuple count of S.
  double d_r = 0;           ///< Distinct join keys in R.
  double d_s = 0;           ///< Distinct join keys in S.
  double w_k = 4;           ///< Join key width (paper's wk).
  double w_r = 0;           ///< R payload width (wR).
  double w_s = 0;           ///< S payload width (wS).
  double s_r = 1.0;         ///< Input selectivity of R (fraction with matches).
  double s_s = 1.0;         ///< Input selectivity of S.
  double t_rs = 0;          ///< Output cardinality (late-materialization costs).

  /// nR ≡ min(N, tR/dR): expected nodes holding each distinct R key under
  /// uniform random placement.
  double NodesPerKeyR() const {
    return std::min<double>(num_nodes, d_r > 0 ? t_r / d_r : 0);
  }
  double NodesPerKeyS() const {
    return std::min<double>(num_nodes, d_s > 0 ? t_s / d_s : 0);
  }
  /// mR ≡ min(N, tR·sR/dR): nodes holding *matching* payloads per key.
  double MatchNodesPerKeyR() const {
    return std::min<double>(num_nodes, d_r > 0 ? t_r * s_r / d_r : 0);
  }
  double MatchNodesPerKeyS() const {
    return std::min<double>(num_nodes, d_s > 0 ? t_s * s_s / d_s : 0);
  }

  /// cR: tracking counter width in bytes, sized from the average per-node
  /// key repetition (paper Section 3.1; at least one byte here since our
  /// implementation sends whole bytes).
  double CountBytesR() const {
    double reps = d_r > 0 ? t_r / (d_r * std::max(1.0, NodesPerKeyR())) : 1;
    return std::max(1.0, std::ceil(std::log2(std::max(2.0, reps)) / 8));
  }
  double CountBytesS() const {
    double reps = d_s > 0 ? t_s / (d_s * std::max(1.0, NodesPerKeyS())) : 1;
    return std::max(1.0, std::ceil(std::log2(std::max(2.0, reps)) / 8));
  }

  /// Bytes of a globally unique record id for each table (log t bits).
  double RidBytesR() const { return std::log2(std::max(2.0, t_r)) / 8; }
  double RidBytesS() const { return std::log2(std::max(2.0, t_s)) / 8; }
};

}  // namespace tj

#endif  // TJ_COSTMODEL_STATS_H_
