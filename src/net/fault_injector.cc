#include "net/fault_injector.h"

#include "common/logging.h"

namespace tj {

FaultInjector::FaultInjector(const FaultPolicy& policy, uint64_t seed,
                             uint32_t num_nodes)
    : policy_(policy), barrier_rng_(SplitMix64(seed ^ 0xba221e5ULL)) {
  sources_.reserve(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    // Distinct deterministic stream per sending node: decisions do not
    // depend on the interleaving of other nodes' sends.
    sources_.push_back(PerSource{Rng(SplitMix64(seed + 1) ^
                                     SplitMix64(n * 0x9e3779b97f4a7c15ULL + 7)),
                                 FaultCounters{}});
  }
}

std::vector<ByteBuffer> FaultInjector::Transmit(uint32_t src, uint32_t dst,
                                                const ByteBuffer& frame) {
  TJ_CHECK_LT(src, sources_.size());
  std::vector<ByteBuffer> out;
  if (src == dst) {
    // Local copies never touch the wire.
    out.push_back(frame);
    return out;
  }
  PerSource& source = sources_[src];
  uint32_t copies = 1;
  if (policy_.duplicate > 0 && source.rng.Bernoulli(policy_.duplicate)) {
    ++copies;
    ++source.counts.frames_duplicated;
  }
  for (uint32_t c = 0; c < copies; ++c) {
    if (policy_.drop > 0 && source.rng.Bernoulli(policy_.drop)) {
      ++source.counts.frames_dropped;
      continue;
    }
    ByteBuffer copy = frame;
    if (policy_.corrupt > 0 && source.rng.Bernoulli(policy_.corrupt) &&
        !copy.empty()) {
      uint64_t bit = source.rng.Below(copy.size() * 8);
      copy[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      ++source.counts.frames_corrupted;
    }
    out.push_back(std::move(copy));
  }
  return out;
}

bool FaultInjector::ShouldReorder() {
  if (policy_.reorder <= 0) return false;
  if (!barrier_rng_.Bernoulli(policy_.reorder)) return false;
  ++reorders_;
  return true;
}

FaultCounters FaultInjector::counters() const {
  FaultCounters total;
  for (const PerSource& s : sources_) {
    total.frames_dropped += s.counts.frames_dropped;
    total.frames_corrupted += s.counts.frames_corrupted;
    total.frames_duplicated += s.counts.frames_duplicated;
  }
  total.messages_reordered = reorders_;
  return total;
}

}  // namespace tj
