// Synchronous simulated cluster fabric.
//
// N logical nodes exchange messages in phases separated by barriers —
// exactly the de-pipelined execution the paper's implementation section
// uses ("we separate CPU and network utilization by de-pipelining all
// operations"). Within a phase every node runs its local work and calls
// Send(); deliveries become visible to receivers only after the barrier,
// in deterministic (source-ordered) order.
//
// Phases run nodes sequentially by default, or concurrently on a
// ThreadPool (SetThreadPool) — the paper allows "multiple threads per
// process ... since all local operations combine tuples with the same join
// key only". Message delivery order and traffic accounting are identical
// in both modes: each node owns its send queue and its traffic rows.
//
// All traffic is accounted in a TrafficMatrix; src == dst sends are local
// copies (no network bytes).
#ifndef TJ_NET_FABRIC_H_
#define TJ_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "net/message.h"
#include "net/traffic.h"

namespace tj {

class Fabric {
 public:
  explicit Fabric(uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }

  /// Runs subsequent phases' per-node work on `pool` (not owned; pass
  /// nullptr to return to sequential execution). Results are identical
  /// either way.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  /// Queues a message for delivery after the current phase. Callable only
  /// from inside RunPhase, and only by the node whose id is `src` (this is
  /// what makes concurrent phases race-free).
  void Send(uint32_t src, uint32_t dst, MessageType type, ByteBuffer data);

  /// Accounting-only variant: counts `bytes` of traffic without payload.
  /// Used by analytic components (e.g. modeled filter broadcasts).
  void SendBytes(uint32_t src, uint32_t dst, MessageType type, uint64_t bytes);

  /// Runs one named phase: fn(node) for every node, then the barrier:
  /// queued messages move into the receivers' inboxes ordered by source
  /// node, then send order. The phase's wall time is recorded under `name`.
  void RunPhase(const std::string& name,
                const std::function<void(uint32_t node)>& fn);

  /// Consumes and returns node's inbox (messages delivered at the last
  /// barrier).
  std::vector<Message> TakeInbox(uint32_t node);

  /// Messages of one type only; other messages remain pending for later
  /// TakeInbox calls in the same phase.
  std::vector<Message> TakeInbox(uint32_t node, MessageType type);

  const TrafficMatrix& traffic() const { return traffic_; }

  /// Named per-phase wall-clock durations, in execution order.
  const std::vector<std::pair<std::string, double>>& phase_seconds() const {
    return phase_seconds_;
  }

 private:
  struct Pending {
    uint32_t dst;
    MessageType type;
    ByteBuffer data;
  };

  uint32_t num_nodes_;
  ThreadPool* pool_ = nullptr;
  TrafficMatrix traffic_;
  /// Per-source send queues: node i only ever appends to queued_[i], so
  /// concurrent phase execution needs no locking, and merging in source
  /// order keeps delivery deterministic.
  std::vector<std::vector<Pending>> queued_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::pair<std::string, double>> phase_seconds_;
  bool in_phase_ = false;
};

}  // namespace tj

#endif  // TJ_NET_FABRIC_H_
