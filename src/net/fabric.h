// Synchronous simulated cluster fabric.
//
// N logical nodes exchange messages in phases separated by barriers —
// exactly the de-pipelined execution the paper's implementation section
// uses ("we separate CPU and network utilization by de-pipelining all
// operations"). Within a phase every node runs its local work and calls
// Send(); deliveries become visible to receivers only after the barrier,
// in deterministic (source-ordered) order.
//
// Phases run nodes sequentially by default, or concurrently on a
// ThreadPool (SetThreadPool) — the paper allows "multiple threads per
// process ... since all local operations combine tuples with the same join
// key only". Message delivery order and traffic accounting are identical
// in both modes: each node owns its send queue and its traffic rows.
//
// All traffic is accounted in a TrafficMatrix; src == dst sends are local
// copies (no network bytes).
//
// Fault-tolerant mode (SetFaultPolicy with an active policy): every payload
// is framed (net/message.h) with a sequence number and CRC32C, pushed
// through a seeded FaultInjector, and the barrier runs a bounded
// nack/retransmit protocol per directed link. Frames that stay missing or
// corrupt after the retry budget make RunPhaseReliable return
// Status::DataLoss naming the phase and link — callers fail the query
// rather than compute on partial data. With an inactive (all-zero) policy
// the fabric keeps the pristine unframed path: results, delivery order and
// the TrafficMatrix are byte-identical to a fabric with no policy at all.
//
// Inbox semantics: messages delivered at a barrier stay in the receiver's
// inbox until taken — they survive later barriers, and typed TakeInbox
// calls leave messages of other types in place (in delivery order) for
// later takes in the same or a later phase. Algorithms rely on this
// (e.g. hash join sends R and S in consecutive phases and consumes both
// two barriers later), so the fabric never drops undelivered inbox
// messages.
#ifndef TJ_NET_FABRIC_H_
#define TJ_NET_FABRIC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "net/buffer_pool.h"
#include "net/failure.h"
#include "net/fault_injector.h"
#include "net/message.h"
#include "net/traffic.h"

namespace tj {

class Histogram;

class Fabric {
 public:
  explicit Fabric(uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }

  /// Runs subsequent phases' per-node work on `pool` (not owned; pass
  /// nullptr to return to sequential execution). Results are identical
  /// either way.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  /// Installs a fault policy executed by a deterministic injector seeded
  /// with `seed`. A delivery-inert policy (active() == false) leaves the
  /// fabric on the pristine unframed path — a pure straggler only stretches
  /// modeled phase time there, so traffic stays byte-identical to a fabric
  /// with no policy at all. Call before the first phase.
  void SetFaultPolicy(const FaultPolicy& policy, uint64_t seed);

  bool fault_mode() const { return injector_.has_value(); }

  /// Modeled per-phase deadline: a phase whose modeled straggler slowdown
  /// alone exceeds `seconds` fails with DeadlineExceeded and the straggler
  /// is promoted to suspected-dead in the failure report. Deterministic by
  /// construction — only modeled time counts, never measured wall time.
  /// Zero (the default) disables the deadline.
  void SetPhaseDeadline(double seconds) { phase_deadline_seconds_ = seconds; }

  /// Structured diagnostics sink, filled on every RunPhaseReliable error
  /// path with the failure report plus the partial run's traffic and phase
  /// times. Not owned; pass nullptr to detach. Survives across phases.
  void SetDiagnosticsSink(RunDiagnostics* sink) { diag_sink_ = sink; }

  /// The structured report of the most recent phase failure (empty while
  /// every phase has succeeded).
  const FailureReport& failure() const { return failure_; }

  /// Queues a message for delivery after the current phase. Callable only
  /// from inside RunPhase, and only by the node whose id is `src` (this is
  /// what makes concurrent phases race-free).
  void Send(uint32_t src, uint32_t dst, MessageType type, ByteBuffer data);

  /// Accounting-only variant: counts `bytes` of traffic without payload.
  /// Used by analytic components (e.g. modeled filter broadcasts); modeled
  /// transfers are assumed reliable and bypass fault injection.
  void SendBytes(uint32_t src, uint32_t dst, MessageType type, uint64_t bytes);

  /// Runs one named phase: fn(node) for every node, then the barrier:
  /// queued messages move into the receivers' inboxes ordered by source
  /// node, then send order. The phase's wall time is recorded under `name`.
  ///
  /// A non-OK Status from any node's work, a crash-faulted node, or
  /// unrecoverable message loss fails the phase; the error names the phase.
  /// Messages that were delivered reliably before the failure stay queued,
  /// but callers are expected to abandon the fabric on error.
  Status RunPhaseReliable(const std::string& name,
                          const std::function<Status(uint32_t node)>& fn);

  /// Infallible legacy wrapper: aborts if the phase fails. Use only on
  /// fabrics without an active fault policy.
  void RunPhase(const std::string& name,
                const std::function<void(uint32_t node)>& fn);

  /// Consumes and returns node's inbox (messages delivered at barriers so
  /// far and not yet taken).
  std::vector<Message> TakeInbox(uint32_t node);

  /// Messages of one type only; other messages remain pending — in
  /// delivery order — for later TakeInbox calls (same phase or later).
  std::vector<Message> TakeInbox(uint32_t node, MessageType type);

  const TrafficMatrix& traffic() const { return traffic_; }

  /// What the injector and the retry protocol did so far. Zero-initialized
  /// in pristine mode.
  ReliabilityStats reliability() const;

  /// Named per-phase wall-clock durations, in execution order.
  const std::vector<std::pair<std::string, double>>& phase_seconds() const {
    return phase_seconds_;
  }

  /// Phase-scoped instrumentation, captured once per successful barrier:
  /// everything the phase put on the wire (as deltas of the run ledgers)
  /// plus what the injector and the retry protocol did during it. Phases
  /// are labeled here, at the barrier, so algorithms never thread profiling
  /// state through their per-node work. Purely observational — recording
  /// never writes the TrafficMatrix or perturbs delivery.
  struct PhaseStats {
    std::string name;
    double wall_seconds = 0;
    /// max over nodes of max(ingress, egress) goodput this phase.
    uint64_t max_node_bytes = 0;
    uint64_t retransmitted_frames = 0;
    uint64_t nack_messages = 0;
    /// Injected-fault events observed during this phase.
    FaultCounters faults;
    /// Per-message-type byte deltas: network (src != dst) first sends,
    /// local copies, and recovery overhead.
    std::array<uint64_t, kNumMessageTypes> network_bytes{};
    std::array<uint64_t, kNumMessageTypes> local_bytes{};
    std::array<uint64_t, kNumMessageTypes> retransmit_bytes{};
  };

  /// One entry per completed phase, in execution order. Failed phases are
  /// not recorded (callers abandon the fabric on error).
  const std::vector<PhaseStats>& phase_stats() const { return phase_stats_; }

 private:
  struct Pending {
    uint32_t dst;
    MessageType type;
    ByteBuffer data;
  };
  /// One frame retained by the sender for possible retransmission.
  struct SentFrame {
    uint32_t dst;
    MessageType type;
    uint32_t seq;
    ByteBuffer frame;
  };

  uint32_t& NextSeq(uint32_t src, uint32_t dst) {
    return next_seq_[static_cast<uint64_t>(src) * num_nodes_ + dst];
  }

  /// The reliable barrier: reassembles framed messages per link, runs the
  /// nack/retransmit rounds, and appends the recovered messages to the
  /// inboxes in (src, seq) order. Pristine-path barrier when no injector.
  Status DeliverBarrier(const std::string& name);

  /// Funnels every phase-failure Status through one place: copies the
  /// failure report, traffic and phase times into the diagnostics sink (if
  /// any), then returns `status` unchanged.
  Status Fail(Status status);

  /// Appends this phase's PhaseStats entry by diffing the run ledgers
  /// against the snapshots taken at the previous barrier.
  void RecordPhaseStats(const std::string& name, double wall_seconds);

  uint32_t num_nodes_;
  ThreadPool* pool_ = nullptr;
  /// Payload-size distribution instrument, resolved once at construction.
  /// Registry instruments live for the process, so the pointer stays valid
  /// for any normally-scoped fabric (tests that ResetForTest() construct
  /// their fabrics afterwards).
  Histogram* msg_bytes_hist_ = nullptr;
  TrafficMatrix traffic_;
  /// Per-source send queues: node i only ever appends to queued_[i], so
  /// concurrent phase execution needs no locking, and merging in source
  /// order keeps delivery deterministic. In fault mode these hold wire
  /// frames (post-injector); otherwise raw payloads.
  std::vector<std::vector<Pending>> queued_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::pair<std::string, double>> phase_seconds_;
  bool in_phase_ = false;

  // Phase-scoped instrumentation: per-phase records plus the ledger
  // snapshots ("state at the last barrier") the deltas are diffed against.
  std::vector<PhaseStats> phase_stats_;
  std::array<uint64_t, kNumMessageTypes> seen_network_{};
  std::array<uint64_t, kNumMessageTypes> seen_local_{};
  std::array<uint64_t, kNumMessageTypes> seen_retransmit_{};
  std::vector<uint64_t> seen_ingress_;
  std::vector<uint64_t> seen_egress_;
  uint64_t seen_retransmitted_frames_ = 0;
  uint64_t seen_nack_messages_ = 0;
  FaultCounters seen_faults_;

  // Fault-tolerant mode state. The policy is retained even when it is
  // delivery-inert (pure straggler): the slowdown is modeled on the
  // pristine path, where no injector exists.
  bool has_policy_ = false;
  FaultPolicy policy_;
  double phase_deadline_seconds_ = 0;
  RunDiagnostics* diag_sink_ = nullptr;
  FailureReport failure_;
  std::optional<FaultInjector> injector_;
  std::vector<std::vector<SentFrame>> sent_log_;  ///< Per src, per phase.
  std::vector<uint32_t> next_seq_;                ///< Per link, whole run.
  /// Per-source frame buffer pools: Send (node src's own phase work) draws
  /// from frame_pools_[src], and the single-threaded barrier recycles
  /// retired frames and consumed wire copies back. Framing then stops
  /// allocating per message at steady state.
  std::vector<BufferPool> frame_pools_;
  uint64_t phase_index_ = 0;
  uint64_t retransmitted_frames_ = 0;
  uint64_t nack_messages_ = 0;
};

}  // namespace tj

#endif  // TJ_NET_FABRIC_H_
