// Capacity-preserving free-list of ByteBuffers.
//
// Every message the fabric carries is built by appending into a fresh
// ByteBuffer, which costs a heap allocation plus a geometric-growth
// reallocation chain per message. A BufferPool recycles retired buffers —
// consumed inbox payloads, retired wire frames — so the next message starts
// with warmed capacity and (on Acquire with a hint) reserves once instead
// of growing.
//
// Not thread-safe by design: pools follow the fabric's ownership rule that
// node i's phase work only touches node i's state, so per-node (or
// per-source) pools need no locking under concurrent phases.
#ifndef TJ_NET_BUFFER_POOL_H_
#define TJ_NET_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"

namespace tj {

class BufferPool {
 public:
  /// At most `max_buffers` retired buffers are retained; buffers whose
  /// capacity exceeds `max_buffer_bytes` are dropped instead of cached so
  /// one outlier transfer cannot pin its peak footprint forever.
  explicit BufferPool(size_t max_buffers = 64,
                      size_t max_buffer_bytes = 4u << 20)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  /// Returns an empty buffer, recycled if one is available (its capacity
  /// survives). `reserve_hint` pre-sizes fresh or undersized buffers.
  ByteBuffer Acquire(size_t reserve_hint = 0) {
    ByteBuffer buf;
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
    } else {
      ++misses_;
    }
    if (reserve_hint > buf.capacity()) buf.reserve(reserve_hint);
    return buf;
  }

  /// Returns a retired buffer to the pool (cleared, capacity kept).
  void Recycle(ByteBuffer buf) {
    if (free_.size() >= max_buffers_ || buf.capacity() == 0 ||
        buf.capacity() > max_buffer_bytes_) {
      return;  // Dropped; the allocator reclaims it.
    }
    buf.clear();
    free_.push_back(std::move(buf));
  }

  size_t available() const { return free_.size(); }
  uint64_t reuses() const { return reuses_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<ByteBuffer> free_;
  size_t max_buffers_;
  size_t max_buffer_bytes_;
  uint64_t reuses_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tj

#endif  // TJ_NET_BUFFER_POOL_H_
