// Structured failure reporting for the reliable fabric.
//
// When a phase fails, the bare Status tells a human what went wrong; the
// FailureReport tells the recovery machinery *exactly* what is broken:
// which nodes are confirmed dead (fail-stop), which are suspected dead
// (straggler past the modeled phase deadline), and which directed links
// exhausted their retry budget with which sequence ranges still missing.
// RecoveryManager (src/core/recovery.h) uses the report to decide between
// a backoff-and-retry (transient loss) and a replica failover (dead node).
#ifndef TJ_NET_FAILURE_H_
#define TJ_NET_FAILURE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/traffic.h"

namespace tj {

/// One directed link that still had undelivered frames when the barrier's
/// retry budget ran out, with the exhausted sequence range.
struct LinkLoss {
  uint32_t src = 0;
  uint32_t dst = 0;
  /// Inclusive range of per-link sequence numbers still missing.
  uint32_t seq_begin = 0;
  uint32_t seq_end = 0;
  /// Frames still missing on this link (<= seq_end - seq_begin + 1; the
  /// range may have recovered holes).
  uint64_t frames = 0;
};

/// What the reliable barrier knows about a failed phase. Populated by
/// Fabric on every RunPhaseReliable error path.
struct FailureReport {
  /// Phase that failed (name and 0-based global index).
  std::string phase;
  uint64_t phase_index = 0;
  /// Nodes confirmed fail-stopped (crash-faulted at or before this phase).
  std::vector<uint32_t> dead_nodes;
  /// Nodes promoted to suspected-dead by the modeled phase deadline.
  std::vector<uint32_t> suspected_nodes;
  /// Links whose retry budget ran out, with exhausted seq ranges.
  std::vector<LinkLoss> lost_links;
  /// Retry rounds the barrier ran before giving up (0 when the failure was
  /// not message loss).
  uint32_t retry_rounds = 0;

  bool empty() const {
    return dead_nodes.empty() && suspected_nodes.empty() &&
           lost_links.empty();
  }

  /// True when nothing is known-dead or suspected-dead: the loss is pure
  /// message-level attrition and a retry of the same topology can succeed.
  bool transient() const {
    return dead_nodes.empty() && suspected_nodes.empty();
  }

  /// All nodes the recovery layer must treat as gone (dead + suspected).
  std::vector<uint32_t> unusable_nodes() const {
    std::vector<uint32_t> all = dead_nodes;
    all.insert(all.end(), suspected_nodes.begin(), suspected_nodes.end());
    return all;
  }
};

/// Side-channel a failed join run fills for its caller. Status strings stay
/// human-oriented; this carries the machine-readable failure report plus
/// the partial run's accounting, so RecoveryManager can bill a failed
/// attempt's wire bytes to the recovery ledger and pick a failover plan
/// without parsing error messages. Wire a sink with
/// Fabric::SetDiagnosticsSink / JoinConfig::diagnostics.
struct RunDiagnostics {
  FailureReport failure;
  /// Traffic the failed attempt put on the wire before dying.
  TrafficMatrix traffic;
  /// Modeled wall time the failed attempt burned, per phase.
  std::vector<std::pair<std::string, double>> phase_seconds;

  void Reset() {
    failure = FailureReport();
    traffic.Reset(0);
    phase_seconds.clear();
  }
};

}  // namespace tj

#endif  // TJ_NET_FAILURE_H_
