#include "net/pipelined_fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tj {
namespace {

int64_t ToMicros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

}  // namespace

PipelinedFabric::PipelinedFabric(const Params& params) : params_(params) {
  TJ_CHECK_GT(params_.num_nodes, 0u);
  const uint32_t n = params_.num_nodes;
  traffic_.Reset(n);
  runnable_.assign(n, {});
  cpu_busy_.assign(n, false);
  cpu_free_.assign(n, 0.0);
  egress_free_.assign(n, 0.0);
  ingress_free_.assign(n, 0.0);
  egress_occupant_dst_.assign(n, n);  // n == "no transfer yet".
  links_.assign(static_cast<size_t>(n) * n, Link{});
  for (Link& link : links_) link.credit = LinkWindowBytes();
  if (params_.egress_policy == EgressSchedPolicy::kDrr) {
    egress_queues_.assign(static_cast<size_t>(n) * n, EgressQueue{});
    TJ_CHECK_GT(DrrQuantumBytes(), 0u) << "DRR needs a positive quantum";
  }
  dead_.assign(n, false);
  in_flight_.assign(n, std::nullopt);
  nic_out_bytes_.assign(n, 0);
  nic_in_bytes_.assign(n, 0);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  stall_hist_ = &metrics.histogram("pipeline.credit_stall_seconds");
  stall_hol_total_ = &metrics.counter("pipeline.credit_stall_hol_total");
  stall_exhausted_total_ =
      &metrics.counter("pipeline.credit_stall_exhausted_total");
  if (params_.fault_policy != nullptr) {
    const FaultPolicy& policy = *params_.fault_policy;
    if (policy.active()) fault_rng_.emplace(params_.fault_seed);
    // The pipelined run has no global phase counter, so a crash-faulted
    // node fail-stops from time zero: it runs no tasks and sends nothing.
    if (policy.crash_node < n) {
      dead_[policy.crash_node] = true;
      failure_.dead_nodes.push_back(policy.crash_node);
    }
    // A straggler's CPU comes up late; its NICs still accept transfers.
    if (policy.models_straggler() && policy.slow_node < n) {
      cpu_free_[policy.slow_node] = policy.slowdown_seconds;
    }
  }
}

uint64_t PipelinedFabric::LinkWindowBytes() const {
  return std::max<uint64_t>(params_.chunk_bytes,
                            params_.inbox_budget_bytes / params_.num_nodes);
}

uint64_t PipelinedFabric::CreditNeed(const Chunk& chunk) const {
  // An oversized chunk takes the whole window instead of deadlocking on
  // credit it can never accumulate.
  return std::min<uint64_t>(chunk.data.size(), LinkWindowBytes());
}

uint64_t PipelinedFabric::DrrQuantumBytes() const {
  return params_.drr_quantum_bytes > 0 ? params_.drr_quantum_bytes
                                       : params_.chunk_bytes;
}

uint32_t PipelinedFabric::StageIndex(const char* stage) {
  for (uint32_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == stage) return i;
  }
  stages_.push_back(StageStats{});
  stages_.back().name = stage;
  stage_node_cpu_.emplace_back(params_.num_nodes, 0.0);
  stage_node_in_.emplace_back(params_.num_nodes, 0);
  stage_node_out_.emplace_back(params_.num_nodes, 0);
  return static_cast<uint32_t>(stages_.size() - 1);
}

void PipelinedFabric::OnChunk(MessageType type, const char* stage,
                              ChunkHandler handler) {
  TJ_CHECK(!ran_) << "OnChunk after Run";
  const int t = static_cast<int>(type);
  TJ_CHECK(!handlers_[t].has_value()) << "duplicate handler";
  handlers_[t].emplace(StageIndex(stage), std::move(handler));
}

void PipelinedFabric::PushEvent(double time, Event::Kind kind,
                                uint64_t payload, uint32_t node) {
  events_.push(Event{time, next_event_seq_++, kind, payload, node});
}

void PipelinedFabric::Post(uint32_t node, const char* stage,
                           std::string label, Task fn, TraceArgs trace_args) {
  TJ_CHECK_LT(node, params_.num_nodes);
  TaskRecord task;
  task.node = node;
  task.stage = StageIndex(stage);
  task.label = std::move(label);
  task.fn = std::move(fn);
  task.trace_args = std::move(trace_args);
  TaskTiming timing;
  timing.node = node;
  timing.stage = task.stage;
  if (in_task_) timing.parent_task = static_cast<int64_t>(running_task_);
  tasks_.push_back(std::move(task));
  task_timing_.push_back(timing);
  const uint64_t index = tasks_.size() - 1;
  if (in_task_) {
    buffered_posts_.push_back(index);
  } else {
    TJ_CHECK(!ran_) << "Post after Run finished";
    PushEvent(0.0, Event::kTaskReady, index, node);
  }
}

void PipelinedFabric::SendChunk(uint32_t src, uint32_t dst, MessageType type,
                                ByteBuffer data, bool eos,
                                uint64_t watermark) {
  TJ_CHECK(in_task_) << "SendChunk outside a running task";
  TJ_CHECK_EQ(src, running_node_) << "task may only send from its own node";
  TJ_CHECK_LT(dst, params_.num_nodes);
  Chunk chunk;
  chunk.src = src;
  chunk.dst = dst;
  chunk.type = type;
  chunk.data = std::move(data);
  chunk.eos = eos;
  chunk.watermark = watermark;
  ChunkTiming timing;
  timing.src = src;
  timing.dst = dst;
  timing.stage = tasks_[running_task_].stage;
  timing.type = type;
  timing.bytes = chunk.data.size();
  timing.sender_task = static_cast<int64_t>(running_task_);
  timing.local = (src == dst);
  chunks_.push_back(std::move(chunk));
  chunk_timing_.push_back(timing);
  chunk_stage_.push_back(tasks_[running_task_].stage);
  chunk_credit_.push_back(0);
  buffered_sends_.push_back(chunks_.size() - 1);
}

void PipelinedFabric::ChargeCpuBytes(uint64_t bytes) {
  TJ_CHECK(in_task_) << "ChargeCpuBytes outside a running task";
  running_charged_bytes_ += bytes;
}

void PipelinedFabric::RecordModeledCounter(std::string name, uint32_t node,
                                           double now, int64_t value) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = "mb";
  event.node = node;
  event.phase = 'C';
  event.t_start_us = ToMicros(now);
  event.value = value;
  Tracer::Global().Record(std::move(event));
}

void PipelinedFabric::RecordCreditCounter(uint32_t src, uint32_t dst,
                                          double now) {
  if (!Tracer::enabled()) return;
  RecordModeledCounter(
      "flow.credit.d" + std::to_string(dst), src, now,
      static_cast<int64_t>(
          links_[static_cast<size_t>(src) * params_.num_nodes + dst].credit));
}

void PipelinedFabric::RecordQueuedCounter(uint32_t src, uint32_t dst,
                                          double now) {
  if (!Tracer::enabled()) return;
  RecordModeledCounter(
      "flow.queued.d" + std::to_string(dst), src, now,
      static_cast<int64_t>(
          links_[static_cast<size_t>(src) * params_.num_nodes + dst]
              .queued_bytes));
}

void PipelinedFabric::RecordEgressQueuedCounter(uint32_t src, uint32_t dst,
                                                double now) {
  if (!Tracer::enabled()) return;
  RecordModeledCounter(
      "egress.queued.d" + std::to_string(dst), src, now,
      static_cast<int64_t>(
          egress_queues_[static_cast<size_t>(src) * params_.num_nodes + dst]
              .queued_bytes));
}

void PipelinedFabric::RecordDeficitCounter(uint32_t src, uint32_t dst,
                                           double now) {
  if (!Tracer::enabled()) return;
  const uint64_t deficit =
      egress_queues_[static_cast<size_t>(src) * params_.num_nodes + dst]
          .deficit;
  RecordModeledCounter(
      "drr.deficit.d" + std::to_string(dst), src, now,
      static_cast<int64_t>(std::min<uint64_t>(
          deficit, std::numeric_limits<int64_t>::max())));
}

void PipelinedFabric::TryStartTask(uint32_t node, double now) {
  if (cpu_busy_[node] || runnable_[node].empty()) return;
  const uint64_t index = runnable_[node].front();
  runnable_[node].pop_front();
  const double start = std::max(now, cpu_free_[node]);

  in_task_ = true;
  running_node_ = node;
  running_task_ = index;
  running_start_ = start;
  running_charged_bytes_ = 0;
  buffered_posts_.clear();
  buffered_sends_.clear();
  // The task may Post, growing tasks_ and relocating the very function
  // object being executed — move it out first.
  Task fn = std::move(tasks_[index].fn);
  Status status = fn();
  in_task_ = false;

  const double dur = params_.cost.CpuSeconds(running_charged_bytes_);
  const double finish = start + dur;
  const uint32_t stage = tasks_[index].stage;
  stage_node_cpu_[stage][node] += dur;
  stages_[stage].cpu_seconds_total += dur;
  task_timing_[index].start = start;
  task_timing_[index].finish = finish;

  if (Tracer::enabled()) {
    RecordModeledCounter("cpu.busy", node, start, 1);
    RecordModeledCounter("cpu.busy", node, finish, 0);
    TraceEvent event;
    event.name = tasks_[index].label;
    event.category = "mb";
    event.node = node;
    event.phase = 'X';
    event.t_start_us = ToMicros(start);
    event.dur_us = ToMicros(finish) - ToMicros(start);
    event.args = tasks_[index].trace_args;
    Tracer::Global().Record(std::move(event));
  }

  InFlight fl;
  fl.task = index;
  fl.start = start;
  fl.finish = finish;
  fl.posts = std::move(buffered_posts_);
  fl.sends = std::move(buffered_sends_);
  buffered_posts_.clear();
  buffered_sends_.clear();
  in_flight_[node] = std::move(fl);
  cpu_busy_[node] = true;
  cpu_free_[node] = finish;
  PushEvent(finish, Event::kTaskFinish, 0, node);

  if (!status.ok() && first_error_.ok()) {
    first_error_ = Status(
        status.code(), "pipelined task '" + tasks_[index].label + "' node " +
                           std::to_string(node) + ": " + status.message());
  }
}

void PipelinedFabric::FinishTask(uint32_t node, double now) {
  TJ_CHECK(in_flight_[node].has_value());
  InFlight fl = std::move(*in_flight_[node]);
  in_flight_[node].reset();
  cpu_busy_[node] = false;
  TaskRecord& task = tasks_[fl.task];

  for (uint64_t post : fl.posts) {
    PushEvent(now, Event::kTaskReady, post, tasks_[post].node);
  }
  for (uint64_t send : fl.sends) AdmitChunk(send, now);

  if (task.returns_credit) {
    ReturnCredit(task.credit_src, task.credit_dst, task.credit_bytes, now);
  }
  if (task.handler_chunk >= 0) {
    // Handler ran; its chunk payload is no longer needed.
    ByteBuffer().swap(chunks_[task.handler_chunk].data);
  }
  // Release the task closure (captured buffers) once it can never rerun.
  task.fn = nullptr;
}

void PipelinedFabric::AdmitChunk(uint64_t chunk_index, double ready) {
  Chunk& chunk = chunks_[chunk_index];
  ChunkTiming& timing = chunk_timing_[chunk_index];
  timing.admit = ready;
  if (chunk.src == chunk.dst) {
    // Local copy: no NIC, no credit; the ledger's src == dst cells are the
    // local-copy side.
    const uint32_t stage = chunk_stage_[chunk_index];
    traffic_.Add(chunk.src, chunk.dst, chunk.type, chunk.data.size());
    stages_[stage].local_bytes += chunk.data.size();
    stages_[stage]
        .local_bytes_by_type[static_cast<int>(chunk.type)] +=
        chunk.data.size();
    timing.head = ready;
    timing.grant = ready;
    timing.egress_clear = ready;
    timing.wire_start = ready;
    timing.arrival = ready;
    timing.delivered = true;
    PushEvent(ready, Event::kChunkArrive, chunk_index, chunk.dst);
    return;
  }
  Link& link = links_[static_cast<size_t>(chunk.src) * params_.num_nodes +
                      chunk.dst];
  const uint64_t need = CreditNeed(chunk);
  chunk_credit_[chunk_index] = need;
  // FIFO per link: a chunk never overtakes an earlier blocked one, even if
  // it would fit the remaining credit.
  if (!link.blocked.empty() || need > link.credit) {
    // Classify the stall by its cause at admission: queued behind earlier
    // blocked chunks is head-of-line blocking; an empty queue with an
    // insufficient window is genuine inbox-credit exhaustion.
    if (link.blocked.empty()) {
      timing.head = ready;  // Immediately the FIFO front, waiting on credit.
      stall_exhausted_total_->Increment();
    } else {
      stall_hol_total_->Increment();
    }
    timing.stalled = true;
    link.blocked.emplace_back(chunk_index, ready);
    link.queued_bytes += timing.bytes;
    RecordQueuedCounter(chunk.src, chunk.dst, ready);
    ++credit_stall_events_;
    return;
  }
  timing.head = ready;
  link.credit -= need;
  RecordCreditCounter(chunk.src, chunk.dst, ready);
  DispatchGranted(chunk_index, ready);
}

void PipelinedFabric::DispatchGranted(uint64_t chunk_index, double ready) {
  if (params_.egress_policy == EgressSchedPolicy::kDrr) {
    EnqueueEgress(chunk_index, ready);
  } else {
    LaunchChunk(chunk_index, ready);
  }
}

void PipelinedFabric::ReturnCredit(uint32_t src, uint32_t dst, uint64_t bytes,
                                   double now) {
  Link& link = links_[static_cast<size_t>(src) * params_.num_nodes + dst];
  link.credit += bytes;
  RecordCreditCounter(src, dst, now);
  while (!link.blocked.empty()) {
    const auto [chunk_index, ready] = link.blocked.front();
    // The front either launches now or starts waiting on credit now; both
    // end its head-of-line segment.
    if (chunk_timing_[chunk_index].head < 0) {
      chunk_timing_[chunk_index].head = now;
    }
    const uint64_t need = chunk_credit_[chunk_index];
    if (need > link.credit) break;
    link.blocked.pop_front();
    link.queued_bytes -= chunk_timing_[chunk_index].bytes;
    link.credit -= need;
    RecordCreditCounter(src, dst, now);
    RecordQueuedCounter(src, dst, now);
    DispatchGranted(chunk_index, std::max(ready, now));
  }
}

void PipelinedFabric::AccountGrant(uint64_t chunk_index, double ready) {
  Chunk& chunk = chunks_[chunk_index];
  const uint32_t stage = chunk_stage_[chunk_index];
  const uint64_t wire =
      chunk.data.size() + (fault_active() ? kFrameHeaderBytes : 0);

  // First transmission is goodput; stage ledgers see goodput only, so the
  // barrier-equivalent reference prices the same bytes as a pristine run.
  // Accounting happens at credit grant under both egress policies, so the
  // ledgers cannot depend on NIC scheduling order.
  traffic_.Add(chunk.src, chunk.dst, chunk.type, wire);
  stages_[stage].network_bytes += wire;
  stages_[stage].network_bytes_by_type[static_cast<int>(chunk.type)] += wire;
  stage_node_out_[stage][chunk.src] += wire;
  stage_node_in_[stage][chunk.dst] += wire;

  ChunkTiming& timing = chunk_timing_[chunk_index];
  timing.grant = ready;
  if (timing.stalled) stall_hist_->Observe(ready - timing.admit);
}

void PipelinedFabric::LaunchChunk(uint64_t chunk_index, double ready) {
  AccountGrant(chunk_index, ready);
  Chunk& chunk = chunks_[chunk_index];
  ChunkTiming& timing = chunk_timing_[chunk_index];
  const double egress_clear = std::max(ready, egress_free_[chunk.src]);
  const double wire_start = std::max(egress_clear, ingress_free_[chunk.dst]);
  timing.egress_clear = egress_clear;
  if (egress_clear > ready &&
      egress_occupant_dst_[chunk.src] != chunk.dst) {
    timing.egress_hol = true;
  }
  egress_occupant_dst_[chunk.src] = chunk.dst;
  StartTransfer(chunk_index, wire_start);
}

void PipelinedFabric::MarkEgressWait(uint64_t chunk_index, double now,
                                     ChunkTiming::EgressWait state) {
  auto& marks = chunk_timing_[chunk_index].egress_marks;
  if (!marks.empty() && marks.back().first == now) {
    // Re-evaluated within one modeled instant: the final state wins and the
    // mark list stays strictly increasing in time.
    marks.back().second = state;
    return;
  }
  if (!marks.empty() && marks.back().second == state) return;  // No change.
  marks.emplace_back(now, state);
}

void PipelinedFabric::RefreshFrontMarks(uint32_t node, double now,
                                        bool after_pick) {
  const uint32_t n = params_.num_nodes;
  const bool egress_busy = egress_free_[node] > now;
  for (uint32_t dst = 0; dst < n; ++dst) {
    EgressQueue& q = egress_queues_[static_cast<size_t>(node) * n + dst];
    if (q.chunks.empty()) continue;
    const uint64_t front = q.chunks.front();
    const bool ingress_busy = ingress_free_[dst] > now;
    ChunkTiming::EgressWait state;
    if (egress_busy) {
      // A front that was ready but lacked deficit when the pick happened
      // lost its turn to the quantum cursor, not to NIC occupancy per se.
      if (after_pick && !ingress_busy &&
          q.deficit < chunks_[front].data.size()) {
        state = ChunkTiming::EgressWait::kDeficit;
      } else {
        state = (egress_occupant_dst_[node] == dst)
                    ? ChunkTiming::EgressWait::kQueue
                    : ChunkTiming::EgressWait::kHol;
      }
    } else if (ingress_busy) {
      state = ChunkTiming::EgressWait::kIngress;
    } else {
      // Idle NIC, idle ingress: only reachable transiently (the scheduler
      // serves such a front before exiting); classify by the deficit.
      state = (q.deficit < chunks_[front].data.size())
                  ? ChunkTiming::EgressWait::kDeficit
                  : ChunkTiming::EgressWait::kIngress;
    }
    MarkEgressWait(front, now, state);
  }
}

void PipelinedFabric::EnqueueEgress(uint64_t chunk_index, double now) {
  AccountGrant(chunk_index, now);
  Chunk& chunk = chunks_[chunk_index];
  EgressQueue& q =
      egress_queues_[static_cast<size_t>(chunk.src) * params_.num_nodes +
                     chunk.dst];
  q.chunks.push_back(chunk_index);
  q.queued_bytes += chunk.data.size();
  RecordEgressQueuedCounter(chunk.src, chunk.dst, now);
  // Anchor the blame chain exactly at the grant boundary; the scheduler
  // pass below reclassifies the mark in place if the chunk is already the
  // queue front.
  MarkEgressWait(chunk_index, now, ChunkTiming::EgressWait::kQueue);
  RunEgressScheduler(chunk.src, now);
}

void PipelinedFabric::RunEgressScheduler(uint32_t node, double now) {
  const uint32_t n = params_.num_nodes;
  const uint64_t quantum = DrrQuantumBytes();
  bool picked = false;
  while (egress_free_[node] <= now) {
    // A queue front competes when its destination ingress is idle; an
    // ingress-busy destination is skipped so it cannot stall the NIC.
    bool any_ready = false;
    int64_t pick = -1;
    double pick_grant = 0;
    uint64_t pick_chunk = 0;
    auto consider = [&](uint32_t dst) {
      EgressQueue& q = egress_queues_[static_cast<size_t>(node) * n + dst];
      if (q.chunks.empty() || ingress_free_[dst] > now) return;
      any_ready = true;
      const uint64_t front = q.chunks.front();
      if (q.deficit < chunks_[front].data.size()) return;
      const double grant = chunk_timing_[front].grant;
      // Oldest grant wins; chunk index (send order) breaks exact ties, so
      // an infinite quantum degenerates to the global FIFO order.
      if (pick < 0 || grant < pick_grant ||
          (grant == pick_grant && front < pick_chunk)) {
        pick = static_cast<int64_t>(dst);
        pick_grant = grant;
        pick_chunk = front;
      }
    };
    for (uint32_t dst = 0; dst < n; ++dst) consider(dst);
    if (!any_ready) break;
    while (pick < 0) {
      // Top-up round: every backlogged queue gains a quantum of
      // eligibility, in destination order. Rounds are instantaneous in
      // modeled time; they repeat only for chunks larger than the quantum.
      for (uint32_t dst = 0; dst < n; ++dst) {
        EgressQueue& q = egress_queues_[static_cast<size_t>(node) * n + dst];
        if (q.chunks.empty()) continue;
        q.deficit = (q.deficit > std::numeric_limits<uint64_t>::max() - quantum)
                        ? std::numeric_limits<uint64_t>::max()
                        : q.deficit + quantum;
      }
      for (uint32_t dst = 0; dst < n; ++dst) consider(dst);
    }
    const uint32_t dst = static_cast<uint32_t>(pick);
    EgressQueue& q = egress_queues_[static_cast<size_t>(node) * n + dst];
    const uint64_t chunk_index = q.chunks.front();
    q.chunks.pop_front();
    q.queued_bytes -= chunks_[chunk_index].data.size();
    q.deficit -= chunks_[chunk_index].data.size();
    if (q.chunks.empty()) q.deficit = 0;  // No hoarding across idle spells.
    RecordEgressQueuedCounter(node, dst, now);
    RecordDeficitCounter(node, dst, now);
    egress_occupant_dst_[node] = dst;
    ChunkTiming& timing = chunk_timing_[chunk_index];
    timing.egress_clear = now;
    StartTransfer(chunk_index, now);
    picked = true;
  }
  RefreshFrontMarks(node, now, picked);
}

void PipelinedFabric::StartTransfer(uint64_t chunk_index, double wire_start) {
  Chunk& chunk = chunks_[chunk_index];
  ChunkTiming& timing = chunk_timing_[chunk_index];
  const uint64_t wire =
      chunk.data.size() + (fault_active() ? kFrameHeaderBytes : 0);
  timing.wire_start = wire_start;
  const double dur = params_.cost.TransferSeconds(wire);
  double t = wire_start;
  bool delivered = true;
  if (fault_active()) {
    const FaultPolicy& policy = *params_.fault_policy;
    delivered = false;
    for (uint32_t attempt = 0; attempt <= policy.max_retries; ++attempt) {
      double t_end = t + dur;
      if (attempt > 0) {
        traffic_.AddRetransmit(chunk.src, chunk.dst, chunk.type, wire);
        ++retransmitted_frames_;
      }
      const bool dropped = fault_rng_->Bernoulli(policy.drop);
      const bool corrupt = !dropped && fault_rng_->Bernoulli(policy.corrupt);
      const bool duplicated =
          !dropped && fault_rng_->Bernoulli(policy.duplicate);
      if (duplicated) {
        // The spurious extra copy burns wire time and overhead bytes but
        // is discarded by the receiver's stream sequencing.
        ++fault_counters_.frames_duplicated;
        traffic_.AddRetransmit(chunk.src, chunk.dst, chunk.type, wire);
        t_end += dur;
      }
      if (dropped) {
        ++fault_counters_.frames_dropped;
        t = t_end;
        continue;
      }
      if (corrupt) {
        ++fault_counters_.frames_corrupted;
        ++nack_messages_;
        t = t_end;
        continue;
      }
      t = t_end;
      delivered = true;
      break;
    }
    if (delivered && fault_rng_->Bernoulli(policy.reorder)) {
      // Streams are FIFO by construction here, so a reorder fault is
      // absorbed by the model; it is still counted for parity with the
      // barrier fabric's injector.
      ++fault_counters_.messages_reordered;
    }
  } else {
    t += dur;
  }
  egress_free_[chunk.src] = t;
  ingress_free_[chunk.dst] = t;
  timing.arrival = t;
  timing.delivered = delivered;
  nic_out_bytes_[chunk.src] += wire;
  nic_in_bytes_[chunk.dst] += wire;
  if (Tracer::enabled()) {
    // Busy tracks mark the occupied window; cumulative byte counters match
    // the barrier fabric's nic.* schema (first-transmission wire bytes).
    RecordModeledCounter("nic.egress.busy", chunk.src, wire_start, 1);
    RecordModeledCounter("nic.ingress.busy", chunk.dst, wire_start, 1);
    RecordModeledCounter("nic.egress.busy", chunk.src, t, 0);
    RecordModeledCounter("nic.ingress.busy", chunk.dst, t, 0);
    RecordModeledCounter("nic.egress_bytes", chunk.src, t,
                         static_cast<int64_t>(nic_out_bytes_[chunk.src]));
    RecordModeledCounter("nic.ingress_bytes", chunk.dst, t,
                         static_cast<int64_t>(nic_in_bytes_[chunk.dst]));
  }
  if (params_.egress_policy == EgressSchedPolicy::kDrr) {
    // Wake the schedulers when the NIC pair frees — even for a chunk the
    // fault model ultimately lost, since it occupied the wire until t.
    PushEvent(t, Event::kTransferDone, chunk_index, chunk.src);
  }

  if (!delivered) {
    lost_link_ = true;
    LinkLoss loss;
    loss.src = chunk.src;
    loss.dst = chunk.dst;
    loss.frames = 1;
    failure_.lost_links.push_back(loss);
    failure_.retry_rounds =
        std::max(failure_.retry_rounds, params_.fault_policy->max_retries);
    return;
  }
  PushEvent(t, Event::kChunkArrive, chunk_index, chunk.dst);
}

Status PipelinedFabric::Run() {
  TJ_CHECK(!ran_) << "Run called twice";
  ran_ = true;
  while (!events_.empty() && first_error_.ok()) {
    const Event event = events_.top();
    events_.pop();
    makespan_seconds_ = std::max(makespan_seconds_, event.time);
    switch (event.kind) {
      case Event::kTaskReady: {
        const uint64_t index = event.payload;
        task_timing_[index].ready = event.time;
        if (dead_[event.node]) break;  // Fail-stopped: the task never runs.
        runnable_[event.node].push_back(index);
        TryStartTask(event.node, event.time);
        break;
      }
      case Event::kTaskFinish: {
        FinishTask(event.node, event.time);
        TryStartTask(event.node, event.time);
        break;
      }
      case Event::kTransferDone: {
        // kDrr: the transfer's NIC pair is free. The source's egress picks
        // its next chunk, then senders parked toward the freed ingress get
        // a chance (in node order — deterministic).
        const Chunk& chunk = chunks_[event.payload];
        RunEgressScheduler(chunk.src, event.time);
        const uint32_t n = params_.num_nodes;
        for (uint32_t m = 0; m < n; ++m) {
          if (m == chunk.src) continue;
          if (!egress_queues_[static_cast<size_t>(m) * n + chunk.dst]
                   .chunks.empty()) {
            RunEgressScheduler(m, event.time);
          }
        }
        break;
      }
      case Event::kChunkArrive: {
        const uint64_t chunk_index = event.payload;
        const Chunk& chunk = chunks_[chunk_index];
        if (dead_[chunk.dst]) {
          // The wire delivered it, but nobody is home: hand the credit
          // back (and drain the link's blocked queue) so surviving
          // streams on the link keep flowing.
          if (chunk.src != chunk.dst && chunk_credit_[chunk_index] > 0) {
            ReturnCredit(chunk.src, chunk.dst, chunk_credit_[chunk_index],
                         event.time);
          }
          break;
        }
        const auto& handler = handlers_[static_cast<int>(chunk.type)];
        TJ_CHECK(handler.has_value())
            << "no handler for " << MessageTypeName(chunk.type);
        TaskRecord task;
        task.node = chunk.dst;
        task.stage = handler->first;
        task.label = std::string(stages_[handler->first].name) + "." +
                     MessageTypeName(chunk.type);
        task.trace_args = {
            {"src", static_cast<int64_t>(chunk.src)},
            {"watermark", static_cast<int64_t>(chunk.watermark)},
            {"eos", chunk.eos ? 1 : 0},
            {"bytes", static_cast<int64_t>(chunk.data.size())}};
        if (chunk.src != chunk.dst) {
          task.returns_credit = true;
          task.credit_src = chunk.src;
          task.credit_dst = chunk.dst;
          task.credit_bytes = chunk_credit_[chunk_index];
        }
        task.handler_chunk = static_cast<int64_t>(chunk_index);
        task.fn = [this, type = static_cast<int>(chunk.type), chunk_index]() {
          // The handler may SendChunk, growing chunks_ and invalidating
          // references into it — hand it a moved-out local copy instead.
          Chunk local = std::move(chunks_[chunk_index]);
          return (handlers_[type]->second)(local);
        };
        TaskTiming timing;
        timing.node = chunk.dst;
        timing.stage = task.stage;
        timing.ready = event.time;
        timing.parent_chunk = static_cast<int64_t>(chunk_index);
        tasks_.push_back(std::move(task));
        task_timing_.push_back(timing);
        runnable_[chunk.dst].push_back(tasks_.size() - 1);
        TryStartTask(chunk.dst, event.time);
        break;
      }
    }
  }

  // Finalize per-stage maxima now that accounting is complete.
  for (uint32_t s = 0; s < stages_.size(); ++s) {
    StageStats& stage = stages_[s];
    stage.max_node_cpu_seconds = 0;
    stage.max_node_bytes = 0;
    for (uint32_t node = 0; node < params_.num_nodes; ++node) {
      stage.max_node_cpu_seconds =
          std::max(stage.max_node_cpu_seconds, stage_node_cpu_[s][node]);
      stage.max_node_bytes =
          std::max(stage.max_node_bytes,
                   std::max(stage_node_in_[s][node], stage_node_out_[s][node]));
    }
  }

  if (Tracer::enabled()) {
    TraceEvent makespan_event;
    makespan_event.name = "pipeline.makespan_us";
    makespan_event.category = "mb";
    makespan_event.phase = 'C';
    makespan_event.t_start_us = ToMicros(makespan_seconds_);
    makespan_event.value = ToMicros(makespan_seconds_);
    Tracer::Global().Record(makespan_event);
    TraceEvent barrier_event;
    barrier_event.name = "pipeline.barrier_us";
    barrier_event.category = "mb";
    barrier_event.phase = 'C';
    barrier_event.t_start_us = ToMicros(makespan_seconds_);
    barrier_event.value = ToMicros(barrier_makespan_seconds());
    Tracer::Global().Record(barrier_event);
  }

  if (!first_error_.ok()) return first_error_;
  if (lost_link_) {
    const LinkLoss& loss = failure_.lost_links.front();
    return Status::DataLoss(
        "pipelined link " + std::to_string(loss.src) + "->" +
        std::to_string(loss.dst) + " lost a chunk after " +
        std::to_string(params_.fault_policy->max_retries) + " retries");
  }
  return Status::OK();
}

double PipelinedFabric::barrier_makespan_seconds() const {
  double total = 0;
  for (uint32_t s = 0; s < stages_.size(); ++s) {
    double max_cpu = 0;
    uint64_t max_nic = 0;
    for (uint32_t node = 0; node < params_.num_nodes; ++node) {
      max_cpu = std::max(max_cpu, stage_node_cpu_[s][node]);
      max_nic = std::max(max_nic, std::max(stage_node_in_[s][node],
                                           stage_node_out_[s][node]));
    }
    total += max_cpu + params_.cost.TransferSeconds(max_nic);
  }
  return total;
}

ReliabilityStats PipelinedFabric::reliability() const {
  ReliabilityStats stats;
  stats.faults = fault_counters_;
  stats.retransmitted_frames = retransmitted_frames_;
  stats.nack_messages = nack_messages_;
  return stats;
}

}  // namespace tj
