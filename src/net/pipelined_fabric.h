// Event-driven simulated cluster fabric with modeled time.
//
// The barrier fabric (net/fabric.h) runs the paper's de-pipelined
// execution: every phase finishes its CPU work everywhere before any
// transfer completes, and transfers finish everywhere before the next
// phase starts. This fabric models the pipelined implementation the paper
// sketches in Section 5: work is a set of tasks on per-node serial CPUs,
// transfers stream between them as micro-batch chunks, and the end-to-end
// makespan is the critical path through the resulting schedule — CPU and
// network overlap wherever the dataflow allows.
//
// Time here is *modeled*, never measured: a task costs
// charged_bytes / cpu_bandwidth seconds, a transfer costs
// wire_bytes / net_bandwidth seconds (PipelineCostModel), so the makespan
// is a deterministic function of the inputs and is exactly reproducible.
// Every node has one serial CPU (FIFO runnable queue), one egress NIC and
// one ingress NIC; a transfer holds both its source's egress and its
// destination's ingress for its whole duration, and src == dst sends are
// local copies that skip the NICs entirely.
//
// Flow control is credit-based per directed link: each link's in-flight
// window is max(chunk_bytes, inbox_budget_bytes / num_nodes) payload
// bytes; a chunk's credit is returned only when the receiver's handler
// task *completes*, so the window bounds receiver inbox memory (stashed
// chunks included). Senders never block — a chunk without credit waits in
// the link's FIFO while the sending CPU moves on (transmission is modeled
// as offloaded). Zero-byte chunks (pure EOS markers) never need credit, so
// stream termination cannot deadlock.
//
// Once granted, a chunk competes for the source egress NIC under the
// configured EgressSchedPolicy: the original single-FIFO reservation
// (kFifo) or per-destination queues drained by deficit round-robin (kDrr),
// which keeps a chunk bound for a congested destination from holding the
// NIC hostage for transfers to idle links. The policy changes modeled
// timing only — ledgers, checksums and per-stream order are identical.
//
// Fault mode mirrors the barrier fabric's semantics at chunk granularity:
// chunks are framed (payload + kFrameHeaderBytes on the wire), a seeded
// deterministic RNG draws drop/corrupt/duplicate/reorder per transmission,
// lost or corrupt frames retry inline up to max_retries (occupying the NICs
// and the retransmit ledger), an exhausted budget fails the run with
// DataLoss, crash_node fail-stops from time zero, and slow_node starts its
// CPU late by slowdown_seconds. With no active policy the wire path is
// pristine and the traffic matrix is byte-identical to the barrier run.
#ifndef TJ_NET_PIPELINED_FABRIC_H_
#define TJ_NET_PIPELINED_FABRIC_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/failure.h"
#include "net/fault_injector.h"
#include "net/message.h"
#include "net/time_model.h"
#include "net/traffic.h"

namespace tj {

class Counter;
class Histogram;

/// How a node's egress NIC picks the next credit-granted chunk to transmit.
///
/// kFifo reserves the NIC pair eagerly in credit-grant order: a chunk
/// headed to a busy destination holds the egress (idle) until that ingress
/// frees, delaying every later chunk — including chunks for idle links.
/// This is the original single-FIFO behavior, kept selectable for A/B runs.
///
/// kDrr parks granted chunks in per-destination egress queues and assigns
/// the NIC work-conservingly when it is actually free: deficit round-robin
/// over the backlogged destination queues. Each top-up round adds
/// `drr_quantum_bytes` of eligibility to every backlogged queue (in
/// destination order), queues whose destination ingress is busy are skipped,
/// and ties among eligible queue fronts break oldest-grant-first — so with
/// a single destination, or an effectively infinite quantum and no ingress
/// contention, DRR reproduces FIFO timing event for event.
enum class EgressSchedPolicy { kFifo = 0, kDrr };

/// One micro-batch: a bounded slice of a typed (src, dst) stream.
/// `watermark` is the stream's progress marker (for key-ordered streams,
/// the last key in the chunk); `eos` marks the stream's final chunk (which
/// may carry zero payload bytes).
struct Chunk {
  uint32_t src = 0;
  uint32_t dst = 0;
  MessageType type = MessageType::kTrackR;
  ByteBuffer data;
  bool eos = false;
  uint64_t watermark = 0;
};

class PipelinedFabric {
 public:
  struct Params {
    uint32_t num_nodes = 1;
    PipelineCostModel cost;
    /// Target chunk payload size (drivers slice streams at entry
    /// boundaries around this many bytes).
    uint64_t chunk_bytes = 1 << 12;
    /// Per-node inbox budget enforced by the per-link credit windows.
    uint64_t inbox_budget_bytes = 1 << 15;
    /// Optional fault policy (not owned); nullptr or inactive keeps the
    /// pristine byte-identical wire path.
    const FaultPolicy* fault_policy = nullptr;
    uint64_t fault_seed = 0;
    /// Egress NIC scheduling policy. Only modeled *timing* depends on it:
    /// traffic matrices, checksums and per-stream delivery order are
    /// byte-identical across policies by construction.
    EgressSchedPolicy egress_policy = EgressSchedPolicy::kFifo;
    /// DRR byte quantum added per backlogged destination queue per top-up
    /// round (payload bytes). 0 means one chunk_bytes. Ignored under kFifo.
    uint64_t drr_quantum_bytes = 0;
  };

  using Task = std::function<Status()>;
  using ChunkHandler = std::function<Status(const Chunk&)>;
  /// Extra key/value pairs exported into a task span's trace args.
  using TraceArgs = std::vector<std::pair<std::string, int64_t>>;

  explicit PipelinedFabric(const Params& params);

  uint32_t num_nodes() const { return params_.num_nodes; }
  const Params& params() const { return params_; }

  /// Registers the handler that runs (as a CPU task at chunk.dst, under
  /// stage `stage`) for every arriving chunk of `type`. One handler per
  /// type; register before Run().
  void OnChunk(MessageType type, const char* stage, ChunkHandler handler);

  /// Schedules `fn` on `node`'s serial CPU under stage `stage`. Callable
  /// during setup (released at time zero) or from inside a running task
  /// (released when the posting task finishes). `label` names the task's
  /// trace span; `trace_args` are exported with it.
  void Post(uint32_t node, const char* stage, std::string label, Task fn,
            TraceArgs trace_args = {});

  /// Queues one chunk from inside a running task at `src`. The chunk
  /// leaves the node when the task finishes; transfer start additionally
  /// waits for link credit and for both NICs. Sends on one (src, dst,
  /// type) stream arrive in send order.
  void SendChunk(uint32_t src, uint32_t dst, MessageType type,
                 ByteBuffer data, bool eos, uint64_t watermark = 0);

  /// Charges modeled CPU work (bytes touched) to the currently running
  /// task. The task's duration is total_charged / cpu_bandwidth.
  void ChargeCpuBytes(uint64_t bytes);

  /// Drains the event loop. Returns the first task error, or DataLoss when
  /// a link exhausted its retry budget (see failure()). A crashed node
  /// does not fail Run() by itself — its streams simply never terminate,
  /// which the driver detects as missing EOS.
  Status Run();

  /// Modeled end-to-end seconds: the time the last event completed.
  double makespan_seconds() const { return makespan_seconds_; }

  /// Barrier-equivalent reference computed from this run's own per-stage
  /// accounting: sum over stages of (max-node CPU seconds + busiest-NIC
  /// transfer seconds). This is what the same work would cost if every
  /// stage were separated by global barriers — the de-pipelined number the
  /// makespan is gated against.
  double barrier_makespan_seconds() const;

  const TrafficMatrix& traffic() const { return traffic_; }
  ReliabilityStats reliability() const;
  const FailureReport& failure() const { return failure_; }
  bool node_dead(uint32_t node) const { return dead_[node]; }
  /// Times a chunk found its link without credit and had to queue.
  uint64_t credit_stall_events() const { return credit_stall_events_; }

  /// Per-stage accounting (stages in first-use order).
  struct StageStats {
    std::string name;
    /// Modeled CPU seconds, summed over nodes / busiest node.
    double cpu_seconds_total = 0;
    double max_node_cpu_seconds = 0;
    /// First-transmission bytes sent by tasks of this stage.
    uint64_t network_bytes = 0;
    uint64_t local_bytes = 0;
    /// max over nodes of max(ingress, egress) goodput in this stage.
    uint64_t max_node_bytes = 0;
    std::array<uint64_t, kNumMessageTypes> network_bytes_by_type{};
    std::array<uint64_t, kNumMessageTypes> local_bytes_by_type{};
  };
  const std::vector<StageStats>& stage_stats() const { return stages_; }

  /// Pre-registers a stage so stage_stats() lists it in declaration order
  /// even when its first task only runs mid-simulation.
  void DeclareStage(const char* stage) { StageIndex(stage); }

  /// Passive per-task timing record (always recorded; obs/blame.h walks
  /// these backward to attribute the makespan). Times are modeled seconds;
  /// -1 marks "never happened" (a task posted to a crashed node is created
  /// but never released, so it never gets start/finish times).
  struct TaskTiming {
    uint32_t node = 0;
    uint32_t stage = 0;
    double ready = -1;   ///< Entered the node's runnable queue.
    double start = -1;   ///< Began executing on the serial CPU.
    double finish = -1;  ///< Left the CPU; [ready, start) is cpu-queue wait.
    /// Release cause: the task whose finish posted this one, or the chunk
    /// whose arrival spawned this handler. Both -1 for setup posts, which
    /// are released at time zero (a straggler's late CPU shows up as
    /// cpu-queue wait on its first task).
    int64_t parent_task = -1;
    int64_t parent_chunk = -1;
  };

  /// Passive per-chunk timing record: exclusive, non-overlapping boundaries
  /// of the chunk's life between its sender's finish and its arrival.
  ///   [admit, head)              blocked behind earlier chunks in the link
  ///                              FIFO (head-of-line)
  ///   [head, grant)              at the FIFO head, credit window exhausted
  ///   [grant, egress_clear)      waiting for the source egress NIC
  ///   [egress_clear, wire_start) waiting for the destination ingress NIC
  ///   [wire_start, arrival)      on the wire (fault retries included)
  /// Local (src == dst) chunks arrive at admit and skip every wire segment.
  /// Under kDrr the NIC wait [grant, wire_start) is instead described
  /// piecewise by `egress_marks` (see below); egress_clear == wire_start.
  struct ChunkTiming {
    uint32_t src = 0;
    uint32_t dst = 0;
    uint32_t stage = 0;  ///< Sending task's stage.
    MessageType type = MessageType::kTrackR;
    uint64_t bytes = 0;  ///< Payload size at send time.
    double admit = -1;         ///< Sender task finished; chunk hit the link.
    double head = -1;          ///< Became the link FIFO's front.
    double grant = -1;         ///< Credit granted; eligible for the NICs.
    double egress_clear = -1;  ///< Source egress NIC free.
    double wire_start = -1;    ///< Destination ingress NIC also free.
    double arrival = -1;       ///< Delivered (handler release time).
    int64_t sender_task = -1;  ///< Task whose finish admitted the chunk.
    bool local = false;
    bool delivered = false;
    /// The egress wait [grant, egress_clear) was spent behind a transfer to
    /// a *different* destination: head-of-line blocking at the egress NIC.
    /// (kFifo only; kDrr classifies the wait through `egress_marks`.)
    bool egress_hol = false;
    bool stalled = false;  ///< Entered the link's blocked FIFO.

    /// What a chunk parked in a per-destination egress queue is waiting on.
    enum class EgressWait : uint8_t {
      kQueue = 0,  ///< Behind same-destination chunks / transfer.
      kDeficit,    ///< Quantum cursor: the destination's deficit too small.
      kHol,        ///< NIC busy with a different destination's transfer.
      kIngress,    ///< NIC assignable but the destination ingress is busy.
    };
    /// kDrr only: piecewise classification of [grant, wire_start). A
    /// (time, state) mark is appended at every scheduler decision that
    /// changed this chunk's blocking cause; marks are strictly increasing
    /// in time, the first mark sits exactly at `grant`, and each mark's
    /// state holds until the next mark (the last until wire_start) — so
    /// the segments telescope for blame. Empty under kFifo.
    std::vector<std::pair<double, EgressWait>> egress_marks;
  };

  const std::vector<TaskTiming>& task_timings() const { return task_timing_; }
  const std::vector<ChunkTiming>& chunk_timings() const {
    return chunk_timing_;
  }
  const std::string& stage_name(uint32_t stage) const {
    return stages_[stage].name;
  }
  const std::string& task_label(uint64_t task) const {
    return tasks_[task].label;
  }

 private:
  struct TaskRecord {
    uint32_t node = 0;
    uint32_t stage = 0;
    std::string label;
    Task fn;
    TraceArgs trace_args;
    /// Credit to return (and blocked queue to drain) when this task —
    /// a network chunk's handler — completes.
    bool returns_credit = false;
    uint32_t credit_src = 0;
    uint32_t credit_dst = 0;
    uint64_t credit_bytes = 0;
    /// Index of the chunk this (handler) task consumes, -1 for plain tasks;
    /// its payload is released once the handler completes.
    int64_t handler_chunk = -1;
  };

  struct Event {
    double time = 0;
    uint64_t seq = 0;
    enum Kind {
      kTaskReady,
      kTaskFinish,
      kChunkArrive,
      /// kDrr only: a transfer released its NIC pair; rerun the source's
      /// egress scheduler and wake senders queued toward the freed ingress.
      kTransferDone,
    } kind = kTaskReady;
    /// kTaskReady payload (index into tasks_), kChunkArrive/kTransferDone
    /// payload (index into chunks_), kTaskFinish target node.
    uint64_t payload = 0;
    uint32_t node = 0;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Link {
    uint64_t credit = 0;
    /// Chunks waiting for credit: (chunk index, ready time).
    std::deque<std::pair<uint64_t, double>> blocked;
    /// Payload bytes currently parked in `blocked` (traced as the
    /// flow.queued.d<dst> counter track).
    uint64_t queued_bytes = 0;
    /// When this link's NIC pair is next free is tracked per node, but the
    /// link keeps its own FIFO release cursor so blocked chunks keep order.
  };

  uint32_t StageIndex(const char* stage);
  void PushEvent(double time, Event::Kind kind, uint64_t payload,
                 uint32_t node);
  /// Starts the next runnable task on `node` if its CPU is idle.
  void TryStartTask(uint32_t node, double now);
  /// Applies a finished task's effects: releases buffered posts/sends,
  /// returns handler credit, drains the link's blocked queue.
  void FinishTask(uint32_t node, double now);
  /// Ledger effects of a credit grant: first-transmission traffic and
  /// stage accounting, timing.grant, the credit-stall histogram. Shared by
  /// both egress policies so the byte ledgers are identical by construction.
  void AccountGrant(uint64_t chunk_index, double ready);
  /// kFifo: eagerly reserves the NIC pair in grant order and transmits.
  void LaunchChunk(uint64_t chunk_index, double ready);
  /// Routes a credit-granted chunk to the configured egress scheduler.
  void DispatchGranted(uint64_t chunk_index, double ready);
  /// kDrr: parks the granted chunk in its per-destination egress queue and
  /// gives the scheduler a chance to assign the NIC.
  void EnqueueEgress(uint64_t chunk_index, double now);
  /// kDrr: while the egress NIC is free, picks the next chunk by deficit
  /// round-robin (top-up rounds in destination order, oldest-grant-first
  /// among eligible queue fronts, ingress-busy destinations skipped) and
  /// transmits it. Refreshes the waiting fronts' blame marks on exit.
  void RunEgressScheduler(uint32_t node, double now);
  /// Appends (or same-timestamp-overwrites) a wait-state mark.
  void MarkEgressWait(uint64_t chunk_index, double now,
                      ChunkTiming::EgressWait state);
  /// Re-derives every queue front's wait state after a scheduler pass.
  /// `after_pick` distinguishes "lost the pick to the quantum cursor"
  /// (drr_wait) from plain NIC occupancy.
  void RefreshFrontMarks(uint32_t node, double now, bool after_pick);
  /// Puts a chunk on the wire at `wire_start`: models faults, occupies the
  /// NIC pair, schedules the arrival (and, under kDrr, the NIC release).
  void StartTransfer(uint64_t chunk_index, double wire_start);
  uint64_t DrrQuantumBytes() const;
  /// Grants credit and dispatches, or queues on the link's blocked FIFO.
  void AdmitChunk(uint64_t chunk_index, double ready);
  uint64_t LinkWindowBytes() const;
  uint64_t CreditNeed(const Chunk& chunk) const;
  /// Hands `bytes` of credit back to the src->dst link and drains its
  /// blocked FIFO in order as far as the restored window allows.
  void ReturnCredit(uint32_t src, uint32_t dst, uint64_t bytes, double now);
  void RecordCreditCounter(uint32_t src, uint32_t dst, double now);
  /// Emits a 'C' counter sample stamped with modeled (not wall) time.
  void RecordModeledCounter(std::string name, uint32_t node, double now,
                            int64_t value);
  void RecordQueuedCounter(uint32_t src, uint32_t dst, double now);
  void RecordEgressQueuedCounter(uint32_t src, uint32_t dst, double now);
  void RecordDeficitCounter(uint32_t src, uint32_t dst, double now);
  bool fault_active() const {
    return params_.fault_policy != nullptr && params_.fault_policy->active();
  }

  Params params_;
  TrafficMatrix traffic_;
  std::vector<StageStats> stages_;
  std::vector<std::vector<double>> stage_node_cpu_;      // [stage][node]
  std::vector<std::vector<uint64_t>> stage_node_in_;     // [stage][node]
  std::vector<std::vector<uint64_t>> stage_node_out_;    // [stage][node]

  std::array<std::optional<std::pair<uint32_t, ChunkHandler>>,
             kNumMessageTypes>
      handlers_;  // stage index + handler, per type.

  // Event loop state.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t next_event_seq_ = 0;
  std::vector<TaskRecord> tasks_;
  std::vector<Chunk> chunks_;
  std::vector<uint32_t> chunk_stage_;   ///< Sending task's stage, per chunk.
  std::vector<uint64_t> chunk_credit_;  ///< Link credit held, per chunk.
  std::vector<std::deque<uint64_t>> runnable_;  ///< Task indices per node.
  std::vector<bool> cpu_busy_;
  std::vector<double> cpu_free_;
  std::vector<double> egress_free_;
  std::vector<double> ingress_free_;
  /// Destination of the transfer currently (or last) holding each node's
  /// egress NIC — classifies a later chunk's egress wait as head-of-line
  /// (different destination) vs same-destination queueing.
  std::vector<uint32_t> egress_occupant_dst_;
  std::vector<Link> links_;  ///< [src * n + dst].
  /// kDrr per-destination egress queues, [src * n + dst]: credit-granted
  /// chunks waiting for the source NIC, FIFO per destination.
  struct EgressQueue {
    std::deque<uint64_t> chunks;  ///< Chunk indices, grant order.
    uint64_t deficit = 0;         ///< DRR eligibility (payload bytes).
    uint64_t queued_bytes = 0;    ///< Payload bytes parked here (traced).
  };
  std::vector<EgressQueue> egress_queues_;  ///< Empty under kFifo.
  std::vector<bool> dead_;
  std::vector<TaskTiming> task_timing_;    ///< Aligned with tasks_.
  std::vector<ChunkTiming> chunk_timing_;  ///< Aligned with chunks_.
  std::vector<uint64_t> nic_out_bytes_;    ///< Cumulative wire bytes, per node.
  std::vector<uint64_t> nic_in_bytes_;

  // Credit-stall metrics (MetricsRegistry-owned; cached at construction).
  Histogram* stall_hist_ = nullptr;
  Counter* stall_hol_total_ = nullptr;
  Counter* stall_exhausted_total_ = nullptr;

  // The currently executing task (set while its fn runs) and the effects
  // it buffers: posts and sends are released at the task's finish time.
  bool in_task_ = false;
  uint32_t running_node_ = 0;
  uint64_t running_task_ = 0;
  double running_start_ = 0;
  uint64_t running_charged_bytes_ = 0;
  std::vector<uint64_t> buffered_posts_;   ///< Task indices.
  std::vector<uint64_t> buffered_sends_;   ///< Chunk indices.
  /// Finish effects queued for the in-flight task of each node:
  /// (task index, buffered posts, buffered sends).
  struct InFlight {
    uint64_t task = 0;
    double start = 0;
    double finish = 0;
    std::vector<uint64_t> posts;
    std::vector<uint64_t> sends;
  };
  std::vector<std::optional<InFlight>> in_flight_;

  bool ran_ = false;
  double makespan_seconds_ = 0;
  Status first_error_;
  FailureReport failure_;
  bool lost_link_ = false;
  uint64_t credit_stall_events_ = 0;

  // Fault state.
  std::optional<Rng> fault_rng_;
  FaultCounters fault_counters_;
  uint64_t retransmitted_frames_ = 0;
  uint64_t nack_messages_ = 0;
};

}  // namespace tj

#endif  // TJ_NET_PIPELINED_FABRIC_H_
