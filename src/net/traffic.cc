#include "net/traffic.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace tj {

void TrafficMatrix::Reset(uint32_t num_nodes) {
  num_nodes_ = num_nodes;
  cells_.assign(
      static_cast<uint64_t>(num_nodes) * num_nodes * kNumMessageTypes, 0);
  retrans_cells_.assign(
      static_cast<uint64_t>(num_nodes) * num_nodes * kNumMessageTypes, 0);
  recovery_cells_.assign(
      static_cast<uint64_t>(num_nodes) * num_nodes * kNumMessageTypes, 0);
}

void TrafficMatrix::Add(uint32_t src, uint32_t dst, MessageType type,
                        uint64_t bytes) {
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  Cell(src, dst, static_cast<int>(type)) += bytes;
}

void TrafficMatrix::AddRetransmit(uint32_t src, uint32_t dst, MessageType type,
                                  uint64_t bytes) {
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  RetransCell(src, dst, static_cast<int>(type)) += bytes;
}

void TrafficMatrix::AddRecovery(uint32_t src, uint32_t dst, MessageType type,
                                uint64_t bytes) {
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  RecoveryCell(src, dst, static_cast<int>(type)) += bytes;
}

uint64_t TrafficMatrix::NetworkBytes(MessageType type) const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    for (uint32_t d = 0; d < num_nodes_; ++d) {
      if (s != d) total += Cell(s, d, static_cast<int>(type));
    }
  }
  return total;
}

uint64_t TrafficMatrix::NetworkBytes(TrafficClass cls) const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    if (ClassOf(static_cast<MessageType>(t)) == cls) {
      total += NetworkBytes(static_cast<MessageType>(t));
    }
  }
  return total;
}

uint64_t TrafficMatrix::TotalNetworkBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    total += NetworkBytes(static_cast<MessageType>(t));
  }
  return total;
}

uint64_t TrafficMatrix::LocalBytes(MessageType type) const {
  uint64_t total = 0;
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    total += Cell(n, n, static_cast<int>(type));
  }
  return total;
}

uint64_t TrafficMatrix::LocalBytes(TrafficClass cls) const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    if (ClassOf(static_cast<MessageType>(t)) == cls) {
      total += LocalBytes(static_cast<MessageType>(t));
    }
  }
  return total;
}

uint64_t TrafficMatrix::TotalLocalBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    total += LocalBytes(static_cast<MessageType>(t));
  }
  return total;
}

uint64_t TrafficMatrix::EgressBytes(uint32_t node) const {
  uint64_t total = 0;
  for (uint32_t d = 0; d < num_nodes_; ++d) {
    if (d == node) continue;
    for (int t = 0; t < kNumMessageTypes; ++t) total += Cell(node, d, t);
  }
  return total;
}

uint64_t TrafficMatrix::IngressBytes(uint32_t node) const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    if (s == node) continue;
    for (int t = 0; t < kNumMessageTypes; ++t) total += Cell(s, node, t);
  }
  return total;
}

uint64_t TrafficMatrix::LinkBytes(uint32_t src, uint32_t dst) const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) total += Cell(src, dst, t);
  return total;
}

uint64_t TrafficMatrix::MaxLinkBytes() const {
  uint64_t best = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    for (uint32_t d = 0; d < num_nodes_; ++d) {
      if (s != d) best = std::max(best, LinkBytes(s, d));
    }
  }
  return best;
}

uint64_t TrafficMatrix::MaxNodeBytes() const {
  uint64_t best = 0;
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    best = std::max({best, EgressBytes(n), IngressBytes(n)});
  }
  return best;
}

uint64_t TrafficMatrix::RetransmitBytes(MessageType type) const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    for (uint32_t d = 0; d < num_nodes_; ++d) {
      if (s != d) total += RetransCell(s, d, static_cast<int>(type));
    }
  }
  return total;
}

uint64_t TrafficMatrix::RetransmitBytes(TrafficClass cls) const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    if (ClassOf(static_cast<MessageType>(t)) == cls) {
      total += RetransmitBytes(static_cast<MessageType>(t));
    }
  }
  return total;
}

uint64_t TrafficMatrix::TotalRetransmitBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    total += RetransmitBytes(static_cast<MessageType>(t));
  }
  return total;
}

uint64_t TrafficMatrix::RecoveryBytes(MessageType type) const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    for (uint32_t d = 0; d < num_nodes_; ++d) {
      if (s != d) total += RecoveryCell(s, d, static_cast<int>(type));
    }
  }
  return total;
}

uint64_t TrafficMatrix::RecoveryBytes(TrafficClass cls) const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    if (ClassOf(static_cast<MessageType>(t)) == cls) {
      total += RecoveryBytes(static_cast<MessageType>(t));
    }
  }
  return total;
}

uint64_t TrafficMatrix::TotalRecoveryBytes() const {
  uint64_t total = 0;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    total += RecoveryBytes(static_cast<MessageType>(t));
  }
  return total;
}

void TrafficMatrix::Merge(const TrafficMatrix& other) {
  TJ_CHECK_EQ(num_nodes_, other.num_nodes_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  for (size_t i = 0; i < retrans_cells_.size(); ++i) {
    retrans_cells_[i] += other.retrans_cells_[i];
  }
  for (size_t i = 0; i < recovery_cells_.size(); ++i) {
    recovery_cells_[i] += other.recovery_cells_[i];
  }
}

void TrafficMatrix::AccumulateRecovery(const TrafficMatrix& other,
                                       const std::vector<uint32_t>& node_map) {
  TJ_CHECK_EQ(node_map.size(), static_cast<size_t>(other.num_nodes_));
  for (uint32_t s = 0; s < other.num_nodes_; ++s) {
    uint32_t ms = node_map[s];
    TJ_CHECK_LT(ms, num_nodes_);
    for (uint32_t d = 0; d < other.num_nodes_; ++d) {
      uint32_t md = node_map[d];
      TJ_CHECK_LT(md, num_nodes_);
      for (int t = 0; t < kNumMessageTypes; ++t) {
        uint64_t bytes = other.Cell(s, d, t) + other.RetransCell(s, d, t) +
                         other.RecoveryCell(s, d, t);
        if (bytes > 0) RecoveryCell(ms, md, t) += bytes;
      }
    }
  }
}

TrafficMatrix TrafficMatrix::MappedTo(
    uint32_t num_nodes, const std::vector<uint32_t>& node_map) const {
  TJ_CHECK_EQ(node_map.size(), static_cast<size_t>(num_nodes_));
  TrafficMatrix out(num_nodes);
  for (uint32_t s = 0; s < num_nodes_; ++s) {
    uint32_t ms = node_map[s];
    TJ_CHECK_LT(ms, num_nodes);
    for (uint32_t d = 0; d < num_nodes_; ++d) {
      uint32_t md = node_map[d];
      TJ_CHECK_LT(md, num_nodes);
      for (int t = 0; t < kNumMessageTypes; ++t) {
        out.Cell(ms, md, t) += Cell(s, d, t);
        out.RetransCell(ms, md, t) += RetransCell(s, d, t);
        out.RecoveryCell(ms, md, t) += RecoveryCell(s, d, t);
      }
    }
  }
  return out;
}

std::string TrafficMatrix::Report() const {
  std::string out;
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    auto cls = static_cast<TrafficClass>(c);
    uint64_t bytes = NetworkBytes(cls);
    if (bytes == 0) continue;
    out += "  ";
    out += TrafficClassName(cls);
    out += ": ";
    out += FormatBytes(bytes);
    out += "\n";
  }
  out += "  total network: " + FormatBytes(TotalNetworkBytes()) + "\n";
  if (uint64_t retrans = TotalRetransmitBytes(); retrans > 0) {
    out += "  retransmitted: " + FormatBytes(retrans) + "\n";
  }
  if (uint64_t recovery = TotalRecoveryBytes(); recovery > 0) {
    out += "  recovery (failed attempts): " + FormatBytes(recovery) + "\n";
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace tj
