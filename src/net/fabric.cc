#include "net/fabric.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tj {

Fabric::Fabric(uint32_t num_nodes)
    : num_nodes_(num_nodes),
      traffic_(num_nodes),
      queued_(num_nodes),
      inboxes_(num_nodes),
      seen_ingress_(num_nodes, 0),
      seen_egress_(num_nodes, 0) {
  TJ_CHECK_GT(num_nodes, 0u);
  msg_bytes_hist_ = &MetricsRegistry::Global().histogram("fabric.message_bytes");
  if (Tracer::enabled()) {
    Tracer& tracer = Tracer::Global();
    for (uint32_t node = 0; node < num_nodes_; ++node) {
      tracer.SetProcessLabel(node, "node " + std::to_string(node));
    }
    tracer.SetProcessLabel(num_nodes_, "fabric");
  }
}

void Fabric::SetFaultPolicy(const FaultPolicy& policy, uint64_t seed) {
  TJ_CHECK(!in_phase_) << "SetFaultPolicy inside a phase";
  has_policy_ = true;
  policy_ = policy;
  if (!policy.active()) {
    // Delivery-inert policy (all-zero, or a pure straggler): stay on the
    // pristine unframed path so results and traffic are byte-identical to a
    // fabric with no policy at all. A straggler's slowdown is modeled at
    // the barrier from policy_, which needs no injector.
    injector_.reset();
    frame_pools_.clear();
    return;
  }
  injector_.emplace(policy, seed, num_nodes_);
  sent_log_.assign(num_nodes_, {});
  next_seq_.assign(static_cast<uint64_t>(num_nodes_) * num_nodes_, 0);
  frame_pools_ = std::vector<BufferPool>(num_nodes_);
}

void Fabric::Send(uint32_t src, uint32_t dst, MessageType type,
                  ByteBuffer data) {
  TJ_CHECK(in_phase_) << "Send outside RunPhase";
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  // Cells indexed by src are only written by node src's own phase work, so
  // this is race-free under concurrent phases.
  msg_bytes_hist_->Observe(static_cast<double>(data.size()));
  if (!injector_) {
    traffic_.Add(src, dst, type, data.size());
    queued_[src].push_back(Pending{dst, type, std::move(data)});
    return;
  }
  uint32_t seq = NextSeq(src, dst)++;
  ByteBuffer frame = frame_pools_[src].Acquire(kFrameHeaderBytes + data.size());
  EncodeFrame(type, seq, data, &frame);
  // The first transmission attempt is goodput (framing overhead included);
  // injected extra copies land on the recovery ledger. The sender keeps the
  // pristine frame for retransmission.
  traffic_.Add(src, dst, type, frame.size());
  std::vector<ByteBuffer> copies = injector_->Transmit(src, dst, frame);
  if (copies.size() > 1) {
    traffic_.AddRetransmit(src, dst, type,
                           (copies.size() - 1) * frame.size());
  }
  sent_log_[src].push_back(SentFrame{dst, type, seq, std::move(frame)});
  for (ByteBuffer& copy : copies) {
    queued_[src].push_back(Pending{dst, type, std::move(copy)});
  }
}

void Fabric::SendBytes(uint32_t src, uint32_t dst, MessageType type,
                       uint64_t bytes) {
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  traffic_.Add(src, dst, type, bytes);
}

Status Fabric::RunPhaseReliable(const std::string& name,
                                const std::function<Status(uint32_t)>& fn) {
  TJ_CHECK(!in_phase_) << "nested RunPhase";
  in_phase_ = true;
  const uint64_t phase = phase_index_++;
  std::vector<Status> statuses(num_nodes_);
  auto work = [&](uint32_t node) {
    // A crashed node fail-stops: it does no work and sends nothing.
    if (injector_ && injector_->NodeCrashed(node, phase)) return;
    // Attribute the node's phase work (and any kernel spans it opens) to
    // the node's pid in the trace.
    ScopedTraceNode traced_node(node);
    TraceSpan span("phase", name);
    statuses[node] = fn(node);
  };
  Stopwatch watch;
  if (pool_ != nullptr && num_nodes_ > 1) {
    pool_->ParallelFor(num_nodes_,
                       [&work](size_t node) { work(static_cast<uint32_t>(node)); });
  } else {
    for (uint32_t node = 0; node < num_nodes_; ++node) work(node);
  }
  double elapsed = watch.ElapsedSeconds();
  const bool straggling =
      has_policy_ && policy_.models_straggler() &&
      policy_.slow_node < num_nodes_ &&
      !(injector_ && injector_->NodeCrashed(policy_.slow_node, phase));
  if (straggling) {
    // The de-pipelined barrier waits for the slowest node, so a modeled
    // straggler stretches the whole phase — on either wire path.
    elapsed += policy_.slowdown_seconds;
  }
  phase_seconds_.emplace_back(name, elapsed);
  in_phase_ = false;

  // Arm a fresh failure report for this phase; every error path below adds
  // its structured findings before returning through Fail().
  failure_ = FailureReport();
  failure_.phase = name;
  failure_.phase_index = phase;

  auto abandon = [this]() {
    for (auto& q : queued_) q.clear();
    for (auto& log : sent_log_) log.clear();
  };
  for (uint32_t node = 0; node < num_nodes_; ++node) {
    if (!statuses[node].ok()) {
      abandon();
      return Fail(Status(statuses[node].code(),
                         "phase '" + name + "' node " + std::to_string(node) +
                             ": " + statuses[node].message()));
    }
  }
  if (injector_ && injector_->policy().crash_node < num_nodes_ &&
      injector_->NodeCrashed(injector_->policy().crash_node, phase)) {
    // Fail-stop is unrecoverable in this fabric: surface a precise error at
    // the first barrier at or after the crash instead of letting the query
    // continue on a silently partial dataset. Recovery (if any) re-plans
    // the query on the surviving nodes with replica failover.
    abandon();
    failure_.dead_nodes.push_back(injector_->policy().crash_node);
    return Fail(Status::DataLoss(
        "node " + std::to_string(injector_->policy().crash_node) +
        " crashed (fail-stop) before completing phase " +
        std::to_string(phase) + " '" + name + "'"));
  }
  if (straggling && phase_deadline_seconds_ > 0 &&
      policy_.slowdown_seconds > phase_deadline_seconds_) {
    // The modeled slowdown alone blows the phase deadline: promote the
    // straggler to suspected-dead. Deterministic — measured wall time never
    // participates, so a given policy either always or never trips this.
    abandon();
    failure_.suspected_nodes.push_back(policy_.slow_node);
    return Fail(Status::DeadlineExceeded(
        "phase '" + name + "': node " + std::to_string(policy_.slow_node) +
        " straggled " + std::to_string(policy_.slowdown_seconds) +
        "s past the " + std::to_string(phase_deadline_seconds_) +
        "s phase deadline; promoted to suspected-dead"));
  }
  if (Status barrier = DeliverBarrier(name); !barrier.ok()) {
    return Fail(std::move(barrier));
  }
  RecordPhaseStats(name, elapsed);
  return Status::OK();
}

Status Fabric::Fail(Status status) {
  if (diag_sink_ != nullptr) {
    diag_sink_->failure = failure_;
    diag_sink_->traffic = traffic_;
    diag_sink_->phase_seconds = phase_seconds_;
  }
  return status;
}

void Fabric::RecordPhaseStats(const std::string& name, double wall_seconds) {
  PhaseStats stats;
  stats.name = name;
  stats.wall_seconds = wall_seconds;
  for (int t = 0; t < kNumMessageTypes; ++t) {
    MessageType type = static_cast<MessageType>(t);
    uint64_t network = traffic_.NetworkBytes(type);
    uint64_t local = traffic_.LocalBytes(type);
    uint64_t retransmit = traffic_.RetransmitBytes(type);
    stats.network_bytes[t] = network - seen_network_[t];
    stats.local_bytes[t] = local - seen_local_[t];
    stats.retransmit_bytes[t] = retransmit - seen_retransmit_[t];
    seen_network_[t] = network;
    seen_local_[t] = local;
    seen_retransmit_[t] = retransmit;
  }
  for (uint32_t node = 0; node < num_nodes_; ++node) {
    uint64_t ingress = traffic_.IngressBytes(node);
    uint64_t egress = traffic_.EgressBytes(node);
    stats.max_node_bytes = std::max(
        {stats.max_node_bytes, ingress - seen_ingress_[node],
         egress - seen_egress_[node]});
    seen_ingress_[node] = ingress;
    seen_egress_[node] = egress;
  }
  stats.retransmitted_frames =
      retransmitted_frames_ - seen_retransmitted_frames_;
  stats.nack_messages = nack_messages_ - seen_nack_messages_;
  seen_retransmitted_frames_ = retransmitted_frames_;
  seen_nack_messages_ = nack_messages_;
  if (injector_) {
    FaultCounters now = injector_->counters();
    stats.faults.frames_dropped = now.frames_dropped - seen_faults_.frames_dropped;
    stats.faults.frames_corrupted =
        now.frames_corrupted - seen_faults_.frames_corrupted;
    stats.faults.frames_duplicated =
        now.frames_duplicated - seen_faults_.frames_duplicated;
    stats.faults.messages_reordered =
        now.messages_reordered - seen_faults_.messages_reordered;
    seen_faults_ = now;
  }
  phase_stats_.push_back(std::move(stats));
  if (Tracer::enabled()) {
    // Cumulative per-node NIC counters, one sample per barrier: the trace
    // viewer renders these as step functions per node process.
    Tracer& tracer = Tracer::Global();
    for (uint32_t node = 0; node < num_nodes_; ++node) {
      tracer.RecordCounter("nic.ingress_bytes", node,
                           static_cast<int64_t>(traffic_.IngressBytes(node)));
      tracer.RecordCounter("nic.egress_bytes", node,
                           static_cast<int64_t>(traffic_.EgressBytes(node)));
    }
  }
}

void Fabric::RunPhase(const std::string& name,
                      const std::function<void(uint32_t)>& fn) {
  Status status = RunPhaseReliable(name, [&fn](uint32_t node) {
    fn(node);
    return Status::OK();
  });
  TJ_CHECK(status.ok()) << "phase failed: " << status.ToString();
}

Status Fabric::DeliverBarrier(const std::string& name) {
  // The barrier runs outside any node's work; attribute it to the fabric
  // pseudo-process (pid = num_nodes_).
  std::optional<ScopedTraceNode> barrier_node;
  std::optional<TraceSpan> barrier_span;
  if (Tracer::enabled()) {
    barrier_node.emplace(num_nodes_);
    barrier_span.emplace("fabric", "barrier: " + name);
  }
  if (!injector_) {
    // Pristine barrier: deliver, ordered by source node then send order.
    std::vector<size_t> per_dst(num_nodes_, 0);
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      for (const auto& p : queued_[src]) ++per_dst[p.dst];
    }
    for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
      if (per_dst[dst] > 0) {
        inboxes_[dst].reserve(inboxes_[dst].size() + per_dst[dst]);
      }
    }
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      for (auto& p : queued_[src]) {
        inboxes_[p.dst].push_back(Message{src, p.type, std::move(p.data)});
      }
      queued_[src].clear();
    }
    return Status::OK();
  }

  // Reassembly state per (receiver, sender) link: CRC-valid frames tagged
  // with their sequence number, appended in absorb order. Canonicalize()
  // sorts each link by seq and drops duplicate seqs keeping the first
  // absorbed copy — the same dedup-and-recover-send-order semantics the
  // former std::map gave, without a heap node per frame. Seq ascending ==
  // send order, which makes delivery match the pristine barrier exactly
  // when nothing was reordered.
  struct Recv {
    uint32_t seq;
    MessageType type;
    ByteBuffer payload;
  };
  std::vector<std::vector<std::vector<Recv>>> accepted(
      num_nodes_, std::vector<std::vector<Recv>>(num_nodes_));
  // Pre-size each link from the queued wire copies (known counts: S2
  // reserve audit) so absorption never reallocates mid-link.
  for (uint32_t src = 0; src < num_nodes_; ++src) {
    std::vector<size_t> per_dst(num_nodes_, 0);
    for (const auto& p : queued_[src]) ++per_dst[p.dst];
    for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
      if (per_dst[dst] > 0) accepted[dst][src].reserve(per_dst[dst]);
    }
  }
  auto absorb = [&accepted](uint32_t src, uint32_t dst, const ByteBuffer& wire) {
    FrameHeader header;
    ByteBuffer payload;
    if (!DecodeFrame(wire, &header, &payload).ok()) return;  // lost to CRC
    accepted[dst][src].push_back(
        Recv{header.seq, header.type, std::move(payload)});
  };
  auto canonicalize = [this, &accepted]() {
    for (auto& by_src : accepted) {
      for (auto& link : by_src) {
        std::stable_sort(link.begin(), link.end(),
                         [](const Recv& a, const Recv& b) {
                           return a.seq < b.seq;
                         });
        link.erase(std::unique(link.begin(), link.end(),
                               [](const Recv& a, const Recv& b) {
                                 return a.seq == b.seq;
                               }),
                   link.end());
      }
    }
  };
  auto link_has_seq = [](const std::vector<Recv>& link, uint32_t seq) {
    auto it = std::lower_bound(
        link.begin(), link.end(), seq,
        [](const Recv& r, uint32_t s) { return r.seq < s; });
    return it != link.end() && it->seq == seq;
  };
  for (uint32_t src = 0; src < num_nodes_; ++src) {
    for (auto& p : queued_[src]) {
      absorb(src, p.dst, p.data);
      // The wire copy is spent; its capacity feeds src's next frames.
      frame_pools_[src].Recycle(std::move(p.data));
    }
    queued_[src].clear();
  }

  // Bounded nack/retransmit rounds. The *sender* is the source of truth for
  // what must arrive — a receiver alone cannot detect the loss of the
  // trailing frames of a phase. missing = sent log minus accepted.
  const uint32_t max_retries = injector_->policy().max_retries;
  for (uint32_t round = 0;; ++round) {
    // Absorption appended out of order; restore per-link seq order (and
    // dedup) before membership checks — and, on the final round, before
    // delivery below.
    canonicalize();
    std::vector<std::pair<uint32_t, const SentFrame*>> missing;
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      for (const SentFrame& f : sent_log_[src]) {
        if (!link_has_seq(accepted[f.dst][src], f.seq)) {
          missing.emplace_back(src, &f);
        }
      }
    }
    if (missing.empty()) break;
    std::optional<TraceSpan> round_span;
    if (Tracer::enabled()) {
      round_span.emplace("fabric",
                         "retry round " + std::to_string(round) + ": " +
                             std::to_string(missing.size()) + " missing",
                         static_cast<int64_t>(missing.size()));
    }
    if (round >= max_retries) {
      // Retry budget exhausted. Collapse the missing frames into per-link
      // sequence ranges: the structured report feeds recovery, and the
      // Status names the exhausted range and retry count for humans.
      for (const auto& [src, f] : missing) {
        LinkLoss* loss = nullptr;
        for (LinkLoss& l : failure_.lost_links) {
          if (l.src == src && l.dst == f->dst) {
            loss = &l;
            break;
          }
        }
        if (loss == nullptr) {
          failure_.lost_links.push_back(
              LinkLoss{src, f->dst, f->seq, f->seq, 0});
          loss = &failure_.lost_links.back();
        }
        loss->seq_begin = std::min(loss->seq_begin, f->seq);
        loss->seq_end = std::max(loss->seq_end, f->seq);
        ++loss->frames;
      }
      failure_.retry_rounds = max_retries;
      const LinkLoss& first = failure_.lost_links.front();
      Status status = Status::DataLoss(
          "phase '" + name + "': " + std::to_string(missing.size()) +
          " frame(s) on " + std::to_string(failure_.lost_links.size()) +
          " link(s) unrecovered after " + std::to_string(max_retries) +
          " retry rounds (first: link " + std::to_string(first.src) + "->" +
          std::to_string(first.dst) + ", " + std::to_string(first.frames) +
          " frame(s) in seq range [" + std::to_string(first.seq_begin) +
          ".." + std::to_string(first.seq_end) + "])");
      for (auto& log : sent_log_) log.clear();
      return status;
    }
    // One nack per afflicted link (receiver -> sender, control class), then
    // the sender retransmits each nacked frame through the same faulty wire.
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      std::vector<std::vector<const SentFrame*>> nacked(num_nodes_);
      for (const SentFrame& f : sent_log_[src]) {
        if (!link_has_seq(accepted[f.dst][src], f.seq)) {
          nacked[f.dst].push_back(&f);
        }
      }
      for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
        if (nacked[dst].empty()) continue;
        traffic_.AddRetransmit(
            dst, src, MessageType::kAck,
            kFrameHeaderBytes + 4 * nacked[dst].size());
        ++nack_messages_;
        for (const SentFrame* f : nacked[dst]) {
          traffic_.AddRetransmit(src, dst, f->type, f->frame.size());
          ++retransmitted_frames_;
          std::vector<ByteBuffer> copies =
              injector_->Transmit(src, dst, f->frame);
          if (copies.size() > 1) {
            traffic_.AddRetransmit(src, dst, f->type,
                                   (copies.size() - 1) * f->frame.size());
          }
          for (ByteBuffer& copy : copies) {
            absorb(src, dst, copy);
            frame_pools_[src].Recycle(std::move(copy));
          }
        }
      }
    }
  }
  for (uint32_t src = 0; src < num_nodes_; ++src) {
    // The phase is recovered; retire the retained retransmission frames
    // into the sender's pool.
    for (auto& f : sent_log_[src]) frame_pools_[src].Recycle(std::move(f.frame));
    sent_log_[src].clear();
  }

  // Deliver in canonical (source node, sequence) order — each link is
  // seq-sorted by the final canonicalize() — then let the injector swap
  // adjacent messages per inbox to model reordering. Joins must not depend
  // on arrival order within a phase.
  for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
    size_t first_new = inboxes_[dst].size();
    size_t incoming = 0;
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      incoming += accepted[dst][src].size();
    }
    inboxes_[dst].reserve(first_new + incoming);
    for (uint32_t src = 0; src < num_nodes_; ++src) {
      for (Recv& recv : accepted[dst][src]) {
        inboxes_[dst].push_back(
            Message{src, recv.type, std::move(recv.payload)});
      }
    }
    for (size_t i = first_new + 1; i < inboxes_[dst].size(); ++i) {
      if (injector_->ShouldReorder()) {
        std::swap(inboxes_[dst][i - 1], inboxes_[dst][i]);
      }
    }
  }
  return Status::OK();
}

std::vector<Message> Fabric::TakeInbox(uint32_t node) {
  TJ_CHECK_LT(node, num_nodes_);
  std::vector<Message> out = std::move(inboxes_[node]);
  inboxes_[node].clear();
  return out;
}

std::vector<Message> Fabric::TakeInbox(uint32_t node, MessageType type) {
  TJ_CHECK_LT(node, num_nodes_);
  size_t matches = 0;
  for (const auto& m : inboxes_[node]) {
    if (m.type == type) ++matches;
  }
  std::vector<Message> taken;
  std::vector<Message> rest;
  taken.reserve(matches);
  rest.reserve(inboxes_[node].size() - matches);
  for (auto& m : inboxes_[node]) {
    if (m.type == type) {
      taken.push_back(std::move(m));
    } else {
      rest.push_back(std::move(m));
    }
  }
  inboxes_[node] = std::move(rest);
  return taken;
}

ReliabilityStats Fabric::reliability() const {
  ReliabilityStats stats;
  if (injector_) stats.faults = injector_->counters();
  stats.retransmitted_frames = retransmitted_frames_;
  stats.nack_messages = nack_messages_;
  return stats;
}

}  // namespace tj
