#include "net/fabric.h"

#include <algorithm>

#include "common/logging.h"

namespace tj {

Fabric::Fabric(uint32_t num_nodes)
    : num_nodes_(num_nodes),
      traffic_(num_nodes),
      queued_(num_nodes),
      inboxes_(num_nodes) {
  TJ_CHECK_GT(num_nodes, 0u);
}

void Fabric::Send(uint32_t src, uint32_t dst, MessageType type,
                  ByteBuffer data) {
  TJ_CHECK(in_phase_) << "Send outside RunPhase";
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  // Cells indexed by src are only written by node src's own phase work, so
  // this is race-free under concurrent phases.
  traffic_.Add(src, dst, type, data.size());
  queued_[src].push_back(Pending{dst, type, std::move(data)});
}

void Fabric::SendBytes(uint32_t src, uint32_t dst, MessageType type,
                       uint64_t bytes) {
  TJ_CHECK_LT(src, num_nodes_);
  TJ_CHECK_LT(dst, num_nodes_);
  traffic_.Add(src, dst, type, bytes);
}

void Fabric::RunPhase(const std::string& name,
                      const std::function<void(uint32_t)>& fn) {
  TJ_CHECK(!in_phase_) << "nested RunPhase";
  in_phase_ = true;
  Stopwatch watch;
  if (pool_ != nullptr && num_nodes_ > 1) {
    pool_->ParallelFor(num_nodes_, [&fn](size_t node) {
      fn(static_cast<uint32_t>(node));
    });
  } else {
    for (uint32_t node = 0; node < num_nodes_; ++node) fn(node);
  }
  phase_seconds_.emplace_back(name, watch.ElapsedSeconds());
  in_phase_ = false;
  // Barrier: deliver, ordered by source node then send order.
  for (uint32_t src = 0; src < num_nodes_; ++src) {
    for (auto& p : queued_[src]) {
      inboxes_[p.dst].push_back(Message{src, p.type, std::move(p.data)});
    }
    queued_[src].clear();
  }
}

std::vector<Message> Fabric::TakeInbox(uint32_t node) {
  TJ_CHECK_LT(node, num_nodes_);
  std::vector<Message> out = std::move(inboxes_[node]);
  inboxes_[node].clear();
  return out;
}

std::vector<Message> Fabric::TakeInbox(uint32_t node, MessageType type) {
  TJ_CHECK_LT(node, num_nodes_);
  std::vector<Message> taken;
  std::vector<Message> rest;
  for (auto& m : inboxes_[node]) {
    if (m.type == type) {
      taken.push_back(std::move(m));
    } else {
      rest.push_back(std::move(m));
    }
  }
  inboxes_[node] = std::move(rest);
  return taken;
}

}  // namespace tj
