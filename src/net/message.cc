#include "net/message.h"

#include "common/logging.h"

namespace tj {

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kKeysAndCounts:
      return "Keys & Counts";
    case TrafficClass::kKeysAndNodes:
      return "Keys & Nodes";
    case TrafficClass::kRTuples:
      return "R Tuples";
    case TrafficClass::kSTuples:
      return "S Tuples";
    case TrafficClass::kFilter:
      return "Filter";
  }
  return "Unknown";
}

TrafficClass ClassOf(MessageType type) {
  switch (type) {
    case MessageType::kTrackR:
    case MessageType::kTrackS:
      return TrafficClass::kKeysAndCounts;
    case MessageType::kLocationsToR:
    case MessageType::kLocationsToS:
    case MessageType::kMigrateR:
    case MessageType::kMigrateS:
    case MessageType::kRidR:
    case MessageType::kRidS:
      return TrafficClass::kKeysAndNodes;
    case MessageType::kDataR:
    case MessageType::kMigrationDataR:
      return TrafficClass::kRTuples;
    case MessageType::kDataS:
    case MessageType::kMigrationDataS:
      return TrafficClass::kSTuples;
    case MessageType::kFilter:
      return TrafficClass::kFilter;
  }
  TJ_LOG(Fatal) << "unknown message type";
  return TrafficClass::kFilter;
}

}  // namespace tj
