#include "net/message.h"

#include <array>

#include "common/logging.h"

namespace tj {

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kKeysAndCounts:
      return "Keys & Counts";
    case TrafficClass::kKeysAndNodes:
      return "Keys & Nodes";
    case TrafficClass::kRTuples:
      return "R Tuples";
    case TrafficClass::kSTuples:
      return "S Tuples";
    case TrafficClass::kFilter:
      return "Filter";
    case TrafficClass::kControl:
      return "Control";
  }
  return "Unknown";
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kTrackR:
      return "track_r";
    case MessageType::kTrackS:
      return "track_s";
    case MessageType::kLocationsToR:
      return "locations_to_r";
    case MessageType::kLocationsToS:
      return "locations_to_s";
    case MessageType::kMigrateR:
      return "migrate_r";
    case MessageType::kMigrateS:
      return "migrate_s";
    case MessageType::kDataR:
      return "data_r";
    case MessageType::kDataS:
      return "data_s";
    case MessageType::kMigrationDataR:
      return "migration_data_r";
    case MessageType::kMigrationDataS:
      return "migration_data_s";
    case MessageType::kRidR:
      return "rid_r";
    case MessageType::kRidS:
      return "rid_s";
    case MessageType::kFilter:
      return "filter";
    case MessageType::kAck:
      return "ack";
    case MessageType::kFragmentR:
      return "fragment_r";
    case MessageType::kFragmentS:
      return "fragment_s";
  }
  return "unknown";
}

TrafficClass ClassOf(MessageType type) {
  switch (type) {
    case MessageType::kTrackR:
    case MessageType::kTrackS:
      return TrafficClass::kKeysAndCounts;
    case MessageType::kLocationsToR:
    case MessageType::kLocationsToS:
    case MessageType::kMigrateR:
    case MessageType::kMigrateS:
    case MessageType::kRidR:
    case MessageType::kRidS:
    case MessageType::kFragmentR:
    case MessageType::kFragmentS:
      return TrafficClass::kKeysAndNodes;
    case MessageType::kDataR:
    case MessageType::kMigrationDataR:
      return TrafficClass::kRTuples;
    case MessageType::kDataS:
    case MessageType::kMigrationDataS:
      return TrafficClass::kSTuples;
    case MessageType::kFilter:
      return TrafficClass::kFilter;
    case MessageType::kAck:
      return TrafficClass::kControl;
  }
  TJ_LOG(Fatal) << "unknown message type";
  return TrafficClass::kFilter;
}

namespace {

std::array<uint32_t, 256> MakeCrc32cTable() {
  // Castagnoli polynomial, reflected.
  constexpr uint32_t kPoly = 0x82f63b78u;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = MakeCrc32cTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t crc) {
  const auto& table = Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

void EncodeFrame(MessageType type, uint32_t seq, const ByteBuffer& payload,
                 ByteBuffer* out) {
  TJ_CHECK_LT(payload.size(), (1ULL << 32));
  ByteWriter writer(out);
  writer.PutU16(kFrameMagic);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU8(0);  // reserved
  writer.PutU32(seq);
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  // CRC over everything after the magic: type, reserved, seq, length,
  // payload. Header corruption is then as detectable as payload corruption.
  uint32_t crc = Crc32c(out->data() + out->size() - 10, 10);
  crc = Crc32c(payload.data(), payload.size(), crc);
  writer.PutU32(crc);
  writer.PutBytes(payload.data(), payload.size());
}

Status DecodeFrame(const ByteBuffer& frame, FrameHeader* header,
                   ByteBuffer* payload) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::Corruption("frame shorter than header");
  }
  ByteReader reader(frame);
  if (reader.GetU16() != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  const uint8_t type_byte = reader.GetU8();
  const uint8_t reserved = reader.GetU8();
  const uint32_t seq = reader.GetU32();
  const uint32_t len = reader.GetU32();
  const uint32_t crc = reader.GetU32();
  if (type_byte > static_cast<uint8_t>(MessageType::kFragmentS)) {
    return Status::Corruption("unknown message type in frame header");
  }
  if (reserved != 0) {
    return Status::Corruption("nonzero reserved byte in frame header");
  }
  if (frame.size() - kFrameHeaderBytes != len) {
    return Status::Corruption("frame length does not match header");
  }
  uint32_t actual = Crc32c(frame.data() + 2, 10);
  actual = Crc32c(frame.data() + kFrameHeaderBytes, len, actual);
  if (actual != crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  header->type = static_cast<MessageType>(type_byte);
  header->seq = seq;
  header->payload_len = len;
  payload->insert(payload->end(), frame.begin() + kFrameHeaderBytes,
                  frame.end());
  return Status::OK();
}

}  // namespace tj
