// Network time model.
//
// The paper's testbed measured 0.093 GB/s per exclusive edge on 1 Gbit
// Ethernet (Section 4.2) and projects faster networks by scaling transfer
// time linearly with byte volume. We adopt the same linear model: given a
// traffic matrix, network time is estimated from the bottleneck — either
// the busiest node NIC (switched full-duplex network, transfers overlap) or
// the aggregate volume divided by total capacity (fully serialized floor).
#ifndef TJ_NET_TIME_MODEL_H_
#define TJ_NET_TIME_MODEL_H_

#include <algorithm>
#include <cstdint>

#include "net/traffic.h"

namespace tj {

struct NetworkTimeModel {
  /// Per-node (NIC) bandwidth in bytes/second, each direction.
  /// Default: the paper's measured 0.093 GB/s real edge rate.
  double node_bandwidth_bytes_per_sec = 0.093e9;

  /// Seconds to complete the transfers described by `traffic`, assuming all
  /// node pairs transfer concurrently: the slowest NIC decides.
  double BottleneckSeconds(const TrafficMatrix& traffic) const {
    return static_cast<double>(traffic.MaxNodeBytes()) /
           node_bandwidth_bytes_per_sec;
  }

  /// Seconds if the cluster's links never overlap (upper bound):
  /// total volume through one link's bandwidth.
  double SerializedSeconds(const TrafficMatrix& traffic) const {
    return static_cast<double>(traffic.TotalNetworkBytes()) /
           node_bandwidth_bytes_per_sec;
  }

  /// Seconds for a byte volume through the aggregate cluster capacity of
  /// `num_nodes` NICs (lower bound for perfectly balanced transfers).
  double AggregateSeconds(uint64_t total_bytes, uint32_t num_nodes) const {
    return static_cast<double>(total_bytes) /
           (node_bandwidth_bytes_per_sec * num_nodes);
  }
};

/// Resource prices of the event-driven pipelined fabric
/// (net/pipelined_fabric.h). Tasks on a node's serial CPU and transfers on
/// its NIC are charged modeled seconds = bytes / bandwidth — never wall
/// time — so the makespan is fully deterministic and reproducible. The CPU
/// rate is deliberately within a small factor of the NIC rate: sort,
/// aggregation, serialization and join work on a tuple stream run at
/// memory-bandwidth-bound speeds on the paper's testbed, which is what
/// makes CPU/network overlap (Section 5) worth modeling at all.
struct PipelineCostModel {
  double net_bandwidth_bytes_per_sec = 0.093e9;
  double cpu_bandwidth_bytes_per_sec = 0.25e9;

  double TransferSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / net_bandwidth_bytes_per_sec;
  }
  double CpuSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / cpu_bandwidth_bytes_per_sec;
  }
};

/// CPU/network overlap projection (paper Section 5: "A pipelined
/// implementation can reduce end-to-end time by overlapping CPU and
/// network. Track join is more complex than hash join, offering more
/// choices for overlap.").
///
/// The de-pipelined execution the paper (and this library) measures runs
/// CPU work and transfers back to back; a pipelined implementation streams
/// chunks so the two resources run concurrently. With `chunks` pipeline
/// stages the classic bound interpolates between the serial sum and the
/// perfect-overlap maximum:
///   time(K) = max(cpu, net) + (cpu + net - max(cpu, net)) / K
struct OverlapEstimate {
  double cpu_seconds = 0;
  double net_seconds = 0;

  /// Fully de-pipelined end-to-end time (what Table 2 reports).
  double DepipelinedSeconds() const { return cpu_seconds + net_seconds; }

  /// Perfect-overlap lower bound: the busier resource decides.
  double PipelinedSeconds() const { return std::max(cpu_seconds, net_seconds); }

  /// Finite pipeline of `chunks` stages (chunks >= 1).
  double PipelinedSeconds(uint32_t chunks) const {
    double bound = PipelinedSeconds();
    return bound + (DepipelinedSeconds() - bound) / std::max(1u, chunks);
  }

  /// DepipelinedSeconds / PipelinedSeconds.
  double Speedup() const {
    double pipelined = PipelinedSeconds();
    return pipelined > 0 ? DepipelinedSeconds() / pipelined : 1.0;
  }
};

}  // namespace tj

#endif  // TJ_NET_TIME_MODEL_H_
