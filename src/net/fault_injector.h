// Seeded fault injection for the simulated fabric.
//
// A FaultPolicy describes what the "wire" may do to a frame on its way from
// one node to another: drop it, duplicate it, flip a bit, deliver it out of
// order — plus whole-node failure modes (crash at a phase index, modeled
// slow-down). A FaultInjector executes one policy with deterministic,
// per-source-node RNG streams, so runs reproduce exactly for a given seed
// even when phases execute on a thread pool (each sending node owns its own
// stream, and barrier-time decisions run single-threaded).
//
// The zero policy (all probabilities zero, no crash) is inert: Fabric keeps
// its pristine unframed path and the injector is never consulted.
#ifndef TJ_NET_FAULT_INJECTOR_H_
#define TJ_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/rng.h"

namespace tj {

/// Per-link and per-node fault probabilities. Defaults are all-zero: a
/// default-constructed policy injects nothing and leaves the fabric on its
/// byte-identical deterministic path.
struct FaultPolicy {
  static constexpr uint32_t kNoNode = ~0u;

  /// P(a frame is dropped on the wire), per transmission attempt.
  double drop = 0.0;
  /// P(an extra copy of a frame is delivered), per transmission attempt.
  double duplicate = 0.0;
  /// P(a frame arrives with one flipped bit), per transmission attempt.
  double corrupt = 0.0;
  /// P(two adjacent delivered messages swap places in the receiver inbox).
  double reorder = 0.0;

  /// Node that fail-stops (skips its work, sends nothing) from phase
  /// `crash_phase` (0-based global phase index) onward. kNoNode disables.
  uint32_t crash_node = kNoNode;
  uint32_t crash_phase = 0;

  /// Node whose phases are modeled `slowdown_seconds` slower (added to the
  /// recorded phase wall time; a straggler, not a failure). kNoNode disables.
  uint32_t slow_node = kNoNode;
  double slowdown_seconds = 0.0;

  /// Retransmit rounds per phase before the barrier declares data loss.
  uint32_t max_retries = 8;

  /// True if this policy can perturb *delivery* (the fabric frames messages
  /// and runs the ack/retransmit protocol only in that case). A pure
  /// straggler (slow_node set, everything else zero) does not qualify: it
  /// only stretches modeled phase time, so the fabric models the slowdown
  /// on the pristine unframed path and traffic stays byte-identical.
  bool active() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0 ||
           crash_node != kNoNode;
  }

  /// True if the policy models a straggler (handled on either wire path).
  bool models_straggler() const {
    return slow_node != kNoNode && slowdown_seconds > 0;
  }

  /// True if installing this policy changes anything at all about a run.
  bool any_effect() const { return active() || models_straggler(); }
};

/// Counters of what the injector actually did (summed over per-source
/// streams; read them between phases, not from inside one).
struct FaultCounters {
  uint64_t frames_dropped = 0;
  uint64_t frames_corrupted = 0;
  uint64_t frames_duplicated = 0;
  uint64_t messages_reordered = 0;
};

/// Injector activity plus the retry protocol's work over a whole run, as
/// reported by Fabric::reliability(). All-zero on the pristine path.
struct ReliabilityStats {
  FaultCounters faults;
  /// Frames resent after a nack (each retransmission attempt counts once).
  uint64_t retransmitted_frames = 0;
  /// Nack control messages sent by receivers during retry rounds.
  uint64_t nack_messages = 0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPolicy& policy, uint64_t seed, uint32_t num_nodes);

  const FaultPolicy& policy() const { return policy_; }

  /// Runs one frame through the wire model for link src -> dst. Returns the
  /// copies that actually arrive (0, 1 or 2; corrupted copies have one bit
  /// flipped). Only node `src`'s thread may call this during a phase.
  std::vector<ByteBuffer> Transmit(uint32_t src, uint32_t dst,
                                   const ByteBuffer& frame);

  /// True with probability policy().reorder, drawn from the barrier stream.
  /// Single-threaded barrier use only.
  bool ShouldReorder();

  /// True if `node` has fail-stopped at global phase index `phase`.
  bool NodeCrashed(uint32_t node, uint64_t phase) const {
    return node == policy_.crash_node && phase >= policy_.crash_phase;
  }

  /// Aggregated event counts.
  FaultCounters counters() const;

 private:
  struct PerSource {
    Rng rng;
    FaultCounters counts;
  };

  FaultPolicy policy_;
  std::vector<PerSource> sources_;
  Rng barrier_rng_;
  uint64_t reorders_ = 0;
};

}  // namespace tj

#endif  // TJ_NET_FAULT_INJECTOR_H_
