// Network traffic accounting.
//
// A TrafficMatrix records bytes per (source, destination, message type).
// Types aggregate into the figures' four stacked classes via ClassOf().
// Local copies (src == dst) are tracked separately and never count as
// network traffic — the paper's cost analysis treats in-place transfers as
// free, and its step tables report them as separate "local copy" rows.
#ifndef TJ_NET_TRAFFIC_H_
#define TJ_NET_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"

namespace tj {

constexpr int kNumMessageTypes = 16;

class TrafficMatrix {
 public:
  explicit TrafficMatrix(uint32_t num_nodes = 0) { Reset(num_nodes); }

  void Reset(uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }

  /// Records `bytes` of type `type` from src to dst (first transmission;
  /// the "goodput" side of the ledger).
  void Add(uint32_t src, uint32_t dst, MessageType type, uint64_t bytes);

  /// Records `bytes` of fault-recovery overhead from src to dst:
  /// retransmitted frames, injected duplicate copies, and ack/nack control
  /// messages. Kept in a separate matrix so benchmarks can report goodput
  /// (Add) vs. total wire traffic (Add + AddRetransmit).
  void AddRetransmit(uint32_t src, uint32_t dst, MessageType type,
                     uint64_t bytes);

  /// Records `bytes` on the recovery ledger: wire traffic a *failed* join
  /// attempt spent before RecoveryManager replayed the query. A third
  /// matrix, separate from goodput and retransmits, so a recovered run can
  /// report "what the answer cost" vs. "what the failures cost" — and so
  /// pristine runs can assert the ledger is exactly zero.
  void AddRecovery(uint32_t src, uint32_t dst, MessageType type,
                   uint64_t bytes);

  /// Bytes that crossed the network (src != dst) for one message type.
  uint64_t NetworkBytes(MessageType type) const;
  /// Bytes that crossed the network for one figure class.
  uint64_t NetworkBytes(TrafficClass cls) const;
  /// Bytes that crossed the network, all types.
  uint64_t TotalNetworkBytes() const;

  /// Locally-copied (src == dst) bytes.
  uint64_t LocalBytes(MessageType type) const;
  uint64_t LocalBytes(TrafficClass cls) const;
  uint64_t TotalLocalBytes() const;

  /// Network bytes leaving / entering one node.
  uint64_t EgressBytes(uint32_t node) const;
  uint64_t IngressBytes(uint32_t node) const;

  /// Bytes on one directed link.
  uint64_t LinkBytes(uint32_t src, uint32_t dst) const;
  /// The busiest directed link's byte count.
  uint64_t MaxLinkBytes() const;
  /// max over nodes of max(ingress, egress): the NIC bottleneck.
  uint64_t MaxNodeBytes() const;

  /// Fault-recovery overhead bytes that crossed the network.
  uint64_t RetransmitBytes(MessageType type) const;
  uint64_t RetransmitBytes(TrafficClass cls) const;
  uint64_t TotalRetransmitBytes() const;

  /// Bytes failed attempts burned before recovery succeeded (network,
  /// src != dst). Exactly zero on any run that never failed a phase.
  uint64_t RecoveryBytes(MessageType type) const;
  uint64_t RecoveryBytes(TrafficClass cls) const;
  uint64_t TotalRecoveryBytes() const;

  /// Total bytes on the wire: first sends plus recovery overhead.
  uint64_t TotalWireBytes() const {
    return TotalNetworkBytes() + TotalRetransmitBytes() +
           TotalRecoveryBytes();
  }

  /// Accumulates another matrix (same node count).
  void Merge(const TrafficMatrix& other);

  /// Folds a *failed* attempt's wire traffic (goodput + retransmits +
  /// recovery) into this matrix's recovery ledger. `node_map[i]` gives the
  /// id in this matrix of `other`'s node i (other may have run degraded on
  /// fewer nodes); every entry must be < num_nodes().
  void AccumulateRecovery(const TrafficMatrix& other,
                          const std::vector<uint32_t>& node_map);

  /// Returns this matrix re-indexed onto `num_nodes` nodes: every ledger
  /// cell (src, dst, type) moves to (node_map[src], node_map[dst], type),
  /// additively. Used to express a degraded (N-1 node) run's traffic in the
  /// original cluster's node ids.
  TrafficMatrix MappedTo(uint32_t num_nodes,
                         const std::vector<uint32_t>& node_map) const;

  /// Exact equality of every (src, dst, type) cell across all three
  /// ledgers (first-send, retransmit, recovery). Used by the
  /// fault-equivalence tests.
  bool operator==(const TrafficMatrix& other) const {
    return num_nodes_ == other.num_nodes_ && cells_ == other.cells_ &&
           retrans_cells_ == other.retrans_cells_ &&
           recovery_cells_ == other.recovery_cells_;
  }

  /// Multi-line human-readable per-class summary.
  std::string Report() const;

 private:
  uint64_t& Cell(uint32_t src, uint32_t dst, int type) {
    return cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                      kNumMessageTypes +
                  type];
  }
  uint64_t Cell(uint32_t src, uint32_t dst, int type) const {
    return cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                      kNumMessageTypes +
                  type];
  }

  uint64_t& RetransCell(uint32_t src, uint32_t dst, int type) {
    return retrans_cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                              kNumMessageTypes +
                          type];
  }
  uint64_t RetransCell(uint32_t src, uint32_t dst, int type) const {
    return retrans_cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                              kNumMessageTypes +
                          type];
  }

  uint64_t& RecoveryCell(uint32_t src, uint32_t dst, int type) {
    return recovery_cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                               kNumMessageTypes +
                           type];
  }
  uint64_t RecoveryCell(uint32_t src, uint32_t dst, int type) const {
    return recovery_cells_[(static_cast<uint64_t>(src) * num_nodes_ + dst) *
                               kNumMessageTypes +
                           type];
  }

  uint32_t num_nodes_ = 0;
  std::vector<uint64_t> cells_;
  std::vector<uint64_t> retrans_cells_;
  std::vector<uint64_t> recovery_cells_;
};

/// Pretty-prints a byte count as "12.34 GiB" / "56.7 MiB" / "890 B".
std::string FormatBytes(uint64_t bytes);

}  // namespace tj

#endif  // TJ_NET_TRAFFIC_H_
