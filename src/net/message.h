// Message taxonomy of the simulated network.
//
// Every byte that crosses the fabric is tagged with a MessageType; types map
// onto the four traffic classes the paper's figures stack: "Keys & Counts"
// (tracking), "Keys & Nodes" (locations/schedules), "R Tuples", "S Tuples".
#ifndef TJ_NET_MESSAGE_H_
#define TJ_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

/// Semantic message types used by the join algorithms.
enum class MessageType : uint8_t {
  kTrackR = 0,     ///< Tracking: distinct R keys (+ counts) to tracker nodes.
  kTrackS,         ///< Tracking: distinct S keys (+ counts) to tracker nodes.
  kLocationsToR,   ///< Schedule: <key, S-node> pairs sent to R locations.
  kLocationsToS,   ///< Schedule: <key, R-node> pairs sent to S locations.
  kMigrateR,       ///< Schedule: <key, dest> migration instructions, R side.
  kMigrateS,       ///< Schedule: <key, dest> migration instructions, S side.
  kDataR,          ///< R tuples (hash/broadcast/selective broadcast).
  kDataS,          ///< S tuples.
  kMigrationDataR, ///< R tuples moved by a 4-phase migration.
  kMigrationDataS, ///< S tuples moved by a 4-phase migration.
  kRidR,           ///< Late materialization: rid messages toward R side.
  kRidS,           ///< Late materialization: rid messages toward S side.
  kFilter,         ///< Semi-join Bloom filter broadcast.
  kAck,            ///< Reliable delivery: ack/nack control messages.
  kFragmentR,      ///< Hot-split: <key, worker> fragment instructions, R side.
  kFragmentS,      ///< Hot-split: <key, worker> fragment instructions, S side.
};

/// Accounting classes matching the stacked bars of the paper's figures.
enum class TrafficClass : uint8_t {
  kKeysAndCounts = 0,
  kKeysAndNodes,
  kRTuples,
  kSTuples,
  kFilter,
  kControl,  ///< Reliable-delivery overhead (acks/nacks); not in the figures.
};

constexpr int kNumTrafficClasses = 6;

const char* TrafficClassName(TrafficClass cls);

/// Stable lowercase identifier for a message type ("track_r", "data_s",
/// ...), as used by the profiling layer's JSON/CSV output.
const char* MessageTypeName(MessageType type);

/// The figure class a message type is accounted under.
TrafficClass ClassOf(MessageType type);

/// A delivered message.
struct Message {
  uint32_t src;
  MessageType type;
  ByteBuffer data;
};

// ---------------------------------------------------------------------------
// Wire framing (fault-tolerant fabric mode).
//
// When a Fabric runs with an active FaultPolicy, every payload crosses the
// wire inside a frame:
//
//   magic   : u16  (kFrameMagic)
//   type    : u8   (MessageType)
//   reserved: u8   (0)
//   seq     : u32  (per-directed-link sequence number)
//   length  : u32  (payload bytes)
//   crc32c  : u32  (over type, reserved, seq, length, payload)
//
// DecodeFrame never trusts the bytes: truncated headers, bad magic,
// length/size mismatches and checksum failures all come back as
// Status::Corruption, never as out-of-bounds reads.
// ---------------------------------------------------------------------------

constexpr uint16_t kFrameMagic = 0x4a54;  // "TJ"
constexpr size_t kFrameHeaderBytes = 16;

/// Parsed frame header.
struct FrameHeader {
  MessageType type;
  uint32_t seq;
  uint32_t payload_len;
};

/// CRC32C (Castagnoli), bitwise-reflected, software table implementation.
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

/// Serializes one frame (header + payload) into `out` (appended).
void EncodeFrame(MessageType type, uint32_t seq, const ByteBuffer& payload,
                 ByteBuffer* out);

/// Validates and parses a frame. On success fills `header` and appends the
/// payload bytes to `payload`. Returns Status::Corruption on any mismatch.
Status DecodeFrame(const ByteBuffer& frame, FrameHeader* header,
                   ByteBuffer* payload);

}  // namespace tj

#endif  // TJ_NET_MESSAGE_H_
