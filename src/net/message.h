// Message taxonomy of the simulated network.
//
// Every byte that crosses the fabric is tagged with a MessageType; types map
// onto the four traffic classes the paper's figures stack: "Keys & Counts"
// (tracking), "Keys & Nodes" (locations/schedules), "R Tuples", "S Tuples".
#ifndef TJ_NET_MESSAGE_H_
#define TJ_NET_MESSAGE_H_

#include <cstdint>

#include "common/byte_buffer.h"

namespace tj {

/// Semantic message types used by the join algorithms.
enum class MessageType : uint8_t {
  kTrackR = 0,     ///< Tracking: distinct R keys (+ counts) to tracker nodes.
  kTrackS,         ///< Tracking: distinct S keys (+ counts) to tracker nodes.
  kLocationsToR,   ///< Schedule: <key, S-node> pairs sent to R locations.
  kLocationsToS,   ///< Schedule: <key, R-node> pairs sent to S locations.
  kMigrateR,       ///< Schedule: <key, dest> migration instructions, R side.
  kMigrateS,       ///< Schedule: <key, dest> migration instructions, S side.
  kDataR,          ///< R tuples (hash/broadcast/selective broadcast).
  kDataS,          ///< S tuples.
  kMigrationDataR, ///< R tuples moved by a 4-phase migration.
  kMigrationDataS, ///< S tuples moved by a 4-phase migration.
  kRidR,           ///< Late materialization: rid messages toward R side.
  kRidS,           ///< Late materialization: rid messages toward S side.
  kFilter,         ///< Semi-join Bloom filter broadcast.
};

/// Accounting classes matching the stacked bars of the paper's figures.
enum class TrafficClass : uint8_t {
  kKeysAndCounts = 0,
  kKeysAndNodes,
  kRTuples,
  kSTuples,
  kFilter,
};

constexpr int kNumTrafficClasses = 5;

const char* TrafficClassName(TrafficClass cls);

/// The figure class a message type is accounted under.
TrafficClass ClassOf(MessageType type);

/// A delivered message.
struct Message {
  uint32_t src;
  MessageType type;
  ByteBuffer data;
};

}  // namespace tj

#endif  // TJ_NET_MESSAGE_H_
