#include "ops/aggregate.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "net/fabric.h"

namespace tj {

namespace {

uint64_t ReadField(const TupleBlock& block, uint64_t row, const FieldRef& f) {
  if (f.use_key) return block.Key(row);
  TJ_CHECK_LE(f.offset + f.bytes, block.payload_width());
  TJ_CHECK_LE(f.bytes, 8u);
  uint64_t v = 0;
  const uint8_t* p = block.Payload(row) + f.offset;
  for (uint32_t i = 0; i < f.bytes; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

struct Partial {
  uint64_t sum = 0;
  uint64_t count = 0;
};

/// Serialized partial: group (group_bytes) + sum (sum_bytes) + count (LEB-
/// free fixed 8 bytes keeps the wire format flat for accounting).
constexpr uint32_t kCountBytes = 8;

}  // namespace

AggregateResult RunDistributedAggregate(const PartitionedTable& table,
                                        const AggregateConfig& config) {
  const uint32_t n = table.num_nodes();
  const uint32_t payload_width = config.sum_bytes + kCountBytes;
  AggregateResult result{PartitionedTable("agg", n, payload_width),
                         TrafficMatrix(n),
                         {},
                         0,
                         table.TotalRows()};

  Fabric fabric(n);
  std::vector<std::unordered_map<uint64_t, Partial>> finals(n);

  fabric.RunPhase(config.pre_aggregate ? "local pre-aggregate & shuffle"
                                       : "shuffle rows",
                  [&](uint32_t node) {
    const TupleBlock& block = table.node(node);
    std::vector<ByteBuffer> out(n);
    std::vector<ByteWriter> writers;
    writers.reserve(n);
    for (uint32_t d = 0; d < n; ++d) writers.emplace_back(&out[d]);

    if (config.pre_aggregate) {
      std::unordered_map<uint64_t, Partial> partials;
      partials.reserve(block.size());
      for (uint64_t row = 0; row < block.size(); ++row) {
        Partial& p = partials[ReadField(block, row, config.group_by)];
        p.sum += ReadField(block, row, config.value);
        p.count += 1;
      }
      // Hash partitioning spreads the groups near-uniformly; one reserve
      // per destination instead of a growth chain per stream.
      const uint32_t record_bytes =
          config.group_bytes + config.sum_bytes + kCountBytes;
      if (partials.size() >= static_cast<size_t>(n)) {
        for (uint32_t d = 0; d < n; ++d) {
          out[d].reserve(partials.size() / n * record_bytes + record_bytes);
        }
      }
      for (const auto& [group, partial] : partials) {
        uint32_t dst = HashPartition(group, n);
        writers[dst].PutUint(group, config.group_bytes);
        writers[dst].PutUint(partial.sum, config.sum_bytes);
        writers[dst].PutUint(partial.count, kCountBytes);
      }
    } else {
      for (uint64_t row = 0; row < block.size(); ++row) {
        uint64_t group = ReadField(block, row, config.group_by);
        uint32_t dst = HashPartition(group, n);
        writers[dst].PutUint(group, config.group_bytes);
        writers[dst].PutUint(ReadField(block, row, config.value),
                             config.sum_bytes);
        writers[dst].PutUint(1, kCountBytes);
      }
    }
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (!out[dst].empty()) {
        // Partial aggregates are key-ish metadata, not tuples: account them
        // under the tracking class.
        fabric.Send(node, dst, MessageType::kTrackR, std::move(out[dst]));
      }
    }
  });

  fabric.RunPhase("final aggregate", [&](uint32_t node) {
    auto msgs = fabric.TakeInbox(node, MessageType::kTrackR);
    // Size the final table from the incoming bytes: every fixed-width wire
    // record is at most one new group, so this bound is exact for disjoint
    // senders and avoids every mid-phase rehash (S2 reserve audit).
    const uint32_t record_bytes =
        config.group_bytes + config.sum_bytes + kCountBytes;
    uint64_t incoming_bytes = 0;
    for (const auto& msg : msgs) incoming_bytes += msg.data.size();
    finals[node].reserve(incoming_bytes / record_bytes);
    for (const auto& msg : msgs) {
      ByteReader reader(msg.data);
      while (!reader.Done()) {
        uint64_t group = reader.GetUint(config.group_bytes);
        uint64_t sum = reader.GetUint(config.sum_bytes);
        uint64_t count = reader.GetUint(kCountBytes);
        Partial& p = finals[node][group];
        p.sum += sum;
        p.count += count;
      }
    }
    // Deterministic output order: sorted by group.
    std::vector<std::pair<uint64_t, Partial>> sorted(finals[node].begin(),
                                                     finals[node].end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<uint8_t> payload(payload_width);
    for (const auto& [group, partial] : sorted) {
      for (uint32_t i = 0; i < config.sum_bytes; ++i) {
        payload[i] = static_cast<uint8_t>(partial.sum >> (8 * i));
      }
      for (uint32_t i = 0; i < kCountBytes; ++i) {
        payload[config.sum_bytes + i] =
            static_cast<uint8_t>(partial.count >> (8 * i));
      }
      result.output.node(node).Append(group, payload.data());
    }
  });

  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.groups = result.output.TotalRows();
  return result;
}

}  // namespace tj
