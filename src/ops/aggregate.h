// Distributed group-by aggregation.
//
// The paper's motivating queries are "4-6 joins followed by aggregation"
// (Section 4.1); this operator completes that pipeline over the joins'
// materialized outputs. Two strategies:
//
//  * naive: hash-shuffle every row to the group's owner node, aggregate
//    there — traffic proportional to the input;
//  * pre-aggregated: aggregate locally first and shuffle one partial per
//    (node, group) — traffic proportional to distinct groups, the standard
//    optimization that mirrors track join's "ship less by knowing more".
//
// Grouping keys and aggregated values are little-endian integer fields of
// the input rows: either the join key itself or a slice of the payload.
#ifndef TJ_OPS_AGGREGATE_H_
#define TJ_OPS_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/traffic.h"
#include "storage/table.h"

namespace tj {

/// Field selector: the row's join key, or `bytes` payload bytes at
/// `offset`.
struct FieldRef {
  bool use_key = true;
  uint32_t offset = 0;
  uint32_t bytes = 0;

  static FieldRef Key() { return FieldRef{}; }
  static FieldRef Payload(uint32_t offset, uint32_t bytes) {
    return FieldRef{false, offset, bytes};
  }
};

struct AggregateConfig {
  FieldRef group_by = FieldRef::Key();
  /// Summed value (unsigned little-endian; wrap-around on overflow).
  FieldRef value = FieldRef::Payload(0, 4);
  /// Serialized group-key width on the wire.
  uint32_t group_bytes = 4;
  /// Serialized partial-sum / sum width on the wire and in the output.
  uint32_t sum_bytes = 8;
  /// Aggregate locally before shuffling.
  bool pre_aggregate = true;
};

struct AggregateResult {
  /// One row per distinct group: key = group, payload = sum (sum_bytes LE)
  /// followed by count (8 bytes LE), resident at hash(group) mod N.
  PartitionedTable output;
  TrafficMatrix traffic;
  std::vector<std::pair<std::string, double>> phase_seconds;
  uint64_t groups = 0;
  uint64_t input_rows = 0;
};

/// Runs the distributed aggregation over `table`.
AggregateResult RunDistributedAggregate(const PartitionedTable& table,
                                        const AggregateConfig& config);

}  // namespace tj

#endif  // TJ_OPS_AGGREGATE_H_
