// Synthetic workload generation.
//
// Generates the paper's synthetic datasets (Figures 3-6): configurable key
// multiplicities per table, repeat-placement patterns ("5,0,0,...",
// "2,2,1,0,0,...", "1,1,1,1,1,0,0,..."), and collocation modes — random,
// intra-table (repeats of a key land together, tables independent) and
// inter-table (matching keys of both tables land on the same nodes).
#ifndef TJ_WORKLOAD_GENERATOR_H_
#define TJ_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/replica.h"
#include "storage/table.h"

namespace tj {

/// How repeat groups are assigned to nodes.
enum class Collocation : uint8_t {
  /// Every tuple copy is placed on an independent uniform-random node
  /// (the "shuffled" inputs of the paper).
  kRandom,
  /// The pattern's groups land on distinct random nodes per table; the two
  /// tables are placed independently (Figures 4, 5).
  kIntra,
  /// Like kIntra, but each key's S groups reuse the nodes chosen for its R
  /// groups (Figure 6: inter- & intra-table collocation).
  kInter,
};

struct WorkloadSpec {
  uint32_t num_nodes = 4;
  uint64_t seed = 42;

  /// Number of distinct join keys present in BOTH tables.
  uint64_t matched_keys = 1000;
  /// Copies of each matched key per table (the "5 repeats" of Figs 4-6).
  uint32_t r_multiplicity = 1;
  uint32_t s_multiplicity = 1;
  /// Placement pattern: group sizes summing to the multiplicity,
  /// e.g. {5} / {2,2,1} / {1,1,1,1,1}. Empty means one group of all copies
  /// under kIntra/kInter, or is ignored under kRandom.
  std::vector<uint32_t> r_pattern;
  std::vector<uint32_t> s_pattern;
  Collocation collocation = Collocation::kRandom;
  /// Fraction of matched keys that follow the collocation mode; the rest
  /// are placed per-copy uniformly at random. Models partially-local
  /// "original orderings" like workload X's (see workload/real.h).
  double collocated_fraction = 1.0;

  /// Extra rows whose keys appear in only one table (drive selectivity);
  /// each unmatched key occurs once, on a random node.
  uint64_t r_unmatched = 0;
  uint64_t s_unmatched = 0;

  /// Payload bytes per tuple (excluding the join key).
  uint32_t r_payload = 16;
  uint32_t s_payload = 16;
};

struct Workload {
  PartitionedTable r;
  PartitionedTable s;
  /// matched_keys × r_multiplicity × s_multiplicity.
  uint64_t expected_output_rows;
};

/// Generates a workload. Keys are dense 64-bit values starting at 1
/// (matched), with unmatched keys in disjoint ranges above them; callers
/// must pick JoinConfig::key_bytes large enough.
Workload GenerateWorkload(const WorkloadSpec& spec);

/// Replicated placement of a workload's tables: chained declustering with
/// `replication` copies per partition (storage/replica.h). The views point
/// into `workload`, which must outlive them.
struct ReplicatedWorkload {
  ReplicatedTable r;
  ReplicatedTable s;
};
ReplicatedWorkload ReplicateWorkload(const Workload& workload,
                                     uint32_t replication);

/// Reassigns every tuple of `table` to an independent uniform-random node —
/// the paper's "shuffled tuple ordering" that destroys all locality.
void ShuffleTable(PartitionedTable* table, uint64_t seed);

/// Skewed workload: both tables draw keys Zipf(theta)-distributed over a
/// shared domain, so a few keys are very hot on both sides. Placement is
/// uniform random per tuple. Used by the skew/balance ablations — hot keys
/// stress both the per-key scheduler and node load balance.
struct ZipfWorkloadSpec {
  uint32_t num_nodes = 8;
  uint64_t seed = 42;
  uint64_t key_domain = 100000;  ///< Distinct keys drawn from [1, domain].
  uint64_t r_rows = 100000;
  uint64_t s_rows = 100000;
  double r_theta = 1.0;
  double s_theta = 1.0;
  uint32_t r_payload = 16;
  uint32_t s_payload = 16;
};

/// Generates a Zipf workload; expected_output_rows is computed exactly
/// from the drawn multiplicities. Both tables share one sampler when their
/// (domain, theta) match, so the distribution setup runs once, and theta=0
/// degenerates to plain uniform sampling (see ZipfGenerator).
///
/// The exact output count can overflow uint64 under extreme skew (a hot
/// key with ~2^32 copies on each side): the Try variant detects any
/// overflowing per-key product or running sum and returns
/// Status::InvalidArgument instead of silently wrapping.
Result<Workload> TryGenerateZipfWorkload(const ZipfWorkloadSpec& spec);

/// Accumulates one key's exact output contribution (r_count x s_count)
/// into *total. InvalidArgument (naming `key` and the counts) when the
/// product or the running sum overflows uint64; *total is untouched then.
Status AddOutputProduct(uint64_t key, uint64_t r_count, uint64_t s_count,
                        uint64_t* total);

/// CHECK-failing convenience wrapper around TryGenerateZipfWorkload.
Workload GenerateZipfWorkload(const ZipfWorkloadSpec& spec);

}  // namespace tj

#endif  // TJ_WORKLOAD_GENERATOR_H_
