// Reconstructions of the paper's real commercial workloads X and Y.
//
// The originals are proprietary; these reconstructions are driven entirely
// by the statistics the paper publishes:
//
//  Workload X (the slowest join shared by queries Q1-Q5):
//   * R = 769,845,120 tuples, key J.ID with 769,785,856 distinct values;
//     S = 790,963,741 tuples, key with 788,463,616 distinct values;
//     output = 730,073,001 tuples — i.e. nearly-unique keys on both sides
//     with ~92-95% match selectivity (Section 4.1, Table 1).
//   * Per-column distinct counts and bit widths from Table 1 (Q1);
//     Q2-Q5 bits-per-tuple from Figure 9: 79:145, 67:120, 60:126, 67:131,
//     69:145 (R:S, key 30 bits each).
//   * Implementation widths (Section 4.2): 4-byte keys, 7-byte R payloads,
//     18-byte S payloads, 1-byte counts.
//   * "Original ordering" locality calibrated to Table 2: 2TJ's network
//     time is 44% of hash join's in the original ordering vs 71% shuffled,
//     implying ~80% of matched pairs were collocated.
//
//  Workload Y (slowest join of the slowest query):
//   * R = 57,119,489 tuples, S = 141,312,688 tuples,
//     output = 1,068,159,117 tuples (5.4x the input cardinality, "which
//     also applies per distinct join key"): modeled as ~7.14M distinct
//     matched keys with multiplicities 8 (R) and 19 (S).
//   * Tuples are 37 and 47 bytes under variable-byte encoding; the largest
//     column is a 23-byte character column (in S). Implementation widths:
//     4-byte keys, 33/43-byte payloads, 2-byte counts.
//   * "Original ordering": each key's repeats are collocated per table
//     (the paper's original order showed strong repeat locality); the
//     shuffled variant destroys it.
//
// Scale: `scale_divisor` divides all cardinalities (traffic scales
// linearly, so figures project back up by the same factor).
#ifndef TJ_WORKLOAD_REAL_H_
#define TJ_WORKLOAD_REAL_H_

#include <cstdint>
#include <string>

#include "storage/schema.h"
#include "workload/generator.h"

namespace tj {

/// Full description of one real-workload join at paper scale.
struct RealJoinSpec {
  std::string name;
  TableSchema r_schema;
  TableSchema s_schema;
  uint64_t t_r = 0;          ///< Paper-scale R cardinality.
  uint64_t t_s = 0;          ///< Paper-scale S cardinality.
  uint64_t t_rs = 0;         ///< Paper-scale output cardinality.
  uint64_t matched_keys = 0; ///< Distinct keys present in both tables.
  uint32_t r_multiplicity = 1;
  uint32_t s_multiplicity = 1;
  /// Locality of the original tuple ordering: fraction of matched keys
  /// whose tuples collocate (inter-table for X, intra-table for Y).
  double original_collocated_fraction = 0.0;
  Collocation original_collocation = Collocation::kRandom;
  /// Physical execution widths (paper Section 4.2).
  uint32_t impl_key_bytes = 4;
  uint32_t impl_count_bytes = 1;
  uint32_t impl_r_payload = 0;
  uint32_t impl_s_payload = 0;
};

/// The slowest join of workload X as used by query Q1..Q5 (1-based).
/// All five share the key columns; payload widths differ (Figure 9).
RealJoinSpec WorkloadX(int query = 1);

/// The slowest join of workload Y.
RealJoinSpec WorkloadY();

/// Materializes the join input at reduced scale. `original_order` applies
/// the spec's locality model; otherwise placement is uniform random
/// (the paper's "shuffled tuple ordering").
Workload InstantiateReal(const RealJoinSpec& spec, uint32_t num_nodes,
                         uint64_t scale_divisor, bool original_order,
                         uint64_t seed = 42);

}  // namespace tj

#endif  // TJ_WORKLOAD_REAL_H_
