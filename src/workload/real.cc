#include "workload/real.h"

#include <algorithm>

#include "common/logging.h"

namespace tj {

namespace {

ColumnSpec Numeric(const char* name, uint64_t distinct, uint64_t max_raw) {
  ColumnSpec c;
  c.name = name;
  c.distinct_values = distinct;
  c.min_raw_value = 1;
  c.max_raw_value = max_raw;
  return c;
}

/// Synthesizes payload columns totalling `bits` dictionary bits, splitting
/// into <=30-bit columns (used for Q2-Q5 where the paper only reports the
/// per-tuple totals of Figure 9).
std::vector<ColumnSpec> SyntheticPayload(uint32_t bits) {
  std::vector<ColumnSpec> columns;
  int index = 0;
  while (bits > 0) {
    uint32_t chunk = std::min(bits, 30u);
    ColumnSpec c;
    c.name = "COL" + std::to_string(index++);
    c.distinct_values = 1ULL << chunk;
    c.min_raw_value = 1;
    // Raw magnitudes roughly one decimal order above the code space, the
    // "values do not fit the dictionary-code range" situation of Section 4.
    c.max_raw_value = (1ULL << chunk) * 10;
    columns.push_back(c);
    bits -= chunk;
  }
  return columns;
}

}  // namespace

RealJoinSpec WorkloadX(int query) {
  TJ_CHECK_GE(query, 1);
  TJ_CHECK_LE(query, 5);
  RealJoinSpec spec;
  spec.name = "X-Q" + std::to_string(query);
  spec.t_r = 769845120;
  spec.t_s = 790963741;
  spec.t_rs = 730073001;
  spec.matched_keys = spec.t_rs;  // Nearly-unique keys on both sides.
  spec.r_multiplicity = 1;
  spec.s_multiplicity = 1;
  // Calibrated from Table 2: original-order 2TJ network time is 44% of
  // hash join vs 71% when shuffled => ~80% of matched pairs collocated.
  spec.original_collocated_fraction = 0.8;
  spec.original_collocation = Collocation::kInter;
  spec.impl_key_bytes = 4;
  spec.impl_count_bytes = 1;
  spec.impl_r_payload = 7;
  spec.impl_s_payload = 18;

  // The raw NUMBER key values exceed 32 bits (Section 4.1); ~12 decimal
  // digits -> 6 base-100 bytes.
  spec.r_schema.name = "R";
  spec.r_schema.key_columns = {Numeric("J.ID", 769785856, 999999999999ULL)};
  spec.s_schema.name = "S";
  spec.s_schema.key_columns = {Numeric("J.ID", 788463616, 999999999999ULL)};

  if (query == 1) {
    // Table 1 exactly.
    spec.r_schema.payload_columns = {
        Numeric("T.ID", 53, 99),
        Numeric("J.T.AMT", 9824256, 99999999ULL),
        Numeric("T.C.ID", 297952, 999999ULL),
    };
    spec.s_schema.payload_columns = {
        Numeric("T.ID", 53, 99),
        Numeric("S.B.ID", 95, 99),
        Numeric("O.U.AMT", 26308608, 99999999ULL),
        Numeric("C.ID", 359, 999),
        Numeric("T.B.C.ID", 233040, 999999ULL),
        Numeric("S.C.AMT", 11278336, 99999999ULL),
        Numeric("M.U.AMT", 54407160, 99999999ULL),
    };
  } else {
    // Figure 9 bits-per-tuple: R:S = 67:120, 60:126, 67:131, 69:145 for
    // Q2..Q5 with 30-bit keys.
    static constexpr uint32_t kRPayloadBits[] = {37, 30, 37, 39};
    static constexpr uint32_t kSPayloadBits[] = {90, 96, 101, 115};
    spec.r_schema.payload_columns = SyntheticPayload(kRPayloadBits[query - 2]);
    spec.s_schema.payload_columns = SyntheticPayload(kSPayloadBits[query - 2]);
  }
  return spec;
}

RealJoinSpec WorkloadY() {
  RealJoinSpec spec;
  spec.name = "Y";
  spec.t_r = 57119489;
  spec.t_s = 141312688;
  spec.t_rs = 1068159117;
  // 5.4x output blow-up from repeated keys on both sides. The paper does
  // not publish Y's input selectivity; we model ~35% of each table as
  // unmatched (plausible for a 9-join query with selections), which makes
  // the matched multiplicities 12 x 29 over ~3.07M distinct keys. This
  // satisfies every published total (tR, tS, tRS) and reproduces Figure
  // 11's key qualitative result: shuffled 4TJ beats hash join (paper: 28%
  // less traffic; here ~24%) because unmatched tuples cost it nothing
  // while consolidation absorbs the repeats.
  spec.r_multiplicity = 12;
  spec.s_multiplicity = 29;
  spec.matched_keys = spec.t_rs / (spec.r_multiplicity * spec.s_multiplicity);
  // Calibrated like X's: full intra-table collocation would give 2TJ a
  // 0.20 net ratio vs hash join; the paper's Table 2 shows 0.36, implying
  // about two thirds of the keys' repeats were stored together.
  spec.original_collocated_fraction = 0.67;
  spec.original_collocation = Collocation::kIntra;
  spec.impl_key_bytes = 4;
  spec.impl_count_bytes = 2;
  spec.impl_r_payload = 33;
  spec.impl_s_payload = 43;

  // Uncompressed variable-byte tuples: 37 bytes (R) and 47 bytes (S),
  // dominated by a 23-byte character column in S.
  // Variable-byte widths (base-100 digits + 2-byte NUMBER header) total
  // 37 bytes for R and 47 for S, with the 23-byte char column in S.
  spec.r_schema.name = "R";
  spec.r_schema.key_columns = {
      Numeric("KEY", spec.matched_keys, 99999999ULL)};  // 4+2 = 6 bytes.
  ColumnSpec r1 = Numeric("VAL", 10000000,
                          99999999999999999ULL);        // 17 digits: 9+2.
  ColumnSpec r2 = Numeric("AMT", 1000000,
                          999999999999999ULL);          // 15 digits: 8+2.
  ColumnSpec r3 = Numeric("QTY", 1000000,
                          999999999999999ULL);          // 15 digits: 8+2.
  spec.r_schema.payload_columns = {r1, r2, r3};         // 6+11+10+10 = 37.

  spec.s_schema.name = "S";
  spec.s_schema.key_columns = {
      Numeric("KEY", spec.matched_keys, 99999999ULL)};  // 6 bytes.
  ColumnSpec s_char;
  s_char.name = "NAME";
  s_char.char_bytes = 23;
  ColumnSpec s1 = Numeric("A", 1000000, 99999999999999ULL);  // 14 digits: 7+2.
  ColumnSpec s2 = Numeric("B", 1000000, 99999999999999ULL);  // 14 digits: 7+2.
  spec.s_schema.payload_columns = {s_char, s1, s2};  // 6+23+9+9 = 47.
  return spec;
}

Workload InstantiateReal(const RealJoinSpec& spec, uint32_t num_nodes,
                         uint64_t scale_divisor, bool original_order,
                         uint64_t seed) {
  TJ_CHECK_GT(scale_divisor, 0u);
  WorkloadSpec w;
  w.num_nodes = num_nodes;
  w.seed = seed;
  w.matched_keys = std::max<uint64_t>(1, spec.matched_keys / scale_divisor);
  w.r_multiplicity = spec.r_multiplicity;
  w.s_multiplicity = spec.s_multiplicity;
  uint64_t matched_r = spec.matched_keys * spec.r_multiplicity;
  uint64_t matched_s = spec.matched_keys * spec.s_multiplicity;
  w.r_unmatched =
      spec.t_r > matched_r ? (spec.t_r - matched_r) / scale_divisor : 0;
  w.s_unmatched =
      spec.t_s > matched_s ? (spec.t_s - matched_s) / scale_divisor : 0;
  w.r_payload = spec.impl_r_payload;
  w.s_payload = spec.impl_s_payload;
  if (original_order) {
    w.collocation = spec.original_collocation;
    w.collocated_fraction = spec.original_collocated_fraction;
    w.r_pattern = {spec.r_multiplicity};
    w.s_pattern = {spec.s_multiplicity};
  } else {
    w.collocation = Collocation::kRandom;
  }
  return GenerateWorkload(w);
}

}  // namespace tj
