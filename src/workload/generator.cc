#include "workload/generator.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace tj {

namespace {

constexpr uint64_t kRSeed = 0x52aabbccULL;  // 'R'
constexpr uint64_t kSSeed = 0x53ddeeffULL;  // 'S'

/// Picks `groups` distinct nodes out of n (groups <= n), uniformly.
std::vector<uint32_t> PickDistinctNodes(uint32_t n, size_t groups, Rng* rng) {
  TJ_CHECK_LE(groups, n);
  std::vector<uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  // Partial Fisher-Yates: the first `groups` entries are the sample.
  for (size_t i = 0; i < groups; ++i) {
    size_t j = i + static_cast<size_t>(rng->Below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(groups);
  return all;
}

/// Appends `multiplicity` copies of `key` to `table` according to the
/// pattern and the chosen group nodes.
void PlaceCopies(PartitionedTable* table, uint64_t table_seed, uint64_t key,
                 uint32_t multiplicity, const std::vector<uint32_t>& pattern,
                 const std::vector<uint32_t>& group_nodes, Rng* rng,
                 std::vector<uint8_t>* scratch) {
  scratch->resize(table->payload_width());
  uint64_t copy = 0;
  if (group_nodes.empty()) {
    // Random placement: each copy independent.
    for (uint32_t c = 0; c < multiplicity; ++c) {
      uint32_t node = static_cast<uint32_t>(rng->Below(table->num_nodes()));
      SynthesizePayload(table_seed, key, copy++, table->payload_width(),
                        scratch->data());
      table->node(node).Append(key, scratch->data());
    }
    return;
  }
  TJ_CHECK_EQ(pattern.size(), group_nodes.size());
  for (size_t g = 0; g < pattern.size(); ++g) {
    for (uint32_t c = 0; c < pattern[g]; ++c) {
      SynthesizePayload(table_seed, key, copy++, table->payload_width(),
                        scratch->data());
      table->node(group_nodes[g]).Append(key, scratch->data());
    }
  }
  TJ_CHECK_EQ(copy, multiplicity);
}

std::vector<uint32_t> NormalizePattern(std::vector<uint32_t> pattern,
                                       uint32_t multiplicity) {
  if (pattern.empty()) pattern.push_back(multiplicity);
  uint32_t total = 0;
  for (uint32_t g : pattern) total += g;
  TJ_CHECK_EQ(total, multiplicity) << "pattern must sum to the multiplicity";
  return pattern;
}

}  // namespace

Workload GenerateWorkload(const WorkloadSpec& spec) {
  TJ_CHECK_GT(spec.num_nodes, 0u);
  TJ_CHECK_GT(spec.r_multiplicity, 0u);
  TJ_CHECK_GT(spec.s_multiplicity, 0u);

  Workload w{PartitionedTable("R", spec.num_nodes, spec.r_payload),
             PartitionedTable("S", spec.num_nodes, spec.s_payload),
             spec.matched_keys * spec.r_multiplicity * spec.s_multiplicity};

  Rng rng(spec.seed);
  std::vector<uint8_t> scratch;

  std::vector<uint32_t> r_pattern;
  std::vector<uint32_t> s_pattern;
  if (spec.collocation != Collocation::kRandom) {
    r_pattern = NormalizePattern(spec.r_pattern, spec.r_multiplicity);
    s_pattern = NormalizePattern(spec.s_pattern, spec.s_multiplicity);
    TJ_CHECK_LE(r_pattern.size(), spec.num_nodes);
    TJ_CHECK_LE(s_pattern.size(), spec.num_nodes);
  }

  for (uint64_t k = 0; k < spec.matched_keys; ++k) {
    const uint64_t key = 1 + k;
    std::vector<uint32_t> r_nodes, s_nodes;
    Collocation collocation = spec.collocation;
    if (collocation != Collocation::kRandom &&
        !rng.Bernoulli(spec.collocated_fraction)) {
      collocation = Collocation::kRandom;
    }
    switch (collocation) {
      case Collocation::kRandom:
        break;  // Empty node lists: per-copy random placement.
      case Collocation::kIntra:
        r_nodes = PickDistinctNodes(spec.num_nodes, r_pattern.size(), &rng);
        s_nodes = PickDistinctNodes(spec.num_nodes, s_pattern.size(), &rng);
        break;
      case Collocation::kInter: {
        // S groups reuse R's nodes first, then fresh distinct ones.
        size_t groups = std::max(r_pattern.size(), s_pattern.size());
        std::vector<uint32_t> nodes =
            PickDistinctNodes(spec.num_nodes, groups, &rng);
        r_nodes.assign(nodes.begin(), nodes.begin() + r_pattern.size());
        s_nodes.assign(nodes.begin(), nodes.begin() + s_pattern.size());
        break;
      }
    }
    PlaceCopies(&w.r, kRSeed ^ spec.seed, key, spec.r_multiplicity, r_pattern,
                r_nodes, &rng, &scratch);
    PlaceCopies(&w.s, kSSeed ^ spec.seed, key, spec.s_multiplicity, s_pattern,
                s_nodes, &rng, &scratch);
  }

  // Unmatched keys live in disjoint ranges above the matched ones.
  uint64_t next_key = 1 + spec.matched_keys;
  for (uint64_t i = 0; i < spec.r_unmatched; ++i) {
    uint64_t key = next_key++;
    uint32_t node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
    scratch.resize(w.r.payload_width());
    SynthesizePayload(kRSeed ^ spec.seed, key, 0, w.r.payload_width(),
                      scratch.data());
    w.r.node(node).Append(key, scratch.data());
  }
  for (uint64_t i = 0; i < spec.s_unmatched; ++i) {
    uint64_t key = next_key++;
    uint32_t node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
    scratch.resize(w.s.payload_width());
    SynthesizePayload(kSSeed ^ spec.seed, key, 0, w.s.payload_width(),
                      scratch.data());
    w.s.node(node).Append(key, scratch.data());
  }
  return w;
}

Result<Workload> TryGenerateZipfWorkload(const ZipfWorkloadSpec& spec) {
  TJ_CHECK_GT(spec.num_nodes, 0u);
  TJ_CHECK_GT(spec.key_domain, 0u);
  Workload w{PartitionedTable("R", spec.num_nodes, spec.r_payload),
             PartitionedTable("S", spec.num_nodes, spec.s_payload), 0};
  Rng rng(spec.seed ^ 0x21bfULL);
  std::vector<uint8_t> scratch;

  // Per-key multiplicities, tracked to compute the exact output size and
  // to give every copy a distinct payload.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> counts;
  counts.reserve(spec.key_domain);

  // Sampling is const, so both tables share one sampler (and its
  // distribution setup) whenever their parameters agree; only distinct
  // thetas pay for a second instance. The shared key domain is fixed.
  const ZipfGenerator r_zipf(spec.key_domain, spec.r_theta);
  const ZipfGenerator s_zipf_distinct =
      spec.s_theta == spec.r_theta
          ? ZipfGenerator(1, 0.0)  // Placeholder; never sampled.
          : ZipfGenerator(spec.key_domain, spec.s_theta);
  const ZipfGenerator& s_zipf =
      spec.s_theta == spec.r_theta ? r_zipf : s_zipf_distinct;

  scratch.resize(std::max(spec.r_payload, spec.s_payload));
  for (uint64_t i = 0; i < spec.r_rows; ++i) {
    uint64_t key = 1 + r_zipf.Next(&rng);
    uint64_t copy = counts[key].first++;
    SynthesizePayload(kRSeed ^ spec.seed, key, copy, spec.r_payload,
                      scratch.data());
    uint32_t node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
    w.r.node(node).Append(key, scratch.data());
  }
  for (uint64_t i = 0; i < spec.s_rows; ++i) {
    uint64_t key = 1 + s_zipf.Next(&rng);
    uint64_t copy = counts[key].second++;
    SynthesizePayload(kSSeed ^ spec.seed, key, copy, spec.s_payload,
                      scratch.data());
    uint32_t node = static_cast<uint32_t>(rng.Below(spec.num_nodes));
    w.s.node(node).Append(key, scratch.data());
  }
  for (const auto& [key, rs] : counts) {
    // Under extreme skew one key's cartesian product alone can exceed
    // uint64; fail loudly rather than wrap and "verify" a bogus count.
    TJ_RETURN_IF_ERROR(
        AddOutputProduct(key, rs.first, rs.second, &w.expected_output_rows));
  }
  return w;
}

Status AddOutputProduct(uint64_t key, uint64_t r_count, uint64_t s_count,
                        uint64_t* total) {
  uint64_t product = 0;
  uint64_t sum = 0;
  if (__builtin_mul_overflow(r_count, s_count, &product) ||
      __builtin_add_overflow(*total, product, &sum)) {
    return Status::InvalidArgument(
        "zipf workload output cardinality overflows uint64 (key " +
        std::to_string(key) + ": " + std::to_string(r_count) + " x " +
        std::to_string(s_count) + " rows)");
  }
  *total = sum;
  return Status::OK();
}

Workload GenerateZipfWorkload(const ZipfWorkloadSpec& spec) {
  Result<Workload> w = TryGenerateZipfWorkload(spec);
  TJ_CHECK(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

void ShuffleTable(PartitionedTable* table, uint64_t seed) {
  Rng rng(seed ^ 0x5f0f5f0fULL);
  const uint32_t n = table->num_nodes();
  PartitionedTable shuffled(table->name(), n, table->payload_width());
  for (uint32_t node = 0; node < n; ++node) {
    const TupleBlock& block = table->node(node);
    for (uint64_t row = 0; row < block.size(); ++row) {
      uint32_t dst = static_cast<uint32_t>(rng.Below(n));
      shuffled.node(dst).AppendFrom(block, row);
    }
  }
  *table = std::move(shuffled);
}

ReplicatedWorkload ReplicateWorkload(const Workload& workload,
                                     uint32_t replication) {
  return ReplicatedWorkload{ReplicatedTable(&workload.r, replication),
                            ReplicatedTable(&workload.s, replication)};
}

}  // namespace tj
