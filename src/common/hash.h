// Hash functions used for partitioning, hash tables, and Bloom filters.
#ifndef TJ_COMMON_HASH_H_
#define TJ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace tj {

/// MurmurHash3 64-bit finalizer: a strong bijective mixer for integer keys.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Seeded variant. Distinct seeds give (practically) independent hashes,
/// which Bloom filters and the tracker/hash-partitioners rely on.
inline uint64_t HashKey(uint64_t key, uint64_t seed = 0) {
  return HashMix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Hash of a byte string (FNV-1a 64). Used for payload checksums.
inline uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ HashMix64(seed);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Node that "owns" a key: the hash partitioning rule used by both Grace
/// hash join and track join's tracker placement (hash(k) mod N).
inline uint32_t HashPartition(uint64_t key, uint32_t num_nodes) {
  return static_cast<uint32_t>(HashKey(key) % num_nodes);
}

}  // namespace tj

#endif  // TJ_COMMON_HASH_H_
