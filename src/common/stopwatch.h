// Wall-clock stopwatch for the per-step timing breakdowns (paper Tables 3/4).
#ifndef TJ_COMMON_STOPWATCH_H_
#define TJ_COMMON_STOPWATCH_H_

#include <chrono>

namespace tj {

/// Measures elapsed wall time in seconds. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tj

#endif  // TJ_COMMON_STOPWATCH_H_
