// Flat open-addressing hash containers for integer join keys.
//
// The tracker-side hot paths (row indexes, first-seen filters, per-key
// location tables) are keyed by uint64_t join keys and dominated by lookup
// and insert throughput. std::unordered_map pays a heap node per entry and
// a pointer chase per probe; these tables keep all slots in one contiguous
// array with a one-byte control sidecar (empty / full / tombstone), probe
// linearly from a MurmurHash3-mixed start slot, and grow by power-of-two
// rehash at 7/8 load. Erase writes a tombstone; inserts reuse the first
// tombstone on their probe path, and rehash drops tombstones entirely.
//
// Iteration (ForEach) walks slot order, which depends on the hash layout —
// like unordered_map, callers needing a canonical order must sort.
#ifndef TJ_COMMON_FLAT_TABLE_H_
#define TJ_COMMON_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace tj {

template <typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  /// Pre-sizes the table for `n` entries without intermediate rehashes.
  void Reserve(size_t n) { EnsureCapacity(n); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Returns the value for `key`, default-constructing it on first use.
  Value& operator[](uint64_t key) {
    EnsureCapacity(size_ + 1);
    size_t slot = FindOrInsertSlot(key);
    return slots_[slot].value;
  }

  Value* Find(uint64_t key) {
    size_t slot = FindSlot(key);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }
  const Value* Find(uint64_t key) const {
    size_t slot = FindSlot(key);
    return slot == kNoSlot ? nullptr : &slots_[slot].value;
  }
  bool Contains(uint64_t key) const { return FindSlot(key) != kNoSlot; }

  /// Removes `key` if present (tombstoning its slot). Returns whether a
  /// mapping was removed.
  bool Erase(uint64_t key) {
    size_t slot = FindSlot(key);
    if (slot == kNoSlot) return false;
    ctrl_[slot] = kTombstone;
    slots_[slot].value = Value();
    --size_;
    return true;
  }

  void Clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    for (auto& s : slots_) s.value = Value();
    size_ = 0;
    used_ = 0;
  }

  /// Calls fn(key, value) for every entry, in slot (hash-layout) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    Value value{};
  };

  static constexpr size_t kNoSlot = ~size_t{0};
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kMinCapacity = 16;

  size_t FindSlot(uint64_t key) const {
    if (slots_.empty()) return kNoSlot;
    const size_t mask = slots_.size() - 1;
    size_t i = HashKey(key) & mask;
    while (true) {
      if (ctrl_[i] == kEmpty) return kNoSlot;
      if (ctrl_[i] == kFull && slots_[i].key == key) return i;
      i = (i + 1) & mask;
    }
  }

  /// Probe for `key`; if absent, claim the first tombstone seen on the
  /// probe path (or the terminating empty slot). Capacity must be ensured.
  size_t FindOrInsertSlot(uint64_t key) {
    const size_t mask = slots_.size() - 1;
    size_t i = HashKey(key) & mask;
    size_t first_tombstone = kNoSlot;
    while (true) {
      if (ctrl_[i] == kFull) {
        if (slots_[i].key == key) return i;
      } else if (ctrl_[i] == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = i;
      } else {  // kEmpty: key is absent.
        size_t slot = first_tombstone != kNoSlot ? first_tombstone : i;
        if (slot == i) ++used_;  // Tombstone reuse keeps `used_` flat.
        ctrl_[slot] = kFull;
        slots_[slot].key = key;
        ++size_;
        return slot;
      }
      i = (i + 1) & mask;
    }
  }

  void EnsureCapacity(size_t n) {
    // Grow when full + tombstoned slots would exceed 7/8 of the array:
    // probes must always find an empty terminator.
    if (!slots_.empty() && (used_ + 1) * 8 <= slots_.size() * 7 &&
        n * 8 <= slots_.size() * 7) {
      return;
    }
    size_t target = kMinCapacity;
    size_t need = n > size_ ? n : size_;
    while (target * 7 < need * 8) target *= 2;
    Rehash(target);
  }

  void Rehash(size_t new_capacity) {
    TJ_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_capacity, Slot{});
    ctrl_.assign(new_capacity, kEmpty);
    used_ = size_;
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      size_t j = HashKey(old_slots[i].key) & mask;
      while (ctrl_[j] != kEmpty) j = (j + 1) & mask;
      ctrl_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> ctrl_;
  size_t size_ = 0;  ///< Live entries.
  size_t used_ = 0;  ///< Full + tombstoned slots (probe-length driver).
};

/// Set of uint64_t keys with the same layout and growth policy.
class FlatSet {
 public:
  void Reserve(size_t n) { map_.Reserve(n); }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Returns true if `key` was newly inserted.
  bool Insert(uint64_t key) {
    size_t before = map_.size();
    map_[key];
    return map_.size() != before;
  }

  bool Contains(uint64_t key) const { return map_.Contains(key); }
  bool Erase(uint64_t key) { return map_.Erase(key); }
  void Clear() { map_.Clear(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](uint64_t key, const Empty&) { fn(key); });
  }

 private:
  struct Empty {};
  FlatMap<Empty> map_;
};

}  // namespace tj

#endif  // TJ_COMMON_FLAT_TABLE_H_
