// Loser-tree k-way merge of sorted cursors.
//
// The tracker's merge phase consumes k per-source tracking streams that are
// already key-sorted (delta coding requires sorted keys, and senders
// aggregate over sorted blocks), so merging them is an O(n log k) streaming
// problem, not an O(n log n) sort. A loser tree holds one comparison per
// pop: each internal node caches the loser of its subtree's match, so
// replacing the winner replays exactly one root-to-leaf path.
//
// Cursor requirements:
//   bool Valid() const;  // false once exhausted
//   void Next();         // advance to the next element (Valid() required)
// plus whatever head accessors the comparator reads. Exhausted cursors lose
// every match; ties break toward the lower cursor index, which makes the
// pop order a strict total order and the merge deterministic.
#ifndef TJ_COMMON_KWAY_MERGE_H_
#define TJ_COMMON_KWAY_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace tj {

template <typename Cursor, typename Less>
class LoserTree {
 public:
  /// `cursors` is borrowed and must outlive the tree. `less` compares the
  /// heads of two valid cursors.
  LoserTree(std::vector<Cursor>* cursors, Less less = Less())
      : cursors_(cursors), less_(less), k_(cursors->size()) {
    if (k_ == 0) return;
    // Bottom-up build: leaves are the cursors, each internal node stores
    // the loser of its match and forwards the winner upward.
    std::vector<size_t> winner(2 * k_);
    tree_.assign(k_, 0);
    for (size_t j = 0; j < k_; ++j) winner[k_ + j] = j;
    for (size_t i = k_ - 1; i >= 1; --i) {
      size_t a = winner[2 * i];
      size_t b = winner[2 * i + 1];
      if (Beats(b, a)) {
        winner[i] = b;
        tree_[i] = a;
      } else {
        winner[i] = a;
        tree_[i] = b;
      }
    }
    tree_[0] = winner[1];
  }

  /// True when every cursor is exhausted (or there are none).
  bool Done() const { return k_ == 0 || !(*cursors_)[tree_[0]].Valid(); }

  /// The cursor currently holding the smallest head. Done() must be false.
  Cursor& Top() { return (*cursors_)[tree_[0]]; }
  size_t TopIndex() const { return tree_[0]; }

  /// Advances the winning cursor and replays its leaf-to-root path.
  /// Done() must be false.
  void Pop() {
    size_t w = tree_[0];
    (*cursors_)[w].Next();
    if (k_ == 1) return;
    for (size_t i = (k_ + w) / 2; i >= 1; i /= 2) {
      if (Beats(tree_[i], w)) {
        size_t loser = w;
        w = tree_[i];
        tree_[i] = loser;
      }
    }
    tree_[0] = w;
  }

 private:
  /// Strict total order over cursor indexes: valid beats exhausted, then
  /// the comparator on heads, then the lower index.
  bool Beats(size_t a, size_t b) const {
    const Cursor& ca = (*cursors_)[a];
    const Cursor& cb = (*cursors_)[b];
    if (!ca.Valid()) return false;
    if (!cb.Valid()) return true;
    if (less_(ca, cb)) return true;
    if (less_(cb, ca)) return false;
    return a < b;
  }

  std::vector<Cursor>* cursors_;
  Less less_;
  size_t k_;
  /// tree_[0] = overall winner; tree_[1..k-1] = loser at each internal node.
  std::vector<size_t> tree_;
};

}  // namespace tj

#endif  // TJ_COMMON_KWAY_MERGE_H_
