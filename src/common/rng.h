// Deterministic pseudo-random number generation.
//
// All synthetic data in the library is generated from explicit seeds so that
// experiments are exactly reproducible. SplitMix64 seeds Xoshiro256**, the
// workhorse generator.
#ifndef TJ_COMMON_RNG_H_
#define TJ_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace tj {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used for seeding and for
/// stateless "hash of an index" style value derivation.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256** by Blackman & Vigna: fast all-purpose generator with 256-bit
/// state. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the full state deterministically from one 64-bit seed.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) {
    TJ_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    TJ_CHECK_LE(lo, hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Zipf(theta) sampler over [0, n) using the rejection-inversion method of
/// Hörmann & Derflinger. theta = 0 degenerates to uniform: the sampler
/// detects it, skips the pow-based setup entirely, and draws straight from
/// Rng::Below (one unbiased integer draw, no rejection loop).
///
/// Sampling never mutates the generator (all distribution state is fixed
/// at construction), so one instance can be shared by any number of
/// streams that use the same (n, theta) — e.g. both tables of a workload.
class ZipfGenerator {
 public:
  /// Precondition: n > 0, theta >= 0, theta != 1 handled (theta == 1 uses a
  /// nearby value to avoid the harmonic singularity in closed forms).
  ZipfGenerator(uint64_t n, double theta);

  /// Samples a value in [0, n); smaller values are more likely for theta > 0.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  bool uniform_ = false;  ///< theta == 0: bypass rejection-inversion.
  double h_x1_ = 0;
  double h_n_ = 0;
  double s_ = 0;
};

}  // namespace tj

#endif  // TJ_COMMON_RNG_H_
