// Status and Result<T>: lightweight error handling without exceptions.
//
// The library reports recoverable errors through Status / Result<T> return
// values (RocksDB-style); programming errors abort via CHECK (logging.h).
#ifndef TJ_COMMON_STATUS_H_
#define TJ_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace tj {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace tj

/// Propagates a non-OK Status to the caller.
#define TJ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::tj::Status _tj_status = (expr);             \
    if (!_tj_status.ok()) return _tj_status;      \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define TJ_ASSIGN_OR_RETURN(lhs, expr)            \
  auto _tj_result_##__LINE__ = (expr);            \
  if (!_tj_result_##__LINE__.ok())                \
    return _tj_result_##__LINE__.status();        \
  lhs = std::move(_tj_result_##__LINE__).value();

#endif  // TJ_COMMON_STATUS_H_
