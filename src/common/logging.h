// Minimal logging and invariant checking.
//
// CHECK-style macros abort on programming errors; LOG writes a timestamped
// line to stderr. These are intentionally tiny: the library has no external
// dependencies.
#ifndef TJ_COMMON_LOGGING_H_
#define TJ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tj {
namespace internal {

enum class LogLevel { kDebug, kInfo, kWarning, kError, kFatal };

/// Accumulates a log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Returns the current minimum level that is emitted (default kInfo).
LogLevel GetLogLevel();
/// Sets the minimum emitted level; returns the previous one.
LogLevel SetLogLevel(LogLevel level);

}  // namespace internal
}  // namespace tj

#define TJ_LOG(level)                                                       \
  ::tj::internal::LogMessage(::tj::internal::LogLevel::k##level, __FILE__, \
                             __LINE__)

#define TJ_CHECK(cond)                                              \
  if (!(cond))                                                      \
  TJ_LOG(Fatal) << "Check failed: " #cond " "

#define TJ_CHECK_OP(op, a, b)                                             \
  if (!((a)op(b)))                                                        \
  TJ_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
                << (b) << ") "

#define TJ_CHECK_EQ(a, b) TJ_CHECK_OP(==, a, b)
#define TJ_CHECK_NE(a, b) TJ_CHECK_OP(!=, a, b)
#define TJ_CHECK_LT(a, b) TJ_CHECK_OP(<, a, b)
#define TJ_CHECK_LE(a, b) TJ_CHECK_OP(<=, a, b)
#define TJ_CHECK_GT(a, b) TJ_CHECK_OP(>, a, b)
#define TJ_CHECK_GE(a, b) TJ_CHECK_OP(>=, a, b)

/// Aborts if a Status expression is not OK.
#define TJ_CHECK_OK(expr)                                      \
  do {                                                         \
    ::tj::Status _tj_st = (expr);                              \
    if (!_tj_st.ok())                                          \
      TJ_LOG(Fatal) << "Status not OK: " << _tj_st.ToString(); \
  } while (0)

#endif  // TJ_COMMON_LOGGING_H_
