// Fixed-size thread pool with a parallel-for helper.
//
// The simulated cluster runs each logical node's phase work as a pool task,
// mirroring the paper's "once per node" process model while staying inside
// one OS process.
#ifndef TJ_COMMON_THREAD_POOL_H_
#define TJ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tj {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means std::thread::hardware_concurrency,
  /// at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to the pool has finished — a
  /// whole-pool drain, including tasks other threads submitted.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing across the pool, and waits
  /// for exactly this batch: concurrent ParallelFor calls (or unrelated
  /// Submits) do not extend the wait. The calling thread participates in
  /// the batch, so nesting (a pool task calling ParallelFor on its own
  /// pool) cannot deadlock even with every worker busy.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace tj

#endif  // TJ_COMMON_THREAD_POOL_H_
