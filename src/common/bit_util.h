// Bit-level helpers shared by the encoding and cost-model layers.
#ifndef TJ_COMMON_BIT_UTIL_H_
#define TJ_COMMON_BIT_UTIL_H_

#include <cstdint>

namespace tj {

/// Number of bits needed to represent values in [0, n) (i.e. n distinct
/// codes). CeilLog2(0) and CeilLog2(1) are 1: even a single distinct value
/// occupies one bit in a packed stream.
inline uint32_t CeilLog2(uint64_t n) {
  if (n <= 2) return 1;
  uint32_t bits = 64 - static_cast<uint32_t>(__builtin_clzll(n - 1));
  return bits;
}

/// Bits needed to represent the value v itself (v fits in BitWidth(v) bits).
inline uint32_t BitWidth(uint64_t v) {
  if (v == 0) return 1;
  return 64 - static_cast<uint32_t>(__builtin_clzll(v));
}

/// Rounds a bit count up to whole bytes.
inline uint32_t BitsToBytes(uint32_t bits) { return (bits + 7) / 8; }

/// Rounds a bit count up to a "fixed byte" machine width: 1, 2, 4 or 8
/// bytes. This models the paper's fixed-byte encoding scheme (Figure 7).
inline uint32_t BitsToFixedBytes(uint32_t bits) {
  if (bits <= 8) return 1;
  if (bits <= 16) return 2;
  if (bits <= 32) return 4;
  return 8;
}

/// True if v is a power of two (v > 0).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v > 0; result saturates at 2^63).
inline uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  return 1ULL << BitWidth(v - 1);
}

}  // namespace tj

#endif  // TJ_COMMON_BIT_UTIL_H_
