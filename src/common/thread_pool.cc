#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <optional>

#include "obs/trace.h"

namespace tj {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The batch span covers submit through last-item-done on the calling
  // thread; items run by helpers open their own spans if instrumented.
  std::optional<TraceSpan> batch_span;
  if (Tracer::enabled()) {
    batch_span.emplace("pool", "ParallelFor", static_cast<int64_t>(n));
  }
  // Waiting is batch-scoped: each ParallelFor waits on its own latch, so
  // concurrent batches (or a batch racing an unrelated Submit) never block
  // on each other's work. The whole-pool drain stays available as Wait().
  //
  // Completion is counted in *items done*, not helper tasks finished, and
  // the calling thread claims items too. Together these make nested calls
  // (a pool task running its own ParallelFor) deadlock-free: even when
  // every worker is blocked inside an outer batch, the caller drains its
  // whole batch by itself, and the queued helper tasks — which may then
  // never be scheduled before the batch ends — find it exhausted and
  // return without being waited on.
  struct Batch {
    std::atomic<size_t> next{0};
    std::atomic<size_t> items_done{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto batch = std::make_shared<Batch>();
  // A claim loop shared by helpers and the caller. Capturing &fn in the
  // helpers is safe: once all n items are claimed, next only returns >= n,
  // so a helper running after ParallelFor returned never touches fn.
  auto run_batch = [batch, n](const std::function<void(size_t)>& f) {
    size_t i;
    while ((i = batch->next.fetch_add(1)) < n) {
      f(i);
      if (batch->items_done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(batch->mu);
        batch->done.notify_all();
      }
    }
  };
  size_t helpers = std::min(n, threads_.size());
  for (size_t w = 0; w < helpers; ++w) {
    Submit([run_batch, &fn] { run_batch(fn); });
  }
  run_batch(fn);
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done.wait(lock,
                   [&batch, n] { return batch->items_done.load() == n; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tj
