#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace tj {
namespace internal {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

LogLevel SetLogLevel(LogLevel level) {
  return g_min_level.exchange(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace tj
