// Growable byte buffer plus little-endian reader/writer cursors.
//
// Every message that crosses the simulated network is serialized through
// these, so the byte counts the traffic accountant reports are the real
// serialized sizes.
#ifndef TJ_COMMON_BYTE_BUFFER_H_
#define TJ_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace tj {

using ByteBuffer = std::vector<uint8_t>;

/// Appends fixed- and variable-width little-endian integers to a ByteBuffer.
class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer* out) : out_(out) { TJ_CHECK(out != nullptr); }

  /// Writes the low `width` bytes of v (width in [0,8]).
  void PutUint(uint64_t v, uint32_t width) {
    TJ_CHECK_LE(width, 8u);
    for (uint32_t i = 0; i < width; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutUint(v, 2); }
  void PutU32(uint32_t v) { PutUint(v, 4); }
  void PutU64(uint64_t v) { PutUint(v, 8); }

  void PutBytes(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }

  size_t size() const { return out_->size(); }

 private:
  ByteBuffer* out_;
};

/// Reads little-endian integers from a byte range. Out-of-bounds reads are
/// programming errors and abort.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const ByteBuffer& buf)
      : ByteReader(buf.data(), buf.size()) {}

  /// Reads a `width`-byte little-endian unsigned integer (width in [0,8]).
  uint64_t GetUint(uint32_t width) {
    TJ_CHECK_LE(width, 8u);
    TJ_CHECK_LE(pos_ + width, size_);
    uint64_t v = 0;
    for (uint32_t i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return v;
  }

  uint8_t GetU8() { return static_cast<uint8_t>(GetUint(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetUint(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetUint(4)); }
  uint64_t GetU64() { return GetUint(8); }

  /// Copies `size` bytes into `out`.
  void GetBytes(void* out, size_t size) {
    TJ_CHECK_LE(pos_ + size, size_);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  /// Pointer to the current position without consuming.
  const uint8_t* Current() const { return data_ + pos_; }

  /// Advances the cursor by `size` bytes.
  void Skip(size_t size) {
    TJ_CHECK_LE(pos_ + size, size_);
    pos_ += size;
  }

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace tj

#endif  // TJ_COMMON_BYTE_BUFFER_H_
