#include "common/rng.h"

#include <cmath>

namespace tj {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  TJ_CHECK_GT(n, 0u);
  TJ_CHECK_GE(theta, 0.0);
  if (theta_ == 0.0) {
    uniform_ = true;
    return;
  }
  if (std::fabs(theta_ - 1.0) < 1e-9) theta_ = 1.0 + 1e-9;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfGenerator::H(double x) const {
  // Antiderivative of x^-theta.
  return std::pow(x, 1.0 - theta_) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  return std::pow((1.0 - theta_) * x, 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  if (uniform_) return rng->Below(n_);
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
      return k - 1;  // Map to [0, n).
    }
  }
}

}  // namespace tj
