#include "encoding/prefix_group.h"

#include <algorithm>

#include "common/logging.h"
#include "encoding/bitpack.h"
#include "encoding/varint.h"

namespace tj {

namespace {

void CheckParams(uint32_t width_bits, uint32_t prefix_bits) {
  TJ_CHECK_GE(width_bits, 1u);
  TJ_CHECK_LE(width_bits, 64u);
  TJ_CHECK_LT(prefix_bits, width_bits);
}

uint64_t SuffixMask(uint32_t suffix_bits) {
  return suffix_bits == 64 ? ~0ULL : ((1ULL << suffix_bits) - 1);
}

// suffix_bits equals width_bits when prefix_bits is 0 and can then be 64;
// a shift by 64 is undefined, so the degenerate case is spelled out.
uint64_t PrefixOf(uint64_t value, uint32_t suffix_bits) {
  return suffix_bits == 64 ? 0 : value >> suffix_bits;
}

uint64_t Reassemble(uint64_t prefix, uint64_t suffix, uint32_t suffix_bits) {
  return suffix_bits == 64 ? suffix : (prefix << suffix_bits) | suffix;
}

}  // namespace

void PrefixGroupEncode(std::vector<uint64_t> values, uint32_t width_bits,
                       uint32_t prefix_bits, ByteBuffer* out) {
  CheckParams(width_bits, prefix_bits);
  std::sort(values.begin(), values.end());
  const uint32_t suffix_bits = width_bits - prefix_bits;
  EncodeLeb128(values.size(), out);
  BitPacker packer(out);
  size_t i = 0;
  while (i < values.size()) {
    uint64_t prefix = PrefixOf(values[i], suffix_bits);
    size_t j = i;
    while (j < values.size() && PrefixOf(values[j], suffix_bits) == prefix) ++j;
    if (prefix_bits > 0) packer.Put(prefix, prefix_bits);
    // Group length as a bit-packed LEB-style count would complicate the
    // stream; a full 32-bit count would bloat it. Use width_bits as the
    // count width: a group can never exceed the suffix domain... it can
    // (duplicates), so use 32 bits which is exact and simple.
    packer.Put(j - i, 32);
    for (size_t k = i; k < j; ++k) {
      packer.Put(values[k] & SuffixMask(suffix_bits), suffix_bits);
    }
    i = j;
  }
}

std::vector<uint64_t> PrefixGroupDecode(ByteReader* in, uint32_t width_bits,
                                        uint32_t prefix_bits) {
  CheckParams(width_bits, prefix_bits);
  const uint32_t suffix_bits = width_bits - prefix_bits;
  uint64_t total = DecodeLeb128(in);
  std::vector<uint64_t> values;
  values.reserve(total);
  BitUnpacker unpacker(in->Current(), in->remaining());
  while (values.size() < total) {
    uint64_t prefix = prefix_bits > 0 ? unpacker.Get(prefix_bits) : 0;
    uint64_t count = unpacker.Get(32);
    for (uint64_t k = 0; k < count; ++k) {
      values.push_back(Reassemble(prefix, unpacker.Get(suffix_bits),
                                  suffix_bits));
    }
  }
  in->Skip(unpacker.bytes_consumed());
  return values;
}

Status TryPrefixGroupDecode(ByteReader* in, uint32_t width_bits,
                            uint32_t prefix_bits, std::vector<uint64_t>* out) {
  CheckParams(width_bits, prefix_bits);
  const uint32_t suffix_bits = width_bits - prefix_bits;
  out->clear();
  uint64_t total = 0;
  TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &total));
  BitUnpacker unpacker(in->Current(), in->remaining());
  // Each value costs at least suffix_bits (suffix_bits >= 1), so an honest
  // total can never exceed the remaining bit budget.
  if (total > unpacker.bits_remaining() / suffix_bits) {
    return Status::Corruption("prefix-group total exceeds payload");
  }
  out->reserve(total);
  while (out->size() < total) {
    if (unpacker.bits_remaining() < prefix_bits + 32) {
      return Status::Corruption("truncated prefix-group header");
    }
    uint64_t prefix = prefix_bits > 0 ? unpacker.Get(prefix_bits) : 0;
    uint64_t count = unpacker.Get(32);
    if (count > total - out->size()) {
      return Status::Corruption("prefix-group count exceeds declared total");
    }
    if (count > unpacker.bits_remaining() / suffix_bits) {
      return Status::Corruption("prefix-group count exceeds payload");
    }
    for (uint64_t k = 0; k < count; ++k) {
      out->push_back(Reassemble(prefix, unpacker.Get(suffix_bits),
                                suffix_bits));
    }
  }
  in->Skip(unpacker.bytes_consumed());
  return Status::OK();
}

uint64_t PrefixGroupEncodedSize(std::vector<uint64_t> values,
                                uint32_t width_bits, uint32_t prefix_bits) {
  CheckParams(width_bits, prefix_bits);
  std::sort(values.begin(), values.end());
  const uint32_t suffix_bits = width_bits - prefix_bits;
  uint64_t bits = 0;
  size_t i = 0;
  while (i < values.size()) {
    uint64_t prefix = PrefixOf(values[i], suffix_bits);
    size_t j = i;
    while (j < values.size() && PrefixOf(values[j], suffix_bits) == prefix) ++j;
    bits += prefix_bits + 32 + (j - i) * suffix_bits;
    i = j;
  }
  return Leb128Size(values.size()) + (bits + 7) / 8;
}

uint32_t BestPrefixBits(const std::vector<uint64_t>& values,
                        uint32_t width_bits) {
  uint32_t best = 0;
  uint64_t best_size = ~0ULL;
  for (uint32_t p = 0; p < width_bits; ++p) {
    uint64_t size = PrefixGroupEncodedSize(values, width_bits, p);
    if (size < best_size) {
      best_size = size;
      best = p;
    }
  }
  return best;
}

}  // namespace tj
