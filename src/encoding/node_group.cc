#include "encoding/node_group.h"

#include <algorithm>

#include "common/flat_table.h"
#include "encoding/varint.h"

namespace tj {

void NodeGroupEncode(std::vector<KeyNodePair> pairs, uint32_t key_bytes,
                     ByteBuffer* out) {
  // Flat table for grouping; the wire format orders groups by node, so emit
  // over an explicitly sorted node list (byte-identical to the former
  // ordered-map implementation).
  FlatMap<std::vector<uint64_t>> groups;
  for (const auto& p : pairs) groups[p.node].push_back(p.key);
  std::vector<uint32_t> nodes;
  nodes.reserve(groups.size());
  groups.ForEach([&](uint64_t node, const std::vector<uint64_t>&) {
    nodes.push_back(static_cast<uint32_t>(node));
  });
  std::sort(nodes.begin(), nodes.end());
  EncodeLeb128(groups.size(), out);
  ByteWriter writer(out);
  for (uint32_t node : nodes) {
    std::vector<uint64_t>& keys = *groups.Find(node);
    std::sort(keys.begin(), keys.end());
    EncodeLeb128(node, out);
    EncodeLeb128(keys.size(), out);
    for (uint64_t k : keys) writer.PutUint(k, key_bytes);
  }
}

std::vector<KeyNodePair> NodeGroupDecode(ByteReader* in, uint32_t key_bytes) {
  uint64_t num_groups = DecodeLeb128(in);
  std::vector<KeyNodePair> pairs;
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint32_t node = static_cast<uint32_t>(DecodeLeb128(in));
    uint64_t count = DecodeLeb128(in);
    for (uint64_t i = 0; i < count; ++i) {
      pairs.push_back(KeyNodePair{in->GetUint(key_bytes), node});
    }
  }
  return pairs;
}

Status TryNodeGroupDecode(ByteReader* in, uint32_t key_bytes,
                          std::vector<KeyNodePair>* out) {
  out->clear();
  uint64_t num_groups = 0;
  TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &num_groups));
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint64_t node = 0;
    uint64_t count = 0;
    TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &node));
    TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &count));
    if (node > ~0u) return Status::Corruption("node-group label overflows");
    if (count > in->remaining() / key_bytes) {
      return Status::Corruption("node-group count exceeds payload");
    }
    for (uint64_t i = 0; i < count; ++i) {
      out->push_back(
          KeyNodePair{in->GetUint(key_bytes), static_cast<uint32_t>(node)});
    }
  }
  if (!in->Done()) return Status::Corruption("trailing bytes in node groups");
  return Status::OK();
}

uint64_t NodeGroupEncodedSize(const std::vector<KeyNodePair>& pairs,
                              uint32_t key_bytes) {
  // The size is a sum over groups, so iteration order is irrelevant here.
  FlatMap<uint64_t> counts;
  for (const auto& p : pairs) ++counts[p.node];
  uint64_t bytes = Leb128Size(counts.size());
  counts.ForEach([&](uint64_t node, const uint64_t& count) {
    bytes += Leb128Size(node) + Leb128Size(count) + count * key_bytes;
  });
  return bytes;
}

}  // namespace tj
