// Column encoding schemes and width models (paper Figures 7/8: fixed-byte,
// variable-byte, dictionary).
#ifndef TJ_ENCODING_ENCODING_H_
#define TJ_ENCODING_ENCODING_H_

#include <cstdint>
#include <string>

#include "common/bit_util.h"
#include "encoding/varint.h"

namespace tj {

/// The three physical encodings the paper evaluates on workload X.
enum class EncodingScheme : uint8_t {
  /// Dictionary codes rounded up to 1/2/4/8 whole bytes.
  kFixedByte,
  /// Base-100 variable byte encoding of the raw NUMBER values (footnote 1).
  kVariableByte,
  /// Bit-packed dictionary codes using exactly ceil(log2(distinct)) bits —
  /// the optimal scheme for unordered distinct values (Figure 9).
  kDictionary,
};

const char* EncodingSchemeName(EncodingScheme scheme);

/// Width in bits of one value of a column under `scheme`.
///
/// `dict_bits` is the compacted dictionary code width
/// (ceil(log2(distinct_values))); `avg_raw_bytes_x100` is the average
/// base-100 encoded byte length of the column's raw values scaled by 100
/// (variable-byte width depends on value magnitude, not distinct count).
/// Returns a width scaled by 100 to preserve fractional averages; divide by
/// 100 for bits-per-value.
uint64_t EncodedBitsX100(EncodingScheme scheme, uint32_t dict_bits,
                         uint32_t avg_raw_bytes_x100);

/// Convenience: average base-100 bytes (×100) for values uniform in
/// [min_value, max_value]. Exact under uniformity.
uint32_t AverageBase100BytesX100(uint64_t min_value, uint64_t max_value);

}  // namespace tj

#endif  // TJ_ENCODING_ENCODING_H_
