// Fixed-width bit packing.
//
// Dictionary-encoded columns travel over the simulated network as packed
// n-bit codes; this is what makes the "Dictionary Encoding" bars of Figure 7
// smaller than the fixed-byte ones.
#ifndef TJ_ENCODING_BITPACK_H_
#define TJ_ENCODING_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/logging.h"

namespace tj {

/// Appends values of a fixed bit width to a byte buffer, LSB-first.
class BitPacker {
 public:
  explicit BitPacker(ByteBuffer* out) : out_(out) { TJ_CHECK(out != nullptr); }
  ~BitPacker() { Flush(); }

  /// Appends the low `bits` bits of v (bits in [1,64]).
  void Put(uint64_t v, uint32_t bits) {
    TJ_CHECK_GE(bits, 1u);
    TJ_CHECK_LE(bits, 64u);
    if (bits < 64) {
      TJ_CHECK_EQ(v >> bits, 0u);
    }
    while (bits > 0) {
      uint32_t take = std::min(bits, 32u);  // Avoid overflowing the staging word.
      acc_ |= (v & ((take == 64 ? ~0ULL : ((1ULL << take) - 1)))) << acc_bits_;
      uint32_t stored = std::min(take, 64 - acc_bits_);
      acc_bits_ += stored;
      if (acc_bits_ == 64) {
        EmitWord();
        uint32_t rest = take - stored;
        if (rest > 0) {
          acc_ = (v >> stored) & ((1ULL << rest) - 1);
          acc_bits_ = rest;
        }
      }
      v >>= take;
      bits -= take;
    }
  }

  /// Writes any buffered partial byte(s). Called automatically on destruction.
  void Flush() {
    while (acc_bits_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      acc_bits_ = acc_bits_ >= 8 ? acc_bits_ - 8 : 0;
    }
    acc_ = 0;
  }

 private:
  void EmitWord() {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(acc_ >> (8 * i)));
    }
    acc_ = 0;
    acc_bits_ = 0;
  }

  ByteBuffer* out_;
  uint64_t acc_ = 0;
  uint32_t acc_bits_ = 0;
};

/// Reads fixed-width values written by BitPacker.
class BitUnpacker {
 public:
  BitUnpacker(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit BitUnpacker(const ByteBuffer& buf)
      : BitUnpacker(buf.data(), buf.size()) {}

  /// Reads the next `bits`-bit value (bits in [1,64]).
  uint64_t Get(uint32_t bits) {
    TJ_CHECK_GE(bits, 1u);
    TJ_CHECK_LE(bits, 64u);
    uint64_t v = 0;
    uint32_t got = 0;
    while (got < bits) {
      if (acc_bits_ == 0) {
        TJ_CHECK_LT(pos_, size_);
        acc_ = data_[pos_++];
        acc_bits_ = 8;
      }
      uint32_t take = std::min(bits - got, acc_bits_);
      v |= (acc_ & ((1ULL << take) - 1)) << got;
      acc_ >>= take;
      acc_bits_ -= take;
      got += take;
    }
    return v;
  }

  /// Total bytes consumed so far (including the partially-consumed byte).
  size_t bytes_consumed() const { return pos_; }

  /// Bits still readable without tripping the bounds check. Lets untrusted
  /// decoders validate counts before calling Get.
  uint64_t bits_remaining() const {
    return (size_ - pos_) * 8ULL + acc_bits_;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  uint32_t acc_bits_ = 0;
};

/// Exact packed size in bytes of `count` values of `bits` bits each.
inline uint64_t PackedBytes(uint64_t count, uint32_t bits) {
  return (count * bits + 7) / 8;
}

}  // namespace tj

#endif  // TJ_ENCODING_BITPACK_H_
