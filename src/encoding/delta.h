// Delta encoding of sorted key streams (paper Section 2.4).
//
// Track join imposes no message order beyond its phase barriers, so senders
// are free to sort key columns before transmission and delta-code them —
// the simplest of the traffic-compression layers the paper describes.
#ifndef TJ_ENCODING_DELTA_H_
#define TJ_ENCODING_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

/// Appends `values` (will be sorted internally if `presorted` is false) as
/// first value + LEB128 gaps. Returns the number of encoded values.
uint64_t DeltaEncode(std::vector<uint64_t> values, bool presorted,
                     ByteBuffer* out);

/// Decodes a stream produced by DeltaEncode. The values come back sorted.
std::vector<uint64_t> DeltaDecode(ByteReader* in);

/// Bounds-checked decode for untrusted input: a truncated stream or a count
/// that exceeds what the remaining bytes could possibly hold returns
/// Status::Corruption (and never aborts or over-reserves).
Status TryDeltaDecode(ByteReader* in, std::vector<uint64_t>* out);

/// Exact encoded size in bytes without materializing the buffer.
uint64_t DeltaEncodedSize(std::vector<uint64_t> values, bool presorted);

}  // namespace tj

#endif  // TJ_ENCODING_DELTA_H_
