#include "encoding/dictionary.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/logging.h"

namespace tj {

Dictionary Dictionary::Build(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict;
  dict.sorted_values_ = std::move(values);
  return dict;
}

Result<uint32_t> Dictionary::Encode(uint64_t value) const {
  auto it = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), value);
  if (it == sorted_values_.end() || *it != value) {
    return Status::NotFound("value not in dictionary");
  }
  return static_cast<uint32_t>(it - sorted_values_.begin());
}

uint64_t Dictionary::Decode(uint32_t code) const {
  TJ_CHECK_LT(code, sorted_values_.size());
  return sorted_values_[code];
}

bool Dictionary::Contains(uint64_t value) const {
  return std::binary_search(sorted_values_.begin(), sorted_values_.end(), value);
}

uint32_t Dictionary::code_bits() const {
  return CeilLog2(std::max<uint64_t>(size(), 1));
}

}  // namespace tj
