#include "encoding/dictionary.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/logging.h"
#include "encoding/varint.h"

namespace tj {

Dictionary Dictionary::Build(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict;
  dict.sorted_values_ = std::move(values);
  return dict;
}

Result<uint32_t> Dictionary::Encode(uint64_t value) const {
  auto it = std::lower_bound(sorted_values_.begin(), sorted_values_.end(), value);
  if (it == sorted_values_.end() || *it != value) {
    return Status::NotFound("value not in dictionary");
  }
  return static_cast<uint32_t>(it - sorted_values_.begin());
}

uint64_t Dictionary::Decode(uint32_t code) const {
  TJ_CHECK_LT(code, sorted_values_.size());
  return sorted_values_[code];
}

bool Dictionary::Contains(uint64_t value) const {
  return std::binary_search(sorted_values_.begin(), sorted_values_.end(), value);
}

void Dictionary::Serialize(ByteBuffer* out) const {
  EncodeLeb128(sorted_values_.size(), out);
  uint64_t prev = 0;
  for (size_t i = 0; i < sorted_values_.size(); ++i) {
    EncodeLeb128(sorted_values_[i] - prev, out);
    prev = sorted_values_[i];
  }
}

Result<Dictionary> Dictionary::Deserialize(const ByteBuffer& page) {
  ByteReader reader(page);
  uint64_t n = 0;
  TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &n));
  if (n > reader.remaining()) {
    return Status::Corruption("dictionary count exceeds page");
  }
  Dictionary dict;
  dict.sorted_values_.reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t gap = 0;
    TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &gap));
    if (i > 0 && gap == 0) {
      return Status::Corruption("dictionary values not strictly increasing");
    }
    if (gap > ~0ULL - prev) {
      return Status::Corruption("dictionary value overflows 64 bits");
    }
    prev += gap;
    dict.sorted_values_.push_back(prev);
  }
  if (!reader.Done()) {
    return Status::Corruption("trailing bytes after dictionary page");
  }
  return dict;
}

uint32_t Dictionary::code_bits() const {
  return CeilLog2(std::max<uint64_t>(size(), 1));
}

}  // namespace tj
