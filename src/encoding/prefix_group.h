// Radix-prefix grouping codec (paper Section 2.4).
//
// "Perform partitioning at the source to create common prefixes. For
// instance, we can radix partition the first p bits and pack (w−p)-bit
// suffixes with a common prefix." Each group is emitted once as
//   <prefix : p bits> <count : LEB128> <suffixes : count × (w−p) bits>
// which amortizes the prefix over all values that share it.
#ifndef TJ_ENCODING_PREFIX_GROUP_H_
#define TJ_ENCODING_PREFIX_GROUP_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

/// Encodes `values`, each of `width_bits` significant bits, grouping by the
/// top `prefix_bits` bits. Values are sorted internally (grouping requires
/// it); decoding returns them sorted. Preconditions:
///   1 <= width_bits <= 64, 0 <= prefix_bits < width_bits.
void PrefixGroupEncode(std::vector<uint64_t> values, uint32_t width_bits,
                       uint32_t prefix_bits, ByteBuffer* out);

/// Decodes a stream produced by PrefixGroupEncode with the same parameters.
std::vector<uint64_t> PrefixGroupDecode(ByteReader* in, uint32_t width_bits,
                                        uint32_t prefix_bits);

/// Bounds-checked decode for untrusted input: truncated streams, totals that
/// exceed what the remaining bits could hold, and group counts past the
/// declared total return Status::Corruption (and never abort or over-read).
Status TryPrefixGroupDecode(ByteReader* in, uint32_t width_bits,
                            uint32_t prefix_bits, std::vector<uint64_t>* out);

/// Exact encoded size in bytes.
uint64_t PrefixGroupEncodedSize(std::vector<uint64_t> values,
                                uint32_t width_bits, uint32_t prefix_bits);

/// Picks the prefix width in [0, width_bits) minimizing encoded size for the
/// given (sorted or unsorted) values, by trying all widths.
uint32_t BestPrefixBits(const std::vector<uint64_t>& values,
                        uint32_t width_bits);

}  // namespace tj

#endif  // TJ_ENCODING_PREFIX_GROUP_H_
