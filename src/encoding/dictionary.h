// Dictionary encoding of integer columns.
//
// Modern analytical systems keep distinct-value dictionaries per column
// (paper Section 2.4); joins proceed on the fixed-bit dictionary codes and
// never dereference the dictionary (Section 4.1: "the join can proceed
// solely on compressed data"). A compacted dictionary uses the minimum
// number of bits for the distinct values of the intermediate relation —
// the "optimal dictionary compression" of Figure 9.
#ifndef TJ_ENCODING_DICTIONARY_H_
#define TJ_ENCODING_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

/// An order-preserving dictionary over 64-bit values.
class Dictionary {
 public:
  /// Builds from an arbitrary (possibly duplicated, unsorted) value set.
  static Dictionary Build(std::vector<uint64_t> values);

  /// Code of `value`, or NotFound if it was not in the build set.
  Result<uint32_t> Encode(uint64_t value) const;

  /// Value of `code`. Precondition: code < size().
  uint64_t Decode(uint32_t code) const;

  /// True if `value` is present.
  bool Contains(uint64_t value) const;

  /// Number of distinct values.
  uint64_t size() const { return sorted_values_.size(); }

  /// Bits per code with optimal (compacted) packing: ceil(log2(size)).
  uint32_t code_bits() const;

  /// The sorted distinct values.
  const std::vector<uint64_t>& values() const { return sorted_values_; }

  /// Appends a self-describing page: LEB128 count, then the sorted distinct
  /// values as LEB128 gaps (strictly positive after the first).
  void Serialize(ByteBuffer* out) const;

  /// Parses a page written by Serialize. Truncated input, counts that
  /// exceed the payload, non-strictly-increasing values and trailing bytes
  /// all return Status::Corruption — a bit-flipped page never aborts and
  /// never yields an out-of-order dictionary.
  static Result<Dictionary> Deserialize(const ByteBuffer& page);

 private:
  std::vector<uint64_t> sorted_values_;
};

}  // namespace tj

#endif  // TJ_ENCODING_DICTIONARY_H_
