// Node-grouped location messages (paper Section 2.4, last paragraph).
//
// Track join's schedule messages are logically <key, node> pairs. Grouping
// them by node lets the sender emit each node label once followed by all
// keys destined for it: "we avoid sending the node part in messages
// containing key and node pairs by sending many keys with a single node
// label after partitioning by node."
#ifndef TJ_ENCODING_NODE_GROUP_H_
#define TJ_ENCODING_NODE_GROUP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

/// A location message: join key plus the node it refers to.
struct KeyNodePair {
  uint64_t key;
  uint32_t node;

  bool operator==(const KeyNodePair&) const = default;
};

/// Encodes pairs grouped by node:
///   <num_groups : LEB128> { <node : LEB128> <count : LEB128>
///                           <keys : count × key_bytes> }*
/// Pairs are reordered (grouped by node, keys sorted within a group).
void NodeGroupEncode(std::vector<KeyNodePair> pairs, uint32_t key_bytes,
                     ByteBuffer* out);

/// Decodes a stream produced by NodeGroupEncode.
std::vector<KeyNodePair> NodeGroupDecode(ByteReader* in, uint32_t key_bytes);

/// Bounds-checked decode for untrusted input: truncated headers or group
/// counts that exceed the remaining bytes return Status::Corruption (and
/// never abort or over-reserve).
Status TryNodeGroupDecode(ByteReader* in, uint32_t key_bytes,
                          std::vector<KeyNodePair>* out);

/// Exact encoded size in bytes.
uint64_t NodeGroupEncodedSize(const std::vector<KeyNodePair>& pairs,
                              uint32_t key_bytes);

/// Baseline for comparison: ungrouped size, one <key, node> pair at a time
/// with a 1-byte node label.
inline uint64_t UngroupedSize(const std::vector<KeyNodePair>& pairs,
                              uint32_t key_bytes) {
  return pairs.size() * (key_bytes + 1ULL);
}

}  // namespace tj

#endif  // TJ_ENCODING_NODE_GROUP_H_
