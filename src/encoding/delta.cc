#include "encoding/delta.h"

#include <algorithm>

#include "encoding/varint.h"

namespace tj {

uint64_t DeltaEncode(std::vector<uint64_t> values, bool presorted,
                     ByteBuffer* out) {
  if (!presorted) std::sort(values.begin(), values.end());
  EncodeLeb128(values.size(), out);
  uint64_t prev = 0;
  for (uint64_t v : values) {
    EncodeLeb128(v - prev, out);
    prev = v;
  }
  return values.size();
}

std::vector<uint64_t> DeltaDecode(ByteReader* in) {
  uint64_t n = DecodeLeb128(in);
  std::vector<uint64_t> values;
  values.reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    prev += DecodeLeb128(in);
    values.push_back(prev);
  }
  return values;
}

Status TryDeltaDecode(ByteReader* in, std::vector<uint64_t>* out) {
  uint64_t n = 0;
  TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &n));
  // Every encoded gap takes at least one byte, so a count beyond the
  // remaining bytes cannot be honest — reject before reserving.
  if (n > in->remaining()) {
    return Status::Corruption("delta stream count exceeds payload");
  }
  out->clear();
  out->reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t gap = 0;
    TJ_RETURN_IF_ERROR(TryDecodeLeb128(in, &gap));
    prev += gap;
    out->push_back(prev);
  }
  return Status::OK();
}

uint64_t DeltaEncodedSize(std::vector<uint64_t> values, bool presorted) {
  if (!presorted) std::sort(values.begin(), values.end());
  uint64_t bytes = Leb128Size(values.size());
  uint64_t prev = 0;
  for (uint64_t v : values) {
    bytes += Leb128Size(v - prev);
    prev = v;
  }
  return bytes;
}

}  // namespace tj
