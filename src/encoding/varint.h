// Variable-length integer codecs.
//
// Two schemes:
//  * LEB128 — the standard 7-bit-per-byte varint, used internally for
//    delta-coded key streams (Section 2.4 of the paper).
//  * Base-100 — the paper's "variable byte" scheme for NUMBER-typed columns
//    (footnote 1: "The variable byte scheme of X, Y uses base 100
//    encoding"): each byte holds two decimal digits (0..99); the final byte
//    is offset by 100 to terminate the value. This reproduces the widths of
//    uncompressed commercial NUMBER columns in Figures 7, 8, 10 and 11.
#ifndef TJ_ENCODING_VARINT_H_
#define TJ_ENCODING_VARINT_H_

#include <cstdint>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace tj {

// ---------------------------------------------------------------------------
// LEB128
// ---------------------------------------------------------------------------

/// Number of bytes EncodeLeb128 would emit for v.
inline uint32_t Leb128Size(uint64_t v) {
  uint32_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends v in LEB128 form.
inline void EncodeLeb128(uint64_t v, ByteBuffer* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes one LEB128 value at the reader's cursor.
inline uint64_t DecodeLeb128(ByteReader* in) {
  uint64_t v = 0;
  uint32_t shift = 0;
  while (true) {
    uint8_t b = in->GetU8();
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    TJ_CHECK_LT(shift, 64u);
  }
  return v;
}

/// Bounds-checked decode for untrusted input: truncated or overlong varints
/// return Status::Corruption instead of aborting, and never read past the
/// buffer.
inline Status TryDecodeLeb128(ByteReader* in, uint64_t* out) {
  uint64_t v = 0;
  uint32_t shift = 0;
  while (true) {
    if (in->remaining() == 0) {
      return Status::Corruption("truncated LEB128 varint");
    }
    uint8_t b = in->GetU8();
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("overlong LEB128 varint");
  }
  *out = v;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Base-100 (paper's variable byte encoding for NUMBER columns)
// ---------------------------------------------------------------------------

/// Number of bytes EncodeBase100 would emit for v: ceil(decimal digit pairs).
inline uint32_t Base100Size(uint64_t v) {
  uint32_t n = 1;
  while (v >= 100) {
    v /= 100;
    ++n;
  }
  return n;
}

/// Appends v as base-100 digits, least significant pair first; the final
/// (most significant) byte is stored offset by 100 as the terminator.
inline void EncodeBase100(uint64_t v, ByteBuffer* out) {
  while (v >= 100) {
    out->push_back(static_cast<uint8_t>(v % 100));
    v /= 100;
  }
  out->push_back(static_cast<uint8_t>(v + 100));
}

/// Decodes one base-100 value at the reader's cursor.
inline uint64_t DecodeBase100(ByteReader* in) {
  uint64_t v = 0;
  uint64_t scale = 1;
  while (true) {
    uint8_t b = in->GetU8();
    if (b >= 100) {
      v += scale * (b - 100);
      return v;
    }
    v += scale * b;
    scale *= 100;
  }
}

/// Bounds-checked decode for untrusted input: a stream that ends without a
/// terminator byte (>= 100) or runs longer than any encoded uint64_t returns
/// Status::Corruption instead of aborting.
inline Status TryDecodeBase100(ByteReader* in, uint64_t* out) {
  uint64_t v = 0;
  uint64_t scale = 1;
  for (uint32_t i = 0;; ++i) {
    if (in->remaining() == 0) {
      return Status::Corruption("truncated base-100 value");
    }
    if (i >= 10) return Status::Corruption("overlong base-100 value");
    uint8_t b = in->GetU8();
    if (b >= 100) {
      *out = v + scale * (b - 100);
      return Status::OK();
    }
    v += scale * b;
    scale *= 100;
  }
}

}  // namespace tj

#endif  // TJ_ENCODING_VARINT_H_
