#include "encoding/encoding.h"

#include <algorithm>

#include "common/logging.h"

namespace tj {

const char* EncodingSchemeName(EncodingScheme scheme) {
  switch (scheme) {
    case EncodingScheme::kFixedByte:
      return "FixedByte";
    case EncodingScheme::kVariableByte:
      return "VariableByte";
    case EncodingScheme::kDictionary:
      return "Dictionary";
  }
  return "Unknown";
}

uint64_t EncodedBitsX100(EncodingScheme scheme, uint32_t dict_bits,
                         uint32_t avg_raw_bytes_x100) {
  switch (scheme) {
    case EncodingScheme::kFixedByte:
      return 100ULL * 8 * BitsToFixedBytes(dict_bits);
    case EncodingScheme::kVariableByte:
      return 8ULL * avg_raw_bytes_x100;
    case EncodingScheme::kDictionary:
      return 100ULL * dict_bits;
  }
  TJ_LOG(Fatal) << "unknown encoding scheme";
  return 0;
}

uint32_t AverageBase100BytesX100(uint64_t min_value, uint64_t max_value) {
  TJ_CHECK_LE(min_value, max_value);
  // Values in [100^(k-1), 100^k) take k bytes. Accumulate the exact weighted
  // average over the uniform range.
  __uint128_t total_bytes = 0;
  uint64_t lo = min_value;
  uint64_t bucket_hi = 99;  // Inclusive upper bound of the 1-byte bucket.
  uint32_t bytes = 1;
  while (true) {
    uint64_t hi = std::min(max_value, bucket_hi);
    if (lo <= hi) {
      total_bytes += static_cast<__uint128_t>(hi - lo + 1) * bytes;
    }
    if (hi == max_value) break;
    lo = std::max(lo, bucket_hi + 1);
    // Saturating advance of the bucket boundary (100^bytes - 1).
    if (bucket_hi > ~0ULL / 100) {
      bucket_hi = ~0ULL;
    } else {
      bucket_hi = bucket_hi * 100 + 99;
    }
    ++bytes;
  }
  uint64_t count = max_value - min_value + 1;
  return static_cast<uint32_t>((total_bytes * 100 + count / 2) / count);
}

}  // namespace tj
