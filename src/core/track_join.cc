#include "core/track_join.h"

#include <algorithm>
#include <vector>

#include "common/flat_table.h"
#include "common/logging.h"
#include "core/schedule.h"
#include "core/tracker.h"
#include "exec/key_aggregate.h"
#include "exec/local_join.h"
#include "exec/radix_sort.h"
#include "net/fabric.h"

namespace tj {

namespace {

/// Per-node working state across the de-pipelined phases.
struct NodeState {
  TupleBlock r{0};
  TupleBlock s{0};
  std::vector<KeyCount> r_keys;
  std::vector<KeyCount> s_keys;
  // Tracker role: merged (key, node, count) facts for both tables.
  std::vector<TrackEntry> track_r;
  std::vector<TrackEntry> track_s;
  // Received selective-broadcast tuples (including free local copies).
  TupleBlock r_in{0};
  TupleBlock s_in{0};
  // Local output accumulation.
  JoinChecksum checksum;
  uint64_t output_rows = 0;
  // Recycles retired message buffers across phases. Per-node by the
  // fabric's ownership rule, so no locking under concurrent phases.
  BufferPool pool;
};

/// Sends the rows of `block` listed per destination node as one message per
/// destination. Empty destinations send nothing.
void SendRowsPerDest(Fabric* fabric, uint32_t src, MessageType type,
                     const TupleBlock& block, uint32_t key_bytes,
                     const std::vector<std::vector<uint32_t>>& rows_per_dest,
                     BufferPool* pool) {
  for (uint32_t dst = 0; dst < rows_per_dest.size(); ++dst) {
    if (rows_per_dest[dst].empty()) continue;
    ByteBuffer buf = pool != nullptr ? pool->Acquire() : ByteBuffer{};
    block.SerializeRowsIndexed(rows_per_dest[dst], key_bytes, &buf);
    fabric->Send(src, dst, type, std::move(buf));
  }
}

/// Appends the sorted block's run of `key` to every destination's row list.
void RouteKeyRun(const TupleBlock& block, uint64_t key,
                 const std::vector<uint32_t>& dests,
                 std::vector<std::vector<uint32_t>>* rows_per_dest) {
  auto [lo, hi] = block.EqualRange(key);
  for (uint32_t dst : dests) {
    auto& rows = (*rows_per_dest)[dst];
    for (uint64_t row = lo; row < hi; ++row) {
      rows.push_back(static_cast<uint32_t>(row));
    }
  }
}

}  // namespace

JoinResult RunTrackJoin(const PartitionedTable& r, const PartitionedTable& s,
                        const JoinConfig& config, TrackJoinVersion version,
                        Direction direction) {
  Result<JoinResult> result = TryRunTrackJoin(r, s, config, version, direction);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<JoinResult> TryRunTrackJoin(const PartitionedTable& r,
                                   const PartitionedTable& s,
                                   const JoinConfig& config,
                                   TrackJoinVersion version,
                                   Direction direction) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();
  const bool with_counts = version != TrackJoinVersion::k2Phase;
  const uint32_t width_r = config.key_bytes + r.payload_width();
  const uint32_t width_s = config.key_bytes + s.payload_width();

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  ScheduleAuditLog* audit = config.schedule_audit;
  if (audit != nullptr) audit->Reset(n);
  std::vector<NodeState> nodes(n);

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));
  auto sink_for = [&](uint32_t node) {
    return config.materialize
               ? MaterializeSink(&out_blocks[node], &nodes[node].checksum,
                                 r.payload_width(), s.payload_width())
               : ChecksumSink(&nodes[node].checksum, r.payload_width(),
                              s.payload_width());
  };

  // Phase 1-2: sort local copies of both tables (paper Table 4 rows 1-2).
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "sort local R tuples", [&](uint32_t node) {
        nodes[node].r = r.node(node);
        SortBlockByKey(&nodes[node].r, config.thread_pool);
        return Status::OK();
      }));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "sort local S tuples", [&](uint32_t node) {
        nodes[node].s = s.node(node);
        SortBlockByKey(&nodes[node].s, config.thread_pool);
        return Status::OK();
      }));

  // Phase 3: aggregate distinct keys and local counts.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable("aggregate keys", [&](uint32_t node) {
    nodes[node].r_keys = AggregateSortedKeys(nodes[node].r);
    nodes[node].s_keys = AggregateSortedKeys(nodes[node].s);
    return Status::OK();
  }));

  // Phase 4: hash partition the key projections and send them to the
  // trackers (the tracking phase proper).
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "hash partition & transfer keys", [&](uint32_t node) {
    BufferPool* pool = &nodes[node].pool;
    auto r_msgs = EncodeTrackingMessages(nodes[node].r_keys, config,
                                         with_counts, n, pool);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (!r_msgs[dst].empty()) {
        fabric.Send(node, dst, MessageType::kTrackR, std::move(r_msgs[dst]));
      } else {
        pool->Recycle(std::move(r_msgs[dst]));
      }
    }
    auto s_msgs = EncodeTrackingMessages(nodes[node].s_keys, config,
                                         with_counts, n, pool);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (!s_msgs[dst].empty()) {
        fabric.Send(node, dst, MessageType::kTrackS, std::move(s_msgs[dst]));
      } else {
        pool->Recycle(std::move(s_msgs[dst]));
      }
    }
    return Status::OK();
  }));

  // Phase 5: trackers merge the received key streams. Every per-source
  // stream arrives key-sorted, so this is a streaming k-way merge with
  // inline (key, node) aggregation — O(n log k), no concatenated entry
  // vector, no comparison sort ("we can aggregate at the destination",
  // Section 2.2).
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "merge received keys", [&](uint32_t node) -> Status {
        NodeState& st = nodes[node];
        auto r_msgs = fabric.TakeInbox(node, MessageType::kTrackR);
        TJ_RETURN_IF_ERROR(TryMergeTrackingMessages(r_msgs, config,
                                                    with_counts, &st.track_r));
        for (auto& msg : r_msgs) st.pool.Recycle(std::move(msg.data));
        auto s_msgs = fabric.TakeInbox(node, MessageType::kTrackS);
        TJ_RETURN_IF_ERROR(TryMergeTrackingMessages(s_msgs, config,
                                                    with_counts, &st.track_s));
        for (auto& msg : s_msgs) st.pool.Recycle(std::move(msg.data));
        return Status::OK();
      }));

  // Phase 6: generate per-key schedules; send location lists to the
  // broadcast-side nodes and (4-phase) migration instructions to the
  // migrating target-side nodes.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "generate schedules & send locations", [&](uint32_t node) {
    NodeState& st = nodes[node];
    // The per-key decision logic (direction choice, migration planning,
    // hot-split adoption, audit recording, instruction fan-out) is shared
    // with the pipelined driver via KeyPlanner; the balance-aware
    // LoadBalancer lives inside it. Each tracker owns a uniform random ~1/N
    // of the keys, so local balancing approximates global balancing
    // (Section 5).
    KeyPlanOutputs outs(n);
    KeyPlanner planner(config, version, direction, n, node, width_r, width_s,
                       audit);

    PlacementIterator it(st.track_r, st.track_s, width_r, width_s, node,
                         config.MsgBytes());
    while (it.Next()) {
      const bool hot_candidate =
          version == TrackJoinVersion::k4Phase &&
          config.hot_key_threshold > 0 &&
          it.OutputProductAtLeast(config.hot_key_threshold);
      planner.PlanKey(it.key(), it.placement(), hot_candidate, &outs);
    }

    for (uint32_t dst = 0; dst < n; ++dst) {
      if (!outs.loc_to_r[dst].empty()) {
        fabric.Send(node, dst, MessageType::kLocationsToR,
                    EncodeKeyNodePairs(outs.loc_to_r[dst], config, &st.pool));
      }
      if (!outs.loc_to_s[dst].empty()) {
        fabric.Send(node, dst, MessageType::kLocationsToS,
                    EncodeKeyNodePairs(outs.loc_to_s[dst], config, &st.pool));
      }
      if (!outs.migr_r[dst].empty()) {
        fabric.Send(node, dst, MessageType::kMigrateR,
                    EncodeKeyNodePairs(outs.migr_r[dst], config, &st.pool));
      }
      if (!outs.migr_s[dst].empty()) {
        fabric.Send(node, dst, MessageType::kMigrateS,
                    EncodeKeyNodePairs(outs.migr_s[dst], config, &st.pool));
      }
      // Fragment instructions carry each hot key's workers in split order
      // (chunk k goes to the k-th listed worker), so they must keep the
      // plain order-preserving encoding even under --group, which reorders
      // pairs by node.
      JoinConfig frag_config = config;
      frag_config.group_locations = false;
      if (!outs.frag_r[dst].empty()) {
        fabric.Send(node, dst, MessageType::kFragmentR,
                    EncodeKeyNodePairs(outs.frag_r[dst], frag_config,
                                       &st.pool));
      }
      if (!outs.frag_s[dst].empty()) {
        fabric.Send(node, dst, MessageType::kFragmentS,
                    EncodeKeyNodePairs(outs.frag_s[dst], frag_config,
                                       &st.pool));
      }
    }
    return Status::OK();
  }));

  // Phase 7: act on schedules — selectively broadcast local runs to the
  // listed locations and ship migrating runs to their destinations.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "selective broadcast & migrate", [&](uint32_t node) -> Status {
    NodeState& st = nodes[node];

    // Selective broadcasts. A location equal to self is a free local copy;
    // the fabric accounts it separately from network traffic.
    std::vector<KeyNodePair> pairs;
    std::vector<std::vector<uint32_t>> r_rows(n), s_rows(n);
    auto loc_r_msgs = fabric.TakeInbox(node, MessageType::kLocationsToR);
    for (const auto& msg : loc_r_msgs) {
      TJ_RETURN_IF_ERROR(TryDecodeKeyNodePairs(msg, config, &pairs));
      for (const auto& pair : pairs) {
        RouteKeyRun(st.r, pair.key, {pair.node}, &r_rows);
      }
    }
    for (auto& msg : loc_r_msgs) st.pool.Recycle(std::move(msg.data));
    auto loc_s_msgs = fabric.TakeInbox(node, MessageType::kLocationsToS);
    for (const auto& msg : loc_s_msgs) {
      TJ_RETURN_IF_ERROR(TryDecodeKeyNodePairs(msg, config, &pairs));
      for (const auto& pair : pairs) {
        RouteKeyRun(st.s, pair.key, {pair.node}, &s_rows);
      }
    }
    for (auto& msg : loc_s_msgs) st.pool.Recycle(std::move(msg.data));
    SendRowsPerDest(&fabric, node, MessageType::kDataR, st.r, config.key_bytes,
                    r_rows, &st.pool);
    SendRowsPerDest(&fabric, node, MessageType::kDataS, st.s, config.key_bytes,
                    s_rows, &st.pool);

    // Migrations (4-phase): move whole local runs and drop them locally.
    auto run_migrations = [&](MessageType instr, MessageType data,
                              TupleBlock* block) -> Status {
      std::vector<std::vector<uint32_t>> rows(n);
      FlatSet migrated;
      auto instr_msgs = fabric.TakeInbox(node, instr);
      for (const auto& msg : instr_msgs) {
        TJ_RETURN_IF_ERROR(TryDecodeKeyNodePairs(msg, config, &pairs));
        migrated.Reserve(migrated.size() + pairs.size());
        for (const auto& pair : pairs) {
          RouteKeyRun(*block, pair.key, {pair.node}, &rows);
          migrated.Insert(pair.key);
        }
      }
      for (auto& msg : instr_msgs) st.pool.Recycle(std::move(msg.data));
      SendRowsPerDest(&fabric, node, data, *block, config.key_bytes, rows,
                      &st.pool);
      if (!migrated.empty()) {
        block->Filter([&](uint64_t row) {
          return !migrated.Contains(block->Key(row));
        });
      }
      return Status::OK();
    };
    TJ_RETURN_IF_ERROR(run_migrations(MessageType::kMigrateR,
                                      MessageType::kMigrationDataR, &st.r));
    TJ_RETURN_IF_ERROR(run_migrations(MessageType::kMigrateS,
                                      MessageType::kMigrationDataS, &st.s));

    // Hot-split fragments: a non-worker holder splits each instructed
    // key's run into w near-equal contiguous chunks, one per worker in
    // instruction order (earlier workers absorb the remainder rows), ships
    // them as migration data, and drops the run locally. Workers merge the
    // chunks next to their own kept rows in phase 8.
    auto run_fragments = [&](MessageType instr, MessageType data,
                             TupleBlock* block) -> Status {
      std::vector<std::vector<uint32_t>> rows(n);
      FlatSet fragmented;
      // Mirrors the sender: fragment instructions always use the plain
      // order-preserving pair encoding, even under --group.
      JoinConfig frag_config = config;
      frag_config.group_locations = false;
      auto instr_msgs = fabric.TakeInbox(node, instr);
      for (const auto& msg : instr_msgs) {
        TJ_RETURN_IF_ERROR(TryDecodeKeyNodePairs(msg, frag_config, &pairs));
        size_t i = 0;
        while (i < pairs.size()) {
          const uint64_t key = pairs[i].key;
          size_t j = i;
          while (j < pairs.size() && pairs[j].key == key) ++j;
          const uint64_t w = j - i;
          auto [lo, hi] = block->EqualRange(key);
          const uint64_t count = hi - lo;
          uint64_t row = lo;
          for (uint64_t k = 0; k < w; ++k) {
            const uint64_t take = count / w + (k < count % w ? 1 : 0);
            auto& dst_rows = rows[pairs[i + k].node];
            for (uint64_t t = 0; t < take; ++t) {
              dst_rows.push_back(static_cast<uint32_t>(row++));
            }
          }
          if (count > 0) fragmented.Insert(key);
          i = j;
        }
      }
      for (auto& msg : instr_msgs) st.pool.Recycle(std::move(msg.data));
      SendRowsPerDest(&fabric, node, data, *block, config.key_bytes, rows,
                      &st.pool);
      if (!fragmented.empty()) {
        block->Filter([&](uint64_t row) {
          return !fragmented.Contains(block->Key(row));
        });
      }
      return Status::OK();
    };
    TJ_RETURN_IF_ERROR(run_fragments(MessageType::kFragmentR,
                                     MessageType::kMigrationDataR, &st.r));
    TJ_RETURN_IF_ERROR(run_fragments(MessageType::kFragmentS,
                                     MessageType::kMigrationDataS, &st.s));
    return Status::OK();
  }));

  // Phase 8: merge received tuples — migrated runs join the local blocks,
  // broadcast tuples form the probe blocks.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "merge received tuples", [&](uint32_t node) -> Status {
    NodeState& st = nodes[node];
    bool r_changed = false, s_changed = false;
    auto drain = [&](MessageType type, TupleBlock* block,
                     bool* changed) -> Status {
      auto msgs = fabric.TakeInbox(node, type);
      for (const auto& msg : msgs) {
        ByteReader reader(msg.data);
        TJ_RETURN_IF_ERROR(
            block->TryDeserializeRows(&reader, config.key_bytes));
        if (changed != nullptr) *changed = true;
      }
      for (auto& msg : msgs) st.pool.Recycle(std::move(msg.data));
      return Status::OK();
    };
    TJ_RETURN_IF_ERROR(drain(MessageType::kMigrationDataR, &st.r, &r_changed));
    TJ_RETURN_IF_ERROR(drain(MessageType::kMigrationDataS, &st.s, &s_changed));
    if (r_changed) SortBlockByKey(&st.r, config.thread_pool);
    if (s_changed) SortBlockByKey(&st.s, config.thread_pool);

    st.r_in = TupleBlock(r.payload_width());
    TJ_RETURN_IF_ERROR(drain(MessageType::kDataR, &st.r_in, nullptr));
    SortBlockByKey(&st.r_in, config.thread_pool);
    st.s_in = TupleBlock(s.payload_width());
    TJ_RETURN_IF_ERROR(drain(MessageType::kDataS, &st.s_in, nullptr));
    SortBlockByKey(&st.s_in, config.thread_pool);
    return Status::OK();
  }));

  // Phases 9-10: the final local joins, one per broadcast direction.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "final merge-join R->S", [&](uint32_t node) {
        NodeState& st = nodes[node];
        st.output_rows += MergeJoinSorted(st.r_in, st.s, sink_for(node));
        return Status::OK();
      }));
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "final merge-join S->R", [&](uint32_t node) {
        NodeState& st = nodes[node];
        st.output_rows += MergeJoinSorted(st.r, st.s_in, sink_for(node));
        return Status::OK();
      }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  const char* algo_name =
      version == TrackJoinVersion::k2Phase
          ? (direction == Direction::kRtoS ? "2tj-r" : "2tj-s")
          : (version == TrackJoinVersion::k3Phase ? "3tj" : "4tj");
  result.profile = BuildStepProfile(algo_name, fabric);
  result.node_output_rows.reserve(n);
  for (const auto& st : nodes) {
    result.output_rows += st.output_rows;
    result.node_output_rows.push_back(st.output_rows);
    result.checksum.Merge(st.checksum);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
