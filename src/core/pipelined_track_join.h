// Event-driven micro-batch track join (pipelined 3TJ/4TJ).
//
// The barrier driver (core/track_join.h) runs the paper's de-pipelined
// phases; this driver runs the same algorithm as a dataflow over the
// pipelined fabric (net/pipelined_fabric.h):
//
//  * Sources sort + aggregate locally, then emit their tracking streams in
//    key-range micro-batch chunks under credit-based flow control.
//  * Each tracker merges the per-source streams with a watermark frontier:
//    as soon as every source has delivered all keys below F, the range
//    [previous F, F) is merged, scheduled (via the shared KeyPlanner) and
//    its location/migration/hot-split instructions stream out — while
//    later ranges are still in flight.
//  * Holders act on instruction chunks immediately, streaming selective
//    broadcast and migration data behind the scheduler.
//  * Joiners join incrementally on arrival: each data row pairs exactly
//    once with matching home rows and with previously-arrived counterpart
//    rows, so no final join phase (and no global barrier) exists at all.
//
// Equivalence to the barrier driver is structural, not approximate: per
// (src, dst, type), the pipelined chunks are a re-slicing of the exact
// bytes the barrier driver sends in one message, so traffic matrices are
// byte-identical; the schedules come from the same KeyPlanner consuming
// keys in the same order, so EXPLAIN audits are identical; and the output
// checksum is order-independent, so incremental joining changes nothing.
// What changes is time: the modeled end-to-end makespan is the critical
// path through the event schedule instead of a sum of phases.
#ifndef TJ_CORE_PIPELINED_TRACK_JOIN_H_
#define TJ_CORE_PIPELINED_TRACK_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the pipelined track join (3- or 4-phase only; the 2-phase variant
/// has no per-key scheduling worth pipelining). Requires the plain wire
/// format (delta_tracking / group_locations off). The result carries
/// makespan_seconds and barrier_makespan_seconds in addition to everything
/// the barrier driver reports. `config.pipeline` supplies the chunk size,
/// inbox budget and CPU bandwidth.
///
/// Fault semantics mirror the barrier driver at chunk granularity: lost
/// links and crashed nodes yield Status::DataLoss (a crashed node's
/// streams never terminate), and a successful run under delivery faults
/// produces the same output checksum as the pristine barrier run.
Result<JoinResult> TryRunPipelinedTrackJoin(
    const PartitionedTable& r, const PartitionedTable& s,
    const JoinConfig& config, TrackJoinVersion version,
    Direction direction = Direction::kRtoS);

}  // namespace tj

#endif  // TJ_CORE_PIPELINED_TRACK_JOIN_H_
