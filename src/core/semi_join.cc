#include "core/semi_join.h"

#include <vector>

#include "baseline/hash_join.h"
#include "common/logging.h"
#include "filter/bloom.h"
#include "net/fabric.h"

namespace tj {

namespace {

/// Builds one Bloom filter per node over a table's local keys, all sized
/// identically (so they can be unioned) from the table's largest partition.
std::vector<BloomFilter> BuildFilters(const PartitionedTable& table,
                                      uint32_t bits_per_key) {
  uint64_t max_rows = 1;
  for (uint32_t node = 0; node < table.num_nodes(); ++node) {
    max_rows = std::max(max_rows, table.node(node).size());
  }
  std::vector<BloomFilter> filters;
  filters.reserve(table.num_nodes());
  for (uint32_t node = 0; node < table.num_nodes(); ++node) {
    filters.emplace_back(max_rows, bits_per_key);
    for (uint64_t key : table.node(node).keys()) filters.back().Add(key);
  }
  return filters;
}

void MergeResult(const FilteredInputs& pre, JoinResult* result) {
  result->traffic.Merge(pre.filter_traffic);
  result->phase_seconds.insert(result->phase_seconds.begin(),
                               pre.phase_seconds.begin(),
                               pre.phase_seconds.end());
  result->profile.Prepend(pre.profile);
  result->profile.algorithm = "sj+" + result->profile.algorithm;
}

}  // namespace

FilteredInputs ExchangeFiltersAndPrune(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const SemiJoinConfig& semi) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();
  Fabric fabric(n);

  std::vector<BloomFilter> r_filters = BuildFilters(r, semi.bloom_bits_per_key);
  std::vector<BloomFilter> s_filters = BuildFilters(s, semi.bloom_bits_per_key);

  // Broadcast both tables' per-node filters (one serialized copy to each
  // other node; the figures count this under the Filter class).
  fabric.RunPhase("broadcast bloom filters", [&](uint32_t node) {
    ByteBuffer r_buf, s_buf;
    r_filters[node].Serialize(&r_buf);
    s_filters[node].Serialize(&s_buf);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (dst == node) continue;
      fabric.Send(node, dst, MessageType::kFilter, r_buf);
      fabric.Send(node, dst, MessageType::kFilter, s_buf);
    }
  });

  FilteredInputs out{PartitionedTable(r.name(), n, r.payload_width()),
                     PartitionedTable(s.name(), n, s.payload_width()),
                     TrafficMatrix(n),
                     {},
                     {},
                     0,
                     0};

  // Prune against the other table's filters. Each node checks all N
  // received per-node filters (a key may match if ANY node's filter says
  // so); keeping the filters separate preserves each one's designed
  // false-positive rate, whereas a union of N same-size filters would
  // multiply the fill factor.
  auto may_match = [](const std::vector<BloomFilter>& filters, uint64_t key) {
    for (const auto& f : filters) {
      if (f.MayContain(key)) return true;
    }
    return false;
  };
  fabric.RunPhase("apply filters", [&](uint32_t node) {
    const TupleBlock& rb = r.node(node);
    for (uint64_t row = 0; row < rb.size(); ++row) {
      if (may_match(s_filters, rb.Key(row))) {
        out.r.node(node).AppendFrom(rb, row);
      } else {
        ++out.r_rows_pruned;
      }
    }
    const TupleBlock& sb = s.node(node);
    for (uint64_t row = 0; row < sb.size(); ++row) {
      if (may_match(r_filters, sb.Key(row))) {
        out.s.node(node).AppendFrom(sb, row);
      } else {
        ++out.s_rows_pruned;
      }
    }
  });

  out.filter_traffic = fabric.traffic();
  out.phase_seconds = fabric.phase_seconds();
  out.profile = BuildStepProfile("semi-join filter", fabric);
  return out;
}

Result<JoinResult> TryRunFilteredHashJoin(const PartitionedTable& r,
                                          const PartitionedTable& s,
                                          const JoinConfig& config,
                                          const SemiJoinConfig& semi) {
  FilteredInputs pre = ExchangeFiltersAndPrune(r, s, semi);
  Result<JoinResult> run = TryRunHashJoin(pre.r, pre.s, config);
  TJ_RETURN_IF_ERROR(run.status());
  JoinResult result = std::move(run).value();
  MergeResult(pre, &result);
  return result;
}

Result<JoinResult> TryRunFilteredTrackJoin(const PartitionedTable& r,
                                           const PartitionedTable& s,
                                           const JoinConfig& config,
                                           const SemiJoinConfig& semi,
                                           TrackJoinVersion version,
                                           Direction direction) {
  FilteredInputs pre = ExchangeFiltersAndPrune(r, s, semi);
  Result<JoinResult> run = TryRunTrackJoin(pre.r, pre.s, config, version,
                                           direction);
  TJ_RETURN_IF_ERROR(run.status());
  JoinResult result = std::move(run).value();
  MergeResult(pre, &result);
  return result;
}

JoinResult RunFilteredHashJoin(const PartitionedTable& r,
                               const PartitionedTable& s,
                               const JoinConfig& config,
                               const SemiJoinConfig& semi) {
  Result<JoinResult> result = TryRunFilteredHashJoin(r, s, config, semi);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

JoinResult RunFilteredTrackJoin(const PartitionedTable& r,
                                const PartitionedTable& s,
                                const JoinConfig& config,
                                const SemiJoinConfig& semi,
                                TrackJoinVersion version, Direction direction) {
  Result<JoinResult> result =
      TryRunFilteredTrackJoin(r, s, config, semi, version, direction);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace tj
