// Two-way semi-join (Bloom) filtering in front of distributed joins — §3.3.
//
// Each node builds a Bloom filter over its local join keys per table; the
// filters are broadcast and unioned, and every node prunes local tuples
// whose keys cannot match before the join algorithm runs. False positives
// survive pruning (and are eliminated by the join itself); matched tuples
// are never dropped.
//
// Track join performs *perfect* semi-join filtering on its own during
// tracking; Bloom filtering in front of it only thins the tracking phase,
// whereas hash join saves full tuple transfers — the trade-off the
// ablation bench (bench/ablation_semijoin) quantifies.
#ifndef TJ_CORE_SEMI_JOIN_H_
#define TJ_CORE_SEMI_JOIN_H_

#include "core/join_types.h"
#include "core/track_join.h"
#include "storage/table.h"

namespace tj {

struct SemiJoinConfig {
  /// Filter density wbf in bits per qualifying tuple.
  uint32_t bloom_bits_per_key = 10;
};

/// The filter-exchange prologue: returns pruned copies of both tables plus
/// the filter broadcast traffic and phase times, which the wrappers below
/// fold into their results. Exposed for testing.
struct FilteredInputs {
  PartitionedTable r;
  PartitionedTable s;
  TrafficMatrix filter_traffic;
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// Step records of the filter exchange, spliced in front of the inner
  /// join's profile by the wrappers.
  StepProfile profile;
  uint64_t r_rows_pruned = 0;
  uint64_t s_rows_pruned = 0;
};
FilteredInputs ExchangeFiltersAndPrune(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const SemiJoinConfig& semi);

/// Grace hash join behind two-way Bloom filtering. The filter broadcast is
/// modeled-reliable (each node prunes with locally built filters; the sends
/// exist for traffic accounting), so only the inner join is subject to an
/// active config.fault_policy — see core/track_join.h for the error
/// contract.
Result<JoinResult> TryRunFilteredHashJoin(const PartitionedTable& r,
                                          const PartitionedTable& s,
                                          const JoinConfig& config,
                                          const SemiJoinConfig& semi);

/// Track join behind two-way Bloom filtering (any version).
Result<JoinResult> TryRunFilteredTrackJoin(const PartitionedTable& r,
                                           const PartitionedTable& s,
                                           const JoinConfig& config,
                                           const SemiJoinConfig& semi,
                                           TrackJoinVersion version,
                                           Direction direction =
                                               Direction::kRtoS);

/// Infallible wrappers: abort if the run fails.
JoinResult RunFilteredHashJoin(const PartitionedTable& r,
                               const PartitionedTable& s,
                               const JoinConfig& config,
                               const SemiJoinConfig& semi);
JoinResult RunFilteredTrackJoin(const PartitionedTable& r,
                                const PartitionedTable& s,
                                const JoinConfig& config,
                                const SemiJoinConfig& semi,
                                TrackJoinVersion version,
                                Direction direction = Direction::kRtoS);

}  // namespace tj

#endif  // TJ_CORE_SEMI_JOIN_H_
