#include "core/late_hash_join.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/partition.h"
#include "net/fabric.h"

namespace tj {

namespace {

/// A key observed by the hash node with its implicit rid (position in the
/// source -> hash-node key stream).
struct KeyRef {
  uint64_t key;
  uint32_t node;
  uint32_t stream_pos;
};

/// One output pair awaiting its payloads: positions index into the fetch
/// request streams this hash node sent to each side's source node.
struct PairRef {
  uint64_t key;
  uint32_t r_src;
  uint32_t r_pos;
  uint32_t s_src;
  uint32_t s_pos;
};

Status TryCollectSorted(Fabric* fabric, uint32_t node, MessageType type,
                        uint32_t key_bytes, std::vector<KeyRef>* refs) {
  refs->clear();
  for (const auto& msg : fabric->TakeInbox(node, type)) {
    if (msg.data.size() % key_bytes != 0) {
      return Status::Corruption("key stream not a multiple of the key width");
    }
    ByteReader reader(msg.data);
    uint32_t pos = 0;
    while (!reader.Done()) {
      refs->push_back(KeyRef{reader.GetUint(key_bytes), msg.src, pos++});
    }
  }
  std::sort(refs->begin(), refs->end(), [](const KeyRef& a, const KeyRef& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.node != b.node) return a.node < b.node;
    return a.stream_pos < b.stream_pos;
  });
  return Status::OK();
}

}  // namespace

Result<JoinResult> TryRunLateMaterializedHashJoin(const PartitionedTable& r,
                                                  const PartitionedTable& s,
                                                  const JoinConfig& config,
                                                  uint32_t rid_bytes) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  // Sender-side memory of which rows went into each key stream.
  std::vector<std::vector<std::vector<uint32_t>>> r_streams(n), s_streams(n);
  // Hash-node state: output pairs and per-source fetch request counts.
  std::vector<std::vector<PairRef>> pairs(n);
  // Received payload streams, per (hash node, source node).
  std::vector<std::vector<ByteBuffer>> r_payloads(n), s_payloads(n);
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  // Phase 1: ship key columns in row order (rids implicit).
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "transfer key columns", [&](uint32_t node) -> Status {
        auto send_keys = [&](const TupleBlock& block, MessageType type,
                             std::vector<std::vector<uint32_t>>* streams)
            -> Status {
          // Radix-partition the key column into contiguous per-destination
          // runs; the stable layout keeps each stream in row order.
          Result<KeyPartitionLayout> layout =
              TryRadixPartitionKeys(block, n, config.thread_pool);
          TJ_RETURN_IF_ERROR(layout.status());
          streams->assign(n, {});
          for (uint32_t dst = 0; dst < n; ++dst) {
            if (layout->Size(dst) == 0) continue;
            (*streams)[dst].assign(layout->row_ids.begin() + layout->Begin(dst),
                                   layout->row_ids.begin() + layout->End(dst));
            ByteBuffer buf;
            ByteWriter writer(&buf);
            for (uint64_t i = layout->Begin(dst); i < layout->End(dst); ++i) {
              writer.PutUint(layout->keys[i], config.key_bytes);
            }
            fabric.Send(node, dst, type, std::move(buf));
          }
          return Status::OK();
        };
        TJ_RETURN_IF_ERROR(
            send_keys(r.node(node), MessageType::kTrackR, &r_streams[node]));
        TJ_RETURN_IF_ERROR(
            send_keys(s.node(node), MessageType::kTrackS, &s_streams[node]));
        return Status::OK();
      }));

  // Phase 2: join keys into rid pairs; request both payloads per pair.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "join keys & request payloads", [&](uint32_t node) -> Status {
        std::vector<KeyRef> r_refs, s_refs;
        TJ_RETURN_IF_ERROR(TryCollectSorted(&fabric, node, MessageType::kTrackR,
                                            config.key_bytes, &r_refs));
        TJ_RETURN_IF_ERROR(TryCollectSorted(&fabric, node, MessageType::kTrackS,
                                            config.key_bytes, &s_refs));

        // Fetch request streams (rid lists, duplicates intended: one entry per
        // output pair) and per-source positions.
        std::vector<ByteBuffer> r_req(n), s_req(n);
        std::vector<uint32_t> r_req_count(n, 0), s_req_count(n, 0);

        size_t i = 0, j = 0;
        while (i < r_refs.size() && j < s_refs.size()) {
          uint64_t rk = r_refs[i].key, sk = s_refs[j].key;
          if (rk < sk) {
            ++i;
          } else if (sk < rk) {
            ++j;
          } else {
            size_t i_end = i;
            while (i_end < r_refs.size() && r_refs[i_end].key == rk) ++i_end;
            size_t j_end = j;
            while (j_end < s_refs.size() && s_refs[j_end].key == rk) ++j_end;
            for (size_t a = i; a < i_end; ++a) {
              for (size_t b = j; b < j_end; ++b) {
                const KeyRef& ra = r_refs[a];
                const KeyRef& sb = s_refs[b];
                ByteWriter(&r_req[ra.node]).PutUint(ra.stream_pos, rid_bytes);
                ByteWriter(&s_req[sb.node]).PutUint(sb.stream_pos, rid_bytes);
                pairs[node].push_back(PairRef{rk, ra.node,
                                              r_req_count[ra.node]++, sb.node,
                                              s_req_count[sb.node]++});
              }
            }
            i = i_end;
            j = j_end;
          }
        }
        for (uint32_t dst = 0; dst < n; ++dst) {
          if (!r_req[dst].empty()) {
            fabric.Send(node, dst, MessageType::kRidR, std::move(r_req[dst]));
          }
          if (!s_req[dst].empty()) {
            fabric.Send(node, dst, MessageType::kRidS, std::move(s_req[dst]));
          }
        }
        return Status::OK();
      }));

  // Phase 3: answer fetch requests with raw payload streams, in request
  // order (so no ids are needed on the responses).
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "fetch payloads", [&](uint32_t node) -> Status {
        auto respond = [&](MessageType req_type, MessageType data_type,
                           const TupleBlock& block,
                           const std::vector<std::vector<uint32_t>>& streams)
            -> Status {
          for (const auto& msg : fabric.TakeInbox(node, req_type)) {
            const auto& stream = streams[msg.src];
            if (msg.data.size() % rid_bytes != 0) {
              return Status::Corruption(
                  "rid request stream not a multiple of the rid width");
            }
            ByteReader reader(msg.data);
            ByteBuffer out;
            ByteWriter writer(&out);
            while (!reader.Done()) {
              uint32_t pos = static_cast<uint32_t>(reader.GetUint(rid_bytes));
              if (pos >= stream.size()) {
                return Status::Corruption(
                    "rid request past the end of the sent key stream");
              }
              if (block.payload_width() > 0) {
                writer.PutBytes(block.Payload(stream[pos]),
                                block.payload_width());
              }
            }
            fabric.Send(node, msg.src, data_type, std::move(out));
          }
          return Status::OK();
        };
        TJ_RETURN_IF_ERROR(respond(MessageType::kRidR, MessageType::kDataR,
                                   r.node(node), r_streams[node]));
        TJ_RETURN_IF_ERROR(respond(MessageType::kRidS, MessageType::kDataS,
                                   s.node(node), s_streams[node]));
        return Status::OK();
      }));

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));

  // Phase 4: zip the payload streams into output tuples.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "materialize output", [&](uint32_t node) -> Status {
        r_payloads[node].assign(n, ByteBuffer());
        s_payloads[node].assign(n, ByteBuffer());
        for (auto& msg : fabric.TakeInbox(node, MessageType::kDataR)) {
          r_payloads[node][msg.src] = std::move(msg.data);
        }
        for (auto& msg : fabric.TakeInbox(node, MessageType::kDataS)) {
          s_payloads[node][msg.src] = std::move(msg.data);
        }
        const uint32_t wr = r.payload_width(), ws = s.payload_width();
        static const uint8_t kEmpty = 0;
        for (const PairRef& pair : pairs[node]) {
          const ByteBuffer& rp = r_payloads[node][pair.r_src];
          const ByteBuffer& sp = s_payloads[node][pair.s_src];
          if (static_cast<uint64_t>(pair.r_pos + 1) * wr > rp.size() ||
              static_cast<uint64_t>(pair.s_pos + 1) * ws > sp.size()) {
            return Status::Corruption(
                "fetched payload stream shorter than the requested pairs");
          }
          const uint8_t* pr =
              wr > 0 ? rp.data() + static_cast<uint64_t>(pair.r_pos) * wr
                     : &kEmpty;
          const uint8_t* ps =
              ws > 0 ? sp.data() + static_cast<uint64_t>(pair.s_pos) * ws
                     : &kEmpty;
          checksums[node].Accumulate(pair.key, pr, wr, ps, ws);
          if (config.materialize) {
            std::vector<uint8_t> row(out_width);
            if (wr > 0) std::memcpy(row.data(), pr, wr);
            if (ws > 0) std::memcpy(row.data() + wr, ps, ws);
            out_blocks[node].Append(pair.key, row.data());
          }
          ++outputs[node];
        }
        return Status::OK();
      }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  result.profile = BuildStepProfile("late-hj", fabric);
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

JoinResult RunLateMaterializedHashJoin(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const JoinConfig& config,
                                       uint32_t rid_bytes) {
  Result<JoinResult> result =
      TryRunLateMaterializedHashJoin(r, s, config, rid_bytes);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace tj
