#include "core/pipelined_track_join.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/flat_table.h"
#include "common/logging.h"
#include "core/schedule.h"
#include "core/tracker.h"
#include "exec/key_aggregate.h"
#include "exec/local_join.h"
#include "exec/radix_sort.h"
#include "net/buffer_pool.h"
#include "net/pipelined_fabric.h"
#include "obs/step_profile.h"

namespace tj {

namespace {

/// Frontier bound of a fully-delivered stream: past every possible key.
constexpr uint64_t kStreamDone = ~0ULL;

/// One tracker-side incoming tracking stream (one source, one table).
/// Entries arrive key-sorted; `watermark` promises no later chunk carries
/// a key strictly below it.
struct TrackStream {
  std::deque<TrackEntry> pending;
  uint64_t watermark = 0;
  bool started = false;
  bool eos = false;

  /// Keys strictly below the bound are final for this stream.
  uint64_t Bound() const {
    if (eos) return kStreamDone;
    return started ? watermark : 0;
  }
};

/// Row indices of a growing TupleBlock, bucketed by key. FlatMap keeps
/// POD values only, so buckets live in a parallel vector (value = index+1).
struct KeyedRows {
  FlatMap<uint64_t> index;
  std::vector<std::vector<uint32_t>> buckets;

  const std::vector<uint32_t>* Find(uint64_t key) const {
    const uint64_t* slot = index.Find(key);
    return slot == nullptr ? nullptr : &buckets[*slot - 1];
  }
  std::vector<uint32_t>& BucketFor(uint64_t key) {
    uint64_t& slot = index[key];
    if (slot == 0) {
      buckets.emplace_back();
      slot = buckets.size();
    }
    return buckets[slot - 1];
  }
};

/// Per-node working state across all pipelined roles (source, tracker,
/// holder, joiner).
struct PipelineNodeState {
  // Source role: sorted home blocks. Never filtered — data for a key only
  // ever travels to its surviving locations, so a run that migrated or
  // fragmented away is simply never probed again.
  TupleBlock r{0};
  TupleBlock s{0};

  // Tracker role: per-(source, table) streams, the merge frontier, and the
  // persistent per-key planner (balance state spans frontier batches).
  std::vector<TrackStream> streams_r;
  std::vector<TrackStream> streams_s;
  uint64_t frontier = 0;
  bool final_batch_posted = false;
  std::optional<KeyPlanner> planner;

  // Holder role: instruction-EOS countdown toward closing the data streams.
  uint32_t instr_eos = 0;
  bool data_eos_sent = false;

  // Joiner role: received broadcast and migration rows, indexed by key for
  // incremental exactly-once pairing.
  TupleBlock in_r{0};
  TupleBlock in_s{0};
  TupleBlock mig_r{0};
  TupleBlock mig_s{0};
  KeyedRows in_r_rows, in_s_rows, mig_r_rows, mig_s_rows;
  uint32_t data_eos = 0;

  JoinChecksum checksum;
  uint64_t output_rows = 0;
  BufferPool pool;
};

/// Decodes a plain (fixed-width, order-preserving) <key, node> pair chunk.
Status DecodePlainPairs(const ByteBuffer& data, const JoinConfig& config,
                        std::vector<KeyNodePair>* out) {
  out->clear();
  const uint32_t pair_bytes = config.key_bytes + config.node_bytes;
  if (data.size() % pair_bytes != 0) {
    return Status::Corruption("instruction chunk not a multiple of pair size");
  }
  ByteReader reader(data);
  out->reserve(data.size() / pair_bytes);
  while (!reader.Done()) {
    KeyNodePair pair;
    pair.key = reader.GetUint(config.key_bytes);
    pair.node = static_cast<uint32_t>(reader.GetUint(config.node_bytes));
    out->push_back(pair);
  }
  return Status::OK();
}

}  // namespace

Result<JoinResult> TryRunPipelinedTrackJoin(const PartitionedTable& r,
                                            const PartitionedTable& s,
                                            const JoinConfig& config,
                                            TrackJoinVersion version,
                                            Direction direction) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  if (version == TrackJoinVersion::k2Phase) {
    return Status::InvalidArgument(
        "pipelined track join supports the 3- and 4-phase versions only");
  }
  TJ_RETURN_IF_ERROR(RequirePlainWireFormat(config, "pipelined track join"));

  const uint32_t n = r.num_nodes();
  const bool four_phase = version == TrackJoinVersion::k4Phase;
  const uint32_t width_r = config.key_bytes + r.payload_width();
  const uint32_t width_s = config.key_bytes + s.payload_width();
  const uint32_t track_entry_bytes = config.key_bytes + config.count_bytes;
  const uint32_t pair_bytes = config.key_bytes + config.node_bytes;
  // EOS fan-in: every tracker terminates every instruction stream to every
  // holder; every holder then terminates every data stream to every joiner.
  const uint32_t expected_instr_eos = n * (four_phase ? 6 : 2);
  const uint32_t expected_data_eos = n * (four_phase ? 4 : 2);

  PipelinedFabric::Params params;
  params.num_nodes = n;
  params.cost.cpu_bandwidth_bytes_per_sec =
      config.pipeline.cpu_bandwidth_bytes_per_sec;
  params.chunk_bytes = config.pipeline.chunk_bytes;
  params.inbox_budget_bytes = config.pipeline.inbox_budget_bytes;
  params.fault_policy = config.fault_policy;
  params.fault_seed = config.fault_seed;
  params.egress_policy = config.pipeline.drr ? EgressSchedPolicy::kDrr
                                             : EgressSchedPolicy::kFifo;
  params.drr_quantum_bytes = config.pipeline.drr_quantum_bytes;
  PipelinedFabric fabric(params);
  // Fan-outs start at self + 1 under the FIFO egress policy so the senders
  // don't all hammer the same receiver NIC in lockstep (classic all-to-all
  // staggering; per-link bytes and stream order are unaffected). DRR's
  // per-destination scheduler subsumes the workaround, so it is retired
  // there and fan-outs run in natural destination order.
  const bool drr_sched = config.pipeline.drr;
  auto fan_out_dst = [n, drr_sched](uint32_t self, uint32_t step) {
    return drr_sched ? step : (self + 1 + step) % n;
  };
  // Fix the stage order for profiles and the barrier reference: scheduling
  // tasks only materialize mid-run, after the transfer/join handlers have
  // already registered their stages.
  for (const char* stage : {"source", "track", "schedule", "transfer", "join"}) {
    fabric.DeclareStage(stage);
  }

  ScheduleAuditLog* audit = config.schedule_audit;
  if (audit != nullptr) audit->Reset(n);

  std::vector<PipelineNodeState> nodes(n);
  for (PipelineNodeState& st : nodes) {
    st.streams_r.resize(n);
    st.streams_s.resize(n);
    st.planner.emplace(config, version, direction, n, /*tracker=*/0, width_r,
                       width_s, audit);
    st.in_r = TupleBlock(r.payload_width());
    st.in_s = TupleBlock(s.payload_width());
    st.mig_r = TupleBlock(r.payload_width());
    st.mig_s = TupleBlock(s.payload_width());
  }
  // The planner's tracker id is positional; re-emplace with the right id.
  for (uint32_t node = 0; node < n; ++node) {
    nodes[node].planner.emplace(config, version, direction, n, node, width_r,
                                width_s, audit);
  }

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));
  auto sink_for = [&](uint32_t node) {
    return config.materialize
               ? MaterializeSink(&out_blocks[node], &nodes[node].checksum,
                                 r.payload_width(), s.payload_width())
               : ChecksumSink(&nodes[node].checksum, r.payload_width(),
                              s.payload_width());
  };

  // Sends `message` as entry-aligned chunks on one (src, dst, type) stream,
  // marking the last chunk EOS; an empty stream terminates with a zero-byte
  // EOS chunk so receivers can count it.
  auto send_sliced_stream = [&](uint32_t src, uint32_t dst, MessageType type,
                                const ByteBuffer& message,
                                uint32_t entry_bytes) {
    if (message.empty()) {
      fabric.SendChunk(src, dst, type, ByteBuffer{}, /*eos=*/true);
      return;
    }
    std::vector<WireChunk> chunks = SliceEntryMessage(
        message, entry_bytes, config.key_bytes, config.pipeline.chunk_bytes);
    for (size_t i = 0; i < chunks.size(); ++i) {
      fabric.SendChunk(src, dst, type, std::move(chunks[i].data),
                       /*eos=*/i + 1 == chunks.size(), chunks[i].watermark);
    }
  };

  // Mid-stream (non-terminating) sliced send, used for data chunks whose
  // streams are closed separately by the EOS countdown.
  auto send_sliced_data = [&](uint32_t src, uint32_t dst, MessageType type,
                              const ByteBuffer& message,
                              uint32_t entry_bytes) {
    std::vector<WireChunk> chunks = SliceEntryMessage(
        message, entry_bytes, config.key_bytes, config.pipeline.chunk_bytes);
    for (WireChunk& chunk : chunks) {
      fabric.SendChunk(src, dst, type, std::move(chunk.data), /*eos=*/false,
                       chunk.watermark);
    }
  };

  // --- Source role: three tasks per node on its serial CPU, in order. ---
  for (uint32_t node = 0; node < n; ++node) {
    fabric.Post(node, "source", "source.sort_r", [&, node]() {
      PipelineNodeState& st = nodes[node];
      st.r = r.node(node);
      SortBlockByKey(&st.r);
      fabric.ChargeCpuBytes(st.r.size() * width_r);
      return Status::OK();
    });
    fabric.Post(node, "source", "source.sort_s", [&, node]() {
      PipelineNodeState& st = nodes[node];
      st.s = s.node(node);
      SortBlockByKey(&st.s);
      fabric.ChargeCpuBytes(st.s.size() * width_s);
      return Status::OK();
    });
    fabric.Post(node, "source", "source.track", [&, node]() {
      PipelineNodeState& st = nodes[node];
      std::vector<KeyCount> r_keys = AggregateSortedKeys(st.r);
      std::vector<KeyCount> s_keys = AggregateSortedKeys(st.s);
      fabric.ChargeCpuBytes((st.r.size() + st.s.size()) * config.key_bytes);
      auto r_msgs = EncodeTrackingMessages(r_keys, config, /*with_counts=*/true,
                                           n, &st.pool);
      auto s_msgs = EncodeTrackingMessages(s_keys, config, /*with_counts=*/true,
                                           n, &st.pool);
      for (uint32_t step = 0; step < n; ++step) {
        const uint32_t dst = fan_out_dst(node, step);
        fabric.ChargeCpuBytes(r_msgs[dst].size() + s_msgs[dst].size());
        send_sliced_stream(node, dst, MessageType::kTrackR, r_msgs[dst],
                           track_entry_bytes);
        send_sliced_stream(node, dst, MessageType::kTrackS, s_msgs[dst],
                           track_entry_bytes);
        st.pool.Recycle(std::move(r_msgs[dst]));
        st.pool.Recycle(std::move(s_msgs[dst]));
      }
      return Status::OK();
    });
  }

  // --- Tracker role: merge streams by watermark frontier, schedule each
  // completed key range as its own micro-batch task. ---
  auto post_schedule_batch = [&](uint32_t node, uint64_t lo, uint64_t hi,
                                 bool final_batch,
                                 std::vector<TrackEntry> batch_r,
                                 std::vector<TrackEntry> batch_s) {
    fabric.Post(
        node, "schedule", "schedule",
        [&, node, final_batch, batch_r = std::move(batch_r),
         batch_s = std::move(batch_s)]() mutable {
          PipelineNodeState& st = nodes[node];
          // Per-batch merge: all entries of every key below the frontier
          // are present, so aggregation is complete, and batch outputs
          // concatenate to exactly the global merged stream.
          MergeTrackEntries(&batch_r);
          MergeTrackEntries(&batch_s);
          fabric.ChargeCpuBytes((batch_r.size() + batch_s.size()) *
                                track_entry_bytes);

          KeyPlanOutputs outs(n);
          PlacementIterator it(batch_r, batch_s, width_r, width_s, node,
                               config.MsgBytes());
          while (it.Next()) {
            const bool hot_candidate =
                four_phase && config.hot_key_threshold > 0 &&
                it.OutputProductAtLeast(config.hot_key_threshold);
            st.planner->PlanKey(it.key(), it.placement(), hot_candidate,
                                &outs);
          }

          JoinConfig frag_config = config;
          frag_config.group_locations = false;
          auto send_pairs = [&](MessageType type, uint32_t dst,
                                const std::vector<KeyNodePair>& pairs,
                                bool keep_groups) {
            if (pairs.empty()) return;
            ByteBuffer buf = EncodeKeyNodePairs(
                pairs, keep_groups ? frag_config : config, &st.pool);
            fabric.ChargeCpuBytes(buf.size());
            if (keep_groups) {
              // A hot key's w-pair worker group must stay in one chunk —
              // the fragment handler needs the whole group to cut the run
              // into w near-equal pieces.
              fabric.SendChunk(node, dst, type, std::move(buf),
                               /*eos=*/false);
            } else {
              send_sliced_data(node, dst, type, buf, pair_bytes);
              st.pool.Recycle(std::move(buf));
            }
          };
          for (uint32_t step = 0; step < n; ++step) {
            const uint32_t dst = fan_out_dst(node, step);
            send_pairs(MessageType::kLocationsToR, dst, outs.loc_to_r[dst],
                       false);
            send_pairs(MessageType::kLocationsToS, dst, outs.loc_to_s[dst],
                       false);
            send_pairs(MessageType::kMigrateR, dst, outs.migr_r[dst], false);
            send_pairs(MessageType::kMigrateS, dst, outs.migr_s[dst], false);
            send_pairs(MessageType::kFragmentR, dst, outs.frag_r[dst], true);
            send_pairs(MessageType::kFragmentS, dst, outs.frag_s[dst], true);
          }
          if (final_batch) {
            // Terminate every instruction stream so holders can count.
            for (uint32_t dst = 0; dst < n; ++dst) {
              fabric.SendChunk(node, dst, MessageType::kLocationsToR,
                               ByteBuffer{}, /*eos=*/true);
              fabric.SendChunk(node, dst, MessageType::kLocationsToS,
                               ByteBuffer{}, /*eos=*/true);
              if (four_phase) {
                fabric.SendChunk(node, dst, MessageType::kMigrateR,
                                 ByteBuffer{}, /*eos=*/true);
                fabric.SendChunk(node, dst, MessageType::kMigrateS,
                                 ByteBuffer{}, /*eos=*/true);
                fabric.SendChunk(node, dst, MessageType::kFragmentR,
                                 ByteBuffer{}, /*eos=*/true);
                fabric.SendChunk(node, dst, MessageType::kFragmentS,
                                 ByteBuffer{}, /*eos=*/true);
              }
            }
          }
          return Status::OK();
        },
        {{"range_lo", static_cast<int64_t>(lo)},
         {"range_hi",
          final_batch ? int64_t{-1} : static_cast<int64_t>(hi)}});
  };

  auto advance_frontier = [&](uint32_t node) {
    PipelineNodeState& st = nodes[node];
    uint64_t bound = kStreamDone;
    for (const TrackStream& stream : st.streams_r) {
      bound = std::min(bound, stream.Bound());
    }
    for (const TrackStream& stream : st.streams_s) {
      bound = std::min(bound, stream.Bound());
    }
    const bool final_batch = bound == kStreamDone;
    if (final_batch ? st.final_batch_posted : bound <= st.frontier) return;

    auto take_below = [&](std::vector<TrackStream>& streams) {
      std::vector<TrackEntry> batch;
      for (TrackStream& stream : streams) {
        while (!stream.pending.empty() &&
               (final_batch || stream.pending.front().key < bound)) {
          batch.push_back(stream.pending.front());
          stream.pending.pop_front();
        }
      }
      return batch;
    };
    std::vector<TrackEntry> batch_r = take_below(st.streams_r);
    std::vector<TrackEntry> batch_s = take_below(st.streams_s);
    const uint64_t lo = st.frontier;
    st.frontier = bound;
    if (final_batch) st.final_batch_posted = true;
    // Empty mid-stream ranges schedule nothing; the final range always
    // runs so instruction EOS goes out even for empty trackers.
    if (!final_batch && batch_r.empty() && batch_s.empty()) return;
    post_schedule_batch(node, lo, bound, final_batch, std::move(batch_r),
                        std::move(batch_s));
  };

  auto on_tracking = [&](const Chunk& chunk) -> Status {
    PipelineNodeState& st = nodes[chunk.dst];
    fabric.ChargeCpuBytes(chunk.data.size());
    TrackStream& stream = (chunk.type == MessageType::kTrackR
                               ? st.streams_r
                               : st.streams_s)[chunk.src];
    if (chunk.data.size() % track_entry_bytes != 0) {
      return Status::Corruption("tracking chunk not a multiple of entry size");
    }
    ByteReader reader(chunk.data);
    while (!reader.Done()) {
      TrackEntry entry;
      entry.key = reader.GetUint(config.key_bytes);
      entry.node = chunk.src;
      entry.count = reader.GetUint(config.count_bytes);
      stream.pending.push_back(entry);
    }
    if (!chunk.data.empty()) {
      stream.started = true;
      stream.watermark = chunk.watermark;
    }
    if (chunk.eos) stream.eos = true;
    advance_frontier(chunk.dst);
    return Status::OK();
  };
  fabric.OnChunk(MessageType::kTrackR, "track", on_tracking);
  fabric.OnChunk(MessageType::kTrackS, "track", on_tracking);

  // --- Holder role: act on instruction chunks as they arrive. ---
  auto close_data_streams = [&](uint32_t node) {
    PipelineNodeState& st = nodes[node];
    if (st.data_eos_sent || st.instr_eos < expected_instr_eos) return;
    st.data_eos_sent = true;
    for (uint32_t dst = 0; dst < n; ++dst) {
      fabric.SendChunk(node, dst, MessageType::kDataR, ByteBuffer{},
                       /*eos=*/true);
      fabric.SendChunk(node, dst, MessageType::kDataS, ByteBuffer{},
                       /*eos=*/true);
      if (four_phase) {
        fabric.SendChunk(node, dst, MessageType::kMigrationDataR,
                         ByteBuffer{}, /*eos=*/true);
        fabric.SendChunk(node, dst, MessageType::kMigrationDataS,
                         ByteBuffer{}, /*eos=*/true);
      }
    }
  };

  // Routes each instructed key's home run and streams the rows out. Used
  // for both selective-broadcast locations and migrations — the only
  // difference is the outgoing data type (and that migrations never route
  // to self).
  auto route_and_send = [&](const Chunk& chunk, const TupleBlock& block,
                            uint32_t row_width, MessageType data_type,
                            std::vector<KeyNodePair>& pairs) -> Status {
    TJ_RETURN_IF_ERROR(DecodePlainPairs(chunk.data, config, &pairs));
    PipelineNodeState& st = nodes[chunk.dst];
    std::vector<std::vector<uint32_t>> rows(n);
    for (const KeyNodePair& pair : pairs) {
      auto [lo, hi] = block.EqualRange(pair.key);
      for (uint64_t row = lo; row < hi; ++row) {
        rows[pair.node].push_back(static_cast<uint32_t>(row));
      }
    }
    for (uint32_t step = 0; step < n; ++step) {
      const uint32_t dst = fan_out_dst(chunk.dst, step);
      if (rows[dst].empty()) continue;
      ByteBuffer buf = st.pool.Acquire();
      block.SerializeRowsIndexed(rows[dst], config.key_bytes, &buf);
      fabric.ChargeCpuBytes(buf.size());
      send_sliced_data(chunk.dst, dst, data_type, buf, row_width);
      st.pool.Recycle(std::move(buf));
    }
    return Status::OK();
  };

  auto on_instruction = [&](const Chunk& chunk) -> Status {
    PipelineNodeState& st = nodes[chunk.dst];
    fabric.ChargeCpuBytes(chunk.data.size());
    std::vector<KeyNodePair> pairs;
    if (!chunk.data.empty()) {
      switch (chunk.type) {
        case MessageType::kLocationsToR:
          TJ_RETURN_IF_ERROR(route_and_send(chunk, st.r, width_r,
                                            MessageType::kDataR, pairs));
          break;
        case MessageType::kLocationsToS:
          TJ_RETURN_IF_ERROR(route_and_send(chunk, st.s, width_s,
                                            MessageType::kDataS, pairs));
          break;
        case MessageType::kMigrateR:
          TJ_RETURN_IF_ERROR(route_and_send(
              chunk, st.r, width_r, MessageType::kMigrationDataR, pairs));
          break;
        case MessageType::kMigrateS:
          TJ_RETURN_IF_ERROR(route_and_send(
              chunk, st.s, width_s, MessageType::kMigrationDataS, pairs));
          break;
        case MessageType::kFragmentR:
        case MessageType::kFragmentS: {
          // Split each hot key's run into w near-equal contiguous pieces,
          // one per worker in instruction order (earlier workers absorb
          // the remainder) — identical arithmetic to the barrier driver.
          const bool is_r = chunk.type == MessageType::kFragmentR;
          const TupleBlock& block = is_r ? st.r : st.s;
          const MessageType data_type = is_r ? MessageType::kMigrationDataR
                                             : MessageType::kMigrationDataS;
          TJ_RETURN_IF_ERROR(DecodePlainPairs(chunk.data, config, &pairs));
          std::vector<std::vector<uint32_t>> rows(n);
          size_t i = 0;
          while (i < pairs.size()) {
            const uint64_t key = pairs[i].key;
            size_t j = i;
            while (j < pairs.size() && pairs[j].key == key) ++j;
            const uint64_t w = j - i;
            auto [lo, hi] = block.EqualRange(key);
            const uint64_t count = hi - lo;
            uint64_t row = lo;
            for (uint64_t k = 0; k < w; ++k) {
              const uint64_t take = count / w + (k < count % w ? 1 : 0);
              auto& dst_rows = rows[pairs[i + k].node];
              for (uint64_t t = 0; t < take; ++t) {
                dst_rows.push_back(static_cast<uint32_t>(row++));
              }
            }
            i = j;
          }
          const uint32_t row_width = is_r ? width_r : width_s;
          for (uint32_t step = 0; step < n; ++step) {
            const uint32_t dst = fan_out_dst(chunk.dst, step);
            if (rows[dst].empty()) continue;
            ByteBuffer buf = st.pool.Acquire();
            block.SerializeRowsIndexed(rows[dst], config.key_bytes, &buf);
            fabric.ChargeCpuBytes(buf.size());
            send_sliced_data(chunk.dst, dst, data_type, buf, row_width);
            st.pool.Recycle(std::move(buf));
          }
          break;
        }
        default:
          return Status::Internal("unexpected instruction chunk type");
      }
    }
    if (chunk.eos) {
      ++st.instr_eos;
      close_data_streams(chunk.dst);
    }
    return Status::OK();
  };
  fabric.OnChunk(MessageType::kLocationsToR, "transfer", on_instruction);
  fabric.OnChunk(MessageType::kLocationsToS, "transfer", on_instruction);
  if (four_phase) {
    fabric.OnChunk(MessageType::kMigrateR, "transfer", on_instruction);
    fabric.OnChunk(MessageType::kMigrateS, "transfer", on_instruction);
    fabric.OnChunk(MessageType::kFragmentR, "transfer", on_instruction);
    fabric.OnChunk(MessageType::kFragmentS, "transfer", on_instruction);
  }

  // --- Joiner role: incremental symmetric join on arrival. Each pair is
  // produced exactly once, when its second element arrives (home rows
  // count as having arrived first; broadcast and migration rows pair with
  // everything already present and are then indexed for later arrivals).
  auto on_data = [&](const Chunk& chunk) -> Status {
    PipelineNodeState& st = nodes[chunk.dst];
    fabric.ChargeCpuBytes(chunk.data.size());
    if (!chunk.data.empty()) {
      JoinSink sink = sink_for(chunk.dst);
      uint64_t produced = 0;
      auto pair_with_home_and_mig =
          [&](TupleBlock& in_block, KeyedRows& in_index,
              const TupleBlock& home, const TupleBlock& mig,
              const KeyedRows& mig_index, bool in_is_r) -> Status {
        const uint64_t first = in_block.size();
        ByteReader reader(chunk.data);
        TJ_RETURN_IF_ERROR(
            in_block.TryDeserializeRows(&reader, config.key_bytes));
        for (uint64_t row = first; row < in_block.size(); ++row) {
          const uint64_t key = in_block.Key(row);
          auto [lo, hi] = home.EqualRange(key);
          for (uint64_t other = lo; other < hi; ++other) {
            if (in_is_r) {
              sink(key, in_block.Payload(row), home.Payload(other));
            } else {
              sink(key, home.Payload(other), in_block.Payload(row));
            }
            ++produced;
          }
          if (const std::vector<uint32_t>* bucket = mig_index.Find(key)) {
            for (uint32_t other : *bucket) {
              if (in_is_r) {
                sink(key, in_block.Payload(row), mig.Payload(other));
              } else {
                sink(key, mig.Payload(other), in_block.Payload(row));
              }
              ++produced;
            }
          }
          in_index.BucketFor(key).push_back(static_cast<uint32_t>(row));
        }
        return Status::OK();
      };
      auto pair_migration =
          [&](TupleBlock& mig_block, KeyedRows& mig_index,
              const TupleBlock& in_block, const KeyedRows& in_index,
              bool mig_is_r) -> Status {
        const uint64_t first = mig_block.size();
        ByteReader reader(chunk.data);
        TJ_RETURN_IF_ERROR(
            mig_block.TryDeserializeRows(&reader, config.key_bytes));
        for (uint64_t row = first; row < mig_block.size(); ++row) {
          const uint64_t key = mig_block.Key(row);
          if (const std::vector<uint32_t>* bucket = in_index.Find(key)) {
            for (uint32_t other : *bucket) {
              if (mig_is_r) {
                sink(key, mig_block.Payload(row), in_block.Payload(other));
              } else {
                sink(key, in_block.Payload(other), mig_block.Payload(row));
              }
              ++produced;
            }
          }
          mig_index.BucketFor(key).push_back(static_cast<uint32_t>(row));
        }
        return Status::OK();
      };
      switch (chunk.type) {
        case MessageType::kDataR:
          TJ_RETURN_IF_ERROR(pair_with_home_and_mig(
              st.in_r, st.in_r_rows, st.s, st.mig_s, st.mig_s_rows, true));
          break;
        case MessageType::kDataS:
          TJ_RETURN_IF_ERROR(pair_with_home_and_mig(
              st.in_s, st.in_s_rows, st.r, st.mig_r, st.mig_r_rows, false));
          break;
        case MessageType::kMigrationDataR:
          TJ_RETURN_IF_ERROR(pair_migration(st.mig_r, st.mig_r_rows, st.in_s,
                                            st.in_s_rows, true));
          break;
        case MessageType::kMigrationDataS:
          TJ_RETURN_IF_ERROR(pair_migration(st.mig_s, st.mig_s_rows, st.in_r,
                                            st.in_r_rows, false));
          break;
        default:
          return Status::Internal("unexpected data chunk type");
      }
      st.output_rows += produced;
      fabric.ChargeCpuBytes(produced * (config.key_bytes + out_width));
    }
    if (chunk.eos) ++st.data_eos;
    return Status::OK();
  };
  fabric.OnChunk(MessageType::kDataR, "join", on_data);
  fabric.OnChunk(MessageType::kDataS, "join", on_data);
  if (four_phase) {
    fabric.OnChunk(MessageType::kMigrationDataR, "join", on_data);
    fabric.OnChunk(MessageType::kMigrationDataS, "join", on_data);
  }

  Status run_status = fabric.Run();

  auto stage_times = [&]() {
    std::vector<std::pair<std::string, double>> times;
    for (const auto& stage : fabric.stage_stats()) {
      times.emplace_back(stage.name, stage.max_node_cpu_seconds);
    }
    return times;
  };
  auto fill_diagnostics = [&](const FailureReport& report) {
    if (config.diagnostics == nullptr) return;
    config.diagnostics->failure = report;
    config.diagnostics->traffic = fabric.traffic();
    config.diagnostics->phase_seconds = stage_times();
  };
  if (!run_status.ok()) {
    fill_diagnostics(fabric.failure());
    return run_status;
  }

  // Completeness: every stream must have terminated. A crashed node's
  // streams never do — that is the pipelined analog of the barrier
  // driver's fail-stop DataLoss.
  for (uint32_t node = 0; node < n; ++node) {
    const PipelineNodeState& st = nodes[node];
    bool complete = st.instr_eos == expected_instr_eos &&
                    st.data_eos == expected_data_eos;
    for (uint32_t src = 0; src < n && complete; ++src) {
      complete = st.streams_r[src].eos && st.streams_s[src].eos;
    }
    if (!complete) {
      fill_diagnostics(fabric.failure());
      return Status::DataLoss(
          "pipelined run incomplete at node " + std::to_string(node) +
          ": one or more chunk streams never terminated (crashed sender?)");
    }
  }

  JoinResult result;
  result.traffic = fabric.traffic();
  result.reliability = fabric.reliability();
  result.phase_seconds = stage_times();
  result.makespan_seconds = fabric.makespan_seconds();
  result.barrier_makespan_seconds = fabric.barrier_makespan_seconds();

  // Step profile from the per-stage accounting: the pipelined analog of
  // the barrier fabric's phase instrumentation, with modeled CPU seconds
  // in the wall column (stages overlap, so these steps do NOT add up to
  // the makespan — that is the whole point).
  StepProfile profile;
  profile.algorithm = four_phase ? "4tj-p" : "3tj-p";
  profile.num_nodes = n;
  for (const auto& stage : fabric.stage_stats()) {
    StepRecord record;
    record.phase = stage.name;
    record.wall_seconds = stage.max_node_cpu_seconds;
    record.net_seconds = params.cost.TransferSeconds(stage.max_node_bytes);
    record.goodput_bytes = stage.network_bytes;
    record.local_bytes = stage.local_bytes;
    record.max_node_bytes = stage.max_node_bytes;
    record.network_bytes_by_type = stage.network_bytes_by_type;
    record.local_bytes_by_type = stage.local_bytes_by_type;
    profile.steps.push_back(std::move(record));
  }
  profile.run_max_node_bytes = result.traffic.MaxNodeBytes();
  result.profile = std::move(profile);

  if (config.collect_blame) {
    result.blame = BuildBlameReport(fabric, config.blame_top_edges);
    result.blame->algorithm = result.profile.algorithm;
  }

  result.node_output_rows.reserve(n);
  for (const PipelineNodeState& st : nodes) {
    result.output_rows += st.output_rows;
    result.node_output_rows.push_back(st.output_rows);
    result.checksum.Merge(st.checksum);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
