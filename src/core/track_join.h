// Track join: distributed equi-join with per-key transfer scheduling.
//
// Public entry points for the three versions of the paper's algorithm:
//
//  * 2-phase ("single broadcast"): track key locations, then selectively
//    broadcast one table's tuples (direction fixed by the caller — in a
//    DBMS, by the query optimizer) to nodes with matching tuples.
//  * 3-phase ("double broadcast"): tracking also carries local match
//    counts; the cheaper broadcast direction is chosen per distinct key.
//  * 4-phase (full track join): before the selective broadcast, the target
//    table's tuples may migrate to fewer nodes; the per-key schedule is
//    network-optimal (see core/schedule.h).
//
// All versions run on a simulated cluster (net/fabric.h) in de-pipelined
// phases, produce an order-independent checksum of the join output, and
// account every byte sent in the result's traffic matrix.
#ifndef TJ_CORE_TRACK_JOIN_H_
#define TJ_CORE_TRACK_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

// TrackJoinVersion lives in core/join_types.h (shared with the per-key
// planner and the pipelined driver).

/// Runs track join on tables r and s (same node count). `direction` is only
/// used by the 2-phase version. Inputs are not modified.
///
/// Fails (never aborts) on recoverable distributed-execution errors: an
/// active config.fault_policy whose losses exceed the retry budget or whose
/// crash fault hits a phase yields Status::DataLoss naming the phase;
/// payloads that decode inconsistently yield Status::Corruption. There is no
/// partial result: the query either completes exactly or returns an error.
Result<JoinResult> TryRunTrackJoin(const PartitionedTable& r,
                                   const PartitionedTable& s,
                                   const JoinConfig& config,
                                   TrackJoinVersion version,
                                   Direction direction = Direction::kRtoS);

/// Infallible wrapper: aborts if the run fails. Use only without an active
/// fault policy.
JoinResult RunTrackJoin(const PartitionedTable& r, const PartitionedTable& s,
                        const JoinConfig& config, TrackJoinVersion version,
                        Direction direction = Direction::kRtoS);

/// 2-phase track join with an explicit selective-broadcast direction.
inline JoinResult RunTrackJoin2(const PartitionedTable& r,
                                const PartitionedTable& s,
                                const JoinConfig& config, Direction direction) {
  return RunTrackJoin(r, s, config, TrackJoinVersion::k2Phase, direction);
}

/// 3-phase track join (per-key direction).
inline JoinResult RunTrackJoin3(const PartitionedTable& r,
                                const PartitionedTable& s,
                                const JoinConfig& config) {
  return RunTrackJoin(r, s, config, TrackJoinVersion::k3Phase);
}

/// 4-phase track join (per-key migration + broadcast; traffic-optimal).
inline JoinResult RunTrackJoin4(const PartitionedTable& r,
                                const PartitionedTable& s,
                                const JoinConfig& config) {
  return RunTrackJoin(r, s, config, TrackJoinVersion::k4Phase);
}

}  // namespace tj

#endif  // TJ_CORE_TRACK_JOIN_H_
