// Streaming (pipelined-style) 2-phase track join — the paper's Section 2
// pseudocode, implemented directly.
//
// The de-pipelined driver (core/track_join.h) sorts and aggregates before
// each phase, matching the paper's *measurement* methodology (Section 4.2).
// This driver instead follows the paper's *presentation*: processR and
// processS stream their tables tuple by tuple, sending each key to
// processT the first time it is seen ("if k not in TR then send k ...");
// processT accumulates <key, node> pairs as they arrive and, after the
// barrier, streams location messages back; tuples are then selectively
// broadcast and joined with hash tables, no sorting anywhere. Outgoing
// streams are batched per destination and flushed at a byte threshold —
// the network traffic is byte-identical to the sort-based driver (the
// integration tests assert this), only the local processing differs.
#ifndef TJ_CORE_STREAMING_TRACK_JOIN_H_
#define TJ_CORE_STREAMING_TRACK_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the streaming 2-phase track join with the given selective-broadcast
/// direction. `flush_bytes` caps each in-flight message buffer (streamed
/// implementations bound memory this way); 0 means one message per
/// destination per phase. Requires the plain wire format
/// (delta_tracking / group_locations off).
///
/// Fails with Status::DataLoss / Status::Corruption (never aborts, never a
/// partial result) on unrecoverable faults under an active
/// config.fault_policy — see core/track_join.h.
Result<JoinResult> TryRunStreamingTrackJoin2(const PartitionedTable& r,
                                             const PartitionedTable& s,
                                             const JoinConfig& config,
                                             Direction direction,
                                             uint64_t flush_bytes = 1 << 16);

/// Infallible wrapper: aborts if the run fails.
JoinResult RunStreamingTrackJoin2(const PartitionedTable& r,
                                  const PartitionedTable& s,
                                  const JoinConfig& config, Direction direction,
                                  uint64_t flush_bytes = 1 << 16);

}  // namespace tj

#endif  // TJ_CORE_STREAMING_TRACK_JOIN_H_
