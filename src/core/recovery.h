// Query-level fault recovery: checkpointed replay with replica failover.
//
// The de-pipelined phase/barrier execution gives natural recovery points:
// every barrier is a consistent cut, and because workloads are synthesized
// deterministically and the fabric delivers deterministically, a failed
// query can be replayed bit-exactly from its retained inputs — the
// "checkpoint" is the inputs plus the phase log, not a serialized heap.
//
// RecoveryManager drives the loop:
//   * run the join (attempt 0 uses the caller's fault seed bit-exactly, so
//     a run that never fails is byte-identical to an unmanaged run);
//   * on a *transient* failure (message loss with no node implicated),
//     charge a modeled exponential backoff and replay with a re-derived
//     fault seed;
//   * on a confirmed node death (fail-stop crash) or a suspected death
//     (straggler past the modeled phase deadline), re-plan the query
//     against the surviving replicas: dead partitions re-home onto their
//     chained-declustering holders (storage/replica.h), survivors compact
//     to a dense id space, and the join replays on the degraded cluster —
//     the per-key scheduler re-prices every transfer against the new
//     placement, and re-homed keys are tagged `failover` in the EXPLAIN
//     audit;
//   * give up after the attempt budget with a typed Unavailable error —
//     never an abort, a hang, or a partial result.
//
// Accounting: the successful attempt's traffic is re-indexed onto the
// original cluster's node ids; every failed attempt's wire bytes land on
// the TrafficMatrix recovery ledger (recovery_bytes), kept separate from
// goodput so "what the answer cost" and "what the failures cost" never mix.
#ifndef TJ_CORE_RECOVERY_H_
#define TJ_CORE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/join_types.h"
#include "storage/replica.h"

namespace tj {

struct RecoveryOptions {
  /// Total attempt budget, the first run included. 1 = no recovery.
  uint32_t max_attempts = 4;
  /// Modeled backoff before the first transient retry; doubles (by
  /// `backoff_multiplier`) per consecutive retry. Failovers do not back
  /// off — the replacement topology is available immediately.
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  /// Modeled per-phase deadline forwarded to the fabric (0 keeps the
  /// caller's JoinConfig value): stragglers past it are promoted to
  /// suspected-dead and failed over like crashes.
  double phase_deadline_seconds = 0;
};

/// One phase barrier a (successful or failed) attempt reached: the
/// checkpoint log recovery replays from and reports latency with.
struct PhaseCheckpoint {
  uint32_t attempt = 0;
  std::string phase;
  double wall_seconds = 0;
};

/// What recovery did for one query.
struct RecoveryReport {
  /// Attempts actually run (1 = first try succeeded).
  uint32_t attempts = 0;
  /// Replica failovers performed (distinct re-plans, not dead nodes).
  uint32_t failovers = 0;
  /// Transient retries performed (backoff + replay, same topology).
  uint32_t retries = 0;
  /// Nodes excluded from the final topology, original ids, ascending.
  std::vector<uint32_t> dead_nodes;
  /// Modeled seconds failed attempts burned before their failure.
  double wasted_seconds = 0;
  /// Modeled exponential-backoff seconds charged before retries.
  double backoff_seconds = 0;
  /// Modeled failover latency: wasted_seconds + backoff_seconds — how much
  /// later the answer arrived compared to a failure-free run.
  double recovery_seconds = 0;
  /// Wire bytes failed attempts burned (== the result's recovery ledger).
  uint64_t recovery_bytes = 0;
  /// Barrier log across all attempts, in execution order.
  std::vector<PhaseCheckpoint> checkpoints;
};

/// Any distributed join entry point with the Try* signature. The runner is
/// called once per attempt with the (possibly degraded) inputs and a
/// per-attempt JoinConfig.
using JoinRunner = std::function<Result<JoinResult>(
    const PartitionedTable& r, const PartitionedTable& s,
    const JoinConfig& config)>;

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryOptions options = {})
      : options_(options) {}

  /// Runs `runner` under the recovery loop. `r` and `s` must share the
  /// original cluster's node count. On success the JoinResult's traffic is
  /// expressed in original node ids with the recovery ledger filled; on
  /// budget exhaustion (or an unrecoverable placement) the error is a
  /// typed Status — Unavailable for exhausted budget / lost partitions,
  /// the runner's own code when the failure is not fault-shaped.
  Result<JoinResult> Run(const ReplicatedTable& r, const ReplicatedTable& s,
                         const JoinConfig& config, const JoinRunner& runner);

  /// Valid after Run() returns (success or failure).
  const RecoveryReport& report() const { return report_; }

 private:
  RecoveryOptions options_;
  RecoveryReport report_;
};

/// Convenience wrapper: one-shot RecoveryManager. Fills `report` (if
/// non-null) with what recovery did.
Result<JoinResult> RunWithRecovery(const ReplicatedTable& r,
                                   const ReplicatedTable& s,
                                   const JoinConfig& config,
                                   const RecoveryOptions& options,
                                   const JoinRunner& runner,
                                   RecoveryReport* report = nullptr);

/// True for Status codes that indicate an injected/modeled fault rather
/// than a usage or programming error: DataLoss (message loss, crash),
/// DeadlineExceeded (straggler promotion), Unavailable (no surviving
/// replica / budget exhausted) and Corruption (undetected wire damage).
/// Recovery retries exactly these; tjsim maps them to a dedicated exit
/// code.
bool IsFaultInduced(StatusCode code);

}  // namespace tj

#endif  // TJ_CORE_RECOVERY_H_
