#include "core/tracker.h"

#include <algorithm>

#include "common/hash.h"
#include "common/kway_merge.h"
#include "encoding/delta.h"
#include "encoding/varint.h"

namespace tj {

std::vector<ByteBuffer> EncodeTrackingMessages(
    const std::vector<KeyCount>& keys, const JoinConfig& config,
    bool with_counts, uint32_t num_nodes, BufferPool* pool) {
  std::vector<ByteBuffer> per_dest(num_nodes);
  const uint32_t entry_bytes =
      config.key_bytes + (with_counts ? config.count_bytes : 0);
  if (num_nodes > 0 &&
      (pool != nullptr || keys.size() >= static_cast<size_t>(num_nodes) * 4)) {
    // Hash partitioning spreads keys near-uniformly, so pre-size each
    // destination close to its final footprint. Delta streams come in under
    // the hint; the hint only bounds the growth-reallocation chain, never
    // the emitted bytes.
    const size_t hint = keys.size() * entry_bytes / num_nodes + 16;
    for (auto& buf : per_dest) {
      if (pool != nullptr) {
        buf = pool->Acquire(hint);
      } else {
        buf.reserve(hint);
      }
    }
  }
  if (config.delta_tracking) {
    // Sorted keys per destination, delta-coded; counts (if any) follow as
    // LEB128 in key order. Input keys arrive sorted, so per-destination
    // streams stay sorted.
    std::vector<std::vector<uint64_t>> dest_keys(num_nodes);
    std::vector<std::vector<uint64_t>> dest_counts(num_nodes);
    for (const auto& kc : keys) {
      uint32_t dest = HashPartition(kc.key, num_nodes);
      dest_keys[dest].push_back(kc.key);
      if (with_counts) dest_counts[dest].push_back(kc.count);
    }
    for (uint32_t d = 0; d < num_nodes; ++d) {
      if (dest_keys[d].empty()) continue;
      DeltaEncode(dest_keys[d], /*presorted=*/true, &per_dest[d]);
      if (with_counts) {
        for (uint64_t c : dest_counts[d]) EncodeLeb128(c, &per_dest[d]);
      }
    }
    return per_dest;
  }

  const uint64_t max_count =
      config.count_bytes >= 8 ? ~0ULL : (1ULL << (8 * config.count_bytes)) - 1;
  std::vector<ByteWriter> writers;
  writers.reserve(num_nodes);
  for (uint32_t d = 0; d < num_nodes; ++d) writers.emplace_back(&per_dest[d]);
  for (const auto& kc : keys) {
    TJ_CHECK(config.key_bytes == 8 || (kc.key >> (8 * config.key_bytes)) == 0)
        << "key does not fit in key_bytes";
    uint32_t dest = HashPartition(kc.key, num_nodes);
    if (!with_counts) {
      writers[dest].PutUint(kc.key, config.key_bytes);
      continue;
    }
    // Saturating chunks; the tracker re-aggregates duplicates.
    uint64_t remaining = kc.count;
    do {
      uint64_t chunk = std::min(remaining, max_count);
      writers[dest].PutUint(kc.key, config.key_bytes);
      writers[dest].PutUint(chunk, config.count_bytes);
      remaining -= chunk;
    } while (remaining > 0);
  }
  return per_dest;
}

std::vector<TrackEntry> DecodeTrackingMessage(const Message& message,
                                              const JoinConfig& config,
                                              bool with_counts) {
  std::vector<TrackEntry> entries;
  Status status =
      TryDecodeTrackingMessage(message, config, with_counts, &entries);
  TJ_CHECK(status.ok()) << status.ToString();
  return entries;
}

Status TryDecodeTrackingMessage(const Message& message,
                                const JoinConfig& config, bool with_counts,
                                std::vector<TrackEntry>* out) {
  out->clear();
  ByteReader reader(message.data);
  if (config.delta_tracking) {
    std::vector<uint64_t> keys;
    TJ_RETURN_IF_ERROR(TryDeltaDecode(&reader, &keys));
    out->reserve(keys.size());
    for (uint64_t key : keys) {
      out->push_back(TrackEntry{key, message.src, 1});
    }
    if (with_counts) {
      for (auto& e : *out) {
        TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &e.count));
      }
    }
    if (!reader.Done()) {
      return Status::Corruption("trailing bytes in tracking message");
    }
    return Status::OK();
  }
  const uint32_t entry_bytes =
      config.key_bytes + (with_counts ? config.count_bytes : 0);
  if (reader.remaining() % entry_bytes != 0) {
    return Status::Corruption("tracking message not a multiple of entry size");
  }
  out->reserve(reader.remaining() / entry_bytes);
  while (!reader.Done()) {
    uint64_t key = reader.GetUint(config.key_bytes);
    uint64_t count = with_counts ? reader.GetUint(config.count_bytes) : 1;
    out->push_back(TrackEntry{key, message.src, count});
  }
  return Status::OK();
}

void MergeTrackEntries(std::vector<TrackEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const TrackEntry& a, const TrackEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.node < b.node;
            });
  size_t out = 0;
  for (size_t i = 0; i < entries->size();) {
    TrackEntry merged = (*entries)[i];
    size_t j = i + 1;
    while (j < entries->size() && (*entries)[j].key == merged.key &&
           (*entries)[j].node == merged.node) {
      merged.count += (*entries)[j].count;
      ++j;
    }
    (*entries)[out++] = merged;
    i = j;
  }
  entries->resize(out);
}

uint64_t TrackingMessageCursor::ReadLeb(size_t* pos) {
  // Bounds and termination were proven by Init's validation pass.
  uint64_t v = 0;
  uint32_t shift = 0;
  while (true) {
    uint8_t b = data_[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

uint64_t TrackingMessageCursor::ReadUint(size_t* pos, uint32_t bytes) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(data_[(*pos)++]) << (8 * i);
  }
  return v;
}

void TrackingMessageCursor::DecodeHead() {
  if (delta_) {
    key_ += ReadLeb(&key_pos_);  // Gaps accumulate from zero.
    count_ = with_counts_ ? ReadLeb(&count_pos_) : 1;
  } else {
    key_ = ReadUint(&key_pos_, key_bytes_);
    count_ = with_counts_ ? ReadUint(&key_pos_, count_bytes_) : 1;
  }
}

void TrackingMessageCursor::Next() {
  --remaining_;
  if (remaining_ > 0) DecodeHead();
}

Status TrackingMessageCursor::Init(const Message& message,
                                   const JoinConfig& config,
                                   bool with_counts) {
  data_ = message.data.data();
  node_ = message.src;
  key_bytes_ = config.key_bytes;
  count_bytes_ = config.count_bytes;
  delta_ = config.delta_tracking;
  with_counts_ = with_counts;
  sorted_ = true;
  total_ = 0;
  remaining_ = 0;
  key_ = 0;
  count_ = 1;
  ByteReader reader(message.data);
  if (delta_) {
    uint64_t n = 0;
    TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &n));
    if (n > reader.remaining()) {
      return Status::Corruption("delta stream count exceeds payload");
    }
    key_pos_ = message.data.size() - reader.remaining();
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t gap = 0;
      TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &gap));
      // Delta streams are sorted by construction, but an adversarial stream
      // can wrap uint64_t and decode non-monotonically; mirror the decoded
      // key sequence so such input falls back to the reference path.
      uint64_t next = prev + gap;
      if (next < prev) sorted_ = false;
      prev = next;
    }
    count_pos_ = message.data.size() - reader.remaining();
    if (with_counts) {
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t c = 0;
        TJ_RETURN_IF_ERROR(TryDecodeLeb128(&reader, &c));
      }
    }
    if (!reader.Done()) {
      return Status::Corruption("trailing bytes in tracking message");
    }
    total_ = n;
  } else {
    const uint32_t entry_bytes =
        key_bytes_ + (with_counts ? count_bytes_ : 0);
    if (reader.remaining() % entry_bytes != 0) {
      return Status::Corruption(
          "tracking message not a multiple of entry size");
    }
    total_ = reader.remaining() / entry_bytes;
    key_pos_ = 0;
    // One sortedness scan over the keys; saturated count chunks repeat a
    // key (non-decreasing), which the merge aggregates like any duplicate.
    uint64_t prev = 0;
    size_t pos = 0;
    for (uint64_t i = 0; i < total_; ++i) {
      uint64_t k = ReadUint(&pos, key_bytes_);
      if (with_counts_) pos += count_bytes_;
      if (i > 0 && k < prev) {
        sorted_ = false;
        break;
      }
      prev = k;
    }
  }
  remaining_ = total_;
  if (remaining_ > 0) DecodeHead();
  return Status::OK();
}

namespace {

/// Orders merge cursors by (key, node) — the MergeTrackEntries order.
struct TrackCursorLess {
  bool operator()(const TrackingMessageCursor& a,
                  const TrackingMessageCursor& b) const {
    if (a.key() != b.key()) return a.key() < b.key();
    return a.node() < b.node();
  }
};

}  // namespace

Status TryMergeTrackingMessages(const std::vector<Message>& messages,
                                const JoinConfig& config, bool with_counts,
                                std::vector<TrackEntry>* out) {
  out->clear();
  std::vector<TrackingMessageCursor> cursors;
  cursors.reserve(messages.size());
  uint64_t total = 0;
  bool sorted = true;
  for (const auto& msg : messages) {
    TrackingMessageCursor cursor;
    TJ_RETURN_IF_ERROR(cursor.Init(msg, config, with_counts));
    sorted = sorted && cursor.sorted();
    total += cursor.entries();
    if (cursor.Valid()) cursors.push_back(cursor);
  }
  if (!sorted) {
    // Unsorted stream (legacy sender or adversarial input): concatenate and
    // take the reference path.
    out->reserve(total);
    std::vector<TrackEntry> entries;
    for (const auto& msg : messages) {
      TJ_RETURN_IF_ERROR(
          TryDecodeTrackingMessage(msg, config, with_counts, &entries));
      out->insert(out->end(), entries.begin(), entries.end());
    }
    MergeTrackEntries(out);
    return Status::OK();
  }
  out->reserve(total);
  LoserTree<TrackingMessageCursor, TrackCursorLess> tree(&cursors);
  while (!tree.Done()) {
    const TrackingMessageCursor& top = tree.Top();
    if (!out->empty()) {
      TrackEntry& back = out->back();
      if (back.key == top.key() && back.node == top.node()) {
        back.count += top.count();
        tree.Pop();
        continue;
      }
    }
    out->push_back(TrackEntry{top.key(), top.node(), top.count()});
    tree.Pop();
  }
  return Status::OK();
}

PlacementIterator::PlacementIterator(const std::vector<TrackEntry>& r_entries,
                                     const std::vector<TrackEntry>& s_entries,
                                     uint32_t width_r, uint32_t width_s,
                                     uint32_t tracker, uint64_t msg_bytes)
    : r_entries_(r_entries),
      s_entries_(s_entries),
      width_r_(width_r),
      width_s_(width_s) {
  placement_.tracker = tracker;
  placement_.msg_bytes = msg_bytes;
}

bool PlacementIterator::Next() {
  while (ri_ < r_entries_.size() && si_ < s_entries_.size()) {
    uint64_t rk = r_entries_[ri_].key;
    uint64_t sk = s_entries_[si_].key;
    if (rk < sk) {
      while (ri_ < r_entries_.size() && r_entries_[ri_].key == rk) ++ri_;
    } else if (sk < rk) {
      while (si_ < s_entries_.size() && s_entries_[si_].key == sk) ++si_;
    } else {
      key_ = rk;
      placement_.r.clear();
      placement_.s.clear();
      r_rows_ = 0;
      s_rows_ = 0;
      while (ri_ < r_entries_.size() && r_entries_[ri_].key == rk) {
        placement_.r.push_back(NodeSize{r_entries_[ri_].node,
                                        r_entries_[ri_].count * width_r_});
        r_rows_ += r_entries_[ri_].count;
        ++ri_;
      }
      while (si_ < s_entries_.size() && s_entries_[si_].key == rk) {
        placement_.s.push_back(NodeSize{s_entries_[si_].node,
                                        s_entries_[si_].count * width_s_});
        s_rows_ += s_entries_[si_].count;
        ++si_;
      }
      return true;
    }
  }
  return false;
}

bool PlacementIterator::OutputProductAtLeast(uint64_t threshold) const {
  uint64_t product;
  if (__builtin_mul_overflow(r_rows_, s_rows_, &product)) {
    return true;  // Saturate: the true product certainly exceeds any u64.
  }
  return product >= threshold;
}

ByteBuffer EncodeKeyNodePairs(const std::vector<KeyNodePair>& pairs,
                              const JoinConfig& config, BufferPool* pool) {
  ByteBuffer out;
  if (config.group_locations) {
    if (pool != nullptr) out = pool->Acquire();
    NodeGroupEncode(pairs, config.key_bytes, &out);
    return out;
  }
  const size_t hint = pairs.size() * (config.key_bytes + config.node_bytes);
  if (pool != nullptr) {
    out = pool->Acquire(hint);
  } else {
    out.reserve(hint);
  }
  ByteWriter writer(&out);
  for (const auto& p : pairs) {
    writer.PutUint(p.key, config.key_bytes);
    writer.PutUint(p.node, config.node_bytes);
  }
  return out;
}

std::vector<KeyNodePair> DecodeKeyNodePairs(const Message& message,
                                            const JoinConfig& config) {
  std::vector<KeyNodePair> pairs;
  Status status = TryDecodeKeyNodePairs(message, config, &pairs);
  TJ_CHECK(status.ok()) << status.ToString();
  return pairs;
}

std::vector<WireChunk> SliceEntryMessage(const ByteBuffer& message,
                                         uint32_t entry_bytes,
                                         uint32_t key_bytes,
                                         uint64_t chunk_bytes) {
  TJ_CHECK_GT(key_bytes, 0u);
  TJ_CHECK_LE(key_bytes, entry_bytes);
  TJ_CHECK_EQ(message.size() % entry_bytes, 0u);
  const uint64_t total_entries = message.size() / entry_bytes;
  const uint64_t per_chunk =
      std::max<uint64_t>(1, chunk_bytes / entry_bytes);
  std::vector<WireChunk> chunks;
  chunks.reserve((total_entries + per_chunk - 1) / per_chunk);
  for (uint64_t first = 0; first < total_entries; first += per_chunk) {
    const uint64_t count = std::min(per_chunk, total_entries - first);
    WireChunk chunk;
    chunk.data.assign(message.begin() + first * entry_bytes,
                      message.begin() + (first + count) * entry_bytes);
    const uint8_t* last_entry =
        message.data() + (first + count - 1) * entry_bytes;
    uint64_t key = 0;
    for (uint32_t b = 0; b < key_bytes; ++b) {
      key |= static_cast<uint64_t>(last_entry[b]) << (8 * b);
    }
    chunk.watermark = key;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

Status TryDecodeKeyNodePairs(const Message& message, const JoinConfig& config,
                             std::vector<KeyNodePair>* out) {
  out->clear();
  ByteReader reader(message.data);
  if (config.group_locations) {
    return TryNodeGroupDecode(&reader, config.key_bytes, out);
  }
  const uint32_t pair_bytes = config.key_bytes + config.node_bytes;
  if (reader.remaining() % pair_bytes != 0) {
    return Status::Corruption("location message not a multiple of pair size");
  }
  out->reserve(reader.remaining() / pair_bytes);
  while (!reader.Done()) {
    KeyNodePair p;
    p.key = reader.GetUint(config.key_bytes);
    p.node = static_cast<uint32_t>(reader.GetUint(config.node_bytes));
    out->push_back(p);
  }
  return Status::OK();
}

}  // namespace tj
