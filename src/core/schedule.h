// Per-key transfer scheduling — the core contribution of the paper.
//
// For each distinct join key, given the per-node byte totals of matching R
// and S tuples, these functions compute:
//   * the cost of a plain selective broadcast in either direction
//     (2-/3-phase track join, paper "Algorithm track join: broadcast R to S");
//   * the optimal migrate-then-broadcast plan in either direction
//     (4-phase track join, paper "Algorithm track join: migrate S &
//     broadcast R", Theorems 1 and 2);
//   * the overall optimal schedule: the cheaper direction's plan, which by
//     Theorem 2 achieves the minimum network traffic possible for the
//     single-key cartesian-product join.
//
// Costs include the location messages of size M the tracker must send
// (free when the recipient is the tracker itself) and the migration
// instructions of 4-phase track join.
#ifndef TJ_CORE_SCHEDULE_H_
#define TJ_CORE_SCHEDULE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/join_types.h"
#include "encoding/node_group.h"

namespace tj {

/// Per-node byte total of one table's matching tuples for one key.
/// Only nodes with bytes > 0 appear in placements.
struct NodeSize {
  uint32_t node;
  uint64_t bytes;

  bool operator==(const NodeSize&) const = default;
};

/// Everything the tracker knows about one distinct key.
struct KeyPlacement {
  std::vector<NodeSize> r;  ///< Nodes holding matching R tuples (bytes > 0).
  std::vector<NodeSize> s;  ///< Nodes holding matching S tuples (bytes > 0).
  uint32_t tracker = 0;     ///< self: the node running the scheduler.
  uint64_t msg_bytes = 0;   ///< Location/migration message size M.
};

/// Network cost of selectively broadcasting the `dir` source table's tuples
/// to the other table's locations, with no migration:
///   cost = Ball*Tnodes - Blocal + Bnodes*Tnodes*M
/// Returns 0 if either side is empty (no match: nothing is sent).
uint64_t SelectiveBroadcastCost(const KeyPlacement& placement, Direction dir);

/// A migrate-then-broadcast plan for one direction.
struct MigrationPlan {
  /// Total network bytes: broadcast + location messages + migration
  /// instructions + migrated tuples.
  uint64_t cost = 0;
  /// Nodes of the broadcast-*target* table whose tuples migrate away.
  std::vector<uint32_t> migrate;
  /// Their destination: the kept target node maximizing |R_i|+|S_i|.
  uint32_t dest = 0;
};

/// Computes the optimal migration set for broadcasting in direction `dir`
/// (paper Theorem 1: each node's keep/migrate choice is independent).
MigrationPlan PlanMigrateAndBroadcast(const KeyPlacement& placement,
                                      Direction dir);

/// The full 4-phase decision for one key: the cheaper direction's
/// migrate-and-broadcast plan (Theorem 2: this is the global optimum).
/// Ties choose R->S.
struct KeySchedule {
  Direction dir = Direction::kRtoS;
  MigrationPlan plan;
};
KeySchedule PlanOptimal(const KeyPlacement& placement);

/// The 3-phase decision: cheaper plain selective-broadcast direction.
/// Ties choose R->S. If `cost_out` is non-null it receives the winning cost.
Direction CheaperBroadcastDirection(const KeyPlacement& placement,
                                    uint64_t* cost_out = nullptr);

// --- Hot-key splitting (skew-robust scheduling) ---------------------------
//
// The per-key optimum (Theorem 2) minimizes bytes but concentrates a hot
// key's entire |R| x |S| cartesian product on one node. A HotKeyPlan
// instead fragments the target side's tuples across w worker nodes and
// broadcasts the other side to all w of them (a SharesSkew-style
// partitioned broadcast): every fragment holds all broadcast rows, so each
// (r, s) pair still joins exactly once, while the worst node's ingress and
// join work drop by ~w at the price of (w-1) extra broadcast copies.

/// A partitioned-broadcast plan for one hot key.
struct HotKeyPlan {
  /// False when no direction has both sides populated (nothing to plan).
  bool valid = false;
  /// Broadcast direction: this side's tuples are replicated to every
  /// worker; the opposite (target) side is fragmented across them.
  Direction dir = Direction::kRtoS;
  /// The w fragment-side nodes that receive work, in instruction order
  /// (ranked by local fragment+broadcast bytes, descending; ties keep the
  /// lowest node id, so w = 1 picks the same node the migration plan's
  /// forced-keep rule does).
  std::vector<uint32_t> workers;
  /// Total modeled network bytes: broadcast copies + location messages +
  /// fragment instructions + fragment payloads. Byte-exact against the
  /// wire under the default encodings, like MigrationPlan::cost.
  uint64_t cost = 0;
  /// Max modeled tuple bytes received by any single worker (fragments plus
  /// missing broadcast rows) — the quantity splitting exists to minimize.
  uint64_t bottleneck = 0;

  uint32_t split() const { return static_cast<uint32_t>(workers.size()); }
};

/// Searches both directions and every width w in [1, max_split] (0 = no
/// cap) for the plan with the smallest bottleneck; ties prefer lower total
/// cost, then smaller w, then R->S. Candidates whose total cost is not
/// strictly below the cheaper selective-broadcast direction are discarded
/// (at w = |targets| the split degenerates into that broadcast), so an
/// invalid result means "no split undercuts plain broadcast here".
/// `width_r`/`width_s` are serialized tuple widths — placement bytes are
/// exact multiples, and fragment chunks are modeled row-by-row exactly as
/// the transfer phase splits them.
HotKeyPlan PlanHotSplit(const KeyPlacement& placement, uint32_t width_r,
                        uint32_t width_s, uint32_t max_split);

/// Max modeled tuple bytes received by any node under a
/// migrate-and-broadcast schedule (kept targets receive the broadcast they
/// lack; the destination also absorbs every migrated payload).
uint64_t PlanBottleneck(const KeyPlacement& placement, Direction dir,
                        const MigrationPlan& plan);

/// Max modeled tuple bytes received by any node under plain selective
/// broadcast in direction `dir`.
uint64_t BroadcastBottleneck(const KeyPlacement& placement, Direction dir);

// --- Scheduler audit ("EXPLAIN") ------------------------------------------
//
// When a ScheduleAuditLog is attached (JoinConfig::schedule_audit), the
// track-join scheduling phase records one KeyScheduleAudit per distinct
// key: both selective-broadcast costs, both migrate-and-broadcast plans,
// the decision actually taken, and the per-key cost a Grace hash join
// would have paid. Recording is strictly passive — the audited costs are
// recomputed from the same pure cost functions the scheduler uses, so
// attaching a log changes neither schedules nor traffic.

/// How one key's schedule is classified for aggregate reporting.
enum class ScheduleClass : uint8_t {
  kFree = 0,           ///< Chosen cost 0: single-node or unmatched key.
  kBroadcastRtoS = 1,  ///< Plain selective broadcast, R tuples travel.
  kBroadcastStoR = 2,  ///< Plain selective broadcast, S tuples travel.
  kMigrated = 3,       ///< 4-phase plan with a non-empty migration set.
  kFailover = 4,       ///< Key re-planned against surviving replicas after
                       ///< a node death (any shape of transfer).
  kHotSplit = 5,       ///< Heavy hitter split across w workers (partitioned
                       ///< broadcast; see HotKeyPlan).
};
inline constexpr int kNumScheduleClasses = 6;

inline const char* ScheduleClassName(ScheduleClass cls) {
  switch (cls) {
    case ScheduleClass::kFree: return "free";
    case ScheduleClass::kBroadcastRtoS: return "broadcast_r_to_s";
    case ScheduleClass::kBroadcastStoR: return "broadcast_s_to_r";
    case ScheduleClass::kMigrated: return "migrated";
    case ScheduleClass::kFailover: return "failover";
    case ScheduleClass::kHotSplit: return "hot_split";
  }
  return "unknown";
}

/// Everything the scheduler considered and decided for one distinct key.
/// Direction-indexed arrays use static_cast<int>(Direction): 0 = R->S.
struct KeyScheduleAudit {
  uint64_t key = 0;
  /// SelectiveBroadcastCost in each direction (2-/3-phase candidates).
  uint64_t broadcast_cost[2] = {0, 0};
  /// PlanMigrateAndBroadcast cost in each direction (4-phase candidates).
  uint64_t plan_cost[2] = {0, 0};
  /// Size of each direction's optimal migration set.
  uint32_t migrate_count[2] = {0, 0};
  /// What the run actually did for this key.
  Direction chosen_dir = Direction::kRtoS;
  uint64_t chosen_cost = 0;
  uint32_t chosen_migrations = 0;
  /// Worker count of an adopted HotKeyPlan; 0 when the key was not split.
  uint32_t chosen_split = 0;
  /// What a Grace hash join would move for this key: all matching bytes
  /// except those already resident at the key's hash destination (which is
  /// the tracker node, by construction).
  uint64_t hash_join_cost = 0;
  /// Total matching bytes and node counts per side (placement summary).
  uint64_t r_bytes = 0, s_bytes = 0;
  uint32_t r_nodes = 0, s_nodes = 0;
  ScheduleClass cls = ScheduleClass::kFree;
};

/// Fills the decision-independent audit fields (both directions' costs and
/// plans, the hash-join reference cost, placement summary) from one
/// placement. The caller sets chosen_* and then ClassifyAudit.
KeyScheduleAudit AuditPlacement(const KeyPlacement& placement);

/// Derives the decision class from the chosen_* fields.
inline ScheduleClass ClassifyAudit(const KeyScheduleAudit& audit) {
  if (audit.chosen_split > 0) return ScheduleClass::kHotSplit;
  if (audit.chosen_cost == 0 && audit.chosen_migrations == 0) {
    return ScheduleClass::kFree;
  }
  if (audit.chosen_migrations > 0) return ScheduleClass::kMigrated;
  return audit.chosen_dir == Direction::kRtoS
             ? ScheduleClass::kBroadcastRtoS
             : ScheduleClass::kBroadcastStoR;
}

/// Per-key audit sink. Mirrors the fabric's race-free queue design: each
/// tracker node appends only to its own lane during the scheduling phase,
/// so concurrent phase execution needs no locking, and collection in node
/// order keeps output deterministic. Fully inline so obs/ renderers can
/// consume audits without linking the core scheduler.
class ScheduleAuditLog {
 public:
  /// Arms the log for a run over `num_nodes` tracker nodes, dropping any
  /// previous run's records. The failover key set survives: recovery arms
  /// it once per failover and then replays the (audited) join.
  void Reset(uint32_t num_nodes) { lanes_.assign(num_nodes, {}); }

  bool armed() const { return !lanes_.empty(); }

  /// Marks keys whose rows were re-homed onto surviving replicas: their
  /// audits are re-classified as ScheduleClass::kFailover at Record time.
  /// Chosen costs are untouched, so the EXPLAIN byte reconciliation keeps
  /// holding — failover only changes which class a key's bytes bill to.
  /// Sorts and dedups in place; an empty vector clears the marking.
  void SetFailoverKeys(std::vector<uint64_t> keys) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    failover_keys_ = std::move(keys);
  }

  bool IsFailoverKey(uint64_t key) const {
    return std::binary_search(failover_keys_.begin(), failover_keys_.end(),
                              key);
  }

  /// Appends one key's audit. Only node `node`'s phase work may call this
  /// (same ownership rule as Fabric::Send).
  void Record(uint32_t node, const KeyScheduleAudit& audit) {
    if (!failover_keys_.empty() && IsFailoverKey(audit.key)) {
      KeyScheduleAudit tagged = audit;
      tagged.cls = ScheduleClass::kFailover;
      lanes_[node].push_back(tagged);
      return;
    }
    lanes_[node].push_back(audit);
  }

  /// All records, concatenated in tracker-node order.
  std::vector<KeyScheduleAudit> Collect() const {
    std::vector<KeyScheduleAudit> out;
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    out.reserve(total);
    for (const auto& lane : lanes_) {
      out.insert(out.end(), lane.begin(), lane.end());
    }
    return out;
  }

 private:
  std::vector<std::vector<KeyScheduleAudit>> lanes_;
  /// Sorted, deduped keys re-homed by replica failover.
  std::vector<uint64_t> failover_keys_;
};

/// Reference implementation for testing: exhaustively minimizes the paper's
/// integer program (min sum x_ij|R_i| + y_ij|S_j| s.t. every (i,j) pair is
/// joined somewhere) over all keep/migrate subsets in both directions, with
/// message costs included. Exponential; test-only.
uint64_t ExhaustiveOptimalCost(const KeyPlacement& placement);

/// Balance-aware scheduling (paper Section 5: "If some nodes exhibit more
/// locality than others, we need to take into account the balancing of
/// transfers among nodes and not only aim for minimal network traffic").
///
/// The per-key optimum leaves two traffic-free degrees of freedom:
///  * the migration destination may be ANY kept target node, and
///  * cost ties between the two directions are arbitrary.
/// A LoadBalancer spends both on the node with the least accumulated
/// ingress so far, so hot nodes stop attracting every consolidation.
/// Total network traffic is identical to PlanOptimal's by construction.
class LoadBalancer {
 public:
  explicit LoadBalancer(uint32_t num_nodes) : ingress_(num_nodes, 0) {}

  /// Like PlanOptimal, but breaks ties by projected ingress and records
  /// the schedule's per-node ingress for subsequent keys.
  KeySchedule PlanBalanced(const KeyPlacement& placement);

  /// Ingress bytes attributed so far (schedule data only, not tracking).
  const std::vector<uint64_t>& ingress() const { return ingress_; }

 private:
  std::vector<uint64_t> ingress_;
};

// --- Shared per-key planner ----------------------------------------------
//
// The scheduling phase's per-key decision logic (3TJ direction choice, 4TJ
// optimal/balanced migration plan, hot-split adoption, audit recording, and
// the fan-out into location / migration / fragment instruction pairs) is
// identical whether keys arrive all at once (barrier driver) or one frontier
// batch at a time (pipelined driver). KeyPlanner owns that logic so the two
// drivers cannot drift: instruction pairs, audit records and therefore
// traffic matrices stay byte-identical by construction.

/// Instruction pairs one planning pass appends, per destination node.
struct KeyPlanOutputs {
  std::vector<std::vector<KeyNodePair>> loc_to_r, loc_to_s;
  std::vector<std::vector<KeyNodePair>> migr_r, migr_s;
  std::vector<std::vector<KeyNodePair>> frag_r, frag_s;

  explicit KeyPlanOutputs(uint32_t num_nodes)
      : loc_to_r(num_nodes), loc_to_s(num_nodes), migr_r(num_nodes),
        migr_s(num_nodes), frag_r(num_nodes), frag_s(num_nodes) {}

  void Clear() {
    for (auto* group : {&loc_to_r, &loc_to_s, &migr_r, &migr_s, &frag_r,
                        &frag_s}) {
      for (auto& pairs : *group) pairs.clear();
    }
  }
};

/// Plans one key at a time. Stateful: the balance-aware mode's LoadBalancer
/// accumulates projected ingress across calls, so a pipelined driver feeding
/// frontier batches in key order reproduces the barrier driver's schedule
/// exactly. Not thread-safe; one instance per tracker node.
class KeyPlanner {
 public:
  /// `audit` may be null (no EXPLAIN recording). `width_r`/`width_s` are
  /// serialized tuple widths; `direction` is the fixed 2-phase direction.
  KeyPlanner(const JoinConfig& config, TrackJoinVersion version,
             Direction direction, uint32_t num_nodes, uint32_t tracker,
             uint32_t width_r, uint32_t width_s, ScheduleAuditLog* audit)
      : config_(config), version_(version), direction_(direction),
        tracker_(tracker), width_r_(width_r), width_s_(width_s),
        audit_(audit), balancer_(num_nodes) {}

  /// Decides `key`'s schedule and appends its instruction pairs to `out`.
  /// `hot_candidate` is the caller's PlacementIterator::OutputProductAtLeast
  /// verdict (always false outside 4-phase or with splitting disabled).
  void PlanKey(uint64_t key, const KeyPlacement& placement, bool hot_candidate,
               KeyPlanOutputs* out);

 private:
  JoinConfig config_;
  TrackJoinVersion version_;
  Direction direction_;
  uint32_t tracker_;
  uint32_t width_r_;
  uint32_t width_s_;
  ScheduleAuditLog* audit_;
  LoadBalancer balancer_;
};

}  // namespace tj

#endif  // TJ_CORE_SCHEDULE_H_
