// Per-key transfer scheduling — the core contribution of the paper.
//
// For each distinct join key, given the per-node byte totals of matching R
// and S tuples, these functions compute:
//   * the cost of a plain selective broadcast in either direction
//     (2-/3-phase track join, paper "Algorithm track join: broadcast R to S");
//   * the optimal migrate-then-broadcast plan in either direction
//     (4-phase track join, paper "Algorithm track join: migrate S &
//     broadcast R", Theorems 1 and 2);
//   * the overall optimal schedule: the cheaper direction's plan, which by
//     Theorem 2 achieves the minimum network traffic possible for the
//     single-key cartesian-product join.
//
// Costs include the location messages of size M the tracker must send
// (free when the recipient is the tracker itself) and the migration
// instructions of 4-phase track join.
#ifndef TJ_CORE_SCHEDULE_H_
#define TJ_CORE_SCHEDULE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/join_types.h"

namespace tj {

/// Per-node byte total of one table's matching tuples for one key.
/// Only nodes with bytes > 0 appear in placements.
struct NodeSize {
  uint32_t node;
  uint64_t bytes;

  bool operator==(const NodeSize&) const = default;
};

/// Everything the tracker knows about one distinct key.
struct KeyPlacement {
  std::vector<NodeSize> r;  ///< Nodes holding matching R tuples (bytes > 0).
  std::vector<NodeSize> s;  ///< Nodes holding matching S tuples (bytes > 0).
  uint32_t tracker = 0;     ///< self: the node running the scheduler.
  uint64_t msg_bytes = 0;   ///< Location/migration message size M.
};

/// Network cost of selectively broadcasting the `dir` source table's tuples
/// to the other table's locations, with no migration:
///   cost = Ball*Tnodes - Blocal + Bnodes*Tnodes*M
/// Returns 0 if either side is empty (no match: nothing is sent).
uint64_t SelectiveBroadcastCost(const KeyPlacement& placement, Direction dir);

/// A migrate-then-broadcast plan for one direction.
struct MigrationPlan {
  /// Total network bytes: broadcast + location messages + migration
  /// instructions + migrated tuples.
  uint64_t cost = 0;
  /// Nodes of the broadcast-*target* table whose tuples migrate away.
  std::vector<uint32_t> migrate;
  /// Their destination: the kept target node maximizing |R_i|+|S_i|.
  uint32_t dest = 0;
};

/// Computes the optimal migration set for broadcasting in direction `dir`
/// (paper Theorem 1: each node's keep/migrate choice is independent).
MigrationPlan PlanMigrateAndBroadcast(const KeyPlacement& placement,
                                      Direction dir);

/// The full 4-phase decision for one key: the cheaper direction's
/// migrate-and-broadcast plan (Theorem 2: this is the global optimum).
/// Ties choose R->S.
struct KeySchedule {
  Direction dir = Direction::kRtoS;
  MigrationPlan plan;
};
KeySchedule PlanOptimal(const KeyPlacement& placement);

/// The 3-phase decision: cheaper plain selective-broadcast direction.
/// Ties choose R->S. If `cost_out` is non-null it receives the winning cost.
Direction CheaperBroadcastDirection(const KeyPlacement& placement,
                                    uint64_t* cost_out = nullptr);

// --- Scheduler audit ("EXPLAIN") ------------------------------------------
//
// When a ScheduleAuditLog is attached (JoinConfig::schedule_audit), the
// track-join scheduling phase records one KeyScheduleAudit per distinct
// key: both selective-broadcast costs, both migrate-and-broadcast plans,
// the decision actually taken, and the per-key cost a Grace hash join
// would have paid. Recording is strictly passive — the audited costs are
// recomputed from the same pure cost functions the scheduler uses, so
// attaching a log changes neither schedules nor traffic.

/// How one key's schedule is classified for aggregate reporting.
enum class ScheduleClass : uint8_t {
  kFree = 0,           ///< Chosen cost 0: single-node or unmatched key.
  kBroadcastRtoS = 1,  ///< Plain selective broadcast, R tuples travel.
  kBroadcastStoR = 2,  ///< Plain selective broadcast, S tuples travel.
  kMigrated = 3,       ///< 4-phase plan with a non-empty migration set.
  kFailover = 4,       ///< Key re-planned against surviving replicas after
                       ///< a node death (any shape of transfer).
};
inline constexpr int kNumScheduleClasses = 5;

inline const char* ScheduleClassName(ScheduleClass cls) {
  switch (cls) {
    case ScheduleClass::kFree: return "free";
    case ScheduleClass::kBroadcastRtoS: return "broadcast_r_to_s";
    case ScheduleClass::kBroadcastStoR: return "broadcast_s_to_r";
    case ScheduleClass::kMigrated: return "migrated";
    case ScheduleClass::kFailover: return "failover";
  }
  return "unknown";
}

/// Everything the scheduler considered and decided for one distinct key.
/// Direction-indexed arrays use static_cast<int>(Direction): 0 = R->S.
struct KeyScheduleAudit {
  uint64_t key = 0;
  /// SelectiveBroadcastCost in each direction (2-/3-phase candidates).
  uint64_t broadcast_cost[2] = {0, 0};
  /// PlanMigrateAndBroadcast cost in each direction (4-phase candidates).
  uint64_t plan_cost[2] = {0, 0};
  /// Size of each direction's optimal migration set.
  uint32_t migrate_count[2] = {0, 0};
  /// What the run actually did for this key.
  Direction chosen_dir = Direction::kRtoS;
  uint64_t chosen_cost = 0;
  uint32_t chosen_migrations = 0;
  /// What a Grace hash join would move for this key: all matching bytes
  /// except those already resident at the key's hash destination (which is
  /// the tracker node, by construction).
  uint64_t hash_join_cost = 0;
  /// Total matching bytes and node counts per side (placement summary).
  uint64_t r_bytes = 0, s_bytes = 0;
  uint32_t r_nodes = 0, s_nodes = 0;
  ScheduleClass cls = ScheduleClass::kFree;
};

/// Fills the decision-independent audit fields (both directions' costs and
/// plans, the hash-join reference cost, placement summary) from one
/// placement. The caller sets chosen_* and then ClassifyAudit.
KeyScheduleAudit AuditPlacement(const KeyPlacement& placement);

/// Derives the decision class from the chosen_* fields.
inline ScheduleClass ClassifyAudit(const KeyScheduleAudit& audit) {
  if (audit.chosen_cost == 0 && audit.chosen_migrations == 0) {
    return ScheduleClass::kFree;
  }
  if (audit.chosen_migrations > 0) return ScheduleClass::kMigrated;
  return audit.chosen_dir == Direction::kRtoS
             ? ScheduleClass::kBroadcastRtoS
             : ScheduleClass::kBroadcastStoR;
}

/// Per-key audit sink. Mirrors the fabric's race-free queue design: each
/// tracker node appends only to its own lane during the scheduling phase,
/// so concurrent phase execution needs no locking, and collection in node
/// order keeps output deterministic. Fully inline so obs/ renderers can
/// consume audits without linking the core scheduler.
class ScheduleAuditLog {
 public:
  /// Arms the log for a run over `num_nodes` tracker nodes, dropping any
  /// previous run's records. The failover key set survives: recovery arms
  /// it once per failover and then replays the (audited) join.
  void Reset(uint32_t num_nodes) { lanes_.assign(num_nodes, {}); }

  bool armed() const { return !lanes_.empty(); }

  /// Marks keys whose rows were re-homed onto surviving replicas: their
  /// audits are re-classified as ScheduleClass::kFailover at Record time.
  /// Chosen costs are untouched, so the EXPLAIN byte reconciliation keeps
  /// holding — failover only changes which class a key's bytes bill to.
  /// Sorts and dedups in place; an empty vector clears the marking.
  void SetFailoverKeys(std::vector<uint64_t> keys) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    failover_keys_ = std::move(keys);
  }

  bool IsFailoverKey(uint64_t key) const {
    return std::binary_search(failover_keys_.begin(), failover_keys_.end(),
                              key);
  }

  /// Appends one key's audit. Only node `node`'s phase work may call this
  /// (same ownership rule as Fabric::Send).
  void Record(uint32_t node, const KeyScheduleAudit& audit) {
    if (!failover_keys_.empty() && IsFailoverKey(audit.key)) {
      KeyScheduleAudit tagged = audit;
      tagged.cls = ScheduleClass::kFailover;
      lanes_[node].push_back(tagged);
      return;
    }
    lanes_[node].push_back(audit);
  }

  /// All records, concatenated in tracker-node order.
  std::vector<KeyScheduleAudit> Collect() const {
    std::vector<KeyScheduleAudit> out;
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    out.reserve(total);
    for (const auto& lane : lanes_) {
      out.insert(out.end(), lane.begin(), lane.end());
    }
    return out;
  }

 private:
  std::vector<std::vector<KeyScheduleAudit>> lanes_;
  /// Sorted, deduped keys re-homed by replica failover.
  std::vector<uint64_t> failover_keys_;
};

/// Reference implementation for testing: exhaustively minimizes the paper's
/// integer program (min sum x_ij|R_i| + y_ij|S_j| s.t. every (i,j) pair is
/// joined somewhere) over all keep/migrate subsets in both directions, with
/// message costs included. Exponential; test-only.
uint64_t ExhaustiveOptimalCost(const KeyPlacement& placement);

/// Balance-aware scheduling (paper Section 5: "If some nodes exhibit more
/// locality than others, we need to take into account the balancing of
/// transfers among nodes and not only aim for minimal network traffic").
///
/// The per-key optimum leaves two traffic-free degrees of freedom:
///  * the migration destination may be ANY kept target node, and
///  * cost ties between the two directions are arbitrary.
/// A LoadBalancer spends both on the node with the least accumulated
/// ingress so far, so hot nodes stop attracting every consolidation.
/// Total network traffic is identical to PlanOptimal's by construction.
class LoadBalancer {
 public:
  explicit LoadBalancer(uint32_t num_nodes) : ingress_(num_nodes, 0) {}

  /// Like PlanOptimal, but breaks ties by projected ingress and records
  /// the schedule's per-node ingress for subsequent keys.
  KeySchedule PlanBalanced(const KeyPlacement& placement);

  /// Ingress bytes attributed so far (schedule data only, not tracking).
  const std::vector<uint64_t>& ingress() const { return ingress_; }

 private:
  std::vector<uint64_t> ingress_;
};

}  // namespace tj

#endif  // TJ_CORE_SCHEDULE_H_
