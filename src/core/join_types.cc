#include "core/join_types.h"

namespace tj {

const char* DirectionName(Direction dir) {
  return dir == Direction::kRtoS ? "R->S" : "S->R";
}

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBroadcastR:
      return "BJ-R";
    case JoinAlgorithm::kBroadcastS:
      return "BJ-S";
    case JoinAlgorithm::kHash:
      return "HJ";
    case JoinAlgorithm::kTrack2R:
      return "2TJ-R";
    case JoinAlgorithm::kTrack2S:
      return "2TJ-S";
    case JoinAlgorithm::kTrack3:
      return "3TJ";
    case JoinAlgorithm::kTrack4:
      return "4TJ";
  }
  return "?";
}

}  // namespace tj
