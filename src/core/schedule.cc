#include "core/schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace tj {

namespace {

/// Broadcast-direction view: B tuples travel to the locations of T.
struct SideView {
  const std::vector<NodeSize>* bcast;   // B: the table being broadcast.
  const std::vector<NodeSize>* target;  // T: the table whose locations receive.
};

SideView ViewFor(const KeyPlacement& placement, Direction dir) {
  if (dir == Direction::kRtoS) return {&placement.r, &placement.s};
  return {&placement.s, &placement.r};
}

uint64_t BytesAt(const std::vector<NodeSize>& side, uint32_t node) {
  for (const auto& ns : side) {
    if (ns.node == node) return ns.bytes;
  }
  return 0;
}

uint64_t SumBytes(const std::vector<NodeSize>& side) {
  uint64_t total = 0;
  for (const auto& ns : side) total += ns.bytes;
  return total;
}

/// Number of broadcast-side nodes excluding the tracker (they each receive
/// location messages over the network; the tracker's own copy is free).
uint64_t BcastNodesExcludingTracker(const std::vector<NodeSize>& bcast,
                                    uint32_t tracker) {
  uint64_t n = 0;
  for (const auto& ns : bcast) {
    if (ns.node != tracker) ++n;
  }
  return n;
}

}  // namespace

uint64_t SelectiveBroadcastCost(const KeyPlacement& placement, Direction dir) {
  SideView view = ViewFor(placement, dir);
  if (view.bcast->empty() || view.target->empty()) return 0;
  const uint64_t b_all = SumBytes(*view.bcast);
  uint64_t b_local = 0;
  for (const auto& ns : *view.bcast) {
    if (BytesAt(*view.target, ns.node) > 0) b_local += ns.bytes;
  }
  const uint64_t b_nodes =
      BcastNodesExcludingTracker(*view.bcast, placement.tracker);
  const uint64_t t_nodes = view.target->size();
  return b_all * t_nodes - b_local + b_nodes * t_nodes * placement.msg_bytes;
}

MigrationPlan PlanMigrateAndBroadcast(const KeyPlacement& placement,
                                      Direction dir) {
  SideView view = ViewFor(placement, dir);
  MigrationPlan plan;
  if (view.bcast->empty() || view.target->empty()) return plan;

  const uint64_t b_all = SumBytes(*view.bcast);
  const uint64_t b_nodes =
      BcastNodesExcludingTracker(*view.bcast, placement.tracker);
  const uint64_t m = placement.msg_bytes;

  plan.cost = SelectiveBroadcastCost(placement, dir);

  // The target node with the largest |B_i| + |T_i| is forced to keep its
  // tuples (the migration set may not cover all target nodes). Ties keep
  // the lowest node id, deterministically.
  uint32_t max_t = view.target->front().node;
  uint64_t max_sum = 0;
  for (const auto& ns : *view.target) {
    uint64_t sum = ns.bytes + BytesAt(*view.bcast, ns.node);
    if (sum > max_sum || (sum == max_sum && ns.node < max_t)) {
      max_sum = sum;
      max_t = ns.node;
    }
  }
  plan.dest = max_t;

  // Theorem 1: each remaining target node's keep/migrate decision is
  // independent. Migrating node i removes one broadcast destination
  // (saving b_all - b_i tuple bytes and b_nodes location messages) at the
  // price of moving its |T_i| bytes plus one migration instruction.
  for (const auto& ns : *view.target) {
    if (ns.node == max_t) continue;
    int64_t delta = static_cast<int64_t>(BytesAt(*view.bcast, ns.node)) +
                    static_cast<int64_t>(ns.bytes) -
                    static_cast<int64_t>(b_all) -
                    static_cast<int64_t>(b_nodes * m);
    if (ns.node != placement.tracker) {
      delta += static_cast<int64_t>(m);
    }
    if (delta < 0) {
      plan.cost = static_cast<uint64_t>(static_cast<int64_t>(plan.cost) + delta);
      plan.migrate.push_back(ns.node);
    }
  }
  return plan;
}

KeyScheduleAudit AuditPlacement(const KeyPlacement& placement) {
  KeyScheduleAudit audit;
  for (Direction dir : {Direction::kRtoS, Direction::kStoR}) {
    const int d = static_cast<int>(dir);
    audit.broadcast_cost[d] = SelectiveBroadcastCost(placement, dir);
    MigrationPlan plan = PlanMigrateAndBroadcast(placement, dir);
    audit.plan_cost[d] = plan.cost;
    audit.migrate_count[d] = static_cast<uint32_t>(plan.migrate.size());
  }
  audit.r_bytes = SumBytes(placement.r);
  audit.s_bytes = SumBytes(placement.s);
  audit.r_nodes = static_cast<uint32_t>(placement.r.size());
  audit.s_nodes = static_cast<uint32_t>(placement.s.size());
  // Grace hash join ships every matching tuple to the key's hash
  // destination — the tracker node itself — except the bytes already there.
  audit.hash_join_cost = audit.r_bytes + audit.s_bytes -
                         BytesAt(placement.r, placement.tracker) -
                         BytesAt(placement.s, placement.tracker);
  return audit;
}

KeySchedule PlanOptimal(const KeyPlacement& placement) {
  KeySchedule schedule;
  MigrationPlan rs = PlanMigrateAndBroadcast(placement, Direction::kRtoS);
  MigrationPlan sr = PlanMigrateAndBroadcast(placement, Direction::kStoR);
  if (rs.cost <= sr.cost) {
    schedule.dir = Direction::kRtoS;
    schedule.plan = std::move(rs);
  } else {
    schedule.dir = Direction::kStoR;
    schedule.plan = std::move(sr);
  }
  return schedule;
}

uint64_t BroadcastBottleneck(const KeyPlacement& placement, Direction dir) {
  SideView view = ViewFor(placement, dir);
  if (view.bcast->empty() || view.target->empty()) return 0;
  const uint64_t b_all = SumBytes(*view.bcast);
  uint64_t worst = 0;
  for (const auto& t : *view.target) {
    worst = std::max(worst, b_all - BytesAt(*view.bcast, t.node));
  }
  return worst;
}

uint64_t PlanBottleneck(const KeyPlacement& placement, Direction dir,
                        const MigrationPlan& plan) {
  SideView view = ViewFor(placement, dir);
  if (view.bcast->empty() || view.target->empty()) return 0;
  const uint64_t b_all = SumBytes(*view.bcast);
  uint64_t migrated = 0;
  for (uint32_t m : plan.migrate) migrated += BytesAt(*view.target, m);
  uint64_t worst = 0;
  for (const auto& t : *view.target) {
    if (std::find(plan.migrate.begin(), plan.migrate.end(), t.node) !=
        plan.migrate.end()) {
      continue;
    }
    uint64_t in = b_all - BytesAt(*view.bcast, t.node);
    if (t.node == plan.dest) in += migrated;
    worst = std::max(worst, in);
  }
  return worst;
}

HotKeyPlan PlanHotSplit(const KeyPlacement& placement, uint32_t width_r,
                        uint32_t width_s, uint32_t max_split) {
  HotKeyPlan best;
  const uint64_t m = placement.msg_bytes;
  // Splitting only makes sense while it undercuts plain selective
  // broadcast on total bytes (at w = |targets| the two coincide, broadcast
  // then winning on simplicity), so candidates at or above this price are
  // discarded and the cheapest-bottleneck survivor wins.
  const uint64_t bcast_min =
      std::min(SelectiveBroadcastCost(placement, Direction::kRtoS),
               SelectiveBroadcastCost(placement, Direction::kStoR));
  for (Direction dir : {Direction::kRtoS, Direction::kStoR}) {
    SideView view = ViewFor(placement, dir);
    if (view.bcast->empty() || view.target->empty()) continue;
    const uint32_t width_f =
        dir == Direction::kRtoS ? width_s : width_r;  // Fragment = target.
    const uint64_t b_all = SumBytes(*view.bcast);
    const uint64_t f_all = SumBytes(*view.target);
    const uint64_t b_msg_nodes =
        BcastNodesExcludingTracker(*view.bcast, placement.tracker);

    // Worker candidates: fragment-side holders ranked by the bytes already
    // local to them (their fragment plus any broadcast copy), descending;
    // ties keep the lowest node id. The w = 1 prefix is therefore the same
    // node PlanMigrateAndBroadcast forces to keep its tuples.
    std::vector<NodeSize> ranked = *view.target;
    std::sort(ranked.begin(), ranked.end(),
              [&](const NodeSize& a, const NodeSize& b) {
                const uint64_t la = a.bytes + BytesAt(*view.bcast, a.node);
                const uint64_t lb = b.bytes + BytesAt(*view.bcast, b.node);
                if (la != lb) return la > lb;
                return a.node < b.node;
              });

    const uint32_t limit =
        max_split == 0
            ? static_cast<uint32_t>(ranked.size())
            : std::min<uint32_t>(max_split,
                                 static_cast<uint32_t>(ranked.size()));
    for (uint32_t w = 1; w <= limit; ++w) {
      // Bytes already resident at the workers (free local copies).
      uint64_t b_local = 0, f_local = 0;
      for (uint32_t j = 0; j < w; ++j) {
        b_local += BytesAt(*view.bcast, ranked[j].node);
        f_local += ranked[j].bytes;
      }
      // Non-worker fragment holders each receive w <key, worker> pairs
      // (free when that holder is the tracker) and ship their whole run.
      uint64_t frag_msg_nodes = 0;
      for (uint32_t j = w; j < ranked.size(); ++j) {
        if (ranked[j].node != placement.tracker) ++frag_msg_nodes;
      }
      const uint64_t cost = b_all * w - b_local + b_msg_nodes * w * m +
                            frag_msg_nodes * w * m + (f_all - f_local);
      if (cost >= bcast_min) continue;

      // Per-worker ingress, modeling the row-exact chunking the transfer
      // phase performs: each non-worker run of n rows sends ceil/floor
      // chunks of n/w rows, earlier workers taking the remainder.
      uint64_t bottleneck = 0;
      for (uint32_t j = 0; j < w; ++j) {
        uint64_t frag_in = 0;
        for (uint32_t i = w; i < ranked.size(); ++i) {
          const uint64_t rows = ranked[i].bytes / width_f;
          frag_in += (rows / w + (j < rows % w ? 1 : 0)) * width_f;
        }
        const uint64_t in =
            frag_in + b_all - BytesAt(*view.bcast, ranked[j].node);
        bottleneck = std::max(bottleneck, in);
      }

      const bool better =
          !best.valid || bottleneck < best.bottleneck ||
          (bottleneck == best.bottleneck &&
           (cost < best.cost || (cost == best.cost && w < best.split())));
      if (better) {
        best.valid = true;
        best.dir = dir;
        best.cost = cost;
        best.bottleneck = bottleneck;
        best.workers.clear();
        best.workers.reserve(w);
        for (uint32_t j = 0; j < w; ++j) best.workers.push_back(ranked[j].node);
      }
    }
  }
  return best;
}

Direction CheaperBroadcastDirection(const KeyPlacement& placement,
                                    uint64_t* cost_out) {
  uint64_t rs = SelectiveBroadcastCost(placement, Direction::kRtoS);
  uint64_t sr = SelectiveBroadcastCost(placement, Direction::kStoR);
  if (cost_out != nullptr) *cost_out = std::min(rs, sr);
  return rs <= sr ? Direction::kRtoS : Direction::kStoR;
}

KeySchedule LoadBalancer::PlanBalanced(const KeyPlacement& placement) {
  MigrationPlan plans[2] = {
      PlanMigrateAndBroadcast(placement, Direction::kRtoS),
      PlanMigrateAndBroadcast(placement, Direction::kStoR)};

  // Per-direction per-node ingress the schedule would add: every kept
  // target node receives the broadcast-side bytes it lacks; the migration
  // destination also receives the migrated bytes.
  auto ingress_of = [&](Direction dir, const MigrationPlan& plan,
                        uint32_t dest, std::vector<uint64_t>* per_node) {
    SideView view = ViewFor(placement, dir);
    per_node->assign(ingress_.size(), 0);
    if (view.bcast->empty() || view.target->empty()) return;
    uint64_t b_all = SumBytes(*view.bcast);
    uint64_t migrated = 0;
    for (const NodeSize& t : *view.target) {
      bool migrates = std::find(plan.migrate.begin(), plan.migrate.end(),
                                t.node) != plan.migrate.end();
      if (migrates) {
        migrated += t.bytes;
      } else {
        (*per_node)[t.node] += b_all - BytesAt(*view.bcast, t.node);
      }
    }
    (*per_node)[dest] += migrated;
  };

  // Pick the migration destination minimizing projected peak ingress
  // among the kept target nodes (any of them is cost-identical).
  auto best_dest = [&](Direction dir, const MigrationPlan& plan) {
    SideView view = ViewFor(placement, dir);
    uint32_t best = plan.dest;
    uint64_t best_load = ~0ULL;
    for (const NodeSize& t : *view.target) {
      if (std::find(plan.migrate.begin(), plan.migrate.end(), t.node) !=
          plan.migrate.end()) {
        continue;
      }
      if (ingress_[t.node] < best_load) {
        best_load = ingress_[t.node];
        best = t.node;
      }
    }
    return best;
  };

  KeySchedule schedule;
  Direction dirs[2] = {Direction::kRtoS, Direction::kStoR};
  int pick;
  if (plans[0].cost != plans[1].cost) {
    pick = plans[0].cost < plans[1].cost ? 0 : 1;
  } else {
    // Cost tie: choose the direction whose ingress lands on cooler nodes.
    uint64_t peak[2];
    for (int d = 0; d < 2; ++d) {
      std::vector<uint64_t> add;
      ingress_of(dirs[d], plans[d], best_dest(dirs[d], plans[d]), &add);
      peak[d] = 0;
      for (size_t i = 0; i < add.size(); ++i) {
        peak[d] = std::max(peak[d], ingress_[i] + add[i]);
      }
    }
    pick = peak[0] <= peak[1] ? 0 : 1;
  }

  schedule.dir = dirs[pick];
  schedule.plan = std::move(plans[pick]);
  schedule.plan.dest = best_dest(schedule.dir, schedule.plan);

  std::vector<uint64_t> add;
  ingress_of(schedule.dir, schedule.plan, schedule.plan.dest, &add);
  for (size_t i = 0; i < add.size(); ++i) ingress_[i] += add[i];
  return schedule;
}

uint64_t ExhaustiveOptimalCost(const KeyPlacement& placement) {
  uint64_t best = ~0ULL;
  for (Direction dir : {Direction::kRtoS, Direction::kStoR}) {
    SideView view = ViewFor(placement, dir);
    if (view.bcast->empty() || view.target->empty()) return 0;
    const uint64_t b_all = SumBytes(*view.bcast);
    const uint64_t b_nodes =
        BcastNodesExcludingTracker(*view.bcast, placement.tracker);
    const size_t t = view.target->size();
    TJ_CHECK_LE(t, 20u) << "exhaustive search is test-only";
    // Enumerate every non-empty subset of target nodes that keeps its
    // tuples; all others migrate to some kept node.
    for (uint64_t mask = 1; mask < (1ULL << t); ++mask) {
      uint64_t kept = static_cast<uint64_t>(__builtin_popcountll(mask));
      uint64_t cost = b_all * kept;
      for (size_t i = 0; i < t; ++i) {
        const NodeSize& ns = (*view.target)[i];
        if (mask & (1ULL << i)) {
          cost -= BytesAt(*view.bcast, ns.node);  // Local broadcast copies.
        } else {
          cost += ns.bytes;  // Migration payload.
          if (ns.node != placement.tracker) cost += placement.msg_bytes;
        }
      }
      cost += b_nodes * kept * placement.msg_bytes;
      best = std::min(best, cost);
    }
  }
  return best;
}

void KeyPlanner::PlanKey(uint64_t key, const KeyPlacement& placement,
                         bool hot_candidate, KeyPlanOutputs* out) {
  const KeyPlacement& p = placement;

  Direction dir = direction_;
  std::vector<uint32_t> migrate;
  bool has_migration_phase = false;
  uint32_t dest = 0;
  uint64_t chosen_cost = 0;
  HotKeyPlan hot;
  if (version_ == TrackJoinVersion::k3Phase) {
    dir = CheaperBroadcastDirection(p, &chosen_cost);
  } else if (version_ == TrackJoinVersion::k4Phase) {
    KeySchedule sched =
        config_.balance_loads ? balancer_.PlanBalanced(p) : PlanOptimal(p);
    dir = sched.dir;
    dest = sched.plan.dest;
    chosen_cost = sched.plan.cost;
    migrate = std::move(sched.plan.migrate);
    has_migration_phase = true;

    // Heavy-hitter splitting: a key whose modeled output reaches the
    // threshold may trade extra broadcast copies for a lower per-node
    // bottleneck. Each alternative is strong on a different axis — the
    // migration plan minimizes total bytes but funnels the whole key
    // through one node, while selective broadcast spreads load but
    // ships B_all to every target — so the hot plan is adopted only
    // when it strictly beats migration on the per-node bottleneck
    // (PlanHotSplit already rejects anything not strictly cheaper than
    // selective broadcast). Uniform workloads never reach the
    // threshold, so they never split.
    if (hot_candidate) {
      HotKeyPlan candidate =
          PlanHotSplit(p, width_r_, width_s_, config_.hot_key_max_split);
      MigrationPlan base;
      base.dest = dest;
      base.migrate = migrate;
      const uint64_t plan_bn = PlanBottleneck(p, dir, base);
      if (candidate.valid && candidate.bottleneck < plan_bn) {
        hot = std::move(candidate);
        dir = hot.dir;
        chosen_cost = hot.cost;
        migrate.clear();
      }
    }
  }

  if (audit_ != nullptr) {
    KeyScheduleAudit rec = AuditPlacement(p);
    rec.key = key;
    rec.chosen_dir = dir;
    if (version_ == TrackJoinVersion::k2Phase) {
      // 2-phase sends in the fixed direction at plain broadcast cost
      // (modeled; 2-phase tracking carries no counts, so multiplicity
      // > 1 makes actual bytes exceed this model).
      chosen_cost = rec.broadcast_cost[static_cast<int>(dir)];
    }
    rec.chosen_cost = chosen_cost;
    rec.chosen_migrations = static_cast<uint32_t>(migrate.size());
    rec.chosen_split = hot.valid ? hot.split() : 0;
    rec.cls = ClassifyAudit(rec);
    audit_->Record(tracker_, rec);
  }

  const auto& bcast_side = dir == Direction::kRtoS ? p.r : p.s;
  const auto& target_side = dir == Direction::kRtoS ? p.s : p.r;
  auto& loc_out = dir == Direction::kRtoS ? out->loc_to_r : out->loc_to_s;
  auto& migr_out = dir == Direction::kRtoS ? out->migr_s : out->migr_r;

  if (hot.valid) {
    // Hot split: every broadcast-side node learns all w workers, and
    // every non-worker fragment holder learns the w-way split of its
    // run (fragment instructions mirror migration instructions but
    // carry one pair per worker, in worker order).
    auto& frag_out = dir == Direction::kRtoS ? out->frag_s : out->frag_r;
    for (const NodeSize& t : target_side) {
      if (std::find(hot.workers.begin(), hot.workers.end(), t.node) !=
          hot.workers.end()) {
        continue;  // Workers keep their own fragment rows.
      }
      for (uint32_t worker : hot.workers) {
        frag_out[t.node].push_back(KeyNodePair{key, worker});
      }
    }
    for (const NodeSize& b : bcast_side) {
      for (uint32_t worker : hot.workers) {
        loc_out[b.node].push_back(KeyNodePair{key, worker});
      }
    }
    return;
  }

  // Migration instructions (4-phase): each migrating node learns the
  // destination for its tuples of this key.
  for (uint32_t m : migrate) {
    migr_out[m].push_back(KeyNodePair{key, dest});
  }

  // Location list: every broadcast-side node learns each surviving
  // target location.
  for (const NodeSize& b : bcast_side) {
    for (const NodeSize& t : target_side) {
      if (has_migration_phase &&
          std::find(migrate.begin(), migrate.end(), t.node) !=
              migrate.end()) {
        continue;  // Migrated away: no longer a destination.
      }
      loc_out[b.node].push_back(KeyNodePair{key, t.node});
    }
  }
}

}  // namespace tj
