// Plain late-materialized hash join (paper §3.2, first variant).
//
// "In the simple case, keys are hashed, rids are implicitly generated, and
// payloads are fetched afterwards. The cost is:
//    (tR + tS)·wk + tRS·(wR + wS + log tR + log tS)"
//
// Key columns ship to hash nodes in row order (rids stay implicit); the
// hash node joins keys into rid pairs and then fetches BOTH payloads per
// output pair — the deliberate weakness this baseline exists to expose:
// fetch traffic scales with the OUTPUT cardinality, which is catastrophic
// for joins like workload Y whose output is 5.4x the input.
#ifndef TJ_CORE_LATE_HASH_JOIN_H_
#define TJ_CORE_LATE_HASH_JOIN_H_

#include "core/join_types.h"
#include "storage/table.h"

namespace tj {

/// Runs the late-materialized hash join. `rid_bytes` is the width of rid
/// fetch requests (default 4).
///
/// Fails with Status::DataLoss / Status::Corruption (never aborts, never a
/// partial result) on unrecoverable faults under an active
/// config.fault_policy — see core/track_join.h.
Result<JoinResult> TryRunLateMaterializedHashJoin(const PartitionedTable& r,
                                                  const PartitionedTable& s,
                                                  const JoinConfig& config,
                                                  uint32_t rid_bytes = 4);

/// Infallible wrapper: aborts if the run fails.
JoinResult RunLateMaterializedHashJoin(const PartitionedTable& r,
                                       const PartitionedTable& s,
                                       const JoinConfig& config,
                                       uint32_t rid_bytes = 4);

}  // namespace tj

#endif  // TJ_CORE_LATE_HASH_JOIN_H_
