#include "core/rid_hash_join.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/local_join.h"
#include "exec/partition.h"
#include "exec/radix_sort.h"
#include "net/fabric.h"

namespace tj {

namespace {

/// A key observed by the hash node: where it lives and its position in the
/// (src -> hash node) key stream, which doubles as the implicit rid.
struct KeyRef {
  uint64_t key;
  uint32_t node;
  uint32_t stream_pos;
};

}  // namespace

JoinResult RunRidHashJoin(const PartitionedTable& r, const PartitionedTable& s,
                          const JoinConfig& config, uint32_t rid_bytes) {
  Result<JoinResult> result = TryRunRidHashJoin(r, s, config, rid_bytes);
  TJ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<JoinResult> TryRunRidHashJoin(const PartitionedTable& r,
                                     const PartitionedTable& s,
                                     const JoinConfig& config,
                                     uint32_t rid_bytes) {
  TJ_CHECK_EQ(r.num_nodes(), s.num_nodes());
  const uint32_t n = r.num_nodes();
  // The join result migrates to the wider side; the narrower side travels.
  const bool exec_on_r = r.payload_width() >= s.payload_width();
  const PartitionedTable& exec_table = exec_on_r ? r : s;
  const PartitionedTable& moving_table = exec_on_r ? s : r;
  const MessageType exec_rid_type =
      exec_on_r ? MessageType::kRidR : MessageType::kRidS;
  const MessageType moving_rid_type =
      exec_on_r ? MessageType::kRidS : MessageType::kRidR;
  const MessageType moving_data_type =
      exec_on_r ? MessageType::kDataS : MessageType::kDataR;
  const MessageType exec_track =
      exec_on_r ? MessageType::kTrackR : MessageType::kTrackS;
  const MessageType moving_track =
      exec_on_r ? MessageType::kTrackS : MessageType::kTrackR;

  Fabric fabric(n);
  fabric.SetThreadPool(config.thread_pool);
  if (config.fault_policy != nullptr) {
    fabric.SetFaultPolicy(*config.fault_policy, config.fault_seed);
  }
  fabric.SetPhaseDeadline(config.phase_deadline_seconds);
  fabric.SetDiagnosticsSink(config.diagnostics);
  // Per (source node, hash node): the local rows whose keys were sent, in
  // stream order — the receiver refers to them by position (implicit rids).
  std::vector<std::vector<std::vector<uint32_t>>> exec_streams(n),
      moving_streams(n);
  std::vector<std::vector<uint32_t>> exec_selected(n);  // rows to join, per node
  std::vector<TupleBlock> moving_in(n, TupleBlock(moving_table.payload_width()));
  std::vector<JoinChecksum> checksums(n);
  std::vector<uint64_t> outputs(n, 0);

  // Phase 1: ship both key columns, in row order, to the hash nodes.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "transfer key columns", [&](uint32_t node) {
    auto send_keys = [&](const TupleBlock& block, MessageType type,
                         std::vector<std::vector<uint32_t>>* streams)
        -> Status {
      // Radix-partition the key column into contiguous per-destination
      // runs; the stable layout keeps each stream in row order.
      Result<KeyPartitionLayout> layout =
          TryRadixPartitionKeys(block, n, config.thread_pool);
      TJ_RETURN_IF_ERROR(layout.status());
      streams->assign(n, {});
      for (uint32_t dst = 0; dst < n; ++dst) {
        if (layout->Size(dst) == 0) continue;
        (*streams)[dst].assign(layout->row_ids.begin() + layout->Begin(dst),
                               layout->row_ids.begin() + layout->End(dst));
        ByteBuffer buf;
        ByteWriter writer(&buf);
        for (uint64_t i = layout->Begin(dst); i < layout->End(dst); ++i) {
          writer.PutUint(layout->keys[i], config.key_bytes);
        }
        fabric.Send(node, dst, type, std::move(buf));
      }
      return Status::OK();
    };
    TJ_RETURN_IF_ERROR(
        send_keys(exec_table.node(node), exec_track, &exec_streams[node]));
    TJ_RETURN_IF_ERROR(send_keys(moving_table.node(node), moving_track,
                                 &moving_streams[node]));
    return Status::OK();
  }));

  // Phase 2: join the key columns; send rids home.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "join keys & return rids", [&](uint32_t node) -> Status {
    auto collect = [&](MessageType type,
                       std::vector<KeyRef>* refs) -> Status {
      for (const auto& msg : fabric.TakeInbox(node, type)) {
        ByteReader reader(msg.data);
        if (reader.remaining() % config.key_bytes != 0) {
          return Status::Corruption("key stream not a multiple of key size");
        }
        uint32_t pos = 0;
        while (!reader.Done()) {
          refs->push_back(
              KeyRef{reader.GetUint(config.key_bytes), msg.src, pos++});
        }
      }
      std::sort(refs->begin(), refs->end(),
                [](const KeyRef& a, const KeyRef& b) {
                  if (a.key != b.key) return a.key < b.key;
                  if (a.node != b.node) return a.node < b.node;
                  return a.stream_pos < b.stream_pos;
                });
      return Status::OK();
    };
    std::vector<KeyRef> exec_refs, moving_refs;
    TJ_RETURN_IF_ERROR(collect(exec_track, &exec_refs));
    TJ_RETURN_IF_ERROR(collect(moving_track, &moving_refs));

    // Per destination: rid lists for the exec side, (rid, exec node) pairs
    // for the moving side.
    std::vector<ByteBuffer> exec_out(n), moving_out(n);
    std::vector<ByteWriter> exec_writers, moving_writers;
    for (uint32_t d = 0; d < n; ++d) {
      exec_writers.emplace_back(&exec_out[d]);
      moving_writers.emplace_back(&moving_out[d]);
    }

    size_t i = 0, j = 0;
    while (i < exec_refs.size() && j < moving_refs.size()) {
      uint64_t ek = exec_refs[i].key, mk = moving_refs[j].key;
      if (ek < mk) {
        ++i;
      } else if (mk < ek) {
        ++j;
      } else {
        size_t i_end = i;
        while (i_end < exec_refs.size() && exec_refs[i_end].key == ek) ++i_end;
        size_t j_end = j;
        while (j_end < moving_refs.size() && moving_refs[j_end].key == ek) {
          ++j_end;
        }
        // Exec rows learn they participate (one rid each).
        for (size_t a = i; a < i_end; ++a) {
          exec_writers[exec_refs[a].node].PutUint(exec_refs[a].stream_pos,
                                                  rid_bytes);
        }
        // Moving rows learn every distinct exec location for their key.
        for (size_t b = j; b < j_end; ++b) {
          uint32_t prev_exec_node = ~0u;
          for (size_t a = i; a < i_end; ++a) {
            if (exec_refs[a].node == prev_exec_node) continue;
            prev_exec_node = exec_refs[a].node;
            moving_writers[moving_refs[b].node].PutUint(
                moving_refs[b].stream_pos, rid_bytes);
            moving_writers[moving_refs[b].node].PutUint(prev_exec_node,
                                                        config.node_bytes);
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    for (uint32_t d = 0; d < n; ++d) {
      if (!exec_out[d].empty()) {
        fabric.Send(node, d, exec_rid_type, std::move(exec_out[d]));
      }
      if (!moving_out[d].empty()) {
        fabric.Send(node, d, moving_rid_type, std::move(moving_out[d]));
      }
    }
    return Status::OK();
  }));

  // Phase 3: resolve rids; ship narrow tuples to the exec nodes.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "fetch & forward tuples", [&](uint32_t node) -> Status {
    for (const auto& msg : fabric.TakeInbox(node, exec_rid_type)) {
      ByteReader reader(msg.data);
      if (reader.remaining() % rid_bytes != 0) {
        return Status::Corruption("rid stream not a multiple of rid size");
      }
      const auto& stream = exec_streams[node][msg.src];
      while (!reader.Done()) {
        uint32_t pos = static_cast<uint32_t>(reader.GetUint(rid_bytes));
        if (pos >= stream.size()) {
          return Status::Corruption("rid past the end of the sent key stream");
        }
        exec_selected[node].push_back(stream[pos]);
      }
    }
    std::vector<std::vector<uint32_t>> rows_per_dest(n);
    for (const auto& msg : fabric.TakeInbox(node, moving_rid_type)) {
      ByteReader reader(msg.data);
      if (reader.remaining() % (rid_bytes + config.node_bytes) != 0) {
        return Status::Corruption("rid stream not a multiple of entry size");
      }
      const auto& stream = moving_streams[node][msg.src];
      while (!reader.Done()) {
        uint32_t pos = static_cast<uint32_t>(reader.GetUint(rid_bytes));
        uint32_t dest = static_cast<uint32_t>(reader.GetUint(config.node_bytes));
        if (pos >= stream.size()) {
          return Status::Corruption("rid past the end of the sent key stream");
        }
        if (dest >= n) {
          return Status::Corruption("rid entry names a node out of range");
        }
        rows_per_dest[dest].push_back(stream[pos]);
      }
    }
    const TupleBlock& block = moving_table.node(node);
    for (uint32_t dst = 0; dst < n; ++dst) {
      if (rows_per_dest[dst].empty()) continue;
      ByteBuffer buf;
      block.SerializeRowsIndexed(rows_per_dest[dst], config.key_bytes, &buf);
      fabric.Send(node, dst, moving_data_type, std::move(buf));
    }
    return Status::OK();
  }));

  const uint32_t out_width = r.payload_width() + s.payload_width();
  std::vector<TupleBlock> out_blocks;
  if (config.materialize) out_blocks.assign(n, TupleBlock(out_width));

  // Phase 4: re-join by key at the exec nodes.
  TJ_RETURN_IF_ERROR(fabric.RunPhaseReliable(
      "final rejoin", [&](uint32_t node) -> Status {
    TupleBlock selected(exec_table.payload_width());
    std::sort(exec_selected[node].begin(), exec_selected[node].end());
    for (uint32_t row : exec_selected[node]) {
      selected.AppendFrom(exec_table.node(node), row);
    }
    SortBlockByKey(&selected, config.thread_pool);
    for (const auto& msg : fabric.TakeInbox(node, moving_data_type)) {
      ByteReader reader(msg.data);
      TJ_RETURN_IF_ERROR(
          moving_in[node].TryDeserializeRows(&reader, config.key_bytes));
    }
    SortBlockByKey(&moving_in[node], config.thread_pool);
    // Keep (key, payloadR, payloadS) orientation for the checksum.
    const TupleBlock& r_side = exec_on_r ? selected : moving_in[node];
    const TupleBlock& s_side = exec_on_r ? moving_in[node] : selected;
    JoinSink sink =
        config.materialize
            ? MaterializeSink(&out_blocks[node], &checksums[node],
                              r.payload_width(), s.payload_width())
            : ChecksumSink(&checksums[node], r.payload_width(),
                           s.payload_width());
    outputs[node] = MergeJoinSorted(r_side, s_side, sink);
    return Status::OK();
  }));

  JoinResult result;
  result.traffic = fabric.traffic();
  result.phase_seconds = fabric.phase_seconds();
  result.reliability = fabric.reliability();
  result.profile = BuildStepProfile("rid-hj", fabric);
  for (uint32_t node = 0; node < n; ++node) {
    result.output_rows += outputs[node];
    result.checksum.Merge(checksums[node]);
  }
  if (config.materialize) {
    result.output.emplace(r.name() + "_join_" + s.name(), n, out_width);
    for (uint32_t node = 0; node < n; ++node) {
      result.output->node(node) = std::move(out_blocks[node]);
    }
  }
  return result;
}

}  // namespace tj
