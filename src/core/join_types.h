// Shared types of the distributed join algorithms.
#ifndef TJ_CORE_JOIN_TYPES_H_
#define TJ_CORE_JOIN_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/failure.h"
#include "net/fault_injector.h"
#include "net/traffic.h"
#include "obs/blame.h"
#include "obs/step_profile.h"
#include "storage/table.h"

namespace tj {

/// Selective-broadcast direction: which table's tuples travel.
enum class Direction : uint8_t {
  kRtoS,  ///< R tuples are sent to the locations of matching S tuples.
  kStoR,  ///< S tuples are sent to the locations of matching R tuples.
};

inline Direction Opposite(Direction dir) {
  return dir == Direction::kRtoS ? Direction::kStoR : Direction::kRtoS;
}

const char* DirectionName(Direction dir);

/// Which track-join variant runs (see core/track_join.h for the taxonomy).
/// Lives here so the shared per-key planner (core/schedule.h) and both the
/// barrier and pipelined drivers can name the variant without a header cycle.
enum class TrackJoinVersion : uint8_t { k2Phase = 2, k3Phase = 3, k4Phase = 4 };

/// Event-driven micro-batch execution knobs (the pipelined 3TJ/4TJ drivers;
/// see core/pipelined_track_join.h and net/pipelined_fabric.h).
struct PipelineConfig {
  /// Run the pipelined driver instead of the barrier driver.
  bool enabled = false;
  /// Target micro-batch chunk payload size. Tracking streams and tuple data
  /// are sliced at entry/row boundaries at (at most) this many bytes.
  uint64_t chunk_bytes = 1 << 12;
  /// Per-node inbox memory budget enforced by credit-based flow control:
  /// each incoming link gets a byte window of
  /// max(chunk_bytes, inbox_budget_bytes / num_nodes).
  uint64_t inbox_budget_bytes = 1 << 15;
  /// Modeled CPU throughput (bytes touched per second) used to price tasks
  /// on the pipelined fabric's per-node serial CPU resource. Paired with
  /// the NIC bandwidth of net/time_model.h, it makes the modeled makespan
  /// fully deterministic. See PipelineCostModel.
  double cpu_bandwidth_bytes_per_sec = 0.25e9;
  /// Egress NIC scheduling policy (net/pipelined_fabric.h): false = the
  /// original single-FIFO eager reservation, true = per-destination queues
  /// drained by deficit round-robin. Timing-only; ledgers are identical.
  bool drr = false;
  /// DRR byte quantum per destination queue per top-up round; 0 means one
  /// chunk_bytes. Only meaningful when `drr` is set.
  uint64_t drr_quantum_bytes = 0;
};

/// Serialization widths and feature toggles shared by all join algorithms.
struct JoinConfig {
  /// Serialized join-key width wk in bytes. Keys must fit.
  uint32_t key_bytes = 4;
  /// Tracking count width c in bytes (3-/4-phase). Counts larger than the
  /// field saturate into repeated entries, aggregated at the tracker.
  uint32_t count_bytes = 1;
  /// Node-id width in bytes; the paper's location-message size M is
  /// key_bytes + node_bytes.
  uint32_t node_bytes = 1;

  // --- Section 2.4 traffic-compression toggles (default off) ---
  /// Delta-encode sorted key streams in tracking messages.
  bool delta_tracking = false;
  /// Group location messages by node (send the node label once).
  bool group_locations = false;

  /// Balance-aware scheduling (paper Section 5): break cost ties in the
  /// per-key schedules toward the least-loaded nodes. Total traffic is
  /// unchanged; the bottleneck NIC's share shrinks. 4-phase only.
  bool balance_loads = false;

  /// Heavy-hitter splitting (SharesSkew-style partitioned broadcast),
  /// 4-phase only. A key whose modeled output r_rows * s_rows reaches this
  /// threshold is a hot-split candidate: its smaller side is broadcast to w
  /// worker nodes while the larger side is fragmented across them, trading
  /// bounded extra broadcast bytes for a ~w x drop in the worst node's
  /// ingress and join work. 0 disables splitting entirely (default); the
  /// hot plan is adopted only when its per-node bottleneck strictly beats
  /// both the migration plan and plain selective broadcast.
  uint64_t hot_key_threshold = 0;
  /// Upper bound on the split width w (worker count per hot key);
  /// 0 = no cap beyond the number of fragment-side holder nodes.
  uint32_t hot_key_max_split = 4;

  /// Materialize the join output: the result carries a PartitionedTable of
  /// <key | payloadR | payloadS> rows, resident where each pair joined.
  /// Off by default (results are still checksum-verified either way).
  bool materialize = false;

  /// If non-null, phases run their per-node work on this pool (results
  /// are identical to sequential execution). Not owned.
  class ThreadPool* thread_pool = nullptr;

  /// If non-null, the track-join scheduling phase records one
  /// KeyScheduleAudit per distinct key into this log (core/schedule.h) for
  /// `tjsim --explain` / BuildScheduleExplain. Strictly passive: schedules,
  /// results and traffic are identical with or without it. Not owned; the
  /// log is Reset() at the start of each run that uses it.
  class ScheduleAuditLog* schedule_audit = nullptr;

  /// If non-null and active(), the run's fabric injects these faults
  /// (seeded with fault_seed) and recovers via the framed nack/retransmit
  /// protocol; unrecoverable loss fails the query with Status::DataLoss.
  /// Null or inactive keeps the byte-identical pristine path. Not owned.
  const FaultPolicy* fault_policy = nullptr;
  uint64_t fault_seed = 0;

  /// If non-null, a failed run fills this with the fabric's structured
  /// failure report plus the partial attempt's traffic and phase times
  /// (net/failure.h) — the machine-readable side of the error Status.
  /// Strictly an error-path output; untouched on success. Not owned.
  RunDiagnostics* diagnostics = nullptr;

  /// Modeled per-phase deadline in seconds (0 disables): a straggler whose
  /// modeled slowdown exceeds it is promoted to suspected-dead and the
  /// phase fails with DeadlineExceeded. See Fabric::SetPhaseDeadline.
  double phase_deadline_seconds = 0;

  /// Event-driven micro-batch execution (pipelined 3TJ/4TJ). Off by
  /// default; tjsim's --pipeline flag enables it. Requires the plain wire
  /// format (delta_tracking / group_locations off), because micro-batch
  /// chunking relies on entry-aligned, context-free encodings.
  PipelineConfig pipeline;

  /// Pipelined runs only: attach a critical-path BlameReport
  /// (obs/blame.h) to JoinResult::blame after a successful run. Strictly
  /// passive — it only reads the fabric's always-on timing records, so
  /// traffic, checksums and EXPLAIN output are byte-identical either way.
  bool collect_blame = false;
  /// Critical-path edges retained in the report's top-K listing.
  uint64_t blame_top_edges = 20;

  /// Location-message size M in bytes, as used by the per-key scheduler.
  uint64_t MsgBytes() const { return key_bytes + node_bytes; }
};

/// Guard shared by the streaming and pipelined drivers: both chunk their
/// wire streams at entry boundaries, which only the plain fixed-width
/// encodings allow (delta-coded keys and node-grouped pairs carry
/// cross-entry context).
inline Status RequirePlainWireFormat(const JoinConfig& config,
                                     const char* driver) {
  if (config.delta_tracking || config.group_locations) {
    return Status::InvalidArgument(
        std::string(driver) +
        " requires the plain wire format (delta_tracking and "
        "group_locations must be off)");
  }
  return Status::OK();
}

/// Outcome of a distributed join run: verified output fingerprint, full
/// traffic matrix and per-phase wall-clock breakdown.
struct JoinResult {
  uint64_t output_rows = 0;
  /// Rows produced at each node (sums to output_rows). The max element is
  /// the modeled per-node compute bottleneck the skew ablations report.
  /// Filled by the track-join and hash-join pipelines.
  std::vector<uint64_t> node_output_rows;
  JoinChecksum checksum;
  TrafficMatrix traffic;
  /// Named per-phase wall times (CPU-side work), in execution order.
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// The materialized output (JoinConfig::materialize): one
  /// <key | payloadR | payloadS> row per joined pair, partitioned across
  /// the nodes where the pairs were produced.
  std::optional<PartitionedTable> output;
  /// Injected-fault and recovery-protocol counters for the run (all-zero
  /// without an active fault policy).
  ReliabilityStats reliability;
  /// The de-pipelined step breakdown: one record per phase with wall
  /// seconds, modeled network seconds, and goodput/local/retransmit byte
  /// splits (obs/step_profile.h). phase_seconds above is its wall-time
  /// projection, kept for existing consumers.
  StepProfile profile;
  /// Pipelined runs only (else 0): modeled end-to-end makespan — the
  /// critical path through the event-driven schedule — and the
  /// barrier-equivalent reference computed from the same run's per-stage
  /// accounting (sum over stages of max-node CPU + max-NIC transfer time).
  double makespan_seconds = 0;
  double barrier_makespan_seconds = 0;
  /// Pipelined runs with JoinConfig::collect_blame: the critical-path
  /// decomposition of makespan_seconds into (node, resource, stage,
  /// wait-class) buckets, reconciled exactly against pipeline.makespan_us.
  std::optional<BlameReport> blame;

  /// Sum of all phase wall times.
  double TotalCpuSeconds() const {
    double total = 0;
    for (const auto& [name, secs] : phase_seconds) total += secs;
    return total;
  }
};

/// The algorithms under evaluation (the seven bars of Figures 3-8).
enum class JoinAlgorithm : uint8_t {
  kBroadcastR,   ///< BJ-R: broadcast R to every node.
  kBroadcastS,   ///< BJ-S: broadcast S to every node.
  kHash,         ///< HJ: Grace hash join over the network.
  kTrack2R,      ///< 2TJ-R: 2-phase track join, R -> S.
  kTrack2S,      ///< 2TJ-S: 2-phase track join, S -> R.
  kTrack3,       ///< 3TJ: per-key broadcast direction.
  kTrack4,       ///< 4TJ: per-key migration + broadcast (optimal).
};

const char* JoinAlgorithmName(JoinAlgorithm algorithm);

}  // namespace tj

#endif  // TJ_CORE_JOIN_TYPES_H_
