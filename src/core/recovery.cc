#include "core/recovery.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "core/schedule.h"
#include "obs/trace.h"

namespace tj {
namespace {

/// Re-derives the per-attempt fault seed. Attempt 0 keeps the caller's
/// seed bit-exactly so a failure-free managed run is byte-identical to an
/// unmanaged one; later attempts decorrelate the injector's streams so a
/// transient loss pattern does not repeat verbatim.
uint64_t AttemptSeed(uint64_t seed, uint32_t attempt) {
  if (attempt == 0) return seed;
  return seed ^ (0x9e3779b97f4a7c15ULL * attempt);
}

/// Expresses the caller's fault policy (original node ids) in the current
/// degraded id space. Faults pinned to a node that no longer exists are
/// disabled — the dead stay dead, they do not crash twice.
FaultPolicy RemapPolicy(const FaultPolicy& policy, const SurvivorPlan& plan) {
  FaultPolicy out = policy;
  auto remap = [&plan](uint32_t node) {
    if (node == FaultPolicy::kNoNode ||
        node >= plan.original_to_live.size()) {
      return FaultPolicy::kNoNode;
    }
    return plan.original_to_live[node];  // kNoNode == ReplicaMap::kNoNode
  };
  out.crash_node = remap(policy.crash_node);
  out.slow_node = remap(policy.slow_node);
  if (out.slow_node == FaultPolicy::kNoNode) out.slowdown_seconds = 0;
  return out;
}

SurvivorPlan IdentityPlan(uint32_t num_nodes) {
  SurvivorPlan plan;
  plan.live_to_original.resize(num_nodes);
  plan.original_to_live.resize(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    plan.live_to_original[i] = i;
    plan.original_to_live[i] = i;
  }
  return plan;
}

double PhaseSecondsTotal(
    const std::vector<std::pair<std::string, double>>& phases) {
  double total = 0;
  for (const auto& [name, secs] : phases) total += secs;
  return total;
}

}  // namespace

bool IsFaultInduced(StatusCode code) {
  return code == StatusCode::kDataLoss || code == StatusCode::kCorruption ||
         code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

Result<JoinResult> RecoveryManager::Run(const ReplicatedTable& r,
                                        const ReplicatedTable& s,
                                        const JoinConfig& config,
                                        const JoinRunner& runner) {
  const uint32_t n = r.primary().num_nodes();
  TJ_CHECK_EQ(s.primary().num_nodes(), n)
      << "join inputs disagree on the cluster size";
  const uint32_t max_attempts = std::max(1u, options_.max_attempts);
  report_ = RecoveryReport();

  SurvivorPlan plan = IdentityPlan(n);
  // Degraded views, materialized on failover; attempt 0 joins the
  // primaries in place.
  std::optional<PartitionedTable> r_view, s_view;
  std::vector<uint64_t> rehomed_keys;
  std::vector<uint32_t> dead;  // Cumulative, original ids.
  // Failed attempts' wire bytes, folded in original node ids.
  TrafficMatrix recovery_traffic(n);
  bool any_failed = false;
  double next_backoff = options_.backoff_initial_seconds;
  Status last_error;

  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    report_.attempts = attempt + 1;
    JoinConfig cfg = config;
    RunDiagnostics diag;
    cfg.diagnostics = &diag;
    if (options_.phase_deadline_seconds > 0) {
      cfg.phase_deadline_seconds = options_.phase_deadline_seconds;
    }
    FaultPolicy remapped;
    if (config.fault_policy != nullptr) {
      remapped = RemapPolicy(*config.fault_policy, plan);
      cfg.fault_policy = &remapped;
      cfg.fault_seed = AttemptSeed(config.fault_seed, attempt);
    }
    if (cfg.schedule_audit != nullptr) {
      // Tag re-homed keys as failover decisions; an empty set clears the
      // marking (attempt 0, or a transient retry without failover).
      cfg.schedule_audit->SetFailoverKeys(rehomed_keys);
    }

    Result<JoinResult> run = [&]() {
      TraceSpan span("recovery",
                     "attempt " + std::to_string(attempt + 1) + "/" +
                         std::to_string(max_attempts) + " on " +
                         std::to_string(plan.num_live()) + " node(s)");
      const PartitionedTable& r_in = r_view ? *r_view : r.primary();
      const PartitionedTable& s_in = s_view ? *s_view : s.primary();
      return runner(r_in, s_in, cfg);
    }();

    if (run.ok()) {
      JoinResult result = std::move(run).value();
      for (const auto& [name, secs] : result.phase_seconds) {
        report_.checkpoints.push_back(PhaseCheckpoint{attempt, name, secs});
      }
      if (report_.failovers > 0) {
        // Express the degraded run's ledgers in original node ids so
        // callers keep one coordinate system across recovered and
        // failure-free runs.
        result.traffic =
            result.traffic.MappedTo(n, plan.live_to_original);
      }
      if (any_failed) result.traffic.Merge(recovery_traffic);
      result.profile.recovery_bytes = result.traffic.TotalRecoveryBytes();
      report_.recovery_bytes = result.profile.recovery_bytes;
      report_.recovery_seconds =
          report_.wasted_seconds + report_.backoff_seconds;
      return result;
    }

    // The attempt failed. Bill what it burned, then decide: propagate,
    // retry, or fail over.
    last_error = run.status();
    any_failed = true;
    for (const auto& [name, secs] : diag.phase_seconds) {
      report_.checkpoints.push_back(PhaseCheckpoint{attempt, name, secs});
    }
    report_.wasted_seconds += PhaseSecondsTotal(diag.phase_seconds);
    if (diag.traffic.num_nodes() == plan.num_live()) {
      recovery_traffic.AccumulateRecovery(diag.traffic,
                                          plan.live_to_original);
    }
    if (!IsFaultInduced(last_error.code())) {
      // Usage or programming error: retrying cannot help and must not
      // mask it.
      return last_error;
    }
    if (attempt + 1 >= max_attempts) break;

    const FailureReport& failure = diag.failure;
    if (failure.transient()) {
      // Pure message-level attrition: modeled exponential backoff, then
      // replay on the same topology with a re-derived seed.
      TraceSpan span("recovery",
                     "backoff " + std::to_string(next_backoff) +
                         "s before retry");
      report_.backoff_seconds += next_backoff;
      next_backoff *= options_.backoff_multiplier;
      ++report_.retries;
      continue;
    }

    // A node is confirmed (crash) or suspected (deadline) dead: extend the
    // cumulative dead set — failure reports name degraded ids, so map them
    // back — and re-plan against the surviving replicas.
    TraceSpan span("recovery", "failover: re-plan around dead node(s)");
    for (uint32_t degraded : failure.unusable_nodes()) {
      TJ_CHECK_LT(degraded, plan.live_to_original.size());
      dead.push_back(plan.live_to_original[degraded]);
    }
    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());

    Result<SurvivorPlan> next_plan = PlanSurvivors(n, dead);
    if (!next_plan.ok()) return next_plan.status();
    plan = std::move(next_plan).value();

    rehomed_keys.clear();
    Result<PartitionedTable> r_next = r.FailoverView(plan, &rehomed_keys);
    if (!r_next.ok()) return r_next.status();
    Result<PartitionedTable> s_next = s.FailoverView(plan, &rehomed_keys);
    if (!s_next.ok()) return s_next.status();
    r_view = std::move(r_next).value();
    s_view = std::move(s_next).value();
    ++report_.failovers;
    report_.dead_nodes = dead;
    // A fresh topology gets a fresh backoff ladder.
    next_backoff = options_.backoff_initial_seconds;
  }

  report_.recovery_seconds = report_.wasted_seconds + report_.backoff_seconds;
  report_.recovery_bytes = recovery_traffic.TotalRecoveryBytes();
  return Status::Unavailable(
      "recovery budget exhausted after " + std::to_string(max_attempts) +
      " attempt(s); last error: " + last_error.ToString());
}

Result<JoinResult> RunWithRecovery(const ReplicatedTable& r,
                                   const ReplicatedTable& s,
                                   const JoinConfig& config,
                                   const RecoveryOptions& options,
                                   const JoinRunner& runner,
                                   RecoveryReport* report) {
  RecoveryManager manager(options);
  Result<JoinResult> result = manager.Run(r, s, config, runner);
  if (report != nullptr) *report = manager.report();
  return result;
}

}  // namespace tj
